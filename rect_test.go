package hsumma

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/matrix"
	"repro/internal/topo"
)

// The rectangular property test (the public-surface acceptance): for a
// grid of shapes spanning tall, wide, fat-K, skinny and non-divisible
// (ragged/padding) cases, every algorithm's distributed result must match
// the local blas reference GEMM, and the live run's aggregate traffic
// must match the simulated run of the same configuration bit-for-bit.

// propertyShapes is the shape grid: divisible and non-divisible M/N/K in
// every aspect class.
func propertyShapes() []Shape {
	return []Shape{
		{M: 32, N: 32, K: 32},  // square, divisible
		{M: 64, N: 16, K: 32},  // tall
		{M: 16, N: 64, K: 32},  // wide
		{M: 16, N: 16, K: 128}, // fat-K
		{M: 64, N: 64, K: 8},   // skinny-K
		{M: 33, N: 17, K: 29},  // prime-ish: every dimension pads
		{M: 40, N: 36, K: 50},  // K ragged on a 4-divisible grid
		{M: 3, N: 70, K: 10},   // M smaller than the grid dimension
	}
}

func TestRectPropertyLiveMatchesReference(t *testing.T) {
	const procs = 4
	for _, sh := range propertyShapes() {
		for _, alg := range []Algorithm{AlgSUMMA, AlgHSUMMA, AlgMultilevel, AlgCannon, AlgFox} {
			sh, alg := sh, alg
			t.Run(fmt.Sprintf("%s/%s", sh, alg), func(t *testing.T) {
				a := RandomMatrix(sh.M, sh.K, 901)
				b := RandomMatrix(sh.K, sh.N, 902)
				cfg := Config{Procs: procs, Algorithm: alg}
				if alg == AlgMultilevel {
					cfg.Levels = []Level{{I: 2, J: 2, BlockSize: 4}}
					cfg.BlockSize = 2
				}
				got, stats, err := Multiply(a, b, cfg)
				if alg == AlgCannon || alg == AlgFox {
					if sh.IsSquare() {
						if err != nil {
							t.Fatal(err)
						}
					} else {
						if !errors.Is(err, ErrSquareOnly) {
							t.Fatalf("square-only %s on %s: got %v, want ErrSquareOnly", alg, sh, err)
						}
						return
					}
				}
				if err != nil {
					t.Fatal(err)
				}
				if got.Rows != sh.M || got.Cols != sh.N {
					t.Fatalf("result is %dx%d, want %dx%d", got.Rows, got.Cols, sh.M, sh.N)
				}
				want := Reference(a, b)
				if d := MaxAbsDiff(got, want); d > 1e-10 {
					t.Fatalf("distributed %s differs from blas reference by %g on %s", alg, d, sh)
				}
				if stats.Messages == 0 && procs > 1 {
					t.Fatal("no traffic recorded")
				}
			})
		}
	}
}

// The same configurations simulated must report exactly the live run's
// aggregate traffic — the parity invariant extended over the shape grid,
// including the padded (non-divisible) shapes.
func TestRectPropertyLiveSimTrafficParity(t *testing.T) {
	const procs = 4
	machine := Machine{Alpha: 1e-5, Beta: 1e-9, Gamma: 1e-10}
	for _, sh := range propertyShapes() {
		for _, alg := range []Algorithm{AlgSUMMA, AlgHSUMMA, AlgMultilevel} {
			sh, alg := sh, alg
			t.Run(fmt.Sprintf("%s/%s", sh, alg), func(t *testing.T) {
				a := RandomMatrix(sh.M, sh.K, 911)
				b := RandomMatrix(sh.K, sh.N, 912)
				cfg := Config{Procs: procs, Algorithm: alg}
				scfg := SimConfig{Shape: sh, Procs: procs, Algorithm: alg, Machine: machine}
				if alg == AlgMultilevel {
					cfg.Levels = []Level{{I: 2, J: 2, BlockSize: 4}}
					cfg.BlockSize = 2
					scfg.Levels = cfg.Levels
					scfg.BlockSize = cfg.BlockSize
				}
				_, live, err := Multiply(a, b, cfg)
				if err != nil {
					t.Fatal(err)
				}
				sim, err := Simulate(scfg)
				if err != nil {
					t.Fatal(err)
				}
				if live.Messages != sim.Messages || live.Bytes != sim.Bytes {
					t.Fatalf("traffic parity broken on %s/%s: live (%d msgs, %d B) vs sim (%d msgs, %d B)",
						sh, alg, live.Messages, live.Bytes, sim.Messages, sim.Bytes)
				}
				if err := sim.Shape.Validate(); err != nil {
					t.Fatalf("sim echoed invalid shape: %v", err)
				}
				// The echoed execution shape never shrinks the problem.
				if sim.Shape.M < sh.M || sim.Shape.N < sh.N || sim.Shape.K < sh.K {
					t.Fatalf("execution shape %v smaller than requested %v", sim.Shape, sh)
				}
			})
		}
	}
}

// The non-divisible shapes must round-trip the ragged dist paths exactly:
// Scatter→Gather over each operand's own (balanced, ragged) BlockMap is
// the identity.
func TestRectRaggedDistRoundTrip(t *testing.T) {
	g := topo.Grid{S: 2, T: 2}
	for _, sh := range propertyShapes() {
		sh := sh
		t.Run(sh.String(), func(t *testing.T) {
			for _, op := range []struct {
				name       string
				rows, cols int
			}{
				{"A", sh.M, sh.K}, {"B", sh.K, sh.N}, {"C", sh.M, sh.N},
			} {
				bm, err := dist.NewBlockMap(op.rows, op.cols, g)
				if err != nil {
					t.Fatal(err)
				}
				m := matrix.Random(op.rows, op.cols, 77)
				if got := bm.Gather(bm.Scatter(m)); !matrix.Equal(got, m) {
					t.Fatalf("%s %dx%d does not round-trip Scatter→Gather", op.name, op.rows, op.cols)
				}
				if !bm.Uniform() {
					// The ragged path really is exercised for the
					// non-divisible shapes.
					r, c := bm.TileShape(g.Size() - 1)
					if r > bm.LocalRows() || c > bm.LocalCols() {
						t.Fatalf("ragged tile %dx%d exceeds the max tile", r, c)
					}
				}
			}
		})
	}
}

// SimulateShape is the explicit-shape convenience; it must agree with
// setting SimConfig.Shape directly.
func TestSimulateShape(t *testing.T) {
	machine := Machine{Alpha: 1e-5, Beta: 1e-9, Gamma: 1e-10}
	sh := Shape{M: 512, N: 64, K: 256}
	direct, err := Simulate(SimConfig{Shape: sh, Procs: 16, Algorithm: AlgSUMMA, Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	viaHelper, err := SimulateShape(sh, SimConfig{N: 999 /* overridden */, Procs: 16, Algorithm: AlgSUMMA, Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	if direct != viaHelper {
		t.Fatalf("SimulateShape differs: %+v vs %+v", viaHelper, direct)
	}
	if direct.Total <= 0 || direct.Comm <= 0 {
		t.Fatalf("degenerate sim result %+v", direct)
	}
}

// All three public surfaces must report the identical dimension-naming
// validation error for an invalid shape, and the identical ErrSquareOnly
// for square-only baselines on rectangles.
func TestShapeErrorsIdenticalAcrossSurfaces(t *testing.T) {
	// Invalid shape (K=0 after inference: A is 4x0).
	_, _, mErr := Multiply(NewMatrix(4, 0), NewMatrix(0, 4), Config{Procs: 4})
	_, sErr := Simulate(SimConfig{Shape: Shape{M: 4, N: 4, K: 0}, Procs: 4, Machine: Machine{Alpha: 1, Beta: 1}})
	_, pErr := Plan(PlanConfig{Platform: PlatformGrid5000(), Shape: Shape{M: 4, N: 4, K: 0}, Procs: 4, Quick: true})
	for name, err := range map[string]error{"multiply": mErr, "simulate": sErr, "plan": pErr} {
		if err == nil {
			t.Fatalf("%s accepted K=0", name)
		}
	}

	// Square-only baselines on a rectangular problem: ErrSquareOnly from
	// every surface.
	rect := Shape{M: 8, N: 4, K: 8}
	_, _, mErr = Multiply(NewMatrix(8, 8), NewMatrix(8, 4), Config{Procs: 4, Algorithm: AlgCannon})
	_, sErr = Simulate(SimConfig{Shape: rect, Procs: 4, Algorithm: AlgFox, Machine: Machine{Alpha: 1, Beta: 1}})
	_, pErr = Plan(PlanConfig{Platform: PlatformGrid5000(), Shape: rect, Procs: 4,
		Algorithms: []Algorithm{AlgCannon}, Quick: true})
	for name, err := range map[string]error{"multiply": mErr, "simulate": sErr, "plan": pErr} {
		if !errors.Is(err, ErrSquareOnly) {
			t.Fatalf("%s: got %v, want ErrSquareOnly", name, err)
		}
	}
}
