package hsumma

import (
	"errors"
	"sync"
	"testing"
)

// TestSessionBitIdenticalToMultiply locks in the serving acceptance
// invariant: a warm session produces bit-identical results to the one-shot
// Multiply for the same configuration (both execute the same spec on the
// same runtime), across divisible, padded and rectangular shapes.
func TestSessionBitIdenticalToMultiply(t *testing.T) {
	cases := []struct {
		name  string
		shape Shape
		cfg   Config
	}{
		{"square divisible", SquareShape(64), Config{Procs: 16}},
		{"square padded", SquareShape(50), Config{Procs: 4}},
		{"rect", Shape{M: 48, N: 16, K: 32}, Config{Procs: 8, Algorithm: AlgSUMMA}},
		{"hsumma G", SquareShape(32), Config{Procs: 16, Algorithm: AlgHSUMMA, Groups: 4, BlockSize: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess, err := NewSession(tc.shape, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			for i := 0; i < 2; i++ {
				a := RandomMatrix(tc.shape.M, tc.shape.K, uint64(7*i+1))
				b := RandomMatrix(tc.shape.K, tc.shape.N, uint64(7*i+2))
				want, wantStats, err := Multiply(a, b, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, gotStats, err := sess.Multiply(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if d := MaxAbsDiff(got, want); d != 0 {
					t.Fatalf("call %d: session result differs from Multiply by %g (want bit-identical)", i, d)
				}
				if gotStats.Messages != wantStats.Messages || gotStats.Bytes != wantStats.Bytes {
					t.Fatalf("call %d: traffic differs: session %d msg/%d B, one-shot %d msg/%d B",
						i, gotStats.Messages, gotStats.Bytes, wantStats.Messages, wantStats.Bytes)
				}
			}
		})
	}
}

// TestStatsWallAndSetup checks the new Stats decomposition on both paths:
// wall covers the whole call, setup is a non-trivial fraction of it on the
// one-shot path, and the session's per-request setup never exceeds what
// the one-shot path pays for the same work.
func TestStatsWallAndSetup(t *testing.T) {
	n := 64
	cfg := Config{Procs: 16}
	a, b := RandomMatrix(n, n, 1), RandomMatrix(n, n, 2)

	_, oneShot, err := Multiply(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.WallSeconds <= 0 || oneShot.SetupSeconds <= 0 {
		t.Fatalf("one-shot stats not populated: %+v", oneShot)
	}
	if oneShot.SetupSeconds >= oneShot.WallSeconds {
		t.Fatalf("setup %gs should be less than wall %gs", oneShot.SetupSeconds, oneShot.WallSeconds)
	}

	sess, err := NewSession(SquareShape(n), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, _, err := sess.Multiply(a, b); err != nil { // warm-up call
		t.Fatal(err)
	}
	_, warm, err := sess.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WallSeconds <= 0 || warm.SetupSeconds <= 0 {
		t.Fatalf("session stats not populated: %+v", warm)
	}
	if warm.SetupSeconds >= warm.WallSeconds {
		t.Fatalf("session setup %gs should be less than wall %gs", warm.SetupSeconds, warm.WallSeconds)
	}
}

// TestConcurrentMultiplyRace exercises many fully concurrent one-shot
// Multiply calls (mixed shapes and algorithms, including AlgAuto through
// the shared plan cache) — the shared-state surface -race must stay quiet
// on.
func TestConcurrentMultiplyRace(t *testing.T) {
	cfgs := []struct {
		shape Shape
		cfg   Config
	}{
		{SquareShape(32), Config{Procs: 4}},
		{SquareShape(32), Config{Procs: 16, Algorithm: AlgSUMMA}},
		{Shape{M: 24, N: 12, K: 36}, Config{Procs: 4, Algorithm: AlgSUMMA}},
		{SquareShape(16), Config{Procs: 4, Algorithm: AlgAuto}},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfgs[i%len(cfgs)]
			a := RandomMatrix(c.shape.M, c.shape.K, uint64(i+1))
			b := RandomMatrix(c.shape.K, c.shape.N, uint64(i+50))
			got, _, err := Multiply(a, b, c.cfg)
			if err != nil {
				errs <- err
				return
			}
			if d := MaxAbsDiff(got, Reference(a, b)); d > 1e-9 {
				errs <- errors.New("concurrent Multiply produced a wrong product")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSessionSharedConcurrentRace drives one shared session from many
// goroutines under -race: the session queue must serialise the work with
// no shared-state races and exact results.
func TestSessionSharedConcurrentRace(t *testing.T) {
	shape := SquareShape(32)
	sess, err := NewSession(shape, Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const callers = 16
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := RandomMatrix(shape.M, shape.K, uint64(i+1))
			b := RandomMatrix(shape.K, shape.N, uint64(i+100))
			got, _, err := sess.Multiply(a, b)
			if err != nil {
				errs <- err
				return
			}
			if d := MaxAbsDiff(got, Reference(a, b)); d > 1e-9 {
				errs <- errors.New("shared session produced a wrong product")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if sess.Calls() != callers {
		t.Fatalf("Calls() = %d, want %d", sess.Calls(), callers)
	}
}

// TestSessionClosedError checks the public sentinel.
func TestSessionClosedError(t *testing.T) {
	shape := SquareShape(16)
	sess, err := NewSession(shape, Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	a, b := RandomMatrix(16, 16, 1), RandomMatrix(16, 16, 2)
	if _, _, err := sess.Multiply(a, b); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("want ErrSessionClosed, got %v", err)
	}
}

// BenchmarkSessionThroughput compares requests/sec of a warm session
// against repeated one-shot Multiply at the serving benchmark point
// (n=512, p=16). The session amortises spawn + plan + map + allocation
// setup; the distributed run itself (dominated by the shared gemm kernel)
// is identical by construction, so the end-to-end ratio measures exactly
// the setup amortisation. Run with:
//
//	go test -bench BenchmarkSessionThroughput -benchtime 10x
func BenchmarkSessionThroughput(b *testing.B) {
	const n, p = 512, 16
	cfg := Config{Procs: p, Algorithm: AlgHSUMMA}
	am := RandomMatrix(n, n, 1)
	bm := RandomMatrix(n, n, 2)

	b.Run("oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Multiply(am, bm, cfg); err != nil {
				b.Fatal(err)
			}
		}
		reportReqPerSec(b)
	})
	b.Run("session", func(b *testing.B) {
		sess, err := NewSession(SquareShape(n), cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		if _, _, err := sess.Multiply(am, bm); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sess.Multiply(am, bm); err != nil {
				b.Fatal(err)
			}
		}
		reportReqPerSec(b)
	})
}

// reportReqPerSec adds a requests/sec metric to a benchmark.
func reportReqPerSec(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
