package hsumma

import (
	"repro/internal/sched"
	"repro/internal/topo"
	"repro/internal/tune"
)

// This file is the public face of the autotuning planner (internal/tune):
// Plan answers "how should I multiply n×n over p ranks on this platform?"
// with a ranked set of configurations, and both execution paths resolve
// Config{Algorithm: AlgAuto} / SimConfig{Algorithm: AlgAuto} through it.
//
// The search is two-stage: every feasible candidate (algorithm × grid
// shape × group count × block sizes × broadcast) is scored with the
// paper's closed-form cost models, then the top K are re-ranked by
// parallel virtual runs on the simnet communicator. Plans are memoised per
// (platform, problem, flags), so serving-style workloads pay the search
// once per distinct shape.

// PlanObjective selects the quantity the planner minimises.
type PlanObjective = tune.Objective

// Planner objectives.
const (
	// PlanMinTotal minimises execution time (communication + computation).
	PlanMinTotal = tune.MinTotal
	// PlanMinComm minimises communication time only.
	PlanMinComm = tune.MinComm
)

// PlanCandidate is one fully specified configuration (re-exported from the
// planner).
type PlanCandidate = tune.Candidate

// PlanChoice is a candidate with its analytic and simulated costs.
type PlanChoice = tune.Scored

// PlanResult is a ranked plan (Best, Ranked, search statistics).
type PlanResult = tune.Plan

// PlanStats are the shared planner's cache/simulation counters.
type PlanStats = tune.PlannerStats

// PlanConfig describes one planning problem.
type PlanConfig struct {
	// Platform is the machine to tune for (preset or calibrated).
	Platform Platform
	// Shape is the GEMM problem C (M×N) += A (M×K)·B (K×N); the zero
	// value defers to N, the square shorthand.
	Shape Shape
	// N is the square matrix dimension (ignored when Shape is set), Procs
	// the rank count.
	N, Procs int
	// Grid optionally pins the process grid.
	Grid *[2]int
	// BlockSize optionally pins the paper's b.
	BlockSize int
	// Threads optionally pins the per-rank thread budget (0 = searched
	// under CoreBudget, 1 otherwise).
	Threads int
	// CoreBudget, when positive, makes the planner trade ranks against
	// intra-rank threads: it enumerates (ranks = CoreBudget/t, t) splits
	// for power-of-two t instead of planning for exactly Procs ranks.
	CoreBudget int
	// Algorithms restricts the searched algorithms (nil = SUMMA, HSUMMA,
	// Cannon, Fox, Strassen).
	Algorithms []Algorithm
	// Broadcasts restricts the broadcast variants (nil = binomial,
	// Van de Geijn, and in full mode binary).
	Broadcasts []sched.Algorithm
	// Objective defaults to PlanMinTotal.
	Objective PlanObjective
	// TopK is the stage-2 refinement width (default 8).
	TopK int
	// Quick trims the candidate space for sub-second planning.
	Quick bool
	// AnalyticOnly skips the stage-2 virtual runs.
	AnalyticOnly bool
	// Contention enables the platform's link-sharing model in stage 2.
	Contention bool
	// Overlap plans for communication/computation overlap.
	Overlap bool
	// Engine selects the virtual execution engine for the stage-2
	// refinement runs (default EngineAuto). Engines are bit-identical, so
	// this cannot change the picks — only the planning wall time; the
	// plan records which engine scored each refined candidate.
	Engine Engine
	// NoCache bypasses the plan cache.
	NoCache bool
}

func (cfg PlanConfig) request() (tune.Request, error) {
	var gp *topo.Grid
	if cfg.Grid != nil {
		g, err := topo.NewGrid(cfg.Grid[0], cfg.Grid[1])
		if err != nil {
			return tune.Request{}, err
		}
		gp = &g
	}
	return tune.Request{
		Platform:     cfg.Platform,
		Shape:        cfg.Shape,
		N:            cfg.N,
		P:            cfg.Procs,
		Grid:         gp,
		BlockSize:    cfg.BlockSize,
		Threads:      cfg.Threads,
		CoreBudget:   cfg.CoreBudget,
		Algorithms:   cfg.Algorithms,
		Broadcasts:   cfg.Broadcasts,
		Objective:    cfg.Objective,
		TopK:         cfg.TopK,
		Quick:        cfg.Quick,
		AnalyticOnly: cfg.AnalyticOnly,
		Contention:   cfg.Contention,
		Overlap:      cfg.Overlap,
		Executor:     cfg.Engine,
		NoCache:      cfg.NoCache,
	}, nil
}

// Plan searches the configuration space for the given problem and returns
// the ranked plan. Repeated calls with the same platform, problem and
// flags are served from the shared plan cache (FromCache is set on the
// result); PlannerCounters exposes the hit/miss/simulation counters.
func Plan(cfg PlanConfig) (*PlanResult, error) {
	req, err := cfg.request()
	if err != nil {
		return nil, err
	}
	return tune.PlanFor(req)
}

// PlannerCounters reports the shared planner's observability counters:
// cache hits and misses, and the number of stage-2 virtual runs executed.
func PlannerCounters() PlanStats { return tune.Stats() }

// autoProcs re-states the shared rank-count threshold beyond which
// implicit auto resolution skips the stage-2 virtual refinement (see
// tune.AutoProcs; the live path's resolution moved into tune.ResolveSpec,
// which both hsumma.Multiply and the serving layer route through).
const autoProcs = tune.AutoProcs

// resolveSimAuto replaces Algorithm: AlgAuto in a SimConfig with the
// planner's choice for the simulated machine, honouring the contention and
// overlap flags of the simulation being requested.
func resolveSimAuto(cfg SimConfig, shape Shape, procs int) (SimConfig, error) {
	pf := Platform{Name: "custom", Model: cfg.Machine}
	if cfg.Platform != nil {
		pf = *cfg.Platform
	}
	var gp *topo.Grid
	if cfg.Grid != nil {
		g, err := topo.NewGrid(cfg.Grid[0], cfg.Grid[1])
		if err != nil {
			return SimConfig{}, err
		}
		gp = &g
	}
	pl, err := tune.PlanFor(tune.Request{
		Platform: pf, Shape: shape, P: procs,
		Grid: gp, BlockSize: cfg.BlockSize,
		Threads:      cfg.Threads,
		Quick:        true,
		AnalyticOnly: procs > autoProcs,
		Contention:   cfg.Contention,
		Overlap:      cfg.Overlap,
	})
	if err != nil {
		return SimConfig{}, err
	}
	c := pl.Best.Candidate
	cfg.Algorithm = c.Algorithm
	g := [2]int{c.Grid.S, c.Grid.T}
	cfg.Grid = &g
	cfg.Procs = c.Grid.Size()
	cfg.Groups = c.Groups
	cfg.BlockSize = c.BlockSize
	cfg.OuterBlockSize = c.OuterBlockSize
	cfg.Broadcast = c.Broadcast
	cfg.Segments = c.Segments
	cfg.Levels = c.Levels
	if c.Threads > 0 {
		cfg.Threads = c.Threads
	}
	cfg.StrassenLevels = c.StrassenLevels
	cfg.StrassenInnerGroups = c.StrassenInnerGroups
	cfg.LocalStrassen = c.LocalStrassen
	cfg.StrassenCutoff = c.StrassenCutoff
	return cfg, nil
}
