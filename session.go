package hsumma

import (
	"fmt"

	"repro/internal/serve"
)

// This file is the library face of the serving subsystem (internal/serve):
// a Session keeps the distributed runtime resident between multiplications
// — rank goroutines parked on a work queue, block maps, scatter tiles and
// padded buffers built once — so a stream of products of one shape pays
// spawn + plan + map setup a single time instead of per call. The same
// machinery, fronted by a shape-keyed scheduler and an HTTP daemon, is
// cmd/hsumma-serve.

// Serving errors, reported via errors.Is.
var (
	// ErrSessionClosed is returned by Session.Multiply after Close (queued
	// requests receive it during the graceful drain; the in-flight one
	// finishes normally).
	ErrSessionClosed = serve.ErrClosed
	// ErrOverloaded reports serving-layer backpressure (bounded queues /
	// rank budget); the library Session blocks instead of rejecting, so it
	// surfaces only through the daemon.
	ErrOverloaded = serve.ErrOverloaded
)

// Session is a persistent execution context for one problem shape and
// configuration. Create it once with NewSession, call Multiply for each
// product, Close when done. Concurrent Multiply calls are safe and are
// serialised by the session's work queue.
type Session struct {
	inner *serve.Session
	shape Shape
}

// NewSession resolves the configuration exactly as Multiply would —
// including AlgAuto planner resolution and the shared block-size default —
// then spawns the resident world and staging buffers for the given problem
// shape: A (M×K) · B (K×N) = C (M×N). Every Session.Multiply must pass
// operands of exactly this shape; start one session per distinct shape (or
// use cmd/hsumma-serve, whose scheduler pools sessions by shape
// automatically).
func NewSession(shape Shape, cfg Config) (*Session, error) {
	spec, _, err := resolveSpec(shape, cfg)
	if err != nil {
		return nil, err
	}
	inner, err := serve.NewSession(shape, spec, serve.SessionConfig{})
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner, shape: shape}, nil
}

// Shape returns the problem shape the session serves.
func (s *Session) Shape() Shape { return s.shape }

// Key returns the session's canonical execution-shape key — the identity
// the serving scheduler routes requests by.
func (s *Session) Key() string { return s.inner.Key() }

// Calls returns the number of multiplications completed on the session.
func (s *Session) Calls() int64 { return s.inner.Calls() }

// Multiply computes A·B on the resident session. The operands must match
// the session shape exactly; the result and the traffic statistics are
// identical to what the one-shot Multiply reports for the same
// configuration (bit-identical products — both run the same spec on the
// same runtime), but Stats.SetupSeconds carries only the per-request
// staging cost, the rest having been paid once at NewSession.
func (s *Session) Multiply(a, b *Matrix) (*Matrix, Stats, error) {
	out, st, err := s.inner.Multiply(a, b)
	if err != nil {
		return nil, Stats{}, err
	}
	return out, Stats{
		Messages:           st.Messages,
		Bytes:              st.Bytes,
		MaxRankCommSeconds: st.MaxRankCommSeconds,
		WallSeconds:        st.WallSeconds,
		SetupSeconds:       st.SetupSeconds,
		GemmSeconds:        st.GemmSeconds,
		CommSecondsByPhase: st.CommSecondsByPhase,
		BusyImbalance:      st.BusyImbalance,

		PredictedSecondsByPhase: st.PredictedSecondsByPhase,
	}, nil
}

// Close releases the session: the in-flight request finishes, queued ones
// fail with ErrSessionClosed, and the resident rank goroutines exit. It is
// idempotent.
func (s *Session) Close() error { return s.inner.Close() }

// String identifies the session for logs.
func (s *Session) String() string {
	return fmt.Sprintf("hsumma.Session(%v, %s)", s.shape, s.inner.Key())
}
