// Command hsumma-run executes a real distributed multiplication on the
// in-process message-passing runtime (one goroutine per rank, real matrix
// blocks on the wire), verifies the result against sequential GEMM and
// reports wall time plus communication statistics.
//
// Usage:
//
//	hsumma-run -n 512 -p 16 -alg hsumma -G 4 -b 32
//	hsumma-run -n 512 -p 16 -alg summa -bcast vandegeijn
//	hsumma-run -n 256 -p 16 -alg cannon
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	hsumma "repro"
)

func main() {
	var (
		n     = flag.Int("n", 512, "matrix dimension (n×n)")
		p     = flag.Int("p", 16, "number of ranks (goroutines)")
		alg   = flag.String("alg", "hsumma", "algorithm: summa, hsumma, multilevel, cannon, fox")
		G     = flag.Int("G", 0, "HSUMMA group count (0 = closest feasible to sqrt(p))")
		b     = flag.Int("b", 0, "block size b (0 = auto)")
		outer = flag.Int("B", 0, "outer block size B (0 = b)")
		bcast = flag.String("bcast", "binomial", "broadcast: binomial, vandegeijn, flat, binary, chain")
		seed  = flag.Uint64("seed", 42, "input matrix seed")
	)
	flag.Parse()

	a := hsumma.RandomMatrix(*n, *n, *seed)
	bm := hsumma.RandomMatrix(*n, *n, *seed+1)
	cfg := hsumma.Config{
		Procs:          *p,
		Algorithm:      hsumma.Algorithm(*alg),
		Groups:         *G,
		BlockSize:      *b,
		OuterBlockSize: *outer,
		Broadcast:      hsumma.BroadcastByName(*bcast),
	}

	start := time.Now()
	got, stats, err := hsumma.Multiply(a, bm, cfg)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}

	fmt.Printf("algorithm      : %s (p=%d, n=%d)\n", *alg, *p, *n)
	fmt.Printf("wall time      : %v\n", elapsed)
	fmt.Printf("messages sent  : %d\n", stats.Messages)
	fmt.Printf("bytes moved    : %d\n", stats.Bytes)
	fmt.Printf("max rank comm  : %.3gs\n", stats.MaxRankCommSeconds)

	verify := time.Now()
	want := hsumma.Reference(a, bm)
	diff := hsumma.MaxAbsDiff(got, want)
	fmt.Printf("verification   : max |Δ| = %.3g vs sequential GEMM (%v)\n", diff, time.Since(verify))
	if diff > 1e-9 {
		fmt.Fprintln(os.Stderr, "VERIFICATION FAILED")
		os.Exit(1)
	}
	fmt.Println("result         : OK")
}
