// Command hsumma-run executes a distributed multiplication through the
// unified engine, in either execution mode:
//
//   - -mode=live (default): the in-process message-passing runtime — one
//     goroutine per rank, real matrix blocks on the wire — verified against
//     sequential GEMM, with wall time and communication statistics;
//
//   - -mode=sim: the same algorithm implementation on the simnet virtual
//     communicator, which advances Hockney virtual time instead of
//     wall-clock, so grids far beyond one machine (BlueGene/P's 16384
//     cores, and larger) run in seconds with no matrix memory at all.
//
// Usage:
//
//	hsumma-run -n 512 -p 16 -alg hsumma -G 4 -b 32
//	hsumma-run -n 512 -p 16 -alg summa -bcast vandegeijn
//	hsumma-run -mode=sim -platform bgp -n 65536 -p 16384 -alg hsumma -G 512 -b 256 -bcast vandegeijn
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	hsumma "repro"
)

func main() {
	var (
		mode   = flag.String("mode", "live", "execution mode: live (goroutine runtime, real data) or sim (virtual time, no data)")
		n      = flag.Int("n", 512, "matrix dimension (n×n)")
		p      = flag.Int("p", 16, "number of ranks")
		alg    = flag.String("alg", "hsumma", "algorithm: summa, hsumma, multilevel, cannon, fox")
		G      = flag.Int("G", 0, "HSUMMA group count (0 = closest feasible to sqrt(p))")
		b      = flag.Int("b", 0, "block size b (0 = auto in live mode)")
		outer  = flag.Int("B", 0, "outer block size B (0 = b)")
		bcast  = flag.String("bcast", "binomial", "broadcast: binomial, vandegeijn, flat, binary, chain")
		levels = flag.String("levels", "", "multilevel hierarchy, outermost first, e.g. 2x2:64,2x2:32 (IxJ:blocksize); empty degenerates to SUMMA")
		pf     = flag.String("platform", "grid5000", "sim machine preset: grid5000, bgp, exascale")
		seed   = flag.Uint64("seed", 42, "input matrix seed (live mode)")
	)
	flag.Parse()

	bcastAlg, err := hsumma.BroadcastByName(*bcast)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	levelList, err := parseLevels(*levels)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if hsumma.Algorithm(*alg) == hsumma.AlgMultilevel && len(levelList) == 0 {
		fmt.Fprintln(os.Stderr, "note: -alg multilevel without -levels degenerates to flat SUMMA")
	}

	switch *mode {
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want live or sim)\n", *mode)
		os.Exit(2)
	case "live":
		a := hsumma.RandomMatrix(*n, *n, *seed)
		bm := hsumma.RandomMatrix(*n, *n, *seed+1)
		cfg := hsumma.Config{
			Procs:          *p,
			Algorithm:      hsumma.Algorithm(*alg),
			Groups:         *G,
			BlockSize:      *b,
			OuterBlockSize: *outer,
			Levels:         levelList,
			Broadcast:      bcastAlg,
		}
		start := time.Now()
		got, stats, err := hsumma.Multiply(a, bm, cfg)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "run failed:", err)
			os.Exit(1)
		}
		fmt.Printf("mode           : live (goroutine runtime)\n")
		fmt.Printf("algorithm      : %s (p=%d, n=%d)\n", *alg, *p, *n)
		fmt.Printf("wall time      : %v\n", elapsed)
		fmt.Printf("messages sent  : %d\n", stats.Messages)
		fmt.Printf("bytes moved    : %d\n", stats.Bytes)
		fmt.Printf("max rank comm  : %.3gs\n", stats.MaxRankCommSeconds)

		verify := time.Now()
		want := hsumma.Reference(a, bm)
		diff := hsumma.MaxAbsDiff(got, want)
		fmt.Printf("verification   : max |Δ| = %.3g vs sequential GEMM (%v)\n", diff, time.Since(verify))
		if diff > 1e-9 {
			fmt.Fprintln(os.Stderr, "VERIFICATION FAILED")
			os.Exit(1)
		}
		fmt.Println("result         : OK")

	case "sim":
		var machine hsumma.Platform
		switch *pf {
		case "grid5000":
			machine = hsumma.PlatformGrid5000()
		case "bgp", "bluegene":
			machine = hsumma.PlatformBlueGeneP()
		case "exascale":
			machine = hsumma.PlatformExascale()
		default:
			fmt.Fprintf(os.Stderr, "unknown -platform %q (want grid5000, bgp, exascale)\n", *pf)
			os.Exit(2)
		}
		// Cannon and Fox work on whole tiles and take no block size; the
		// SUMMA family needs an explicit b (live mode auto-derives it, but
		// a simulation should not guess the paper's key parameter).
		simAlg := hsumma.Algorithm(*alg)
		if *b <= 0 && simAlg != hsumma.AlgCannon && simAlg != hsumma.AlgFox {
			fmt.Fprintln(os.Stderr, "sim mode needs an explicit -b block size for "+*alg)
			os.Exit(2)
		}
		start := time.Now()
		res, err := hsumma.Simulate(hsumma.SimConfig{
			N:              *n,
			Procs:          *p,
			Algorithm:      simAlg,
			Groups:         *G,
			BlockSize:      *b,
			OuterBlockSize: *outer,
			Levels:         levelList,
			Broadcast:      bcastAlg,
			Machine:        machine.Model,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulation failed:", err)
			os.Exit(1)
		}
		fmt.Printf("mode           : sim (virtual communicator, %s)\n", machine.Name)
		fmt.Printf("algorithm      : %s (p=%d, n=%d)\n", *alg, *p, *n)
		if simAlg == hsumma.AlgHSUMMA {
			fmt.Printf("groups         : G=%d\n", res.Groups)
		}
		fmt.Printf("simulated total: %.4gs\n", res.Total)
		fmt.Printf("simulated comm : %.4gs\n", res.Comm)
		fmt.Printf("computation    : %.4gs\n", res.Compute)
		fmt.Printf("messages sent  : %d\n", res.Messages)
		fmt.Printf("bytes moved    : %d (identical to a live run of this config)\n", res.Bytes)
		fmt.Printf("host wall time : %v\n", time.Since(start))
	}
}

// parseLevels parses the -levels syntax "IxJ:blocksize[,IxJ:blocksize...]"
// (outermost first) into the multilevel hierarchy description.
func parseLevels(spec string) ([]hsumma.Level, error) {
	if spec == "" {
		return nil, nil
	}
	var out []hsumma.Level
	for _, part := range strings.Split(spec, ",") {
		var lv hsumma.Level
		// Sscanf ignores trailing garbage, so demand an exact round-trip:
		// "2x2:64abc" or a semicolon-joined list must not parse silently.
		if _, err := fmt.Sscanf(part, "%dx%d:%d", &lv.I, &lv.J, &lv.BlockSize); err != nil ||
			fmt.Sprintf("%dx%d:%d", lv.I, lv.J, lv.BlockSize) != part {
			return nil, fmt.Errorf("bad -levels entry %q (want IxJ:blocksize, e.g. 2x2:64)", part)
		}
		if lv.I <= 0 || lv.J <= 0 || lv.BlockSize <= 0 {
			return nil, fmt.Errorf("bad -levels entry %q: all values must be positive", part)
		}
		out = append(out, lv)
	}
	return out, nil
}
