// Command hsumma-run executes a distributed multiplication through the
// unified engine, in either execution mode:
//
//   - -mode=live (default): the in-process message-passing runtime — one
//     goroutine per rank, real matrix blocks on the wire — verified against
//     sequential GEMM, with wall time and communication statistics;
//
//   - -mode=sim: the same algorithm implementation on the simnet virtual
//     communicator, which advances Hockney virtual time instead of
//     wall-clock, so grids far beyond one machine (BlueGene/P's 16384
//     cores, and larger) run in seconds with no matrix memory at all.
//
// Pass -auto (or -alg auto) to let the autotuning planner pick the
// algorithm, grid shape, group count, block sizes and broadcast for the
// target platform; explicit -b pins the block size as a constraint.
//
// The plan subcommand runs the planner standalone and prints the ranked
// candidate table (or JSON with -json):
//
//	hsumma-run plan -platform bgp
//	hsumma-run plan -platform all -quick -json > BENCH_plan.json
//
// Rectangular problems C(M×N) += A(M×K)·B(K×N) pass -m and -k beside -n
// (either may be omitted to default to n — the square shorthand).
//
// Usage:
//
//	hsumma-run -n 512 -p 16 -alg hsumma -G 4 -b 32
//	hsumma-run -n 512 -p 16 -auto
//	hsumma-run -mode=sim -platform bgp -n 65536 -p 16384 -alg hsumma -G 512 -b 256 -bcast vandegeijn
//	hsumma-run -mode=sim -platform bgp -n 4096 -p 256 -auto
//	hsumma-run -mode=sim -platform grid5000 -m 8192 -n 512 -k 8192 -p 64 -alg summa
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	hsumma "repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "plan" {
		runPlanCmd(os.Args[2:])
		return
	}
	var (
		mode   = flag.String("mode", "live", "execution mode: live (goroutine runtime, real data) or sim (virtual time, no data)")
		n      = flag.Int("n", 512, "result columns (N); with -m and -k unset, the square n×n problem")
		m      = flag.Int("m", 0, "result rows M for rectangular GEMM C(M×N) += A(M×K)·B(K×N); 0 = n")
		k      = flag.Int("k", 0, "contraction dimension K; 0 = n")
		p      = flag.Int("p", 16, "number of ranks")
		alg    = flag.String("alg", "hsumma", "algorithm: summa, hsumma, multilevel, cannon, fox, strassen, auto")
		auto   = flag.Bool("auto", false, "let the planner pick the configuration (same as -alg auto)")
		G      = flag.Int("G", 0, "HSUMMA group count (0 = closest feasible to sqrt(p))")
		b      = flag.Int("b", 0, "block size b (0 = auto via the shared default rule)")
		outer  = flag.Int("B", 0, "outer block size B (0 = b)")
		bcast  = flag.String("bcast", "binomial", "broadcast: binomial, vandegeijn, flat, binary, chain")
		thr    = flag.Int("threads", 1, "per-rank thread budget for local multiplies (hybrid intra-rank parallelism)")
		levels = flag.String("levels", "", "multilevel hierarchy, outermost first, e.g. 2x2:64,2x2:32 (IxJ:blocksize); empty degenerates to SUMMA")
		sLvl   = flag.Int("strassen-levels", 0, "strassen quadrant recursion depth (0 = one level)")
		sGrp   = flag.Int("strassen-groups", 0, "strassen HSUMMA-bottom group count (0 = SUMMA bottom)")
		sLoc   = flag.Bool("local-strassen", false, "run the rank-local sub-cubic Strassen kernel under any algorithm")
		sCut   = flag.Int("strassen-cutoff", 0, "local Strassen kernel recursion cutoff (0 = blas default)")
		pf     = flag.String("platform", "grid5000", "machine preset: grid5000, bgp, exascale (sim timing; auto-planning target in both modes)")
		seed   = flag.Uint64("seed", 42, "input matrix seed (live mode)")
		eng    = flag.String("engine", "auto", "sim-mode virtual execution engine: goroutine, event, or auto (bit-identical results; event is ~10x faster on full-scale collective-only runs)")
		trOut  = flag.String("trace", "", "write a per-rank phase span timeline (Chrome/Perfetto trace-event JSON) to this file")
		crit   = flag.Bool("critpath", false, "trace the run and print the critical-path report: gating rank/phase, per-rank busy/wait split, top blocking edges")
	)
	flag.Parse()

	bcastAlg, err := hsumma.BroadcastByName(*bcast)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	simEngine, err := hsumma.EngineByName(*eng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	levelList, err := parseLevels(*levels)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *auto {
		*alg = string(hsumma.AlgAuto)
	}
	if hsumma.Algorithm(*alg) == hsumma.AlgMultilevel && len(levelList) == 0 {
		fmt.Fprintln(os.Stderr, "note: -alg multilevel without -levels degenerates to flat SUMMA")
	}
	machine, err := platformByName(*pf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	shape := shapeFromFlags(*m, *n, *k)

	switch *mode {
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want live or sim)\n", *mode)
		os.Exit(2)
	case "live":
		a := hsumma.RandomMatrix(shape.M, shape.K, *seed)
		bm := hsumma.RandomMatrix(shape.K, shape.N, *seed+1)
		cfg := hsumma.Config{
			Procs:               *p,
			Algorithm:           hsumma.Algorithm(*alg),
			Groups:              *G,
			BlockSize:           *b,
			OuterBlockSize:      *outer,
			Levels:              levelList,
			Broadcast:           bcastAlg,
			Threads:             *thr,
			StrassenLevels:      *sLvl,
			StrassenInnerGroups: *sGrp,
			LocalStrassen:       *sLoc,
			StrassenCutoff:      *sCut,
			Platform:            &machine,
		}
		start := time.Now()
		var (
			got   *hsumma.Matrix
			stats hsumma.Stats
			rec   *hsumma.Trace
		)
		if *trOut != "" || *crit {
			got, stats, rec, err = hsumma.MultiplyTraced(a, bm, cfg)
		} else {
			got, stats, err = hsumma.Multiply(a, bm, cfg)
		}
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "run failed:", err)
			os.Exit(1)
		}
		fmt.Printf("mode           : live (goroutine runtime)\n")
		fmt.Printf("algorithm      : %s (p=%d, %s)\n", *alg, *p, shape)
		fmt.Printf("wall time      : %v\n", elapsed)
		fmt.Printf("messages sent  : %d\n", stats.Messages)
		fmt.Printf("bytes moved    : %d\n", stats.Bytes)
		fmt.Printf("max rank comm  : %.3gs\n", stats.MaxRankCommSeconds)
		fmt.Printf("max rank gemm  : %.3gs\n", stats.GemmSeconds)
		fmt.Printf("comm by phase  : %s\n", formatPhases(stats.CommSecondsByPhase))
		fmt.Printf("busy imbalance : %.3g (max/mean rank busy time)\n", stats.BusyImbalance)
		if rec != nil && *trOut != "" {
			if err := writeTrace(*trOut, rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("trace written  : %s (%d ranks; open in Perfetto or chrome://tracing)\n", *trOut, rec.Ranks())
		}
		if *crit {
			fmt.Print(hsumma.CriticalPath(rec).Format())
		}

		verify := time.Now()
		want := hsumma.Reference(a, bm)
		diff := hsumma.MaxAbsDiff(got, want)
		fmt.Printf("verification   : max |Δ| = %.3g vs sequential GEMM (%v)\n", diff, time.Since(verify))
		if diff > 1e-9 {
			fmt.Fprintln(os.Stderr, "VERIFICATION FAILED")
			os.Exit(1)
		}
		fmt.Println("result         : OK")

	case "sim":
		start := time.Now()
		res, err := hsumma.Simulate(hsumma.SimConfig{
			Shape:               shape,
			Procs:               *p,
			Algorithm:           hsumma.Algorithm(*alg),
			Groups:              *G,
			BlockSize:           *b,
			OuterBlockSize:      *outer,
			Levels:              levelList,
			Broadcast:           bcastAlg,
			Threads:             *thr,
			StrassenLevels:      *sLvl,
			StrassenInnerGroups: *sGrp,
			LocalStrassen:       *sLoc,
			StrassenCutoff:      *sCut,
			Machine:             machine.Model,
			Platform:            &machine,
			Engine:              simEngine,
			Trace:               *trOut != "" || *crit,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulation failed:", err)
			os.Exit(1)
		}
		fmt.Printf("mode           : sim (virtual communicator, %s)\n", machine.Name)
		fmt.Printf("engine         : %s\n", res.Engine)
		fmt.Printf("algorithm      : %s (p=%d, %s)\n", res.Algorithm, *p, shape)
		if res.Shape != shape {
			fmt.Printf("padded to      : %s\n", res.Shape)
		}
		if res.Algorithm == hsumma.AlgHSUMMA {
			fmt.Printf("groups         : G=%d\n", res.Groups)
		}
		if res.BlockSize > 0 {
			fmt.Printf("block size     : b=%d\n", res.BlockSize)
		}
		fmt.Printf("simulated total: %.4gs\n", res.Total)
		fmt.Printf("simulated comm : %.4gs\n", res.Comm)
		fmt.Printf("computation    : %.4gs\n", res.Compute)
		fmt.Printf("messages sent  : %d\n", res.Messages)
		fmt.Printf("bytes moved    : %d (identical to a live run of this config)\n", res.Bytes)
		fmt.Printf("host wall time : %v\n", time.Since(start))
		if res.Trace != nil && *trOut != "" {
			if err := writeTrace(*trOut, res.Trace); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("trace written  : %s (%d ranks, virtual timestamps; open in Perfetto or chrome://tracing)\n", *trOut, res.Trace.Ranks())
		}
		if *crit {
			fmt.Print(hsumma.CriticalPath(res.Trace).Format())
		}
	}
}

// writeTrace dumps a recorded span timeline as Chrome trace-event JSON.
func writeTrace(path string, rec *hsumma.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	return nil
}

// formatPhases renders the per-phase communication breakdown in a stable
// phase order.
func formatPhases(phases map[string]float64) string {
	if len(phases) == 0 {
		return "(none)"
	}
	var sb strings.Builder
	for _, name := range []string{"scatter", "bcast", "shift", "p2p", "gemm", "gather"} {
		if sec, ok := phases[name]; ok {
			if sb.Len() > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %.3gs", name, sec)
		}
	}
	return sb.String()
}

// shapeFromFlags resolves the -m/-n/-k trio into a validated GEMM shape:
// unset -m/-k default to n (the square shorthand), and invalid
// dimensions exit with the shared dimension-naming error.
func shapeFromFlags(m, n, k int) hsumma.Shape {
	shape := hsumma.Shape{M: m, N: n, K: k}
	if shape.M == 0 {
		shape.M = n
	}
	if shape.K == 0 {
		shape.K = n
	}
	if err := shape.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return shape
}

func platformByName(name string) (hsumma.Platform, error) {
	switch name {
	case "grid5000":
		return hsumma.PlatformGrid5000(), nil
	case "grid5000-cal", "grid5000cal":
		return hsumma.PlatformGrid5000Calibrated(), nil
	case "bgp", "bluegene":
		return hsumma.PlatformBlueGeneP(), nil
	case "bgp-cal", "bgpcal":
		return hsumma.PlatformBGPCalibrated(), nil
	case "exascale":
		return hsumma.PlatformExascale(), nil
	}
	return hsumma.Platform{}, fmt.Errorf("unknown -platform %q (want grid5000[-cal], bgp[-cal], exascale)", name)
}

// planProblem is the per-platform default problem scale for the plan
// subcommand: the paper's full configuration, or a scaled-down one with
// -quick.
func planProblem(platform string, quick bool) (n, p int) {
	switch platform {
	case "bgp", "bgp-cal", "bluegene", "bgpcal":
		if quick {
			return 4096, 256
		}
		return 65536, 16384
	case "exascale":
		if quick {
			return 1 << 14, 1 << 12
		}
		return 1 << 22, 1 << 20
	default: // grid5000 variants
		if quick {
			return 1024, 32
		}
		return 8192, 128
	}
}

// runPlanCmd implements the plan subcommand: run the autotuning planner
// for one platform (or all three paper platforms) and print the ranked
// candidate table, or JSON for machine consumption (the CI bench-smoke
// job archives it as BENCH_plan.json).
func runPlanCmd(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	var (
		pf         = fs.String("platform", "grid5000", "grid5000[-cal], bgp[-cal], exascale, or all (the three calibrated paper platforms)")
		n          = fs.Int("n", 0, "result columns N (0 = the platform's paper-scale default)")
		m          = fs.Int("m", 0, "result rows M for rectangular planning (0 = n)")
		k          = fs.Int("k", 0, "contraction dimension K (0 = n)")
		p          = fs.Int("p", 0, "rank count (0 = the platform's paper-scale default)")
		b          = fs.Int("b", 0, "pin the block size b (0 = search)")
		thr        = fs.Int("threads", 0, "pin the per-rank thread budget (0 = searched under -cores, 1 otherwise)")
		cores      = fs.Int("cores", 0, "core budget: search (ranks × threads) splits of this many cores instead of planning for exactly -p ranks")
		topk       = fs.Int("topk", 8, "stage-2 refinement width")
		objective  = fs.String("objective", "total", "ranking objective: total or comm")
		quick      = fs.Bool("quick", false, "trim the candidate space (and the default problem scale) for a sub-second sweep")
		analytic   = fs.Bool("analytic", false, "closed-form ranking only, skip the stage-2 virtual runs")
		contention = fs.Bool("contention", false, "enable the platform's link-sharing model in stage 2")
		eng        = fs.String("engine", "auto", "stage-2 virtual execution engine: goroutine, event, or auto (recorded in the plan JSON)")
		jsonOut    = fs.Bool("json", false, "emit the plans as JSON")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	planEngine, err := hsumma.EngineByName(*eng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	names := []string{*pf}
	if *pf == "all" {
		names = []string{"grid5000-cal", "bgp-cal", "exascale"}
	}
	var obj hsumma.PlanObjective
	switch *objective {
	case "total":
		obj = hsumma.PlanMinTotal
	case "comm":
		obj = hsumma.PlanMinComm
	default:
		fmt.Fprintf(os.Stderr, "unknown -objective %q (want total or comm)\n", *objective)
		os.Exit(2)
	}

	var plans []*hsumma.PlanResult
	for _, name := range names {
		machine, err := platformByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pn, pp := *n, *p
		if pn == 0 || pp == 0 {
			dn, dp := planProblem(name, *quick)
			if pn == 0 {
				pn = dn
			}
			if pp == 0 && *cores == 0 {
				pp = dp
			}
		}
		// A stage-2 virtual run at the paper's 16384 ranks costs ~10 s of
		// host time each; beyond 2048 ranks default to the analytic
		// ranking unless the caller passed -analytic explicitly (so
		// -analytic=false forces full-scale simulated refinement).
		analyticSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "analytic" {
				analyticSet = true
			}
		})
		analyticOnly := *analytic
		if !analyticSet && pp > 2048 {
			analyticOnly = true
		}
		shape := shapeFromFlags(*m, pn, *k)
		start := time.Now()
		pl, err := hsumma.Plan(hsumma.PlanConfig{
			Platform: machine, Shape: shape, Procs: pp,
			BlockSize:    *b,
			Threads:      *thr,
			CoreBudget:   *cores,
			TopK:         *topk,
			Objective:    obj,
			Quick:        *quick,
			AnalyticOnly: analyticOnly,
			Contention:   *contention,
			Engine:       planEngine,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "plan failed:", err)
			os.Exit(1)
		}
		plans = append(plans, pl)
		if !*jsonOut {
			printPlan(pl, time.Since(start), analyticOnly)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plans); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func printPlan(pl *hsumma.PlanResult, elapsed time.Duration, analyticOnly bool) {
	budget := fmt.Sprintf("p=%d", pl.P)
	if pl.CoreBudget > 0 {
		budget = fmt.Sprintf("cores=%d", pl.CoreBudget)
	}
	fmt.Printf("== plan: %s — %s, %s (objective: min %s) ==\n", pl.Platform, pl.Shape, budget, pl.Objective)
	fmt.Printf("   scanned %d candidates, simulated %d, cached=%t, %v\n",
		pl.Scanned, pl.Simulated, pl.FromCache, elapsed.Round(time.Millisecond))
	if analyticOnly {
		fmt.Println("   (analytic ranking only; pass -analytic=false to force simulated refinement)")
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "   rank\talgorithm\tgrid\tt\tG\tb\tB\tbcast\tmodel comm (s)\tsim comm (s)\tsim total (s)\tengine")
	for i, s := range pl.Ranked {
		simComm, simTotal, eng := "-", "-", "-"
		if s.Refined {
			simComm, simTotal = fmt.Sprintf("%.4g", s.SimComm), fmt.Sprintf("%.4g", s.SimTotal)
			eng = s.Engine
		}
		marker := ""
		if i == 0 {
			marker = " <- best"
		}
		threads := s.Threads
		if threads < 1 {
			threads = 1
		}
		fmt.Fprintf(w, "   #%d\t%s\t%s\t%d\t%d\t%d\t%d\t%s\t%.4g\t%s\t%s\t%s%s\n",
			i+1, s.Algorithm, s.Grid, threads, s.Groups, s.BlockSize, s.OuterBlockSize,
			s.Broadcast, s.ModelComm, simComm, simTotal, eng, marker)
	}
	w.Flush()
	fmt.Println()
}

// parseLevels parses the -levels syntax "IxJ:blocksize[,IxJ:blocksize...]"
// (outermost first) into the multilevel hierarchy description.
func parseLevels(spec string) ([]hsumma.Level, error) {
	if spec == "" {
		return nil, nil
	}
	var out []hsumma.Level
	for _, part := range strings.Split(spec, ",") {
		var lv hsumma.Level
		// Sscanf ignores trailing garbage, so demand an exact round-trip:
		// "2x2:64abc" or a semicolon-joined list must not parse silently.
		if _, err := fmt.Sscanf(part, "%dx%d:%d", &lv.I, &lv.J, &lv.BlockSize); err != nil ||
			fmt.Sprintf("%dx%d:%d", lv.I, lv.J, lv.BlockSize) != part {
			return nil, fmt.Errorf("bad -levels entry %q (want IxJ:blocksize, e.g. 2x2:64)", part)
		}
		if lv.I <= 0 || lv.J <= 0 || lv.BlockSize <= 0 {
			return nil, fmt.Errorf("bad -levels entry %q: all values must be positive", part)
		}
		out = append(out, lv)
	}
	return out, nil
}
