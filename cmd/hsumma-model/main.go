// Command hsumma-model evaluates the paper's closed-form cost model
// (Section IV): it sweeps the group count G for a given platform and
// problem, prints the predicted SUMMA/HSUMMA costs, the stationary-point
// condition α/β ⋛ 2nb/p and the predicted optimal G.
//
// Usage:
//
//	hsumma-model -platform bgp -n 65536 -p 16384 -b 256
//	hsumma-model -platform exascale -n 4194304 -p 1048576 -b 256
//	hsumma-model -alpha 1e-4 -beta 1e-9 -n 8192 -p 128 -b 64
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/model"
	"repro/internal/platform"
)

func main() {
	var (
		pfName = flag.String("platform", "", "preset: grid5000, bgp, exascale (empty = use -alpha/-beta/-gamma)")
		alpha  = flag.Float64("alpha", 1e-5, "latency (s), when no preset")
		beta   = flag.Float64("beta", 1e-9, "reciprocal bandwidth (s/element), when no preset")
		gamma  = flag.Float64("gamma", 1e-10, "flop time (s), when no preset")
		n      = flag.Int("n", 65536, "matrix dimension")
		p      = flag.Int("p", 16384, "processor count")
		b      = flag.Int("b", 256, "block size (b = B)")
		bcast  = flag.String("bcast", "vandegeijn", "broadcast model: binomial, vandegeijn, flat")
	)
	flag.Parse()

	par := model.Params{N: *n, P: *p, B: *b}
	if *pfName != "" {
		pf, err := platform.ByName(*pfName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		par.Machine = pf.Model
		fmt.Printf("platform: %s  %v\n", pf.Name, pf.Model)
	} else {
		par.Machine.Alpha, par.Machine.Beta, par.Machine.Gamma = *alpha, *beta, *gamma
		fmt.Printf("machine: %v\n", par.Machine)
	}
	switch *bcast {
	case "binomial":
		par.Bcast = model.BinomialTree{}
	case "vandegeijn":
		par.Bcast = model.VanDeGeijn{}
	case "flat":
		par.Bcast = model.FlatTree{}
	default:
		fmt.Fprintf(os.Stderr, "unknown broadcast model %q\n", *bcast)
		os.Exit(1)
	}

	ratio := par.Machine.Alpha / par.Machine.Beta
	threshold := 2 * float64(*n) * float64(*b) / float64(*p)
	fmt.Printf("condition (eq.10): α/β = %.4g  vs  2nb/p = %.4g  ->  interior minimum: %v\n",
		ratio, threshold, model.MinimumAtSqrtP(par))

	s := model.SUMMA(par)
	fmt.Printf("\n%-14s %12s %12s %12s %12s\n", "algorithm", "latency(s)", "bandwidth(s)", "comm(s)", "total(s)")
	fmt.Printf("%-14s %12.4g %12.4g %12.4g %12.4g\n", "SUMMA", s.Latency, s.Bandwidth, s.Comm(), s.Total())
	for g := 1; g <= *p; g *= 4 {
		c := model.HSUMMA(par, float64(g))
		fmt.Printf("%-14s %12.4g %12.4g %12.4g %12.4g\n",
			fmt.Sprintf("HSUMMA G=%d", g), c.Latency, c.Bandwidth, c.Comm(), c.Total())
	}
	sq := math.Sqrt(float64(*p))
	c := model.HSUMMA(par, sq)
	fmt.Printf("%-14s %12.4g %12.4g %12.4g %12.4g\n",
		fmt.Sprintf("HSUMMA G=√p=%.0f", sq), c.Latency, c.Bandwidth, c.Comm(), c.Total())

	bestG, best := model.OptimalG(par, nil)
	fmt.Printf("\npredicted optimum: G=%d, comm %.4gs (%.2fx less than SUMMA's %.4gs)\n",
		bestG, best.Comm(), s.Comm()/best.Comm(), s.Comm())
}
