package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	hsumma "repro"
	"repro/internal/matrix"
	"repro/internal/serve"
)

// The -loadgen mode drives a hsumma-serve daemon with concurrent
// mixed-shape multiply traffic, verifies every response against the local
// sequential reference, then benchmarks warm-session vs one-shot Multiply
// throughput at the serving benchmark point (n=512, p=16) and writes
// BENCH_serve.json — the CI serve-smoke artefact. With -url empty it
// spins up an in-process server (same handler the daemon serves), so the
// mode also works standalone.
//
// The baseline gate (ci/bench-serve-baseline.json) is deliberately a
// *ratio* gate: it requires zero verification failures and the warm
// session to sustain at least min_throughput_ratio of the one-shot
// request rate. The session's end-to-end win is bounded by the fraction
// of a request that is setup — on compute-bound hosts the distributed run
// (the shared gemm kernel) dominates n=512 and the honest ratio sits near
// 1.0 — so the gate enforces "residency costs nothing and everything
// verifies", while the recorded ratios track the amortisation trajectory.

// loadShape is one traffic class the generator fires.
type loadShape struct {
	M, N, K int
	Procs   int
	Alg     string
}

// loadgenReport is the BENCH_serve.json schema.
type loadgenReport struct {
	URL         string  `json:"url"`
	InProcess   bool    `json:"in_process"`
	DurationS   float64 `json:"duration_s"`
	Concurrency int     `json:"concurrency"`

	Shapes    []string `json:"shapes"`
	Requests  int64    `json:"requests"`
	Errors    int64    `json:"errors"`
	Rejected  int64    `json:"rejected_503"`
	Verified  int64    `json:"verified"`
	BadResult int64    `json:"bad_results"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`

	// Server-side time decomposition of the verified requests, read back
	// from each response's stats: queue wait, staging (pad + scatter +
	// zero) and distributed execution.
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	StageP50Ms     float64 `json:"stage_p50_ms"`
	StageP99Ms     float64 `json:"stage_p99_ms"`
	ExecuteP50Ms   float64 `json:"execute_p50_ms"`
	ExecuteP99Ms   float64 `json:"execute_p99_ms"`

	SessionBench sessionBenchReport `json:"session_vs_oneshot"`
	TraceBench   traceBenchReport   `json:"traced_vs_untraced"`

	GatePass bool   `json:"gate_pass"`
	GateNote string `json:"gate_note,omitempty"`
}

// traceBenchReport records the traced vs untraced Multiply throughput
// comparison — the "tracing costs nothing when off, little when on" gate.
type traceBenchReport struct {
	N           int     `json:"n"`
	P           int     `json:"p"`
	Iters       int     `json:"iters"`
	UntracedRPS float64 `json:"untraced_rps"`
	TracedRPS   float64 `json:"traced_rps"`
	// Ratio is traced/untraced requests per second; the baseline's
	// min_trace_ratio floor gates it.
	Ratio float64 `json:"ratio"`
	// MinRatio echoes the enforced floor (0 when no baseline was given).
	MinRatio float64 `json:"min_ratio,omitempty"`
}

// sessionBenchReport records the warm-session vs one-shot comparison.
type sessionBenchReport struct {
	N     int `json:"n"`
	P     int `json:"p"`
	Iters int `json:"iters"`
	// Threads is the per-rank thread count both paths ran with
	// (min(4, NumCPU)) and Cores the host's logical CPUs: on a 1-core
	// host Threads is 1 and the ratio measures plan/map/buffer reuse
	// alone; with free cores the hybrid kernel shrinks compute, so the
	// amortised setup is a larger share and the ratio widens.
	Threads         int     `json:"threads"`
	Cores           int     `json:"cores"`
	OneShotRPS      float64 `json:"oneshot_rps"`
	SessionRPS      float64 `json:"session_rps"`
	ThroughputRatio float64 `json:"throughput_ratio"`
	OneShotSetupMs  float64 `json:"oneshot_setup_ms"`
	SessionSetupMs  float64 `json:"session_setup_ms"`
	SetupRatio      float64 `json:"setup_ratio"`
	// TargetRatio echoes the aspirational 2x session-reuse target the
	// ratio is tracked against (informational; the gate enforces the
	// baseline's min_throughput_ratio).
	TargetRatio float64 `json:"target_ratio"`
}

// loadgenBaseline is the committed gate schema (ci/bench-serve-baseline.json).
type loadgenBaseline struct {
	// MinThroughputRatio is the enforced floor for warm-session vs
	// one-shot requests/sec at the benchmark point.
	MinThroughputRatio float64 `json:"min_throughput_ratio"`
	// TargetThroughputRatio is the aspirational session-reuse target,
	// recorded in the report for trajectory tracking.
	TargetThroughputRatio float64 `json:"target_throughput_ratio"`
	// MinTraceRatio is the enforced floor for traced vs untraced Multiply
	// throughput (0 disables the gate).
	MinTraceRatio float64 `json:"min_trace_ratio"`
}

func runLoadgen(url string, durationS float64, conc int, quick bool, outPath, baselinePath string) {
	rep := loadgenReport{Concurrency: conc, DurationS: durationS}

	// Without a URL, serve in-process: same scheduler + handler as the
	// daemon.
	if url == "" {
		sc := serve.NewScheduler(serve.SchedulerConfig{RankBudget: 64, QueueDepth: 2 * conc})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: serve.NewHandler(sc, serve.HandlerConfig{DefaultProcs: 16})}
		go srv.Serve(ln)
		defer func() {
			srv.Close()
			sc.Close()
		}()
		url = "http://" + ln.Addr().String()
		rep.InProcess = true
	}
	rep.URL = url

	shapes := []loadShape{
		{M: 256, N: 256, K: 256, Procs: 16, Alg: "hsumma"},
		{M: 128, N: 64, K: 128, Procs: 4, Alg: "summa"},
	}
	if quick {
		shapes = []loadShape{
			{M: 64, N: 64, K: 64, Procs: 4, Alg: "hsumma"},
			{M: 48, N: 24, K: 48, Procs: 4, Alg: "summa"},
		}
	}
	for _, s := range shapes {
		rep.Shapes = append(rep.Shapes, fmt.Sprintf("%dx%dx%d/p%d/%s", s.M, s.N, s.K, s.Procs, s.Alg))
	}

	// Pre-build request bodies and reference products: a few operand pairs
	// per shape, reused round-robin.
	type prepared struct {
		shape loadShape
		body  []byte
		want  *matrix.Dense
	}
	var preps []prepared
	for si, s := range shapes {
		for seed := 0; seed < 2; seed++ {
			a := matrix.Random(s.M, s.K, uint64(100*si+2*seed+1))
			b := matrix.Random(s.K, s.N, uint64(100*si+2*seed+2))
			body, err := json.Marshal(map[string]any{
				"m": s.M, "n": s.N, "k": s.K, "procs": s.Procs, "algorithm": s.Alg,
				"a": a.Pack(nil), "b": b.Pack(nil),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			want := matrix.New(s.M, s.N)
			am, bm := a, b
			hsummaReference(want, am, bm)
			preps = append(preps, prepared{shape: s, body: body, want: want})
		}
	}

	var (
		requests, errCount, rejected, verified, badResult atomic.Int64
		latMu                                             sync.Mutex
		latencies                                         []float64
		queueWaits, stages, executes                      []float64
	)
	client := &http.Client{Timeout: 60 * time.Second}
	deadline := time.Now().Add(time.Duration(durationS * float64(time.Second)))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				p := preps[i%len(preps)]
				t0 := time.Now()
				resp, err := client.Post(url+"/multiply", "application/json", bytes.NewReader(p.body))
				requests.Add(1)
				if err != nil {
					errCount.Add(1)
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCount.Add(1)
					continue
				}
				if resp.StatusCode == http.StatusServiceUnavailable {
					rejected.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errCount.Add(1)
					continue
				}
				lat := time.Since(t0).Seconds()
				var res struct {
					M, N  int
					C     []float64
					Stats serve.Stats
				}
				if err := json.Unmarshal(body, &res); err != nil || len(res.C) != p.shape.M*p.shape.N {
					badResult.Add(1)
					continue
				}
				latMu.Lock()
				latencies = append(latencies, lat)
				queueWaits = append(queueWaits, res.Stats.QueueSeconds)
				stages = append(stages, res.Stats.SetupSeconds)
				executes = append(executes, res.Stats.RunSeconds)
				latMu.Unlock()
				got := matrix.FromSlice(p.shape.M, p.shape.N, res.C)
				if d := matrix.MaxAbsDiff(got, p.want); d > 1e-9 {
					badResult.Add(1)
					continue
				}
				verified.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep.Requests = requests.Load()
	rep.Errors = errCount.Load()
	rep.Rejected = rejected.Load()
	rep.Verified = verified.Load()
	rep.BadResult = badResult.Load()
	rep.ThroughputRPS = float64(rep.Verified) / elapsed
	sort.Float64s(latencies)
	if len(latencies) > 0 {
		rep.P50Ms = 1000 * latencies[len(latencies)/2]
		rep.P99Ms = 1000 * latencies[int(0.99*float64(len(latencies)-1))]
	}
	rep.QueueWaitP50Ms, rep.QueueWaitP99Ms = quantilesMs(queueWaits)
	rep.StageP50Ms, rep.StageP99Ms = quantilesMs(stages)
	rep.ExecuteP50Ms, rep.ExecuteP99Ms = quantilesMs(executes)

	rep.SessionBench = runSessionBench(quick)
	rep.TraceBench = runTraceBench(quick)

	// Gate: zero verification failures, traffic actually flowed, and the
	// warm session sustains the baseline's throughput-ratio floor.
	rep.GatePass = rep.Errors == 0 && rep.BadResult == 0 && rep.Verified > 0
	if !rep.GatePass {
		rep.GateNote = "loadgen traffic failed verification"
	}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: reading baseline: %v\n", err)
			os.Exit(1)
		}
		var base loadgenBaseline
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: parsing baseline: %v\n", err)
			os.Exit(1)
		}
		rep.SessionBench.TargetRatio = base.TargetThroughputRatio
		if rep.SessionBench.ThroughputRatio < base.MinThroughputRatio {
			rep.GatePass = false
			rep.GateNote = fmt.Sprintf("session/oneshot throughput ratio %.3f below baseline floor %.3f",
				rep.SessionBench.ThroughputRatio, base.MinThroughputRatio)
		}
		rep.TraceBench.MinRatio = base.MinTraceRatio
		if base.MinTraceRatio > 0 && rep.TraceBench.Ratio < base.MinTraceRatio {
			rep.GatePass = false
			rep.GateNote = fmt.Sprintf("traced/untraced throughput ratio %.3f below baseline floor %.3f",
				rep.TraceBench.Ratio, base.MinTraceRatio)
		}
	}

	out := os.Stdout
	if outPath != "" && outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	enc.Encode(rep)

	fmt.Fprintf(os.Stderr, "loadgen: %d requests (%d verified, %d rejected, %d errors, %d bad) in %.1fs — %.1f req/s, p50 %.1fms p99 %.1fms\n",
		rep.Requests, rep.Verified, rep.Rejected, rep.Errors, rep.BadResult, elapsed, rep.ThroughputRPS, rep.P50Ms, rep.P99Ms)
	fmt.Fprintf(os.Stderr, "session bench: one-shot %.2f req/s, warm session %.2f req/s (ratio %.3f; setup %.2fms -> %.2fms)\n",
		rep.SessionBench.OneShotRPS, rep.SessionBench.SessionRPS, rep.SessionBench.ThroughputRatio,
		rep.SessionBench.OneShotSetupMs, rep.SessionBench.SessionSetupMs)
	fmt.Fprintf(os.Stderr, "trace bench: untraced %.2f req/s, traced %.2f req/s (ratio %.3f)\n",
		rep.TraceBench.UntracedRPS, rep.TraceBench.TracedRPS, rep.TraceBench.Ratio)
	if !rep.GatePass {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: %s\n", rep.GateNote)
		os.Exit(1)
	}
}

// quantilesMs returns the p50 and p99 of the samples in milliseconds
// (zeros when empty). Sorts in place.
func quantilesMs(samples []float64) (p50, p99 float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	sort.Float64s(samples)
	return 1000 * samples[len(samples)/2], 1000 * samples[int(0.99*float64(len(samples)-1))]
}

// hsummaReference computes the sequential oracle (blas.Naive through the
// façade helper, avoiding a direct dependency here).
func hsummaReference(dst, a, b *matrix.Dense) {
	res := hsumma.Reference((*hsumma.Matrix)(a), (*hsumma.Matrix)(b))
	dst.CopyFrom((*matrix.Dense)(res))
}

// runSessionBench measures warm-session vs one-shot Multiply throughput at
// the serving benchmark point (n=512, p=16; a scaled-down n=128 with
// -quick) — the same comparison BenchmarkSessionThroughput reports.
func runSessionBench(quick bool) sessionBenchReport {
	// Iteration counts are sized so each timed side runs ~1s with the
	// packed kernel; at ~30ms per n=512 request, fewer iters made the
	// ratio noise-bound.
	n, p, iters := 512, 16, 30
	if quick {
		n, p, iters = 128, 16, 40
	}
	// Both paths run hybrid ranks when the host has free cores — same
	// fairness as before (identical configs), but compute shrinks and the
	// session's amortised setup becomes the visible difference.
	threads := runtime.NumCPU()
	if threads > 4 {
		threads = 4
	}
	cfg := hsumma.Config{Procs: p, Algorithm: hsumma.AlgHSUMMA, Threads: threads}
	a := hsumma.RandomMatrix(n, n, 1)
	b := hsumma.RandomMatrix(n, n, 2)

	// Warm both paths (plan caches, allocator) before timing.
	if _, _, err := hsumma.Multiply(a, b, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var oneSetup float64
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		_, st, err := hsumma.Multiply(a, b, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		oneSetup += st.SetupSeconds
	}
	oneShot := time.Since(t0).Seconds()

	sess, err := hsumma.NewSession(hsumma.SquareShape(n), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sess.Close()
	if _, _, err := sess.Multiply(a, b); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var sessSetup float64
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		_, st, err := sess.Multiply(a, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sessSetup += st.SetupSeconds
	}
	sessWall := time.Since(t0).Seconds()

	rb := sessionBenchReport{
		N: n, P: p, Iters: iters,
		Threads: threads, Cores: runtime.NumCPU(),
		OneShotRPS:     float64(iters) / oneShot,
		SessionRPS:     float64(iters) / sessWall,
		OneShotSetupMs: 1000 * oneSetup / float64(iters),
		SessionSetupMs: 1000 * sessSetup / float64(iters),
		TargetRatio:    2.0,
	}
	rb.ThroughputRatio = rb.SessionRPS / rb.OneShotRPS
	if rb.SessionSetupMs > 0 {
		rb.SetupRatio = rb.OneShotSetupMs / rb.SessionSetupMs
	}
	if math.IsNaN(rb.ThroughputRatio) || math.IsInf(rb.ThroughputRatio, 0) {
		rb.ThroughputRatio = 0
	}
	return rb
}

// runTraceBench measures untraced vs traced Multiply throughput on the
// same configuration — the observability overhead gate. The untraced side
// is the nil-recorder fast path every default run takes; the traced side
// pays span recording on every communication call and local multiply.
// Three alternating rounds are timed and the best ratio gated: round
// noise on a shared CI host easily exceeds the real overhead, and a
// genuine systematic regression depresses every round, not just the
// unluckiest one.
func runTraceBench(quick bool) traceBenchReport {
	n, p, iters := 256, 16, 30
	if quick {
		n, p, iters = 128, 16, 30
	}
	cfg := hsumma.Config{Procs: p, Algorithm: hsumma.AlgHSUMMA}
	a := hsumma.RandomMatrix(n, n, 3)
	b := hsumma.RandomMatrix(n, n, 4)
	if _, _, err := hsumma.Multiply(a, b, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tb := traceBenchReport{N: n, P: p, Iters: iters}
	for round := 0; round < 3; round++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, _, err := hsumma.Multiply(a, b, cfg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		untracedRPS := float64(iters) / time.Since(t0).Seconds()

		t0 = time.Now()
		for i := 0; i < iters; i++ {
			if _, _, _, err := hsumma.MultiplyTraced(a, b, cfg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		tracedRPS := float64(iters) / time.Since(t0).Seconds()

		if untracedRPS <= 0 {
			continue
		}
		if ratio := tracedRPS / untracedRPS; ratio > tb.Ratio {
			tb.UntracedRPS, tb.TracedRPS, tb.Ratio = untracedRPS, tracedRPS, ratio
		}
	}
	return tb
}
