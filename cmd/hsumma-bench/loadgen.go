package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	hsumma "repro"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/serve"
	"repro/internal/tune"
)

// The -loadgen mode drives a hsumma-serve daemon with a matrix of named
// traffic scenarios — steady single-shape, mixed-shape, bursty arrivals,
// deliberate overload and drain-under-close — verifies every response
// against the local sequential reference, benchmarks warm-session vs
// one-shot and pipelined vs serial serving throughput, and writes
// BENCH_serve.json (the CI serve-smoke artefact). With -url empty it spins
// up an in-process server (same handler the daemon serves), so the mode
// also works standalone; the overload and drain scenarios always run
// against dedicated in-process schedulers because they need to control
// admission limits and Close() timing.
//
// The baseline gate (ci/bench-serve-baseline.json) is deliberately a set
// of *ratio* gates: zero verification failures, warm-session throughput at
// least min_throughput_ratio of one-shot, traced at least min_trace_ratio
// of untraced, and the pipelined+batched scheduler at least
// min_pipeline_ratio of the serial (PipelineDepth=1, MaxBatch=1) one at
// the same benchmark point. The pipeline ratio's upside comes from
// coalescing same-A requests (one A scatter and one engine run for k
// right-hand sides) and from overlapping staging with execution; the floor
// only demands it never makes serving slower.

// loadShape is one traffic class the generator fires.
type loadShape struct {
	M, N, K int
	Procs   int
	Alg     string
}

func (s loadShape) String() string {
	return fmt.Sprintf("%dx%dx%d/p%d/%s", s.M, s.N, s.K, s.Procs, s.Alg)
}

// scenarioReport is one named traffic scenario's outcome in BENCH_serve.json.
type scenarioReport struct {
	Name string `json:"name"`
	// Mode is "http" for scenarios driven through the daemon URL and
	// "inproc" for the ones that need their own scheduler (overload, drain).
	Mode        string   `json:"mode"`
	DurationS   float64  `json:"duration_s"`
	Concurrency int      `json:"concurrency"`
	Shapes      []string `json:"shapes"`

	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	Rejected  int64 `json:"rejected_503"`
	Verified  int64 `json:"verified"`
	BadResult int64 `json:"bad_results"`
	// ClosedClean counts workers that observed ErrClosed and stopped
	// cleanly (drain scenario only).
	ClosedClean int64 `json:"closed_clean,omitempty"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// ModelDriftP50 is the median measured/predicted cost ratio across the
	// scenario's verified responses (0 when none carried a prediction) —
	// the plan-fidelity signal, per traffic class.
	ModelDriftP50 float64 `json:"model_drift_p50"`

	Pass bool   `json:"pass"`
	Note string `json:"note,omitempty"`
}

// loadgenReport is the BENCH_serve.json schema. The top-level traffic
// counters aggregate the HTTP-driven scenarios (steady, mix, burst);
// per-scenario breakdowns live under "scenarios".
type loadgenReport struct {
	URL         string  `json:"url"`
	InProcess   bool    `json:"in_process"`
	DurationS   float64 `json:"duration_s"`
	Concurrency int     `json:"concurrency"`

	Shapes    []string `json:"shapes"`
	Requests  int64    `json:"requests"`
	Errors    int64    `json:"errors"`
	Rejected  int64    `json:"rejected_503"`
	Verified  int64    `json:"verified"`
	BadResult int64    `json:"bad_results"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`

	// Server-side time decomposition of the verified requests, read back
	// from each response's stats: queue wait, staging (pad + scatter +
	// zero) and distributed execution.
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	StageP50Ms     float64 `json:"stage_p50_ms"`
	StageP99Ms     float64 `json:"stage_p99_ms"`
	ExecuteP50Ms   float64 `json:"execute_p50_ms"`
	ExecuteP99Ms   float64 `json:"execute_p99_ms"`

	Scenarios []scenarioReport `json:"scenarios"`

	SessionBench  sessionBenchReport  `json:"session_vs_oneshot"`
	TraceBench    traceBenchReport    `json:"traced_vs_untraced"`
	SampledBench  sampledBenchReport  `json:"sampled_vs_unsampled"`
	PipelineBench pipelineBenchReport `json:"pipelined_vs_serial"`
	// PipelineRatio mirrors PipelineBench.Ratio at the top level for easy
	// extraction; the baseline's min_pipeline_ratio floor gates it.
	PipelineRatio float64 `json:"pipeline_ratio"`

	GatePass bool   `json:"gate_pass"`
	GateNote string `json:"gate_note,omitempty"`
}

// traceBenchReport records the traced vs untraced Multiply throughput
// comparison — the "tracing costs nothing when off, little when on" gate.
type traceBenchReport struct {
	N           int     `json:"n"`
	P           int     `json:"p"`
	Iters       int     `json:"iters"`
	UntracedRPS float64 `json:"untraced_rps"`
	TracedRPS   float64 `json:"traced_rps"`
	// Ratio is traced/untraced requests per second; the baseline's
	// min_trace_ratio floor gates it.
	Ratio float64 `json:"ratio"`
	// MinRatio echoes the enforced floor (0 when no baseline was given).
	MinRatio float64 `json:"min_ratio,omitempty"`
}

// sampledBenchReport records the flight-recorder overhead comparison:
// identical scheduler traffic with TraceSampleN enabled vs disabled. Only
// 1 in N requests pays span recording, so the floor sits with the traced
// gate at 0.95 — sampling must stay pay-for-what-you-use.
type sampledBenchReport struct {
	N       int `json:"n"`
	P       int `json:"p"`
	Iters   int `json:"iters"`
	SampleN int `json:"sample_n"`
	// UnsampledRPS is the TraceSampleN=0 scheduler; SampledRPS runs the
	// same traffic with 1-in-SampleN flight recording on.
	UnsampledRPS float64 `json:"unsampled_rps"`
	SampledRPS   float64 `json:"sampled_rps"`
	// Ratio is sampled/unsampled requests per second; the baseline's
	// min_sampled_trace_ratio floor gates it.
	Ratio float64 `json:"ratio"`
	// MinRatio echoes the enforced floor (0 when no baseline was given).
	MinRatio float64 `json:"min_ratio,omitempty"`
}

// sessionBenchReport records the warm-session vs one-shot comparison.
type sessionBenchReport struct {
	N     int `json:"n"`
	P     int `json:"p"`
	Iters int `json:"iters"`
	// Threads is the per-rank thread count both paths ran with
	// (min(4, NumCPU)) and Cores the host's logical CPUs: on a 1-core
	// host Threads is 1 and the ratio measures plan/map/buffer reuse
	// alone; with free cores the hybrid kernel shrinks compute, so the
	// amortised setup is a larger share and the ratio widens.
	Threads         int     `json:"threads"`
	Cores           int     `json:"cores"`
	OneShotRPS      float64 `json:"oneshot_rps"`
	SessionRPS      float64 `json:"session_rps"`
	ThroughputRatio float64 `json:"throughput_ratio"`
	OneShotSetupMs  float64 `json:"oneshot_setup_ms"`
	SessionSetupMs  float64 `json:"session_setup_ms"`
	SetupRatio      float64 `json:"setup_ratio"`
	// TargetRatio echoes the aspirational 2x session-reuse target the
	// ratio is tracked against (informational; the gate enforces the
	// baseline's min_throughput_ratio).
	TargetRatio float64 `json:"target_ratio"`
}

// pipelineBenchReport records the pipelined+batched vs serial scheduler
// comparison: identical traffic (concurrent same-A, distinct-B requests)
// through two schedulers that differ only in PipelineDepth/MaxBatch.
type pipelineBenchReport struct {
	N           int `json:"n"`
	P           int `json:"p"`
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	// SerialRPS is the PipelineDepth=1, MaxBatch=1 scheduler — the
	// pre-pipelining serving path, preserved bit-identically.
	SerialRPS    float64 `json:"serial_rps"`
	PipelinedRPS float64 `json:"pipelined_rps"`
	// Ratio is pipelined/serial requests per second.
	Ratio float64 `json:"ratio"`
	// BatchSizeMean and OverlapSeconds are the pipelined side's scheduler
	// metrics: how much coalescing and stage/execute overlap the traffic
	// actually produced.
	BatchSizeMean  float64 `json:"batch_size_mean"`
	OverlapSeconds float64 `json:"overlap_seconds"`
	// MinRatio echoes the enforced floor (0 when no baseline was given).
	MinRatio float64 `json:"min_ratio,omitempty"`
}

// loadgenBaseline is the committed gate schema (ci/bench-serve-baseline.json).
type loadgenBaseline struct {
	// MinThroughputRatio is the enforced floor for warm-session vs
	// one-shot requests/sec at the benchmark point.
	MinThroughputRatio float64 `json:"min_throughput_ratio"`
	// TargetThroughputRatio is the aspirational session-reuse target,
	// recorded in the report for trajectory tracking.
	TargetThroughputRatio float64 `json:"target_throughput_ratio"`
	// MinTraceRatio is the enforced floor for traced vs untraced Multiply
	// throughput (0 disables the gate).
	MinTraceRatio float64 `json:"min_trace_ratio"`
	// MinSampledTraceRatio is the enforced floor for scheduler throughput
	// with 1-in-N flight-recorder sampling on vs off (0 disables the gate).
	MinSampledTraceRatio float64 `json:"min_sampled_trace_ratio"`
	// MinPipelineRatio is the enforced floor for pipelined+batched vs
	// serial scheduler throughput (0 disables the gate).
	MinPipelineRatio float64 `json:"min_pipeline_ratio"`
}

// allScenarios is the canonical scenario order.
var allScenarios = []string{"steady", "mix", "burst", "overload", "drain"}

// driftAgg collects per-request measured/predicted ratios for a
// scenario's model_drift_p50.
type driftAgg struct {
	mu sync.Mutex
	v  []float64
}

func (d *driftAgg) add(r float64) {
	if r > 0 {
		d.mu.Lock()
		d.v = append(d.v, r)
		d.mu.Unlock()
	}
}

func (d *driftAgg) p50() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.v) == 0 {
		return 0
	}
	s := append([]float64(nil), d.v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// prepared is one pre-built request: marshalled body plus the reference
// product every response is verified against.
type prepared struct {
	shape loadShape
	body  []byte
	want  *matrix.Dense
}

// prepareBodies builds a few operand pairs per shape (reused round-robin).
func prepareBodies(shapes []loadShape) []prepared {
	var preps []prepared
	for si, s := range shapes {
		for seed := 0; seed < 2; seed++ {
			a := matrix.Random(s.M, s.K, uint64(100*si+2*seed+1))
			b := matrix.Random(s.K, s.N, uint64(100*si+2*seed+2))
			body, err := json.Marshal(map[string]any{
				"m": s.M, "n": s.N, "k": s.K, "procs": s.Procs, "algorithm": s.Alg,
				"a": a.Pack(nil), "b": b.Pack(nil),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			want := matrix.New(s.M, s.N)
			hsummaReference(want, a, b)
			preps = append(preps, prepared{shape: s, body: body, want: want})
		}
	}
	return preps
}

// httpAgg accumulates the top-level traffic aggregates across the
// HTTP-driven scenarios. All percentiles come from the shared
// internal/serve histogram quantile code, so the loadgen's numbers agree
// with /metrics by construction.
type httpAgg struct {
	seconds                  float64
	lat, queue, stage, exec  *serve.Histogram
	requests, errs, rejected int64
	verified, bad            int64
}

func newHTTPAgg() *httpAgg {
	return &httpAgg{
		lat:   serve.NewHistogram(),
		queue: serve.NewHistogram(),
		stage: serve.NewHistogram(),
		exec:  serve.NewHistogram(),
	}
}

func runLoadgen(url string, durationS float64, conc int, quick bool, outPath, baselinePath, scenarioList string) {
	rep := loadgenReport{Concurrency: conc, DurationS: durationS}

	selected := parseScenarios(scenarioList)

	// Without a URL, serve in-process: same scheduler + handler as the
	// daemon.
	if url == "" {
		sc := serve.NewScheduler(serve.SchedulerConfig{RankBudget: 64, QueueDepth: 2 * conc})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: serve.NewHandler(sc, serve.HandlerConfig{DefaultProcs: 16})}
		go srv.Serve(ln)
		defer func() {
			srv.Close()
			sc.Close()
		}()
		url = "http://" + ln.Addr().String()
		rep.InProcess = true
	}
	rep.URL = url

	shapes := []loadShape{
		{M: 256, N: 256, K: 256, Procs: 16, Alg: "hsumma"},
		{M: 128, N: 64, K: 128, Procs: 4, Alg: "summa"},
	}
	if quick {
		shapes = []loadShape{
			{M: 64, N: 64, K: 64, Procs: 4, Alg: "hsumma"},
			{M: 48, N: 24, K: 48, Procs: 4, Alg: "summa"},
		}
	}
	for _, s := range shapes {
		rep.Shapes = append(rep.Shapes, s.String())
	}
	preps := prepareBodies(shapes)

	// Each selected HTTP scenario gets an equal slice of the requested
	// duration; overload and drain size themselves.
	nHTTP := 0
	for _, name := range selected {
		if name == "steady" || name == "mix" || name == "burst" {
			nHTTP++
		}
	}
	perScenario := durationS
	if nHTTP > 1 {
		perScenario = durationS / float64(nHTTP)
	}

	agg := newHTTPAgg()
	for _, name := range selected {
		var sr scenarioReport
		switch name {
		case "steady":
			sr = driveHTTP("steady", url, preps[:2], conc, perScenario, false, agg)
		case "mix":
			sr = driveHTTP("mix", url, preps, conc, perScenario, false, agg)
		case "burst":
			sr = driveHTTP("burst", url, preps, conc, perScenario, true, agg)
		case "overload":
			sr = runOverloadScenario(quick, durationS)
		case "drain":
			sr = runDrainScenario(quick)
		}
		rep.Scenarios = append(rep.Scenarios, sr)
		fmt.Fprintf(os.Stderr, "scenario %-8s [%s]: %d requests (%d verified, %d rejected, %d errors, %d bad) — %.1f req/s, p50 %.1fms p99 %.1fms%s\n",
			sr.Name, sr.Mode, sr.Requests, sr.Verified, sr.Rejected, sr.Errors, sr.BadResult,
			sr.ThroughputRPS, sr.P50Ms, sr.P99Ms, scenarioSuffix(sr))
	}

	rep.Requests = agg.requests
	rep.Errors = agg.errs
	rep.Rejected = agg.rejected
	rep.Verified = agg.verified
	rep.BadResult = agg.bad
	if agg.seconds > 0 {
		rep.ThroughputRPS = float64(agg.verified) / agg.seconds
	}
	rep.P50Ms = 1000 * agg.lat.Quantile(0.5)
	rep.P99Ms = 1000 * agg.lat.Quantile(0.99)
	rep.QueueWaitP50Ms = 1000 * agg.queue.Quantile(0.5)
	rep.QueueWaitP99Ms = 1000 * agg.queue.Quantile(0.99)
	rep.StageP50Ms = 1000 * agg.stage.Quantile(0.5)
	rep.StageP99Ms = 1000 * agg.stage.Quantile(0.99)
	rep.ExecuteP50Ms = 1000 * agg.exec.Quantile(0.5)
	rep.ExecuteP99Ms = 1000 * agg.exec.Quantile(0.99)

	rep.SessionBench = runSessionBench(quick)
	rep.TraceBench = runTraceBench(quick)
	rep.SampledBench = runSampledBench(quick)
	rep.PipelineBench = runPipelineBench(quick)
	rep.PipelineRatio = rep.PipelineBench.Ratio

	// Gate: every scenario passed (zero verification failures, expected
	// backpressure/drain behaviour), and the benchmark ratios clear the
	// baseline floors.
	rep.GatePass = true
	for _, sr := range rep.Scenarios {
		if !sr.Pass {
			rep.GatePass = false
			rep.GateNote = fmt.Sprintf("scenario %s failed: %s", sr.Name, sr.Note)
			break
		}
	}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: reading baseline: %v\n", err)
			os.Exit(1)
		}
		var base loadgenBaseline
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: parsing baseline: %v\n", err)
			os.Exit(1)
		}
		rep.SessionBench.TargetRatio = base.TargetThroughputRatio
		if rep.GatePass && rep.SessionBench.ThroughputRatio < base.MinThroughputRatio {
			rep.GatePass = false
			rep.GateNote = fmt.Sprintf("session/oneshot throughput ratio %.3f below baseline floor %.3f",
				rep.SessionBench.ThroughputRatio, base.MinThroughputRatio)
		}
		rep.TraceBench.MinRatio = base.MinTraceRatio
		if rep.GatePass && base.MinTraceRatio > 0 && rep.TraceBench.Ratio < base.MinTraceRatio {
			rep.GatePass = false
			rep.GateNote = fmt.Sprintf("traced/untraced throughput ratio %.3f below baseline floor %.3f",
				rep.TraceBench.Ratio, base.MinTraceRatio)
		}
		rep.SampledBench.MinRatio = base.MinSampledTraceRatio
		if rep.GatePass && base.MinSampledTraceRatio > 0 && rep.SampledBench.Ratio < base.MinSampledTraceRatio {
			rep.GatePass = false
			rep.GateNote = fmt.Sprintf("sampled/unsampled throughput ratio %.3f below baseline floor %.3f",
				rep.SampledBench.Ratio, base.MinSampledTraceRatio)
		}
		rep.PipelineBench.MinRatio = base.MinPipelineRatio
		if rep.GatePass && base.MinPipelineRatio > 0 && rep.PipelineRatio < base.MinPipelineRatio {
			rep.GatePass = false
			rep.GateNote = fmt.Sprintf("pipelined/serial throughput ratio %.3f below baseline floor %.3f",
				rep.PipelineRatio, base.MinPipelineRatio)
		}
	}

	out := os.Stdout
	if outPath != "" && outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	enc.Encode(rep)

	fmt.Fprintf(os.Stderr, "loadgen: %d requests (%d verified, %d rejected, %d errors, %d bad) — %.1f req/s, p50 %.1fms p99 %.1fms\n",
		rep.Requests, rep.Verified, rep.Rejected, rep.Errors, rep.BadResult, rep.ThroughputRPS, rep.P50Ms, rep.P99Ms)
	fmt.Fprintf(os.Stderr, "session bench: one-shot %.2f req/s, warm session %.2f req/s (ratio %.3f; setup %.2fms -> %.2fms)\n",
		rep.SessionBench.OneShotRPS, rep.SessionBench.SessionRPS, rep.SessionBench.ThroughputRatio,
		rep.SessionBench.OneShotSetupMs, rep.SessionBench.SessionSetupMs)
	fmt.Fprintf(os.Stderr, "trace bench: untraced %.2f req/s, traced %.2f req/s (ratio %.3f)\n",
		rep.TraceBench.UntracedRPS, rep.TraceBench.TracedRPS, rep.TraceBench.Ratio)
	fmt.Fprintf(os.Stderr, "sampled bench: unsampled %.2f req/s, 1-in-%d sampled %.2f req/s (ratio %.3f)\n",
		rep.SampledBench.UnsampledRPS, rep.SampledBench.SampleN, rep.SampledBench.SampledRPS, rep.SampledBench.Ratio)
	fmt.Fprintf(os.Stderr, "pipeline bench: serial %.2f req/s, pipelined %.2f req/s (ratio %.3f; mean batch %.2f, overlap %.3fs)\n",
		rep.PipelineBench.SerialRPS, rep.PipelineBench.PipelinedRPS, rep.PipelineRatio,
		rep.PipelineBench.BatchSizeMean, rep.PipelineBench.OverlapSeconds)
	if !rep.GatePass {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: %s\n", rep.GateNote)
		os.Exit(1)
	}
}

// parseScenarios resolves the -scenarios flag into a validated, ordered
// scenario list.
func parseScenarios(list string) []string {
	if list == "" || list == "all" {
		return allScenarios
	}
	valid := make(map[string]bool, len(allScenarios))
	for _, s := range allScenarios {
		valid[s] = true
	}
	var out []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !valid[name] {
			fmt.Fprintf(os.Stderr, "loadgen: unknown scenario %q (valid: %s)\n", name, strings.Join(allScenarios, ","))
			os.Exit(1)
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return allScenarios
	}
	return out
}

func scenarioSuffix(sr scenarioReport) string {
	if sr.Name == "drain" {
		return fmt.Sprintf(", %d closed clean", sr.ClosedClean)
	}
	if !sr.Pass {
		return " — FAIL: " + sr.Note
	}
	return ""
}

// driveHTTP fires one HTTP traffic scenario: conc workers POST the
// prepared bodies round-robin for `seconds`, verifying every 200 response
// against its reference product. With burst set, arrivals are gated to a
// 300ms-on / 300ms-off duty cycle so the server sees alternating queue
// build-up and idle drains instead of a constant closed loop.
func driveHTTP(name, url string, preps []prepared, conc int, seconds float64, burst bool, agg *httpAgg) scenarioReport {
	const (
		burstPeriod = 600 * time.Millisecond
		burstOn     = 300 * time.Millisecond
	)
	var requests, errCount, rejected, verified, badResult atomic.Int64
	lat := serve.NewHistogram()
	var drift driftAgg
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()
	deadline := start.Add(time.Duration(seconds * float64(time.Second)))
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				if burst {
					if off := time.Since(start) % burstPeriod; off >= burstOn {
						// Sleep out the quiet half of the duty cycle.
						time.Sleep(burstPeriod - off)
						continue
					}
				}
				p := preps[i%len(preps)]
				t0 := time.Now()
				resp, err := client.Post(url+"/multiply", "application/json", bytes.NewReader(p.body))
				requests.Add(1)
				if err != nil {
					errCount.Add(1)
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCount.Add(1)
					continue
				}
				if resp.StatusCode == http.StatusServiceUnavailable {
					rejected.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errCount.Add(1)
					continue
				}
				latS := time.Since(t0).Seconds()
				var res struct {
					M, N  int
					C     []float64
					Stats serve.Stats
				}
				if err := json.Unmarshal(body, &res); err != nil || len(res.C) != p.shape.M*p.shape.N {
					badResult.Add(1)
					continue
				}
				lat.Observe(latS)
				drift.add(res.Stats.ModelDriftRatio)
				agg.lat.Observe(latS)
				agg.queue.Observe(res.Stats.QueueSeconds)
				agg.stage.Observe(res.Stats.SetupSeconds)
				agg.exec.Observe(res.Stats.RunSeconds)
				got := matrix.FromSlice(p.shape.M, p.shape.N, res.C)
				if d := matrix.MaxAbsDiff(got, p.want); d > 1e-9 {
					badResult.Add(1)
					continue
				}
				verified.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	sr := scenarioReport{
		Name: name, Mode: "http",
		DurationS:     elapsed,
		Concurrency:   conc,
		Requests:      requests.Load(),
		Errors:        errCount.Load(),
		Rejected:      rejected.Load(),
		Verified:      verified.Load(),
		BadResult:     badResult.Load(),
		P50Ms:         1000 * lat.Quantile(0.5),
		P99Ms:         1000 * lat.Quantile(0.99),
		ModelDriftP50: drift.p50(),
	}
	for _, p := range preps {
		if len(sr.Shapes) == 0 || sr.Shapes[len(sr.Shapes)-1] != p.shape.String() {
			sr.Shapes = append(sr.Shapes, p.shape.String())
		}
	}
	if elapsed > 0 {
		sr.ThroughputRPS = float64(sr.Verified) / elapsed
	}
	sr.Pass = sr.Errors == 0 && sr.BadResult == 0 && sr.Verified > 0
	if !sr.Pass {
		sr.Note = "traffic failed verification"
	}

	agg.seconds += elapsed
	agg.requests += sr.Requests
	agg.errs += sr.Errors
	agg.rejected += sr.Rejected
	agg.verified += sr.Verified
	agg.bad += sr.BadResult
	return sr
}

// inprocPair is one operand pair with its precomputed reference product
// for the scheduler-direct scenarios.
type inprocPair struct {
	a, b, want *matrix.Dense
}

func makePairs(s loadShape, n int, seed uint64) []inprocPair {
	pairs := make([]inprocPair, n)
	for i := range pairs {
		a := matrix.Random(s.M, s.K, seed+uint64(2*i))
		b := matrix.Random(s.K, s.N, seed+uint64(2*i)+1)
		want := matrix.New(s.M, s.N)
		hsummaReference(want, a, b)
		pairs[i] = inprocPair{a: a, b: b, want: want}
	}
	return pairs
}

// runOverloadScenario hammers a deliberately under-provisioned in-process
// scheduler (tiny queue) with more concurrent clients than it admits: the
// expected outcome is a mix of verified responses and clean ErrOverloaded
// rejections, with zero errors and zero bad results — backpressure sheds
// load instead of corrupting or wedging it. Distinct A operands keep the
// batcher from coalescing the excess away.
func runOverloadScenario(quick bool, durationS float64) scenarioReport {
	shape := loadShape{M: 64, N: 64, K: 64, Procs: 4, Alg: "hsumma"}
	if quick {
		shape = loadShape{M: 32, N: 32, K: 32, Procs: 4, Alg: "hsumma"}
	}
	pairs := makePairs(shape, 4, 7000)
	rp := tune.ResolveParams{Procs: shape.Procs, Algorithm: engine.Algorithm(shape.Alg)}

	sc := serve.NewScheduler(serve.SchedulerConfig{CoreBudget: 64, QueueDepth: 2})
	defer sc.Close()

	conc := 8
	seconds := math.Min(2, math.Max(0.5, durationS/3))
	var requests, errCount, rejected, verified, badResult atomic.Int64
	lat := serve.NewHistogram()
	var drift driftAgg
	start := time.Now()
	deadline := start.Add(time.Duration(seconds * float64(time.Second)))
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				p := pairs[i%len(pairs)]
				t0 := time.Now()
				out, st, err := sc.Multiply(p.a, p.b, rp)
				requests.Add(1)
				switch {
				case errors.Is(err, serve.ErrOverloaded):
					rejected.Add(1)
					time.Sleep(200 * time.Microsecond)
				case err != nil:
					errCount.Add(1)
				case matrix.MaxAbsDiff(out, p.want) > 1e-9:
					badResult.Add(1)
				default:
					lat.Observe(time.Since(t0).Seconds())
					drift.add(st.ModelDriftRatio)
					verified.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	sr := scenarioReport{
		Name: "overload", Mode: "inproc",
		DurationS:     elapsed,
		Concurrency:   conc,
		Shapes:        []string{shape.String()},
		Requests:      requests.Load(),
		Errors:        errCount.Load(),
		Rejected:      rejected.Load(),
		Verified:      verified.Load(),
		BadResult:     badResult.Load(),
		P50Ms:         1000 * lat.Quantile(0.5),
		P99Ms:         1000 * lat.Quantile(0.99),
		ModelDriftP50: drift.p50(),
	}
	if elapsed > 0 {
		sr.ThroughputRPS = float64(sr.Verified) / elapsed
	}
	sr.Pass = sr.Errors == 0 && sr.BadResult == 0 && sr.Verified > 0 && sr.Rejected > 0
	switch {
	case sr.Errors > 0 || sr.BadResult > 0:
		sr.Note = "overload traffic failed verification"
	case sr.Verified == 0:
		sr.Note = "no requests admitted under overload"
	case sr.Rejected == 0:
		sr.Note = "no backpressure observed (expected ErrOverloaded rejections)"
	}
	return sr
}

// runDrainScenario verifies drain-under-close: concurrent clients stream
// requests at an in-process scheduler, Close() lands mid-traffic, and
// every worker must end with a clean ErrClosed — no hangs, no errors, no
// bad results. The accounting cross-check is the "no request lost or
// double-executed" assertion: the scheduler's completed counter must equal
// the number of responses clients actually received and verified.
func runDrainScenario(quick bool) scenarioReport {
	shape := loadShape{M: 64, N: 64, K: 64, Procs: 4, Alg: "hsumma"}
	if quick {
		shape = loadShape{M: 32, N: 32, K: 32, Procs: 4, Alg: "hsumma"}
	}
	pairs := makePairs(shape, 3, 9000)
	rp := tune.ResolveParams{Procs: shape.Procs, Algorithm: engine.Algorithm(shape.Alg)}

	sc := serve.NewScheduler(serve.SchedulerConfig{CoreBudget: 64, QueueDepth: 16})

	conc := 6
	var requests, errCount, rejected, verified, badResult, closedClean atomic.Int64
	lat := serve.NewHistogram()
	var drift driftAgg
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				p := pairs[i%len(pairs)]
				t0 := time.Now()
				out, st, err := sc.Multiply(p.a, p.b, rp)
				requests.Add(1)
				switch {
				case errors.Is(err, serve.ErrClosed):
					closedClean.Add(1)
					return
				case errors.Is(err, serve.ErrOverloaded):
					rejected.Add(1)
					time.Sleep(200 * time.Microsecond)
				case err != nil:
					errCount.Add(1)
				case matrix.MaxAbsDiff(out, p.want) > 1e-9:
					badResult.Add(1)
				default:
					lat.Observe(time.Since(t0).Seconds())
					drift.add(st.ModelDriftRatio)
					verified.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond)
	sc.Close()
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	m := sc.Metrics()

	sr := scenarioReport{
		Name: "drain", Mode: "inproc",
		DurationS:     elapsed,
		Concurrency:   conc,
		Shapes:        []string{shape.String()},
		Requests:      requests.Load(),
		Errors:        errCount.Load(),
		Rejected:      rejected.Load(),
		Verified:      verified.Load(),
		BadResult:     badResult.Load(),
		ClosedClean:   closedClean.Load(),
		P50Ms:         1000 * lat.Quantile(0.5),
		P99Ms:         1000 * lat.Quantile(0.99),
		ModelDriftP50: drift.p50(),
	}
	if elapsed > 0 {
		sr.ThroughputRPS = float64(sr.Verified) / elapsed
	}
	sr.Pass = true
	switch {
	case sr.Errors > 0 || sr.BadResult > 0:
		sr.Pass, sr.Note = false, "drain traffic failed verification"
	case sr.Verified == 0:
		sr.Pass, sr.Note = false, "no requests completed before close"
	case sr.ClosedClean != int64(conc):
		sr.Pass, sr.Note = false, fmt.Sprintf("%d of %d workers ended without a clean ErrClosed", int64(conc)-sr.ClosedClean, conc)
	case m.Completed != sr.Verified:
		sr.Pass, sr.Note = false, fmt.Sprintf("request lost or double-executed: server completed %d, clients verified %d", m.Completed, sr.Verified)
	case sr.Requests != sr.Verified+sr.Rejected+sr.ClosedClean:
		sr.Pass, sr.Note = false, "client-side request accounting does not balance"
	}
	return sr
}

// hsummaReference computes the sequential oracle (blas.Naive through the
// façade helper, avoiding a direct dependency here).
func hsummaReference(dst, a, b *matrix.Dense) {
	res := hsumma.Reference((*hsumma.Matrix)(a), (*hsumma.Matrix)(b))
	dst.CopyFrom((*matrix.Dense)(res))
}

// runPipelineBench drives identical traffic through a serial scheduler
// (PipelineDepth=1, MaxBatch=1 — the pre-pipelining serving path) and a
// pipelined+batched one (the defaults), and reports the throughput ratio.
// The traffic is the batcher's home turf by construction — concurrent
// requests sharing one A with distinct right-hand sides — because that is
// the serving pattern the coalescer exists for; the serial side runs the
// very same stream. Every response is still verified against the
// sequential reference.
func runPipelineBench(quick bool) pipelineBenchReport {
	n, p, total, conc := 128, 16, 96, 8
	if quick {
		n, p, total, conc = 96, 16, 48, 8
	}
	rp := tune.ResolveParams{Procs: p, Algorithm: engine.HSUMMA}
	a := matrix.Random(n, n, 41)
	const nRHS = 4
	bs := make([]*matrix.Dense, nRHS)
	wants := make([]*matrix.Dense, nRHS)
	for i := range bs {
		bs[i] = matrix.Random(n, n, uint64(42+i))
		wants[i] = matrix.New(n, n)
		hsummaReference(wants[i], a, bs[i])
	}

	measure := func(cfg serve.SchedulerConfig) (float64, serve.Metrics) {
		sc := serve.NewScheduler(cfg)
		defer sc.Close()
		// Warm the session (world spin-up, plan and buffer caches).
		if _, _, err := sc.Multiply(a, bs[0], rp); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		iters := total / conc
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					j := (w*iters + i) % nRHS
					out, _, err := sc.Multiply(a, bs[j], rp)
					if err != nil {
						fmt.Fprintln(os.Stderr, "pipeline bench:", err)
						os.Exit(1)
					}
					if matrix.MaxAbsDiff(out, wants[j]) > 1e-9 {
						fmt.Fprintln(os.Stderr, "pipeline bench: result verification failed")
						os.Exit(1)
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(t0).Seconds()
		return float64(conc*iters) / elapsed, sc.Metrics()
	}

	serialRPS, _ := measure(serve.SchedulerConfig{
		CoreBudget: 256, QueueDepth: 4 * conc,
		PipelineDepth: 1, MaxBatch: 1,
	})
	pipedRPS, pm := measure(serve.SchedulerConfig{
		CoreBudget: 256, QueueDepth: 4 * conc,
	})

	pb := pipelineBenchReport{
		N: n, P: p, Requests: total, Concurrency: conc,
		SerialRPS:      serialRPS,
		PipelinedRPS:   pipedRPS,
		BatchSizeMean:  pm.BatchSizeMean,
		OverlapSeconds: pm.PipelineOverlapSeconds,
	}
	if serialRPS > 0 {
		pb.Ratio = pipedRPS / serialRPS
	}
	if math.IsNaN(pb.Ratio) || math.IsInf(pb.Ratio, 0) {
		pb.Ratio = 0
	}
	return pb
}

// runSessionBench measures warm-session vs one-shot Multiply throughput at
// the serving benchmark point (n=512, p=16; a scaled-down n=128 with
// -quick) — the same comparison BenchmarkSessionThroughput reports.
func runSessionBench(quick bool) sessionBenchReport {
	// Iteration counts are sized so each timed side runs ~1s with the
	// packed kernel; at ~30ms per n=512 request, fewer iters made the
	// ratio noise-bound.
	n, p, iters := 512, 16, 30
	if quick {
		n, p, iters = 128, 16, 40
	}
	// Both paths run hybrid ranks when the host has free cores — same
	// fairness as before (identical configs), but compute shrinks and the
	// session's amortised setup becomes the visible difference.
	threads := runtime.NumCPU()
	if threads > 4 {
		threads = 4
	}
	cfg := hsumma.Config{Procs: p, Algorithm: hsumma.AlgHSUMMA, Threads: threads}
	a := hsumma.RandomMatrix(n, n, 1)
	b := hsumma.RandomMatrix(n, n, 2)

	// Warm both paths (plan caches, allocator) before timing.
	if _, _, err := hsumma.Multiply(a, b, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var oneSetup float64
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		_, st, err := hsumma.Multiply(a, b, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		oneSetup += st.SetupSeconds
	}
	oneShot := time.Since(t0).Seconds()

	sess, err := hsumma.NewSession(hsumma.SquareShape(n), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sess.Close()
	if _, _, err := sess.Multiply(a, b); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var sessSetup float64
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		_, st, err := sess.Multiply(a, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sessSetup += st.SetupSeconds
	}
	sessWall := time.Since(t0).Seconds()

	rb := sessionBenchReport{
		N: n, P: p, Iters: iters,
		Threads: threads, Cores: runtime.NumCPU(),
		OneShotRPS:     float64(iters) / oneShot,
		SessionRPS:     float64(iters) / sessWall,
		OneShotSetupMs: 1000 * oneSetup / float64(iters),
		SessionSetupMs: 1000 * sessSetup / float64(iters),
		TargetRatio:    2.0,
	}
	rb.ThroughputRatio = rb.SessionRPS / rb.OneShotRPS
	if rb.SessionSetupMs > 0 {
		rb.SetupRatio = rb.OneShotSetupMs / rb.SessionSetupMs
	}
	if math.IsNaN(rb.ThroughputRatio) || math.IsInf(rb.ThroughputRatio, 0) {
		rb.ThroughputRatio = 0
	}
	return rb
}

// runTraceBench measures untraced vs traced Multiply throughput on the
// same configuration — the observability overhead gate. The untraced side
// is the nil-recorder fast path every default run takes; the traced side
// pays span recording on every communication call and local multiply.
// Three alternating rounds are timed and the best ratio gated: round
// noise on a shared CI host easily exceeds the real overhead, and a
// genuine systematic regression depresses every round, not just the
// unluckiest one.
func runTraceBench(quick bool) traceBenchReport {
	n, p, iters := 256, 16, 30
	if quick {
		n, p, iters = 128, 16, 30
	}
	cfg := hsumma.Config{Procs: p, Algorithm: hsumma.AlgHSUMMA}
	a := hsumma.RandomMatrix(n, n, 3)
	b := hsumma.RandomMatrix(n, n, 4)
	if _, _, err := hsumma.Multiply(a, b, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tb := traceBenchReport{N: n, P: p, Iters: iters}
	for round := 0; round < 3; round++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, _, err := hsumma.Multiply(a, b, cfg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		untracedRPS := float64(iters) / time.Since(t0).Seconds()

		t0 = time.Now()
		for i := 0; i < iters; i++ {
			if _, _, _, err := hsumma.MultiplyTraced(a, b, cfg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		tracedRPS := float64(iters) / time.Since(t0).Seconds()

		if untracedRPS <= 0 {
			continue
		}
		if ratio := tracedRPS / untracedRPS; ratio > tb.Ratio {
			tb.UntracedRPS, tb.TracedRPS, tb.Ratio = untracedRPS, tracedRPS, ratio
		}
	}
	return tb
}

// runSampledBench measures scheduler throughput with the flight recorder's
// 1-in-N sampling on vs off — the "always-on tracing stays
// pay-for-what-you-use" gate. Identical warmed traffic drives two
// schedulers differing only in TraceSampleN; like runTraceBench, three
// alternating rounds are timed and the best ratio gated, because
// shared-host round noise dwarfs the real 1-in-N recording cost.
func runSampledBench(quick bool) sampledBenchReport {
	n, p, iters, sampleN := 256, 16, 30, 4
	if quick {
		n, p, iters, sampleN = 128, 16, 30, 4
	}
	rp := tune.ResolveParams{Procs: p, Algorithm: engine.HSUMMA}
	a := matrix.Random(n, n, 51)
	b := matrix.Random(n, n, 52)
	want := matrix.New(n, n)
	hsummaReference(want, a, b)

	measure := func(sc *serve.Scheduler) float64 {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			out, _, err := sc.Multiply(a, b, rp)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sampled bench:", err)
				os.Exit(1)
			}
			if matrix.MaxAbsDiff(out, want) > 1e-9 {
				fmt.Fprintln(os.Stderr, "sampled bench: result verification failed")
				os.Exit(1)
			}
		}
		return float64(iters) / time.Since(t0).Seconds()
	}

	plain := serve.NewScheduler(serve.SchedulerConfig{CoreBudget: 64, QueueDepth: 8})
	defer plain.Close()
	sampled := serve.NewScheduler(serve.SchedulerConfig{
		CoreBudget: 64, QueueDepth: 8, TraceSampleN: sampleN,
	})
	defer sampled.Close()
	// Warm both sessions (world spin-up, plan and buffer caches).
	measureWarm := func(sc *serve.Scheduler) {
		if _, _, err := sc.Multiply(a, b, rp); err != nil {
			fmt.Fprintln(os.Stderr, "sampled bench:", err)
			os.Exit(1)
		}
	}
	measureWarm(plain)
	measureWarm(sampled)

	sb := sampledBenchReport{N: n, P: p, Iters: iters, SampleN: sampleN}
	for round := 0; round < 3; round++ {
		unsampledRPS := measure(plain)
		sampledRPS := measure(sampled)
		if unsampledRPS <= 0 {
			continue
		}
		if ratio := sampledRPS / unsampledRPS; ratio > sb.Ratio {
			sb.UnsampledRPS, sb.SampledRPS, sb.Ratio = unsampledRPS, sampledRPS, ratio
		}
	}
	return sb
}
