// Command hsumma-bench regenerates the paper's evaluation artefacts: one
// experiment per table/figure (table1, table2, fig5…fig10, valgrid,
// valbgp, headline).
//
// Usage:
//
//	hsumma-bench -list
//	hsumma-bench -exp fig8
//	hsumma-bench -exp all -quick
//	hsumma-bench -exp fig5 -format csv
//	hsumma-bench -exp fig8 -uncalibrated   # paper's published α/β only
//
// The -simbench mode benchmarks the two virtual execution engines on the
// full paper-scale BG/P run, asserts bit-identical results, and writes
// BENCH_sim.json (the CI perf gate):
//
//	hsumma-bench -simbench -out BENCH_sim.json -baseline ci/bench-sim-baseline.json
//
// The -kernelbench mode benchmarks the local GEMM microkernel — the
// register-blocked packed kernel against the scalar kernel, plus the
// intra-rank thread sweep — and writes BENCH_kernel.json (the CI
// kernel gate):
//
//	hsumma-bench -kernelbench -out BENCH_kernel.json -baseline ci/bench-kernel-baseline.json
//
// The -loadgen mode drives a hsumma-serve daemon (or an in-process server
// when -url is empty) with a matrix of named traffic scenarios — steady,
// mix, burst, overload and drain — verifies every response against the
// sequential reference, benchmarks warm-session vs one-shot and pipelined
// vs serial throughput, and writes BENCH_serve.json (the serve-smoke CI
// gate):
//
//	hsumma-bench -loadgen -url http://localhost:8080 -duration 5 -conc 4 \
//	    -scenarios all -out BENCH_serve.json -baseline ci/bench-serve-baseline.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		id           = flag.String("exp", "", "experiment id, or 'all'")
		list         = flag.Bool("list", false, "list experiments")
		quick        = flag.Bool("quick", false, "scaled-down configuration (seconds instead of minutes)")
		uncalibrated = flag.Bool("uncalibrated", false, "use the paper's published Hockney parameters instead of the SUMMA-fitted machines")
		format       = flag.String("format", "table", "output format: table or csv")
		simbench     = flag.Bool("simbench", false, "benchmark the virtual execution engines on the full-scale BG/P run and emit BENCH_sim.json")
		kernelbench  = flag.Bool("kernelbench", false, "benchmark the packed GEMM microkernel against the scalar kernel and emit BENCH_kernel.json")
		out          = flag.String("out", "-", "simbench/loadgen: output path for the JSON report (- = stdout)")
		baseline     = flag.String("baseline", "", "simbench/loadgen: committed baseline JSON to gate against")
		loadgen      = flag.Bool("loadgen", false, "drive a hsumma-serve daemon with concurrent mixed-shape traffic and emit BENCH_serve.json")
		url          = flag.String("url", "", "loadgen: daemon base URL (empty = start an in-process server)")
		duration     = flag.Float64("duration", 5, "loadgen: traffic duration in seconds")
		conc         = flag.Int("conc", 4, "loadgen: concurrent client workers")
		scenarios    = flag.String("scenarios", "all", "loadgen: comma-separated scenario list (steady,mix,burst,overload,drain) or all")
	)
	flag.Parse()

	if *simbench {
		runSimBench(*quick, *out, *baseline)
		return
	}
	if *kernelbench {
		runKernelBench(*quick, *out, *baseline)
		return
	}
	if *loadgen {
		runLoadgen(*url, *duration, *conc, *quick, *out, *baseline, *scenarios)
		return
	}

	if *list || *id == "" {
		fmt.Println("Available experiments (paper artefact -> id):")
		for _, e := range exp.All() {
			fmt.Printf("  %-9s %s\n            %s\n", e.ID, e.Title, e.Paper)
		}
		if *id == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opts := exp.Options{Quick: *quick, Uncalibrated: *uncalibrated}
	ids := []string{*id}
	if *id == "all" {
		ids = exp.IDs()
	}
	for _, eid := range ids {
		e, err := exp.ByID(eid)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", eid, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Print(exp.CSV(res))
		default:
			fmt.Println(exp.Format(res))
		}
	}
}
