package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simalg"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// The -simbench mode is the CI perf gate for the virtual execution
// engines: it runs the full paper-scale BG/P simulation (the
// BenchmarkFullScaleBGPSim configuration) on both engines, asserts their
// results are bit-identical, writes BENCH_sim.json, and — when a
// committed baseline is given — fails if the event engine's wall time
// ratio against the goroutine engine regressed more than 25%. The
// gate compares the engines' *ratio*, not absolute seconds, so it is
// insensitive to runner hardware.

// simBenchReport is the BENCH_sim.json schema.
type simBenchReport struct {
	Config string `json:"config"`
	Procs  int    `json:"p"`
	N      int    `json:"n"`
	// Shape records the full GEMM problem shape the benchmark executed
	// (M = N = K for the paper's square configuration).
	Shape                 matrix.Shape `json:"shape"`
	GoroutineWallS        float64      `json:"goroutine_wall_s"`
	EventWallS            float64      `json:"event_wall_s"`
	EventSpeedup          float64      `json:"event_speedup"`
	EventVsGoroutineRatio float64      `json:"event_vs_goroutine_ratio"`
	SimTotalS             float64      `json:"sim_total_s"`
	SimCommS              float64      `json:"sim_comm_s"`
	ParityOK              bool         `json:"parity_ok"`
}

// simBenchBaseline is the committed baseline schema (see
// ci/bench-sim-baseline.json).
type simBenchBaseline struct {
	// EventVsGoroutineRatio is the nominal event/goroutine wall-time
	// ratio at the time the baseline was committed; the gate allows 25%
	// headroom on top.
	EventVsGoroutineRatio float64 `json:"event_vs_goroutine_ratio"`
}

// simBenchRegressionHeadroom: the CI job fails when the measured ratio
// exceeds baseline × this factor (a >25% event-engine regression).
const simBenchRegressionHeadroom = 1.25

// simBenchReps: runs per engine; the minimum wall time is reported.
const simBenchReps = 2

func runSimBench(quick bool, outPath, baselinePath string) {
	if quick && baselinePath != "" {
		fmt.Fprintln(os.Stderr, "simbench: -quick cannot be gated against the committed full-scale baseline (the engines' relative cost differs at small scale); drop -quick or -baseline")
		os.Exit(2)
	}
	// One core for both engines: the acceptance criterion is single-core
	// wall time, and pinning makes the ratio independent of the runner's
	// core count (the goroutine engine scales with cores, the event
	// engine's replay loop does not — unpinned, the ratio would drift
	// with hardware).
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	n, grid, groups := 65536, topo.Grid{S: 128, T: 128}, 128
	if quick {
		n, grid, groups = 16384, topo.Grid{S: 64, T: 64}, 64
	}
	h, err := topo.FactorGroups(grid, groups)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := simalg.Config{
		N: n, Grid: grid, BlockSize: 256, Groups: h,
		Bcast: sched.VanDeGeijn, Machine: platform.BlueGenePCalibrated().Model,
	}

	// Best of simBenchReps per engine: the goroutine engine's wall time
	// swings ±30% run to run (its 16384-goroutine rendezvous order is
	// scheduler-dependent), so a single-shot ratio would flake the gate.
	// Minimum is the right estimator — noise only ever adds time.
	run := func(ex engine.Executor) (simalg.Result, []simnet.VRankStats, float64) {
		var first simalg.Result
		var firstStats []simnet.VRankStats
		bestWall := -1.0
		for rep := 0; rep < simBenchReps; rep++ {
			cfg := cfg
			cfg.Executor = ex
			start := time.Now()
			res, stats, err := simalg.RunStats(cfg, engine.HSUMMA)
			wall := time.Since(start).Seconds()
			if err != nil {
				fmt.Fprintf(os.Stderr, "simbench: %s engine: %v\n", ex, err)
				os.Exit(1)
			}
			if rep == 0 {
				first, firstStats = res, stats
			} else if res.Total != first.Total || res.Comm != first.Comm {
				fmt.Fprintf(os.Stderr, "simbench: FAIL: %s engine not deterministic across reps\n", ex)
				os.Exit(1)
			}
			if bestWall < 0 || wall < bestWall {
				bestWall = wall
			}
		}
		return first, firstStats, bestWall
	}
	gRes, gStats, gWall := run(engine.ExecutorGoroutine)
	eRes, eStats, eWall := run(engine.ExecutorEvent)

	parity := gRes.Total == eRes.Total && gRes.Comm == eRes.Comm
	for r := range gStats {
		if gStats[r] != eStats[r] {
			parity = false
			break
		}
	}

	rep := simBenchReport{
		Config: fmt.Sprintf("hsumma bgp-cal n=%d p=%d G=%d b=256 vandegeijn", n, grid.Size(), groups),
		Procs:  grid.Size(), N: n, Shape: eRes.Shape,
		GoroutineWallS:        gWall,
		EventWallS:            eWall,
		EventSpeedup:          gWall / eWall,
		EventVsGoroutineRatio: eWall / gWall,
		SimTotalS:             eRes.Total,
		SimCommS:              eRes.Comm,
		ParityOK:              parity,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if outPath == "" || outPath == "-" {
		os.Stdout.Write(out)
	} else if err := os.WriteFile(outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "simbench: goroutine %.2fs, event %.2fs (%.1fx), parity=%t\n",
		gWall, eWall, rep.EventSpeedup, parity)

	if !parity {
		fmt.Fprintln(os.Stderr, "simbench: FAIL: engines disagree (parity violation)")
		os.Exit(1)
	}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: baseline: %v\n", err)
			os.Exit(1)
		}
		var base simBenchBaseline
		if err := json.Unmarshal(raw, &base); err != nil || base.EventVsGoroutineRatio <= 0 {
			fmt.Fprintf(os.Stderr, "simbench: bad baseline %s: %v\n", baselinePath, err)
			os.Exit(1)
		}
		limit := base.EventVsGoroutineRatio * simBenchRegressionHeadroom
		if rep.EventVsGoroutineRatio > limit {
			fmt.Fprintf(os.Stderr,
				"simbench: FAIL: event/goroutine wall ratio %.3f exceeds baseline %.3f +25%% headroom (%.3f) — the event engine regressed\n",
				rep.EventVsGoroutineRatio, base.EventVsGoroutineRatio, limit)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "simbench: ratio %.3f within baseline %.3f +25%% headroom\n",
			rep.EventVsGoroutineRatio, base.EventVsGoroutineRatio)
	}
}
