// Command hsumma-serve is the GEMM-as-a-service daemon: an HTTP front end
// over the serving subsystem (internal/serve), keeping distributed
// sessions resident and routing concurrent multiply requests onto them by
// execution shape.
//
//	hsumma-serve -addr :8080 -platform grid5000 -core-budget 256
//
// Endpoints:
//
//	POST /multiply   one GEMM; JSON body:
//	                   {"m":512,"n":512,"k":512,"procs":16,
//	                    "algorithm":"hsumma","threads":4,"a":[...],"b":[...]}
//	                 or raw little-endian float64s (A then B) with the
//	                 shape in query parameters:
//	                   /multiply?m=512&k=512&n=512&procs=16&threads=4
//	GET  /plan       the autotuning planner's ranked plan:
//	                   /plan?n=4096&p=256&platform=bgp
//	GET  /metrics    scheduler + plan-cache counters, per-key latency
//	                 histograms (Prometheus format)
//	GET  /healthz    liveness
//	POST /debug/trace      (only with -debug-trace) arm a one-shot span
//	                       capture of the next multiply; responds with
//	                       Chrome trace-event JSON
//	GET  /debug/traces     (only with -trace-sample) the flight recorder's
//	                       sampled captures; /debug/traces/{id} fetches one
//	                       as Chrome trace-event JSON
//	GET  /debug/critpath   (only with -trace-sample) critical-path report
//	                       over the newest sampled capture
//	GET  /debug/pprof/...  (only with -pprof) the Go runtime profiler
//
// The daemon logs one structured JSON record per request (log/slog):
// request id, method, path, status, duration, and for multiplies the spec
// key, shape and queue wait. -log-level picks the floor (debug also logs
// /metrics and /healthz scrapes).
//
// Each session runs a two-stage pipeline — operand staging overlapped with
// distributed execution — and coalesces queued same-A requests into one
// multi-right-hand-side execution; -pipeline-depth 1 -max-batch 1 restores
// the serial pre-pipelining path bit-for-bit.
//
// Sessions are accounted in cores — ranks × per-rank threads — against the
// core budget; -rank-budget remains as the pre-hybrid alias. Backpressure
// (bounded session queues, core budget) surfaces as 503 with Retry-After;
// a SIGINT/SIGTERM drains gracefully — in-flight requests finish, queued
// ones get a clean error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/hockney"
	"repro/internal/platform"
	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		pfName     = flag.String("platform", "", "platform preset the planner tunes auto requests for (grid5000, bgp, exascale; empty = grid5000)")
		coreBudget = flag.Int("core-budget", 0, "max resident cores (ranks × threads) across all sessions (default 256)")
		rankBudget = flag.Int("rank-budget", 0, "alias for -core-budget from before hybrid sessions existed")
		queueDepth = flag.Int("queue-depth", 32, "per-session bounded queue depth")
		pipeDepth  = flag.Int("pipeline-depth", 0, "staged buffer sets per session: 2+ overlaps staging with execution, 1 = serial pre-pipelining path (default 2)")
		maxBatch   = flag.Int("max-batch", 0, "max same-A requests coalesced into one multi-RHS execution, 1 = no batching (default 8)")
		batchWin   = flag.Duration("batch-window", 0, "extra wait for same-A arrivals before executing a non-full batch (0 = coalesce only what is already queued)")
		procs      = flag.Int("default-procs", 16, "rank count for requests that do not pin one")
		kernCalib  = flag.String("kernel-calib", "", "BENCH_kernel.json path: calibrate the planner's intra-rank speedup curve from the host's measured thread scaling (empty = the 3% default serial fraction)")
		withPprof  = flag.Bool("pprof", false, "expose the Go profiler under /debug/pprof/")
		withTrace  = flag.Bool("debug-trace", false, "expose POST /debug/trace (one-shot span capture of the next multiply)")
		traceEvery = flag.Int("trace-sample", 0, "flight recorder: sample 1 in N multiplies into a bounded trace ring served at /debug/traces (0 = off)")
		traceRing  = flag.Int("trace-ring", 0, "flight-recorder ring capacity (default 16 captures)")
		driftRepl  = flag.Bool("drift-replan", false, "invalidate a shape's memoised plan when its measured/predicted cost drifts persistently past -drift-threshold")
		driftThr   = flag.Float64("drift-threshold", 0, "sustained measured/predicted ratio (or inverse) that marks a plan stale (default 2.0)")
		logLevel   = flag.String("log-level", "info", "log floor: debug, info, warn or error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "hsumma-serve: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *kernCalib != "" {
		fit, err := calibrateThreads(*kernCalib)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hsumma-serve: -kernel-calib: %v\n", err)
			os.Exit(2)
		}
		logger.Info("thread scaling calibrated",
			"source", *kernCalib,
			"serial_fraction", fit,
			"default", hockney.DefaultThreadOverhead,
		)
	}

	hcfg := serve.HandlerConfig{
		DefaultProcs: *procs,
		Logger:       logger,
		EnableTrace:  *withTrace,
	}
	if *pfName != "" {
		pf, err := platform.ByName(*pfName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		hcfg.Platform = &pf
	}

	budget := *coreBudget
	if budget <= 0 {
		budget = *rankBudget
	}
	if budget <= 0 {
		budget = 256
	}
	sched := serve.NewScheduler(serve.SchedulerConfig{
		CoreBudget:     budget,
		QueueDepth:     *queueDepth,
		PipelineDepth:  *pipeDepth,
		MaxBatch:       *maxBatch,
		BatchWindow:    *batchWin,
		TraceSampleN:   *traceEvery,
		TraceRingSize:  *traceRing,
		DriftReplan:    *driftRepl,
		DriftThreshold: *driftThr,
	})
	handler := serve.NewHandler(sched, hcfg)
	if *withPprof {
		// An outer mux: the service endpoints stay exactly as NewHandler
		// wires them, with the profiler grafted alongside. Deliberately
		// opt-in — /debug/pprof on an open port leaks heap contents.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Info("draining", "note", "in-flight requests finish, queued ones error out")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		sched.Close()
		close(done)
	}()

	logger.Info("listening",
		"addr", *addr,
		"core_budget", budget,
		"queue_depth", *queueDepth,
		"pipeline_depth", *pipeDepth,
		"max_batch", *maxBatch,
		"batch_window", batchWin.String(),
		"default_procs", *procs,
		"pprof", *withPprof,
		"debug_trace", *withTrace,
		"trace_sample", *traceEvery,
		"drift_replan", *driftRepl,
		"log_level", level.String(),
	)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen failed", "error", err)
		os.Exit(1)
	}
	<-done
}

// calibrateThreads fits the planner's intra-rank speedup curve from a
// BENCH_kernel.json produced on this host (cmd/hsumma-bench -kernelbench):
// the measured scaling_vs_1t points replace the default 3% serial fraction,
// so auto-planned thread budgets reflect what the host's cores actually
// deliver. Serial configurations are unaffected (Speedup(1) stays exactly 1).
func calibrateThreads(path string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep struct {
		Shapes []struct {
			Threaded []struct {
				Threads int     `json:"threads"`
				Scaling float64 `json:"scaling_vs_1t"`
			} `json:"threaded"`
		} `json:"shapes"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", path, err)
	}
	scaling := map[int]float64{}
	counts := map[int]int{}
	for _, sh := range rep.Shapes {
		for _, th := range sh.Threaded {
			scaling[th.Threads] += th.Scaling
			counts[th.Threads]++
		}
	}
	for t := range scaling {
		scaling[t] /= float64(counts[t])
	}
	fit, ok := hockney.CalibrateFromScaling(scaling)
	if !ok {
		return 0, fmt.Errorf("%s carries no usable scaling_vs_1t points (threads > 1)", path)
	}
	return fit, nil
}
