// Command hsumma-serve is the GEMM-as-a-service daemon: an HTTP front end
// over the serving subsystem (internal/serve), keeping distributed
// sessions resident and routing concurrent multiply requests onto them by
// execution shape.
//
//	hsumma-serve -addr :8080 -platform grid5000 -rank-budget 256
//
// Endpoints:
//
//	POST /multiply   one GEMM; JSON body:
//	                   {"m":512,"n":512,"k":512,"procs":16,
//	                    "algorithm":"hsumma","a":[...],"b":[...]}
//	                 or raw little-endian float64s (A then B) with the
//	                 shape in query parameters:
//	                   /multiply?m=512&k=512&n=512&procs=16
//	GET  /plan       the autotuning planner's ranked plan:
//	                   /plan?n=4096&p=256&platform=bgp
//	GET  /metrics    scheduler + plan-cache counters (Prometheus format)
//	GET  /healthz    liveness
//
// Backpressure (bounded session queues, rank budget) surfaces as 503 with
// Retry-After; a SIGINT/SIGTERM drains gracefully — in-flight requests
// finish, queued ones get a clean error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/platform"
	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		pfName     = flag.String("platform", "", "platform preset the planner tunes auto requests for (grid5000, bgp, exascale; empty = grid5000)")
		rankBudget = flag.Int("rank-budget", 256, "max resident ranks across all sessions")
		queueDepth = flag.Int("queue-depth", 32, "per-session bounded queue depth")
		procs      = flag.Int("default-procs", 16, "rank count for requests that do not pin one")
	)
	flag.Parse()

	hcfg := serve.HandlerConfig{DefaultProcs: *procs}
	if *pfName != "" {
		pf, err := platform.ByName(*pfName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		hcfg.Platform = &pf
	}

	sched := serve.NewScheduler(serve.SchedulerConfig{
		RankBudget: *rankBudget,
		QueueDepth: *queueDepth,
	})
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(sched, hcfg)}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("hsumma-serve: draining (in-flight requests finish, queued ones error out)")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		sched.Close()
		close(done)
	}()

	log.Printf("hsumma-serve: listening on %s (rank budget %d, queue depth %d, default procs %d)",
		*addr, *rankBudget, *queueDepth, *procs)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
