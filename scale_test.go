package hsumma

// Paper-scale correctness: the Grid'5000 experiments ran on p=128 cores
// (an 8×16 grid). The in-process runtime executes the same configuration
// with real data — 128 goroutine ranks, the paper's grid, HSUMMA with the
// G the paper's sweep found best — and verifies the product element-wise.

import "testing"

func TestPaperScaleGrid5000Configuration(t *testing.T) {
	if testing.Short() {
		t.Skip("128-rank run skipped in short mode")
	}
	n := 256 // scaled-down n; the topology is the paper's exactly
	grid := [2]int{8, 16}
	a := RandomMatrix(n, n, 100)
	b := RandomMatrix(n, n, 101)
	want := Reference(a, b)
	for _, cfg := range []Config{
		{Procs: 128, Grid: &grid, Algorithm: AlgSUMMA, BlockSize: 8, Broadcast: BcastVanDeGeijn},
		{Procs: 128, Grid: &grid, Algorithm: AlgHSUMMA, Groups: 8, BlockSize: 8, Broadcast: BcastVanDeGeijn},
		{Procs: 128, Grid: &grid, Algorithm: AlgHSUMMA, Groups: 32, BlockSize: 4, OuterBlockSize: 16},
	} {
		got, st, err := Multiply(a, b, cfg)
		if err != nil {
			t.Fatalf("%s G=%d: %v", cfg.Algorithm, cfg.Groups, err)
		}
		if d := MaxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("%s G=%d: off by %g", cfg.Algorithm, cfg.Groups, d)
		}
		if st.Messages == 0 {
			t.Fatalf("%s G=%d: no messages", cfg.Algorithm, cfg.Groups)
		}
	}
}

func TestPaperScaleBGPTopologyMiniature(t *testing.T) {
	if testing.Short() {
		t.Skip("256-rank run skipped in short mode")
	}
	// A 16×16 miniature of the BG/P 128×128 grid, G=16 (=√p as the
	// model prescribes), b=B, Van de Geijn broadcast — the paper's
	// headline configuration shrunk to what one process hosts happily.
	n := 256
	grid := [2]int{16, 16}
	a := RandomMatrix(n, n, 200)
	b := RandomMatrix(n, n, 201)
	got, _, err := Multiply(a, b, Config{
		Procs: 256, Grid: &grid, Algorithm: AlgHSUMMA, Groups: 16,
		BlockSize: 16, Broadcast: BcastVanDeGeijn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, Reference(a, b)); d > 1e-10 {
		t.Fatalf("off by %g", d)
	}
}
