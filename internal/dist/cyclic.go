package dist

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/topo"
)

// CyclicMap describes the two-dimensional block-cyclic distribution of a
// rows×cols matrix over a process grid with br×bc distribution blocks:
// global block (bi,bj) lives on rank (bi mod S, bj mod T) at local block
// (bi div S, bj div T). For uniform local tiles — the restriction
// core.CyclicSUMMA relies on — the block-row and block-column counts must
// divide evenly over the grid.
type CyclicMap struct {
	rows, cols int
	br, bc     int
	grid       topo.Grid
	localR     int // local rows per rank
	localC     int // local cols per rank
}

// NewCyclicMap validates the layout (br | rows, bc | cols, and the block
// grid divisible by the process grid so every rank owns the same tile
// shape) and returns the distribution map.
func NewCyclicMap(rows, cols, br, bc int, g topo.Grid) (*CyclicMap, error) {
	if rows <= 0 || cols <= 0 || br <= 0 || bc <= 0 {
		return nil, fmt.Errorf("dist: invalid cyclic layout %dx%d blocks %dx%d", rows, cols, br, bc)
	}
	if g.S <= 0 || g.T <= 0 {
		return nil, fmt.Errorf("dist: invalid grid %v", g)
	}
	if rows%br != 0 || cols%bc != 0 {
		return nil, fmt.Errorf("dist: %dx%d matrix not divisible into %dx%d blocks", rows, cols, br, bc)
	}
	if (rows/br)%g.S != 0 || (cols/bc)%g.T != 0 {
		return nil, fmt.Errorf("dist: %dx%d block grid not divisible by process grid %v", rows/br, cols/bc, g)
	}
	return &CyclicMap{
		rows: rows, cols: cols, br: br, bc: bc, grid: g,
		localR: rows / g.S, localC: cols / g.T,
	}, nil
}

// Grid returns the process grid the map distributes over.
func (m *CyclicMap) Grid() topo.Grid { return m.grid }

// BlockRows and BlockCols return the distribution block shape.
func (m *CyclicMap) BlockRows() int { return m.br }

// BlockCols returns the distribution block width.
func (m *CyclicMap) BlockCols() int { return m.bc }

// LocalRows returns the number of rows each rank owns.
func (m *CyclicMap) LocalRows() int { return m.localR }

// LocalCols returns the number of columns each rank owns.
func (m *CyclicMap) LocalCols() int { return m.localC }

// Locate maps a global element (gi,gj) to its owning rank and local
// position under the block-cyclic layout.
func (m *CyclicMap) Locate(gi, gj int) (rank, li, lj int) {
	if gi < 0 || gi >= m.rows || gj < 0 || gj >= m.cols {
		panic(fmt.Sprintf("dist: element (%d,%d) outside %dx%d matrix", gi, gj, m.rows, m.cols))
	}
	bi, bj := gi/m.br, gj/m.bc
	rank = m.grid.Rank(bi%m.grid.S, bj%m.grid.T)
	li = (bi/m.grid.S)*m.br + gi%m.br
	lj = (bj/m.grid.T)*m.bc + gj%m.bc
	return rank, li, lj
}

// Scatter cuts a global matrix into per-rank block-cyclic tiles.
func (m *CyclicMap) Scatter(a *matrix.Dense) []*matrix.Dense {
	if a.Rows != m.rows || a.Cols != m.cols {
		panic(fmt.Sprintf("dist: matrix %dx%d does not match map %dx%d", a.Rows, a.Cols, m.rows, m.cols))
	}
	tiles := make([]*matrix.Dense, m.grid.Size())
	for r := range tiles {
		tiles[r] = matrix.New(m.localR, m.localC)
	}
	m.forEachBlock(func(rank, gi, gj, li, lj int) {
		tiles[rank].View(li, lj, m.br, m.bc).CopyFrom(a.View(gi, gj, m.br, m.bc))
	})
	return tiles
}

// Gather reassembles the global matrix from per-rank tiles.
func (m *CyclicMap) Gather(tiles []*matrix.Dense) *matrix.Dense {
	if len(tiles) != m.grid.Size() {
		panic(fmt.Sprintf("dist: %d tiles for grid %v", len(tiles), m.grid))
	}
	out := matrix.New(m.rows, m.cols)
	m.forEachBlock(func(rank, gi, gj, li, lj int) {
		t := tiles[rank]
		if t.Rows != m.localR || t.Cols != m.localC {
			panic(fmt.Sprintf("dist: tile %d is %dx%d, want %dx%d", rank, t.Rows, t.Cols, m.localR, m.localC))
		}
		out.View(gi, gj, m.br, m.bc).CopyFrom(t.View(li, lj, m.br, m.bc))
	})
	return out
}

// forEachBlock visits every distribution block with its owner and both
// coordinate systems.
func (m *CyclicMap) forEachBlock(fn func(rank, gi, gj, li, lj int)) {
	for bi := 0; bi < m.rows/m.br; bi++ {
		for bj := 0; bj < m.cols/m.bc; bj++ {
			rank := m.grid.Rank(bi%m.grid.S, bj%m.grid.T)
			fn(rank, bi*m.br, bj*m.bc, (bi/m.grid.S)*m.br, (bj/m.grid.T)*m.bc)
		}
	}
}
