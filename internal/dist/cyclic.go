package dist

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/topo"
)

// CyclicMap describes the two-dimensional block-cyclic distribution of a
// rows×cols matrix over a process grid with br×bc distribution blocks:
// global block (bi,bj) lives on rank (bi mod S, bj mod T) at local block
// (bi div S, bj div T). Any positive shape is accepted — when the block
// size does not divide the matrix the trailing block row/column is ragged,
// and when the block grid does not divide the process grid ranks own
// different numbers of blocks, exactly as in ScaLAPACK. The uniform-tile
// restriction core.CyclicSUMMA relies on is validated there, not here.
type CyclicMap struct {
	rows, cols int
	br, bc     int
	grid       topo.Grid
	nbr, nbc   int // global block rows/cols (ceil division)
}

// NewCyclicMap validates positivity and returns the distribution map.
func NewCyclicMap(rows, cols, br, bc int, g topo.Grid) (*CyclicMap, error) {
	if rows <= 0 || cols <= 0 || br <= 0 || bc <= 0 {
		return nil, fmt.Errorf("dist: invalid cyclic layout %dx%d blocks %dx%d", rows, cols, br, bc)
	}
	if g.S <= 0 || g.T <= 0 {
		return nil, fmt.Errorf("dist: invalid grid %v", g)
	}
	return &CyclicMap{
		rows: rows, cols: cols, br: br, bc: bc, grid: g,
		nbr: (rows + br - 1) / br, nbc: (cols + bc - 1) / bc,
	}, nil
}

// Grid returns the process grid the map distributes over.
func (m *CyclicMap) Grid() topo.Grid { return m.grid }

// BlockRows and BlockCols return the distribution block shape.
func (m *CyclicMap) BlockRows() int { return m.br }

// BlockCols returns the distribution block width.
func (m *CyclicMap) BlockCols() int { return m.bc }

// blockHeight returns the height of global block row bi (ragged at the
// trailing edge).
func (m *CyclicMap) blockHeight(bi int) int {
	if h := m.rows - bi*m.br; h < m.br {
		return h
	}
	return m.br
}

// blockWidth returns the width of global block column bj.
func (m *CyclicMap) blockWidth(bj int) int {
	if w := m.cols - bj*m.bc; w < m.bc {
		return w
	}
	return m.bc
}

// localRowsOf returns the number of matrix rows grid row i owns: its full
// blocks, minus the trailing-block trim when it owns the ragged one.
func (m *CyclicMap) localRowsOf(i int) int {
	if i >= m.nbr {
		return 0
	}
	owned := (m.nbr-1-i)/m.grid.S + 1
	rows := owned * m.br
	if (m.nbr-1)%m.grid.S == i {
		rows -= m.br - m.blockHeight(m.nbr-1)
	}
	return rows
}

// localColsOf returns the number of matrix columns grid column j owns.
func (m *CyclicMap) localColsOf(j int) int {
	if j >= m.nbc {
		return 0
	}
	owned := (m.nbc-1-j)/m.grid.T + 1
	cols := owned * m.bc
	if (m.nbc-1)%m.grid.T == j {
		cols -= m.bc - m.blockWidth(m.nbc-1)
	}
	return cols
}

// TileShape returns the exact local tile shape rank r owns.
func (m *CyclicMap) TileShape(r int) (rows, cols int) {
	i, j := m.grid.Coords(r)
	return m.localRowsOf(i), m.localColsOf(j)
}

// LocalRows returns the largest per-rank row count (the uniform height
// when the block grid divides the process grid evenly — the layout the
// cyclic SUMMA algorithm requires; TileShape gives each rank's exact
// shape).
func (m *CyclicMap) LocalRows() int {
	max := 0
	for i := 0; i < m.grid.S; i++ {
		if lr := m.localRowsOf(i); lr > max {
			max = lr
		}
	}
	return max
}

// LocalCols returns the largest per-rank column count.
func (m *CyclicMap) LocalCols() int {
	max := 0
	for j := 0; j < m.grid.T; j++ {
		if lc := m.localColsOf(j); lc > max {
			max = lc
		}
	}
	return max
}

// Locate maps a global element (gi,gj) to its owning rank and local
// position under the block-cyclic layout.
func (m *CyclicMap) Locate(gi, gj int) (rank, li, lj int) {
	if gi < 0 || gi >= m.rows || gj < 0 || gj >= m.cols {
		panic(fmt.Sprintf("dist: element (%d,%d) outside %dx%d matrix", gi, gj, m.rows, m.cols))
	}
	bi, bj := gi/m.br, gj/m.bc
	rank = m.grid.Rank(bi%m.grid.S, bj%m.grid.T)
	li = (bi/m.grid.S)*m.br + gi%m.br
	lj = (bj/m.grid.T)*m.bc + gj%m.bc
	return rank, li, lj
}

// Scatter cuts a global matrix into per-rank block-cyclic tiles.
func (m *CyclicMap) Scatter(a *matrix.Dense) []*matrix.Dense {
	if a.Rows != m.rows || a.Cols != m.cols {
		panic(fmt.Sprintf("dist: matrix %dx%d does not match map %dx%d", a.Rows, a.Cols, m.rows, m.cols))
	}
	tiles := make([]*matrix.Dense, m.grid.Size())
	for r := range tiles {
		tr, tc := m.TileShape(r)
		tiles[r] = matrix.New(tr, tc)
	}
	m.forEachBlock(func(rank, gi, gj, li, lj, h, w int) {
		tiles[rank].View(li, lj, h, w).CopyFrom(a.View(gi, gj, h, w))
	})
	return tiles
}

// Gather reassembles the global matrix from per-rank tiles.
func (m *CyclicMap) Gather(tiles []*matrix.Dense) *matrix.Dense {
	if len(tiles) != m.grid.Size() {
		panic(fmt.Sprintf("dist: %d tiles for grid %v", len(tiles), m.grid))
	}
	for r, t := range tiles {
		tr, tc := m.TileShape(r)
		if t.Rows != tr || t.Cols != tc {
			panic(fmt.Sprintf("dist: tile %d is %dx%d, want %dx%d", r, t.Rows, t.Cols, tr, tc))
		}
	}
	out := matrix.New(m.rows, m.cols)
	m.forEachBlock(func(rank, gi, gj, li, lj, h, w int) {
		out.View(gi, gj, h, w).CopyFrom(tiles[rank].View(li, lj, h, w))
	})
	return out
}

// forEachBlock visits every distribution block with its owner, both
// coordinate systems and its (possibly ragged) shape.
func (m *CyclicMap) forEachBlock(fn func(rank, gi, gj, li, lj, h, w int)) {
	for bi := 0; bi < m.nbr; bi++ {
		h := m.blockHeight(bi)
		for bj := 0; bj < m.nbc; bj++ {
			rank := m.grid.Rank(bi%m.grid.S, bj%m.grid.T)
			fn(rank, bi*m.br, bj*m.bc, (bi/m.grid.S)*m.br, (bj/m.grid.T)*m.bc, h, m.blockWidth(bj))
		}
	}
}
