package dist

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/topo"
)

// zeroTiles allocates zero-filled tiles for every rank of the map.
func zeroTiles(m *BlockMap) []*matrix.Dense {
	tiles := make([]*matrix.Dense, m.Grid().Size())
	for r := range tiles {
		tr, tc := m.TileShape(r)
		tiles[r] = matrix.New(tr, tc)
	}
	return tiles
}

func TestScatterPartFullRegionMatchesScatter(t *testing.T) {
	for _, c := range []struct{ rows, cols, s, tt int }{
		{8, 12, 2, 4}, {7, 9, 3, 2}, {16, 16, 4, 4},
	} {
		m, err := NewBlockMap(c.rows, c.cols, topo.Grid{S: c.s, T: c.tt})
		if err != nil {
			t.Fatal(err)
		}
		a := matrix.Random(c.rows, c.cols, 7)
		tiles := zeroTiles(m)
		m.ScatterPart(tiles, a, 0, 0)
		want := m.Scatter(a)
		for r := range tiles {
			if !matrix.Equal(tiles[r], want[r]) {
				t.Fatalf("%dx%d over %dx%d: ScatterPart full region differs from Scatter at rank %d", c.rows, c.cols, c.s, c.tt, r)
			}
		}
	}
}

func TestScatterPartPreservesFringe(t *testing.T) {
	// 10x12 map over a ragged 3x2 grid; the part occupies a corner region,
	// everything outside it must keep its sentinel value.
	m, err := NewBlockMap(10, 12, topo.Grid{S: 3, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	tiles := make([]*matrix.Dense, m.Grid().Size())
	for r := range tiles {
		tr, tc := m.TileShape(r)
		tiles[r] = matrix.New(tr, tc)
		for i := 0; i < tr; i++ {
			for j := 0; j < tc; j++ {
				tiles[r].Set(i, j, -1)
			}
		}
	}
	part := matrix.Random(6, 5, 3)
	const r0, c0 = 2, 4
	m.ScatterPart(tiles, part, r0, c0)

	got := m.Gather(tiles)
	for i := 0; i < 10; i++ {
		for j := 0; j < 12; j++ {
			want := -1.0
			if i >= r0 && i < r0+part.Rows && j >= c0 && j < c0+part.Cols {
				want = part.At(i-r0, j-c0)
			}
			if got.At(i, j) != want {
				t.Fatalf("element (%d,%d) = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}

	// GatherPart reads the region straight back.
	back := matrix.New(part.Rows, part.Cols)
	m.GatherPart(back, tiles, r0, c0)
	if !matrix.Equal(back, part) {
		t.Fatal("GatherPart(ScatterPart) != identity")
	}
}

func TestScatterColsRoundTrip(t *testing.T) {
	// Three parts of different widths concatenated into a wider padded map:
	// round-trips exactly, and the trailing pad columns stay zero.
	parts := []*matrix.Dense{
		matrix.Random(9, 3, 1),
		matrix.Random(9, 5, 2),
		matrix.Random(9, 2, 3),
	}
	m, err := NewBlockMap(9, 12, topo.Grid{S: 3, T: 2}) // 10 used cols + 2 pad
	if err != nil {
		t.Fatal(err)
	}
	tiles := zeroTiles(m)
	m.ScatterCols(tiles, parts)

	back := []*matrix.Dense{
		matrix.New(9, 3), matrix.New(9, 5), matrix.New(9, 2),
	}
	m.GatherCols(back, tiles)
	for p := range parts {
		if !matrix.Equal(back[p], parts[p]) {
			t.Fatalf("part %d: GatherCols(ScatterCols) != identity", p)
		}
	}

	// The two pad columns past the concatenation were never written.
	full := m.Gather(tiles)
	for i := 0; i < 9; i++ {
		for j := 10; j < 12; j++ {
			if full.At(i, j) != 0 {
				t.Fatalf("pad element (%d,%d) = %v, want 0", i, j, full.At(i, j))
			}
		}
	}
}

func TestScatterPartRegionBounds(t *testing.T) {
	m, err := NewBlockMap(8, 8, topo.Grid{S: 2, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	tiles := zeroTiles(m)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range region did not panic")
		}
	}()
	m.ScatterPart(tiles, matrix.Random(4, 4, 1), 6, 6)
}
