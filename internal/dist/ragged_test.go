package dist

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/topo"
)

// Non-divisible shapes: every element must land on exactly one rank, at
// the position Locate reports, and Gather(Scatter(a)) must reproduce a —
// for both layouts, including matrices smaller than the grid and ragged
// trailing blocks.

func TestBlockMapRaggedRoundTrip(t *testing.T) {
	cases := []struct{ rows, cols, s, tt int }{
		{7, 7, 2, 2},  // both dimensions ragged
		{5, 4, 2, 2},  // rows ragged only
		{8, 10, 2, 4}, // cols ragged only
		{9, 13, 3, 5}, // coprime everything
		{3, 3, 4, 4},  // matrix smaller than the grid (empty tiles)
		{1, 17, 2, 3}, // single row
		{100, 100, 7, 9},
	}
	for _, c := range cases {
		g := topo.Grid{S: c.s, T: c.tt}
		m, err := NewBlockMap(c.rows, c.cols, g)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		a := matrix.Indexed(c.rows, c.cols, 0)
		tiles := m.Scatter(a)

		// Tile shapes must partition the matrix.
		rowSum := 0
		for i := 0; i < c.s; i++ {
			tr, _ := m.TileShape(g.Rank(i, 0))
			rowSum += tr
		}
		colSum := 0
		for j := 0; j < c.tt; j++ {
			_, tc := m.TileShape(g.Rank(0, j))
			colSum += tc
		}
		if rowSum != c.rows || colSum != c.cols {
			t.Fatalf("%+v: tiles cover %dx%d of %dx%d", c, rowSum, colSum, c.rows, c.cols)
		}

		// Locate agrees with Scatter for every element.
		for gi := 0; gi < c.rows; gi++ {
			for gj := 0; gj < c.cols; gj++ {
				rank, li, lj := m.Locate(gi, gj)
				if got, want := tiles[rank].At(li, lj), a.At(gi, gj); got != want {
					t.Fatalf("%+v: Locate(%d,%d) -> rank %d (%d,%d): %g, want %g",
						c, gi, gj, rank, li, lj, got, want)
				}
			}
		}
		if !matrix.Equal(m.Gather(tiles), a) {
			t.Fatalf("%+v: gather(scatter) != identity", c)
		}
	}
}

func TestCyclicMapRaggedRoundTrip(t *testing.T) {
	cases := []struct{ rows, cols, br, bc, s, tt int }{
		{10, 10, 3, 3, 4, 4}, // ragged trailing block, uneven block counts
		{12, 12, 4, 4, 4, 4}, // 3 block rows over 4 grid rows
		{7, 11, 2, 3, 2, 2},  // both dimensions ragged
		{5, 5, 8, 8, 2, 2},   // single block smaller than the block size
		{9, 9, 2, 2, 3, 5},   // more grid cols than block cols
	}
	for _, c := range cases {
		g := topo.Grid{S: c.s, T: c.tt}
		m, err := NewCyclicMap(c.rows, c.cols, c.br, c.bc, g)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		a := matrix.Indexed(c.rows, c.cols, 0)
		tiles := m.Scatter(a)

		// Tile shapes must account for every element exactly once.
		total := 0
		for r, tile := range tiles {
			tr, tc := m.TileShape(r)
			if tile.Rows != tr || tile.Cols != tc {
				t.Fatalf("%+v: tile %d is %dx%d, TileShape says %dx%d", c, r, tile.Rows, tile.Cols, tr, tc)
			}
			total += tr * tc
		}
		if total != c.rows*c.cols {
			t.Fatalf("%+v: tiles hold %d elements, want %d", c, total, c.rows*c.cols)
		}

		for gi := 0; gi < c.rows; gi++ {
			for gj := 0; gj < c.cols; gj++ {
				rank, li, lj := m.Locate(gi, gj)
				if got, want := tiles[rank].At(li, lj), a.At(gi, gj); got != want {
					t.Fatalf("%+v: Locate(%d,%d) -> rank %d (%d,%d): %g, want %g",
						c, gi, gj, rank, li, lj, got, want)
				}
			}
		}
		if !matrix.Equal(m.Gather(tiles), a) {
			t.Fatalf("%+v: cyclic gather(scatter) != identity", c)
		}
	}
}
