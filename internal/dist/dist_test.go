package dist

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/topo"
)

func TestBlockMapRoundTrip(t *testing.T) {
	for _, c := range []struct{ rows, cols, s, tt int }{
		{8, 8, 2, 2}, {8, 12, 2, 4}, {16, 8, 4, 2}, {6, 6, 1, 1}, {6, 6, 6, 6},
	} {
		g := topo.Grid{S: c.s, T: c.tt}
		m, err := NewBlockMap(c.rows, c.cols, g)
		if err != nil {
			t.Fatal(err)
		}
		a := matrix.Random(c.rows, c.cols, 42)
		tiles := m.Scatter(a)
		if len(tiles) != g.Size() {
			t.Fatalf("%d tiles for %v", len(tiles), g)
		}
		for _, tile := range tiles {
			if tile.Rows != m.LocalRows() || tile.Cols != m.LocalCols() {
				t.Fatalf("tile %dx%d, want %dx%d", tile.Rows, tile.Cols, m.LocalRows(), m.LocalCols())
			}
		}
		if !matrix.Equal(m.Gather(tiles), a) {
			t.Fatalf("gather(scatter) != identity for %dx%d over %v", c.rows, c.cols, g)
		}
	}
}

func TestBlockMapScatterCopies(t *testing.T) {
	g := topo.Grid{S: 2, T: 2}
	m, _ := NewBlockMap(4, 4, g)
	a := matrix.Random(4, 4, 1)
	tiles := m.Scatter(a)
	tiles[0].Set(0, 0, 999)
	if a.At(0, 0) == 999 {
		t.Fatal("scatter aliases the source matrix")
	}
}

func TestBlockMapLocate(t *testing.T) {
	g := topo.Grid{S: 2, T: 4}
	m, _ := NewBlockMap(8, 16, g) // 4x4 tiles
	a := matrix.Indexed(8, 16, 0)
	tiles := m.Scatter(a)
	for gi := 0; gi < 8; gi++ {
		for gj := 0; gj < 16; gj++ {
			rank, li, lj := m.Locate(gi, gj)
			if got, want := tiles[rank].At(li, lj), a.At(gi, gj); got != want {
				t.Fatalf("Locate(%d,%d) -> rank %d (%d,%d): %g, want %g", gi, gj, rank, li, lj, got, want)
			}
			if m.Owner(gi, gj) != rank {
				t.Fatal("Owner disagrees with Locate")
			}
		}
	}
}

func TestBlockMapValidation(t *testing.T) {
	g := topo.Grid{S: 2, T: 2}
	if _, err := NewBlockMap(0, 4, g); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewBlockMap(4, 4, topo.Grid{}); err == nil {
		t.Fatal("zero grid accepted")
	}
	// Non-divisible shapes are supported (balanced tiles), just not
	// uniform — the property the SUMMA-family algorithms check for.
	m, err := NewBlockMap(5, 4, g)
	if err != nil {
		t.Fatalf("balanced 5x4 over 2x2 rejected: %v", err)
	}
	if m.Uniform() {
		t.Fatal("5x4 over 2x2 reported uniform")
	}
	if u, _ := NewBlockMap(4, 4, g); !u.Uniform() {
		t.Fatal("4x4 over 2x2 reported non-uniform")
	}
}

func TestCyclicMapRoundTrip(t *testing.T) {
	for _, c := range []struct{ rows, cols, br, bc, s, tt int }{
		{8, 8, 2, 2, 2, 2}, {16, 16, 2, 2, 2, 4}, {16, 8, 2, 2, 4, 2}, {12, 12, 2, 3, 2, 2}, {8, 8, 2, 2, 1, 1},
	} {
		g := topo.Grid{S: c.s, T: c.tt}
		m, err := NewCyclicMap(c.rows, c.cols, c.br, c.bc, g)
		if err != nil {
			t.Fatal(err)
		}
		a := matrix.Random(c.rows, c.cols, 7)
		if !matrix.Equal(m.Gather(m.Scatter(a)), a) {
			t.Fatalf("cyclic gather(scatter) != identity for %+v", c)
		}
	}
}

func TestCyclicMapLocate(t *testing.T) {
	g := topo.Grid{S: 2, T: 2}
	m, _ := NewCyclicMap(8, 8, 2, 2, g)
	a := matrix.Indexed(8, 8, 0)
	tiles := m.Scatter(a)
	for gi := 0; gi < 8; gi++ {
		for gj := 0; gj < 8; gj++ {
			rank, li, lj := m.Locate(gi, gj)
			if got, want := tiles[rank].At(li, lj), a.At(gi, gj); got != want {
				t.Fatalf("cyclic Locate(%d,%d): %g, want %g", gi, gj, got, want)
			}
		}
	}
	// The defining property: consecutive block rows round-robin over grid
	// rows, so rank (0,0) owns global rows {0,1,4,5}, not {0,1,2,3}.
	rank, _, _ := m.Locate(4, 0)
	if rank != 0 {
		t.Fatalf("block-cyclic row 4 on rank %d, want 0", rank)
	}
	rank, _, _ = m.Locate(2, 0)
	if rank != m.Grid().Rank(1, 0) {
		t.Fatalf("block-cyclic row 2 on rank %d, want %d", rank, m.Grid().Rank(1, 0))
	}
}

func TestCyclicMapValidation(t *testing.T) {
	g := topo.Grid{S: 4, T: 4}
	if _, err := NewCyclicMap(8, 8, 0, 2, g); err == nil {
		t.Fatal("zero block accepted")
	}
	if _, err := NewCyclicMap(0, 8, 2, 2, g); err == nil {
		t.Fatal("zero rows accepted")
	}
	// Uneven block counts and ragged trailing blocks are supported now;
	// ragged_test.go round-trips them. core.CyclicSUMMA still validates
	// the uniform layout it needs on its own.
	if _, err := NewCyclicMap(12, 12, 4, 4, g); err != nil {
		t.Fatalf("3 block rows over 4 grid rows rejected: %v", err)
	}
	if _, err := NewCyclicMap(10, 10, 3, 3, g); err != nil {
		t.Fatalf("ragged trailing block rejected: %v", err)
	}
}
