package dist

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/topo"
)

// TestScatterIntoGatherIntoRoundTrip checks the allocation-free variants
// reproduce Scatter/Gather exactly, including ragged (non-divisible) and
// degenerate (grid larger than matrix) shapes.
func TestScatterIntoGatherIntoRoundTrip(t *testing.T) {
	cases := []struct {
		rows, cols int
		g          topo.Grid
	}{
		{8, 8, topo.Grid{S: 2, T: 2}},
		{9, 7, topo.Grid{S: 2, T: 3}},  // ragged both ways
		{3, 5, topo.Grid{S: 4, T: 2}},  // rows < S: empty tiles
		{16, 4, topo.Grid{S: 4, T: 4}}, // exact
	}
	for _, tc := range cases {
		m, err := NewBlockMap(tc.rows, tc.cols, tc.g)
		if err != nil {
			t.Fatal(err)
		}
		a := matrix.Random(tc.rows, tc.cols, 42)
		want := m.Scatter(a)

		// Scatter into tiles pre-filled with garbage: every element must be
		// overwritten.
		tiles := make([]*matrix.Dense, tc.g.Size())
		for r := range tiles {
			tr, tcn := m.TileShape(r)
			tiles[r] = matrix.New(tr, tcn)
			tiles[r].Fill(-99)
		}
		m.ScatterInto(tiles, a)
		for r := range tiles {
			if !matrix.Equal(tiles[r], want[r]) {
				t.Fatalf("%dx%d on %v: ScatterInto tile %d differs from Scatter", tc.rows, tc.cols, tc.g, r)
			}
		}

		out := matrix.New(tc.rows, tc.cols)
		out.Fill(-99)
		m.GatherInto(out, tiles)
		if !matrix.Equal(out, a) {
			t.Fatalf("%dx%d on %v: GatherInto does not invert ScatterInto", tc.rows, tc.cols, tc.g)
		}
	}
}

// TestScatterIntoValidation checks the shape guards reject mismatched
// tiles and global matrices.
func TestScatterIntoValidation(t *testing.T) {
	m, _ := NewBlockMap(8, 8, topo.Grid{S: 2, T: 2})
	a := matrix.Random(8, 8, 1)
	good := m.Scatter(a)

	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("short tile slice", func() { m.ScatterInto(good[:3], a) })
	expectPanic("wrong tile shape", func() {
		bad := append([]*matrix.Dense(nil), good...)
		bad[1] = matrix.New(3, 3)
		m.ScatterInto(bad, a)
	})
	expectPanic("wrong global shape", func() { m.GatherInto(matrix.New(7, 8), good) })
}
