// Package dist is the data-distribution layer: it maps global matrices onto
// the tiles each rank of a process grid owns, and moves data between the
// two representations. Two layouts are provided, matching the paper and its
// first future-work item:
//
//   - BlockMap: the block-checkerboard distribution all of the paper's
//     experiments use — rank (i,j) of an s×t grid owns the contiguous
//     (rows/s)×(cols/t) tile at offset (i·rows/s, j·cols/t);
//
//   - CyclicMap: the two-dimensional block-cyclic (ScaLAPACK) distribution
//     (§VI: "by using block-cyclic distribution the communication can be
//     better overlapped and parallelized") — global block (bi,bj) lives on
//     rank (bi mod s, bj mod t) at local block (bi div s, bj div t).
//
// Scatter/Gather run on the host, outside the ranked execution, so the
// distribution cost never pollutes the runtime's traffic statistics — the
// same separation the paper makes by reporting multiplication time only.
package dist

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/topo"
)

// BlockMap describes the block-checkerboard distribution of a rows×cols
// matrix over a process grid.
type BlockMap struct {
	rows, cols int
	grid       topo.Grid
	tileR      int // rows per rank
	tileC      int // cols per rank
}

// NewBlockMap validates divisibility (S | rows, T | cols) and returns the
// distribution map.
func NewBlockMap(rows, cols int, g topo.Grid) (*BlockMap, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("dist: invalid matrix %dx%d", rows, cols)
	}
	if g.S <= 0 || g.T <= 0 {
		return nil, fmt.Errorf("dist: invalid grid %v", g)
	}
	if rows%g.S != 0 || cols%g.T != 0 {
		return nil, fmt.Errorf("dist: %dx%d matrix not divisible by grid %v", rows, cols, g)
	}
	return &BlockMap{rows: rows, cols: cols, grid: g, tileR: rows / g.S, tileC: cols / g.T}, nil
}

// Grid returns the process grid the map distributes over.
func (m *BlockMap) Grid() topo.Grid { return m.grid }

// Rows and Cols return the global matrix shape.
func (m *BlockMap) Rows() int { return m.rows }

// Cols returns the global column count.
func (m *BlockMap) Cols() int { return m.cols }

// LocalRows returns the number of rows each rank owns.
func (m *BlockMap) LocalRows() int { return m.tileR }

// LocalCols returns the number of columns each rank owns.
func (m *BlockMap) LocalCols() int { return m.tileC }

// Locate maps a global element (gi,gj) to its owning rank and the element's
// local position on that rank.
func (m *BlockMap) Locate(gi, gj int) (rank, li, lj int) {
	m.checkGlobal(gi, gj)
	return m.grid.Rank(gi/m.tileR, gj/m.tileC), gi % m.tileR, gj % m.tileC
}

// Owner returns the rank owning global element (gi,gj).
func (m *BlockMap) Owner(gi, gj int) int {
	r, _, _ := m.Locate(gi, gj)
	return r
}

func (m *BlockMap) checkGlobal(gi, gj int) {
	if gi < 0 || gi >= m.rows || gj < 0 || gj >= m.cols {
		panic(fmt.Sprintf("dist: element (%d,%d) outside %dx%d matrix", gi, gj, m.rows, m.cols))
	}
}

func (m *BlockMap) checkShape(a *matrix.Dense) {
	if a.Rows != m.rows || a.Cols != m.cols {
		panic(fmt.Sprintf("dist: matrix %dx%d does not match map %dx%d", a.Rows, a.Cols, m.rows, m.cols))
	}
}

// Scatter cuts a global matrix into per-rank tiles: the returned slice
// holds, at index r, a private copy of rank r's tile.
func (m *BlockMap) Scatter(a *matrix.Dense) []*matrix.Dense {
	m.checkShape(a)
	tiles := make([]*matrix.Dense, m.grid.Size())
	for r := range tiles {
		i, j := m.grid.Coords(r)
		tiles[r] = a.View(i*m.tileR, j*m.tileC, m.tileR, m.tileC).Clone()
	}
	return tiles
}

// Gather reassembles the global matrix from per-rank tiles (the inverse of
// Scatter).
func (m *BlockMap) Gather(tiles []*matrix.Dense) *matrix.Dense {
	if len(tiles) != m.grid.Size() {
		panic(fmt.Sprintf("dist: %d tiles for grid %v", len(tiles), m.grid))
	}
	out := matrix.New(m.rows, m.cols)
	for r, t := range tiles {
		if t.Rows != m.tileR || t.Cols != m.tileC {
			panic(fmt.Sprintf("dist: tile %d is %dx%d, want %dx%d", r, t.Rows, t.Cols, m.tileR, m.tileC))
		}
		i, j := m.grid.Coords(r)
		out.View(i*m.tileR, j*m.tileC, m.tileR, m.tileC).CopyFrom(t)
	}
	return out
}
