// Package dist is the data-distribution layer: it maps global matrices onto
// the tiles each rank of a process grid owns, and moves data between the
// two representations. Two layouts are provided, matching the paper and its
// first future-work item:
//
//   - BlockMap: the block-checkerboard distribution all of the paper's
//     experiments use — rank (i,j) of an s×t grid owns a contiguous tile,
//     rows and columns split as evenly as possible (equal tiles when the
//     shape divides the grid, the paper's configuration; otherwise the
//     first rows%s block rows are one row taller, ScaLAPACK's balanced
//     convention);
//
//   - CyclicMap: the two-dimensional block-cyclic (ScaLAPACK) distribution
//     (§VI: "by using block-cyclic distribution the communication can be
//     better overlapped and parallelized") — global block (bi,bj) lives on
//     rank (bi mod s, bj mod t) at local block (bi div s, bj div t), with a
//     ragged trailing block when the block size does not divide the shape.
//
// Non-divisible shapes round-trip Scatter→Locate→Gather exactly like
// divisible ones; the *algorithms* that require uniform tiles (the SUMMA
// family) validate their stricter divisibility constraints themselves in
// internal/core.
//
// Scatter/Gather run on the host, outside the ranked execution, so the
// distribution cost never pollutes the runtime's traffic statistics — the
// same separation the paper makes by reporting multiplication time only.
package dist

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/topo"
)

// BlockMap describes the block-checkerboard distribution of a rows×cols
// matrix over a process grid.
type BlockMap struct {
	rows, cols int
	grid       topo.Grid
	// Balanced split: the first remR of the S block rows have qR+1 rows,
	// the rest qR (and likewise for columns).
	qR, remR int
	qC, remC int
}

// NewBlockMap returns the balanced block-checkerboard map. Any positive
// shape is accepted; tiles are equal exactly when the grid divides the
// shape (ranks beyond the matrix own empty tiles when rows < S or
// cols < T).
func NewBlockMap(rows, cols int, g topo.Grid) (*BlockMap, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("dist: invalid matrix %dx%d", rows, cols)
	}
	if g.S <= 0 || g.T <= 0 {
		return nil, fmt.Errorf("dist: invalid grid %v", g)
	}
	return &BlockMap{
		rows: rows, cols: cols, grid: g,
		qR: rows / g.S, remR: rows % g.S,
		qC: cols / g.T, remC: cols % g.T,
	}, nil
}

// Grid returns the process grid the map distributes over.
func (m *BlockMap) Grid() topo.Grid { return m.grid }

// Rows and Cols return the global matrix shape.
func (m *BlockMap) Rows() int { return m.rows }

// Cols returns the global column count.
func (m *BlockMap) Cols() int { return m.cols }

// Uniform reports whether every rank owns the same tile shape — the
// precondition of the SUMMA-family algorithms (their stricter block
// constraints are validated in internal/core).
func (m *BlockMap) Uniform() bool { return m.remR == 0 && m.remC == 0 }

// LocalRows returns the largest per-rank row count (the uniform tile
// height when the shape divides the grid; TileShape gives each rank's
// exact tile).
func (m *BlockMap) LocalRows() int {
	if m.remR > 0 {
		return m.qR + 1
	}
	return m.qR
}

// LocalCols returns the largest per-rank column count.
func (m *BlockMap) LocalCols() int {
	if m.remC > 0 {
		return m.qC + 1
	}
	return m.qC
}

// rowStart returns the first global row owned by grid row i.
func (m *BlockMap) rowStart(i int) int {
	if i < m.remR {
		return i * (m.qR + 1)
	}
	return i*m.qR + m.remR
}

// colStart returns the first global column owned by grid column j.
func (m *BlockMap) colStart(j int) int {
	if j < m.remC {
		return j * (m.qC + 1)
	}
	return j*m.qC + m.remC
}

// TileShape returns the exact tile shape rank r owns (possibly with zero
// rows or columns when the matrix is smaller than the grid).
func (m *BlockMap) TileShape(r int) (rows, cols int) {
	i, j := m.grid.Coords(r)
	rows, cols = m.qR, m.qC
	if i < m.remR {
		rows++
	}
	if j < m.remC {
		cols++
	}
	return rows, cols
}

// Locate maps a global element (gi,gj) to its owning rank and the element's
// local position on that rank.
func (m *BlockMap) Locate(gi, gj int) (rank, li, lj int) {
	m.checkGlobal(gi, gj)
	var i, j int
	if split := m.remR * (m.qR + 1); gi < split {
		i, li = gi/(m.qR+1), gi%(m.qR+1)
	} else {
		i, li = m.remR+(gi-split)/m.qR, (gi-split)%m.qR
	}
	if split := m.remC * (m.qC + 1); gj < split {
		j, lj = gj/(m.qC+1), gj%(m.qC+1)
	} else {
		j, lj = m.remC+(gj-split)/m.qC, (gj-split)%m.qC
	}
	return m.grid.Rank(i, j), li, lj
}

// Owner returns the rank owning global element (gi,gj).
func (m *BlockMap) Owner(gi, gj int) int {
	r, _, _ := m.Locate(gi, gj)
	return r
}

func (m *BlockMap) checkGlobal(gi, gj int) {
	if gi < 0 || gi >= m.rows || gj < 0 || gj >= m.cols {
		panic(fmt.Sprintf("dist: element (%d,%d) outside %dx%d matrix", gi, gj, m.rows, m.cols))
	}
}

func (m *BlockMap) checkShape(a *matrix.Dense) {
	if a.Rows != m.rows || a.Cols != m.cols {
		panic(fmt.Sprintf("dist: matrix %dx%d does not match map %dx%d", a.Rows, a.Cols, m.rows, m.cols))
	}
}

// Scatter cuts a global matrix into per-rank tiles: the returned slice
// holds, at index r, a private copy of rank r's tile.
func (m *BlockMap) Scatter(a *matrix.Dense) []*matrix.Dense {
	m.checkShape(a)
	tiles := make([]*matrix.Dense, m.grid.Size())
	for r := range tiles {
		i, j := m.grid.Coords(r)
		tr, tc := m.TileShape(r)
		tiles[r] = a.View(m.rowStart(i), m.colStart(j), tr, tc).Clone()
	}
	return tiles
}

// ScatterInto copies each rank's tile of a into the caller-provided tiles,
// reusing their storage — the allocation-free Scatter the serving layer
// uses to push a stream of operands through one resident session. Each
// tiles[r] must already have rank r's exact tile shape (as allocated from
// TileShape or a previous Scatter).
func (m *BlockMap) ScatterInto(tiles []*matrix.Dense, a *matrix.Dense) {
	m.checkShape(a)
	m.checkTiles(tiles)
	for r, t := range tiles {
		if t.Rows == 0 || t.Cols == 0 {
			continue
		}
		i, j := m.grid.Coords(r)
		t.CopyFrom(a.View(m.rowStart(i), m.colStart(j), t.Rows, t.Cols))
	}
}

// GatherInto reassembles the global matrix from per-rank tiles into the
// caller-provided out matrix (the allocation-free Gather).
func (m *BlockMap) GatherInto(out *matrix.Dense, tiles []*matrix.Dense) {
	m.checkShape(out)
	m.checkTiles(tiles)
	for r, t := range tiles {
		if t.Rows == 0 || t.Cols == 0 {
			continue
		}
		i, j := m.grid.Coords(r)
		out.View(m.rowStart(i), m.colStart(j), t.Rows, t.Cols).CopyFrom(t)
	}
}

// checkTiles validates a tile slice against the map's grid and per-rank
// tile shapes.
func (m *BlockMap) checkTiles(tiles []*matrix.Dense) {
	if len(tiles) != m.grid.Size() {
		panic(fmt.Sprintf("dist: %d tiles for grid %v", len(tiles), m.grid))
	}
	for r, t := range tiles {
		tr, tc := m.TileShape(r)
		if t.Rows != tr || t.Cols != tc {
			panic(fmt.Sprintf("dist: tile %d is %dx%d, want %dx%d", r, t.Rows, t.Cols, tr, tc))
		}
	}
}

// checkRegion validates that the region rooted at (r0,c0) with the given
// extent lies inside the global matrix.
func (m *BlockMap) checkRegion(r0, c0, rows, cols int) {
	if r0 < 0 || c0 < 0 || rows < 0 || cols < 0 || r0+rows > m.rows || c0+cols > m.cols {
		panic(fmt.Sprintf("dist: region (%d,%d)+%dx%d outside %dx%d matrix", r0, c0, rows, cols, m.rows, m.cols))
	}
}

// ScatterPart copies src into the global region rooted at (r0,c0): each
// rank's tile receives the part of src it owns, and every tile element
// outside the region keeps its current value. Combined with zero-initialised
// tiles this replaces the pad-copy-then-ScatterInto staging dance — the
// request-shaped operand lands directly in the padded tiles and the fringe
// stays zero — and placing parts at successive column offsets is how the
// serving layer concatenates the B operands of a coalesced batch.
func (m *BlockMap) ScatterPart(tiles []*matrix.Dense, src *matrix.Dense, r0, c0 int) {
	m.checkTiles(tiles)
	m.checkRegion(r0, c0, src.Rows, src.Cols)
	for r, t := range tiles {
		if t.Rows == 0 || t.Cols == 0 {
			continue
		}
		i, j := m.grid.Coords(r)
		rs, cs := m.rowStart(i), m.colStart(j)
		ri0, ri1 := max(r0, rs), min(r0+src.Rows, rs+t.Rows)
		ci0, ci1 := max(c0, cs), min(c0+src.Cols, cs+t.Cols)
		if ri0 >= ri1 || ci0 >= ci1 {
			continue
		}
		t.View(ri0-rs, ci0-cs, ri1-ri0, ci1-ci0).
			CopyFrom(src.View(ri0-r0, ci0-c0, ri1-ri0, ci1-ci0))
	}
}

// GatherPart fills dst from the global region rooted at (r0,c0) — the
// inverse of ScatterPart, and the serving layer's crop-free gather: a
// padded result's request-shaped corner (or one batched request's column
// slice of C) is read straight out of the tiles without materialising the
// full padded matrix.
func (m *BlockMap) GatherPart(dst *matrix.Dense, tiles []*matrix.Dense, r0, c0 int) {
	m.checkTiles(tiles)
	m.checkRegion(r0, c0, dst.Rows, dst.Cols)
	for r, t := range tiles {
		if t.Rows == 0 || t.Cols == 0 {
			continue
		}
		i, j := m.grid.Coords(r)
		rs, cs := m.rowStart(i), m.colStart(j)
		ri0, ri1 := max(r0, rs), min(r0+dst.Rows, rs+t.Rows)
		ci0, ci1 := max(c0, cs), min(c0+dst.Cols, cs+t.Cols)
		if ri0 >= ri1 || ci0 >= ci1 {
			continue
		}
		dst.View(ri0-r0, ci0-c0, ri1-ri0, ci1-ci0).
			CopyFrom(t.View(ri0-rs, ci0-cs, ri1-ri0, ci1-ci0))
	}
}

// ScatterCols scatters the column concatenation [parts[0] parts[1] …],
// rooted at the global origin, into the tiles: part p lands at column
// offset Σ(cols of parts[0..p-1]). All parts must share a row count and
// the concatenation must fit the map; trailing pad columns are untouched.
func (m *BlockMap) ScatterCols(tiles []*matrix.Dense, parts []*matrix.Dense) {
	c0 := 0
	for _, p := range parts {
		m.ScatterPart(tiles, p, 0, c0)
		c0 += p.Cols
	}
}

// GatherCols splits the leading global columns back into the caller's
// parts — the inverse of ScatterCols, used to hand each request of a
// coalesced batch its own slice of the batched C.
func (m *BlockMap) GatherCols(parts []*matrix.Dense, tiles []*matrix.Dense) {
	c0 := 0
	for _, p := range parts {
		m.GatherPart(p, tiles, 0, c0)
		c0 += p.Cols
	}
}

// Gather reassembles the global matrix from per-rank tiles (the inverse of
// Scatter).
func (m *BlockMap) Gather(tiles []*matrix.Dense) *matrix.Dense {
	if len(tiles) != m.grid.Size() {
		panic(fmt.Sprintf("dist: %d tiles for grid %v", len(tiles), m.grid))
	}
	out := matrix.New(m.rows, m.cols)
	for r, t := range tiles {
		tr, tc := m.TileShape(r)
		if t.Rows != tr || t.Cols != tc {
			panic(fmt.Sprintf("dist: tile %d is %dx%d, want %dx%d", r, t.Rows, t.Cols, tr, tc))
		}
		if tr == 0 || tc == 0 {
			continue
		}
		i, j := m.grid.Coords(r)
		out.View(m.rowStart(i), m.colStart(j), tr, tc).CopyFrom(t)
	}
	return out
}
