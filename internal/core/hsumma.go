package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/matrix"
)

// HSUMMA performs C += A·B with the paper's hierarchical SUMMA
// (Section III, Algorithm 1). The s×t grid is arranged as I×J groups; each
// of the K/B outer steps first broadcasts the outer pivot panels *between*
// groups (over the group-row/group-column communicators), then runs B/b
// inner steps that broadcast b-wide sub-panels *inside* each group and
// update C locally. The pivot loop walks the contraction dimension K, so
// rectangular M×K·K×N problems run the same two-phase pattern as the
// paper's square benchmark.
//
// With Groups = 1×1 or Groups = s×t (and B = b) the hierarchy degenerates
// and HSUMMA performs exactly SUMMA's communication, which the paper notes
// ("SUMMA is a special case of HSUMMA") and the tests assert.
func HSUMMA(c comm.Comm, opts Options, aLoc, bLoc, cLoc *matrix.Dense) error {
	o := opts.withDefaults()
	if err := o.validateHSUMMA(); err != nil {
		return err
	}
	g := o.Grid
	if c.Size() != g.Size() {
		return fmt.Errorf("core: communicator size %d does not match grid %v", c.Size(), g)
	}
	h := o.Groups
	x, y, ii, jj := h.Decompose(c.Rank())

	// The four communicators of Algorithm 1.
	groupRowComm := c.Split(h.GroupRowColor(c.Rank()), y)          // P(x,*)(ii,jj), rank = y, size J
	groupColComm := c.Split(g.Size()+h.GroupColColor(c.Rank()), x) // P(*,y)(ii,jj), rank = x, size I
	rowComm := c.Split(2*g.Size()+h.InnerRowColor(c.Rank()), jj)   // P(x,y)(ii,*), rank = jj, size t/J
	colComm := c.Split(3*g.Size()+h.InnerColColor(c.Rank()), ii)   // P(x,y)(*,jj), rank = ii, size s/I

	b, B := o.BlockSize, o.OuterBlockSize
	aRows, aCols, bRows, bCols := o.tiles()
	checkTile("A", aLoc, aRows, aCols)
	checkTile("B", bLoc, bRows, bCols)
	checkTile("C", cLoc, aRows, bCols)

	innerT := h.InnerT()
	innerS := h.InnerS()

	// Outer panels (the paper's Blockgroup_A / Blockgroup_B): my row's
	// slice of the B-wide pivot column of A, and my column's slice of the
	// B-high pivot row of B. Only ranks on the owning inner column/row
	// ever hold them, but allocating unconditionally keeps the code
	// simple; the memory is B·M/s + B·N/t per rank, the paper's footprint.
	aOuter := c.NewTile(aRows, B)
	bOuter := c.NewTile(B, bCols)
	aOuterBuf := c.NewBuf(aRows * B)
	bOuterBuf := c.NewBuf(B * bCols)

	aPanel := c.NewTile(aRows, b)
	bPanel := c.NewTile(b, bCols)
	aBuf := c.NewBuf(aRows * b)
	bBuf := c.NewBuf(b * bCols)

	for ko := 0; ko < o.Shape.K/B; ko++ {
		lo := ko * B // first global K index of the outer pivot panel
		// Owning grid column of A's outer panel, in hierarchical
		// coordinates (group column yo, inner column jjo); similarly
		// the owning grid row for B.
		ownerGridCol := lo / aCols
		ownerGridRow := lo / bRows
		yo, jjo := ownerGridCol/innerT, ownerGridCol%innerT
		xo, iio := ownerGridRow/innerS, ownerGridRow%innerS

		// Phase 1 (horizontal, between groups): ranks on the owning
		// inner column jjo exchange A's outer panel across group
		// columns, so every group gets a copy distributed over its
		// inner column jjo.
		if jj == jjo {
			if y == yo {
				c.Pack(aOuterBuf, aLoc.View(0, lo%aCols, aRows, B))
			}
			groupRowComm.Bcast(o.Broadcast, yo, aOuterBuf, o.Segments)
			c.Unpack(aOuter, aOuterBuf)
		}
		// Phase 1 (vertical, between groups) for B's outer panel.
		if ii == iio {
			if x == xo {
				c.Pack(bOuterBuf, bLoc.View(lo%bRows, 0, B, bCols))
			}
			groupColComm.Bcast(o.Broadcast, xo, bOuterBuf, o.Segments)
			c.Unpack(bOuter, bOuterBuf)
		}

		// Phase 2 (inside each group): B/b inner steps; the roots are
		// fixed at (iio, jjo) for the whole outer step because the
		// entire outer panel lives on that inner column/row.
		for ki := 0; ki < B/b; ki++ {
			if jj == jjo {
				c.Pack(aBuf, aOuter.View(0, ki*b, aRows, b))
			}
			rowComm.Bcast(o.Broadcast, jjo, aBuf, o.Segments)
			c.Unpack(aPanel, aBuf)
			if ii == iio {
				c.Pack(bBuf, bOuter.View(ki*b, 0, b, bCols))
			}
			colComm.Bcast(o.Broadcast, iio, bBuf, o.Segments)
			c.Unpack(bPanel, bBuf)
			c.Gemm(cLoc, aPanel, bPanel, o.Exec())
		}
	}
	return nil
}
