package core

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/mpi"
)

// HSUMMA performs C += A·B with the paper's hierarchical SUMMA
// (Section III, Algorithm 1). The s×t grid is arranged as I×J groups; each
// of the n/B outer steps first broadcasts the outer pivot panels *between*
// groups (over the group-row/group-column communicators), then runs B/b
// inner steps that broadcast b-wide sub-panels *inside* each group and
// update C locally.
//
// With Groups = 1×1 or Groups = s×t (and B = b) the hierarchy degenerates
// and HSUMMA performs exactly SUMMA's communication, which the paper notes
// ("SUMMA is a special case of HSUMMA") and the tests assert.
func HSUMMA(comm *mpi.Comm, opts Options, aLoc, bLoc, cLoc *matrix.Dense) error {
	o := opts.withDefaults()
	if err := o.validateHSUMMA(); err != nil {
		return err
	}
	g := o.Grid
	if comm.Size() != g.Size() {
		return fmt.Errorf("core: communicator size %d does not match grid %v", comm.Size(), g)
	}
	h := o.Groups
	x, y, ii, jj := h.Decompose(comm.Rank())

	// The four communicators of Algorithm 1.
	groupRowComm := comm.Split(h.GroupRowColor(comm.Rank()), y)          // P(x,*)(ii,jj), rank = y, size J
	groupColComm := comm.Split(g.Size()+h.GroupColColor(comm.Rank()), x) // P(*,y)(ii,jj), rank = x, size I
	rowComm := comm.Split(2*g.Size()+h.InnerRowColor(comm.Rank()), jj)   // P(x,y)(ii,*), rank = jj, size t/J
	colComm := comm.Split(3*g.Size()+h.InnerColColor(comm.Rank()), ii)   // P(x,y)(*,jj), rank = ii, size s/I

	n, b, B := o.N, o.BlockSize, o.OuterBlockSize
	localRows, localCols := n/g.S, n/g.T
	checkTile("A", aLoc, localRows, localCols)
	checkTile("B", bLoc, localRows, localCols)
	checkTile("C", cLoc, localRows, localCols)

	innerT := h.InnerT()
	innerS := h.InnerS()

	// Outer panels (the paper's Blockgroup_A / Blockgroup_B): my row's
	// slice of the B-wide pivot column of A, and my column's slice of the
	// B-high pivot row of B. Only ranks on the owning inner column/row
	// ever hold them, but allocating unconditionally keeps the code
	// simple; the memory is B·n/s + B·n/t per rank, the paper's footprint.
	aOuter := matrix.New(localRows, B)
	bOuter := matrix.New(B, localCols)
	aOuterBuf := make([]float64, localRows*B)
	bOuterBuf := make([]float64, B*localCols)

	aPanel := matrix.New(localRows, b)
	bPanel := matrix.New(b, localCols)
	aBuf := make([]float64, localRows*b)
	bBuf := make([]float64, b*localCols)

	for ko := 0; ko < n/B; ko++ {
		lo := ko * B // first global index of the outer pivot panel
		// Owning grid column of A's outer panel, in hierarchical
		// coordinates (group column yo, inner column jjo); similarly
		// the owning grid row for B.
		ownerGridCol := lo / localCols
		ownerGridRow := lo / localRows
		yo, jjo := ownerGridCol/innerT, ownerGridCol%innerT
		xo, iio := ownerGridRow/innerS, ownerGridRow%innerS

		// Phase 1 (horizontal, between groups): ranks on the owning
		// inner column jjo exchange A's outer panel across group
		// columns, so every group gets a copy distributed over its
		// inner column jjo.
		if jj == jjo {
			if y == yo {
				aLoc.View(0, lo%localCols, localRows, B).Pack(aOuterBuf[:0])
			}
			groupRowComm.Bcast(o.Broadcast, yo, aOuterBuf, o.Segments)
			aOuter.Unpack(aOuterBuf)
		}
		// Phase 1 (vertical, between groups) for B's outer panel.
		if ii == iio {
			if x == xo {
				bLoc.View(lo%localRows, 0, B, localCols).Pack(bOuterBuf[:0])
			}
			groupColComm.Bcast(o.Broadcast, xo, bOuterBuf, o.Segments)
			bOuter.Unpack(bOuterBuf)
		}

		// Phase 2 (inside each group): B/b inner steps; the roots are
		// fixed at (iio, jjo) for the whole outer step because the
		// entire outer panel lives on that inner column/row.
		for ki := 0; ki < B/b; ki++ {
			if jj == jjo {
				aOuter.View(0, ki*b, localRows, b).Pack(aBuf[:0])
			}
			rowComm.Bcast(o.Broadcast, jjo, aBuf, o.Segments)
			aPanel.Unpack(aBuf)
			if ii == iio {
				bOuter.View(ki*b, 0, b, localCols).Pack(bBuf[:0])
			}
			colComm.Bcast(o.Broadcast, iio, bBuf, o.Segments)
			bPanel.Unpack(bBuf)
			blas.Gemm(cLoc, aPanel, bPanel)
		}
	}
	return nil
}
