package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/topo"
)

const tol = 1e-10

// runAlgorithm distributes random n×n matrices over the grid, runs the
// given distributed multiply on the mpi runtime, gathers C and compares it
// element-wise against the sequential reference.
func runAlgorithm(t *testing.T, o Options, algo func(comm.Comm, Options, *matrix.Dense, *matrix.Dense, *matrix.Dense) error) {
	t.Helper()
	g := o.Grid
	bm, err := dist.NewBlockMap(o.N, o.N, g)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(o.N, o.N, 101)
	b := matrix.Random(o.N, o.N, 202)
	aT := bm.Scatter(a)
	bT := bm.Scatter(b)
	cT := make([]*matrix.Dense, g.Size())
	for r := range cT {
		cT[r] = matrix.New(bm.LocalRows(), bm.LocalCols())
	}
	var mu sync.Mutex
	var algErr error
	err = mpi.Run(g.Size(), func(c *mpi.Comm) {
		if e := algo(mpi.AsComm(c), o, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			mu.Lock()
			if algErr == nil {
				algErr = e
			}
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if algErr != nil {
		t.Fatal(algErr)
	}
	got := bm.Gather(cT)
	want := matrix.New(o.N, o.N)
	Reference(want, a, b)
	if d := matrix.MaxAbsDiff(got, want); d > tol {
		t.Fatalf("distributed result differs from reference by %g (opts %+v)", d, o)
	}
}

func TestSUMMAGridsAndBlocks(t *testing.T) {
	cases := []struct {
		s, t, n, b int
	}{
		{1, 1, 8, 2},
		{2, 2, 8, 2},
		{2, 2, 8, 4},
		{2, 4, 16, 2},
		{4, 2, 16, 2},
		{4, 4, 16, 4},
		{4, 4, 16, 1},
		{2, 2, 6, 3},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%dx%d_n%d_b%d", c.s, c.t, c.n, c.b), func(t *testing.T) {
			o := Options{N: c.n, Grid: topo.Grid{S: c.s, T: c.t}, BlockSize: c.b}
			runAlgorithm(t, o, SUMMA)
		})
	}
}

func TestSUMMABroadcastAlgorithms(t *testing.T) {
	for _, alg := range sched.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			o := Options{N: 16, Grid: topo.Grid{S: 2, T: 4}, BlockSize: 4, Broadcast: alg, Segments: 2}
			runAlgorithm(t, o, SUMMA)
		})
	}
}

func TestHSUMMAGroupSweep(t *testing.T) {
	g := topo.Grid{S: 4, T: 4}
	for _, G := range topo.ValidGroupCounts(g) {
		G := G
		t.Run(fmt.Sprintf("G%d", G), func(t *testing.T) {
			h, err := topo.FactorGroups(g, G)
			if err != nil {
				t.Fatal(err)
			}
			o := Options{N: 16, Grid: g, BlockSize: 2, Groups: h}
			runAlgorithm(t, o, HSUMMA)
		})
	}
}

func TestHSUMMARectangularGridsAndGroups(t *testing.T) {
	cases := []struct {
		s, t, i, j, n, b, B int
	}{
		{2, 4, 1, 2, 16, 2, 2},
		{2, 4, 2, 2, 16, 2, 4},
		{4, 2, 2, 1, 16, 4, 4},
		{4, 4, 2, 4, 16, 1, 2},
		{6, 6, 3, 3, 36, 2, 2}, // the paper's Figure 2 arrangement
		{6, 6, 2, 3, 36, 3, 3},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%dx%d_g%dx%d_b%d_B%d", c.s, c.t, c.i, c.j, c.b, c.B), func(t *testing.T) {
			g := topo.Grid{S: c.s, T: c.t}
			h, err := topo.NewHier(g, c.i, c.j)
			if err != nil {
				t.Fatal(err)
			}
			o := Options{N: c.n, Grid: g, BlockSize: c.b, OuterBlockSize: c.B, Groups: h}
			runAlgorithm(t, o, HSUMMA)
		})
	}
}

func TestHSUMMAInnerOuterBlockSplit(t *testing.T) {
	// b < B: several inner steps per outer step.
	g := topo.Grid{S: 2, T: 2}
	h, _ := topo.NewHier(g, 2, 1)
	o := Options{N: 16, Grid: g, BlockSize: 2, OuterBlockSize: 8, Groups: h}
	runAlgorithm(t, o, HSUMMA)
}

func TestHSUMMAVanDeGeijnBroadcast(t *testing.T) {
	g := topo.Grid{S: 4, T: 4}
	h, _ := topo.NewHier(g, 2, 2)
	o := Options{N: 16, Grid: g, BlockSize: 4, Groups: h, Broadcast: sched.VanDeGeijn}
	runAlgorithm(t, o, HSUMMA)
}

// HSUMMA at G=1 and G=p must produce the same numerical result as SUMMA —
// the paper's degeneracy claim. With identical broadcast trees the
// floating-point sums associate identically, so equality is exact.
func TestHSUMMADegeneratesToSUMMA(t *testing.T) {
	g := topo.Grid{S: 2, T: 4}
	n, b := 16, 2
	bm, _ := dist.NewBlockMap(n, n, g)
	a := matrix.Random(n, n, 7)
	bb := matrix.Random(n, n, 8)
	run := func(algo func(comm.Comm, Options, *matrix.Dense, *matrix.Dense, *matrix.Dense) error, o Options) *matrix.Dense {
		aT, bT := bm.Scatter(a), bm.Scatter(bb)
		cT := make([]*matrix.Dense, g.Size())
		for r := range cT {
			cT[r] = matrix.New(bm.LocalRows(), bm.LocalCols())
		}
		if err := mpi.Run(g.Size(), func(c *mpi.Comm) {
			if e := algo(mpi.AsComm(c), o, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
				panic(e)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return bm.Gather(cT)
	}
	summaC := run(SUMMA, Options{N: n, Grid: g, BlockSize: b})
	for _, G := range []int{1, g.Size()} {
		h, err := topo.FactorGroups(g, G)
		if err != nil {
			t.Fatal(err)
		}
		hC := run(HSUMMA, Options{N: n, Grid: g, BlockSize: b, Groups: h})
		if !matrix.Equal(summaC, hC) {
			t.Fatalf("G=%d HSUMMA differs from SUMMA", G)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	g := topo.Grid{S: 2, T: 2}
	h, _ := topo.NewHier(g, 2, 2)
	cases := []struct {
		name string
		o    Options
		hier bool
	}{
		{"n not divisible by grid", Options{N: 9, Grid: g, BlockSize: 1}, false},
		{"b does not divide tile", Options{N: 8, Grid: g, BlockSize: 3}, false},
		{"zero n", Options{N: 0, Grid: g, BlockSize: 1}, false},
		{"zero b", Options{N: 8, Grid: g, BlockSize: 0}, false},
		{"B not multiple of b", Options{N: 16, Grid: g, BlockSize: 3, OuterBlockSize: 4, Groups: h}, true},
		{"B too large for tile", Options{N: 8, Grid: g, BlockSize: 2, OuterBlockSize: 8, Groups: h}, true},
		{"mismatched hierarchy", Options{N: 8, Grid: g, BlockSize: 2, Groups: topo.Hier{Grid: topo.Grid{S: 4, T: 4}, I: 2, J: 2}}, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var err error
			if c.hier {
				err = c.o.withDefaults().validateHSUMMA()
			} else {
				err = c.o.withDefaults().validateSUMMA()
			}
			if err == nil {
				t.Fatalf("%s: accepted", c.name)
			}
		})
	}
}

func TestCommSizeMismatch(t *testing.T) {
	// Run 4 ranks but configure an 8-rank grid: every rank must get an
	// error rather than deadlocking.
	var mu sync.Mutex
	errs := 0
	err := mpi.Run(4, func(c *mpi.Comm) {
		o := Options{N: 16, Grid: topo.Grid{S: 2, T: 4}, BlockSize: 2}
		tile := matrix.New(8, 4)
		if e := SUMMA(mpi.AsComm(c), o, tile, tile.Clone(), tile.Clone()); e != nil {
			mu.Lock()
			errs++
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs != 4 {
		t.Fatalf("%d ranks errored, want 4", errs)
	}
}

func TestSUMMAAccumulatesIntoC(t *testing.T) {
	// C starts non-zero; the algorithms must add A·B, not overwrite.
	g := topo.Grid{S: 2, T: 2}
	n := 8
	o := Options{N: n, Grid: g, BlockSize: 2}
	bm, _ := dist.NewBlockMap(n, n, g)
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	c0 := matrix.Random(n, n, 3)
	aT, bT, cT := bm.Scatter(a), bm.Scatter(b), bm.Scatter(c0)
	if err := mpi.Run(g.Size(), func(c *mpi.Comm) {
		if e := SUMMA(mpi.AsComm(c), o, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			panic(e)
		}
	}); err != nil {
		t.Fatal(err)
	}
	want := c0.Clone()
	Reference(want, a, b)
	if d := matrix.MaxAbsDiff(bm.Gather(cT), want); d > tol {
		t.Fatalf("accumulation broken, diff %g", d)
	}
}

func TestInputsUnmodified(t *testing.T) {
	g := topo.Grid{S: 2, T: 2}
	n := 8
	o := Options{N: n, Grid: g, BlockSize: 2}
	bm, _ := dist.NewBlockMap(n, n, g)
	a := matrix.Random(n, n, 11)
	b := matrix.Random(n, n, 12)
	aT, bT := bm.Scatter(a), bm.Scatter(b)
	cT := make([]*matrix.Dense, g.Size())
	for r := range cT {
		cT[r] = matrix.New(bm.LocalRows(), bm.LocalCols())
	}
	if err := mpi.Run(g.Size(), func(c *mpi.Comm) {
		if e := SUMMA(mpi.AsComm(c), o, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			panic(e)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(bm.Gather(aT), a) || !matrix.Equal(bm.Gather(bT), b) {
		t.Fatal("SUMMA modified its inputs")
	}
}

func TestHSUMMAStatsShowTwoLevelTraffic(t *testing.T) {
	// Sanity on the headline mechanism: with G groups, the inter-group
	// communicators carry traffic and the inner ones too; total sent
	// bytes must be positive on every rank that owns pivot data.
	g := topo.Grid{S: 4, T: 4}
	h, _ := topo.NewHier(g, 2, 2)
	n := 16
	o := Options{N: n, Grid: g, BlockSize: 2, Groups: h}
	bm, _ := dist.NewBlockMap(n, n, g)
	a := matrix.Random(n, n, 5)
	b := matrix.Random(n, n, 6)
	aT, bT := bm.Scatter(a), bm.Scatter(b)
	cT := make([]*matrix.Dense, g.Size())
	for r := range cT {
		cT[r] = matrix.New(bm.LocalRows(), bm.LocalCols())
	}
	stats, err := mpi.RunStats(g.Size(), func(c *mpi.Comm) {
		if e := HSUMMA(mpi.AsComm(c), o, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			panic(e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range stats {
		total += s.SentBytes
	}
	if total == 0 {
		t.Fatal("no traffic recorded")
	}
}
