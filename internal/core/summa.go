package core

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/mpi"
)

// SUMMA performs C += A·B over the communicator with the scalable universal
// matrix multiplication algorithm (paper Section II-A): n/b steps, each
// broadcasting the pivot column panel of A along process rows and the pivot
// row panel of B along process columns, followed by a local rank-b update.
//
// comm must span exactly Grid.Size() ranks; aLoc, bLoc and cLoc are this
// rank's block-checkerboard tiles of size (n/s)×(n/t). aLoc and bLoc are
// not modified.
func SUMMA(comm *mpi.Comm, opts Options, aLoc, bLoc, cLoc *matrix.Dense) error {
	o := opts.withDefaults()
	if err := o.validateSUMMA(); err != nil {
		return err
	}
	g := o.Grid
	if comm.Size() != g.Size() {
		return fmt.Errorf("core: communicator size %d does not match grid %v", comm.Size(), g)
	}
	i, j := g.Coords(comm.Rank())
	// Row and column communicators, as in the paper's Figure 1 pattern.
	rowComm := comm.Split(i, j)     // my grid row; my rank within it is j
	colComm := comm.Split(g.S+j, i) // my grid column; my rank within it is i

	n, b := o.N, o.BlockSize
	localRows, localCols := n/g.S, n/g.T
	checkTile("A", aLoc, localRows, localCols)
	checkTile("B", bLoc, localRows, localCols)
	checkTile("C", cLoc, localRows, localCols)

	aPanel := matrix.New(localRows, b)
	bPanel := matrix.New(b, localCols)
	aBuf := make([]float64, localRows*b)
	bBuf := make([]float64, b*localCols)
	for k := 0; k < n/b; k++ {
		lo := k * b // first global index of the pivot panel
		ownerCol := lo / localCols
		ownerRow := lo / localRows
		// Horizontal broadcast of A's pivot column panel along my row.
		if j == ownerCol {
			aLoc.View(0, lo%localCols, localRows, b).Pack(aBuf[:0])
		}
		rowComm.Bcast(o.Broadcast, ownerCol, aBuf, o.Segments)
		aPanel.Unpack(aBuf)
		// Vertical broadcast of B's pivot row panel along my column.
		if i == ownerRow {
			bLoc.View(lo%localRows, 0, b, localCols).Pack(bBuf[:0])
		}
		colComm.Bcast(o.Broadcast, ownerRow, bBuf, o.Segments)
		bPanel.Unpack(bBuf)
		// Local rank-b update.
		blas.Gemm(cLoc, aPanel, bPanel)
	}
	return nil
}

// checkTile panics when a local tile has the wrong shape — a programming
// error in the caller's distribution setup, not a runtime condition.
func checkTile(name string, m *matrix.Dense, rows, cols int) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("core: local %s tile is %dx%d, want %dx%d", name, m.Rows, m.Cols, rows, cols))
	}
}

// Reference computes C += A·B sequentially — the oracle the distributed
// algorithms are validated against in tests and examples.
func Reference(c, a, b *matrix.Dense) {
	blas.Gemm(c, a, b)
}
