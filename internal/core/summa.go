package core

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/comm"
	"repro/internal/matrix"
)

// SUMMA performs C += A·B over the communicator with the scalable universal
// matrix multiplication algorithm (paper Section II-A): K/b steps, each
// broadcasting the pivot column panel of A along process rows and the pivot
// row panel of B along process columns, followed by a local rank-b update.
//
// c must span exactly Grid.Size() ranks; aLoc, bLoc and cLoc are this
// rank's block-checkerboard tiles of size (M/s)×(K/t), (K/s)×(N/t) and
// (M/s)×(N/t) respectively (see dist.BlockMap). aLoc and bLoc are not
// modified. The algorithm is written against the transport-agnostic
// comm.Comm interface, so the identical code executes on the live
// goroutine runtime and on the simnet virtual communicator.
func SUMMA(c comm.Comm, opts Options, aLoc, bLoc, cLoc *matrix.Dense) error {
	o := opts.withDefaults()
	if err := o.validateSUMMA(); err != nil {
		return err
	}
	g := o.Grid
	if c.Size() != g.Size() {
		return fmt.Errorf("core: communicator size %d does not match grid %v", c.Size(), g)
	}
	i, j := g.Coords(c.Rank())
	// Row and column communicators, as in the paper's Figure 1 pattern.
	rowComm := c.Split(i, j)     // my grid row; my rank within it is j
	colComm := c.Split(g.S+j, i) // my grid column; my rank within it is i

	b := o.BlockSize
	aRows, aCols, bRows, bCols := o.tiles()
	checkTile("A", aLoc, aRows, aCols)
	checkTile("B", bLoc, bRows, bCols)
	checkTile("C", cLoc, aRows, bCols)

	aPanel := c.NewTile(aRows, b)
	bPanel := c.NewTile(b, bCols)
	aBuf := c.NewBuf(aRows * b)
	bBuf := c.NewBuf(b * bCols)
	for k := 0; k < o.Shape.K/b; k++ {
		lo := k * b // first global K index of the pivot panel
		ownerCol := lo / aCols
		ownerRow := lo / bRows
		// Horizontal broadcast of A's pivot column panel along my row.
		if j == ownerCol {
			c.Pack(aBuf, aLoc.View(0, lo%aCols, aRows, b))
		}
		rowComm.Bcast(o.Broadcast, ownerCol, aBuf, o.Segments)
		c.Unpack(aPanel, aBuf)
		// Vertical broadcast of B's pivot row panel along my column.
		if i == ownerRow {
			c.Pack(bBuf, bLoc.View(lo%bRows, 0, b, bCols))
		}
		colComm.Bcast(o.Broadcast, ownerRow, bBuf, o.Segments)
		c.Unpack(bPanel, bBuf)
		// Local rank-b update.
		c.Gemm(cLoc, aPanel, bPanel, o.Exec())
	}
	return nil
}

// checkTile panics when a local tile has the wrong shape — a programming
// error in the caller's distribution setup, not a runtime condition.
func checkTile(name string, m *matrix.Dense, rows, cols int) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("core: local %s tile is %dx%d, want %dx%d", name, m.Rows, m.Cols, rows, cols))
	}
}

// Reference computes C += A·B sequentially — the oracle the distributed
// algorithms are validated against in tests and examples.
func Reference(c, a, b *matrix.Dense) {
	blas.Gemm(c, a, b)
}
