// Package core implements the paper's algorithms on the message-passing
// runtime: SUMMA (van de Geijn & Watts 1997, Section II-A of the paper) and
// the paper's contribution HSUMMA (Section III, Algorithm 1) — the two-level
// hierarchical redesign that splits every pivot broadcast into an
// inter-group phase and an intra-group phase — plus the multilevel
// (>2-level) generalisation the paper lists as future work.
//
// All algorithms multiply block-checkerboard-distributed square matrices
// in place: each rank contributes its local tiles of A and B and
// accumulates into its local tile of C. Correctness is asserted against
// sequential GEMM in the package tests for every grid shape, group count
// and block-size combination the paper exercises (scaled down).
package core

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/topo"
)

// Options configures a distributed multiplication. The zero value is not
// usable; fill in at least N, Grid and BlockSize.
type Options struct {
	// N is the global matrix dimension (matrices are square n×n, as in
	// the paper's analysis and experiments).
	N int
	// Grid is the s×t process grid.
	Grid topo.Grid
	// BlockSize is the paper's b: the pivot panel width per SUMMA step
	// (and per HSUMMA inner step).
	BlockSize int
	// OuterBlockSize is the paper's B: the panel width exchanged between
	// groups per HSUMMA outer step. Zero means B = b, the configuration
	// used in all the paper's experiments. Must be a multiple of b.
	OuterBlockSize int
	// Groups is the hierarchical group arrangement for HSUMMA.
	Groups topo.Hier
	// Broadcast selects the broadcast schedule for every collective;
	// defaults to binomial.
	Broadcast sched.Algorithm
	// Segments is the pipeline depth for the chain broadcast (ignored
	// otherwise).
	Segments int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Broadcast == "" {
		out.Broadcast = sched.Binomial
	}
	if out.Segments <= 0 {
		out.Segments = 1
	}
	if out.OuterBlockSize == 0 {
		out.OuterBlockSize = out.BlockSize
	}
	return out
}

// validateSUMMA checks the divisibility constraints the implementation
// relies on: square tiles per rank and pivot panels that live in exactly
// one grid row/column (b | n/s and b | n/t), the same constraints the
// paper's experiments satisfy.
func (o Options) validateSUMMA() error {
	if o.N <= 0 || o.BlockSize <= 0 {
		return fmt.Errorf("core: invalid n=%d b=%d", o.N, o.BlockSize)
	}
	s, t := o.Grid.S, o.Grid.T
	if s <= 0 || t <= 0 {
		return fmt.Errorf("core: invalid grid %v", o.Grid)
	}
	if o.N%s != 0 || o.N%t != 0 {
		return fmt.Errorf("core: n=%d not divisible by grid %v", o.N, o.Grid)
	}
	if (o.N/s)%o.BlockSize != 0 || (o.N/t)%o.BlockSize != 0 {
		return fmt.Errorf("core: block size %d does not divide local tile %dx%d",
			o.BlockSize, o.N/s, o.N/t)
	}
	return nil
}

// validateHSUMMA adds the hierarchical constraints: the group arrangement
// must match the grid, B must be a multiple of b, and outer panels must
// live in one grid row/column (B | n/s, B | n/t).
func (o Options) validateHSUMMA() error {
	if err := o.validateSUMMA(); err != nil {
		return err
	}
	h := o.Groups
	if h.Grid != o.Grid {
		return fmt.Errorf("core: group hierarchy %v does not match grid %v", h.Grid, o.Grid)
	}
	if h.I <= 0 || h.J <= 0 || o.Grid.S%h.I != 0 || o.Grid.T%h.J != 0 {
		return fmt.Errorf("core: invalid group arrangement %dx%d for grid %v", h.I, h.J, o.Grid)
	}
	B := o.OuterBlockSize
	if B%o.BlockSize != 0 {
		return fmt.Errorf("core: outer block %d not a multiple of inner block %d", B, o.BlockSize)
	}
	if (o.N/o.Grid.S)%B != 0 || (o.N/o.Grid.T)%B != 0 {
		return fmt.Errorf("core: outer block %d does not divide local tile %dx%d",
			B, o.N/o.Grid.S, o.N/o.Grid.T)
	}
	return nil
}
