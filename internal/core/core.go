// Package core implements the paper's algorithms on the message-passing
// runtime: SUMMA (van de Geijn & Watts 1997, Section II-A of the paper) and
// the paper's contribution HSUMMA (Section III, Algorithm 1) — the two-level
// hierarchical redesign that splits every pivot broadcast into an
// inter-group phase and an intra-group phase — plus the multilevel
// (>2-level) generalisation the paper lists as future work.
//
// All algorithms multiply block-checkerboard-distributed matrices in
// place and are shape-general: the global problem is C (M×N) += A (M×K) ·
// B (K×N), with the paper's square n×n benchmark as the M = N = K special
// case. Each rank contributes its local tiles of A ((M/s)×(K/t)) and B
// ((K/s)×(N/t)) and accumulates into its local tile of C ((M/s)×(N/t));
// the pivot loop walks the contraction dimension K. Correctness is
// asserted against sequential GEMM in the package tests for every grid
// shape, group count and block-size combination the paper exercises
// (scaled down), plus rectangular shapes in every aspect class.
package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/topo"
)

// Options configures a distributed multiplication. The zero value is not
// usable; fill in at least a shape (Shape, or N as the square shorthand),
// Grid and BlockSize.
type Options struct {
	// Shape is the global GEMM shape C (M×N) += A (M×K)·B (K×N). The zero
	// value defers to N, the square shorthand.
	Shape matrix.Shape
	// N is the square shorthand for Shape = Square(n) — the paper's
	// configuration. Ignored when Shape is set.
	N int
	// Grid is the s×t process grid.
	Grid topo.Grid
	// BlockSize is the paper's b: the pivot panel width per SUMMA step
	// (and per HSUMMA inner step), walking the K dimension.
	BlockSize int
	// OuterBlockSize is the paper's B: the panel width exchanged between
	// groups per HSUMMA outer step. Zero means B = b, the configuration
	// used in all the paper's experiments. Must be a multiple of b.
	OuterBlockSize int
	// Groups is the hierarchical group arrangement for HSUMMA.
	Groups topo.Hier
	// Broadcast selects the broadcast schedule for every collective;
	// defaults to binomial.
	Broadcast sched.Algorithm
	// Segments is the pipeline depth for the chain broadcast (ignored
	// otherwise).
	Segments int
	// Threads is the per-rank thread budget for the local multiply — the
	// Go analog of OpenMP threads inside each MPI process. Values ≤ 1
	// mean serial (the default); the live transport splits each rank's
	// Gemm over write-disjoint C row bands, the virtual ones scale the
	// compute clock by the shared parallel-efficiency curve.
	Threads int
	// LocalStrassen selects the sub-cubic Strassen kernel for every
	// rank-local multiply (blas.StrassenGemm on the live transport; the
	// virtual ones charge blas.StrassenFlops). Orthogonal to the
	// algorithm: any distributed schedule can run a sub-cubic local
	// kernel. Note Strassen reassociates the arithmetic — results match
	// the classic kernel to relative tolerance, not bit for bit.
	LocalStrassen bool
	// StrassenCutoff is the local Strassen recursion cutoff (≤ 0 selects
	// the blas default); ignored unless LocalStrassen is set.
	StrassenCutoff int
	// StrassenLevels is the inter-rank quadrant recursion depth of the
	// Strassen algorithm (0 means one level); ignored by the other
	// algorithms.
	StrassenLevels int
	// StrassenInnerGroups selects the bottom algorithm the Strassen
	// recursion hands each sub-grid problem to: 0 runs SUMMA, > 0 runs
	// HSUMMA with that group count factored onto the bottom sub-grid.
	StrassenInnerGroups int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Shape.IsZero() {
		out.Shape = matrix.Square(out.N)
	}
	if out.Broadcast == "" {
		out.Broadcast = sched.Binomial
	}
	if out.Segments <= 0 {
		out.Segments = 1
	}
	if out.OuterBlockSize == 0 {
		out.OuterBlockSize = out.BlockSize
	}
	if out.Threads < 1 {
		out.Threads = 1
	}
	return out
}

// Exec returns the execution descriptor every local multiply runs under.
func (o Options) Exec() comm.Exec {
	return comm.Exec{Threads: o.Threads, Strassen: o.LocalStrassen, Cutoff: o.StrassenCutoff}
}

// tiles returns the per-rank tile extents of the three operands on the
// s×t grid: A is aRows×aCols, B is bRows×bCols, C is aRows×bCols.
func (o Options) tiles() (aRows, aCols, bRows, bCols int) {
	sh, g := o.Shape, o.Grid
	return sh.M / g.S, sh.K / g.T, sh.K / g.S, sh.N / g.T
}

// validateSUMMA checks the divisibility constraints the implementation
// relies on: uniform tiles per rank for each operand (s | M, s | K,
// t | K, t | N) and pivot panels that live in exactly one grid
// row/column (b | K/t for A's panels, b | K/s for B's), the same
// constraints the paper's experiments satisfy with M = N = K.
func (o Options) validateSUMMA() error {
	sh := o.Shape
	if err := sh.Validate(); err != nil {
		return err
	}
	if o.BlockSize <= 0 {
		return fmt.Errorf("core: invalid block size b=%d for shape %v", o.BlockSize, sh)
	}
	s, t := o.Grid.S, o.Grid.T
	if s <= 0 || t <= 0 {
		return fmt.Errorf("core: invalid grid %v", o.Grid)
	}
	if sh.M%s != 0 || sh.K%s != 0 || sh.K%t != 0 || sh.N%t != 0 {
		return fmt.Errorf("core: shape %v not divisible by grid %v (need s | M, s | K, t | K, t | N)", sh, o.Grid)
	}
	if (sh.K/t)%o.BlockSize != 0 || (sh.K/s)%o.BlockSize != 0 {
		return fmt.Errorf("core: block size %d does not divide the per-rank K extents %d (A columns) and %d (B rows)",
			o.BlockSize, sh.K/t, sh.K/s)
	}
	return nil
}

// validateHSUMMA adds the hierarchical constraints: the group arrangement
// must match the grid, B must be a multiple of b, and outer panels must
// live in one grid row/column (B | K/s, B | K/t).
func (o Options) validateHSUMMA() error {
	if err := o.validateSUMMA(); err != nil {
		return err
	}
	h := o.Groups
	if h.Grid != o.Grid {
		return fmt.Errorf("core: group hierarchy %v does not match grid %v", h.Grid, o.Grid)
	}
	if h.I <= 0 || h.J <= 0 || o.Grid.S%h.I != 0 || o.Grid.T%h.J != 0 {
		return fmt.Errorf("core: invalid group arrangement %dx%d for grid %v", h.I, h.J, o.Grid)
	}
	B := o.OuterBlockSize
	if B%o.BlockSize != 0 {
		return fmt.Errorf("core: outer block %d not a multiple of inner block %d", B, o.BlockSize)
	}
	sh := o.Shape
	if (sh.K/o.Grid.S)%B != 0 || (sh.K/o.Grid.T)%B != 0 {
		return fmt.Errorf("core: outer block %d does not divide the per-rank K extents %d (A columns) and %d (B rows)",
			B, sh.K/o.Grid.T, sh.K/o.Grid.S)
	}
	return nil
}
