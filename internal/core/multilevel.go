package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/matrix"
)

// Level describes one grouping level of the multilevel hierarchy: the
// process grid (or the previous level's subgrid) is partitioned into I×J
// groups, and panels of width BlockSize are exchanged across those groups.
type Level struct {
	I, J      int
	BlockSize int
}

// MultilevelHSUMMA generalises HSUMMA to an arbitrary number of hierarchy
// levels — the extension the paper proposes in Section VI ("we also plan to
// investigate the algorithm with more than two levels of hierarchy").
//
// levels[0] is the coarsest grouping; each subsequent level subdivides the
// previous level's subgrid. innerBlock is the paper's b, the panel width of
// the innermost (finest) broadcasts. Panel widths must be non-increasing
// down the hierarchy, each a multiple of the next, with levels[0].BlockSize
// dividing the local tile.
//
// A single level reproduces HSUMMA exactly (asserted in tests); zero levels
// reproduce SUMMA.
func MultilevelHSUMMA(c comm.Comm, opts Options, levels []Level, innerBlock int, aLoc, bLoc, cLoc *matrix.Dense) error {
	o := opts.withDefaults()
	o.BlockSize = innerBlock
	if err := o.validateSUMMA(); err != nil {
		return err
	}
	g := o.Grid
	if c.Size() != g.Size() {
		return fmt.Errorf("core: communicator size %d does not match grid %v", c.Size(), g)
	}

	// Column and row dimension factorisations: the rank's grid column j
	// decomposes into mixed-radix digits (y_0, …, y_{L-1}, j_fine) over
	// (J_0, …, J_{L-1}, tFine); likewise rows over the I factors.
	L := len(levels)
	colRadix := make([]int, 0, L+1)
	rowRadix := make([]int, 0, L+1)
	prodI, prodJ := 1, 1
	widths := make([]int, 0, L+1) // panel width at each level, innermost last
	for _, lv := range levels {
		if lv.I <= 0 || lv.J <= 0 {
			return fmt.Errorf("core: invalid level %+v", lv)
		}
		colRadix = append(colRadix, lv.J)
		rowRadix = append(rowRadix, lv.I)
		prodI *= lv.I
		prodJ *= lv.J
		widths = append(widths, lv.BlockSize)
	}
	if g.S%prodI != 0 || g.T%prodJ != 0 {
		return fmt.Errorf("core: level products %dx%d do not divide grid %v", prodI, prodJ, g)
	}
	colRadix = append(colRadix, g.T/prodJ)
	rowRadix = append(rowRadix, g.S/prodI)
	widths = append(widths, innerBlock)

	aRows, aCols, bRows, bCols := o.tiles()
	checkTile("A", aLoc, aRows, aCols)
	checkTile("B", bLoc, bRows, bCols)
	checkTile("C", cLoc, aRows, bCols)
	for k := 0; k < len(widths); k++ {
		if k > 0 && widths[k-1]%widths[k] != 0 {
			return fmt.Errorf("core: level %d width %d not a multiple of next width %d", k-1, widths[k-1], widths[k])
		}
	}
	if aCols%widths[0] != 0 || bRows%widths[0] != 0 {
		return fmt.Errorf("core: top width %d does not divide the per-rank K extents %d (A columns) and %d (B rows)",
			widths[0], aCols, bRows)
	}

	i, j := g.Coords(c.Rank())
	colDigits := digits(j, colRadix)
	rowDigits := digits(i, rowRadix)

	// Communicators per level: the level-k column communicator connects
	// ranks differing only in column digit k (same row, same other
	// digits); its internal rank is the digit itself. Likewise for rows.
	nLevels := len(widths)
	aComms := make([]comm.Comm, nLevels)
	bComms := make([]comm.Comm, nLevels)
	for k := 0; k < nLevels; k++ {
		aComms[k] = c.Split(colorWithout(i, colDigits, colRadix, k), colDigits[k])
		bComms[k] = c.Split(g.Size()*(1+k)+colorWithout(j, rowDigits, rowRadix, k), rowDigits[k])
	}

	// Panel buffers per level.
	aBufs := make([]*matrix.Dense, nLevels)
	bBufs := make([]*matrix.Dense, nLevels)
	aWire := make([]comm.Buf, nLevels)
	bWire := make([]comm.Buf, nLevels)
	for k, w := range widths {
		aBufs[k] = c.NewTile(aRows, w)
		bBufs[k] = c.NewTile(w, bCols)
		aWire[k] = c.NewBuf(aRows * w)
		bWire[k] = c.NewBuf(w * bCols)
	}

	// descend recursively broadcasts the panel starting at global pivot
	// K index lo with width widths[k] at level k, then subdivides.
	var descend func(k, lo int)
	descend = func(k, lo int) {
		w := widths[k]
		ownerCol := lo / aCols
		ownerRow := lo / bRows
		ownerColDigits := digits(ownerCol, colRadix)
		ownerRowDigits := digits(ownerRow, rowRadix)
		// A horizontal broadcast at this level: participants are ranks
		// whose column digits *below* this level (finer) match the
		// owner's; the root is the owner's digit at this level.
		if digitsMatchBelow(colDigits, ownerColDigits, k) {
			if colDigits[k] == ownerColDigits[k] {
				// I hold the parent panel (or the tile at k=0).
				if k == 0 {
					c.Pack(aWire[k], aLoc.View(0, lo%aCols, aRows, w))
				} else {
					parentOff := lo % widths[k-1]
					c.Pack(aWire[k], aBufs[k-1].View(0, parentOff, aRows, w))
				}
			}
			aComms[k].Bcast(o.Broadcast, ownerColDigits[k], aWire[k], o.Segments)
			c.Unpack(aBufs[k], aWire[k])
		}
		if digitsMatchBelow(rowDigits, ownerRowDigits, k) {
			if rowDigits[k] == ownerRowDigits[k] {
				if k == 0 {
					c.Pack(bWire[k], bLoc.View(lo%bRows, 0, w, bCols))
				} else {
					parentOff := lo % widths[k-1]
					c.Pack(bWire[k], bBufs[k-1].View(parentOff, 0, w, bCols))
				}
			}
			bComms[k].Bcast(o.Broadcast, ownerRowDigits[k], bWire[k], o.Segments)
			c.Unpack(bBufs[k], bWire[k])
		}
		if k == nLevels-1 {
			c.Gemm(cLoc, aBufs[k], bBufs[k], o.Exec())
			return
		}
		for sub := 0; sub < w/widths[k+1]; sub++ {
			descend(k+1, lo+sub*widths[k+1])
		}
	}
	for outer := 0; outer < o.Shape.K/widths[0]; outer++ {
		descend(0, outer*widths[0])
	}
	return nil
}

// digits decomposes v into mixed-radix digits, most significant first:
// radix (r0,…,rk) means v = d0·(r1·…·rk) + d1·(r2·…·rk) + … + dk.
func digits(v int, radix []int) []int {
	out := make([]int, len(radix))
	for k := len(radix) - 1; k >= 0; k-- {
		out[k] = v % radix[k]
		v /= radix[k]
	}
	return out
}

// digitsMatchBelow reports whether the digits strictly finer than level k
// (indices > k) agree — the participation condition for a level-k
// broadcast.
func digitsMatchBelow(mine, owner []int, k int) bool {
	for d := k + 1; d < len(mine); d++ {
		if mine[d] != owner[d] {
			return false
		}
	}
	return true
}

// colorWithout builds a split colour from the orthogonal coordinate and all
// digits except digit k, so ranks differing only in digit k share a colour.
func colorWithout(ortho int, digs, radix []int, k int) int {
	color := ortho
	for d := range digs {
		if d == k {
			continue
		}
		color = color*radix[d] + digs[d]
	}
	// Make room so different k values cannot collide even if callers
	// reuse colours across Split invocations (they do not need to, but
	// cheap safety is cheap).
	return color*(len(digs)+1) + k
}
