package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/topo"
)

// runRect distributes random M×K and K×N matrices over the grid by their
// own shapes, runs the distributed multiply on the mpi runtime, gathers C
// and compares it element-wise against the sequential reference — the
// rectangular counterpart of runAlgorithm.
func runRect(t *testing.T, o Options, algo func(comm.Comm, Options, *matrix.Dense, *matrix.Dense, *matrix.Dense) error) {
	t.Helper()
	sh, g := o.Shape, o.Grid
	bmA, err := dist.NewBlockMap(sh.M, sh.K, g)
	if err != nil {
		t.Fatal(err)
	}
	bmB, err := dist.NewBlockMap(sh.K, sh.N, g)
	if err != nil {
		t.Fatal(err)
	}
	bmC, err := dist.NewBlockMap(sh.M, sh.N, g)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(sh.M, sh.K, 301)
	b := matrix.Random(sh.K, sh.N, 302)
	aT, bT := bmA.Scatter(a), bmB.Scatter(b)
	cT := make([]*matrix.Dense, g.Size())
	for r := range cT {
		cT[r] = matrix.New(bmC.LocalRows(), bmC.LocalCols())
	}
	var mu sync.Mutex
	var algErr error
	err = mpi.Run(g.Size(), func(c *mpi.Comm) {
		if e := algo(mpi.AsComm(c), o, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			mu.Lock()
			if algErr == nil {
				algErr = e
			}
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if algErr != nil {
		t.Fatal(algErr)
	}
	got := bmC.Gather(cT)
	want := matrix.New(sh.M, sh.N)
	Reference(want, a, b)
	if d := matrix.MaxAbsDiff(got, want); d > tol {
		t.Fatalf("distributed result differs from reference by %g (opts %+v)", d, o)
	}
}

// Rectangular SUMMA across the aspect classes: tall (M≫N), wide (N≫M),
// fat-K (K≫M,N), skinny-K, and asymmetric grids in both orientations.
func TestSUMMARectangularShapes(t *testing.T) {
	cases := []struct {
		m, n, k, s, gt, b int
	}{
		{32, 8, 16, 2, 2, 4},  // tall
		{8, 32, 16, 2, 2, 4},  // wide
		{8, 8, 64, 2, 2, 8},   // fat-K
		{64, 64, 8, 4, 4, 2},  // skinny-K
		{24, 12, 36, 2, 3, 3}, // asymmetric grid, non-power-of-two
		{12, 24, 36, 3, 2, 6}, // transposed orientation
		{16, 4, 16, 4, 2, 2},  // tall on a tall grid
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("M%dN%dK%d_%dx%d_b%d", c.m, c.n, c.k, c.s, c.gt, c.b), func(t *testing.T) {
			o := Options{Shape: matrix.Shape{M: c.m, N: c.n, K: c.k},
				Grid: topo.Grid{S: c.s, T: c.gt}, BlockSize: c.b}
			runRect(t, o, SUMMA)
		})
	}
}

func TestHSUMMARectangularShapes(t *testing.T) {
	cases := []struct {
		m, n, k, s, gt, i, j, b, B int
	}{
		{32, 8, 16, 4, 4, 2, 2, 2, 4},  // tall, 2x2 groups, B > b
		{8, 32, 64, 2, 4, 1, 2, 4, 8},  // wide, row groups
		{16, 16, 96, 4, 4, 2, 4, 4, 8}, // fat-K, skewed groups
		{24, 12, 36, 2, 3, 2, 3, 3, 3}, // non-power-of-two everything
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("M%dN%dK%d_%dx%d_g%dx%d", c.m, c.n, c.k, c.s, c.gt, c.i, c.j), func(t *testing.T) {
			g := topo.Grid{S: c.s, T: c.gt}
			h, err := topo.NewHier(g, c.i, c.j)
			if err != nil {
				t.Fatal(err)
			}
			o := Options{Shape: matrix.Shape{M: c.m, N: c.n, K: c.k},
				Grid: g, BlockSize: c.b, OuterBlockSize: c.B, Groups: h}
			runRect(t, o, HSUMMA)
		})
	}
}

func TestMultilevelRectangularShapes(t *testing.T) {
	cases := []struct {
		m, n, k int
		levels  []Level
		b       int
	}{
		{32, 8, 64, []Level{{I: 2, J: 2, BlockSize: 8}}, 4},
		{8, 32, 64, []Level{{I: 2, J: 2, BlockSize: 8}, {I: 2, J: 2, BlockSize: 4}}, 2},
	}
	g := topo.Grid{S: 4, T: 4}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("M%dN%dK%d_L%d", c.m, c.n, c.k, len(c.levels)), func(t *testing.T) {
			o := Options{Shape: matrix.Shape{M: c.m, N: c.n, K: c.k}, Grid: g}
			runRect(t, o, func(cm comm.Comm, o Options, a, b, cc *matrix.Dense) error {
				return MultilevelHSUMMA(cm, o, c.levels, c.b, a, b, cc)
			})
		})
	}
}

// HSUMMA at G=1 must still equal SUMMA bit-for-bit on rectangular shapes
// — the paper's degeneracy claim carries over to the generalisation.
func TestHSUMMARectDegeneratesToSUMMA(t *testing.T) {
	sh := matrix.Shape{M: 24, N: 8, K: 16}
	g := topo.Grid{S: 2, T: 4}
	bmA, _ := dist.NewBlockMap(sh.M, sh.K, g)
	bmB, _ := dist.NewBlockMap(sh.K, sh.N, g)
	bmC, _ := dist.NewBlockMap(sh.M, sh.N, g)
	a := matrix.Random(sh.M, sh.K, 7)
	bb := matrix.Random(sh.K, sh.N, 8)
	run := func(algo func(comm.Comm, Options, *matrix.Dense, *matrix.Dense, *matrix.Dense) error, o Options) *matrix.Dense {
		aT, bT := bmA.Scatter(a), bmB.Scatter(bb)
		cT := make([]*matrix.Dense, g.Size())
		for r := range cT {
			cT[r] = matrix.New(bmC.LocalRows(), bmC.LocalCols())
		}
		if err := mpi.Run(g.Size(), func(c *mpi.Comm) {
			if e := algo(mpi.AsComm(c), o, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
				panic(e)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return bmC.Gather(cT)
	}
	summaC := run(SUMMA, Options{Shape: sh, Grid: g, BlockSize: 2})
	for _, G := range []int{1, g.Size()} {
		h, err := topo.FactorGroups(g, G)
		if err != nil {
			t.Fatal(err)
		}
		hC := run(HSUMMA, Options{Shape: sh, Grid: g, BlockSize: 2, Groups: h})
		if !matrix.Equal(summaC, hC) {
			t.Fatalf("G=%d HSUMMA differs from SUMMA on %v", G, sh)
		}
	}
}

func TestRectValidationErrors(t *testing.T) {
	g := topo.Grid{S: 2, T: 2}
	cases := []struct {
		name string
		o    Options
	}{
		{"M not divisible", Options{Shape: matrix.Shape{M: 9, N: 8, K: 8}, Grid: g, BlockSize: 2}},
		{"K not divisible by T", Options{Shape: matrix.Shape{M: 8, N: 8, K: 10}, Grid: g, BlockSize: 2}},
		{"b exceeds K extent", Options{Shape: matrix.Shape{M: 16, N: 16, K: 4}, Grid: g, BlockSize: 4}},
		{"zero K", Options{Shape: matrix.Shape{M: 8, N: 8, K: 0}, Grid: g, BlockSize: 2}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := c.o.withDefaults().validateSUMMA(); err == nil {
				t.Fatalf("%s accepted", c.name)
			}
		})
	}
}

// CyclicSUMMA on rectangular operands: the ScaLAPACK layout with per-
// operand cyclic maps.
func TestCyclicSUMMARectangular(t *testing.T) {
	sh := matrix.Shape{M: 16, N: 8, K: 24}
	g := topo.Grid{S: 2, T: 2}
	b := 2
	o := Options{Shape: sh, Grid: g, BlockSize: b}
	cmA, err := dist.NewCyclicMap(sh.M, sh.K, b, b, g)
	if err != nil {
		t.Fatal(err)
	}
	cmB, err := dist.NewCyclicMap(sh.K, sh.N, b, b, g)
	if err != nil {
		t.Fatal(err)
	}
	cmC, err := dist.NewCyclicMap(sh.M, sh.N, b, b, g)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(sh.M, sh.K, 61)
	bb := matrix.Random(sh.K, sh.N, 62)
	aT, bT := cmA.Scatter(a), cmB.Scatter(bb)
	cT := make([]*matrix.Dense, g.Size())
	for r := range cT {
		cT[r] = matrix.New(cmC.LocalRows(), cmC.LocalCols())
	}
	if err := mpi.Run(g.Size(), func(c *mpi.Comm) {
		if e := CyclicSUMMA(mpi.AsComm(c), o, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			panic(e)
		}
	}); err != nil {
		t.Fatal(err)
	}
	got := cmC.Gather(cT)
	want := matrix.New(sh.M, sh.N)
	Reference(want, a, bb)
	if d := matrix.MaxAbsDiff(got, want); d > tol {
		t.Fatalf("cyclic rect result differs by %g", d)
	}
}
