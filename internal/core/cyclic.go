package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/matrix"
)

// CyclicSUMMA performs C += A·B over matrices in the 2D block-cyclic
// distribution — the ScaLAPACK layout and the paper's first future-work
// item (§VI: "by using block-cyclic distribution the communication can be
// better overlapped and parallelized").
//
// The distribution block equals the algorithmic block b: at step k the
// pivot block-column of A lives on grid column k mod t and the pivot
// block-row of B on grid row k mod s, so broadcast roots rotate round-robin
// instead of dwelling on one grid column for n/(t·b) consecutive steps as
// in the block-checkerboard layout — the property that spreads root load
// and enables the overlap the paper anticipates.
//
// Tiles must come from dist.CyclicMap with Br = Bc = opts.BlockSize.
func CyclicSUMMA(c comm.Comm, opts Options, aLoc, bLoc, cLoc *matrix.Dense) error {
	o := opts.withDefaults()
	if err := o.validateSUMMA(); err != nil {
		return err
	}
	g := o.Grid
	if c.Size() != g.Size() {
		return fmt.Errorf("core: communicator size %d does not match grid %v", c.Size(), g)
	}
	sh, b := o.Shape, o.BlockSize
	if sh.M%b != 0 || sh.N%b != 0 || sh.K%b != 0 ||
		(sh.M/b)%g.S != 0 || (sh.K/b)%g.S != 0 || (sh.K/b)%g.T != 0 || (sh.N/b)%g.T != 0 {
		return fmt.Errorf("core: cyclic layout needs every operand's block rows/cols divisible by grid %v (shape %v, b=%d)", g, sh, b)
	}
	cmA, err := dist.NewCyclicMap(sh.M, sh.K, b, b, g)
	if err != nil {
		return err
	}
	cmB, err := dist.NewCyclicMap(sh.K, sh.N, b, b, g)
	if err != nil {
		return err
	}
	aRows, aCols := cmA.LocalRows(), cmA.LocalCols()
	bRows, bCols := cmB.LocalRows(), cmB.LocalCols()
	checkTile("A", aLoc, aRows, aCols)
	checkTile("B", bLoc, bRows, bCols)
	checkTile("C", cLoc, aRows, bCols)

	i, j := g.Coords(c.Rank())
	rowComm := c.Split(i, j)
	colComm := c.Split(g.S+j, i)

	aPanel := c.NewTile(aRows, b)
	bPanel := c.NewTile(b, bCols)
	aBuf := c.NewBuf(aRows * b)
	bBuf := c.NewBuf(b * bCols)
	for k := 0; k < sh.K/b; k++ {
		// Owner grid column of A's pivot block-column k, and the local
		// block column it is stored at on the owner.
		ownerCol := k % g.T
		if j == ownerCol {
			c.Pack(aBuf, aLoc.View(0, (k/g.T)*b, aRows, b))
		}
		rowComm.Bcast(o.Broadcast, ownerCol, aBuf, o.Segments)
		c.Unpack(aPanel, aBuf)

		ownerRow := k % g.S
		if i == ownerRow {
			c.Pack(bBuf, bLoc.View((k/g.S)*b, 0, b, bCols))
		}
		colComm.Bcast(o.Broadcast, ownerRow, bBuf, o.Segments)
		c.Unpack(bPanel, bBuf)

		// The panel's local row set equals C's local row set (both are
		// the block rows congruent to i mod s, in the same local
		// order), and likewise for columns, so the update is a plain
		// local GEMM exactly as in the checkerboard layout.
		c.Gemm(cLoc, aPanel, bPanel, o.Exec())
	}
	return nil
}
