package core

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/topo"
)

func runCyclic(t *testing.T, g topo.Grid, n, b int, bcast sched.Algorithm) {
	t.Helper()
	cm, err := dist.NewCyclicMap(n, n, b, b, g)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(n, n, 61)
	bb := matrix.Random(n, n, 62)
	aT, bT := cm.Scatter(a), cm.Scatter(bb)
	cT := make([]*matrix.Dense, g.Size())
	for r := range cT {
		cT[r] = matrix.New(cm.LocalRows(), cm.LocalCols())
	}
	if err := mpi.Run(g.Size(), func(c *mpi.Comm) {
		o := Options{N: n, Grid: g, BlockSize: b, Broadcast: bcast}
		if e := CyclicSUMMA(mpi.AsComm(c), o, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			panic(e)
		}
	}); err != nil {
		t.Fatal(err)
	}
	got := cm.Gather(cT)
	want := matrix.New(n, n)
	Reference(want, a, bb)
	if d := matrix.MaxAbsDiff(got, want); d > tol {
		t.Fatalf("cyclic SUMMA %v n=%d b=%d off by %g", g, n, b, d)
	}
}

func TestCyclicSUMMAGrids(t *testing.T) {
	cases := []struct{ s, tt, n, b int }{
		{1, 1, 8, 2},
		{2, 2, 8, 2},
		{2, 2, 16, 2},
		{2, 4, 16, 2},
		{4, 2, 16, 2},
		{4, 4, 32, 2},
		{2, 2, 16, 4},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%dx%d_n%d_b%d", c.s, c.tt, c.n, c.b), func(t *testing.T) {
			runCyclic(t, topo.Grid{S: c.s, T: c.tt}, c.n, c.b, sched.Binomial)
		})
	}
}

func TestCyclicSUMMAVanDeGeijn(t *testing.T) {
	runCyclic(t, topo.Grid{S: 2, T: 4}, 16, 2, sched.VanDeGeijn)
}

func TestCyclicSUMMARootsRotate(t *testing.T) {
	// The defining property versus the checkerboard layout: over n/b
	// steps every grid column serves as A-broadcast root equally often.
	// Verify through traffic stats: with block-cyclic every rank sends a
	// similar byte count, whereas checkerboard SUMMA concentrates
	// sending on the current owner column for long runs.
	g := topo.Grid{S: 2, T: 2}
	n, b := 16, 2
	cm, _ := dist.NewCyclicMap(n, n, b, b, g)
	a := matrix.Random(n, n, 1)
	bb := matrix.Random(n, n, 2)
	aT, bT := cm.Scatter(a), cm.Scatter(bb)
	cT := make([]*matrix.Dense, g.Size())
	for r := range cT {
		cT[r] = matrix.New(cm.LocalRows(), cm.LocalCols())
	}
	stats, err := mpi.RunStats(g.Size(), func(c *mpi.Comm) {
		o := Options{N: n, Grid: g, BlockSize: b}
		if e := CyclicSUMMA(mpi.AsComm(c), o, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			panic(e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range stats {
		if s.SentBytes == 0 {
			t.Fatalf("rank %d sent nothing — roots did not rotate", r)
		}
	}
}

func TestCyclicSUMMAValidation(t *testing.T) {
	g := topo.Grid{S: 4, T: 4}
	err := mpi.Run(g.Size(), func(c *mpi.Comm) {
		// 8/2 = 4 block rows over 4 grid rows is fine, but n=8, b=2 over
		// t=4: blocks divisible; use an invalid one: n/b=3 blocks.
		tile := matrix.New(2, 2)
		o := Options{N: 12, Grid: g, BlockSize: 4} // 3 block rows over 4 grid rows
		if e := CyclicSUMMA(mpi.AsComm(c), o, tile, tile.Clone(), tile.Clone()); e == nil {
			panic("indivisible cyclic layout accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
