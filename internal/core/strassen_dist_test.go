package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/topo"
)

// Strassen reassociates the floating-point arithmetic, so the distributed
// result is compared against the sequential reference to relative
// tolerance, not the classic algorithms' bitwise-friendly absolute one.
const strassenRelTol = 1e-9

// runStrassen distributes random n×n matrices (and a random initial C, to
// catch overwrite-instead-of-accumulate bugs), runs core.Strassen on the
// mpi runtime, and checks the gathered product against the reference.
func runStrassen(t *testing.T, o Options) {
	t.Helper()
	g := o.Grid
	bm, err := dist.NewBlockMap(o.N, o.N, g)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(o.N, o.N, 301)
	b := matrix.Random(o.N, o.N, 302)
	c0 := matrix.Random(o.N, o.N, 303)
	aT, bT, cT := bm.Scatter(a), bm.Scatter(b), bm.Scatter(c0)
	var mu sync.Mutex
	var algErr error
	err = mpi.Run(g.Size(), func(c *mpi.Comm) {
		if e := Strassen(mpi.AsComm(c), o, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			mu.Lock()
			if algErr == nil {
				algErr = e
			}
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if algErr != nil {
		t.Fatal(algErr)
	}
	got := bm.Gather(cT)
	want := c0.Clone()
	Reference(want, a, b)
	if d := matrix.MaxAbsDiff(got, want); d > strassenRelTol*want.FrobeniusNorm() {
		t.Fatalf("distributed strassen off by %g (opts %+v)", d, o)
	}
	if !matrix.Equal(bm.Gather(aT), a) || !matrix.Equal(bm.Gather(bT), b) {
		t.Fatal("strassen modified its inputs")
	}
}

func TestStrassenGridsAndLevels(t *testing.T) {
	cases := []struct {
		s, n, b, levels, groups int
	}{
		{2, 16, 2, 1, 0},  // one level, 1×1 bottom (local SUMMA)
		{2, 24, 3, 1, 0},  // non-power-of-two n
		{4, 32, 2, 1, 0},  // one level, SUMMA on 2×2 sub-grids
		{4, 32, 4, 2, 0},  // two levels, 1×1 bottom
		{4, 32, 2, 1, 2},  // HSUMMA bottom with G=2 on the 2×2 sub-grids
		{4, 32, 2, 1, 4},  // HSUMMA bottom, fully grouped
		{8, 64, 2, 2, 2},  // two levels then HSUMMA on 2×2 sub-grids
		{4, 64, 8, 0, 0},  // levels=0 canonicalises to one level
	}
	for _, c := range cases {
		c := c
		name := fmt.Sprintf("s%d_n%d_b%d_l%d_g%d", c.s, c.n, c.b, c.levels, c.groups)
		t.Run(name, func(t *testing.T) {
			o := Options{
				N: c.n, Grid: topo.Grid{S: c.s, T: c.s}, BlockSize: c.b,
				StrassenLevels: c.levels, StrassenInnerGroups: c.groups,
			}
			runStrassen(t, o)
		})
	}
}

func TestStrassenWithLocalKernel(t *testing.T) {
	// A low cutoff forces the sub-cubic local kernel to actually recurse
	// inside the bottom SUMMA's rank-local updates.
	o := Options{
		N: 64, Grid: topo.Grid{S: 2, T: 2}, BlockSize: 16,
		LocalStrassen: true, StrassenCutoff: 8,
	}
	runStrassen(t, o)
}

func TestStrassenThreaded(t *testing.T) {
	o := Options{N: 32, Grid: topo.Grid{S: 2, T: 2}, BlockSize: 4, Threads: 3}
	runStrassen(t, o)
}

func TestStrassenValidation(t *testing.T) {
	g := topo.Grid{S: 2, T: 2}
	cases := []struct {
		name       string
		o          Options
		squareOnly bool
	}{
		{"rect shape", Options{Shape: matrix.Shape{M: 16, N: 8, K: 16}, Grid: g, BlockSize: 2}, true},
		{"rect grid", Options{N: 16, Grid: topo.Grid{S: 2, T: 4}, BlockSize: 2}, true},
		{"odd grid", Options{N: 18, Grid: topo.Grid{S: 3, T: 3}, BlockSize: 2}, false},
		{"levels too deep for grid", Options{N: 16, Grid: g, BlockSize: 2, StrassenLevels: 2}, false},
		{"n not divisible", Options{N: 18, Grid: topo.Grid{S: 4, T: 4}, BlockSize: 3, StrassenLevels: 2}, false},
		{"bad bottom block", Options{N: 16, Grid: g, BlockSize: 3}, false},
		{"bad inner groups", Options{N: 32, Grid: topo.Grid{S: 4, T: 4}, BlockSize: 2, StrassenInnerGroups: 3}, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			o := c.o.withDefaults()
			err := o.validateStrassen(StrassenLevelsOf(o.StrassenLevels))
			if err == nil {
				t.Fatalf("%s: accepted", c.name)
			}
			if c.squareOnly && !errors.Is(err, matrix.ErrSquareOnly) {
				t.Fatalf("%s: got %v, want ErrSquareOnly", c.name, err)
			}
		})
	}
}

// The product table is the contract between execution and the tune scorer:
// pin its structural invariants — 7 products, hosts round-robin over the
// four quadrants, every quadrant receives at least one C contribution, and
// the first term of every operand sum is positive (the assembly path
// copies it instead of zeroing).
func TestStrassenProductTable(t *testing.T) {
	ps := StrassenProducts()
	hostCount := [4]int{}
	cCount := [4]int{}
	for r, p := range ps {
		if p.Host != r%4 {
			t.Fatalf("product %d hosted by %d, want round-robin %d", r, p.Host, r%4)
		}
		hostCount[p.Host]++
		for _, term := range p.C {
			cCount[term.Q]++
		}
		for _, operand := range [][]StrassenTerm{p.A, p.B} {
			if operand[0].Sign != 1 {
				t.Fatalf("product %d: first operand term has sign %v, want +1", r, operand[0].Sign)
			}
		}
	}
	for q, n := range cCount {
		if n == 0 {
			t.Fatalf("quadrant %d receives no C contribution", q)
		}
	}
	for q, n := range hostCount {
		if n == 0 {
			t.Fatalf("quadrant %d hosts no product", q)
		}
	}
}
