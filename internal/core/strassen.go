package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/matrix"
	"repro/internal/topo"
)

// Distributed Strassen: 2×2 quadrant recursion over the process grid. The
// square s×s grid is split into four (s/2)×(s/2) quadrant sub-grids via
// comm.Split; the block-checkerboard layout makes quadrant sub-grid (qi,qj)
// the natural owner of matrix quadrant (qi,qj) with unchanged local tile
// sizes, so recursing costs no redistribution. The seven Strassen products
// are assigned round-robin to the four quadrant sub-grids; each product's
// operand sums are staged to the host quadrant by point-to-point sends
// (one tile-sized message per non-local term per rank), the host recurses
// — or, below the recursion depth, runs SUMMA/HSUMMA on its sub-grid —
// and sends its C contributions back to the target quadrants. All data
// movement and arithmetic go through the comm.Comm interface, so live mpi,
// the goroutine world and the event engine execute the schedule unchanged
// and count identical traffic.
//
// Each level replaces 8 sub-multiplications with 7, but the four sub-grids
// execute ceil(7/4) = 2 sequential sub-problems where classic SUMMA's
// critical path is 1 of 8 — the per-rank flop win therefore comes from the
// LocalStrassen kernel at the bottom, not from the distribution itself,
// and the tune scorer models exactly that (see internal/tune).

// StrassenTerm is one quadrant operand of a product: the row-major
// quadrant index (0=11, 1=12, 2=21, 3=22) and its sign.
type StrassenTerm struct {
	Q    int
	Sign float64
}

// StrassenProductSpec describes one of the seven products M = (ΣA)·(ΣB)
// and its C contributions, plus the quadrant sub-grid that hosts its
// computation. Exported so the tune scorer derives the per-quadrant
// communication volume from the same table the execution runs.
type StrassenProductSpec struct {
	// Host is the quadrant sub-grid that computes this product
	// (round-robin: product r is hosted by quadrant r mod 4).
	Host int
	A    []StrassenTerm
	B    []StrassenTerm
	C    []StrassenTerm
}

// StrassenProducts returns the classic Strassen product table:
//
//	M1 = (A11+A22)(B11+B22)   C11 += M1, C22 += M1   host Q11
//	M2 = (A21+A22)·B11        C21 += M2, C22 -= M2   host Q12
//	M3 = A11·(B12-B22)        C12 += M3, C22 += M3   host Q21
//	M4 = A22·(B21-B11)        C11 += M4, C21 += M4   host Q22
//	M5 = (A11+A12)·B22        C11 -= M5, C12 += M5   host Q11
//	M6 = (A21-A11)(B11+B12)   C22 += M6              host Q12
//	M7 = (A12-A22)(B21+B22)   C11 += M7              host Q21
func StrassenProducts() [7]StrassenProductSpec {
	return [7]StrassenProductSpec{
		{Host: 0, A: []StrassenTerm{{0, 1}, {3, 1}}, B: []StrassenTerm{{0, 1}, {3, 1}}, C: []StrassenTerm{{0, 1}, {3, 1}}},
		{Host: 1, A: []StrassenTerm{{2, 1}, {3, 1}}, B: []StrassenTerm{{0, 1}}, C: []StrassenTerm{{2, 1}, {3, -1}}},
		{Host: 2, A: []StrassenTerm{{0, 1}}, B: []StrassenTerm{{1, 1}, {3, -1}}, C: []StrassenTerm{{1, 1}, {3, 1}}},
		{Host: 3, A: []StrassenTerm{{3, 1}}, B: []StrassenTerm{{2, 1}, {0, -1}}, C: []StrassenTerm{{0, 1}, {2, 1}}},
		{Host: 0, A: []StrassenTerm{{0, 1}, {1, 1}}, B: []StrassenTerm{{3, 1}}, C: []StrassenTerm{{0, -1}, {1, 1}}},
		{Host: 1, A: []StrassenTerm{{2, 1}, {0, -1}}, B: []StrassenTerm{{0, 1}, {1, 1}}, C: []StrassenTerm{{3, 1}}},
		{Host: 2, A: []StrassenTerm{{1, 1}, {3, -1}}, B: []StrassenTerm{{2, 1}, {3, 1}}, C: []StrassenTerm{{0, 1}}},
	}
}

// StrassenLevelsOf canonicalises the recursion depth knob: ≤ 0 means one
// level.
func StrassenLevelsOf(levels int) int {
	if levels < 1 {
		return 1
	}
	return levels
}

// validateStrassen checks the inter-rank constraints: a square problem on
// a square grid (the same restriction as Cannon/Fox, reported through
// matrix.ErrSquareOnly so pad-and-crop and the serving layer's
// batchability probe treat it uniformly), a grid splittable in half at
// every level, and a bottom problem the inner algorithm accepts.
func (o Options) validateStrassen(levels int) error {
	sh := o.Shape
	if err := sh.Validate(); err != nil {
		return err
	}
	if !sh.IsSquare() {
		return fmt.Errorf("core: strassen: shape %v: %w", sh, matrix.ErrSquareOnly)
	}
	if o.Grid.S != o.Grid.T {
		return fmt.Errorf("core: strassen: grid %v: %w", o.Grid, matrix.ErrSquareOnly)
	}
	div := 1 << levels
	if o.Grid.S%div != 0 {
		return fmt.Errorf("core: strassen: grid %v not divisible by 2^levels = %d", o.Grid, div)
	}
	if sh.N%div != 0 {
		return fmt.Errorf("core: strassen: n=%d not divisible by 2^levels = %d", sh.N, div)
	}
	bot, err := o.strassenBottom(sh.N/div, o.Grid.S/div)
	if err != nil {
		return err
	}
	if o.StrassenInnerGroups > 0 {
		return bot.validateHSUMMA()
	}
	return bot.validateSUMMA()
}

// strassenBottom builds the Options for the sub-problem the recursion
// bottoms out in: size n on an s×s sub-grid, same block sizes, broadcast
// and local-kernel knobs, SUMMA by default or HSUMMA with
// StrassenInnerGroups groups factored onto the sub-grid.
func (o Options) strassenBottom(n, s int) (Options, error) {
	bot := Options{
		Shape: matrix.Square(n), Grid: topo.Grid{S: s, T: s},
		BlockSize: o.BlockSize, Broadcast: o.Broadcast, Segments: o.Segments,
		Threads: o.Threads, LocalStrassen: o.LocalStrassen, StrassenCutoff: o.StrassenCutoff,
	}
	if g := o.StrassenInnerGroups; g > 0 {
		h, err := topo.FactorGroups(bot.Grid, g)
		if err != nil {
			return Options{}, fmt.Errorf("core: strassen: inner groups: %w", err)
		}
		bot.Groups = h
		bot.OuterBlockSize = o.OuterBlockSize
	}
	return bot, nil
}

// Strassen performs C += A·B with the two-level distributed Strassen
// algorithm: StrassenLevels rounds of quadrant recursion over the grid,
// bottoming out in SUMMA (or HSUMMA when StrassenInnerGroups > 0) on the
// sub-grids. Requires a square shape on a square s×s grid with s and n
// divisible by 2^levels; local tiles are (n/s)×(n/s) and keep that size at
// every recursion level. Strassen reassociates the floating-point
// arithmetic, so results agree with the classic algorithms to relative
// tolerance, not bit for bit.
func Strassen(c comm.Comm, opts Options, aLoc, bLoc, cLoc *matrix.Dense) error {
	o := opts.withDefaults()
	levels := StrassenLevelsOf(o.StrassenLevels)
	if err := o.validateStrassen(levels); err != nil {
		return err
	}
	if c.Size() != o.Grid.Size() {
		return fmt.Errorf("core: communicator size %d does not match grid %v", c.Size(), o.Grid)
	}
	tile := o.Shape.N / o.Grid.S
	checkTile("A", aLoc, tile, tile)
	checkTile("B", bLoc, tile, tile)
	checkTile("C", cLoc, tile, tile)
	return strassenLevel(c, o, o.Shape.N, o.Grid.S, levels, aLoc, bLoc, cLoc)
}

// Per-level point-to-point tags. Stage tags identify (product, term,
// operand); combine tags identify (product, contribution). Each recursion
// level runs on its own communicator (the parent's Split), so tags never
// collide across levels, and the bottom SUMMA/HSUMMA sees only its own
// sub-communicators.
func strassenStageTag(r, term, operand int) int { return r*8 + term*2 + operand }
func strassenCombineTag(r, ct int) int          { return 64 + r*4 + ct }

// strassenLevel runs one quadrant recursion level on an s×s grid over an
// n×n problem: stage operand sums to the host quadrants, compute the seven
// products (recursing or running the bottom algorithm on the quadrant
// sub-grid), and return the contributions to the C owners.
//
// The schedule is deadlock-free by the eager-send contract: phase 1 posts
// every staging send this rank owes any host, phase 2 receives the staged
// terms for the products this rank's quadrant hosts, computes them and
// eagerly sends the contributions out, and phase 3 receives the
// contributions targeting this rank's quadrant. A rank's phase 2 depends
// only on peers' phase 1, and its phase 3 only on peers' phase 2.
func strassenLevel(c comm.Comm, o Options, n, s, level int, aLoc, bLoc, cLoc *matrix.Dense) error {
	g := topo.Grid{S: s, T: s}
	half := s / 2
	i, j := g.Coords(c.Rank())
	qi, qj := i/half, j/half
	myQ := qi*2 + qj
	li, lj := i%half, j%half
	// partner returns the parent-grid rank holding my (li,lj) position in
	// quadrant q — the same within-sub-grid coordinates, different quadrant.
	partner := func(q int) int { return g.Rank((q/2)*half+li, (q%2)*half+lj) }

	sub := c.Split(myQ, li*half+lj)
	tile := n / s
	elems := tile * tile
	products := StrassenProducts()

	// Phase 1: stage my tile of every operand term owned by my quadrant to
	// the product's host quadrant. Sends are eager — none of these block.
	wire := c.NewBuf(elems)
	for r, p := range products {
		for t, term := range p.A {
			if term.Q == myQ && p.Host != myQ {
				c.Pack(wire, aLoc)
				c.Send(partner(p.Host), strassenStageTag(r, t, 0), wire)
			}
		}
		for t, term := range p.B {
			if term.Q == myQ && p.Host != myQ {
				c.Pack(wire, bLoc)
				c.Send(partner(p.Host), strassenStageTag(r, t, 1), wire)
			}
		}
	}

	// Phase 2: for each product my quadrant hosts, assemble the operand
	// sums (local tile or staged receive per term), compute the product on
	// the quadrant sub-grid, and distribute its C contributions.
	sumA := c.NewTile(tile, tile)
	sumB := c.NewTile(tile, tile)
	prod := c.NewTile(tile, tile)
	tmp := c.NewTile(tile, tile)
	assemble := func(dst *matrix.Dense, terms []StrassenTerm, r, operand int, loc *matrix.Dense) {
		for t, term := range terms {
			var src *matrix.Dense
			if term.Q == myQ {
				src = loc
			} else {
				c.Recv(partner(term.Q), strassenStageTag(r, t, operand), wire)
				c.Unpack(tmp, wire)
				src = tmp
			}
			if t == 0 && term.Sign == 1 {
				// First positive term: copy (free on virtual transports,
				// cheaper than zero+axpy on live ones).
				c.Pack(wire, src)
				c.Unpack(dst, wire)
				continue
			}
			c.Axpy(term.Sign, src, dst)
		}
	}
	for r, p := range products {
		if p.Host != myQ {
			continue
		}
		assemble(sumA, p.A, r, 0, aLoc)
		assemble(sumB, p.B, r, 1, bLoc)
		// prod accumulates: reset it for this product. The virtual engines
		// elide storage, so zeroing is a local no-op there.
		zeroTile(prod)
		if level > 1 {
			if err := strassenLevel(sub, o, n/2, half, level-1, sumA, sumB, prod); err != nil {
				return err
			}
		} else {
			bot, err := o.strassenBottom(n/2, half)
			if err != nil {
				return err
			}
			if o.StrassenInnerGroups > 0 {
				err = HSUMMA(sub, bot, sumA, sumB, prod)
			} else {
				err = SUMMA(sub, bot, sumA, sumB, prod)
			}
			if err != nil {
				return err
			}
		}
		for ct, term := range p.C {
			if term.Q == myQ {
				c.Axpy(term.Sign, prod, cLoc)
				continue
			}
			c.Pack(wire, prod)
			c.Send(partner(term.Q), strassenCombineTag(r, ct), wire)
		}
	}

	// Phase 3: receive the contributions other hosts computed for my
	// quadrant, in fixed product order — deterministic accumulation.
	for r, p := range products {
		if p.Host == myQ {
			continue
		}
		for ct, term := range p.C {
			if term.Q != myQ {
				continue
			}
			c.Recv(partner(p.Host), strassenCombineTag(r, ct), wire)
			c.Unpack(tmp, wire)
			c.Axpy(term.Sign, tmp, cLoc)
		}
	}
	return nil
}

// zeroTile clears a tile's storage; virtual tiles have no storage (nil
// Data) and need no clearing.
func zeroTile(m *matrix.Dense) {
	if m.Data != nil {
		m.Zero()
	}
}
