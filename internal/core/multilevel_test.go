package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/topo"
)

func runMultilevel(t *testing.T, g topo.Grid, n int, levels []Level, b int) *matrix.Dense {
	t.Helper()
	bm, err := dist.NewBlockMap(n, n, g)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(n, n, 55)
	bb := matrix.Random(n, n, 56)
	aT, bT := bm.Scatter(a), bm.Scatter(bb)
	cT := make([]*matrix.Dense, g.Size())
	for r := range cT {
		cT[r] = matrix.New(bm.LocalRows(), bm.LocalCols())
	}
	if err := mpi.Run(g.Size(), func(c *mpi.Comm) {
		o := Options{N: n, Grid: g}
		if e := MultilevelHSUMMA(mpi.AsComm(c), o, levels, b, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			panic(e)
		}
	}); err != nil {
		t.Fatal(err)
	}
	got := bm.Gather(cT)
	want := matrix.New(n, n)
	Reference(want, a, bb)
	if d := matrix.MaxAbsDiff(got, want); d > tol {
		t.Fatalf("multilevel result differs from reference by %g", d)
	}
	return got
}

func TestMultilevelZeroLevelsIsSUMMA(t *testing.T) {
	runMultilevel(t, topo.Grid{S: 2, T: 4}, 16, nil, 2)
}

func TestMultilevelOneLevel(t *testing.T) {
	runMultilevel(t, topo.Grid{S: 4, T: 4}, 16, []Level{{I: 2, J: 2, BlockSize: 4}}, 2)
}

func TestMultilevelTwoLevels(t *testing.T) {
	// 8x8 grid: 2x2 coarse groups of 2x2 mid groups of 2x2 fine grids.
	runMultilevel(t, topo.Grid{S: 8, T: 8}, 32, []Level{
		{I: 2, J: 2, BlockSize: 4},
		{I: 2, J: 2, BlockSize: 2},
	}, 2)
}

func TestMultilevelThreeLevels(t *testing.T) {
	runMultilevel(t, topo.Grid{S: 8, T: 8}, 64, []Level{
		{I: 2, J: 2, BlockSize: 8},
		{I: 2, J: 2, BlockSize: 4},
		{I: 2, J: 1, BlockSize: 2},
	}, 1)
}

func TestMultilevelRectangular(t *testing.T) {
	runMultilevel(t, topo.Grid{S: 2, T: 8}, 32, []Level{{I: 1, J: 4, BlockSize: 4}}, 2)
}

// One level with matching block sizes must equal two-level HSUMMA exactly:
// identical communicators, identical broadcast schedules, identical
// floating-point association.
func TestMultilevelOneLevelMatchesHSUMMAExactly(t *testing.T) {
	g := topo.Grid{S: 4, T: 4}
	n, b, B := 16, 2, 4
	h, _ := topo.NewHier(g, 2, 2)
	bm, _ := dist.NewBlockMap(n, n, g)
	a := matrix.Random(n, n, 91)
	bb := matrix.Random(n, n, 92)

	run := func(two bool) *matrix.Dense {
		aT, bT := bm.Scatter(a), bm.Scatter(bb)
		cT := make([]*matrix.Dense, g.Size())
		for r := range cT {
			cT[r] = matrix.New(bm.LocalRows(), bm.LocalCols())
		}
		if err := mpi.Run(g.Size(), func(c *mpi.Comm) {
			var e error
			if two {
				e = HSUMMA(mpi.AsComm(c), Options{N: n, Grid: g, BlockSize: b, OuterBlockSize: B, Groups: h},
					aT[c.Rank()], bT[c.Rank()], cT[c.Rank()])
			} else {
				e = MultilevelHSUMMA(mpi.AsComm(c), Options{N: n, Grid: g}, []Level{{I: 2, J: 2, BlockSize: B}}, b,
					aT[c.Rank()], bT[c.Rank()], cT[c.Rank()])
			}
			if e != nil {
				panic(e)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return bm.Gather(cT)
	}
	if !matrix.Equal(run(true), run(false)) {
		t.Fatal("one-level multilevel differs from HSUMMA")
	}
}

func TestMultilevelValidation(t *testing.T) {
	g := topo.Grid{S: 4, T: 4}
	mk := func(levels []Level, b int) error {
		var got error
		err := mpi.Run(g.Size(), func(c *mpi.Comm) {
			tile := matrix.New(4, 4)
			e := MultilevelHSUMMA(mpi.AsComm(c), Options{N: 16, Grid: g}, levels, b, tile, tile.Clone(), tile.Clone())
			if c.Rank() == 0 {
				got = e
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	cases := []struct {
		name   string
		levels []Level
		b      int
	}{
		{"level products exceed grid", []Level{{I: 8, J: 2, BlockSize: 4}}, 2},
		{"width not multiple of next", []Level{{I: 2, J: 2, BlockSize: 3}}, 2},
		{"top width exceeds tile", []Level{{I: 2, J: 2, BlockSize: 8}}, 2},
		{"zero level dims", []Level{{I: 0, J: 2, BlockSize: 4}}, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if mk(c.levels, c.b) == nil {
				t.Fatalf("%s accepted", c.name)
			}
		})
	}
}

func TestMultilevelLatencyReduction(t *testing.T) {
	// The point of the hierarchy: fewer total messages on the critical
	// path. Compare aggregate message counts of SUMMA vs one-level
	// hierarchy on the same problem — the hierarchical run must send
	// fewer, larger inter-group messages at the top level. (Aggregate
	// counts also include inner traffic, so just assert both complete
	// and record the counts for the curious.)
	g := topo.Grid{S: 4, T: 4}
	n, b := 32, 2
	count := func(levels []Level, B int) int64 {
		bm, _ := dist.NewBlockMap(n, n, g)
		a := matrix.Random(n, n, 5)
		bb := matrix.Random(n, n, 6)
		aT, bT := bm.Scatter(a), bm.Scatter(bb)
		cT := make([]*matrix.Dense, g.Size())
		for r := range cT {
			cT[r] = matrix.New(bm.LocalRows(), bm.LocalCols())
		}
		stats, err := mpi.RunStats(g.Size(), func(c *mpi.Comm) {
			if e := MultilevelHSUMMA(mpi.AsComm(c), Options{N: n, Grid: g}, levels, b, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
				panic(e)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var msgs int64
		for _, s := range stats {
			msgs += s.SentMessages
		}
		_ = B
		return msgs
	}
	flat := count(nil, b)
	hier := count([]Level{{I: 2, J: 2, BlockSize: 8}}, 8)
	if flat <= 0 || hier <= 0 {
		t.Fatal("no messages counted")
	}
	if hier >= flat {
		t.Fatalf("hierarchy did not reduce message count: flat=%d hier=%d", flat, hier)
	}
}
