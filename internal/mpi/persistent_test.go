package mpi

import (
	"repro/internal/sched"

	"strings"
	"sync"
	"testing"
)

// TestPersistentSuccessiveRuns executes several independent collective
// programs on one resident world and checks full isolation between runs:
// fresh statistics, fresh communicator namespaces, working splits.
func TestPersistentSuccessiveRuns(t *testing.T) {
	const p = 8
	pw, err := Persistent(p)
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()

	for run := 0; run < 3; run++ {
		stats, err := pw.RunOn(func(c *Comm) {
			// A ring shift plus a split-and-broadcast: exercises tagged
			// point-to-point, Split and collective state in one program.
			r := c.Rank()
			buf := make([]float64, 4)
			send := []float64{float64(run), float64(r), 2, 3}
			c.SendRecv((r+1)%p, 7, send, (r+p-1)%p, 7, buf)
			if int(buf[1]) != (r+p-1)%p {
				panic("wrong neighbour payload")
			}
			sub := c.Split(r%2, r)
			data := []float64{float64(run * 10)}
			sub.Bcast(sched.Binomial, 0, data, 0)
			if data[0] != float64(run*10) {
				panic("bcast corrupted payload")
			}
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		var msgs int64
		for _, s := range stats {
			msgs += s.SentMessages
		}
		if msgs == 0 {
			t.Fatalf("run %d: no traffic recorded", run)
		}
	}
}

// TestPersistentMatchesRunStats locks in that a program produces identical
// traffic statistics on the resident world and on the spawn-per-run path.
func TestPersistentMatchesRunStats(t *testing.T) {
	const p = 6
	prog := func(c *Comm) {
		buf := make([]float64, 8)
		if c.Rank() == 0 {
			for dst := 1; dst < p; dst++ {
				c.Send(dst, 1, buf)
			}
		} else {
			c.Recv(0, 1, buf)
			c.Send(0, 2, buf[:2])
		}
		if c.Rank() == 0 {
			for src := 1; src < p; src++ {
				c.Recv(src, 2, buf[:2])
			}
		}
	}
	want, err := RunStats(p, prog)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := Persistent(p)
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()
	got, err := pw.RunOn(prog)
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if got[r].SentMessages != want[r].SentMessages || got[r].SentBytes != want[r].SentBytes {
			t.Fatalf("rank %d: persistent stats %+v != spawned %+v", r, got[r], want[r])
		}
	}
}

// TestPersistentSurvivesPanic checks that a program panic is reported as an
// error for that run only: the resident ranks stay usable and the next
// program runs cleanly.
func TestPersistentSurvivesPanic(t *testing.T) {
	const p = 4
	pw, err := Persistent(p)
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()

	_, err = pw.RunOn(func(c *Comm) {
		if c.Rank() == 2 {
			panic("deliberate failure")
		}
		// Other ranks block so the abort must unwind them.
		buf := make([]float64, 1)
		c.Recv((c.Rank()+1)%p, 99, buf)
	})
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("want the rank-2 panic reported, got %v", err)
	}

	if _, err := pw.RunOn(func(c *Comm) {
		data := []float64{42}
		c.Bcast(sched.Binomial, 0, data, 0)
	}); err != nil {
		t.Fatalf("world unusable after aborted program: %v", err)
	}
}

// TestPersistentConcurrentRunOn drives RunOn from many goroutines; the
// internal serialisation must keep every program's world consistent.
func TestPersistentConcurrentRunOn(t *testing.T) {
	const p = 4
	pw, err := Persistent(p)
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := pw.RunOn(func(c *Comm) {
				data := []float64{1, 2, 3}
				c.Bcast(sched.Binomial, 0, data, 0)
			})
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPersistentClose checks Close is idempotent and RunOn afterwards is a
// clean error.
func TestPersistentClose(t *testing.T) {
	pw, err := Persistent(2)
	if err != nil {
		t.Fatal(err)
	}
	pw.Close()
	pw.Close()
	if _, err := pw.RunOn(func(c *Comm) {}); err == nil {
		t.Fatal("RunOn after Close should fail")
	}
}
