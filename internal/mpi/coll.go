package mpi

import (
	"fmt"
	"time"

	"repro/internal/sched"
	"repro/internal/trace"
)

// Bcast broadcasts root's data to every rank of the communicator in place,
// executing the given algorithm's schedule from internal/sched transfer by
// transfer — the same schedule the discrete-event simulator times. data must
// have identical length on all ranks; on non-roots its contents are
// overwritten.
//
// segments is the pipeline depth for sched.Chain and is ignored by the
// other algorithms (pass 1).
func (c *Comm) Bcast(alg sched.Algorithm, root int, data []float64, segments int) {
	p := c.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mpi: bcast root %d outside communicator of %d", root, p))
	}
	if p == 1 {
		// Trivial communicator: no transfers, no span — the virtual
		// transports skip it the same way, keeping span streams aligned.
		return
	}
	start := time.Now()
	sentBefore := c.world.stats[c.WorldRank()].SentMessages
	defer func() {
		msgs := c.world.stats[c.WorldRank()].SentMessages - sentBefore
		c.finishComm(start, trace.PhaseBcast, int64(8*len(data)), msgs)
	}()
	s, err := sched.NewBroadcast(alg, p, root, segments)
	if err != nil {
		panic(fmt.Sprintf("mpi: bcast: %v", err))
	}
	tag := c.nextOpTag()
	c.executeSchedule(s, tag, data)
}

// executeSchedule replays the transfers that involve this rank, in round
// order. Both endpoints walk the same schedule, so matching is structural;
// per-sender FIFO delivery keeps repeated (src,dst) pairs (ring rounds)
// correctly ordered under a single tag.
func (c *Comm) executeSchedule(s *sched.Schedule, tag int, data []float64) {
	me := c.rank
	for _, round := range s.Rounds {
		// Sends before receives within a round: sends are eager, so
		// this cannot deadlock and it lets full-duplex rounds (ring
		// allgather) proceed without stalling on the receive side.
		for _, t := range round.Transfers {
			if t.Src == me {
				lo, hi := sched.SegmentRange(len(data), s.Segments, t.SegLo, t.SegHi)
				c.send(t.Dst, tag, data[lo:hi])
			}
		}
		for _, t := range round.Transfers {
			if t.Dst == me {
				lo, hi := sched.SegmentRange(len(data), s.Segments, t.SegLo, t.SegHi)
				c.recv(t.Src, tag, data[lo:hi])
			}
		}
	}
}

// Barrier blocks until every rank of the communicator has entered it.
// Implemented as a zero-byte binomial gather to rank 0 followed by a
// binomial broadcast of a zero-byte token.
func (c *Comm) Barrier() {
	start := time.Now()
	defer c.trackComm(start)
	p := c.Size()
	if p == 1 {
		return
	}
	tag := c.nextOpTag()
	empty := []float64{}
	// Arrival phase: binomial tree towards rank 0. A rank signals its
	// parent only after all its subtree has signalled it.
	vr := c.rank
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			c.send(vr-mask, tag, empty)
			break
		}
		if vr+mask < p {
			c.recv(vr+mask, tag, empty)
		}
		mask <<= 1
	}
	// Release phase: rank 0 broadcasts a token down the binomial tree.
	tag2 := c.nextOpTag()
	s, err := sched.NewBroadcast(sched.Binomial, p, 0, 1)
	if err != nil {
		panic(err)
	}
	token := []float64{1}
	c.executeSchedule(s, tag2, token)
}

// Gather collects equal-length contributions on root: the returned slice
// holds, at index r, rank r's data. Non-roots return nil. Contributions
// flow directly to the root (the gather happens outside the timed inner
// loops of the algorithms, so a flat pattern keeps it simple and correct).
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	start := time.Now()
	defer c.trackComm(start)
	tag := c.nextOpTag()
	if c.rank != root {
		c.send(root, tag, data)
		return nil
	}
	out := make([][]float64, c.Size())
	for r := 0; r < c.Size(); r++ {
		if r == root {
			cp := make([]float64, len(data))
			copy(cp, data)
			out[r] = cp
			continue
		}
		buf := make([]float64, len(data))
		c.recv(r, tag, buf)
		out[r] = buf
	}
	return out
}

// Scatter distributes root's per-rank slices: rank r receives parts[r].
// Every slice must have length n. Non-roots pass parts=nil.
func (c *Comm) Scatter(root int, parts [][]float64, n int) []float64 {
	start := time.Now()
	defer c.trackComm(start)
	tag := c.nextOpTag()
	buf := make([]float64, n)
	if c.rank == root {
		if len(parts) != c.Size() {
			panic(fmt.Sprintf("mpi: scatter needs %d parts, got %d", c.Size(), len(parts)))
		}
		for r, part := range parts {
			if len(part) != n {
				panic(fmt.Sprintf("mpi: scatter part %d has %d elements, want %d", r, len(part), n))
			}
			if r == root {
				copy(buf, part)
				continue
			}
			c.send(r, tag, part)
		}
		return buf
	}
	c.recv(root, tag, buf)
	return buf
}

// ReduceSum computes the element-wise sum of data across ranks on root via
// a binomial reduction tree; the result is returned on root, nil elsewhere.
func (c *Comm) ReduceSum(root int, data []float64) []float64 {
	start := time.Now()
	defer c.trackComm(start)
	p := c.Size()
	tag := c.nextOpTag()
	acc := make([]float64, len(data))
	copy(acc, data)
	if p == 1 {
		return acc
	}
	vr := rel(c.rank, root, p)
	buf := make([]float64, len(data))
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			dst := absRank(vr-mask, root, p)
			c.send(dst, tag, acc)
			return nil
		}
		if vr+mask < p {
			src := absRank(vr+mask, root, p)
			c.recv(src, tag, buf)
			for i := range acc {
				acc[i] += buf[i]
			}
		}
		mask <<= 1
	}
	return acc
}

// AllreduceSum is ReduceSum to rank 0 followed by a binomial broadcast, so
// every rank returns the sum.
func (c *Comm) AllreduceSum(data []float64) []float64 {
	res := c.ReduceSum(0, data)
	if res == nil {
		res = make([]float64, len(data))
	}
	c.Bcast(sched.Binomial, 0, res, 1)
	return res
}

// Allgather concatenates equal-length contributions from all ranks in rank
// order and returns the result on every rank.
func (c *Comm) Allgather(data []float64) []float64 {
	n := len(data)
	parts := c.Gather(0, data)
	flat := make([]float64, n*c.Size())
	if c.rank == 0 {
		for r, part := range parts {
			copy(flat[r*n:(r+1)*n], part)
		}
	}
	c.Bcast(sched.Binomial, 0, flat, 1)
	return flat
}

func rel(rank, root, p int) int   { return ((rank-root)%p + p) % p }
func absRank(vr, root, p int) int { return (vr + root) % p }
