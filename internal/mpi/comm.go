package mpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/trace"
)

// Comm is a communicator: an ordered group of ranks with an isolated message
// namespace. The zero-cost world communicator is passed to every rank by
// Run; sub-communicators come from Split.
type Comm struct {
	world *World
	cid   int64
	rank  int   // my rank within this communicator
	ranks []int // comm rank -> world rank (shared, read-only)

	opSeq    int64 // collective sequence number (local; advances identically on all members)
	splitSeq int64 // split sequence number (ditto)
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank returns the caller's rank in the original world communicator.
func (c *Comm) WorldRank() int { return c.ranks[c.rank] }

// trackComm accumulates wall-clock time spent inside communication calls
// into the caller's stats slot — the runtime analogue of the paper's
// separately reported "communication time". Calls without a more specific
// phase (Split, the misc collectives) count as p2p and emit no span, so
// span streams stay comparable across transports that lack those calls.
func (c *Comm) trackComm(start time.Time) {
	dt := time.Since(start).Seconds()
	st := &c.world.stats[c.WorldRank()]
	st.CommSeconds += dt
	st.CommByPhase[trace.PhaseP2P] += dt
}

// finishComm is trackComm with a phase classification and, when the world
// is tracing, a span on the caller's timeline.
func (c *Comm) finishComm(start time.Time, ph trace.Phase, bytes, msgs int64) {
	w := c.world
	dt := time.Since(start).Seconds()
	st := &w.stats[c.WorldRank()]
	st.CommSeconds += dt
	st.CommByPhase[ph] += dt
	if w.rec != nil {
		w.rec.Rank(c.WorldRank(), ph, start.Sub(w.epoch).Seconds(), dt, bytes, msgs)
	}
}

// Send delivers a copy of data to dst (comm rank) under tag. It is eager:
// it never blocks, and data may be reused immediately after it returns.
func (c *Comm) Send(dst, tag int, data []float64) {
	start := time.Now()
	defer c.finishComm(start, trace.PhaseP2P, int64(8*len(data)), 1)
	c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []float64) {
	if dst < 0 || dst >= len(c.ranks) {
		panic(fmt.Sprintf("mpi: send to rank %d outside communicator of %d", dst, len(c.ranks)))
	}
	if dst == c.rank {
		panic("mpi: self-send is not supported (use local copies)")
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	st := &c.world.stats[c.WorldRank()]
	st.SentMessages++
	st.SentBytes += int64(8 * len(data))
	c.world.mailboxes[c.ranks[dst]].put(message{cid: c.cid, src: c.rank, tag: tag, data: cp})
}

// Recv blocks until a message from src (comm rank) with the given tag
// arrives and copies it into buf, whose length must equal the message
// length exactly — SUMMA-family code always knows its block sizes, so a
// size mismatch is a bug, not a runtime condition.
func (c *Comm) Recv(src, tag int, buf []float64) {
	start := time.Now()
	defer c.finishComm(start, trace.PhaseP2P, int64(8*len(buf)), 1)
	c.recv(src, tag, buf)
}

func (c *Comm) recv(src, tag int, buf []float64) {
	if src < 0 || src >= len(c.ranks) {
		panic(fmt.Sprintf("mpi: recv from rank %d outside communicator of %d", src, len(c.ranks)))
	}
	m := c.world.mailboxes[c.ranks[c.rank]].take(c.world, c.cid, src, tag)
	if len(m.data) != len(buf) {
		panic(fmt.Sprintf("mpi: recv buffer %d elements but message has %d (src=%d tag=%d)",
			len(buf), len(m.data), src, tag))
	}
	copy(buf, m.data)
}

// SendRecv performs a send and a receive concurrently — the classic shift
// primitive Cannon's algorithm needs. With this runtime's eager sends it is
// equivalent to Send followed by Recv, but it documents intent and stays
// correct even if sends ever become synchronous.
func (c *Comm) SendRecv(dst, sendTag int, sendData []float64, src, recvTag int, recvBuf []float64) {
	start := time.Now()
	defer c.finishComm(start, trace.PhaseShift, int64(8*(len(sendData)+len(recvBuf))), 2)
	c.send(dst, sendTag, sendData)
	c.recv(src, recvTag, recvBuf)
}

// splitGather coordinates one Split call across the members of a
// communicator.
type splitGather struct {
	cond    *sync.Cond
	arrived int
	colors  map[int]int // comm rank -> color
	keys    map[int]int // comm rank -> key
	done    bool
	result  map[int]*Comm // comm rank -> new communicator (nil for undefined color)
}

// Split partitions the communicator: ranks passing the same colour form a
// new communicator, ordered by (key, old rank) exactly like MPI_Comm_split.
// Every member must call Split (it is collective). A negative colour
// returns nil (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) *Comm {
	start := time.Now()
	defer c.trackComm(start)
	w := c.world
	seq := c.splitSeq
	c.splitSeq++
	k := splitKey{cid: c.cid, seq: seq}

	w.mu.Lock()
	sg := w.splits[k]
	if sg == nil {
		sg = &splitGather{
			colors: make(map[int]int),
			keys:   make(map[int]int),
		}
		sg.cond = sync.NewCond(&w.mu)
		w.splits[k] = sg
	}
	sg.colors[c.rank] = color
	sg.keys[c.rank] = key
	sg.arrived++
	if sg.arrived == len(c.ranks) {
		sg.result = c.computeSplit(sg)
		sg.done = true
		sg.cond.Broadcast()
		delete(w.splits, k) // record no longer needed once computed; waiters hold the pointer
	}
	for !sg.done {
		if w.aborted.Load() {
			w.mu.Unlock()
			panic(worldAborted{})
		}
		sg.cond.Wait()
	}
	res := sg.result[c.rank]
	w.mu.Unlock()
	return res
}

// computeSplit builds the new communicators once all members have arrived.
// Called with the world mutex held by the last arriver. The grouping rule
// lives in comm.SplitGroups, shared by every transport.
func (c *Comm) computeSplit(sg *splitGather) map[int]*Comm {
	result := make(map[int]*Comm, len(sg.colors))
	// Deterministic colour order keeps cid assignment reproducible.
	for _, members := range comm.SplitGroups(sg.colors, sg.keys) {
		cid := c.world.nextCID.Add(1)
		worldRanks := make([]int, len(members))
		for i, m := range members {
			worldRanks[i] = c.ranks[m]
		}
		for i, m := range members {
			result[m] = &Comm{world: c.world, cid: cid, rank: i, ranks: worldRanks}
		}
	}
	// Undefined-colour ranks get nil.
	for r, col := range sg.colors {
		if col < 0 {
			result[r] = nil
		}
	}
	return result
}

// nextOpTag reserves a fresh negative tag namespace for one collective
// operation. All members call collectives in the same order (an MPI
// requirement this runtime shares), so their sequence numbers agree.
func (c *Comm) nextOpTag() int {
	c.opSeq++
	return int(-c.opSeq)
}
