package mpi

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"

	"repro/internal/trace"
)

// PersistentWorld keeps p rank goroutines resident so successive collective
// programs run without respawning — the substrate of the serving layer
// (internal/serve), where one session executes a stream of multiplications
// on the same world. Each RunOn executes over fresh per-run coordination
// state (mailboxes, split records, statistics), so programs are fully
// isolated from each other: a program that panics aborts its own run and is
// reported as an error, and the world remains usable for the next RunOn.
//
// RunOn calls are serialised internally; callers may invoke it from
// multiple goroutines, but programs execute one at a time (the SPMD ranks
// of two programs sharing goroutines would otherwise interleave).
type PersistentWorld struct {
	size int
	work []chan *program // one channel per resident rank goroutine

	runMu  sync.Mutex // serialises RunOn
	stateM sync.Mutex // guards closed
	closed bool
}

// Persistent starts p resident rank goroutines and returns the world that
// drives them. Callers must Close it to release the goroutines.
func Persistent(p int) (*PersistentWorld, error) {
	return PersistentLabeled(p, nil)
}

// PersistentLabeled is Persistent with pprof labels applied to every
// resident rank goroutine, so CPU profiles attribute rank work to the
// session that owns it (the serving layer labels by spec key). Labels are
// alternating key/value pairs; nil means unlabeled.
func PersistentLabeled(p int, labels []string) (*PersistentWorld, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mpi: invalid world size %d", p)
	}
	pw := &PersistentWorld{size: p, work: make([]chan *program, p)}
	for r := 0; r < p; r++ {
		ch := make(chan *program)
		pw.work[r] = ch
		go func(r int, ch chan *program) {
			loop := func(context.Context) {
				for prog := range ch {
					prog.execRank(r)
					prog.done.Done()
				}
			}
			if len(labels) > 0 {
				pprof.Do(context.Background(), pprof.Labels(labels...), loop)
			} else {
				loop(context.Background())
			}
		}(r, ch)
	}
	return pw, nil
}

// Size returns the number of resident ranks.
func (pw *PersistentWorld) Size() int { return pw.size }

// RunOn executes fn SPMD-style on the resident ranks — the persistent
// counterpart of RunStats — and returns the per-rank traffic statistics.
// The program runs over a fresh world state, so successive programs (and
// their communicator splits) are independent.
func (pw *PersistentWorld) RunOn(fn func(c *Comm)) ([]RankStats, error) {
	return pw.RunOnTraced(fn, nil)
}

// RunOnTraced is RunOn with an optional span recorder for this one
// program — the hook behind the daemon's capture-next-request endpoint.
// rec may be nil (tracing disabled).
func (pw *PersistentWorld) RunOnTraced(fn func(c *Comm), rec *trace.Recorder) ([]RankStats, error) {
	pw.runMu.Lock()
	defer pw.runMu.Unlock()
	pw.stateM.Lock()
	closed := pw.closed
	pw.stateM.Unlock()
	if closed {
		return nil, fmt.Errorf("mpi: RunOn on a closed PersistentWorld")
	}
	prog := newProgram(pw.size, fn)
	prog.attachTrace(rec)
	prog.done.Add(pw.size)
	for r := 0; r < pw.size; r++ {
		pw.work[r] <- prog
	}
	prog.done.Wait()
	return prog.w.stats, prog.err()
}

// Close releases the resident rank goroutines. It is idempotent; RunOn
// after Close returns an error.
func (pw *PersistentWorld) Close() {
	pw.stateM.Lock()
	if pw.closed {
		pw.stateM.Unlock()
		return
	}
	pw.closed = true
	pw.stateM.Unlock()
	// Acquire the run lock so no program is mid-flight when the channels
	// close.
	pw.runMu.Lock()
	defer pw.runMu.Unlock()
	for _, ch := range pw.work {
		close(ch)
	}
}
