// Package mpi is an in-process message-passing runtime with MPI semantics:
// ranks execute as goroutines in SPMD style, exchange tagged messages
// matched on (communicator, source, tag) with per-sender FIFO ordering, and
// form sub-communicators by colour/key splits exactly like MPI_Comm_split.
//
// It is the substrate that replaces MPICH-2 / BlueGene MPI in this
// reproduction: the SUMMA-family algorithms in internal/core are written
// against *Comm just as the paper's Algorithm 1 is written against MPI, and
// collectives execute the schedules from internal/sched, so the runtime and
// the discrete-event simulator agree on every transfer.
//
// Sends are eager (buffered, never block) and copy their payload, so
// algorithms may reuse buffers immediately; receives block until a matching
// message arrives. A panic on any rank aborts the whole world and is
// returned as an error from Run, so a bug cannot deadlock the test suite.
package mpi

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/topo"
	"repro/internal/trace"
)

// World owns the mailboxes and shared coordination state for p ranks.
type World struct {
	size      int
	mailboxes []*mailbox
	nextCID   atomic.Int64
	stats     []RankStats // indexed by world rank; each rank writes only its own entry

	// rec, when non-nil, collects per-rank phase spans; epoch is the
	// timeline zero. Both are set once before ranks start.
	rec   *trace.Recorder
	epoch time.Time

	mu       sync.Mutex
	splits   map[splitKey]*splitGather
	aborted  atomic.Bool
	abortMsg string
}

// RankStats counts the traffic one rank generated. Each rank updates only
// its own entry from its own goroutine, so no locking is needed; read the
// aggregate only after Run returns.
type RankStats struct {
	SentMessages int64
	SentBytes    int64 // payload bytes (8 per float64)
	CommSeconds  float64
	// CommByPhase splits CommSeconds by operation kind (bcast/shift/p2p
	// entries are populated; the host-side scatter/gather slots stay zero).
	CommByPhase [trace.NumPhases]float64
	// GemmSeconds is time inside local multiplies (Transport.Gemm).
	GemmSeconds float64
}

// Busy is the rank's total accounted time: communication plus compute.
func (r RankStats) Busy() float64 { return r.CommSeconds + r.GemmSeconds }

// Summary aggregates per-rank stats into the quantities Stats surfaces:
// totals, the critical (max-comm) rank's phase breakdown, the slowest
// local-compute time, and busy-time imbalance.
type Summary struct {
	Messages int64
	Bytes    int64
	MaxComm  float64
	// CommByPhase is the phase breakdown of the critical rank (the one
	// with MaxComm), so its entries sum to MaxComm.
	CommByPhase [trace.NumPhases]float64
	MaxGemm     float64
	// Imbalance is max/mean per-rank busy time; 1.0 means perfectly even.
	Imbalance float64
}

// Summarize reduces per-rank stats to a Summary.
func Summarize(ranks []RankStats) Summary {
	var s Summary
	var sumBusy, maxBusy float64
	for _, r := range ranks {
		s.Messages += r.SentMessages
		s.Bytes += r.SentBytes
		if r.CommSeconds > s.MaxComm {
			s.MaxComm = r.CommSeconds
			s.CommByPhase = r.CommByPhase
		}
		if r.GemmSeconds > s.MaxGemm {
			s.MaxGemm = r.GemmSeconds
		}
		b := r.Busy()
		sumBusy += b
		if b > maxBusy {
			maxBusy = b
		}
	}
	if mean := sumBusy / float64(len(ranks)); mean > 0 {
		s.Imbalance = maxBusy / mean
	}
	return s
}

type splitKey struct {
	cid int64
	seq int64
}

// message is one in-flight payload. src is the sender's rank in the
// communicator identified by cid.
type message struct {
	cid  int64
	src  int
	tag  int
	data []float64
}

// mailbox is an unbounded matched queue with condition-variable wakeups.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take removes and returns the first message matching (cid, src, tag),
// blocking until one arrives or the world aborts.
func (mb *mailbox) take(w *World, cid int64, src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if m.cid == cid && m.src == src && m.tag == tag {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		if w.aborted.Load() {
			panic(worldAborted{})
		}
		mb.cond.Wait()
	}
}

// worldAborted is the sentinel panic used to unwind ranks blocked in Recv
// when another rank has already failed.
type worldAborted struct{}

// abort wakes every blocked rank; they unwind with worldAborted panics that
// Run suppresses in favour of the original failure.
func (w *World) abort(msg string) {
	if w.aborted.CompareAndSwap(false, true) {
		w.mu.Lock()
		w.abortMsg = msg
		// Wake split waiters too.
		for _, sg := range w.splits {
			sg.cond.Broadcast()
		}
		w.mu.Unlock()
		// Broadcast under each mailbox's lock: a receiver that has checked
		// the aborted flag but not yet parked in Wait would otherwise miss
		// the wakeup and sleep forever.
		for _, mb := range w.mailboxes {
			mb.mu.Lock()
			mb.cond.Broadcast()
			mb.mu.Unlock()
		}
	}
}

// Run executes fn on p ranks, each in its own goroutine, passing every rank
// its communicator for the full world. It returns after all ranks finish.
// If any rank panics, the world aborts and the first panic is returned as
// an error annotated with the failing rank.
func Run(p int, fn func(c *Comm)) error {
	_, err := RunStats(p, fn)
	return err
}

// RunStats is Run plus the per-rank traffic statistics.
func RunStats(p int, fn func(c *Comm)) ([]RankStats, error) {
	return RunStatsTraced(p, fn, nil)
}

// RunStatsTraced is RunStats with an optional span recorder attached to
// the world. rec may be nil (tracing disabled, zero extra cost); when
// non-nil, every rank's communication and Gemm calls append spans on the
// recorder's timeline, whose epoch becomes the world's time zero.
func RunStatsTraced(p int, fn func(c *Comm), rec *trace.Recorder) ([]RankStats, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mpi: invalid world size %d", p)
	}
	prog := newProgram(p, fn)
	prog.attachTrace(rec)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			prog.execRank(r)
		}(r)
	}
	wg.Wait()
	return prog.w.stats, prog.err()
}

// newWorld builds the shared coordination state for one p-rank program.
func newWorld(p int) *World {
	w := &World{
		size:      p,
		mailboxes: make([]*mailbox, p),
		stats:     make([]RankStats, p),
		splits:    make(map[splitKey]*splitGather),
	}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	w.nextCID.Store(1) // cid 0 is the world communicator
	return w
}

// program is one SPMD execution of fn over a fresh world: the unit both
// Run (spawned goroutines) and PersistentWorld.RunOn (resident goroutines)
// execute, sharing the abort-on-panic protocol.
type program struct {
	w     *World
	fn    func(c *Comm)
	ranks []int
	// done is counted down once per rank by drivers that dispatch ranks to
	// pre-existing goroutines (PersistentWorld).
	done sync.WaitGroup

	errOnce  sync.Once
	firstErr error
}

func newProgram(p int, fn func(c *Comm)) *program {
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = i
	}
	return &program{w: newWorld(p), fn: fn, ranks: ranks}
}

// attachTrace installs rec on the program's world before any rank runs.
// A nil rec leaves tracing disabled.
func (pr *program) attachTrace(rec *trace.Recorder) {
	if rec == nil {
		return
	}
	pr.w.rec = rec
	pr.w.epoch = rec.Epoch()
}

// execRank runs the program on one rank, converting a panic into the
// world-wide abort that unwinds every other rank. Safe to call from any
// goroutine; exactly one call per rank.
func (pr *program) execRank(r int) {
	c := &Comm{world: pr.w, cid: 0, rank: r, ranks: pr.ranks}
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(worldAborted); ok {
				return // collateral unwind, not the root cause
			}
			pr.errOnce.Do(func() {
				pr.firstErr = fmt.Errorf("mpi: rank %d panicked: %v\n%s", c.rank, rec, debug.Stack())
			})
			c.world.abort(fmt.Sprint(rec))
		}
	}()
	pr.fn(c)
}

// err returns the first rank failure, once every rank has finished.
func (pr *program) err() error { return pr.firstErr }

// RunGrid is Run over a topo.Grid's process count — a convenience for the
// 2D algorithms, which derive coordinates from the rank themselves.
func RunGrid(g topo.Grid, fn func(c *Comm)) error {
	return Run(g.Size(), fn)
}
