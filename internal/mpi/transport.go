package mpi

import (
	"time"

	"repro/internal/blas"
	"repro/internal/comm"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Transport adapts a *Comm to the transport-agnostic comm.Comm interface:
// the live execution path, where wire buffers carry real matrix elements
// and Gemm performs real floating-point work. The algorithm layer
// (internal/core, internal/baseline) sees only comm.Comm, so the same code
// also runs on the virtual transport in internal/simnet.
type Transport struct {
	c *Comm
}

// AsComm wraps an mpi communicator as a transport-agnostic one.
func AsComm(c *Comm) comm.Comm { return Transport{c} }

// Rank returns the caller's rank within the communicator.
func (t Transport) Rank() int { return t.c.Rank() }

// Size returns the number of ranks in the communicator.
func (t Transport) Size() int { return t.c.Size() }

// Split partitions the communicator; a negative colour returns nil.
func (t Transport) Split(color, key int) comm.Comm {
	nc := t.c.Split(color, key)
	if nc == nil {
		return nil
	}
	return Transport{nc}
}

// Send delivers the buffer's elements to dst under tag.
func (t Transport) Send(dst, tag int, data comm.Buf) { t.c.Send(dst, tag, data.Data) }

// Recv blocks for a matching message and fills the buffer.
func (t Transport) Recv(src, tag int, buf comm.Buf) { t.c.Recv(src, tag, buf.Data) }

// SendRecv performs the full-duplex shift primitive.
func (t Transport) SendRecv(dst, sendTag int, send comm.Buf, src, recvTag int, recv comm.Buf) {
	t.c.SendRecv(dst, sendTag, send.Data, src, recvTag, recv.Data)
}

// Bcast executes the named broadcast schedule over real element buffers.
func (t Transport) Bcast(alg sched.Algorithm, root int, data comm.Buf, segments int) {
	t.c.Bcast(alg, root, data.Data, segments)
}

// NewBuf allocates a real wire buffer.
func (t Transport) NewBuf(elems int) comm.Buf {
	return comm.Buf{Data: make([]float64, elems), N: elems}
}

// NewTile allocates a zeroed local matrix with real storage.
func (t Transport) NewTile(rows, cols int) *matrix.Dense { return matrix.New(rows, cols) }

// CloneTile deep-copies a tile.
func (t Transport) CloneTile(src *matrix.Dense) *matrix.Dense { return src.Clone() }

// Pack marshals the tile's elements into the buffer.
func (t Transport) Pack(dst comm.Buf, src *matrix.Dense) {
	comm.CheckPack(dst, src)
	src.Pack(dst.Data[:0])
}

// Unpack fills the tile from the buffer.
func (t Transport) Unpack(dst *matrix.Dense, src comm.Buf) {
	comm.CheckPack(src, dst)
	dst.Unpack(src.Data)
}

// Gemm performs the real local update C += A·B per the execution
// descriptor: the packed kernel serially for x.Threads ≤ 1,
// goroutine-parallel over write-disjoint C row bands otherwise, or the
// sub-cubic Strassen kernel when x.Strassen — each rank's local multiply
// is the hybrid layer's OpenMP region. The time spent here feeds the
// rank's GemmSeconds and, when tracing, a compute span — the other half
// of the paper's comm/compute breakdown.
func (t Transport) Gemm(c, a, b *matrix.Dense, x comm.Exec) {
	start := time.Now()
	switch {
	case x.Strassen:
		blas.StrassenGemm(c, a, b, x.Cutoff, x.Threads)
	case x.Threads <= 1:
		blas.Gemm(c, a, b)
	default:
		blas.ParallelGemm(c, a, b, x.Threads)
	}
	w := t.c.world
	wr := t.c.WorldRank()
	dt := time.Since(start).Seconds()
	w.stats[wr].GemmSeconds += dt
	if w.rec != nil {
		w.rec.RankThreads(wr, trace.PhaseGemm, start.Sub(w.epoch).Seconds(), dt, x.Threads)
	}
}

// Axpy performs the real element-wise update Y += alpha·X; the time counts
// toward GemmSeconds (it is local compute). No trace span is emitted — the
// virtual transports emit none either, keeping span-count parity.
func (t Transport) Axpy(alpha float64, x, y *matrix.Dense) {
	start := time.Now()
	blas.Axpy(alpha, x, y)
	w := t.c.world
	wr := t.c.WorldRank()
	w.stats[wr].GemmSeconds += time.Since(start).Seconds()
}
