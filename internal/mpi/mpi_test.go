package mpi

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

func TestRunAllRanksExecute(t *testing.T) {
	var count atomic.Int64
	err := Run(8, func(c *Comm) {
		count.Add(1)
		if c.Size() != 8 {
			t.Errorf("size %d", c.Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("%d ranks ran, want 8", count.Load())
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := Run(0, func(*Comm) {}); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestRanksDistinct(t *testing.T) {
	seen := make([]atomic.Int64, 16)
	err := Run(16, func(c *Comm) {
		seen[c.Rank()].Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range seen {
		if seen[r].Load() != 1 {
			t.Fatalf("rank %d executed %d times", r, seen[r].Load())
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			buf := make([]float64, 3)
			c.Recv(0, 7, buf)
			if buf[0] != 1 || buf[2] != 3 {
				t.Errorf("received %v", buf)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			data := []float64{42}
			c.Send(1, 0, data)
			data[0] = -1 // mutate after send; receiver must still see 42
			c.Barrier()
		} else {
			buf := make([]float64, 1)
			c.Barrier()
			c.Recv(0, 0, buf)
			if buf[0] != 42 {
				t.Errorf("send did not copy: got %v", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	// Two messages with different tags must match by tag, not order.
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			b2 := make([]float64, 1)
			c.Recv(0, 2, b2) // request the later message first
			b1 := make([]float64, 1)
			c.Recv(0, 1, b1)
			if b1[0] != 1 || b2[0] != 2 {
				t.Errorf("tag matching broken: %v %v", b1, b2)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSenderSameTag(t *testing.T) {
	err := Run(2, func(c *Comm) {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 0, []float64{float64(i)})
			}
		} else {
			buf := make([]float64, 1)
			for i := 0; i < n; i++ {
				c.Recv(0, 0, buf)
				if buf[0] != float64(i) {
					t.Errorf("message %d arrived as %v", i, buf[0])
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSourceMatching(t *testing.T) {
	// Rank 2 receives from 0 and 1 in a fixed order even if they send
	// concurrently.
	err := Run(3, func(c *Comm) {
		switch c.Rank() {
		case 0, 1:
			c.Send(2, 0, []float64{float64(c.Rank() + 10)})
		case 2:
			b := make([]float64, 1)
			c.Recv(1, 0, b)
			if b[0] != 11 {
				t.Errorf("from rank 1: %v", b[0])
			}
			c.Recv(0, 0, b)
			if b[0] != 10 {
				t.Errorf("from rank 0: %v", b[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvSizeMismatchAborts(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2})
		} else {
			c.Recv(0, 0, make([]float64, 3))
		}
	})
	if err == nil || !strings.Contains(err.Error(), "recv buffer") {
		t.Fatalf("size mismatch not reported: %v", err)
	}
}

func TestPanicPropagatesAndUnblocksWorld(t *testing.T) {
	err := Run(4, func(c *Comm) {
		if c.Rank() == 3 {
			panic("rank 3 exploded")
		}
		// Other ranks block forever; the abort must free them.
		c.Recv((c.Rank()+1)%3, 9, make([]float64, 1))
	})
	if err == nil || !strings.Contains(err.Error(), "rank 3 exploded") {
		t.Fatalf("want rank-3 panic, got %v", err)
	}
}

func TestSelfSendPanics(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(0, 0, []float64{1})
		}
	})
	if err == nil || !strings.Contains(err.Error(), "self-send") {
		t.Fatalf("self-send not rejected: %v", err)
	}
}

func TestSendRecvShiftRing(t *testing.T) {
	// Every rank shifts a value around a ring simultaneously — the
	// Cannon-style exchange that must not deadlock.
	p := 8
	err := Run(p, func(c *Comm) {
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		buf := make([]float64, 1)
		c.SendRecv(right, 0, []float64{float64(c.Rank())}, left, 0, buf)
		if buf[0] != float64(left) {
			t.Errorf("rank %d got %v, want %d", c.Rank(), buf[0], left)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitRowsAndCols(t *testing.T) {
	// 3x4 grid: row communicators of size 4, column communicators of 3.
	err := Run(12, func(c *Comm) {
		row, col := c.Rank()/4, c.Rank()%4
		rowComm := c.Split(row, col)
		if rowComm.Size() != 4 || rowComm.Rank() != col {
			t.Errorf("rank %d: rowComm size=%d rank=%d", c.Rank(), rowComm.Size(), rowComm.Rank())
		}
		colComm := c.Split(100+col, row)
		if colComm.Size() != 3 || colComm.Rank() != row {
			t.Errorf("rank %d: colComm size=%d rank=%d", c.Rank(), colComm.Size(), colComm.Rank())
		}
		// Message isolation: a row broadcast must not leak into columns.
		data := []float64{float64(row * 1000)}
		rowComm.Bcast(sched.Binomial, 0, data, 1)
		if data[0] != float64(row*1000) {
			t.Errorf("row bcast corrupted: %v", data[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	err := Run(4, func(c *Comm) {
		color := -1
		if c.Rank() < 2 {
			color = 0
		}
		sub := c.Split(color, 0)
		if c.Rank() < 2 {
			if sub == nil || sub.Size() != 2 {
				t.Errorf("rank %d: bad sub %v", c.Rank(), sub)
			}
		} else if sub != nil {
			t.Errorf("rank %d: undefined color got communicator", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdering(t *testing.T) {
	// Reverse keys invert the rank order in the new communicator.
	err := Run(4, func(c *Comm) {
		sub := c.Split(0, -c.Rank())
		if sub.Rank() != 3-c.Rank() {
			t.Errorf("rank %d got sub rank %d, want %d", c.Rank(), sub.Rank(), 3-c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplit(t *testing.T) {
	// Split the world into halves, then each half into pairs.
	err := Run(8, func(c *Comm) {
		half := c.Split(c.Rank()/4, c.Rank())
		pair := half.Split(half.Rank()/2, half.Rank())
		if pair.Size() != 2 {
			t.Errorf("pair size %d", pair.Size())
		}
		// Exchange within the pair.
		other := 1 - pair.Rank()
		buf := make([]float64, 1)
		pair.SendRecv(other, 5, []float64{float64(c.Rank())}, other, 5, buf)
		want := c.Rank() ^ 1
		if buf[0] != float64(want) {
			t.Errorf("rank %d paired with %v, want %d", c.Rank(), buf[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllAlgorithms(t *testing.T) {
	for _, alg := range sched.Algorithms() {
		for _, p := range []int{1, 2, 3, 5, 8, 16, 17} {
			for _, root := range []int{0, p - 1} {
				alg, p, root := alg, p, root
				t.Run(fmt.Sprintf("%s/p%d/root%d", alg, p, root), func(t *testing.T) {
					err := Run(p, func(c *Comm) {
						data := make([]float64, 37)
						if c.Rank() == root {
							for i := range data {
								data[i] = float64(i * i)
							}
						}
						c.Bcast(alg, root, data, 4)
						for i := range data {
							if data[i] != float64(i*i) {
								t.Errorf("rank %d elem %d = %v", c.Rank(), i, data[i])
								return
							}
						}
					})
					if err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

func TestBcastConsecutiveCallsDontCross(t *testing.T) {
	// Two broadcasts back to back with different payloads: op sequence
	// numbers must keep them separate.
	err := Run(6, func(c *Comm) {
		a := []float64{0}
		b := []float64{0}
		if c.Rank() == 0 {
			a[0], b[0] = 1, 2
		}
		c.Bcast(sched.Binomial, 0, a, 1)
		c.Bcast(sched.VanDeGeijn, 0, b, 1)
		if a[0] != 1 || b[0] != 2 {
			t.Errorf("rank %d: a=%v b=%v", c.Rank(), a[0], b[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	// After a barrier, every pre-barrier store must be visible. Model:
	// rank 0 writes a shared atomic before the barrier; all ranks read
	// it after.
	var flag atomic.Int64
	err := Run(8, func(c *Comm) {
		if c.Rank() == 0 {
			flag.Store(99)
		}
		c.Barrier()
		if flag.Load() != 99 {
			t.Errorf("rank %d saw flag %d after barrier", c.Rank(), flag.Load())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	p := 6
	err := Run(p, func(c *Comm) {
		mine := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
		parts := c.Gather(2, mine)
		if c.Rank() == 2 {
			for r, part := range parts {
				if part[0] != float64(r) || part[1] != float64(r*10) {
					t.Errorf("gathered part %d = %v", r, part)
				}
			}
		} else if parts != nil {
			t.Errorf("non-root got gather result")
		}
		// Scatter them back.
		back := c.Scatter(2, parts, 2)
		if back[0] != float64(c.Rank()) || back[1] != float64(c.Rank()*10) {
			t.Errorf("rank %d scattered back %v", c.Rank(), back)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	p := 9
	err := Run(p, func(c *Comm) {
		data := []float64{1, float64(c.Rank())}
		res := c.ReduceSum(4, data)
		if c.Rank() == 4 {
			if res[0] != float64(p) {
				t.Errorf("sum of ones = %v, want %d", res[0], p)
			}
			want := float64(p * (p - 1) / 2)
			if res[1] != want {
				t.Errorf("sum of ranks = %v, want %v", res[1], want)
			}
		} else if res != nil {
			t.Errorf("non-root got reduce result")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	p := 7
	err := Run(p, func(c *Comm) {
		res := c.AllreduceSum([]float64{float64(c.Rank() + 1)})
		want := float64(p * (p + 1) / 2)
		if math.Abs(res[0]-want) > 1e-12 {
			t.Errorf("rank %d allreduce = %v, want %v", c.Rank(), res[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	p := 5
	err := Run(p, func(c *Comm) {
		flat := c.Allgather([]float64{float64(c.Rank()), -float64(c.Rank())})
		if len(flat) != 2*p {
			t.Errorf("allgather length %d", len(flat))
		}
		for r := 0; r < p; r++ {
			if flat[2*r] != float64(r) || flat[2*r+1] != -float64(r) {
				t.Errorf("rank %d slot %d = %v,%v", c.Rank(), r, flat[2*r], flat[2*r+1])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCountTraffic(t *testing.T) {
	stats, err := RunStats(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 100))
		} else {
			c.Recv(0, 0, make([]float64, 100))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].SentMessages != 1 || stats[0].SentBytes != 800 {
		t.Fatalf("rank 0 stats %+v", stats[0])
	}
	if stats[1].SentMessages != 0 {
		t.Fatalf("rank 1 sent nothing but stats say %+v", stats[1])
	}
}

func TestBcastTrafficMatchesSchedule(t *testing.T) {
	// Aggregate bytes sent by a binomial broadcast of n elements over p
	// ranks must be (p-1)*8n.
	p, n := 8, 64
	stats, err := RunStats(p, func(c *Comm) {
		c.Bcast(sched.Binomial, 0, make([]float64, n), 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range stats {
		total += s.SentBytes
	}
	want := int64((p - 1) * 8 * n)
	if total != want {
		t.Fatalf("broadcast moved %d bytes, want %d", total, want)
	}
}

func TestManyRanksSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := 256
	err := Run(p, func(c *Comm) {
		data := make([]float64, 16)
		if c.Rank() == 0 {
			for i := range data {
				data[i] = 3.14
			}
		}
		c.Bcast(sched.VanDeGeijn, 0, data, 1)
		if data[7] != 3.14 {
			t.Errorf("rank %d bad data", c.Rank())
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
