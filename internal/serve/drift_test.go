package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/trace"
	"repro/internal/tune"
)

// newTestRecorder builds a tiny one-span recorder for ring tests.
func newTestRecorder() *trace.Recorder {
	r := trace.New(1)
	r.Rank(0, trace.PhaseGemm, 0, 0.001, 0, 0)
	return r
}

// TestDriftTrackerStale drives the EWMA to a sustained 3x overrun and
// checks the stale verdict fires exactly once, resetting the key's state.
func TestDriftTrackerStale(t *testing.T) {
	d := newDriftTracker(2.0, 3)
	pred := map[string]float64{"bcast": 1.0, "gemm": 2.0}
	meas := map[string]float64{"bcast": 3.0, "gemm": 6.0}
	var staleAt int
	for i := 1; i <= 3; i++ {
		ratio, stale := d.observe("k", pred, meas)
		if math.Abs(ratio-3.0) > 1e-12 {
			t.Fatalf("observation %d: ratio = %v, want 3.0", i, ratio)
		}
		if stale {
			staleAt = i
		}
	}
	if staleAt != 3 {
		t.Fatalf("stale fired at observation %d, want 3 (minSamples)", staleAt)
	}
	// The key's state must have reset: the next observation starts fresh
	// and cannot be stale again before minSamples accumulate.
	if _, stale := d.observe("k", pred, meas); stale {
		t.Fatal("stale re-fired immediately after reset")
	}
	if snap := d.snapshot(); snap["k"]["bcast"] != 3.0 {
		t.Fatalf("post-reset snapshot = %v, want fresh bcast EWMA 3.0", snap)
	}
}

// TestDriftTrackerUnderrun checks the inverse side of the band: a model
// that overpredicts by 4x (ratio 0.25 < 1/threshold) is just as stale.
func TestDriftTrackerUnderrun(t *testing.T) {
	d := newDriftTracker(2.0, 2)
	pred := map[string]float64{"shift": 4.0}
	meas := map[string]float64{"shift": 1.0}
	if _, stale := d.observe("k", pred, meas); stale {
		t.Fatal("stale before minSamples")
	}
	if _, stale := d.observe("k", pred, meas); !stale {
		t.Fatal("sustained 0.25 ratio did not mark the plan stale")
	}
}

// TestDriftTrackerConvergence checks the EWMA settles: a transient spike
// followed by on-model requests decays back inside the band, never
// tripping staleness.
func TestDriftTrackerConvergence(t *testing.T) {
	d := newDriftTracker(2.0, 8)
	pred := map[string]float64{"bcast": 1.0}
	if _, stale := d.observe("k", pred, map[string]float64{"bcast": 5.0}); stale {
		t.Fatal("single spike marked stale")
	}
	for i := 0; i < 20; i++ {
		if _, stale := d.observe("k", pred, map[string]float64{"bcast": 1.0}); stale {
			t.Fatalf("EWMA tripped stale while decaying toward 1.0 (iteration %d)", i)
		}
	}
	if ewma := d.snapshot()["k"]["bcast"]; math.Abs(ewma-1.0) > 0.05 {
		t.Fatalf("bcast EWMA = %v after 20 on-model requests, want ~1.0", ewma)
	}
}

// TestDriftTrackerNoPrediction: requests without a prediction (or with
// nothing comparable) contribute nothing and report ratio 0.
func TestDriftTrackerNoPrediction(t *testing.T) {
	d := newDriftTracker(0, 0) // defaults: threshold 2.0, minSamples 8
	if ratio, stale := d.observe("k", nil, map[string]float64{"gemm": 1}); ratio != 0 || stale {
		t.Fatalf("nil prediction: ratio %v stale %v, want 0/false", ratio, stale)
	}
	if ratio, _ := d.observe("k", map[string]float64{"bcast": 1}, map[string]float64{"gemm": 1}); ratio != 0 {
		t.Fatalf("disjoint phases: ratio %v, want 0", ratio)
	}
	if len(d.snapshot()) != 0 {
		t.Fatalf("incomparable observations left state behind: %v", d.snapshot())
	}
}

// TestMeasuredPhasesBatchScaling: a coalesced batch's whole-batch stats
// scale down by the batch width before comparison.
func TestMeasuredPhasesBatchScaling(t *testing.T) {
	st := Stats{
		BatchSize:          4,
		GemmSeconds:        8,
		CommSecondsByPhase: map[string]float64{"bcast": 4, "p2p": 2},
	}
	m := measuredPhases(st)
	if m["bcast"] != 1 || m["p2p"] != 0.5 || m["gemm"] != 2 {
		t.Fatalf("measuredPhases = %v, want bcast:1 p2p:0.5 gemm:2", m)
	}
	// BatchSize 0 (untracked) must behave as width 1, not divide by zero.
	st.BatchSize = 0
	if m := measuredPhases(st); m["bcast"] != 4 {
		t.Fatalf("BatchSize 0: measuredPhases = %v, want unscaled", m)
	}
}

// TestFlightRecorderRing checks the bounded ring: monotonic ids, oldest
// evicted, evicted ids fetch as nil, listing newest first.
func TestFlightRecorderRing(t *testing.T) {
	f := newFlightRecorder(2)
	sh := matrix.Shape{M: 8, N: 8, K: 8}
	id1 := f.add("k", sh, 0.1, newTestRecorder())
	id2 := f.add("k", sh, 0.2, newTestRecorder())
	id3 := f.add("k", sh, 0.3, newTestRecorder())
	if id1 == id2 || id2 == id3 {
		t.Fatalf("ids not unique: %s %s %s", id1, id2, id3)
	}
	if f.get(id1) != nil {
		t.Fatalf("evicted capture %s still fetchable", id1)
	}
	if f.get(id2) == nil || f.get(id3) == nil {
		t.Fatal("retained captures not fetchable")
	}
	list := f.list()
	if len(list) != 2 || list[0].ID != id3 || list[1].ID != id2 {
		t.Fatalf("list = %+v, want [%s %s] newest first", list, id3, id2)
	}
	if last := f.last(); last == nil || last.ID != id3 {
		t.Fatalf("last = %+v, want %s", last, id3)
	}
	if e := f.get("t999999"); e != nil {
		t.Fatalf("unknown id fetched %+v", e)
	}
}

// TestSchedulerDriftStats: a completed request through the real scheduler
// carries both a prediction and a positive drift ratio in its stats.
func TestSchedulerDriftStats(t *testing.T) {
	sc := NewScheduler(SchedulerConfig{RankBudget: 16})
	defer sc.Close()
	n := 32
	a := matrix.Random(n, n, 11)
	b := matrix.Random(n, n, 12)
	_, st, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PredictedSecondsByPhase) == 0 {
		t.Fatal("Stats.PredictedSecondsByPhase is empty — resolution did not attach the plan prediction")
	}
	if st.ModelDriftRatio <= 0 {
		t.Fatalf("ModelDriftRatio = %v, want > 0", st.ModelDriftRatio)
	}
	if m := sc.Metrics(); m.ModelDriftP50 <= 0 {
		t.Fatalf("Metrics.ModelDriftP50 = %v, want > 0 after a completed request", m.ModelDriftP50)
	}
}

// TestSchedulerSampledBitIdentical is the pay-for-what-you-use invariant:
// with sampling on, an unsampled request's product is bit-identical to the
// sampling-off scheduler's, and only sampled requests carry a TraceID.
func TestSchedulerSampledBitIdentical(t *testing.T) {
	n := 32
	a := matrix.Random(n, n, 21)
	b := matrix.Random(n, n, 22)
	rp := tune.ResolveParams{Procs: 4}

	plain := NewScheduler(SchedulerConfig{RankBudget: 16})
	defer plain.Close()
	ref, refSt, err := plain.Multiply(a, b, rp)
	if err != nil {
		t.Fatal(err)
	}
	if refSt.TraceID != "" {
		t.Fatalf("sampling-off request carries TraceID %q", refSt.TraceID)
	}

	// TraceSampleN=2: request 1 (seq 1) is unsampled, request 2 (seq 2)
	// sampled.
	sampled := NewScheduler(SchedulerConfig{RankBudget: 16, TraceSampleN: 2})
	defer sampled.Close()
	out1, st1, err := sampled.Multiply(a, b, rp)
	if err != nil {
		t.Fatal(err)
	}
	if st1.TraceID != "" {
		t.Fatalf("unsampled request carries TraceID %q", st1.TraceID)
	}
	for i, v := range out1.Data {
		if v != ref.Data[i] {
			t.Fatalf("unsampled product differs from sampling-off scheduler at %d: %v != %v", i, v, ref.Data[i])
		}
	}
	out2, st2, err := sampled.Multiply(a, b, rp)
	if err != nil {
		t.Fatal(err)
	}
	if st2.TraceID == "" {
		t.Fatal("second request (1-in-2 sampling) has no TraceID")
	}
	for i, v := range out2.Data {
		if v != ref.Data[i] {
			t.Fatalf("sampled product differs at %d: %v != %v", i, v, ref.Data[i])
		}
	}
	if m := sampled.Metrics(); m.TraceSampled != 1 {
		t.Fatalf("Metrics.TraceSampled = %d, want 1", m.TraceSampled)
	}
	if rec := sampled.FlightGet(st2.TraceID); rec == nil {
		t.Fatalf("sampled capture %s not in the flight recorder", st2.TraceID)
	}
}

// TestHTTPFlightRecorderJoin is the three-way telemetry join: one sampled
// request's trace id must agree across the response stats, the request
// log record, the flight-recorder listing (fetchable as a valid trace),
// the critical-path report and the metrics counters.
func TestHTTPFlightRecorderJoin(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	sc := NewScheduler(SchedulerConfig{RankBudget: 16, TraceSampleN: 1})
	srv := httptest.NewServer(NewHandler(sc, HandlerConfig{DefaultProcs: 4, Logger: logger}))
	defer func() {
		srv.Close()
		sc.Close()
	}()

	resp, err := http.Post(srv.URL+"/multiply", "application/json", bytes.NewReader(multiplyBody(t, 16, 4)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply status %d", resp.StatusCode)
	}
	var res jsonResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	id := res.Stats.TraceID
	if id == "" {
		t.Fatal("1-in-1 sampled response has no Stats.TraceID")
	}

	// Join 1: the request log record carries the same trace id.
	var record map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &record); err != nil {
		t.Fatalf("request log is not one JSON record: %v\n%s", err, logBuf.String())
	}
	if record["trace_id"] != id {
		t.Fatalf("logged trace_id %v, stats say %q", record["trace_id"], id)
	}
	if _, ok := record["model_drift"]; !ok {
		t.Fatalf("request log missing model_drift: %v", record)
	}

	// Join 2: the listing includes the id and the capture fetches as a
	// valid Chrome trace document.
	lresp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Traces []FlightSummary `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) == 0 || listing.Traces[0].ID != id {
		t.Fatalf("flight listing %+v does not lead with %s", listing.Traces, id)
	}
	if listing.Traces[0].Spans == 0 {
		t.Fatal("sampled capture summary reports zero spans")
	}
	tresp, err := http.Get(srv.URL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s status %d", id, tresp.StatusCode)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&doc); err != nil {
		t.Fatalf("fetched capture is not valid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("fetched capture has no events")
	}

	// Join 3: the critical-path report analyses a known capture.
	cresp, err := http.Get(srv.URL + "/debug/critpath")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/critpath status %d", cresp.StatusCode)
	}
	var crit struct {
		TraceID string `json:"trace_id"`
		Report  struct {
			WallSeconds float64 `json:"wall_seconds"`
		} `json:"report"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&crit); err != nil {
		t.Fatal(err)
	}
	if crit.TraceID != id || crit.Report.WallSeconds <= 0 {
		t.Fatalf("critpath = %+v, want trace_id %s and positive wall", crit, id)
	}

	// Join 4: the counters agree.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"hsumma_serve_trace_sampled_total 1",
		"hsumma_serve_plan_stale_total 0",
		"hsumma_serve_model_drift_p50",
		"hsumma_serve_model_drift_ratio_bucket",
	} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, raw)
		}
	}

	// An evicted/unknown id is a clean 404.
	nresp, err := http.Get(srv.URL + "/debug/traces/t999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, nresp.Body)
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown capture id returned %d, want 404", nresp.StatusCode)
	}
}

// TestHTTPFlightEndpointsGuarded: with sampling off the flight-recorder
// endpoints refuse with 403, like the one-shot trace arm.
func TestHTTPFlightEndpointsGuarded(t *testing.T) {
	srv, _ := newTestServer(t) // TraceSampleN defaults to 0
	for _, path := range []string{"/debug/traces", "/debug/traces/t000001", "/debug/critpath"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("ungated %s returned %d, want 403", path, resp.StatusCode)
		}
	}
}
