package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/matrix"
	"repro/internal/trace"
)

// This file is the serving layer's plan-fidelity machinery: a per-spec-key
// EWMA of the measured/predicted per-phase cost ratio (the drift tracker),
// and a bounded ring of sampled span timelines (the flight recorder). Both
// are observability aids — nothing on the execution path depends on them,
// and with sampling off and drift untriggered a request's execution is
// bit-identical to the untracked layer.

// driftBounds are the ratio-bucket upper bounds of the
// hsumma_serve_model_drift_ratio histogram: measured/predicted, centred on
// 1.0 (model exact), roughly geometric so symmetric drift lands in
// symmetric buckets.
var driftBounds = []float64{0.25, 0.5, 0.71, 0.9, 1.0, 1.1, 1.4, 2, 4, 8}

// driftState is one spec key's running fidelity estimate.
type driftState struct {
	// ewma maps phase name → EWMA of measured/predicted for that phase.
	ewma map[string]float64
	// total is the EWMA of the all-phase ratio (Σ measured / Σ predicted
	// over the predicted phases) — the staleness signal, less noisy than
	// any single phase.
	total float64
	n     int
}

// driftTracker keeps per-spec-key drift state and decides when a plan has
// gone stale: the total-ratio EWMA has settled (≥ minSamples) outside
// [1/threshold, threshold]. On a stale verdict the key's state resets, so
// one bad plan fires one invalidation, not one per subsequent request.
type driftTracker struct {
	threshold  float64
	minSamples int
	alpha      float64

	mu    sync.Mutex
	byKey map[string]*driftState
}

func newDriftTracker(threshold float64, minSamples int) *driftTracker {
	if threshold <= 1 {
		threshold = 2.0
	}
	if minSamples <= 0 {
		minSamples = 8
	}
	return &driftTracker{threshold: threshold, minSamples: minSamples, alpha: 0.3,
		byKey: make(map[string]*driftState)}
}

// observe folds one request's measured phase seconds against its plan's
// prediction. It returns the request's instantaneous all-phase ratio (0
// when nothing was comparable) and whether this observation tipped the key
// into the stale regime.
func (d *driftTracker) observe(key string, predicted, measured map[string]float64) (ratio float64, stale bool) {
	if len(predicted) == 0 {
		return 0, false
	}
	var predSum, measSum float64
	perPhase := make(map[string]float64, len(predicted))
	for ph, p := range predicted {
		m, ok := measured[ph]
		if !ok || p <= 0 || m <= 0 {
			continue
		}
		perPhase[ph] = m / p
		predSum += p
		measSum += m
	}
	if predSum <= 0 {
		return 0, false
	}
	ratio = measSum / predSum

	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.byKey[key]
	if st == nil {
		st = &driftState{ewma: make(map[string]float64)}
		d.byKey[key] = st
	}
	for ph, r := range perPhase {
		if prev, ok := st.ewma[ph]; ok {
			st.ewma[ph] = prev + d.alpha*(r-prev)
		} else {
			st.ewma[ph] = r
		}
	}
	if st.n == 0 {
		st.total = ratio
	} else {
		st.total += d.alpha * (ratio - st.total)
	}
	st.n++
	if st.n >= d.minSamples && (st.total > d.threshold || st.total < 1/d.threshold) {
		// Reset so the replanned spec starts a fresh estimate.
		delete(d.byKey, key)
		return ratio, true
	}
	return ratio, false
}

// snapshot returns each key's phase EWMAs, for introspection/tests.
func (d *driftTracker) snapshot() map[string]map[string]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]map[string]float64, len(d.byKey))
	for k, st := range d.byKey {
		m := make(map[string]float64, len(st.ewma))
		for ph, r := range st.ewma {
			m[ph] = r
		}
		out[k] = m
	}
	return out
}

// measuredPhases builds the drift comparison's measured side from one
// request's stats: the per-phase comm seconds plus the gemm time, scaled
// down by the coalesced batch width. The scaling is an approximation —
// gemm and the RHS traffic grow linearly with width, the A-side broadcast
// does not — but it keeps batched requests comparable to their
// single-request prediction within the tracker's threshold.
func measuredPhases(st Stats) map[string]float64 {
	k := float64(st.BatchSize)
	if k < 1 {
		k = 1
	}
	m := make(map[string]float64, len(st.CommSecondsByPhase)+1)
	for ph, v := range st.CommSecondsByPhase {
		m[ph] = v / k
	}
	if st.GemmSeconds > 0 {
		m["gemm"] = st.GemmSeconds / k
	}
	return m
}

// flightEntry is one sampled request's capture.
type flightEntry struct {
	ID      string
	Time    time.Time
	SpecKey string
	Shape   matrix.Shape
	Wall    float64
	Rec     *trace.Recorder
}

// FlightSummary is the listing form of one capture (GET /debug/traces).
type FlightSummary struct {
	ID          string    `json:"id"`
	Time        time.Time `json:"time"`
	SpecKey     string    `json:"spec_key"`
	Shape       string    `json:"shape"`
	WallSeconds float64   `json:"wall_seconds"`
	Spans       int       `json:"spans"`
}

// flightRecorder is the bounded ring of sampled traces. Adds evict the
// oldest entry once the ring is full; ids are monotonic, so a fetch of an
// evicted id is a clean 404 rather than aliased data.
type flightRecorder struct {
	mu   sync.Mutex
	max  int
	seq  int64
	ring []*flightEntry
}

func newFlightRecorder(max int) *flightRecorder {
	if max <= 0 {
		max = 16
	}
	return &flightRecorder{max: max}
}

func (f *flightRecorder) add(specKey string, shape matrix.Shape, wall float64, rec *trace.Recorder) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	e := &flightEntry{
		ID:      fmt.Sprintf("t%06d", f.seq),
		Time:    time.Now(),
		SpecKey: specKey,
		Shape:   shape,
		Wall:    wall,
		Rec:     rec,
	}
	f.ring = append(f.ring, e)
	if len(f.ring) > f.max {
		f.ring = append(f.ring[:0:0], f.ring[len(f.ring)-f.max:]...)
	}
	return e.ID
}

// list returns capture summaries, newest first.
func (f *flightRecorder) list() []FlightSummary {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightSummary, 0, len(f.ring))
	for _, e := range f.ring {
		out = append(out, FlightSummary{
			ID:          e.ID,
			Time:        e.Time,
			SpecKey:     e.SpecKey,
			Shape:       fmt.Sprintf("%dx%dx%d", e.Shape.M, e.Shape.N, e.Shape.K),
			WallSeconds: e.Wall,
			Spans:       len(e.Rec.Spans()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

func (f *flightRecorder) get(id string) *flightEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range f.ring {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// last returns the most recent capture (nil when none) — the timeline
// GET /debug/critpath analyses.
func (f *flightRecorder) last() *flightEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.ring) == 0 {
		return nil
	}
	return f.ring[len(f.ring)-1]
}
