package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/tune"
)

// HandlerConfig tunes the HTTP face of a scheduler.
type HandlerConfig struct {
	// DefaultProcs is the rank count used when a request does not pin one
	// (default 16).
	DefaultProcs int
	// Platform is the machine the planner tunes auto requests (and the
	// /plan endpoint's default) for; nil means the Grid'5000 preset.
	Platform *platform.Platform
	// MaxBodyBytes bounds request bodies (default 256 MiB — a 2048² pair
	// of float64 operands is 64 MiB).
	MaxBodyBytes int64
	// Logger, when set, emits one structured log record per request
	// (request id, method, path, status, duration, and — for multiplies —
	// spec key, shape and queue wait). Responses carry the id back in
	// X-Request-Id. Nil disables request logging.
	Logger *slog.Logger
	// EnableTrace guards POST /debug/trace, which arms a one-shot span
	// capture of the next multiply. Off by default: a trace allocates a
	// span timeline and names internal shapes, so the endpoint is opt-in.
	EnableTrace bool
}

func (c HandlerConfig) withDefaults() HandlerConfig {
	if c.DefaultProcs <= 0 {
		c.DefaultProcs = 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	return c
}

// handler is the daemon's HTTP surface over one Scheduler.
type handler struct {
	sc     *Scheduler
	cfg    HandlerConfig
	mux    *http.ServeMux
	reqSeq atomic.Int64
}

// NewHandler wires the serving endpoints over a scheduler:
//
//	POST /multiply     — one GEMM; JSON body or raw little-endian float64s
//	GET  /plan         — the autotuning planner's ranked plan for a problem
//	GET  /metrics      — scheduler + plan-cache counters, Prometheus format
//	GET  /healthz      — liveness
//	POST /debug/trace  — (EnableTrace only) arm a one-shot span capture of
//	                     the next multiply; responds with its Chrome
//	                     trace-event JSON
//	GET  /debug/traces      — (sampling only) the flight recorder's capture
//	                          ring, newest first
//	GET  /debug/traces/{id} — one sampled capture as Chrome trace-event JSON
//	GET  /debug/critpath    — critical-path report over the newest capture
func NewHandler(sc *Scheduler, cfg HandlerConfig) http.Handler {
	h := &handler{sc: sc, cfg: cfg.withDefaults(), mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /multiply", h.multiply)
	h.mux.HandleFunc("GET /plan", h.plan)
	h.mux.HandleFunc("GET /metrics", h.metrics)
	h.mux.HandleFunc("POST /debug/trace", h.debugTrace)
	h.mux.HandleFunc("GET /debug/traces", h.debugTraces)
	h.mux.HandleFunc("GET /debug/traces/{id}", h.debugTraceByID)
	h.mux.HandleFunc("GET /debug/critpath", h.debugCritPath)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return h
}

// reqLogKey carries the per-request attribute sink handlers append to
// (spec key, shape, queue wait) so the middleware can log one record per
// request.
type reqLogKey struct{}

type reqLog struct{ attrs []slog.Attr }

// logAttrs appends structured fields to the current request's log record;
// a no-op when logging is disabled.
func logAttrs(r *http.Request, attrs ...slog.Attr) {
	if rl, ok := r.Context().Value(reqLogKey{}).(*reqLog); ok {
		rl.attrs = append(rl.attrs, attrs...)
	}
}

// statusWriter records the status code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes)
	if h.cfg.Logger == nil {
		h.mux.ServeHTTP(w, r)
		return
	}
	id := fmt.Sprintf("%08x", h.reqSeq.Add(1))
	w.Header().Set("X-Request-Id", id)
	rl := &reqLog{}
	r = r.WithContext(context.WithValue(r.Context(), reqLogKey{}, rl))
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	h.mux.ServeHTTP(sw, r)
	level := slog.LevelInfo
	if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
		level = slog.LevelDebug
	}
	attrs := append([]slog.Attr{
		slog.String("req_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Float64("duration_s", time.Since(start).Seconds()),
	}, rl.attrs...)
	h.cfg.Logger.LogAttrs(r.Context(), level, "request", attrs...)
}

// debugTrace arms a one-shot trace capture and streams the next multiply's
// span timeline as Chrome trace-event JSON. Guarded by EnableTrace; an
// optional timeout query parameter (seconds, default 30) bounds the wait.
func (h *handler) debugTrace(w http.ResponseWriter, r *http.Request) {
	if !h.cfg.EnableTrace {
		http.Error(w, "serve: trace capture disabled (start the daemon with -debug-trace)", http.StatusForbidden)
		return
	}
	wait := 30 * time.Second
	if v := r.URL.Query().Get("timeout"); v != "" {
		sec, err := strconv.ParseFloat(v, 64)
		if err != nil || sec <= 0 {
			httpError(w, fmt.Errorf("serve: bad timeout %q", v))
			return
		}
		wait = time.Duration(sec * float64(time.Second))
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case rec := <-h.sc.ArmTrace():
		if rec == nil {
			http.Error(w, "serve: the traced request failed", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		rec.WriteJSON(w)
	case <-timer.C:
		http.Error(w, "serve: no multiply arrived before the timeout (capture stays armed)", http.StatusGatewayTimeout)
	case <-r.Context().Done():
	}
}

// requireSampling guards the flight-recorder endpoints: they only exist
// when the daemon samples traces (-trace-sample), mirroring the
// EnableTrace opt-in of the one-shot capture.
func (h *handler) requireSampling(w http.ResponseWriter) bool {
	if !h.sc.TraceSampling() {
		http.Error(w, "serve: flight recorder disabled (start the daemon with -trace-sample N)", http.StatusForbidden)
		return false
	}
	return true
}

// debugTraces lists the flight recorder's sampled captures, newest first.
func (h *handler) debugTraces(w http.ResponseWriter, r *http.Request) {
	if !h.requireSampling(w) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Traces []FlightSummary `json:"traces"`
	}{Traces: h.sc.FlightList()})
}

// debugTraceByID streams one sampled capture as Chrome trace-event JSON.
func (h *handler) debugTraceByID(w http.ResponseWriter, r *http.Request) {
	if !h.requireSampling(w) {
		return
	}
	id := r.PathValue("id")
	rec := h.sc.FlightGet(id)
	if rec == nil {
		http.Error(w, fmt.Sprintf("serve: no sampled trace %q (evicted or never captured)", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rec.WriteJSON(w)
}

// debugCritPath serves the critical-path report over the newest sampled
// capture: which rank and phase gate wall time, the per-rank busy/wait
// split, and the top blocking edges.
func (h *handler) debugCritPath(w http.ResponseWriter, r *http.Request) {
	if !h.requireSampling(w) {
		return
	}
	id, spans := h.sc.FlightLast()
	if len(spans) == 0 {
		http.Error(w, "serve: no sampled trace captured yet", http.StatusNotFound)
		return
	}
	rep := trace.CriticalPath(spans)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		TraceID string                    `json:"trace_id"`
		Report  *trace.CriticalPathReport `json:"report"`
	}{TraceID: id, Report: rep})
}

// httpError maps serving errors onto status codes: backpressure and drain
// are 503 (retryable), everything else a 400-class client error.
func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// maxDim bounds each requested matrix dimension. 2^24 keeps every product
// of two dimensions within 2^48 — far from int64 overflow — so the
// element-count arithmetic below is safe against crafted query parameters;
// the real admission limit is MaxBodyBytes.
const maxDim = 1 << 24

// maxPlanProcs bounds /plan's rank count; it admits the paper's exascale
// projection (2^20 ranks, ranked analytically) with headroom while keeping
// the candidate enumeration itself bounded.
const maxPlanProcs = 1 << 22

// validateDims guards the request dimensions before any size arithmetic:
// positive, bounded, and with operand AND result byte sizes under the body
// limit (a small-K request could otherwise demand a result allocation far
// beyond anything its operands paid for).
func validateDims(m, n, k int, maxBytes int64) error {
	if m <= 0 || n <= 0 || k <= 0 {
		return fmt.Errorf("serve: m, n, k must be positive (have %d, %d, %d)", m, n, k)
	}
	if m > maxDim || n > maxDim || k > maxDim {
		return fmt.Errorf("serve: dimension exceeds limit %d (have m=%d, n=%d, k=%d)", maxDim, m, n, k)
	}
	if bytes := (int64(m)*int64(k) + int64(k)*int64(n)) * 8; bytes > maxBytes {
		return fmt.Errorf("serve: operands need %d bytes, above the %d-byte body limit", bytes, maxBytes)
	}
	if bytes := int64(m) * int64(n) * 8; bytes > maxBytes {
		return fmt.Errorf("serve: result needs %d bytes, above the %d-byte limit", bytes, maxBytes)
	}
	return nil
}

// jsonMultiply is the JSON body of POST /multiply. A and B are row-major;
// m, n, k are required and must match their lengths.
type jsonMultiply struct {
	M     int    `json:"m"`
	N     int    `json:"n"`
	K     int    `json:"k"`
	Procs int    `json:"procs,omitempty"`
	Alg   string `json:"algorithm,omitempty"`
	Grid  []int  `json:"grid,omitempty"`
	// Groups is HSUMMA's G; BlockSize/OuterBlockSize the paper's b/B.
	Groups         int    `json:"groups,omitempty"`
	BlockSize      int    `json:"block_size,omitempty"`
	OuterBlockSize int    `json:"outer_block_size,omitempty"`
	Broadcast      string `json:"broadcast,omitempty"`
	Segments       int    `json:"segments,omitempty"`
	// Threads is the per-rank thread budget (hybrid intra-rank
	// parallelism); 0 and 1 mean serial ranks. The scheduler accounts the
	// session as ranks × threads cores.
	Threads int `json:"threads,omitempty"`
	// StrassenLevels/StrassenInnerGroups configure the strassen
	// algorithm's recursion depth and HSUMMA bottom; LocalStrassen and
	// StrassenCutoff select the rank-local sub-cubic kernel under any
	// algorithm.
	StrassenLevels      int       `json:"strassen_levels,omitempty"`
	StrassenInnerGroups int       `json:"strassen_inner_groups,omitempty"`
	LocalStrassen       bool      `json:"local_strassen,omitempty"`
	StrassenCutoff      int       `json:"strassen_cutoff,omitempty"`
	A                   []float64 `json:"a"`
	B                   []float64 `json:"b"`
}

// jsonResult is the JSON response of POST /multiply.
type jsonResult struct {
	M     int       `json:"m"`
	N     int       `json:"n"`
	C     []float64 `json:"c"`
	Stats Stats     `json:"stats"`
}

func (h *handler) multiply(w http.ResponseWriter, r *http.Request) {
	ct := r.Header.Get("Content-Type")
	var (
		a, b *matrix.Dense
		rp   tune.ResolveParams
		raw  bool
		err  error
	)
	switch {
	case strings.HasPrefix(ct, "application/octet-stream"):
		raw = true
		a, b, rp, err = h.parseRaw(r)
	case ct == "" || strings.HasPrefix(ct, "application/json"):
		a, b, rp, err = h.parseJSON(r)
	default:
		http.Error(w, fmt.Sprintf("unsupported Content-Type %q (want application/json or application/octet-stream)", ct), http.StatusUnsupportedMediaType)
		return
	}
	if err != nil {
		httpError(w, err)
		return
	}
	out, stats, err := h.sc.Multiply(a, b, rp)
	if err != nil {
		logAttrs(r, slog.String("outcome", "error"), slog.String("error", err.Error()))
		httpError(w, err)
		return
	}
	logAttrs(r,
		slog.String("outcome", "ok"),
		slog.String("spec_key", stats.SpecKey),
		slog.String("shape", fmt.Sprintf("%dx%dx%d", a.Rows, b.Cols, a.Cols)),
		slog.Float64("queue_wait_s", stats.QueueSeconds),
		slog.Float64("execute_s", stats.RunSeconds),
		slog.Int("batch_size", stats.BatchSize),
		slog.Int("pipeline_occupancy", stats.PipelineOccupancy),
		slog.Float64("model_drift", stats.ModelDriftRatio),
	)
	if stats.TraceID != "" {
		// Present exactly when the request was sampled into the flight
		// recorder: the id joins this log record to GET /debug/traces/{id}.
		logAttrs(r, slog.String("trace_id", stats.TraceID))
	}
	if raw {
		statsJSON, _ := json.Marshal(stats)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Hsumma-Stats", string(statsJSON))
		w.Header().Set("X-Hsumma-Shape", fmt.Sprintf("%dx%d", out.Rows, out.Cols))
		writeRawMatrix(w, out)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(jsonResult{M: out.Rows, N: out.Cols, C: out.Pack(nil), Stats: stats})
}

// parseJSON decodes the JSON multiply body.
func (h *handler) parseJSON(r *http.Request) (*matrix.Dense, *matrix.Dense, tune.ResolveParams, error) {
	var req jsonMultiply
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad JSON body: %w", err)
	}
	if err := validateDims(req.M, req.N, req.K, h.cfg.MaxBodyBytes); err != nil {
		return nil, nil, tune.ResolveParams{}, err
	}
	if len(req.A) != req.M*req.K {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: a has %d elements, want m*k = %d", len(req.A), req.M*req.K)
	}
	if len(req.B) != req.K*req.N {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: b has %d elements, want k*n = %d", len(req.B), req.K*req.N)
	}
	rp, err := h.resolveParams(reqKnobs{
		procs: req.Procs, alg: req.Alg, grid: req.Grid,
		groups: req.Groups, blockSize: req.BlockSize, outer: req.OuterBlockSize,
		bcast: req.Broadcast, segments: req.Segments, threads: req.Threads,
		strassenLevels:      req.StrassenLevels,
		strassenInnerGroups: req.StrassenInnerGroups,
		localStrassen:       req.LocalStrassen,
		strassenCutoff:      req.StrassenCutoff,
	})
	if err != nil {
		return nil, nil, tune.ResolveParams{}, err
	}
	return matrix.FromSlice(req.M, req.K, req.A), matrix.FromSlice(req.K, req.N, req.B), rp, nil
}

// parseRaw decodes the raw body: m*k float64s of A immediately followed by
// k*n float64s of B, little-endian; the shape and config arrive as query
// parameters (m, k, n, procs, algorithm, grid=SxT, groups, block_size,
// outer_block_size, broadcast, segments, threads, strassen_levels,
// strassen_inner_groups, local_strassen, strassen_cutoff).
func (h *handler) parseRaw(r *http.Request) (*matrix.Dense, *matrix.Dense, tune.ResolveParams, error) {
	q := r.URL.Query()
	geti := func(name string) (int, error) {
		v := q.Get(name)
		if v == "" {
			return 0, nil
		}
		return strconv.Atoi(v)
	}
	m, err := geti("m")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad m: %w", err)
	}
	n, err := geti("n")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad n: %w", err)
	}
	k, err := geti("k")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad k: %w", err)
	}
	if m <= 0 || n <= 0 || k <= 0 {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: raw bodies need positive m, k, n query parameters (have %d, %d, %d)", m, k, n)
	}
	if err := validateDims(m, n, k, h.cfg.MaxBodyBytes); err != nil {
		return nil, nil, tune.ResolveParams{}, err
	}
	procs, err := geti("procs")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad procs: %w", err)
	}
	groups, err := geti("groups")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad groups: %w", err)
	}
	blockSize, err := geti("block_size")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad block_size: %w", err)
	}
	outer, err := geti("outer_block_size")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad outer_block_size: %w", err)
	}
	segments, err := geti("segments")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad segments: %w", err)
	}
	threads, err := geti("threads")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad threads: %w", err)
	}
	strassenLevels, err := geti("strassen_levels")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad strassen_levels: %w", err)
	}
	strassenGroups, err := geti("strassen_inner_groups")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad strassen_inner_groups: %w", err)
	}
	strassenCutoff, err := geti("strassen_cutoff")
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad strassen_cutoff: %w", err)
	}
	localStrassen := false
	if v := q.Get("local_strassen"); v != "" {
		localStrassen, err = strconv.ParseBool(v)
		if err != nil {
			return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad local_strassen: %w", err)
		}
	}
	var grid []int
	if g := q.Get("grid"); g != "" {
		parts := strings.Split(g, "x")
		if len(parts) != 2 {
			return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad grid %q (want SxT)", g)
		}
		s, err1 := strconv.Atoi(parts[0])
		t, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: bad grid %q (want SxT)", g)
		}
		grid = []int{s, t}
	}
	rp, err := h.resolveParams(reqKnobs{
		procs: procs, alg: q.Get("algorithm"), grid: grid,
		groups: groups, blockSize: blockSize, outer: outer,
		bcast: q.Get("broadcast"), segments: segments, threads: threads,
		strassenLevels:      strassenLevels,
		strassenInnerGroups: strassenGroups,
		localStrassen:       localStrassen,
		strassenCutoff:      strassenCutoff,
	})
	if err != nil {
		return nil, nil, tune.ResolveParams{}, err
	}

	need := (m*k + k*n) * 8
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: reading body: %w", err)
	}
	if len(body) != need {
		return nil, nil, tune.ResolveParams{}, fmt.Errorf("serve: raw body has %d bytes, want (m*k + k*n)*8 = %d", len(body), need)
	}
	decode := func(off, elems int) []float64 {
		out := make([]float64, elems)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8*i:]))
		}
		return out
	}
	a := matrix.FromSlice(m, k, decode(0, m*k))
	b := matrix.FromSlice(k, n, decode(m*k*8, k*n))
	return a, b, rp, nil
}

// reqKnobs carries the configuration knobs of one multiply request in
// wire form, before name resolution; both body formats (JSON fields,
// raw-body query parameters) decode into it.
type reqKnobs struct {
	procs                    int
	alg                      string
	grid                     []int
	groups, blockSize, outer int
	bcast                    string
	segments, threads        int
	strassenLevels           int
	strassenInnerGroups      int
	localStrassen            bool
	strassenCutoff           int
}

// resolveParams assembles the shared resolution input from request knobs,
// applying the handler's defaults.
func (h *handler) resolveParams(kn reqKnobs) (tune.ResolveParams, error) {
	if kn.threads < 0 {
		return tune.ResolveParams{}, fmt.Errorf("serve: threads must be non-negative, have %d", kn.threads)
	}
	rp := tune.ResolveParams{
		Procs:               kn.procs,
		Groups:              kn.groups,
		BlockSize:           kn.blockSize,
		OuterBlockSize:      kn.outer,
		Segments:            kn.segments,
		Threads:             kn.threads,
		StrassenLevels:      kn.strassenLevels,
		StrassenInnerGroups: kn.strassenInnerGroups,
		LocalStrassen:       kn.localStrassen,
		StrassenCutoff:      kn.strassenCutoff,
		Platform:            h.cfg.Platform,
	}
	if rp.Procs <= 0 {
		rp.Procs = h.cfg.DefaultProcs
	}
	if kn.alg != "" {
		a, err := engine.AlgorithmByName(kn.alg)
		if err != nil {
			return tune.ResolveParams{}, err
		}
		rp.Algorithm = a
	}
	if len(kn.grid) == 2 {
		g, err := topo.NewGrid(kn.grid[0], kn.grid[1])
		if err != nil {
			return tune.ResolveParams{}, err
		}
		rp.Grid = &g
	} else if len(kn.grid) != 0 {
		return tune.ResolveParams{}, fmt.Errorf("serve: grid must be [S, T], have %v", kn.grid)
	}
	if kn.bcast != "" {
		b, err := sched.ByName(kn.bcast)
		if err != nil {
			return tune.ResolveParams{}, err
		}
		rp.Broadcast = b
	}
	return rp, nil
}

// writeRawMatrix streams a matrix as little-endian float64s.
func writeRawMatrix(w io.Writer, m *matrix.Dense) {
	buf := make([]byte, 8*m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j, v := range row {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(v))
		}
		w.Write(buf)
	}
}

// plan serves the autotuning planner: GET /plan?m=&n=&k=&p=&platform=&quick=.
func (h *handler) plan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	geti := func(name string) (int, error) {
		v := q.Get(name)
		if v == "" {
			return 0, nil
		}
		return strconv.Atoi(v)
	}
	n, err := geti("n")
	if err != nil {
		httpError(w, err)
		return
	}
	m, err := geti("m")
	if err != nil {
		httpError(w, err)
		return
	}
	k, err := geti("k")
	if err != nil {
		httpError(w, err)
		return
	}
	p, err := geti("p")
	if err != nil {
		httpError(w, err)
		return
	}
	if p <= 0 {
		p = h.cfg.DefaultProcs
	}
	if m <= 0 {
		m = n
	}
	if k <= 0 {
		k = n
	}
	if n <= 0 || m <= 0 || k <= 0 {
		httpError(w, fmt.Errorf("serve: /plan needs n (square) or m, n, k"))
		return
	}
	if m > maxDim || n > maxDim || k > maxDim || p > maxPlanProcs {
		httpError(w, fmt.Errorf("serve: /plan problem too large (dims <= %d, p <= %d)", maxDim, maxPlanProcs))
		return
	}
	pf := platform.Grid5000()
	if h.cfg.Platform != nil {
		pf = *h.cfg.Platform
	}
	if name := q.Get("platform"); name != "" {
		pf, err = platform.ByName(name)
		if err != nil {
			httpError(w, err)
			return
		}
	}
	quick := q.Get("quick") != "0" // quick by default: this is a serving hot path
	pl, err := tune.PlanFor(tune.Request{
		Platform: pf,
		Shape:    matrix.Shape{M: m, N: n, K: k},
		P:        p,
		Quick:    quick,
		// The same full-scale guard both implicit-auto paths apply: above
		// AutoProcs ranks a single stage-2 virtual run costs seconds of
		// host CPU, far too much for an unauthenticated endpoint.
		AnalyticOnly: p > tune.AutoProcs,
	})
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(pl)
}

// metrics renders the scheduler and plan-cache counters in Prometheus text
// exposition format.
func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	m := h.sc.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	emit := func(name, help, typ string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	emit("hsumma_serve_requests_total", "Multiply requests received.", "counter", float64(m.Requests))
	emit("hsumma_serve_completed_total", "Multiply requests completed successfully.", "counter", float64(m.Completed))
	emit("hsumma_serve_errors_total", "Multiply requests failed (excluding backpressure).", "counter", float64(m.Errors))
	emit("hsumma_serve_rejected_total", "Multiply requests rejected by backpressure (503).", "counter", float64(m.Rejected))
	emit("hsumma_serve_session_hits_total", "Requests routed to a resident session.", "counter", float64(m.SessionHits))
	emit("hsumma_serve_session_misses_total", "Requests that had to spin up a session.", "counter", float64(m.SessionMisses))
	emit("hsumma_serve_sessions_retired_total", "Sessions retired under the core budget.", "counter", float64(m.SessionsRetired))
	emit("hsumma_serve_sessions_live", "Resident sessions.", "gauge", float64(m.SessionsLive))
	emit("hsumma_serve_ranks_live", "Resident ranks across all sessions.", "gauge", float64(m.RanksLive))
	emit("hsumma_serve_cores_live", "Resident cores (ranks × threads) across all sessions — the budget unit.", "gauge", float64(m.CoresLive))
	emit("hsumma_serve_queued", "Requests waiting in session queues.", "gauge", float64(m.Queued))
	emit("hsumma_serve_in_flight", "Requests executing right now.", "gauge", float64(m.InFlight))
	emit("hsumma_serve_leases_active", "Requests holding a routing lease right now.", "gauge", float64(m.LeasesActive))
	emit("hsumma_serve_plan_cache_hits_total", "Tune plan-cache hits.", "counter", float64(m.PlanCacheHits))
	emit("hsumma_serve_plan_cache_misses_total", "Tune plan-cache misses.", "counter", float64(m.PlanCacheMisses))
	emit("hsumma_serve_plan_sim_runs_total", "Stage-2 virtual runs the tune planner executed.", "counter", float64(m.PlanSimRuns))
	emit("hsumma_serve_plan_refine_seconds_total", "Wall time spent inside the planner's stage-2 refinement.", "counter", m.PlanRefineSeconds)
	emit("hsumma_serve_pipeline_overlap_seconds_total", "Staging time that overlapped an execution (double-buffering win).", "counter", m.PipelineOverlapSeconds)
	emit("hsumma_serve_batch_size_mean", "Mean coalesced batch size across completed requests.", "gauge", m.BatchSizeMean)
	emit("hsumma_serve_plan_stale_total", "Requests whose sustained measured/predicted drift marked their plan stale.", "counter", float64(m.PlanStale))
	emit("hsumma_serve_trace_sampled_total", "Requests sampled into the flight recorder.", "counter", float64(m.TraceSampled))
	emit("hsumma_serve_model_drift_p50", "Median measured/predicted cost ratio across completed requests (1.0 = plan model exact).", "gauge", m.ModelDriftP50)
	emit("hsumma_serve_uptime_seconds", "Process uptime.", "gauge", time.Since(startTime).Seconds())
	fmt.Fprintf(w, "# HELP hsumma_serve_latency_seconds Completed-request latency quantiles over a sliding window.\n")
	fmt.Fprintf(w, "# TYPE hsumma_serve_latency_seconds summary\n")
	fmt.Fprintf(w, "hsumma_serve_latency_seconds{quantile=\"0.5\"} %g\n", m.LatencyP50Seconds)
	fmt.Fprintf(w, "hsumma_serve_latency_seconds{quantile=\"0.99\"} %g\n", m.LatencyP99Seconds)
	h.sc.histQueue.write(w)
	h.sc.histStage.write(w)
	h.sc.histExec.write(w)
	h.sc.histE2E.write(w)
	h.sc.histBatch.write(w)
	h.sc.histDrift.write(w)
}
