package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/tune"
)

// serialConfig selects the strictly serial PR-7-equivalent runner.
var serialConfig = SessionConfig{PipelineDepth: 1, MaxBatch: 1}

// newSessionPair builds a pipelined session and its serial twin over the
// same resolved spec.
func newSessionPair(t *testing.T, shape matrix.Shape, rp tune.ResolveParams, piped SessionConfig) (*Session, *Session) {
	t.Helper()
	rp.Shape = shape
	spec, err := tune.ResolveSpec(rp)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSession(shape, spec, piped)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(shape, spec, serialConfig)
	if err != nil {
		p.Close()
		t.Fatal(err)
	}
	return p, s
}

// TestPipelinedBitIdenticalToSerial locks in the tentpole's correctness
// contract: the double-buffered staging path produces bit-for-bit the same
// result as the serial runner, for divisible and padded shapes alike.
func TestPipelinedBitIdenticalToSerial(t *testing.T) {
	for _, tc := range []struct {
		name  string
		shape matrix.Shape
	}{
		{"divisible", matrix.Square(32)},
		{"padded", matrix.Shape{M: 30, N: 26, K: 22}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			piped, serial := newSessionPair(t, tc.shape, tune.ResolveParams{Procs: 4}, SessionConfig{})
			defer piped.Close()
			defer serial.Close()
			for i := 0; i < 4; i++ {
				a := matrix.Random(tc.shape.M, tc.shape.K, uint64(100+i))
				b := matrix.Random(tc.shape.K, tc.shape.N, uint64(200+i))
				got, _, err := piped.Multiply(a, b)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := serial.Multiply(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if d := matrix.MaxAbsDiff(got, want); d != 0 {
					t.Fatalf("call %d: pipelined differs from serial by %g (want bit-identical)", i, d)
				}
			}
		})
	}
}

// TestBatchCoalescingBitIdentical forces a deterministic coalesced batch
// through the beforeStage hook and checks each request's slice of the
// batched product is bit-identical to the serial runner's unbatched result.
// Multi-RHS batching preserves bitwise results because C[i,j] is a
// K-ordered dot product independent of neighbouring columns: the kernel's
// accumulation order depends only on K, which batching does not change.
func TestBatchCoalescingBitIdentical(t *testing.T) {
	shape := matrix.Shape{M: 30, N: 26, K: 22} // padded: fringe invariants in play
	rp := tune.ResolveParams{Procs: 4}
	rp.Shape = shape
	spec, err := tune.ResolveSpec(rp)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := NewSession(shape, spec, SessionConfig{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer piped.Close()
	serial, err := NewSession(shape, spec, serialConfig)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()

	// Gate the stager: it parks with the first job in hand until stageGate
	// admits the staging pass, so the queue fills deterministically behind
	// the lead.
	stageGate := make(chan struct{})
	piped.beforeStage = func() { <-stageGate }

	a := matrix.Random(shape.M, shape.K, 1)
	bs := make([]*matrix.Dense, 3)
	for i := range bs {
		bs[i] = matrix.Random(shape.K, shape.N, uint64(2+i))
	}

	type result struct {
		out   *matrix.Dense
		stats Stats
		err   error
	}
	results := make([]result, len(bs))
	var wg sync.WaitGroup
	for i, b := range bs {
		wg.Add(1)
		go func(i int, b *matrix.Dense) {
			defer wg.Done()
			out, st, err := piped.Multiply(a, b)
			results[i] = result{out, st, err}
		}(i, b)
	}
	// The stager holds the first request as its parked lead; wait until the
	// other two actually sit in the jobs channel (QueueLen would count a
	// sender that reserved a slot but has not finished its send), then
	// admit the staging pass: the stager must coalesce all three into one
	// batch (they share A by pointer).
	for len(piped.jobs) < len(bs)-1 || piped.QueueLen() < len(bs) {
		time.Sleep(time.Millisecond)
	}
	stageGate <- struct{}{}
	close(stageGate) // admit all further passes
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if r.stats.BatchSize != len(bs) {
			t.Fatalf("request %d: BatchSize = %d, want %d", i, r.stats.BatchSize, len(bs))
		}
		want, _, err := serial.Multiply(a, bs[i])
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(r.out, want); d != 0 {
			t.Fatalf("request %d: batched result differs from unbatched by %g (want bit-identical)", i, d)
		}
	}
	if mb := piped.Calls(); mb != int64(len(bs)) {
		t.Fatalf("Calls() = %d, want %d", mb, len(bs))
	}
}

// TestPipelinedSchedulerMixedShapesRace pushes concurrent mixed-shape
// traffic — including a padded and an exact shape that share one spec key
// but must not share a session — through a pipelined, batching scheduler
// and checks every result bit-identical to an unpipelined session oracle.
// Run under -race this doubles as the pipeline's data-race test.
func TestPipelinedSchedulerMixedShapesRace(t *testing.T) {
	shapes := []struct {
		shape matrix.Shape
		rp    tune.ResolveParams
	}{
		// 16³ and 15×16×16 resolve to the same padded execution shape (and
		// spec key) with BlockSize 4 on a 2x2 grid.
		{matrix.Square(16), tune.ResolveParams{Procs: 4, BlockSize: 4}},
		{matrix.Shape{M: 15, N: 16, K: 16}, tune.ResolveParams{Procs: 4, BlockSize: 4}},
		{matrix.Shape{M: 24, N: 24, K: 24}, tune.ResolveParams{Procs: 4}},
	}

	// Oracle: serial sessions, one per shape, exercised before the
	// concurrent phase.
	type workload struct {
		shape matrix.Shape
		rp    tune.ResolveParams
		a, b  *matrix.Dense
		want  *matrix.Dense
	}
	var work []workload
	for si, sh := range shapes {
		rp := sh.rp
		rp.Shape = sh.shape
		spec, err := tune.ResolveSpec(rp)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := NewSession(sh.shape, spec, serialConfig)
		if err != nil {
			t.Fatal(err)
		}
		// Two operand pairs per shape; the first A is shared across both so
		// same-key batching can engage under concurrency.
		a0 := matrix.Random(sh.shape.M, sh.shape.K, uint64(1000+si))
		for v := 0; v < 2; v++ {
			b := matrix.Random(sh.shape.K, sh.shape.N, uint64(2000+10*si+v))
			want, _, err := oracle.Multiply(a0, b)
			if err != nil {
				oracle.Close()
				t.Fatal(err)
			}
			work = append(work, workload{sh.shape, sh.rp, a0, b, want})
		}
		oracle.Close()
	}

	sc := NewScheduler(SchedulerConfig{CoreBudget: 64, QueueDepth: 64})
	defer sc.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for it := 0; it < 6; it++ {
				wl := work[(seed+it)%len(work)]
				rp := wl.rp
				out, _, err := sc.Multiply(wl.a, wl.b, rp)
				if err != nil {
					errCh <- err
					return
				}
				if d := matrix.MaxAbsDiff(out, wl.want); d != 0 {
					errCh <- &mismatchError{d}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// The same-spec-key shapes must still occupy distinct sessions.
	keys := map[string]bool{}
	for _, s := range sc.Sessions() {
		keys[s.Key()+"|"+s.Shape().String()] = true
	}
	if len(keys) < 3 {
		t.Fatalf("expected ≥3 distinct sessions, have %v", keys)
	}
}

type mismatchError struct{ d float64 }

func (e *mismatchError) Error() string { return "result differs from oracle (bitwise)" }

// TestIdleAccountsStagedWork locks in the scheduler-safety satellite: a
// request staged in the pipeline handoff (not yet executing) keeps the
// session non-idle, so LRU retirement can never reap it mid-flight.
func TestIdleAccountsStagedWork(t *testing.T) {
	shape := matrix.Square(16)
	rp := tune.ResolveParams{Procs: 4}
	rp.Shape = shape
	spec, err := tune.ResolveSpec(rp)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(shape, spec, SessionConfig{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	sess.beforeRun = func() {
		started <- struct{}{}
		<-gate
	}

	res := make(chan error, 2)
	a := matrix.Random(16, 16, 1)
	b := matrix.Random(16, 16, 2)
	go func() { _, _, err := sess.Multiply(a, b); res <- err }()
	<-started // first request executing (parked in beforeRun)
	go func() { _, _, err := sess.Multiply(a, b); res <- err }()
	// Wait for the second request to leave the queue and sit staged in the
	// pipeline: queued-or-staged stays 1 while the channel itself is empty.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sess.mu.Lock()
		staged := sess.stagedN
		sess.mu.Unlock()
		if staged >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the staged state")
		}
		time.Sleep(time.Millisecond)
	}
	if sess.Idle() {
		t.Fatal("Idle() = true with a request staged in the pipeline handoff")
	}
	if sess.QueueLen() < 1 {
		t.Fatalf("QueueLen() = %d, want ≥1 (staged request must count)", sess.QueueLen())
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-res; err != nil {
			t.Fatal(err)
		}
	}
	// With everything complete the session settles idle again.
	for !sess.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("session never returned to idle")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSquareOnlySpecsNeverBatch checks the cannot-batch fallback: a
// square-only algorithm (Cannon) serves same-A concurrent requests
// correctly with BatchSize pinned to 1.
func TestSquareOnlySpecsNeverBatch(t *testing.T) {
	shape := matrix.Square(16)
	spec, err := tune.ResolveSpec(tune.ResolveParams{
		Shape: shape, Procs: 4, Algorithm: engine.Cannon,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(shape, spec, SessionConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.batchable {
		t.Fatal("square-only spec marked batchable")
	}
	a := matrix.Random(16, 16, 1)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := matrix.Random(16, 16, uint64(10+i))
			out, st, err := sess.Multiply(a, b)
			if err != nil {
				errs <- err
				return
			}
			if st.BatchSize != 1 {
				errs <- &mismatchError{float64(st.BatchSize)}
				return
			}
			if d := matrix.MaxAbsDiff(out, reference(a, b)); d > oracleTol {
				errs <- &mismatchError{d}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStrassenNeverBatches pins the same fallback for the strassen
// algorithm: widening the RHS makes the problem rectangular, which the
// quadrant recursion rejects (ErrSquareOnly), so the session must refuse
// same-A coalescing and serve each request with BatchSize 1.
func TestStrassenNeverBatches(t *testing.T) {
	shape := matrix.Square(16)
	spec, err := tune.ResolveSpec(tune.ResolveParams{
		Shape: shape, Procs: 4, Algorithm: engine.Strassen, BlockSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(shape, spec, SessionConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.batchable {
		t.Fatal("strassen spec marked batchable")
	}
	a := matrix.Random(16, 16, 1)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := matrix.Random(16, 16, uint64(10+i))
			out, st, err := sess.Multiply(a, b)
			if err != nil {
				errs <- err
				return
			}
			if st.BatchSize != 1 {
				errs <- &mismatchError{float64(st.BatchSize)}
				return
			}
			if d := matrix.MaxAbsDiff(out, reference(a, b)); d > oracleTol {
				errs <- &mismatchError{d}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
