package serve

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/tune"
)

// oracleTol bounds the difference between the served product and the
// sequential oracle: the packed register-tiled kernel accumulates each
// entry through per-kc-block partial sums (and FMA on amd64), a different
// float association than Naive's strictly serial one.
const oracleTol = 1e-9

// reference computes the oracle product.
func reference(a, b *matrix.Dense) *matrix.Dense {
	c := matrix.New(a.Rows, b.Cols)
	blas.Naive(c, a, b)
	return c
}

// TestSessionCorrectness checks repeated multiplies of fresh operands on
// one session against the sequential oracle, including a padded
// (non-divisible) shape where the reused pad fringe must stay zero.
func TestSessionCorrectness(t *testing.T) {
	cases := []struct {
		name  string
		shape matrix.Shape
		rp    tune.ResolveParams
	}{
		{"divisible", matrix.Square(32), tune.ResolveParams{Procs: 4}},
		{"padded", matrix.Shape{M: 30, N: 26, K: 22}, tune.ResolveParams{Procs: 4}},
		{"rect", matrix.Shape{M: 48, N: 16, K: 32}, tune.ResolveParams{Procs: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rp := tc.rp
			rp.Shape = tc.shape
			spec, err := tune.ResolveSpec(rp)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := NewSession(tc.shape, spec, SessionConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			for i := 0; i < 3; i++ {
				a := matrix.Random(tc.shape.M, tc.shape.K, uint64(10*i+1))
				b := matrix.Random(tc.shape.K, tc.shape.N, uint64(10*i+2))
				got, stats, err := sess.Multiply(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if d := matrix.MaxAbsDiff(got, reference(a, b)); d > oracleTol {
					t.Fatalf("call %d: max |diff| = %g vs oracle", i, d)
				}
				if stats.Messages == 0 || stats.WallSeconds <= 0 {
					t.Fatalf("call %d: implausible stats %+v", i, stats)
				}
			}
			if sess.Calls() != 3 {
				t.Fatalf("Calls() = %d, want 3", sess.Calls())
			}
		})
	}
}

// TestSessionShapeMismatch checks operands of the wrong shape are rejected
// without touching the queue.
func TestSessionShapeMismatch(t *testing.T) {
	shape := matrix.Square(16)
	spec, err := tune.ResolveSpec(tune.ResolveParams{Shape: shape, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(shape, spec, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, _, err := sess.Multiply(matrix.New(8, 16), matrix.New(16, 16)); err == nil {
		t.Fatal("mismatched operands accepted")
	}
}

// TestSessionConcurrentCallers drives one session from many goroutines:
// the queue must serialise them and every result must be exact.
func TestSessionConcurrentCallers(t *testing.T) {
	shape := matrix.Square(24)
	spec, err := tune.ResolveSpec(tune.ResolveParams{Shape: shape, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(shape, spec, SessionConfig{QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const callers = 12
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := matrix.Random(shape.M, shape.K, uint64(i+1))
			b := matrix.Random(shape.K, shape.N, uint64(i+100))
			got, _, err := sess.Multiply(a, b)
			if err != nil {
				errs <- err
				return
			}
			if d := matrix.MaxAbsDiff(got, reference(a, b)); d > oracleTol {
				errs <- errors.New("wrong product under concurrency")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if sess.Calls() != callers {
		t.Fatalf("Calls() = %d, want %d", sess.Calls(), callers)
	}
}

// TestSessionDrainOnClose checks the graceful-drain contract: the
// in-flight request finishes with a correct result, queued requests fail
// with ErrClosed, and new submissions after Close fail with ErrClosed.
func TestSessionDrainOnClose(t *testing.T) {
	shape := matrix.Square(16)
	spec, err := tune.ResolveSpec(tune.ResolveParams{Shape: shape, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(shape, spec, SessionConfig{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	sess.beforeRun = func() {
		started <- struct{}{}
		<-gate
	}

	a := matrix.Random(shape.M, shape.K, 1)
	b := matrix.Random(shape.K, shape.N, 2)

	type result struct {
		out *matrix.Dense
		err error
	}
	inflight := make(chan result, 1)
	go func() {
		out, _, err := sess.Multiply(a, b)
		inflight <- result{out, err}
	}()
	<-started // the first request is now executing, parked on the gate

	queuedRes := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, _, err := sess.Multiply(a, b)
			queuedRes <- err
		}()
	}
	// Wait until all three sit in the queue behind the gated request.
	for sess.QueueLen() < 3 {
		runtime.Gosched()
	}

	closed := make(chan struct{})
	go func() {
		sess.Close()
		close(closed)
	}()
	close(gate) // release the in-flight request
	<-closed

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request should finish cleanly, got %v", r.err)
	}
	if d := matrix.MaxAbsDiff(r.out, reference(a, b)); d > oracleTol {
		t.Fatalf("in-flight result wrong after drain: %g", d)
	}
	for i := 0; i < 3; i++ {
		if err := <-queuedRes; !errors.Is(err, ErrClosed) {
			t.Fatalf("queued request %d: want ErrClosed, got %v", i, err)
		}
	}
	if _, _, err := sess.Multiply(a, b); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: want ErrClosed, got %v", err)
	}
}

// TestSessionBackpressure checks TryMultiply's bounded-queue rejection.
func TestSessionBackpressure(t *testing.T) {
	shape := matrix.Square(16)
	spec, err := tune.ResolveSpec(tune.ResolveParams{Shape: shape, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(shape, spec, SessionConfig{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	sess.beforeRun = func() {
		started <- struct{}{}
		<-gate
	}
	a := matrix.Random(shape.M, shape.K, 1)
	b := matrix.Random(shape.K, shape.N, 2)

	res := make(chan error, 2)
	go func() { _, _, err := sess.Multiply(a, b); res <- err }()
	<-started // executing, parked
	go func() { _, _, err := sess.Multiply(a, b); res <- err }()
	for sess.QueueLen() < 1 {
		runtime.Gosched()
	} // the queue (depth 1) is now full

	if _, _, err := sess.TryMultiply(a, b); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: want ErrOverloaded, got %v", err)
	}

	close(gate)
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	sess.Close()
}
