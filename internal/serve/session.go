// Package serve is the GEMM-as-a-service layer: it keeps the distributed
// runtime resident between multiplications so the paper's carefully tuned
// HSUMMA schedules are amortised over a *stream* of products instead of
// exactly one — the master-worker serving design of Dongarra et al.
// (Revisiting Matrix Product on Master-Worker Platforms) layered over this
// repository's transport-agnostic engine.
//
// Three pieces compose the subsystem:
//
//   - Session: a persistent mpi world whose rank goroutines stay resident
//     and loop on a per-session work queue, pinned to one resolved
//     execution spec. Block maps and scatter tiles are built once and
//     reused, so a repeat multiply of the same shape pays data movement and
//     compute only — no spawn, no plan, no map construction, no tile
//     allocation. The runner is a two-stage pipeline: a stager scatters
//     request i+1's operands into a second buffer set while the ranks
//     compute request i (double buffering), and queued requests that share
//     the A operand are coalesced into one batched multi-RHS execution.
//
//   - Scheduler: the admission-controlled front door. Requests are keyed by
//     their execution-shape key (engine.Spec.Key) and routed to a pool of
//     sessions, spinning sessions up on miss and retiring idle ones under a
//     configurable rank budget; bounded queues apply backpressure
//     (ErrOverloaded) and counters expose hits/misses, queue depths and
//     latency quantiles.
//
//   - HTTP handler (http.go): POST /multiply (JSON or raw little-endian
//     float64 bodies), GET /plan and GET /metrics over a Scheduler — the
//     daemon face cmd/hsumma-serve serves.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// Typed serving errors, reported via errors.Is through every layer
// (Session, Scheduler, and as HTTP status codes by the handler).
var (
	// ErrClosed reports a request submitted to (or queued on) a session or
	// scheduler that has been closed; queued requests receive it during a
	// graceful drain while in-flight ones finish normally.
	ErrClosed = errors.New("serve: closed")
	// ErrOverloaded reports backpressure: a bounded queue was full or the
	// core budget could not admit a new session right now. Clients should
	// retry with backoff (the HTTP layer maps it to 503 + Retry-After).
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrTooLarge reports a request that can never be admitted — it needs
	// more cores (ranks × threads) than the scheduler's whole budget — so
	// retrying is pointless (the HTTP layer maps it to 400, not 503).
	ErrTooLarge = errors.New("serve: request exceeds the core budget")
)

// Stats reports one multiplication's execution statistics — the serving
// analogue of the façade's hsumma.Stats, extended with the wall/setup
// decomposition that makes the session-reuse win measurable.
type Stats struct {
	// Messages and Bytes are rank-traffic totals, identical to what a
	// one-shot run of the same spec reports. Requests served as part of a
	// coalesced batch report the whole batched run's traffic (the run is
	// shared; per-request attribution would be fiction).
	Messages int64
	Bytes    int64
	// MaxRankCommSeconds is the largest per-rank wall time spent inside
	// communication calls.
	MaxRankCommSeconds float64
	// WallSeconds is the end-to-end request time: queue wait + setup +
	// distributed run + gather.
	WallSeconds float64
	// SetupSeconds is the pre-run data-staging time paid on this request:
	// operand scatter + output-tile zeroing (shared across a batch), plus —
	// on the one-shot path only — spec resolution, block-map construction
	// and tile allocation. Warm sessions skip that second group entirely,
	// and the pipelined runner overlaps this stage with the previous
	// request's execution.
	SetupSeconds float64
	// QueueSeconds is the time the request waited behind earlier work on
	// the session queue before staging began.
	QueueSeconds float64
	// RunSeconds is the distributed execution itself — the resident world
	// run (of the whole batch, when coalesced), excluding queueing, staging
	// and gather.
	RunSeconds float64
	// GemmSeconds is the largest per-rank time inside local multiplies.
	GemmSeconds float64
	// CommSecondsByPhase breaks the critical rank's communication time
	// down by phase ("bcast", "shift", "p2p"); entries sum to
	// MaxRankCommSeconds.
	CommSecondsByPhase map[string]float64
	// BusyImbalance is max/mean per-rank busy (comm + gemm) time.
	BusyImbalance float64
	// SpecKey is the execution-shape key of the session that served the
	// request — the label the serve histograms and pprof samples carry.
	SpecKey string
	// BatchSize is the number of same-A requests coalesced into the single
	// execution that served this request (1 = unbatched).
	BatchSize int
	// OverlapSeconds is this request's share of staging time that ran
	// concurrently with another request's execution — the double-buffering
	// win, measured (0 on the serial path).
	OverlapSeconds float64
	// PipelineOccupancy is the number of requests resident in the session
	// (executing + staged + queued) when this request's execution began.
	PipelineOccupancy int
	// PredictedSecondsByPhase is the tuner's closed-form per-phase cost
	// prediction for the session's resolved spec, evaluated for the plan's
	// target platform. Comparing it against the measured CommSecondsByPhase
	// and GemmSeconds is the serving layer's plan-fidelity signal.
	PredictedSecondsByPhase map[string]float64
	// ModelDriftRatio is measured/predicted total seconds for the phases
	// the model predicted (0 when no prediction was available). Maintained
	// by the scheduler's drift tracker; 1.0 means the plan's cost model
	// matched reality exactly.
	ModelDriftRatio float64
	// TraceID names the flight-recorder capture this request was sampled
	// into (empty when the request was not sampled). The same id appears in
	// the request log record and at GET /debug/traces/{id}.
	TraceID string
}

// SessionConfig tunes a session's queueing and pipelining behaviour. The
// zero value means "serving defaults": QueueDepth 32, double-buffered
// staging (PipelineDepth 2) and opportunistic batching up to 8 requests.
// PipelineDepth:1 together with MaxBatch:1 selects the strictly serial
// stage→execute→gather runner, bit-identical to the pre-pipelining layer.
type SessionConfig struct {
	// QueueDepth bounds the session's admission window — requests queued or
	// staged but not yet executing (default 32). Submit blocks when it is
	// full; TrySubmit returns ErrOverloaded.
	QueueDepth int
	// PipelineDepth is the number of staging buffer sets the runner ping-
	// pongs between. 0 defaults to 2 (double buffering: stage request i+1
	// while request i executes); 1 disables pipelining entirely and runs
	// the serial single-goroutine path.
	PipelineDepth int
	// MaxBatch caps how many queued same-A requests the stager coalesces
	// into one multi-RHS execution. 0 defaults to 8; 1 disables batching.
	// Batching needs the algorithm to accept a widened RHS, so square-only
	// specs (Cannon, Fox) never batch regardless of this knob.
	MaxBatch int
	// BatchWindow is how long the stager, holding a batch smaller than
	// MaxBatch with an empty queue, waits for further coalescible arrivals
	// before staging what it has. 0 (the default) coalesces only requests
	// already queued — no added latency.
	BatchWindow time.Duration
}

// batchPlan is the distribution state for one batch width: the spec
// re-padded for N' = k·N_req and the B/C block maps of that widened shape.
// The A-side map is width-independent and lives on the session.
type batchPlan struct {
	spec     engine.Spec
	bmB, bmC *dist.BlockMap
}

// bufset is one staging buffer set the pipeline ping-pongs between: the
// A tiles plus, per batch width, the B/C tiles of that width's plan.
// Buffers are allocated on first use and owned by whichever pipeline stage
// holds the set (possession moves through channels, so no locking).
type bufset struct {
	aT  []*matrix.Dense
	rhs map[int]*rhsBufs
}

// rhsBufs holds the RHS-side tiles for one batch width.
type rhsBufs struct {
	bT, cT []*matrix.Dense
}

// staged is a fully staged batch in flight between the stager and the
// executor.
type staged struct {
	bs   *bufset
	rb   *rhsBufs
	plan *batchPlan
	jobs []*job
	rec  *trace.Recorder
}

// Session is a persistent execution context for one resolved spec: a
// resident mpi world plus the reusable data-staging state (block maps and
// per-pipeline-slot scatter tiles). Concurrent Multiply calls are admitted
// through the session queue and served in arrival order; the pipelined
// runner overlaps one request's staging with another's execution and may
// coalesce same-A requests into one batched run. Close drains gracefully
// (the in-flight batch finishes, queued and staged-but-unexecuted requests
// fail with ErrClosed).
type Session struct {
	spec engine.Spec
	req  matrix.Shape // requested (pre-padding) problem shape
	key  string

	world *mpi.PersistentWorld
	bmA   *dist.BlockMap
	base  *batchPlan // width-1 plan: the session's own spec and B/C maps

	// plans caches the re-padded spec and maps per batch width. Only the
	// staging goroutine touches it, so no lock is needed.
	plans     map[int]*batchPlan
	batchable bool

	depth    int // admission window (QueueDepth)
	maxBatch int
	window   time.Duration

	jobs    chan *job
	free    chan *bufset // staging buffer sets not currently holding work
	handoff chan *staged // staged batches awaiting execution
	quit    chan struct{}
	done    chan struct{} // closed when the runner exits

	mu       sync.Mutex
	closed   bool
	pending  int  // jobs reserved for the queue but not yet taken by the stager
	stagedN  int  // jobs taken by the stager (staging or staged) but not executing
	inFlight bool // a batch is currently executing

	calls     atomic.Int64
	lastUsed  atomic.Int64 // unix nanos; scheduler retirement order
	execStart atomic.Int64 // unix nanos of the running execution, 0 when idle

	// beforeRun, when set, is invoked before executing each batch;
	// beforeStage before each staging pass. Test hooks for making queue and
	// pipeline states deterministic.
	beforeRun   func()
	beforeStage func()
}

// job is one queued multiplication.
type job struct {
	a, b  *matrix.Dense
	start time.Time
	// traced asks the runner to record a span timeline for this one request
	// (the daemon's /debug/trace capture); rec holds it afterwards. Traced
	// jobs coalesced into one batch share the batch's recorder.
	traced bool
	rec    *trace.Recorder

	out   *matrix.Dense
	stats Stats
	err   error
	done  chan struct{}
}

func (j *job) finish(err error) {
	j.err = err
	close(j.done)
}

// NewSession builds a session pinned to a resolved, padded execution spec
// (as produced by tune.ResolveSpec) serving requests of the given
// pre-padding problem shape. The spec's world is spawned immediately and
// stays resident until Close.
func NewSession(reqShape matrix.Shape, spec engine.Spec, cfg SessionConfig) (*Session, error) {
	if err := reqShape.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	es := spec.Shape() // execution shape (padded when needed)
	if es.M < reqShape.M || es.N < reqShape.N || es.K < reqShape.K {
		return nil, fmt.Errorf("serve: execution shape %v smaller than request shape %v", es, reqShape)
	}
	grid := spec.Opts.Grid
	if grid.S <= 0 || grid.T <= 0 {
		return nil, fmt.Errorf("serve: spec has no process grid (resolve it first)")
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 32
	}
	pd := cfg.PipelineDepth
	if pd <= 0 {
		pd = 2
	}
	mb := cfg.MaxBatch
	if mb <= 0 {
		mb = 8
	}
	bmA, err := dist.NewBlockMap(es.M, es.K, grid)
	if err != nil {
		return nil, err
	}
	bmB, err := dist.NewBlockMap(es.K, es.N, grid)
	if err != nil {
		return nil, err
	}
	bmC, err := dist.NewBlockMap(es.M, es.N, grid)
	if err != nil {
		return nil, err
	}
	// Label the resident rank goroutines (and the runner goroutines below)
	// with the spec key so pprof profiles attribute samples per served
	// shape.
	labels := []string{"hsumma_spec", spec.Key()}
	world, err := mpi.PersistentLabeled(grid.Size(), labels)
	if err != nil {
		return nil, err
	}
	s := &Session{
		spec: spec, req: reqShape, key: spec.Key(),
		world: world, bmA: bmA,
		base:  &batchPlan{spec: spec, bmB: bmB, bmC: bmC},
		plans: make(map[int]*batchPlan),
		depth: depth, maxBatch: mb, window: cfg.BatchWindow,
		jobs:    make(chan *job, depth),
		free:    make(chan *bufset, pd),
		handoff: make(chan *staged, pd),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	// Batching needs the algorithm to accept a widened RHS; probe once.
	if mb > 1 {
		if _, err := spec.WithRHS(2 * reqShape.N); err == nil {
			s.batchable = true
		}
	}
	// The first buffer set is allocated eagerly so a cold session's first
	// request pays scatter only (matching the historical construction
	// cost); further sets allocate on first use.
	first := &bufset{}
	s.ensureBufs(first, s.base, 1)
	s.free <- first
	for i := 1; i < pd; i++ {
		s.free <- &bufset{}
	}
	s.touch()
	runner := s.runSerial
	if pd > 1 {
		runner = s.runPipelined
	}
	go pprof.Do(context.Background(), pprof.Labels(labels...), func(context.Context) { runner() })
	return s, nil
}

// Key returns the session's execution-shape key (engine.Spec.Key) — the
// identity the scheduler routes by.
func (s *Session) Key() string { return s.key }

// Shape returns the problem shape the session serves (pre-padding).
func (s *Session) Shape() matrix.Shape { return s.req }

// Spec returns the resolved execution spec the session is pinned to.
func (s *Session) Spec() engine.Spec { return s.spec }

// Ranks returns the number of resident ranks (the session's cost against a
// scheduler rank budget).
func (s *Session) Ranks() int { return s.world.Size() }

// Calls returns the number of completed multiplications.
func (s *Session) Calls() int64 { return s.calls.Load() }

// Idle reports whether the session has no queued, no staged and no
// in-flight work — the precondition for the scheduler to retire it. A
// request sitting staged in the pipeline handoff counts as work: retiring
// the session then would drop it.
func (s *Session) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending == 0 && s.stagedN == 0 && !s.inFlight
}

// LastUsed returns the time of the session's most recent activity.
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }

func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// QueueLen returns the number of admitted requests that have not started
// executing — queued plus staged-in-pipeline.
func (s *Session) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending + s.stagedN
}

// Executing reports whether a request is running right now.
func (s *Session) Executing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inFlight
}

// Multiply computes A·B on the resident session, blocking while earlier
// requests drain (the session pipeline serves concurrent callers in
// arrival order). The operands must match the session's problem shape
// exactly.
func (s *Session) Multiply(a, b *matrix.Dense) (*matrix.Dense, Stats, error) {
	return s.submit(a, b, true, false)
}

// TryMultiply is Multiply with backpressure instead of blocking: a full
// admission window returns ErrOverloaded immediately. The scheduler's
// admission path uses it.
func (s *Session) TryMultiply(a, b *matrix.Dense) (*matrix.Dense, Stats, error) {
	return s.submit(a, b, false, false)
}

// TryMultiplyTraced is TryMultiply plus a per-rank span timeline for this
// one request — the daemon's /debug/trace capture path. Tracing is
// per-job: concurrent untraced requests on the same session pay nothing.
func (s *Session) TryMultiplyTraced(a, b *matrix.Dense) (*matrix.Dense, Stats, *trace.Recorder, error) {
	out, st, rec, err := s.submitTraced(a, b, false, true)
	return out, st, rec, err
}

func (s *Session) submit(a, b *matrix.Dense, block, traced bool) (*matrix.Dense, Stats, error) {
	out, st, _, err := s.submitTraced(a, b, block, traced)
	return out, st, err
}

func (s *Session) submitTraced(a, b *matrix.Dense, block, traced bool) (*matrix.Dense, Stats, *trace.Recorder, error) {
	if a.Rows != s.req.M || a.Cols != s.req.K || b.Rows != s.req.K || b.Cols != s.req.N {
		return nil, Stats{}, nil, fmt.Errorf("serve: operands %dx%d · %dx%d do not match session shape %v",
			a.Rows, a.Cols, b.Rows, b.Cols, s.req)
	}
	j := &job{a: a, b: b, start: time.Now(), traced: traced, done: make(chan struct{})}

	// Reserve a queue slot under the lock so a concurrent Close knows
	// exactly how many jobs its drain must fail. The admission window spans
	// queued and staged work: the stager empties the channel into the
	// pipeline, so channel occupancy alone is not the backlog.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, Stats{}, nil, ErrClosed
	}
	if !block {
		if s.pending+s.stagedN >= s.depth {
			s.mu.Unlock()
			return nil, Stats{}, nil, ErrOverloaded
		}
		s.pending++
		s.mu.Unlock()
		s.jobs <- j // admission reserved above; cannot block past depth
	} else {
		s.pending++
		s.mu.Unlock()
		// May block on a full queue; the runner (or the drain loop after a
		// concurrent Close) is guaranteed to take it.
		s.jobs <- j
	}
	<-j.done
	return j.out, j.stats, j.rec, j.err
}

// runSerial is the unpipelined runner (PipelineDepth 1): one goroutine
// stages, executes and gathers each batch in sequence — the historical
// request path, kept for bit-for-bit comparability and as the no-overlap
// baseline the loadgen measures the pipeline against.
func (s *Session) runSerial() {
	defer close(s.done)
	var held *job
	for {
		// Check quit first so a Close issued while a job was executing
		// deterministically drains the queue instead of racing it against
		// the next queued job.
		select {
		case <-s.quit:
			s.failHeld(held)
			s.drain()
			return
		default:
		}
		var lead *job
		if held != nil {
			lead, held = held, nil
		} else {
			select {
			case <-s.quit:
				s.drain()
				return
			case j := <-s.jobs:
				s.take(j)
				lead = j
			}
		}
		// The hook runs with the lead in hand (never before the first job
		// arrives) so tests can gate batch formation deterministically.
		if s.beforeStage != nil {
			s.beforeStage()
		}
		var batch []*job
		batch, held = s.collect(lead)
		bs := <-s.free
		st := s.stage(bs, batch)
		if st == nil {
			s.free <- bs
			continue
		}
		s.executeBatch(st)
	}
}

// runPipelined runs the two-stage pipeline: a stager goroutine scatters
// operands into free buffer sets and hands staged batches to an executor
// goroutine, so staging of request i+1 overlaps execution of request i.
func (s *Session) runPipelined() {
	defer close(s.done)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s.stageLoop() }()
	go func() { defer wg.Done(); s.executeLoop() }()
	wg.Wait()
	// Both loops exited on quit: fail whatever was staged but never
	// executed, then everything still queued or reserved.
	s.drainHandoff()
	s.drain()
}

// take moves one job from the queue into the pipeline's accounting.
func (s *Session) take(j *job) {
	s.mu.Lock()
	s.pending--
	s.stagedN++
	s.mu.Unlock()
}

// stageLoop is the pipeline's first stage: acquire a free buffer set, take
// the next request, coalesce compatible followers, stage the batch and
// hand it to the executor.
func (s *Session) stageLoop() {
	var held *job
	for {
		// A free buffer set first: parking here holds no jobs, so Close
		// while the pipeline is saturated fails nothing spuriously.
		var bs *bufset
		select {
		case <-s.quit:
			s.failHeld(held)
			return
		case bs = <-s.free:
		}
		var lead *job
		if held != nil {
			lead, held = held, nil
		} else {
			select {
			case <-s.quit:
				return
			case j := <-s.jobs:
				s.take(j)
				lead = j
			}
		}
		// The hook runs with the lead in hand (never before the first job
		// arrives) so tests can gate batch formation deterministically.
		if s.beforeStage != nil {
			s.beforeStage()
		}
		var batch []*job
		batch, held = s.collect(lead)
		st := s.stage(bs, batch)
		if st == nil {
			s.free <- bs
			continue
		}
		select {
		case <-s.quit:
			s.finishBatch(batch, ErrClosed, true)
			s.failHeld(held)
			return
		case s.handoff <- st:
		}
	}
}

// executeLoop is the pipeline's second stage: run staged batches on the
// resident world and gather results. Quit is checked first so a Close
// issued mid-execution deterministically fails later staged batches
// instead of racing them.
func (s *Session) executeLoop() {
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case st := <-s.handoff:
			s.executeBatch(st)
		}
	}
}

// collect coalesces queued requests behind lead that share its A operand
// into one batch (FIFO order preserved). A request with a different A ends
// the batch and is returned as the next batch's lead. With BatchWindow set
// the stager waits up to the window for further arrivals while below
// MaxBatch and the queue is empty.
func (s *Session) collect(lead *job) (batch []*job, held *job) {
	batch = []*job{lead}
	if !s.batchable || s.maxBatch <= 1 {
		return batch, nil
	}
	var deadline <-chan time.Time
	for len(batch) < s.maxBatch {
		select {
		case j := <-s.jobs:
			s.take(j)
			if !sameOperand(j.a, lead.a) {
				return batch, j
			}
			batch = append(batch, j)
		default:
			if s.window <= 0 {
				return batch, nil
			}
			if deadline == nil {
				t := time.NewTimer(s.window)
				defer t.Stop()
				deadline = t.C
			}
			select {
			case j := <-s.jobs:
				s.take(j)
				if !sameOperand(j.a, lead.a) {
					return batch, j
				}
				batch = append(batch, j)
			case <-deadline:
				return batch, nil
			case <-s.quit:
				// Let the caller's quit handling fail the batch.
				return batch, nil
			}
		}
	}
	return batch, nil
}

// sameOperand reports whether two operands are the same matrix: the same
// backing storage (the scheduler-free fast path for callers reusing one A
// across requests), or equal element-wise — an O(M·K) check, trivial next
// to the 2·M·N·K flops a missed coalescing opportunity would leave on the
// table. NaN-bearing operands never compare equal and thus never batch.
func sameOperand(x, y *matrix.Dense) bool {
	if x == y {
		return true
	}
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return false
	}
	if x.Rows == 0 || x.Cols == 0 {
		return true
	}
	if &x.Data[0] == &y.Data[0] && x.Stride == y.Stride {
		return true
	}
	for i := 0; i < x.Rows; i++ {
		xr := x.Data[i*x.Stride : i*x.Stride+x.Cols]
		yr := y.Data[i*y.Stride : i*y.Stride+y.Cols]
		for c := range xr {
			if xr[c] != yr[c] {
				return false
			}
		}
	}
	return true
}

// plan returns the batchPlan for a batch of width k, building and caching
// it on first use. Only the staging goroutine calls it.
func (s *Session) plan(k int) (*batchPlan, error) {
	if k <= 1 {
		return s.base, nil
	}
	if p, ok := s.plans[k]; ok {
		return p, nil
	}
	spec, err := s.spec.WithRHS(k * s.req.N)
	if err != nil {
		return nil, err
	}
	es := spec.Shape()
	grid := spec.Opts.Grid
	bmB, err := dist.NewBlockMap(es.K, es.N, grid)
	if err != nil {
		return nil, err
	}
	bmC, err := dist.NewBlockMap(es.M, es.N, grid)
	if err != nil {
		return nil, err
	}
	p := &batchPlan{spec: spec, bmB: bmB, bmC: bmC}
	s.plans[k] = p
	return p, nil
}

// ensureBufs returns the buffer set's RHS tiles for width k, allocating
// the A tiles and the width's B/C tiles on first use. Tiles are zeroed at
// allocation; ScatterPart rewrites exactly the request region every time,
// so the zero pad fringe is preserved across reuses.
func (s *Session) ensureBufs(bs *bufset, plan *batchPlan, k int) *rhsBufs {
	if bs.aT == nil {
		bs.aT = allocTiles(s.bmA)
	}
	if bs.rhs == nil {
		bs.rhs = make(map[int]*rhsBufs)
	}
	rb, ok := bs.rhs[k]
	if !ok {
		rb = &rhsBufs{bT: allocTiles(plan.bmB), cT: allocTiles(plan.bmC)}
		bs.rhs[k] = rb
	}
	return rb
}

func allocTiles(bm *dist.BlockMap) []*matrix.Dense {
	tiles := make([]*matrix.Dense, bm.Grid().Size())
	for r := range tiles {
		tr, tc := bm.TileShape(r)
		tiles[r] = matrix.New(tr, tc)
	}
	return tiles
}

// stage scatters a batch's operands into the buffer set: A once (shared),
// each request's B at its column offset, C zeroed. Returns nil after
// failing the batch if no execution plan exists for the width (impossible
// for widths collect admits, kept as a guard).
func (s *Session) stage(bs *bufset, batch []*job) *staged {
	k := len(batch)
	plan, err := s.plan(k)
	if err != nil {
		s.finishBatch(batch, err, true)
		return nil
	}
	stageStart := time.Now()
	var rec *trace.Recorder
	for _, j := range batch {
		j.stats.QueueSeconds = stageStart.Sub(j.start).Seconds()
		if j.traced {
			if rec == nil {
				rec = trace.New(s.world.Size())
			}
			j.rec = rec
		}
	}
	rb := s.ensureBufs(bs, plan, k)
	s.bmA.ScatterPart(bs.aT, batch[0].a, 0, 0)
	for i, j := range batch {
		plan.bmB.ScatterPart(rb.bT, j.b, 0, i*s.req.N)
	}
	for _, t := range rb.cT {
		t.Zero()
	}
	setup := time.Since(stageStart)
	if rec != nil {
		es := plan.spec.Shape()
		rec.Host(trace.PhaseScatter, rec.Since(stageStart), setup.Seconds(),
			int64(8*(es.M*es.K+es.K*es.N)), 0)
	}
	// The double-buffering win, measured: staging time spent while another
	// request's execution was in flight, attributed evenly across the
	// batch.
	var perJob float64
	if es := s.execStart.Load(); es != 0 {
		begin := stageStart.UnixNano()
		if es > begin {
			begin = es
		}
		if end := time.Now().UnixNano(); end > begin {
			perJob = float64(end-begin) / 1e9 / float64(k)
		}
	}
	for _, j := range batch {
		j.stats.SetupSeconds = setup.Seconds()
		j.stats.OverlapSeconds = perJob
	}
	s.touch()
	return &staged{bs: bs, rb: rb, plan: plan, jobs: batch, rec: rec}
}

// executeBatch runs a staged batch on the resident world, gathers each
// request's column slice of the batched C, and returns the buffer set to
// the free pool.
func (s *Session) executeBatch(st *staged) {
	k := len(st.jobs)
	s.mu.Lock()
	s.stagedN -= k
	s.inFlight = true
	occupancy := k + s.stagedN + s.pending
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inFlight = false
		s.mu.Unlock()
	}()
	if s.beforeRun != nil {
		s.beforeRun()
	}
	s.touch()

	var mu sync.Mutex
	var algErr error
	s.execStart.Store(time.Now().UnixNano())
	runStart := time.Now()
	ranks, err := s.world.RunOnTraced(func(c *mpi.Comm) {
		r := c.Rank()
		if e := engine.Run(mpi.AsComm(c), st.plan.spec, st.bs.aT[r], st.rb.bT[r], st.rb.cT[r]); e != nil {
			mu.Lock()
			if algErr == nil {
				algErr = e
			}
			mu.Unlock()
		}
	}, st.rec)
	runSec := time.Since(runStart).Seconds()
	s.execStart.Store(0)
	if err == nil {
		err = algErr
	}
	if err != nil {
		s.finishBatch(st.jobs, err, false)
		s.free <- st.bs
		return
	}
	sum := mpi.Summarize(ranks)
	gatherStart := time.Now()
	for i, j := range st.jobs {
		j.stats.Messages = sum.Messages
		j.stats.Bytes = sum.Bytes
		j.stats.MaxRankCommSeconds = sum.MaxComm
		j.stats.GemmSeconds = sum.MaxGemm
		j.stats.CommSecondsByPhase = trace.CommPhaseMap(sum.CommByPhase)
		j.stats.BusyImbalance = sum.Imbalance
		j.stats.SpecKey = s.key
		j.stats.PredictedSecondsByPhase = s.spec.Predicted
		j.stats.RunSeconds = runSec
		j.stats.BatchSize = k
		j.stats.PipelineOccupancy = occupancy
		// Each request's product is its own column slice of the batched C;
		// GatherPart reads the request-shaped region straight out of the
		// tiles (the padded fringe is never materialised).
		out := matrix.New(s.req.M, s.req.N)
		st.plan.bmC.GatherPart(out, st.rb.cT, 0, i*s.req.N)
		j.out = out
	}
	if st.rec != nil {
		st.rec.Host(trace.PhaseGather, st.rec.Since(gatherStart),
			time.Since(gatherStart).Seconds(), int64(8*k*s.req.M*s.req.N), 0)
	}
	// Release the buffer set before completing the jobs: results live in
	// fresh per-request matrices, and an early release lets the stager
	// begin the next scatter that much sooner.
	s.free <- st.bs
	for _, j := range st.jobs {
		j.stats.WallSeconds = time.Since(j.start).Seconds()
		j.finish(nil)
	}
	s.calls.Add(int64(k))
	s.touch()
}

// finishBatch fails every job of a batch; adjustStaged is set when the
// jobs still count as staged (not yet handed to executeBatch, which does
// its own accounting).
func (s *Session) finishBatch(batch []*job, err error, adjustStaged bool) {
	if adjustStaged {
		s.mu.Lock()
		s.stagedN -= len(batch)
		s.mu.Unlock()
	}
	for _, j := range batch {
		j.finish(err)
	}
}

// failHeld fails a job the stager pulled off the queue as a prospective
// next-batch lead when quit arrives before it could be staged.
func (s *Session) failHeld(j *job) {
	if j == nil {
		return
	}
	s.mu.Lock()
	s.stagedN--
	s.mu.Unlock()
	j.finish(ErrClosed)
}

// drainHandoff fails batches that were staged but never picked up by the
// executor before quit.
func (s *Session) drainHandoff() {
	for {
		select {
		case st := <-s.handoff:
			s.finishBatch(st.jobs, ErrClosed, true)
		default:
			return
		}
	}
}

// drain fails every job that was enqueued (or reserved by a blocked
// sender) before Close marked the session closed.
func (s *Session) drain() {
	for {
		s.mu.Lock()
		p := s.pending
		s.mu.Unlock()
		if p == 0 {
			return
		}
		j := <-s.jobs
		s.mu.Lock()
		s.pending--
		s.mu.Unlock()
		j.finish(ErrClosed)
	}
}

// Close stops the session: the in-flight batch (if any) finishes, queued
// and staged-but-unexecuted requests fail with ErrClosed, and the resident
// world is released. It is idempotent and safe to call concurrently with
// Multiply.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	<-s.done
	s.world.Close()
	return nil
}
