// Package serve is the GEMM-as-a-service layer: it keeps the distributed
// runtime resident between multiplications so the paper's carefully tuned
// HSUMMA schedules are amortised over a *stream* of products instead of
// exactly one — the master-worker serving design of Dongarra et al.
// (Revisiting Matrix Product on Master-Worker Platforms) layered over this
// repository's transport-agnostic engine.
//
// Three pieces compose the subsystem:
//
//   - Session: a persistent mpi world whose rank goroutines stay resident
//     and loop on a per-session work queue, pinned to one resolved
//     execution spec. Block maps, scatter tiles and padded operand buffers
//     are built once and reused, so a repeat multiply of the same shape
//     pays data movement and compute only — no spawn, no plan, no map
//     construction, no tile allocation.
//
//   - Scheduler: the admission-controlled front door. Requests are keyed by
//     their execution-shape key (engine.Spec.Key) and routed to a pool of
//     sessions, spinning sessions up on miss and retiring idle ones under a
//     configurable rank budget; bounded queues apply backpressure
//     (ErrOverloaded) and counters expose hits/misses, queue depths and
//     latency quantiles.
//
//   - HTTP handler (http.go): POST /multiply (JSON or raw little-endian
//     float64 bodies), GET /plan and GET /metrics over a Scheduler — the
//     daemon face cmd/hsumma-serve serves.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// Typed serving errors, reported via errors.Is through every layer
// (Session, Scheduler, and as HTTP status codes by the handler).
var (
	// ErrClosed reports a request submitted to (or queued on) a session or
	// scheduler that has been closed; queued requests receive it during a
	// graceful drain while in-flight ones finish normally.
	ErrClosed = errors.New("serve: closed")
	// ErrOverloaded reports backpressure: a bounded queue was full or the
	// core budget could not admit a new session right now. Clients should
	// retry with backoff (the HTTP layer maps it to 503 + Retry-After).
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrTooLarge reports a request that can never be admitted — it needs
	// more cores (ranks × threads) than the scheduler's whole budget — so
	// retrying is pointless (the HTTP layer maps it to 400, not 503).
	ErrTooLarge = errors.New("serve: request exceeds the core budget")
)

// Stats reports one multiplication's execution statistics — the serving
// analogue of the façade's hsumma.Stats, extended with the wall/setup
// decomposition that makes the session-reuse win measurable.
type Stats struct {
	// Messages and Bytes are rank-traffic totals, identical to what a
	// one-shot run of the same spec reports.
	Messages int64
	Bytes    int64
	// MaxRankCommSeconds is the largest per-rank wall time spent inside
	// communication calls.
	MaxRankCommSeconds float64
	// WallSeconds is the end-to-end request time: queue wait + setup +
	// distributed run + gather.
	WallSeconds float64
	// SetupSeconds is the pre-run data-staging time the caller paid on this
	// request: operand padding + scatter + output-tile zeroing, plus — on
	// the one-shot path only — spec resolution, block-map construction and
	// tile allocation. Warm sessions skip that second group entirely, which
	// is exactly the amortisation this package exists for.
	SetupSeconds float64
	// QueueSeconds is the time the request waited behind earlier work on
	// the session queue before staging began.
	QueueSeconds float64
	// RunSeconds is the distributed execution itself — the resident world
	// run, excluding queueing, staging and gather.
	RunSeconds float64
	// GemmSeconds is the largest per-rank time inside local multiplies.
	GemmSeconds float64
	// CommSecondsByPhase breaks the critical rank's communication time
	// down by phase ("bcast", "shift", "p2p"); entries sum to
	// MaxRankCommSeconds.
	CommSecondsByPhase map[string]float64
	// BusyImbalance is max/mean per-rank busy (comm + gemm) time.
	BusyImbalance float64
	// SpecKey is the execution-shape key of the session that served the
	// request — the label the serve histograms and pprof samples carry.
	SpecKey string
}

// SessionConfig tunes a session's queueing behaviour.
type SessionConfig struct {
	// QueueDepth bounds the session's work queue (default 32). Submit
	// blocks when the queue is full; TrySubmit returns ErrOverloaded.
	QueueDepth int
}

// Session is a persistent execution context for one resolved spec: a
// resident mpi world plus the reusable data-staging state (block maps,
// scatter tiles, padded buffers). Concurrent Multiply calls are serialised
// by the session queue; Close drains it gracefully (the in-flight request
// finishes, queued ones fail with ErrClosed).
type Session struct {
	spec engine.Spec
	req  matrix.Shape // requested (pre-padding) problem shape
	key  string

	world            *mpi.PersistentWorld
	bmA, bmB, bmC    *dist.BlockMap
	aT, bT, cT       []*matrix.Dense
	padA, padB, padC *matrix.Dense // nil when the request shape needs no padding

	jobs chan *job
	quit chan struct{}
	done chan struct{} // closed when the runner exits

	mu       sync.Mutex
	closed   bool
	pending  int  // jobs reserved for the queue but not yet taken by the runner
	inFlight bool // a job is currently executing

	calls    atomic.Int64
	lastUsed atomic.Int64 // unix nanos; scheduler retirement order

	// beforeRun, when set, is invoked by the runner before executing each
	// job — a test hook for making queue states deterministic.
	beforeRun func()
}

// job is one queued multiplication.
type job struct {
	a, b  *matrix.Dense
	start time.Time
	// traced asks execute to record a span timeline for this one request
	// (the daemon's /debug/trace capture); rec holds it afterwards.
	traced bool
	rec    *trace.Recorder

	out   *matrix.Dense
	stats Stats
	err   error
	done  chan struct{}
}

func (j *job) finish(err error) {
	j.err = err
	close(j.done)
}

// NewSession builds a session pinned to a resolved, padded execution spec
// (as produced by tune.ResolveSpec) serving requests of the given
// pre-padding problem shape. The spec's world is spawned immediately and
// stays resident until Close.
func NewSession(reqShape matrix.Shape, spec engine.Spec, cfg SessionConfig) (*Session, error) {
	if err := reqShape.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	es := spec.Shape() // execution shape (padded when needed)
	if es.M < reqShape.M || es.N < reqShape.N || es.K < reqShape.K {
		return nil, fmt.Errorf("serve: execution shape %v smaller than request shape %v", es, reqShape)
	}
	grid := spec.Opts.Grid
	if grid.S <= 0 || grid.T <= 0 {
		return nil, fmt.Errorf("serve: spec has no process grid (resolve it first)")
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 32
	}
	bmA, err := dist.NewBlockMap(es.M, es.K, grid)
	if err != nil {
		return nil, err
	}
	bmB, err := dist.NewBlockMap(es.K, es.N, grid)
	if err != nil {
		return nil, err
	}
	bmC, err := dist.NewBlockMap(es.M, es.N, grid)
	if err != nil {
		return nil, err
	}
	// Label the resident rank goroutines (and the session runner below)
	// with the spec key so pprof profiles attribute samples per served
	// shape.
	labels := []string{"hsumma_spec", spec.Key()}
	world, err := mpi.PersistentLabeled(grid.Size(), labels)
	if err != nil {
		return nil, err
	}
	s := &Session{
		spec: spec, req: reqShape, key: spec.Key(),
		world: world, bmA: bmA, bmB: bmB, bmC: bmC,
		jobs: make(chan *job, depth),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	alloc := func(bm *dist.BlockMap) []*matrix.Dense {
		tiles := make([]*matrix.Dense, grid.Size())
		for r := range tiles {
			tr, tc := bm.TileShape(r)
			tiles[r] = matrix.New(tr, tc)
		}
		return tiles
	}
	s.aT, s.bT, s.cT = alloc(bmA), alloc(bmB), alloc(bmC)
	if es.M != reqShape.M || es.K != reqShape.K {
		s.padA = matrix.New(es.M, es.K)
	}
	if es.K != reqShape.K || es.N != reqShape.N {
		s.padB = matrix.New(es.K, es.N)
	}
	if es.M != reqShape.M || es.N != reqShape.N {
		s.padC = matrix.New(es.M, es.N)
	}
	s.touch()
	go pprof.Do(context.Background(), pprof.Labels(labels...), func(context.Context) { s.run() })
	return s, nil
}

// Key returns the session's execution-shape key (engine.Spec.Key) — the
// identity the scheduler routes by.
func (s *Session) Key() string { return s.key }

// Shape returns the problem shape the session serves (pre-padding).
func (s *Session) Shape() matrix.Shape { return s.req }

// Spec returns the resolved execution spec the session is pinned to.
func (s *Session) Spec() engine.Spec { return s.spec }

// Ranks returns the number of resident ranks (the session's cost against a
// scheduler rank budget).
func (s *Session) Ranks() int { return s.world.Size() }

// Calls returns the number of completed multiplications.
func (s *Session) Calls() int64 { return s.calls.Load() }

// Idle reports whether the session has no queued and no in-flight work —
// the precondition for the scheduler to retire it.
func (s *Session) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending == 0 && !s.inFlight
}

// LastUsed returns the time of the session's most recent activity.
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }

func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// QueueLen returns the number of queued (not yet started) requests.
func (s *Session) QueueLen() int { return len(s.jobs) }

// Executing reports whether a request is running right now.
func (s *Session) Executing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inFlight
}

// Multiply computes A·B on the resident session, blocking while earlier
// requests drain (the session queue serialises concurrent callers). The
// operands must match the session's problem shape exactly.
func (s *Session) Multiply(a, b *matrix.Dense) (*matrix.Dense, Stats, error) {
	return s.submit(a, b, true, false)
}

// TryMultiply is Multiply with backpressure instead of blocking: a full
// session queue returns ErrOverloaded immediately. The scheduler's
// admission path uses it.
func (s *Session) TryMultiply(a, b *matrix.Dense) (*matrix.Dense, Stats, error) {
	return s.submit(a, b, false, false)
}

// TryMultiplyTraced is TryMultiply plus a per-rank span timeline for this
// one request — the daemon's /debug/trace capture path. Tracing is
// per-job: concurrent untraced requests on the same session pay nothing.
func (s *Session) TryMultiplyTraced(a, b *matrix.Dense) (*matrix.Dense, Stats, *trace.Recorder, error) {
	out, st, rec, err := s.submitTraced(a, b, false, true)
	return out, st, rec, err
}

func (s *Session) submit(a, b *matrix.Dense, block, traced bool) (*matrix.Dense, Stats, error) {
	out, st, _, err := s.submitTraced(a, b, block, traced)
	return out, st, err
}

func (s *Session) submitTraced(a, b *matrix.Dense, block, traced bool) (*matrix.Dense, Stats, *trace.Recorder, error) {
	if a.Rows != s.req.M || a.Cols != s.req.K || b.Rows != s.req.K || b.Cols != s.req.N {
		return nil, Stats{}, nil, fmt.Errorf("serve: operands %dx%d · %dx%d do not match session shape %v",
			a.Rows, a.Cols, b.Rows, b.Cols, s.req)
	}
	j := &job{a: a, b: b, start: time.Now(), traced: traced, done: make(chan struct{})}

	// Reserve a queue slot under the lock so a concurrent Close knows
	// exactly how many jobs its drain must fail.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, Stats{}, nil, ErrClosed
	}
	if !block {
		select {
		case s.jobs <- j:
			s.pending++
			s.mu.Unlock()
		default:
			s.mu.Unlock()
			return nil, Stats{}, nil, ErrOverloaded
		}
	} else {
		s.pending++
		s.mu.Unlock()
		// May block on a full queue; the runner (or the drain loop after a
		// concurrent Close) is guaranteed to take it.
		s.jobs <- j
	}
	<-j.done
	return j.out, j.stats, j.rec, j.err
}

// run is the session's runner goroutine: it executes queued jobs one at a
// time until Close, then drains the queue with ErrClosed.
func (s *Session) run() {
	defer close(s.done)
	for {
		// Check quit first so a Close issued while a job was executing
		// deterministically drains the queue instead of racing it against
		// the next queued job.
		select {
		case <-s.quit:
			s.drain()
			return
		default:
		}
		select {
		case <-s.quit:
			s.drain()
			return
		case j := <-s.jobs:
			s.mu.Lock()
			s.pending--
			s.inFlight = true
			s.mu.Unlock()
			s.execute(j)
			s.mu.Lock()
			s.inFlight = false
			s.mu.Unlock()
		}
	}
}

// drain fails every job that was enqueued (or reserved by a blocked
// sender) before Close marked the session closed.
func (s *Session) drain() {
	for {
		s.mu.Lock()
		p := s.pending
		s.mu.Unlock()
		if p == 0 {
			return
		}
		j := <-s.jobs
		s.mu.Lock()
		s.pending--
		s.mu.Unlock()
		j.finish(ErrClosed)
	}
}

// execute stages one job's operands through the reused buffers, runs the
// resident world, and gathers the (cropped) product.
func (s *Session) execute(j *job) {
	if s.beforeRun != nil {
		s.beforeRun()
	}
	s.touch()
	if j.traced {
		j.rec = trace.New(s.world.Size())
	}

	setupStart := time.Now()
	j.stats.QueueSeconds = setupStart.Sub(j.start).Seconds()
	ga := j.a
	if s.padA != nil {
		// The pad fringe was zeroed at allocation and only the request
		// region is ever rewritten, so zero-padding is preserved.
		s.padA.View(0, 0, s.req.M, s.req.K).CopyFrom(j.a)
		ga = s.padA
	}
	gb := j.b
	if s.padB != nil {
		s.padB.View(0, 0, s.req.K, s.req.N).CopyFrom(j.b)
		gb = s.padB
	}
	s.bmA.ScatterInto(s.aT, ga)
	s.bmB.ScatterInto(s.bT, gb)
	for _, t := range s.cT {
		t.Zero()
	}
	setup := time.Since(setupStart)
	if j.rec != nil {
		es := s.spec.Shape()
		j.rec.Host(trace.PhaseScatter, j.rec.Since(setupStart), setup.Seconds(),
			int64(8*(es.M*es.K+es.K*es.N)), 0)
	}

	var mu sync.Mutex
	var algErr error
	runStart := time.Now()
	ranks, err := s.world.RunOnTraced(func(c *mpi.Comm) {
		r := c.Rank()
		if e := engine.Run(mpi.AsComm(c), s.spec, s.aT[r], s.bT[r], s.cT[r]); e != nil {
			mu.Lock()
			if algErr == nil {
				algErr = e
			}
			mu.Unlock()
		}
	}, j.rec)
	j.stats.RunSeconds = time.Since(runStart).Seconds()
	if err == nil {
		err = algErr
	}
	if err != nil {
		j.finish(err)
		return
	}
	sum := mpi.Summarize(ranks)
	j.stats.Messages = sum.Messages
	j.stats.Bytes = sum.Bytes
	j.stats.MaxRankCommSeconds = sum.MaxComm
	j.stats.GemmSeconds = sum.MaxGemm
	j.stats.CommSecondsByPhase = trace.CommPhaseMap(sum.CommByPhase)
	j.stats.BusyImbalance = sum.Imbalance
	j.stats.SpecKey = s.key
	gatherStart := time.Now()
	var out *matrix.Dense
	if s.padC != nil {
		// Gather into the reused padded buffer and clone only the crop the
		// caller keeps.
		s.bmC.GatherInto(s.padC, s.cT)
		out = s.padC.View(0, 0, s.req.M, s.req.N).Clone()
	} else {
		// The gathered matrix IS the caller's result; this allocation is
		// inherent.
		out = s.bmC.Gather(s.cT)
	}
	if j.rec != nil {
		j.rec.Host(trace.PhaseGather, j.rec.Since(gatherStart),
			time.Since(gatherStart).Seconds(), int64(8*s.req.M*s.req.N), 0)
	}
	j.out = out
	j.stats.SetupSeconds = setup.Seconds()
	j.stats.WallSeconds = time.Since(j.start).Seconds()
	s.calls.Add(1)
	s.touch()
	j.finish(nil)
}

// Close stops the session: the in-flight request (if any) finishes, queued
// requests fail with ErrClosed, and the resident world is released. It is
// idempotent and safe to call concurrently with Multiply.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	<-s.done
	s.world.Close()
	return nil
}
