package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// histBounds are the upper bounds (seconds) of the serve latency histogram
// buckets — a 1-2.5-5 ladder from 1ms to 30s, wide enough to cover a
// scatter of a 64×64 as well as a full-scale padded multiply.
var histBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// histogram is one Prometheus-style cumulative histogram (counts per
// upper-bound bucket, plus +Inf, sum and count). Hand-rolled: the repo is
// stdlib-only.
type histogram struct {
	buckets []uint64 // len(histBounds)+1; last is +Inf
	sum     float64
	count   uint64
}

func (h *histogram) observe(v float64) {
	if h.buckets == nil {
		h.buckets = make([]uint64, len(histBounds)+1)
	}
	i := sort.SearchFloat64s(histBounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
}

// histogramVec groups histograms of one metric family by spec key.
type histogramVec struct {
	mu   sync.Mutex
	name string
	help string
	byKey map[string]*histogram
}

func newHistogramVec(name, help string) *histogramVec {
	return &histogramVec{name: name, help: help, byKey: make(map[string]*histogram)}
}

func (hv *histogramVec) observe(key string, v float64) {
	hv.mu.Lock()
	h := hv.byKey[key]
	if h == nil {
		h = &histogram{}
		hv.byKey[key] = h
	}
	h.observe(v)
	hv.mu.Unlock()
}

// write renders the family in Prometheus text exposition format, keys in
// sorted order so scrapes are deterministic.
func (hv *histogramVec) write(w io.Writer) {
	hv.mu.Lock()
	keys := make([]string, 0, len(hv.byKey))
	for k := range hv.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type snap struct {
		key string
		h   histogram
	}
	snaps := make([]snap, 0, len(keys))
	for _, k := range keys {
		h := hv.byKey[k]
		cp := *h
		cp.buckets = append([]uint64(nil), h.buckets...)
		snaps = append(snaps, snap{k, cp})
	}
	hv.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n", hv.name, hv.help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", hv.name)
	for _, s := range snaps {
		cum := uint64(0)
		for i, b := range histBounds {
			cum += s.h.buckets[i]
			fmt.Fprintf(w, "%s_bucket{key=%q,le=\"%g\"} %d\n", hv.name, s.key, b, cum)
		}
		cum += s.h.buckets[len(histBounds)]
		fmt.Fprintf(w, "%s_bucket{key=%q,le=\"+Inf\"} %d\n", hv.name, s.key, cum)
		fmt.Fprintf(w, "%s_sum{key=%q} %g\n", hv.name, s.key, s.h.sum)
		fmt.Fprintf(w, "%s_count{key=%q} %d\n", hv.name, s.key, s.h.count)
	}
}

// quantile estimates the q-quantile (0..1) across all keys of the family
// using the standard Prometheus linear interpolation within the owning
// bucket — what the loadgen report and tests read back.
func (hv *histogramVec) quantile(q float64) float64 {
	hv.mu.Lock()
	total := make([]uint64, len(histBounds)+1)
	var count uint64
	for _, h := range hv.byKey {
		for i, b := range h.buckets {
			total[i] += b
		}
		count += h.count
	}
	hv.mu.Unlock()
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	cum := uint64(0)
	for i, b := range total {
		cum += b
		if float64(cum) >= rank {
			if i == len(histBounds) {
				return histBounds[len(histBounds)-1] // +Inf bucket: clamp
			}
			lo := 0.0
			if i > 0 {
				lo = histBounds[i-1]
			}
			if b == 0 {
				return histBounds[i]
			}
			frac := (rank - float64(cum-b)) / float64(b)
			return lo + (histBounds[i]-lo)*math.Min(1, math.Max(0, frac))
		}
	}
	return histBounds[len(histBounds)-1]
}
