package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// histBounds are the upper bounds (seconds) of the serve latency histogram
// buckets — a 1-2.5-5 ladder from 1ms to 30s, wide enough to cover a
// scatter of a 64×64 as well as a full-scale padded multiply.
var histBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// batchBounds are the upper bounds of the batch-size histogram: batch sizes
// are small integers, so each power of two up to the default MaxBatch and a
// little headroom gets its own bucket.
var batchBounds = []float64{1, 2, 4, 8, 16, 32}

// histogram is one Prometheus-style cumulative histogram (counts per
// upper-bound bucket, plus +Inf, sum and count). Hand-rolled: the repo is
// stdlib-only. A nil bounds slice means the latency ladder (histBounds).
type histogram struct {
	bounds  []float64
	buckets []uint64 // len(bounds)+1; last is +Inf
	sum     float64
	count   uint64
}

func (h *histogram) observe(v float64) {
	if h.bounds == nil {
		h.bounds = histBounds
	}
	if h.buckets == nil {
		h.buckets = make([]uint64, len(h.bounds)+1)
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
}

// quantile estimates the q-quantile (0..1) with the standard Prometheus
// linear interpolation inside the owning bucket.
func (h *histogram) quantile(q float64) float64 {
	return bucketQuantile(h.bounds, h.buckets, h.count, q)
}

// bucketQuantile is the shared quantile estimator over cumulative-histogram
// buckets — the one implementation behind /metrics-derived quantiles, the
// scheduler's per-key families and the loadgen's reported percentiles, so
// they agree by construction.
func bucketQuantile(bounds []float64, buckets []uint64, count uint64, q float64) float64 {
	if count == 0 || len(buckets) == 0 {
		return 0
	}
	rank := q * float64(count)
	cum := uint64(0)
	for i, b := range buckets {
		cum += b
		if float64(cum) >= rank {
			if i == len(bounds) {
				return bounds[len(bounds)-1] // +Inf bucket: clamp
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			if b == 0 {
				return bounds[i]
			}
			frac := (rank - float64(cum-b)) / float64(b)
			return lo + (bounds[i]-lo)*math.Min(1, math.Max(0, frac))
		}
	}
	return bounds[len(bounds)-1]
}

// Histogram is the exported, concurrency-safe face of the serve histogram:
// the loadgen observes per-request latencies into one and reads back the
// same bucket-interpolated quantiles /metrics computes, instead of keeping
// a private sort-based copy that could drift.
type Histogram struct {
	mu sync.Mutex
	h  histogram
}

// NewHistogram returns an empty histogram over the serve latency buckets
// (1ms..30s).
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value (seconds).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.h.observe(v)
	h.mu.Unlock()
}

// Quantile estimates the q-quantile (0..1) of the observed values.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.quantile(q)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.count
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.sum
}

// histogramVec groups histograms of one metric family by spec key.
type histogramVec struct {
	mu     sync.Mutex
	name   string
	help   string
	bounds []float64
	byKey  map[string]*histogram
}

func newHistogramVec(name, help string) *histogramVec {
	return &histogramVec{name: name, help: help, bounds: histBounds, byKey: make(map[string]*histogram)}
}

// newHistogramVecBounds is newHistogramVec with custom bucket bounds (the
// batch-size family counts integers, not seconds).
func newHistogramVecBounds(name, help string, bounds []float64) *histogramVec {
	return &histogramVec{name: name, help: help, bounds: bounds, byKey: make(map[string]*histogram)}
}

func (hv *histogramVec) observe(key string, v float64) {
	hv.mu.Lock()
	h := hv.byKey[key]
	if h == nil {
		h = &histogram{bounds: hv.bounds}
		hv.byKey[key] = h
	}
	h.observe(v)
	hv.mu.Unlock()
}

// write renders the family in Prometheus text exposition format, keys in
// sorted order so scrapes are deterministic.
func (hv *histogramVec) write(w io.Writer) {
	hv.mu.Lock()
	keys := make([]string, 0, len(hv.byKey))
	for k := range hv.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type snap struct {
		key string
		h   histogram
	}
	snaps := make([]snap, 0, len(keys))
	for _, k := range keys {
		h := hv.byKey[k]
		cp := *h
		cp.buckets = append([]uint64(nil), h.buckets...)
		snaps = append(snaps, snap{k, cp})
	}
	hv.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n", hv.name, hv.help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", hv.name)
	for _, s := range snaps {
		cum := uint64(0)
		for i, b := range hv.bounds {
			cum += s.h.buckets[i]
			fmt.Fprintf(w, "%s_bucket{key=%q,le=\"%g\"} %d\n", hv.name, s.key, b, cum)
		}
		cum += s.h.buckets[len(hv.bounds)]
		fmt.Fprintf(w, "%s_bucket{key=%q,le=\"+Inf\"} %d\n", hv.name, s.key, cum)
		fmt.Fprintf(w, "%s_sum{key=%q} %g\n", hv.name, s.key, s.h.sum)
		fmt.Fprintf(w, "%s_count{key=%q} %d\n", hv.name, s.key, s.h.count)
	}
}

// totals returns the family-wide observation sum and count.
func (hv *histogramVec) totals() (float64, uint64) {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	var sum float64
	var count uint64
	for _, h := range hv.byKey {
		sum += h.sum
		count += h.count
	}
	return sum, count
}

// quantile estimates the q-quantile (0..1) across all keys of the family.
func (hv *histogramVec) quantile(q float64) float64 {
	hv.mu.Lock()
	total := make([]uint64, len(hv.bounds)+1)
	var count uint64
	for _, h := range hv.byKey {
		for i, b := range h.buckets {
			total[i] += b
		}
		count += h.count
	}
	hv.mu.Unlock()
	return bucketQuantile(hv.bounds, total, count, q)
}
