package serve

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/internal/matrix"
	"repro/internal/tune"
)

// TestSchedulerShapeRouting checks the shape-keyed routing contract: two
// distinct shapes spin up two sessions, and repeats of each land on the
// resident session as hits.
func TestSchedulerShapeRouting(t *testing.T) {
	sc := NewScheduler(SchedulerConfig{RankBudget: 64})
	defer sc.Close()

	mul := func(m, k, n int, seed uint64) {
		t.Helper()
		a := matrix.Random(m, k, seed)
		b := matrix.Random(k, n, seed+1)
		got, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(got, reference(a, b)); d > oracleTol {
			t.Fatalf("wrong product: %g", d)
		}
	}

	for i := 0; i < 3; i++ {
		mul(32, 32, 32, uint64(i*2+1))
		mul(16, 24, 8, uint64(i*2+100))
	}

	m := sc.Metrics()
	if m.SessionsLive != 2 {
		t.Fatalf("SessionsLive = %d, want 2 (one per shape)", m.SessionsLive)
	}
	if m.SessionMisses != 2 {
		t.Fatalf("SessionMisses = %d, want 2", m.SessionMisses)
	}
	if m.SessionHits != 4 {
		t.Fatalf("SessionHits = %d, want 4", m.SessionHits)
	}
	if m.Completed != 6 || m.Requests != 6 {
		t.Fatalf("Completed/Requests = %d/%d, want 6/6", m.Completed, m.Requests)
	}
	if m.LatencyP50Seconds <= 0 || m.LatencyP99Seconds < m.LatencyP50Seconds {
		t.Fatalf("implausible latency quantiles p50=%g p99=%g", m.LatencyP50Seconds, m.LatencyP99Seconds)
	}
	if m.RanksLive != 8 {
		t.Fatalf("RanksLive = %d, want 8", m.RanksLive)
	}
}

// TestSchedulerPaddedShapesDoNotCollide is the regression test for
// shape-keyed routing with padding: two request shapes that pad to the
// same execution shape (16x16x16 and 15x16x16 on a 2x2 grid with b=4)
// must land on separate sessions — a session's staging buffers are pinned
// to the request shape — and both must keep succeeding in any order.
func TestSchedulerPaddedShapesDoNotCollide(t *testing.T) {
	sc := NewScheduler(SchedulerConfig{RankBudget: 16})
	defer sc.Close()

	rp := tune.ResolveParams{Procs: 4, BlockSize: 4}
	mul := func(m int) {
		t.Helper()
		a := matrix.Random(m, 16, uint64(m))
		b := matrix.Random(16, 16, uint64(m+1))
		got, _, err := sc.Multiply(a, b, rp)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if d := matrix.MaxAbsDiff(got, reference(a, b)); d > oracleTol {
			t.Fatalf("m=%d: wrong product (%g)", m, d)
		}
	}
	mul(16)
	mul(15) // pads to the same 16x16x16 execution shape
	mul(16)
	mul(15)
	m := sc.Metrics()
	if m.SessionsLive != 2 {
		t.Fatalf("SessionsLive = %d, want 2 (one per request shape)", m.SessionsLive)
	}
	if m.Completed != 4 {
		t.Fatalf("Completed = %d, want 4", m.Completed)
	}
}

// TestSchedulerRankBudget checks sessions are retired LRU-idle-first when
// the budget is exceeded, and that an unsatisfiable request is rejected
// with ErrOverloaded.
func TestSchedulerRankBudget(t *testing.T) {
	sc := NewScheduler(SchedulerConfig{RankBudget: 8})
	defer sc.Close()

	mul := func(n, procs int) error {
		a := matrix.Random(n, n, 1)
		b := matrix.Random(n, n, 2)
		_, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: procs})
		return err
	}
	if err := mul(16, 4); err != nil {
		t.Fatal(err)
	}
	if err := mul(32, 4); err != nil {
		t.Fatal(err)
	}
	if got := sc.Metrics().RanksLive; got != 8 {
		t.Fatalf("RanksLive = %d, want 8", got)
	}
	// A third shape exceeds the budget: the oldest idle session retires.
	if err := mul(24, 4); err != nil {
		t.Fatal(err)
	}
	m := sc.Metrics()
	if m.SessionsRetired != 1 || m.SessionsLive != 2 || m.RanksLive != 8 {
		t.Fatalf("after retirement: retired=%d live=%d ranks=%d, want 1/2/8",
			m.SessionsRetired, m.SessionsLive, m.RanksLive)
	}
	// A request larger than the whole budget can never be admitted —
	// that is ErrTooLarge (non-retryable), not transient backpressure.
	if err := mul(64, 16); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("budget-exceeding request: want ErrTooLarge, got %v", err)
	}
	if sc.Metrics().Errors == 0 {
		t.Fatal("unservable request not counted as an error")
	}
}

// TestSchedulerCoreBudgetHybrid checks the budget unit is cores, not
// ranks: a hybrid session holds ranks × threads cores, CoresLive and
// RanksLive diverge accordingly, and a request whose core need exceeds
// the whole budget is rejected with ErrTooLarge even when its rank
// count alone would fit.
func TestSchedulerCoreBudgetHybrid(t *testing.T) {
	sc := NewScheduler(SchedulerConfig{CoreBudget: 16})
	defer sc.Close()

	mul := func(n, procs, threads int) error {
		a := matrix.Random(n, n, 1)
		b := matrix.Random(n, n, 2)
		got, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: procs, Threads: threads})
		if err != nil {
			return err
		}
		if d := matrix.MaxAbsDiff(got, reference(a, b)); d > oracleTol {
			t.Fatalf("n=%d procs=%d threads=%d: wrong product (%g)", n, procs, threads, d)
		}
		return nil
	}

	// 4 ranks × 2 threads = 8 cores resident.
	if err := mul(32, 4, 2); err != nil {
		t.Fatal(err)
	}
	m := sc.Metrics()
	if m.RanksLive != 4 || m.CoresLive != 8 {
		t.Fatalf("RanksLive/CoresLive = %d/%d, want 4/8", m.RanksLive, m.CoresLive)
	}

	// 4 ranks × 4 threads = 16 cores: does not fit next to the resident
	// 8, so the idle hybrid session must retire to admit it.
	if err := mul(48, 4, 4); err != nil {
		t.Fatal(err)
	}
	m = sc.Metrics()
	if m.SessionsRetired != 1 || m.CoresLive != 16 || m.RanksLive != 4 {
		t.Fatalf("after retirement: retired=%d cores=%d ranks=%d, want 1/16/4",
			m.SessionsRetired, m.CoresLive, m.RanksLive)
	}

	// 4 ranks fit the budget, but 4 ranks × 8 threads = 32 cores never
	// will: non-retryable ErrTooLarge, not backpressure.
	if err := mul(64, 4, 8); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over-budget hybrid request: want ErrTooLarge, got %v", err)
	}

	// A serial request forces the full-budget hybrid session out, and for
	// threads≤1 the historical accounting holds: cores == ranks.
	if err := mul(32, 4, 0); err != nil {
		t.Fatal(err)
	}
	m = sc.Metrics()
	if m.SessionsRetired != 2 || m.CoresLive != 4 || m.RanksLive != 4 {
		t.Fatalf("after serial request: retired=%d cores=%d ranks=%d, want 2/4/4",
			m.SessionsRetired, m.CoresLive, m.RanksLive)
	}
}

// TestSchedulerBackpressure checks a full session queue surfaces
// ErrOverloaded through Scheduler.Multiply.
func TestSchedulerBackpressure(t *testing.T) {
	sc := NewScheduler(SchedulerConfig{RankBudget: 8, QueueDepth: 1})
	defer sc.Close()

	shape := matrix.Square(16)
	a := matrix.Random(shape.M, shape.K, 1)
	b := matrix.Random(shape.K, shape.N, 2)

	// Prime the session, then gate its runner so the queue can fill.
	if _, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4}); err != nil {
		t.Fatal(err)
	}
	sessions := sc.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("want 1 session, have %d", len(sessions))
	}
	sess := sessions[0]
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	sess.beforeRun = func() {
		started <- struct{}{}
		<-gate
	}

	res := make(chan error, 2)
	go func() { _, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4}); res <- err }()
	<-started // executing, parked on the gate
	go func() { _, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4}); res <- err }()
	for sess.QueueLen() < 1 {
		runtime.Gosched()
	}

	if _, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: want ErrOverloaded, got %v", err)
	}
	m := sc.Metrics()
	if m.Rejected == 0 {
		t.Fatal("backpressure rejection not counted")
	}
	if m.Queued == 0 {
		t.Fatal("queued gauge should be non-zero while the queue is full")
	}
	if m.InFlight == 0 {
		t.Fatal("in-flight gauge should be non-zero while the runner is gated")
	}

	close(gate)
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerGracefulDrain checks Close semantics through the front
// door: in-flight requests finish with correct results, queued ones fail
// with ErrClosed, and new requests are refused.
func TestSchedulerGracefulDrain(t *testing.T) {
	sc := NewScheduler(SchedulerConfig{RankBudget: 8, QueueDepth: 4})

	shape := matrix.Square(16)
	a := matrix.Random(shape.M, shape.K, 1)
	b := matrix.Random(shape.K, shape.N, 2)
	if _, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4}); err != nil {
		t.Fatal(err)
	}
	sess := sc.Sessions()[0]
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	sess.beforeRun = func() {
		started <- struct{}{}
		<-gate
	}

	type result struct {
		out *matrix.Dense
		err error
	}
	inflight := make(chan result, 1)
	go func() {
		out, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4})
		inflight <- result{out, err}
	}()
	<-started

	queued := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4})
			queued <- err
		}()
	}
	for sess.QueueLen() < 2 {
		runtime.Gosched()
	}

	done := make(chan struct{})
	go func() { sc.Close(); close(done) }()
	close(gate)
	<-done

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request should survive Close, got %v", r.err)
	}
	if d := matrix.MaxAbsDiff(r.out, reference(a, b)); d > oracleTol {
		t.Fatalf("in-flight result wrong: %g", d)
	}
	for i := 0; i < 2; i++ {
		if err := <-queued; !errors.Is(err, ErrClosed) {
			t.Fatalf("queued request: want ErrClosed, got %v", err)
		}
	}
	if _, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close request: want ErrClosed, got %v", err)
	}
}

// TestSchedulerConcurrentMixedShapes hammers the scheduler with concurrent
// requests of two shapes and checks every admitted result is exact — the
// mixed-traffic regime the daemon serves.
func TestSchedulerConcurrentMixedShapes(t *testing.T) {
	sc := NewScheduler(SchedulerConfig{RankBudget: 16, QueueDepth: 64})
	defer sc.Close()

	shapes := []matrix.Shape{matrix.Square(24), {M: 16, N: 8, K: 32}}
	const callers = 16
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := shapes[i%2]
			a := matrix.Random(sh.M, sh.K, uint64(i+1))
			b := matrix.Random(sh.K, sh.N, uint64(i+200))
			got, _, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4})
			if err != nil {
				errs <- err
				return
			}
			if d := matrix.MaxAbsDiff(got, reference(a, b)); d > oracleTol {
				errs <- errors.New("wrong product under mixed concurrency")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := sc.Metrics()
	if m.Completed != callers {
		t.Fatalf("Completed = %d, want %d", m.Completed, callers)
	}
	if m.SessionsLive != 2 {
		t.Fatalf("SessionsLive = %d, want 2", m.SessionsLive)
	}
}
