package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/tune"
)

// multiplyBody builds a JSON multiply request for an n×n problem on p
// ranks.
func multiplyBody(t *testing.T, n, p int) []byte {
	t.Helper()
	a := matrix.Random(n, n, 5)
	b := matrix.Random(n, n, 6)
	body, err := json.Marshal(map[string]any{
		"m": n, "n": n, "k": n, "procs": p, "algorithm": "hsumma",
		"a": a.Pack(nil), "b": b.Pack(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestStatsPhaseDecomposition checks the serve Stats extension: the queue/
// run decomposition, the per-phase breakdown summing to the critical
// rank's comm time, and the spec key stamp.
func TestStatsPhaseDecomposition(t *testing.T) {
	sc := NewScheduler(SchedulerConfig{RankBudget: 16})
	defer sc.Close()
	n := 32
	a := matrix.Random(n, n, 7)
	b := matrix.Random(n, n, 8)
	_, st, err := sc.Multiply(a, b, tune.ResolveParams{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.SpecKey == "" {
		t.Fatal("Stats.SpecKey is empty")
	}
	if st.QueueSeconds < 0 || st.RunSeconds <= 0 {
		t.Fatalf("queue %g / run %g seconds, want >= 0 and > 0", st.QueueSeconds, st.RunSeconds)
	}
	if st.GemmSeconds <= 0 {
		t.Fatalf("GemmSeconds = %g, want > 0", st.GemmSeconds)
	}
	if st.BusyImbalance < 1 {
		t.Fatalf("BusyImbalance = %g, want >= 1", st.BusyImbalance)
	}
	var sum float64
	for _, sec := range st.CommSecondsByPhase {
		sum += sec
	}
	if math.Abs(sum-st.MaxRankCommSeconds) > 1e-9+1e-9*st.MaxRankCommSeconds {
		t.Fatalf("phase breakdown sums to %g, MaxRankCommSeconds is %g", sum, st.MaxRankCommSeconds)
	}
}

// TestHTTPMetricsHistograms checks the new exposition: per-key latency
// histograms and the lease/planner counters appear after traffic flows.
func TestHTTPMetricsHistograms(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/multiply", "application/json", bytes.NewReader(multiplyBody(t, 16, 4)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply status %d", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	text := string(raw)
	for _, want := range []string{
		"hsumma_serve_queue_wait_seconds_bucket",
		"hsumma_serve_stage_seconds_bucket",
		"hsumma_serve_execute_seconds_bucket",
		"hsumma_serve_request_seconds_bucket",
		"hsumma_serve_request_seconds_count",
		"hsumma_serve_leases_active",
		"hsumma_serve_plan_sim_runs_total",
		"hsumma_serve_plan_refine_seconds_total",
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The histogram families are labeled by spec key.
	if !strings.Contains(text, `hsumma_serve_request_seconds_bucket{key="`) {
		t.Fatalf("/metrics histograms are not labeled by spec key:\n%s", text)
	}
}

// TestHTTPDebugTrace arms a one-shot capture, fires a multiply, and
// validates the trace JSON covers every rank.
func TestHTTPDebugTrace(t *testing.T) {
	sc := NewScheduler(SchedulerConfig{RankBudget: 16})
	srv := httptest.NewServer(NewHandler(sc, HandlerConfig{DefaultProcs: 4, EnableTrace: true}))
	defer func() {
		srv.Close()
		sc.Close()
	}()

	traceDone := make(chan []byte, 1)
	traceErr := make(chan error, 1)
	armed := sc.ArmTrace() // arm directly so there is no race with the multiply below
	go func() {
		rec := <-armed
		if rec == nil {
			traceErr <- io.ErrUnexpectedEOF
			return
		}
		var buf bytes.Buffer
		if err := rec.WriteJSON(&buf); err != nil {
			traceErr <- err
			return
		}
		traceDone <- buf.Bytes()
	}()

	resp, err := http.Post(srv.URL+"/multiply", "application/json", bytes.NewReader(multiplyBody(t, 16, 4)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply status %d", resp.StatusCode)
	}

	var raw []byte
	select {
	case raw = <-traceDone:
	case err := <-traceErr:
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	ranksSeen := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			ranksSeen[ev.Tid] = true
		}
	}
	for r := 0; r < 4; r++ {
		if !ranksSeen[r] {
			t.Fatalf("trace has no spans for rank %d (seen %v)", r, ranksSeen)
		}
	}
}

// TestHTTPDebugTraceGuarded checks the endpoint 403s unless EnableTrace.
func TestHTTPDebugTraceGuarded(t *testing.T) {
	srv, _ := newTestServer(t) // EnableTrace defaults to false
	resp, err := http.Post(srv.URL+"/debug/trace", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("ungated /debug/trace returned %d, want 403", resp.StatusCode)
	}
}

// TestHTTPRequestLogging checks the slog middleware: one JSON record per
// request carrying the id echoed in X-Request-Id, plus the multiply
// enrichment fields.
func TestHTTPRequestLogging(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	sc := NewScheduler(SchedulerConfig{RankBudget: 16})
	srv := httptest.NewServer(NewHandler(sc, HandlerConfig{DefaultProcs: 4, Logger: logger}))
	defer func() {
		srv.Close()
		sc.Close()
	}()

	resp, err := http.Post(srv.URL+"/multiply", "application/json", bytes.NewReader(multiplyBody(t, 16, 4)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("response has no X-Request-Id header")
	}

	var record map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &record); err != nil {
		t.Fatalf("request log is not one JSON record: %v\n%s", err, logBuf.String())
	}
	if record["req_id"] != reqID {
		t.Fatalf("logged req_id %v, header says %q", record["req_id"], reqID)
	}
	for _, field := range []string{"method", "path", "status", "duration_s", "outcome", "spec_key", "shape", "queue_wait_s"} {
		if _, ok := record[field]; !ok {
			t.Fatalf("request log missing %q: %v", field, record)
		}
	}
	if record["outcome"] != "ok" || record["path"] != "/multiply" {
		t.Fatalf("unexpected log record %v", record)
	}
}

// TestHistogramQuantile sanity-checks the hand-rolled estimator.
func TestHistogramQuantile(t *testing.T) {
	hv := newHistogramVec("test_seconds", "test")
	for i := 0; i < 100; i++ {
		hv.observe("k", 0.003) // lands in the (0.0025, 0.005] bucket
	}
	p50 := hv.quantile(0.5)
	if p50 < 0.0025 || p50 > 0.005 {
		t.Fatalf("p50 = %g, want within the owning bucket (0.0025, 0.005]", p50)
	}
	if q := hv.quantile(0.99); q < 0.0025 || q > 0.005 {
		t.Fatalf("p99 = %g, want within the owning bucket", q)
	}
	empty := newHistogramVec("empty_seconds", "test")
	if q := empty.quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}
