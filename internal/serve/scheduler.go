package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/trace"
	"repro/internal/tune"
)

// Resolver turns one request's pinned knobs into a fully resolved, padded
// execution spec. The default is tune.ResolveSpec, so engine.Auto requests
// go through the memoised planner — repeat shapes hit the plan cache, and
// the resolved spec's Key is exactly the identity sessions are pooled by.
type Resolver func(tune.ResolveParams) (engine.Spec, error)

// SchedulerConfig tunes the front door.
type SchedulerConfig struct {
	// CoreBudget caps the total resident cores across live sessions
	// (default 256). Each session reserves ranks × threads cores — a
	// hybrid session with 16 ranks × 4 threads costs 64 cores, the same as
	// a flat 64-rank one — so the budget is the machine-capacity unit the
	// operator actually provisions. A request needing more cores than the
	// whole budget is rejected with ErrTooLarge.
	CoreBudget int
	// RankBudget is the legacy name for CoreBudget, honoured when
	// CoreBudget is zero (the two were identical while every rank was
	// single-threaded).
	RankBudget int
	// QueueDepth bounds each session's admission window (default 32); a
	// full window rejects with ErrOverloaded.
	QueueDepth int
	// PipelineDepth, MaxBatch and BatchWindow are handed to every session
	// (see SessionConfig): staging buffer sets per session (0 → 2, double
	// buffering; 1 → serial), maximum same-A requests coalesced into one
	// execution (0 → 8; 1 → no batching), and how long a stager waits for
	// further coalescible arrivals (0 → opportunistic only).
	PipelineDepth int
	MaxBatch      int
	BatchWindow   time.Duration
	// LatencyWindow is the sliding sample window for the p50/p99 latency
	// quantiles (default 1024 completed requests).
	LatencyWindow int
	// Resolve overrides the spec resolution (default tune.ResolveSpec).
	Resolve Resolver
	// TraceSampleN enables the flight recorder: 1 in every N completed
	// requests runs traced and lands in the capture ring (GET
	// /debug/traces). 0 disables sampling; unsampled requests follow the
	// exact untraced execution path.
	TraceSampleN int
	// TraceRingSize bounds the flight-recorder ring (default 16 captures;
	// the oldest is evicted).
	TraceRingSize int
	// DriftReplan, when set, invalidates the memoised plan of an
	// engine.Auto request's shape once its measured/predicted cost ratio
	// drifts persistently past DriftThreshold — the next request for the
	// shape replans from current calibration instead of reusing the stale
	// cached pick.
	DriftReplan bool
	// DriftThreshold is the sustained measured/predicted ratio (or its
	// inverse) that marks a plan stale (default 2.0; must exceed 1).
	DriftThreshold float64
	// DriftMinSamples is how many completed requests a spec key needs
	// before its drift EWMA can mark the plan stale (default 8).
	DriftMinSamples int
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.CoreBudget <= 0 {
		c.CoreBudget = c.RankBudget
	}
	if c.CoreBudget <= 0 {
		c.CoreBudget = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	if c.Resolve == nil {
		c.Resolve = tune.ResolveSpec
	}
	return c
}

// Metrics is a snapshot of the scheduler's observability counters — what
// GET /metrics renders.
type Metrics struct {
	// Request lifecycle totals.
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Errors    int64 `json:"errors"`
	Rejected  int64 `json:"rejected"` // ErrOverloaded admissions
	// Session pool behaviour.
	SessionHits     int64 `json:"session_hits"`
	SessionMisses   int64 `json:"session_misses"`
	SessionsRetired int64 `json:"sessions_retired"`
	SessionsLive    int   `json:"sessions_live"`
	RanksLive       int   `json:"ranks_live"`
	// CoresLive is the budget unit: resident ranks × their thread counts.
	// It equals RanksLive when every session is single-threaded.
	CoresLive int `json:"cores_live"`
	// Instantaneous load.
	Queued   int64 `json:"queued"`
	InFlight int64 `json:"in_flight"`
	// Latency quantiles over the sliding window, in seconds (0 until the
	// first request completes).
	LatencyP50Seconds float64 `json:"latency_p50_seconds"`
	LatencyP99Seconds float64 `json:"latency_p99_seconds"`
	// Pipeline/batching telemetry: mean coalesced batch size across
	// completed requests (1.0 when batching never engages) and cumulative
	// staging time that overlapped an execution (the double-buffering win).
	BatchSizeMean          float64 `json:"batch_size_mean"`
	PipelineOverlapSeconds float64 `json:"pipeline_overlap_seconds"`
	// LeasesActive counts requests currently holding a routing lease — a
	// session reserved between routing and the end of its enqueue, the
	// window retirement must not touch.
	LeasesActive int64 `json:"leases_active"`
	// Plan-cache counters from the shared tune planner: session keys are
	// resolved through it, so serving workloads surface its reuse here.
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	// PlanSimRuns and PlanRefineSeconds expose the planner's stage-2
	// refinement cost: virtual runs executed and cumulative wall time
	// spent inside them.
	PlanSimRuns       int64   `json:"plan_sim_runs"`
	PlanRefineSeconds float64 `json:"plan_refine_seconds"`
	// Plan-fidelity telemetry: requests whose sustained measured/predicted
	// drift marked their plan stale, and requests sampled into the flight
	// recorder.
	PlanStale    int64 `json:"plan_stale"`
	TraceSampled int64 `json:"trace_sampled"`
	// ModelDriftP50 is the median measured/predicted cost ratio across all
	// completed requests that carried a prediction (1.0 = model exact).
	ModelDriftP50 float64 `json:"model_drift_p50"`
}

// Scheduler is the admission-controlled front door: it keys requests by
// execution shape, routes them to a pool of resident sessions under a rank
// budget, applies backpressure via bounded queues, and exports counters.
type Scheduler struct {
	cfg SchedulerConfig

	mu      sync.Mutex
	entries map[string]*entry
	closed  bool

	requests, completed, errors, rejected atomic.Int64
	hits, misses, retired                 atomic.Int64

	// Latency histograms per spec key: queue wait, staging, distributed
	// execution, and end-to-end — the serve-layer time decomposition
	// /metrics exports — plus the coalesced batch-size distribution and
	// the cumulative stage/execute overlap counter.
	histQueue, histStage, histExec, histE2E *histogramVec
	histBatch                               *histogramVec
	overlapMu                               sync.Mutex
	overlapSec                              float64

	// armedTrace, when non-nil, captures the next completed request's span
	// timeline (POST /debug/trace). One-shot: the capturing request swaps
	// it back to nil.
	armedTrace atomic.Pointer[traceCapture]

	// Plan-fidelity machinery: the per-spec-key drift EWMAs, the ratio
	// histogram keyed by phase name, and the sampled-trace ring. sampleSeq
	// drives the 1-in-N flight-recorder sampling.
	drift        *driftTracker
	histDrift    *histogramVec
	flight       *flightRecorder
	sampleSeq    atomic.Int64
	planStale    atomic.Int64
	traceSampled atomic.Int64

	latMu  sync.Mutex
	lat    []float64
	latIdx int
	latN   int
}

// traceCapture is a one-shot mailbox for an armed trace: the next request
// to complete (successfully or not) delivers its recorder — nil on
// failure — exactly once.
type traceCapture struct {
	ch chan *trace.Recorder // buffered, capacity 1
}

// entry is one pooled session slot. The cores (ranks × threads) are
// reserved against the budget from the moment the entry is inserted
// (session construction happens outside the scheduler lock; waiters block
// on ready). leases counts requests that have been routed to the session
// but not yet finished with it — retirement requires leases == 0, which
// closes the race between routing and enqueueing.
type entry struct {
	ranks  int
	cores  int
	sess   *Session // nil until ready closes
	err    error    // construction failure, set before ready closes
	ready  chan struct{}
	leases int
}

// NewScheduler returns an empty scheduler; sessions spin up on demand.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	cfg = cfg.withDefaults()
	return &Scheduler{
		cfg:       cfg,
		entries:   make(map[string]*entry),
		lat:       make([]float64, cfg.LatencyWindow),
		histQueue: newHistogramVec("hsumma_serve_queue_wait_seconds", "Time requests waited on the session queue before staging."),
		histStage: newHistogramVec("hsumma_serve_stage_seconds", "Operand padding, scatter and output-zeroing time per request."),
		histExec:  newHistogramVec("hsumma_serve_execute_seconds", "Distributed execution time per request (resident world run)."),
		histE2E:   newHistogramVec("hsumma_serve_request_seconds", "End-to-end request time: queue + stage + run + gather."),
		histBatch: newHistogramVecBounds("hsumma_serve_batch_size", "Coalesced same-A requests per execution, observed once per request.", batchBounds),
		histDrift: newHistogramVecBounds("hsumma_serve_model_drift_ratio", "Measured/predicted cost ratio per phase (key is the phase name; 1.0 = plan model exact).", driftBounds),
		drift:     newDriftTracker(cfg.DriftThreshold, cfg.DriftMinSamples),
		flight:    newFlightRecorder(cfg.TraceRingSize),
	}
}

// ArmTrace arms a one-shot span-timeline capture: the next request routed
// after arming runs traced, and the returned channel delivers its recorder
// (nil if that request failed). A second arm while one is pending returns
// the pending capture's channel.
func (sc *Scheduler) ArmTrace() <-chan *trace.Recorder {
	tc := &traceCapture{ch: make(chan *trace.Recorder, 1)}
	if !sc.armedTrace.CompareAndSwap(nil, tc) {
		if cur := sc.armedTrace.Load(); cur != nil {
			return cur.ch
		}
		sc.armedTrace.Store(tc)
	}
	return tc.ch
}

// Multiply serves one request: A (M×K) · B (K×N) under the given pinned
// knobs (zero values resolve to defaults; engine.Auto engages the
// planner). The request is routed to the session owning its execution
// shape, creating or retiring sessions under the rank budget. A full
// session queue or an unadmittable session rejects with ErrOverloaded.
func (sc *Scheduler) Multiply(a, b *matrix.Dense, rp tune.ResolveParams) (*matrix.Dense, Stats, error) {
	sc.requests.Add(1)
	if a.Cols != b.Rows {
		sc.errors.Add(1)
		return nil, Stats{}, fmt.Errorf("serve: inner dimensions differ: A is %dx%d, B is %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	rp.Shape = matrix.Shape{M: a.Rows, N: b.Cols, K: a.Cols}
	spec, err := sc.cfg.Resolve(rp)
	if err != nil {
		sc.errors.Add(1)
		return nil, Stats{}, err
	}

	sess, release, err := sc.route(rp.Shape, spec)
	if err != nil {
		sc.countFailure(err)
		return nil, Stats{}, err
	}
	// Claim a pending one-shot trace capture, if any, before executing so
	// exactly one request records it; independently, the flight recorder
	// samples 1 in every TraceSampleN requests. Either reason runs the
	// request traced (one recorder serves both); with neither, the request
	// takes the exact untraced execution path — sampling off costs nothing.
	capture := sc.armedTrace.Swap(nil)
	sampled := sc.cfg.TraceSampleN > 0 && sc.sampleSeq.Add(1)%int64(sc.cfg.TraceSampleN) == 0
	var out *matrix.Dense
	var stats Stats
	if capture != nil || sampled {
		var rec *trace.Recorder
		out, stats, rec, err = sess.TryMultiplyTraced(a, b)
		if err != nil {
			rec = nil
		}
		if capture != nil {
			capture.ch <- rec
		}
		if sampled && rec != nil {
			stats.TraceID = sc.flight.add(stats.SpecKey, rp.Shape, stats.WallSeconds, rec)
			sc.traceSampled.Add(1)
		}
	} else {
		out, stats, err = sess.TryMultiply(a, b)
	}
	release()
	if err != nil {
		sc.countFailure(err)
		return nil, stats, err
	}
	sc.completed.Add(1)
	sc.observeDrift(&stats, rp)
	sc.recordLatency(stats.WallSeconds)
	sc.histQueue.observe(stats.SpecKey, stats.QueueSeconds)
	sc.histStage.observe(stats.SpecKey, stats.SetupSeconds)
	sc.histExec.observe(stats.SpecKey, stats.RunSeconds)
	sc.histE2E.observe(stats.SpecKey, stats.WallSeconds)
	sc.histBatch.observe(stats.SpecKey, float64(stats.BatchSize))
	if stats.OverlapSeconds > 0 {
		sc.overlapMu.Lock()
		sc.overlapSec += stats.OverlapSeconds
		sc.overlapMu.Unlock()
	}
	return out, stats, nil
}

// observeDrift folds one completed request into the plan-fidelity
// tracker: per-phase measured/predicted ratios into the drift histogram
// and the spec key's EWMA, the all-phase ratio onto the request's stats,
// and — when sustained drift marks the plan stale and replanning is
// enabled — the invalidation of the shape's memoised plan. Only implicit
// engine.Auto requests replan: pinned specs have no planner choice to
// revisit, and only Auto resolutions populate the plan cache.
func (sc *Scheduler) observeDrift(stats *Stats, rp tune.ResolveParams) {
	if len(stats.PredictedSecondsByPhase) == 0 {
		return
	}
	measured := measuredPhases(*stats)
	for ph, p := range stats.PredictedSecondsByPhase {
		if m, ok := measured[ph]; ok && p > 0 && m > 0 {
			sc.histDrift.observe(ph, m/p)
		}
	}
	ratio, stale := sc.drift.observe(stats.SpecKey, stats.PredictedSecondsByPhase, measured)
	stats.ModelDriftRatio = ratio
	if !stale {
		return
	}
	sc.planStale.Add(1)
	if sc.cfg.DriftReplan && rp.Algorithm == engine.Auto {
		tune.InvalidatePlan(tune.AutoRequest(rp))
	}
}

// countFailure splits backpressure rejections (a healthy, retryable
// signal) from genuine errors.
func (sc *Scheduler) countFailure(err error) {
	if err == ErrOverloaded {
		sc.rejected.Add(1)
		return
	}
	sc.errors.Add(1)
}

// routeKey identifies the session a request shares: the resolved spec's
// execution-shape key plus the *requested* (pre-padding) shape, because a
// session's staging buffers are pinned to the request shape — two problem
// shapes that pad to the same execution must not share one session.
func routeKey(reqShape matrix.Shape, spec engine.Spec) string {
	return fmt.Sprintf("%s|req=%dx%dx%d", spec.Key(), reqShape.M, reqShape.N, reqShape.K)
}

// route finds or creates the session for a request, retiring idle
// unleased sessions in least-recently-used order when the rank budget is
// exceeded. The budget is reserved under the scheduler lock but session
// construction (world spawn, tile allocation) runs outside it; concurrent
// requests for the same key wait on the entry instead of double-building.
// The returned release func gives the routing lease back — retirement
// never touches a session between its routing and its enqueue.
func (sc *Scheduler) route(reqShape matrix.Shape, spec engine.Spec) (*Session, func(), error) {
	key := routeKey(reqShape, spec)
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if e := sc.entries[key]; e != nil {
		e.leases++
		sc.mu.Unlock()
		<-e.ready // no-op on the common resident-session path
		if e.err != nil {
			sc.release(key, e)
			return nil, nil, e.err
		}
		sc.hits.Add(1)
		e.sess.touch()
		return e.sess, func() { sc.release(key, e) }, nil
	}
	ranks := spec.Opts.Grid.Size()
	threads := spec.Opts.Threads
	if threads < 1 {
		threads = 1
	}
	need := ranks * threads
	if need > sc.cfg.CoreBudget {
		sc.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: request needs %d cores (%d ranks × %d threads), budget is %d", ErrTooLarge, need, ranks, threads, sc.cfg.CoreBudget)
	}
	// Retire idle, unleased sessions, oldest first, until the new one
	// fits. leases == 0 guarantees no request sits between routing and
	// enqueue, and Idle() that nothing is queued or running — so Close
	// returns promptly.
	for sc.coresLiveLocked()+need > sc.cfg.CoreBudget {
		vKey, victim := sc.oldestIdleLocked()
		if victim == nil {
			sc.mu.Unlock()
			return nil, nil, ErrOverloaded
		}
		delete(sc.entries, vKey)
		victim.sess.Close()
		sc.retired.Add(1)
	}
	e := &entry{ranks: ranks, cores: need, ready: make(chan struct{}), leases: 1}
	sc.entries[key] = e
	sc.mu.Unlock()

	// Build the session off the lock: spawning the world and zeroing the
	// staging buffers can be arbitrarily large, and other shapes' requests
	// must keep flowing meanwhile.
	sess, err := NewSession(reqShape, spec, SessionConfig{
		QueueDepth:    sc.cfg.QueueDepth,
		PipelineDepth: sc.cfg.PipelineDepth,
		MaxBatch:      sc.cfg.MaxBatch,
		BatchWindow:   sc.cfg.BatchWindow,
	})
	sc.mu.Lock()
	if err == nil && sc.closed {
		// The scheduler drained while this session was being built (Close
		// removed the entry already); don't leak a resident world.
		err = ErrClosed
		sess.Close()
	}
	if err != nil {
		e.err = err
		delete(sc.entries, key)
		e.leases--
		sc.mu.Unlock()
		close(e.ready)
		return nil, nil, err
	}
	e.sess = sess
	sc.mu.Unlock()
	close(e.ready)
	sc.misses.Add(1)
	return sess, func() { sc.release(key, e) }, nil
}

// release returns a routing lease.
func (sc *Scheduler) release(key string, e *entry) {
	sc.mu.Lock()
	e.leases--
	sc.mu.Unlock()
}

// ranksLiveLocked counts ranks reserved by live and in-construction
// sessions; coresLiveLocked counts the budget unit (ranks × threads).
func (sc *Scheduler) ranksLiveLocked() int {
	total := 0
	for _, e := range sc.entries {
		total += e.ranks
	}
	return total
}

func (sc *Scheduler) coresLiveLocked() int {
	total := 0
	for _, e := range sc.entries {
		total += e.cores
	}
	return total
}

// oldestIdleLocked picks the retirement victim: the least-recently-used
// entry that is fully built, unleased and idle.
func (sc *Scheduler) oldestIdleLocked() (string, *entry) {
	var (
		vKey   string
		victim *entry
	)
	for key, e := range sc.entries {
		if e.sess == nil || e.leases > 0 || !e.sess.Idle() {
			continue
		}
		if victim == nil || e.sess.LastUsed().Before(victim.sess.LastUsed()) {
			vKey, victim = key, e
		}
	}
	return vKey, victim
}

// Sessions returns a snapshot of the live sessions, for introspection.
func (sc *Scheduler) Sessions() []*Session {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]*Session, 0, len(sc.entries))
	for _, e := range sc.entries {
		if e.sess != nil {
			out = append(out, e.sess)
		}
	}
	return out
}

func (sc *Scheduler) recordLatency(sec float64) {
	sc.latMu.Lock()
	sc.lat[sc.latIdx] = sec
	sc.latIdx = (sc.latIdx + 1) % len(sc.lat)
	if sc.latN < len(sc.lat) {
		sc.latN++
	}
	sc.latMu.Unlock()
}

// quantile returns the q-quantile (0..1) of the latency window.
func (sc *Scheduler) quantile(q float64) float64 {
	sc.latMu.Lock()
	n := sc.latN
	samples := append([]float64(nil), sc.lat[:n]...)
	sc.latMu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Float64s(samples)
	idx := int(q * float64(n-1))
	return samples[idx]
}

// Metrics returns a snapshot of the scheduler's counters. The queued and
// in-flight gauges are derived from the live sessions' queues at snapshot
// time.
func (sc *Scheduler) Metrics() Metrics {
	sc.mu.Lock()
	ranks := sc.ranksLiveLocked()
	cores := sc.coresLiveLocked()
	var live int
	var queued, inFlight, leases int64
	for _, e := range sc.entries {
		leases += int64(e.leases)
		if e.sess == nil {
			continue
		}
		live++
		queued += int64(e.sess.QueueLen())
		if e.sess.Executing() {
			inFlight++
		}
	}
	sc.mu.Unlock()
	var batchMean float64
	if sum, count := sc.histBatch.totals(); count > 0 {
		batchMean = sum / float64(count)
	}
	ps := tune.Stats()
	return Metrics{
		Requests:          sc.requests.Load(),
		Completed:         sc.completed.Load(),
		Errors:            sc.errors.Load(),
		Rejected:          sc.rejected.Load(),
		SessionHits:       sc.hits.Load(),
		SessionMisses:     sc.misses.Load(),
		SessionsRetired:   sc.retired.Load(),
		SessionsLive:      live,
		RanksLive:         ranks,
		CoresLive:         cores,
		Queued:            queued,
		InFlight:          inFlight,
		LatencyP50Seconds: sc.quantile(0.50),
		LatencyP99Seconds: sc.quantile(0.99),
		BatchSizeMean:     batchMean,
		PipelineOverlapSeconds: func() float64 {
			sc.overlapMu.Lock()
			defer sc.overlapMu.Unlock()
			return sc.overlapSec
		}(),
		LeasesActive:      leases,
		PlanCacheHits:     ps.CacheHits,
		PlanCacheMisses:   ps.CacheMisses,
		PlanSimRuns:       ps.SimRuns,
		PlanRefineSeconds: ps.RefineTime().Seconds(),
		PlanStale:         sc.planStale.Load(),
		TraceSampled:      sc.traceSampled.Load(),
		ModelDriftP50:     sc.histDrift.quantile(0.5),
	}
}

// FlightList returns the flight recorder's capture summaries, newest
// first (GET /debug/traces).
func (sc *Scheduler) FlightList() []FlightSummary { return sc.flight.list() }

// FlightGet returns one capture's recorder by id (nil when unknown or
// evicted).
func (sc *Scheduler) FlightGet(id string) *trace.Recorder {
	if e := sc.flight.get(id); e != nil {
		return e.Rec
	}
	return nil
}

// FlightLast returns the newest capture's spans and its id ("" when the
// ring is empty) — the timeline GET /debug/critpath analyses.
func (sc *Scheduler) FlightLast() (string, []trace.Span) {
	e := sc.flight.last()
	if e == nil {
		return "", nil
	}
	return e.ID, e.Rec.Spans()
}

// TraceSampling reports whether the flight recorder is enabled.
func (sc *Scheduler) TraceSampling() bool { return sc.cfg.TraceSampleN > 0 }

// Close drains the scheduler: new requests fail with ErrClosed, each
// session's in-flight request finishes, queued requests receive ErrClosed,
// and every resident world is released.
func (sc *Scheduler) Close() error {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil
	}
	sc.closed = true
	sessions := make([]*Session, 0, len(sc.entries))
	for _, e := range sc.entries {
		if e.sess != nil {
			sessions = append(sessions, e.sess)
		}
	}
	sc.entries = make(map[string]*entry)
	sc.mu.Unlock()

	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			s.Close()
		}(s)
	}
	wg.Wait()
	return nil
}

// Uptime helper for the metrics endpoint.
var startTime = time.Now()
