package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/matrix"
)

func newTestServer(t *testing.T) (*httptest.Server, *Scheduler) {
	t.Helper()
	sc := NewScheduler(SchedulerConfig{RankBudget: 16})
	srv := httptest.NewServer(NewHandler(sc, HandlerConfig{DefaultProcs: 4}))
	t.Cleanup(func() {
		srv.Close()
		sc.Close()
	})
	return srv, sc
}

// TestHTTPMultiplyJSON round-trips a JSON multiply and checks the product
// against the oracle.
func TestHTTPMultiplyJSON(t *testing.T) {
	srv, _ := newTestServer(t)
	m, k, n := 16, 24, 8
	a := matrix.Random(m, k, 1)
	b := matrix.Random(k, n, 2)
	body, _ := json.Marshal(map[string]any{
		"m": m, "n": n, "k": k, "procs": 4, "algorithm": "hsumma",
		"a": a.Pack(nil), "b": b.Pack(nil),
	})
	resp, err := http.Post(srv.URL+"/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var res jsonResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.M != m || res.N != n || len(res.C) != m*n {
		t.Fatalf("result shape %dx%d (%d elements), want %dx%d", res.M, res.N, len(res.C), m, n)
	}
	got := matrix.FromSlice(m, n, res.C)
	if d := matrix.MaxAbsDiff(got, reference(a, b)); d > oracleTol {
		t.Fatalf("HTTP product differs from oracle by %g", d)
	}
	if res.Stats.Messages == 0 || res.Stats.WallSeconds <= 0 {
		t.Fatalf("implausible stats %+v", res.Stats)
	}
}

// TestHTTPMultiplyStrassen drives a JSON strassen request — with the
// sub-cubic local kernel on — end to end through the request parser, the
// scheduler and the quadrant recursion.
func TestHTTPMultiplyStrassen(t *testing.T) {
	srv, _ := newTestServer(t)
	n := 16
	a := matrix.Random(n, n, 5)
	b := matrix.Random(n, n, 6)
	body, _ := json.Marshal(map[string]any{
		"m": n, "n": n, "k": n, "procs": 4, "algorithm": "strassen",
		"block_size": 4, "local_strassen": true, "strassen_cutoff": 4,
		"a": a.Pack(nil), "b": b.Pack(nil),
	})
	resp, err := http.Post(srv.URL+"/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var res jsonResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	got := matrix.FromSlice(n, n, res.C)
	if d := matrix.MaxAbsDiff(got, reference(a, b)); d > oracleTol {
		t.Fatalf("strassen HTTP product differs from oracle by %g", d)
	}
	// A batched run would be wrong here (the recursion is square-only) —
	// the session must have served it unbatched.
	if res.Stats.BatchSize != 1 {
		t.Fatalf("strassen request batched: BatchSize = %d", res.Stats.BatchSize)
	}
}

// TestHTTPMultiplyRaw round-trips the little-endian binary body format.
func TestHTTPMultiplyRaw(t *testing.T) {
	srv, _ := newTestServer(t)
	m, k, n := 8, 16, 8
	a := matrix.Random(m, k, 3)
	b := matrix.Random(k, n, 4)
	var body bytes.Buffer
	for _, v := range append(a.Pack(nil), b.Pack(nil)...) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		body.Write(buf[:])
	}
	url := srv.URL + "/multiply?m=8&k=16&n=8&procs=4&algorithm=summa"
	resp, err := http.Post(url, "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != m*n*8 {
		t.Fatalf("raw response %d bytes, want %d", len(raw), m*n*8)
	}
	got := matrix.New(m, n)
	for i := range got.Data {
		got.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	if d := matrix.MaxAbsDiff(got, reference(a, b)); d > oracleTol {
		t.Fatalf("raw HTTP product differs from oracle by %g", d)
	}
	if h := resp.Header.Get("X-Hsumma-Stats"); !strings.Contains(h, "Messages") {
		t.Fatalf("missing stats header, got %q", h)
	}
}

// TestHTTPBadRequests checks validation surfaces as 400s.
func TestHTTPBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"not json", "{"},
		{"zero dims", `{"m":0,"n":4,"k":4,"a":[],"b":[]}`},
		{"wrong a len", `{"m":2,"n":2,"k":2,"a":[1,2,3],"b":[1,2,3,4]}`},
		{"bad algorithm", `{"m":2,"n":2,"k":2,"algorithm":"magic","a":[1,2,3,4],"b":[1,2,3,4]}`},
		{"huge dims", `{"m":16777217,"n":2,"k":2,"a":[],"b":[1,2,3,4]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+"/multiply", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	// Raw mode: overflow-crafting query parameters must be a clean 400,
	// never a handler panic (the regression was make([]float64, 2^61)).
	for _, q := range []string{
		"m=2305843009213693950&k=1&n=2",
		"m=4294967296&k=4294967296&n=1",
		"m=16777217&k=2&n=2",
	} {
		resp, err := http.Post(srv.URL+"/multiply?"+q, "application/octet-stream", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("raw %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestHTTPPlan checks the planner endpoint returns a ranked plan.
func TestHTTPPlan(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/plan?n=256&p=16&platform=grid5000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var pl struct {
		Best struct {
			Algorithm string `json:"algorithm"`
		} `json:"best"`
		P int `json:"p"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pl); err != nil {
		t.Fatal(err)
	}
	if pl.Best.Algorithm == "" || pl.P != 16 {
		t.Fatalf("implausible plan %+v", pl)
	}
}

// TestHTTPMetrics drives a request through and scrapes /metrics.
func TestHTTPMetrics(t *testing.T) {
	srv, _ := newTestServer(t)
	a := matrix.Random(16, 16, 1)
	body, _ := json.Marshal(map[string]any{
		"m": 16, "n": 16, "k": 16, "procs": 4,
		"a": a.Pack(nil), "b": a.Pack(nil),
	})
	if resp, err := http.Post(srv.URL+"/multiply", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("multiply status %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"hsumma_serve_requests_total 1",
		"hsumma_serve_completed_total 1",
		"hsumma_serve_session_misses_total 1",
		"hsumma_serve_sessions_live 1",
		"hsumma_serve_latency_seconds{quantile=\"0.5\"}",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestHTTPHealthz checks liveness.
func TestHTTPHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}
