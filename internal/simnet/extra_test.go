package simnet

import (
	"math"
	"testing"

	"repro/internal/sched"
)

func TestLinkCostScalesBandwidthOnly(t *testing.T) {
	sc, _ := sched.NewBroadcast(sched.Binomial, 2, 0, 1)
	free := New(2, testModel)
	free.ExecOne(Collective{Sched: sc, Members: []int{0, 1}, PayloadBytes: 1e6})
	far := New(2, testModel)
	far.SetLinkCost(func(a, b int) float64 { return 5 })
	far.ExecOne(Collective{Sched: sc, Members: []int{0, 1}, PayloadBytes: 1e6})
	wantDelta := 4 * 1e6 * testModel.Beta
	if got := far.MaxClock() - free.MaxClock(); math.Abs(got-wantDelta) > 1e-12 {
		t.Fatalf("link-cost delta %g, want %g", got, wantDelta)
	}
}

func TestLinkCostDisablesRingFastPath(t *testing.T) {
	// With non-uniform links the vdg ring must run event-level; verify
	// the result reacts to a link-cost function that only affects one
	// edge (the fast path would apply a uniform value).
	p := 8
	sc, _ := sched.NewBroadcast(sched.VanDeGeijn, p, 0, 1)
	uniform := New(p, testModel)
	uniform.SetLinkCost(func(a, b int) float64 { return 1 })
	uniform.ExecOne(Collective{Sched: sc, Members: identity(p), PayloadBytes: 8e5})
	skewed := New(p, testModel)
	skewed.SetLinkCost(func(a, b int) float64 {
		if a == 3 || b == 3 {
			return 10
		}
		return 1
	})
	skewed.ExecOne(Collective{Sched: sc, Members: identity(p), PayloadBytes: 8e5})
	if skewed.MaxClock() <= uniform.MaxClock() {
		t.Fatal("slow edge did not slow the broadcast")
	}
}

func TestSetLinkCostNilRestoresUniform(t *testing.T) {
	sim := New(2, testModel)
	sim.SetLinkCost(func(a, b int) float64 { return 100 })
	sim.SetLinkCost(nil)
	sc, _ := sched.NewBroadcast(sched.Binomial, 2, 0, 1)
	sim.ExecOne(Collective{Sched: sc, Members: []int{0, 1}, PayloadBytes: 1e6})
	want := testModel.PointToPoint(1e6)
	if math.Abs(sim.MaxClock()-want) > 1e-15 {
		t.Fatal("nil link cost should restore uniform links")
	}
}

func TestEmptyPhaseNoOp(t *testing.T) {
	sim := New(4, testModel)
	sim.ExecPhase(nil)
	if sim.MaxClock() != 0 {
		t.Fatal("empty phase advanced clocks")
	}
}

func TestComputeRanksSelective(t *testing.T) {
	sim := New(4, testModel)
	sim.ComputeRanks([]int{1, 3}, 1e9)
	if sim.Clock(0) != 0 || sim.Clock(2) != 0 {
		t.Fatal("compute leaked to unselected ranks")
	}
	if sim.Clock(1) != sim.Clock(3) || sim.Clock(1) <= 0 {
		t.Fatal("selected ranks did not advance")
	}
}
