package simnet

import (
	"sync"

	"repro/internal/hockney"
	"repro/internal/sched"
)

// SchedCache memoises broadcast schedules and their per-rank traffic
// deltas. It is the cache layer shared by the two virtual execution
// engines — the goroutine engine's VWorld and internal/evsim's event
// loop — so both resolve a collective to the *same* *sched.Schedule
// pointer and the same integer byte split, which is what makes their
// traffic counters comparable bit for bit.
//
// All methods are safe for concurrent use; the hot path takes a read
// lock only.
type SchedCache struct {
	mu      sync.RWMutex
	scheds  map[schedCacheKey]*sched.Schedule
	traffic map[trafficCacheKey][]VRankStats
}

type schedCacheKey struct {
	alg      sched.Algorithm
	p, root  int
	segments int
}

// trafficCacheKey caches per-rank traffic deltas by (schedule identity,
// payload size). Schedules are themselves cached per SchedCache, so
// pointer identity is a valid key.
type trafficCacheKey struct {
	sched *sched.Schedule
	elems int
}

// NewSchedCache returns an empty cache.
func NewSchedCache() *SchedCache {
	return &SchedCache{
		scheds:  make(map[schedCacheKey]*sched.Schedule),
		traffic: make(map[trafficCacheKey][]VRankStats),
	}
}

// Broadcast returns the cached schedule for the given broadcast, building
// it on first use. Concurrent first builds keep pointer identity: the
// first writer wins and later builders adopt its pointer.
func (c *SchedCache) Broadcast(alg sched.Algorithm, p, root, segments int) (*sched.Schedule, error) {
	k := schedCacheKey{alg, p, root, segments}
	c.mu.RLock()
	s, ok := c.scheds[k]
	c.mu.RUnlock()
	if ok {
		return s, nil
	}
	s, err := sched.NewBroadcast(alg, p, root, segments)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if exist, ok := c.scheds[k]; ok {
		s = exist
	} else {
		c.scheds[k] = s
	}
	c.mu.Unlock()
	return s, nil
}

// Traffic returns the per-schedule-rank (messages, bytes) a collective of
// the given payload generates, cached: a Van de Geijn broadcast has O(p²)
// transfers, and walking them per collective would dominate large
// simulations where the timing side takes the O(p) ring fast path. Byte
// counts use the same integer sched.SegmentRange split the live runtime
// puts on the wire, so parity with internal/mpi is preserved.
func (c *SchedCache) Traffic(s *sched.Schedule, elems int) []VRankStats {
	k := trafficCacheKey{sched: s, elems: elems}
	c.mu.RLock()
	d, ok := c.traffic[k]
	c.mu.RUnlock()
	if ok {
		return d
	}
	delta := make([]VRankStats, s.NumRanks)
	for _, round := range s.Rounds {
		for _, t := range round.Transfers {
			lo, hi := sched.SegmentRange(elems, s.Segments, t.SegLo, t.SegHi)
			delta[t.Src].SentMessages++
			delta[t.Src].SentBytes += int64(hockney.BytesPerElement * (hi - lo))
		}
	}
	c.mu.Lock()
	if exist, ok := c.traffic[k]; ok {
		delta = exist
	} else {
		c.traffic[k] = delta
	}
	c.mu.Unlock()
	return delta
}
