// Package simnet is the discrete-event network simulator that stands in for
// the paper's physical testbeds (Grid'5000, BlueGene/P). It maintains one
// virtual clock per rank and advances them by replaying the *same*
// communication schedules (internal/sched) the real runtime executes, under
// the Hockney model — so a simulated figure measures exactly the
// communication pattern of the runnable algorithm, at scales (16384 ranks)
// no single-machine run could host.
//
// Semantics match sched.CostOnClocks: rounds are full-duplex one-port, a
// transfer starts when both endpoints are past their previous work, and
// both endpoints are occupied until it completes. Two extensions beyond
// CostOnClocks:
//
//   - phases: disjoint collectives that proceed concurrently (e.g. the √p
//     simultaneous row broadcasts of one SUMMA step) execute round-aligned,
//     with an optional contention model scaling β by the number of
//     concurrent flows;
//
//   - per-rank communication-time accounting, mirroring how the paper
//     reports "communication time" separately from execution time.
//
// The O(p²)-transfer ring suffix of the Van de Geijn broadcast is advanced
// with an exact O(p) recurrence (see execRingTail) instead of transfer by
// transfer; TestRingFastPathEquivalence proves the equivalence against the
// event-level executor.
package simnet

import (
	"fmt"
	"sync"

	"repro/internal/hockney"
	"repro/internal/platform"
	"repro/internal/sched"
)

// ContentionFunc maps the number of concurrent transfers in a simulation
// round to a multiplier applied to β (the reciprocal bandwidth). It models
// link sharing: 1 means contention-free (the paper's model assumption).
type ContentionFunc func(flows int) float64

// NoContention is the paper's analytic assumption: full bandwidth per flow.
func NoContention(int) float64 { return 1 }

// SharedSegment models a single shared medium (commodity Ethernet):
// concurrent flows divide the bandwidth evenly.
func SharedSegment(flows int) float64 {
	if flows < 1 {
		return 1
	}
	return float64(flows)
}

// TorusContention returns a coarse 3D-torus bisection model: flows share
// roughly degree·p^(2/3) independent links; below that capacity there is no
// slowdown, above it bandwidth divides.
func TorusContention(degree, p int) ContentionFunc {
	if degree < 1 {
		degree = 1
	}
	cap3d := float64(degree) * pow23(float64(p))
	return func(flows int) float64 {
		f := float64(flows)
		if f <= cap3d {
			return 1
		}
		return f / cap3d
	}
}

// pow23 computes x^(2/3) without importing math for a single call site
// would be silly — use the obvious route.
func pow23(x float64) float64 {
	// cube root via Newton iterations (x > 0 in all uses), then square.
	if x <= 0 {
		return 0
	}
	c := x
	for i := 0; i < 64; i++ {
		c = (2*c + x/(c*c)) / 3
	}
	return c * c
}

// ContentionFor translates a platform preset's contention description into
// a ContentionFunc over p ranks. enabled=false always yields NoContention —
// the default for figure reproduction, matching the paper's model.
func ContentionFor(pf platform.Platform, p int, enabled bool) ContentionFunc {
	if !enabled {
		return NoContention
	}
	switch pf.Contention {
	case platform.ContentionShared:
		return SharedSegment
	case platform.ContentionTorus:
		return TorusContention(pf.TorusDegree, p)
	default:
		return NoContention
	}
}

// LinkCostFunc scales the bandwidth term of a specific src→dst transfer —
// e.g. by torus hop distance (internal/torus), modelling wormhole routing
// where a d-hop message occupies d links. Nil means uniform links (the
// paper's assumption).
type LinkCostFunc func(src, dst int) float64

// Sim is a virtual-time machine over p ranks.
type Sim struct {
	model      hockney.Model
	contention ContentionFunc
	linkCost   LinkCostFunc
	clocks     []float64
	comm       []float64
	// commHook, when set, observes every per-rank communication-time
	// advance the executors apply (see SetCommHook).
	commHook func(rank int, delta float64)
}

// New returns a simulator for p ranks under the given model, with no
// contention.
func New(p int, m hockney.Model) *Sim {
	if p <= 0 {
		panic(fmt.Sprintf("simnet: invalid rank count %d", p))
	}
	return &Sim{
		model:      m,
		contention: NoContention,
		clocks:     make([]float64, p),
		comm:       make([]float64, p),
	}
}

// SetContention installs a link-sharing model; nil restores NoContention.
func (s *Sim) SetContention(f ContentionFunc) {
	if f == nil {
		f = NoContention
	}
	s.contention = f
}

// SetLinkCost installs a per-transfer bandwidth multiplier (nil = uniform
// links).
func (s *Sim) SetLinkCost(f LinkCostFunc) { s.linkCost = f }

// SetCommHook installs f to observe every per-rank communication-time
// increment the collective executors apply, in application order; nil
// removes it. internal/evsim's rank-symmetry fast path uses the hook to
// capture a collective's exact floating-point increment sequence, so a
// clock-equal sibling collective can replay it bit-identically without
// re-walking the schedule.
func (s *Sim) SetCommHook(f func(rank int, delta float64)) { s.commHook = f }

// linkFactor returns the bandwidth multiplier for one transfer.
func (s *Sim) linkFactor(src, dst int) float64 {
	if s.linkCost == nil {
		return 1
	}
	return s.linkCost(src, dst)
}

// Size returns the number of simulated ranks.
func (s *Sim) Size() int { return len(s.clocks) }

// Clock returns a rank's current virtual time.
func (s *Sim) Clock(rank int) float64 { return s.clocks[rank] }

// CommTime returns the accumulated time a rank has spent inside
// communication (transfers plus waiting for peers), the quantity the paper
// plots as "communication time".
func (s *Sim) CommTime(rank int) float64 { return s.comm[rank] }

// MaxClock returns the virtual time at which the last rank finishes — the
// simulated execution time.
func (s *Sim) MaxClock() float64 {
	max := 0.0
	for _, c := range s.clocks {
		if c > max {
			max = c
		}
	}
	return max
}

// MaxCommTime returns the largest per-rank communication time.
func (s *Sim) MaxCommTime() float64 {
	max := 0.0
	for _, c := range s.comm {
		if c > max {
			max = c
		}
	}
	return max
}

// ComputeRanks advances the given ranks by the time of `flops` floating-
// point operations — the virtual communicator's Gemm uses it for the local
// DGEMM updates between communication phases.
func (s *Sim) ComputeRanks(ranks []int, flops float64) {
	dt := s.model.Compute(flops)
	for _, r := range ranks {
		s.clocks[r] += dt
	}
}

// ComputeRank advances one rank by the time of `flops` floating-point
// operations — identical arithmetic to ComputeRanks for a single rank,
// without the slice.
func (s *Sim) ComputeRank(rank int, flops float64) {
	s.clocks[rank] += s.model.Compute(flops)
}

// TransferTime returns the virtual duration of one point-to-point transfer
// of elems elements among `flows` concurrent ones, applying the contention
// and link models. Both virtual execution engines route their Send/Recv/
// SendRecv timing through this one function, so the engines agree bit for
// bit.
func (s *Sim) TransferTime(src, dst, elems, flows int) float64 {
	eff := s.model
	eff.Beta *= s.contention(flows) * s.linkFactor(src, dst)
	return eff.PointToPoint(float64(elems))
}

// AdvanceComm moves a rank's clock forward to end, accounting the advance
// (transfer plus waiting) as communication time. The caller must own the
// rank's clock — be the goroutine it belongs to, or the single-threaded
// event loop.
func (s *Sim) AdvanceComm(rank int, end float64) {
	if end > s.clocks[rank] {
		s.comm[rank] += end - s.clocks[rank]
		s.clocks[rank] = end
	}
}

// Clocks exposes the per-rank clock array itself, for the execution
// engines (internal/evsim's event loop writes member clocks when replaying
// a memoised collective). The caller owns synchronisation; everyone else
// should use Clock.
func (s *Sim) Clocks() []float64 { return s.clocks }

// CommTimes exposes the per-rank communication-time array itself, under
// the same single-owner contract as Clocks.
func (s *Sim) CommTimes() []float64 { return s.comm }

// Collective is one schedule instance bound to a member list: Members[i] is
// the simulator rank acting as schedule rank i. PayloadBytes is the full
// broadcast payload.
type Collective struct {
	Sched        *sched.Schedule
	Members      []int
	PayloadBytes float64
}

// ExecPhase advances the clocks through a set of *disjoint* concurrent
// collectives (e.g. all row broadcasts of one SUMMA step), round-aligned:
// round k of every collective shares the network, and the contention model
// sees their combined flow count. Collectives in one phase must not share
// ranks; Validate enforces this in tests, here it is assumed.
func (s *Sim) ExecPhase(cols []Collective) {
	if len(cols) == 0 {
		return
	}
	maxRounds := 0
	for _, c := range cols {
		if len(c.Members) != c.Sched.NumRanks {
			panic(fmt.Sprintf("simnet: %d members for %d-rank schedule", len(c.Members), c.Sched.NumRanks))
		}
		if n := len(c.Sched.Rounds); n > maxRounds {
			maxRounds = n
		}
	}
	// Ring fast path: if every collective is in its ring suffix from the
	// same round index with the same length, the O(p) recurrence applies.
	// The recurrence assumes uniform per-hop times, so a non-uniform link
	// model falls back to exact transfer-by-transfer execution.
	ringFrom := -1
	if rs, ok := commonRingStart(cols); ok && s.linkCost == nil {
		ringFrom = rs
	}
	updates := updatePool.Get().(*[]update)
	defer func() {
		*updates = (*updates)[:0]
		updatePool.Put(updates)
	}()
	for round := 0; round < maxRounds; round++ {
		if ringFrom >= 0 && round == ringFrom {
			s.execRingTails(cols)
			return
		}
		flows := 0
		for _, c := range cols {
			if round < len(c.Sched.Rounds) {
				flows += len(c.Sched.Rounds[round].Transfers)
			}
		}
		factor := s.contention(flows)
		*updates = (*updates)[:0]
		for _, c := range cols {
			if round >= len(c.Sched.Rounds) {
				continue
			}
			for _, t := range c.Sched.Rounds[round].Transfers {
				src, dst := c.Members[t.Src], c.Members[t.Dst]
				eff := s.model
				eff.Beta *= factor * s.linkFactor(src, dst)
				start := s.clocks[src]
				if s.clocks[dst] > start {
					start = s.clocks[dst]
				}
				end := start + eff.PointToPoint(c.Sched.SegBytes(t, c.PayloadBytes))
				*updates = append(*updates, update{src, end}, update{dst, end})
			}
		}
		for _, u := range *updates {
			if u.end > s.clocks[u.rank] {
				adv := u.end - s.clocks[u.rank]
				s.comm[u.rank] += adv
				s.clocks[u.rank] = u.end
				if s.commHook != nil {
					s.commHook(u.rank, adv)
				}
			}
		}
	}
}

// update is one endpoint clock advance of a simulation round; the scratch
// slices holding them are pooled because ExecPhase runs once per
// collective — millions of times in a full-scale simulation — and the
// per-call allocation is measurable GC pressure (tracked by
// BenchmarkFullScaleBGPSim's allocs/op).
type update struct {
	rank int
	end  float64
}

var updatePool = sync.Pool{New: func() any { s := make([]update, 0, 64); return &s }}

// commonRingStart reports the shared ring-suffix start round if every
// collective has one at the same index with the same round count and
// uniform segment width — the precondition for the O(p) ring recurrence.
func commonRingStart(cols []Collective) (int, bool) {
	rs, rr := -1, -1
	for i, c := range cols {
		if c.Sched.RingStart < 0 {
			return -1, false
		}
		if i == 0 {
			rs, rr = c.Sched.RingStart, c.Sched.RingRounds
			continue
		}
		if c.Sched.RingStart != rs || c.Sched.RingRounds != rr {
			return -1, false
		}
	}
	return rs, true
}

// execRingTails advances every collective through its ring-allgather suffix
// in closed form. Derivation: with full-duplex rounds of uniform per-hop
// time T, a rank's clock obeys c_i(r) = max(c_{i−1}, c_i, c_{i+1})(r−1) + T
// (it finishes its receive from i−1 and its send to i+1), which unrolls to
// c_i(r) = max_{|k|≤r} c_{i+k}(0) + r·T. After RingRounds = p−1 rounds the
// window covers the whole ring, so every member ends at
// max(initial clocks) + (p−1)·T exactly.
func (s *Sim) execRingTails(cols []Collective) {
	flows := 0
	for _, c := range cols {
		flows += len(c.Members)
	}
	factor := s.contention(flows)
	eff := s.model
	eff.Beta *= factor
	for _, c := range cols {
		p := len(c.Members)
		if p == 1 {
			continue
		}
		segBytes := c.PayloadBytes / float64(c.Sched.Segments)
		perHop := eff.PointToPoint(segBytes)
		maxClock := 0.0
		for _, m := range c.Members {
			if s.clocks[m] > maxClock {
				maxClock = s.clocks[m]
			}
		}
		final := maxClock + float64(c.Sched.RingRounds)*perHop
		for _, m := range c.Members {
			adv := final - s.clocks[m]
			s.comm[m] += adv
			s.clocks[m] = final
			if s.commHook != nil {
				s.commHook(m, adv)
			}
		}
	}
}

// ExecOne is ExecPhase for a single collective — the entry point the
// virtual communicator's Bcast uses. (The retired phase-replay engine's
// ExecTransfers/ComputeAll executors are gone; point-to-point shifts now
// live in VComm.SendRecv, the single canonical semantics.)
func (s *Sim) ExecOne(c Collective) { s.ExecPhase([]Collective{c}) }
