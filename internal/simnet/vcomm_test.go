package simnet

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/hockney"
	"repro/internal/sched"
)

var vModel = hockney.Model{Alpha: 1e-5, Beta: 1e-9, Gamma: 1e-10}

// A broadcast over the virtual world must advance the members' clocks to
// exactly the schedule's Hockney cost, and count one message per schedule
// transfer on the sending rank.
func TestVCommBcastMatchesScheduleCost(t *testing.T) {
	const p, elems = 8, 1000
	w := NewVWorld(p, VConfig{Model: vModel})
	err := w.Run(func(c *VComm) {
		c.Bcast(sched.Binomial, 0, c.NewBuf(elems), 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewBroadcast(sched.Binomial, p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Cost(elems, vModel)
	if got := w.Sim().MaxClock(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("virtual bcast clock %g, schedule cost %g", got, want)
	}
	var msgs int64
	for _, st := range w.Stats() {
		msgs += st.SentMessages
	}
	if msgs != int64(s.NumTransfers()) {
		t.Fatalf("counted %d messages, schedule has %d transfers", msgs, s.NumTransfers())
	}
	// Binomial moves p-1 full copies of the payload.
	var bytes int64
	for _, st := range w.Stats() {
		bytes += st.SentBytes
	}
	if want := int64(8 * elems * (p - 1)); bytes != want {
		t.Fatalf("counted %d bytes, want %d", bytes, want)
	}
}

// Virtual times must be identical across runs regardless of goroutine
// interleaving: clocks are advanced only by each rank's own program order
// and by collectives computed from blocked members.
func TestVCommDeterministic(t *testing.T) {
	run := func() (float64, []VRankStats) {
		w := NewVWorld(6, VConfig{Model: vModel})
		err := w.Run(func(c *VComm) {
			// A mildly irregular program: split into two groups of 3,
			// broadcast inside each, then a ring shift in the world.
			sub := c.Split(c.Rank()%2, c.Rank()).(*VComm)
			sub.Bcast(sched.VanDeGeijn, 0, sub.NewBuf(301), 1)
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			c.SendRecv(next, 9, c.NewBuf(77), prev, 9, c.NewBuf(77))
			if c.Rank()%2 == 0 {
				c.Gemm(c.NewTile(4, 4), c.NewTile(4, 8), c.NewTile(8, 4), comm.Serial)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Total(), w.Stats()
	}
	t0, s0 := run()
	for i := 0; i < 20; i++ {
		ti, si := run()
		if ti != t0 {
			t.Fatalf("run %d total %g != %g", i, ti, t0)
		}
		for r := range s0 {
			if si[r] != s0[r] {
				t.Fatalf("run %d rank %d stats %+v != %+v", i, r, si[r], s0[r])
			}
		}
	}
}

// A symmetric full-duplex ring shift advances every rank by exactly one
// Hockney hop — the rendezvous semantics Cannon's rotations rely on.
func TestVCommSendRecvRing(t *testing.T) {
	const p, elems = 5, 64
	w := NewVWorld(p, VConfig{Model: vModel})
	err := w.Run(func(c *VComm) {
		next := (c.Rank() + 1) % p
		prev := (c.Rank() + p - 1) % p
		c.SendRecv(next, 1, c.NewBuf(elems), prev, 1, c.NewBuf(elems))
	})
	if err != nil {
		t.Fatal(err)
	}
	hop := vModel.PointToPoint(elems)
	for r := 0; r < p; r++ {
		if got := w.Sim().Clock(r); math.Abs(got-hop) > 1e-18 {
			t.Fatalf("rank %d clock %g, want one hop %g", r, got, hop)
		}
	}
}

// Split must reproduce MPI_Comm_split ordering and return nil for negative
// colours, like the live transport.
func TestVCommSplit(t *testing.T) {
	const p = 6
	w := NewVWorld(p, VConfig{Model: vModel})
	var undefined atomic.Int64
	err := w.Run(func(c *VComm) {
		// Reverse-key split: comm ranks invert within each colour.
		sub := c.Split(c.Rank()/3, -c.Rank())
		s := sub.(*VComm)
		if s.Size() != 3 {
			t.Errorf("sub size %d", s.Size())
		}
		wantRank := 2 - c.Rank()%3
		if s.Rank() != wantRank {
			t.Errorf("world rank %d got sub rank %d, want %d", c.Rank(), s.Rank(), wantRank)
		}
		if dead := c.Split(-1, 0); dead != nil {
			undefined.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if undefined.Load() != 0 {
		t.Fatal("negative colour did not return nil")
	}
}

// Gemm advances only the compute state; in overlap mode it must leave the
// communication clocks untouched and surface through Total.
func TestVCommGemmOverlap(t *testing.T) {
	w := NewVWorld(2, VConfig{Model: vModel, Overlap: true})
	err := w.Run(func(c *VComm) {
		c.Bcast(sched.Binomial, 0, c.NewBuf(100), 1)
		c.Gemm(c.NewTile(10, 10), c.NewTile(10, 10), c.NewTile(10, 10), comm.Threaded(2))
	})
	if err != nil {
		t.Fatal(err)
	}
	commOnly := w.Sim().MaxClock()
	// The two intra-rank threads shorten the local multiply by the shared
	// parallel-efficiency curve.
	dt := vModel.Compute(2 * 10 * 10 * 10 / hockney.Speedup(2))
	if got := w.Total(); math.Abs(got-(commOnly+dt)) > 1e-18 {
		t.Fatalf("overlap total %g, want comm %g + gemm %g", got, commOnly, dt)
	}
}

// A panicking rank must abort the world and surface as an error, without
// deadlocking peers blocked in receives or collectives.
func TestVCommPanicAborts(t *testing.T) {
	w := NewVWorld(4, VConfig{Model: vModel})
	err := w.Run(func(c *VComm) {
		if c.Rank() == 3 {
			panic("rank 3 exploded")
		}
		// Ranks 0-2 block in a collective that can never complete.
		c.Bcast(sched.Binomial, 0, c.NewBuf(10), 1)
	})
	if err == nil || !strings.Contains(err.Error(), "rank 3 exploded") {
		t.Fatalf("expected rank 3's panic, got %v", err)
	}
}

// The virtual transport's buffers and tiles are storage-free.
func TestVCommElidesStorage(t *testing.T) {
	w := NewVWorld(1, VConfig{Model: vModel})
	err := w.Run(func(c *VComm) {
		if buf := c.NewBuf(1 << 20); buf.Data != nil || buf.N != 1<<20 {
			t.Errorf("virtual buf allocated storage")
		}
		tile := c.NewTile(1<<15, 1<<15)
		if tile.Data != nil || tile.Rows != 1<<15 {
			t.Errorf("virtual tile allocated storage")
		}
		if v := tile.View(16, 16, 8, 8); v.Data != nil || v.Rows != 8 {
			t.Errorf("view of shape-only tile allocated storage")
		}
		if cl := c.CloneTile(tile); cl.Data != nil || cl.Cols != 1<<15 {
			t.Errorf("clone of shape-only tile allocated storage")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Mismatched virtual receive sizes must abort like the live runtime.
func TestVCommRecvSizeMismatchAborts(t *testing.T) {
	w := NewVWorld(2, VConfig{Model: vModel})
	err := w.Run(func(c *VComm) {
		if c.Rank() == 0 {
			c.Send(1, 5, c.NewBuf(10))
		} else {
			c.Recv(0, 5, c.NewBuf(11))
		}
	})
	if err == nil || !strings.Contains(err.Error(), "11 elements but message has 10") {
		t.Fatalf("expected size mismatch abort, got %v", err)
	}
}

// comm.Buf size contract: packing the wrong shape must panic via the shared
// checker on both transports.
func TestVCommPackShapeChecked(t *testing.T) {
	w := NewVWorld(1, VConfig{Model: vModel})
	err := w.Run(func(c *VComm) {
		c.Pack(comm.Buf{N: 10}, c.NewTile(3, 4))
	})
	if err == nil || !strings.Contains(err.Error(), "pack 3x4 tile into 10-element buffer") {
		t.Fatalf("expected pack shape panic, got %v", err)
	}
}

// A panic inside a collective's critical section (here: an unknown
// broadcast algorithm) must abort cleanly and return an error — not
// self-deadlock on the world mutex.
func TestVCommBadBroadcastAborts(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		w := NewVWorld(4, VConfig{Model: vModel})
		done <- w.Run(func(c *VComm) {
			c.Bcast(sched.Algorithm("bogus"), 0, c.NewBuf(8), 1)
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "bogus") {
			t.Fatalf("expected unknown-broadcast error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("virtual world deadlocked on a bad broadcast algorithm")
	}
}

// Contention must slow point-to-point shifts too: SendRecv charges the
// communicator's concurrent flow count, like a shift round of the retired
// phase executor.
func TestVCommSendRecvContention(t *testing.T) {
	run := func(contention ContentionFunc) float64 {
		w := NewVWorld(4, VConfig{Model: vModel, Contention: contention})
		if err := w.Run(func(c *VComm) {
			next, prev := (c.Rank()+1)%4, (c.Rank()+3)%4
			c.SendRecv(next, 1, c.NewBuf(1000), prev, 1, c.NewBuf(1000))
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxCommTime()
	}
	free := run(nil)
	congested := run(SharedSegment)
	if congested <= free {
		t.Fatalf("shared-segment contention did not slow the shift: %g vs %g", congested, free)
	}
	// 4 concurrent flows divide the bandwidth 4x; latency is unaffected.
	wantDelta := 3 * 1000 * vModel.Beta
	if math.Abs((congested-free)-wantDelta) > 1e-15 {
		t.Fatalf("contention delta %g, want %g", congested-free, wantDelta)
	}
}

// Members of one collective must agree on algorithm, root, segment count
// and payload size; a divergent member — the bug class the live transport
// catches with a receive-size panic — must abort the virtual world too.
func TestVCommBcastMismatchAborts(t *testing.T) {
	w := NewVWorld(4, VConfig{Model: vModel})
	err := w.Run(func(c *VComm) {
		n := 100
		if c.Rank() == 2 {
			n = 99
		}
		c.Bcast(sched.Binomial, 0, c.NewBuf(n), 1)
	})
	if err == nil || !strings.Contains(err.Error(), "bcast mismatch") {
		t.Fatalf("expected bcast mismatch abort, got %v", err)
	}
}
