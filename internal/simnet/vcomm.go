package simnet

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/hockney"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
)

// This file implements the virtual transport: a full SPMD runtime whose
// ranks are goroutines — exactly like internal/mpi — but whose communicator
// advances Hockney virtual time on a shared Sim instead of moving matrix
// elements. The algorithm layer (internal/core, internal/baseline) runs
// unchanged on it through the comm.Comm interface; wire buffers carry only
// element counts and Gemm advances a compute clock, so a 16384-rank
// BlueGene/P simulation allocates shape headers, not gigabytes of tiles.
//
// Timing semantics:
//
//   - Collectives execute their internal/sched schedule through Sim.ExecOne
//     at the moment the last member arrives, with full-duplex rendezvous
//     round semantics — bit-identical to the retired phase-replay engine
//     (internal/simalg's old hand-written schedules) under uniform links
//     and no contention, because disjoint collectives never couple there.
//     With contention enabled, the flow count each round sees is the
//     collective's own (concurrent collectives on disjoint ranks are not
//     round-aligned against each other) — a mild, documented deviation.
//
//   - SendRecv is full-duplex from the caller's clock snapshot: the call
//     completes at max(t₀+T_send, max(t₀, t_src)+T_recv), which reproduces
//     the shift-phase rendezvous of Cannon and Fox exactly.
//
//   - A bare Send occupies the sender for the transfer (t₀ → t₀+T) and the
//     matching Recv completes at max(t_recv, t₀)+T.
//
// Virtual times are deterministic regardless of goroutine interleaving:
// each rank's clock is advanced only by its own program order, messages
// carry their sender's clock, and a collective computes from the clocks of
// members that are all blocked in the same call.
//
// Synchronisation is sharded per communicator, not per world. A rank's
// clock, communication-time and traffic entries are owned by its goroutine
// (point-to-point calls and Gemm touch them with no lock at all); the one
// place another goroutine writes them — the last arriver of a collective
// executing the schedule for every member — holds that communicator's
// shard lock while the members are parked on the same lock's condition
// variable, which both guarantees exclusive access and publishes the
// writes. Disjoint collectives (e.g. the √p simultaneous row broadcasts of
// one SUMMA step, or the per-group broadcasts of HSUMMA) therefore advance
// concurrently instead of serialising on a world mutex — the property that
// lets a 16384-rank virtual run use the host's cores.
//
// Traffic accounting mirrors internal/mpi exactly — one message per
// schedule transfer, bytes from the same integer sched.SegmentRange split —
// so a virtual run reports per-rank message and byte counts identical to a
// live run of the same configuration (asserted by the parity tests in
// internal/simalg).

// VConfig configures a virtual world.
type VConfig struct {
	// Model is the Hockney machine (α, β per element, γ per flop).
	Model hockney.Model
	// Contention is the optional link-sharing model (nil = none, the
	// paper's assumption).
	Contention ContentionFunc
	// LinkCost optionally scales each transfer's bandwidth term by the
	// physical route (e.g. torus hop distance).
	LinkCost LinkCostFunc
	// Overlap enables communication/computation overlap (double
	// buffering): Gemm advances a dedicated per-rank compute timeline
	// instead of the communication clock, and Total reports the later of
	// the two. The paper's implementation is non-overlapped (§VI).
	Overlap bool
	// Trace, when non-nil, records one span per operation per rank on the
	// virtual timeline — the same span stream the live transport emits, at
	// virtual timestamps. It observes clocks only and never alters them,
	// so traced and untraced runs are bit-identical.
	Trace *trace.Recorder
}

// VRankStats counts the traffic one virtual rank generated, mirroring
// mpi.RankStats.
type VRankStats struct {
	SentMessages int64
	SentBytes    int64 // payload bytes (8 per float64), as on the live wire
}

// VWorld owns the shared virtual clocks and coordination state for p ranks.
type VWorld struct {
	sim *Sim
	cfg VConfig

	// caches memoise schedules and traffic deltas — the only state shared
	// across communicator shards on the hot path (internally read-locked).
	caches *SchedCache

	// shardsMu guards the shard registry (needed only by abort).
	shardsMu sync.Mutex
	shards   []*vShard

	// tilesMu guards the registry of pooled tile headers handed out by
	// NewTile/CloneTile; Run recycles them when the ranks are done.
	tilesMu sync.Mutex
	tiles   []*matrix.Dense

	nextCID     atomic.Int64
	stats       []VRankStats // per world rank, goroutine-owned (see file comment)
	computeDone []float64    // overlap mode: per-rank compute timeline
	mailboxes   []*vMailbox
	aborted     atomic.Bool
}

// vShard is the coordination domain of one communicator: every VComm
// sharing a cid (i.e. all ranks of one communicator) shares one shard, and
// all collective/split rendezvous for that communicator run under its
// mutex. Distinct communicators — HSUMMA's per-group broadcasts, SUMMA's
// per-row broadcasts — have distinct shards and never contend.
type vShard struct {
	mu sync.Mutex
	// cond is shared by every rendezvous on the communicator: at most two
	// gathers are ever live at once (SPMD members run the same op
	// sequence, so a member can be at most one collective ahead of the
	// slowest waiter), so the spurious-wakeup cost of sharing is bounded
	// while the per-collective allocation disappears.
	cond   *sync.Cond
	colls  map[int64]*vCollGather  // keyed by the communicator's op sequence
	splits map[int64]*vSplitGather // keyed by the communicator's split sequence
	// free pools retired vCollGathers: a p=16384 run executes millions of
	// collectives, and on a single-core host their allocation is a
	// measurable slice of total wall time.
	free []*vCollGather
}

func (w *VWorld) newShard() *vShard {
	s := &vShard{
		colls:  make(map[int64]*vCollGather),
		splits: make(map[int64]*vSplitGather),
	}
	s.cond = sync.NewCond(&s.mu)
	w.shardsMu.Lock()
	w.shards = append(w.shards, s)
	w.shardsMu.Unlock()
	return s
}

// NewVWorld returns a virtual world of p ranks under the given
// configuration.
func NewVWorld(p int, cfg VConfig) *VWorld {
	sim := New(p, cfg.Model)
	sim.SetContention(cfg.Contention)
	sim.SetLinkCost(cfg.LinkCost)
	w := &VWorld{
		sim:       sim,
		cfg:       cfg,
		caches:    NewSchedCache(),
		stats:     make([]VRankStats, p),
		mailboxes: make([]*vMailbox, p),
	}
	if cfg.Overlap {
		w.computeDone = make([]float64, p)
	}
	for i := range w.mailboxes {
		w.mailboxes[i] = newVMailbox()
	}
	return w
}

// Run executes fn on every rank, each in its own goroutine, passing each
// rank its world communicator. It returns after all ranks finish; the first
// panic aborts the world and is returned as an error.
func (w *VWorld) Run(fn func(c *VComm)) error {
	p := w.sim.Size()
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = i
	}
	world := w.newShard() // cid 0, shared by every rank's world communicator
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for r := 0; r < p; r++ {
		vc := &VComm{w: w, shard: world, cid: 0, rank: r, ranks: ranks}
		wg.Add(1)
		go func(c *VComm) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(vAborted); ok {
						return // collateral unwind, not the root cause
					}
					errOnce.Do(func() {
						firstErr = fmt.Errorf("simnet: virtual rank %d panicked: %v\n%s", c.rank, rec, debug.Stack())
					})
					w.abort()
				}
			}()
			fn(c)
		}(vc)
	}
	wg.Wait()
	if firstErr == nil {
		// Only recycle on clean completion: after a panic some rank may
		// still reference its tiles from the captured stack trace.
		w.recycleTiles()
	}
	return firstErr
}

// vAborted is the sentinel panic used to unwind ranks blocked in a receive
// or collective when another rank has already failed.
type vAborted struct{}

func (w *VWorld) abort() {
	if !w.aborted.CompareAndSwap(false, true) {
		return
	}
	// Snapshot the registry, then wake each shard's waiters under its own
	// lock (never holding shardsMu across a shard lock: shard creation
	// runs under a parent shard's mutex and takes shardsMu, so the
	// opposite order here would deadlock). A shard created after the flag
	// flipped needs no wakeup: its waiters check the flag, under the
	// shard mutex, before every Wait.
	w.shardsMu.Lock()
	shards := append([]*vShard(nil), w.shards...)
	w.shardsMu.Unlock()
	for _, s := range shards {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	// Broadcast under each mailbox's lock: a taker that has checked
	// the aborted flag but not yet parked in Wait would otherwise
	// miss the wakeup and sleep forever.
	for _, mb := range w.mailboxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// Sim exposes the underlying simulator (clocks, per-rank comm times).
func (w *VWorld) Sim() *Sim { return w.sim }

// Stats returns a copy of the per-rank traffic counters. Read it only
// after Run returns.
func (w *VWorld) Stats() []VRankStats {
	out := make([]VRankStats, len(w.stats))
	copy(out, w.stats)
	return out
}

// Total returns the simulated execution time: the last communication clock,
// or in overlap mode the later of the communication and compute timelines.
func (w *VWorld) Total() float64 {
	total := w.sim.MaxClock()
	for _, cd := range w.computeDone {
		if cd > total {
			total = cd
		}
	}
	return total
}

// MaxCommTime returns the largest per-rank time spent inside communication,
// the quantity the paper plots as "communication time".
func (w *VWorld) MaxCommTime() float64 { return w.sim.MaxCommTime() }

func (w *VWorld) schedule(alg sched.Algorithm, p, root, segments int) *sched.Schedule {
	s, err := w.caches.Broadcast(alg, p, root, segments)
	if err != nil {
		panic(fmt.Sprintf("simnet: bcast: %v", err))
	}
	return s
}

// vMessage is one in-flight virtual payload: no data, only its size and the
// sender's clock at the moment of the send.
type vMessage struct {
	cid   int64
	src   int // sender's rank in the communicator identified by cid
	tag   int
	elems int
	clock float64
}

type vMailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []vMessage
}

func newVMailbox() *vMailbox {
	mb := &vMailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *vMailbox) put(m vMessage) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

func (mb *vMailbox) take(w *VWorld, cid int64, src, tag int) vMessage {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if m.cid == cid && m.src == src && m.tag == tag {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		if w.aborted.Load() {
			panic(vAborted{})
		}
		mb.cond.Wait()
	}
}

// VComm is a communicator over the virtual world, implementing comm.Comm.
type VComm struct {
	w     *VWorld
	shard *vShard
	cid   int64
	rank  int
	ranks []int // comm rank -> world rank (shared, read-only)

	opSeq    int64
	splitSeq int64
}

var _ comm.Comm = (*VComm)(nil)

// Rank returns the caller's rank within the communicator.
func (c *VComm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *VComm) Size() int { return len(c.ranks) }

// WorldRank returns the caller's rank in the original world communicator.
func (c *VComm) WorldRank() int { return c.ranks[c.rank] }

// transferTime returns the virtual duration of one point-to-point transfer
// among `flows` concurrent ones, applying the contention and link models.
// A bare Send/Recv is a single flow; SendRecv — used only for the global
// shift phases of Cannon and Fox, where every rank of the communicator
// shifts simultaneously — charges the communicator's full flow count, as
// the retired phase executor did for a shift round. The arithmetic lives
// in Sim.TransferTime, shared with the event engine.
func (w *VWorld) transferTime(srcW, dstW, elems, flows int) float64 {
	return w.sim.TransferTime(srcW, dstW, elems, flows)
}

// Send delivers a virtual message of data.N elements to dst under tag. The
// sender is occupied for the transfer (its clock advances by α+Nβ). Only
// the caller's own clock/stats entries are touched — no lock needed (see
// the ownership argument in the file comment).
func (c *VComm) Send(dst, tag int, data comm.Buf) {
	c.checkPeer("send to", dst)
	w := c.w
	me := c.WorldRank()
	dstW := c.ranks[dst]
	t0 := w.sim.clocks[me]
	dt := w.transferTime(me, dstW, data.N, 1)
	w.sim.clocks[me] = t0 + dt
	w.sim.comm[me] += dt
	w.stats[me].SentMessages++
	w.stats[me].SentBytes += int64(hockney.BytesPerElement * data.N)
	if rec := w.cfg.Trace; rec != nil {
		rec.Rank(me, trace.PhaseP2P, t0, dt, int64(hockney.BytesPerElement*data.N), 1)
	}
	w.mailboxes[dstW].put(vMessage{cid: c.cid, src: c.rank, tag: tag, elems: data.N, clock: t0})
}

// Recv blocks until a matching message arrives and advances the receiver to
// max(own clock, sender's send-time) plus the transfer time.
func (c *VComm) Recv(src, tag int, buf comm.Buf) {
	c.checkPeer("recv from", src)
	w := c.w
	me := c.WorldRank()
	m := w.mailboxes[me].take(w, c.cid, src, tag)
	if m.elems != buf.N {
		panic(fmt.Sprintf("simnet: recv buffer %d elements but message has %d (src=%d tag=%d)",
			buf.N, m.elems, src, tag))
	}
	dt := w.transferTime(c.ranks[src], me, m.elems, 1)
	pre := w.sim.clocks[me]
	end := pre
	if m.clock > end {
		end = m.clock
	}
	end += dt
	w.advanceComm(me, end)
	if rec := w.cfg.Trace; rec != nil {
		rec.Rank(me, trace.PhaseP2P, pre, end-pre, int64(hockney.BytesPerElement*m.elems), 1)
	}
}

// SendRecv performs the full-duplex shift primitive: both directions
// proceed concurrently from the caller's clock snapshot, and the call
// completes when the slower of the two finishes.
func (c *VComm) SendRecv(dst, sendTag int, send comm.Buf, src, recvTag int, recv comm.Buf) {
	c.checkPeer("send to", dst)
	c.checkPeer("recv from", src)
	w := c.w
	me := c.WorldRank()
	dstW := c.ranks[dst]
	t0 := w.sim.clocks[me]
	sendEnd := t0 + w.transferTime(me, dstW, send.N, len(c.ranks))
	w.stats[me].SentMessages++
	w.stats[me].SentBytes += int64(hockney.BytesPerElement * send.N)
	w.mailboxes[dstW].put(vMessage{cid: c.cid, src: c.rank, tag: sendTag, elems: send.N, clock: t0})

	m := w.mailboxes[me].take(w, c.cid, src, recvTag)
	if m.elems != recv.N {
		panic(fmt.Sprintf("simnet: sendrecv buffer %d elements but message has %d (src=%d tag=%d)",
			recv.N, m.elems, src, recvTag))
	}
	recvEnd := t0
	if m.clock > recvEnd {
		recvEnd = m.clock
	}
	recvEnd += w.transferTime(c.ranks[src], me, m.elems, len(c.ranks))
	end := sendEnd
	if recvEnd > end {
		end = recvEnd
	}
	w.advanceComm(me, end)
	if rec := w.cfg.Trace; rec != nil {
		rec.Rank(me, trace.PhaseShift, t0, end-t0, int64(hockney.BytesPerElement*(send.N+recv.N)), 2)
	}
}

// advanceComm moves a world rank's clock forward to end, accounting the
// advance (transfer plus waiting) as communication time. The caller must
// own the rank's clock: be its goroutine, or hold the shard lock its
// goroutine is parked on.
func (w *VWorld) advanceComm(worldRank int, end float64) {
	w.sim.AdvanceComm(worldRank, end)
}

func (c *VComm) checkPeer(verb string, peer int) {
	if peer < 0 || peer >= len(c.ranks) {
		panic(fmt.Sprintf("simnet: %s rank %d outside communicator of %d", verb, peer, len(c.ranks)))
	}
	if peer == c.rank {
		panic("simnet: self-send is not supported (use local copies)")
	}
}

// vCollGather coordinates one collective call across the members of a
// communicator: everyone blocks until the last member arrives, which
// executes the schedule on the shared clocks and releases the rest. The
// first arriver's call signature is recorded so a mismatched member — the
// bug class the live transport catches with a receive-size panic — aborts
// loudly instead of silently skewing the figures.
type vCollGather struct {
	arrived  int
	released int // waiters that have observed done and left
	done     bool

	alg      sched.Algorithm
	root     int
	segments int
	elems    int
}

// Bcast broadcasts root's virtual payload over the communicator: the
// schedule's transfers advance the members' clocks through Sim.ExecOne with
// exact round rendezvous semantics, and the traffic counters record one
// message per transfer with the same integer segment split the live runtime
// puts on the wire. The rendezvous runs under the communicator's shard
// lock, so disjoint collectives proceed in parallel.
func (c *VComm) Bcast(alg sched.Algorithm, root int, data comm.Buf, segments int) {
	p := c.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("simnet: bcast root %d outside communicator of %d", root, p))
	}
	if p == 1 {
		return
	}
	w := c.w
	seq := c.opSeq
	c.opSeq++
	shard := c.shard

	// Deferred unlock so a panic inside the critical section (an unknown
	// broadcast algorithm, a schedule/member mismatch) releases the shard
	// mutex before Run's recover handler calls abort — which needs it.
	shard.mu.Lock()
	defer shard.mu.Unlock()
	cg := shard.colls[seq]
	if cg == nil {
		if n := len(shard.free); n > 0 {
			cg = shard.free[n-1]
			shard.free = shard.free[:n-1]
			*cg = vCollGather{alg: alg, root: root, segments: segments, elems: data.N}
		} else {
			cg = &vCollGather{alg: alg, root: root, segments: segments, elems: data.N}
		}
		shard.colls[seq] = cg
	} else if cg.alg != alg || cg.root != root || cg.segments != segments || cg.elems != data.N {
		panic(fmt.Sprintf("simnet: bcast mismatch on rank %d: (%s root=%d seg=%d n=%d) vs first caller's (%s root=%d seg=%d n=%d)",
			c.rank, alg, root, segments, data.N, cg.alg, cg.root, cg.segments, cg.elems))
	}
	cg.arrived++
	if cg.arrived == p {
		s := w.schedule(alg, p, root, segments)
		// The executing member owns every member's clock here (they are
		// parked on this shard's condition variable), so it may snapshot
		// pre-clocks and emit the members' broadcast spans.
		var pre []float64
		if rec := w.cfg.Trace; rec != nil {
			pre = make([]float64, p)
			for i, m := range c.ranks {
				pre[i] = w.sim.clocks[m]
			}
		}
		w.sim.ExecOne(Collective{Sched: s, Members: c.ranks, PayloadBytes: float64(data.N)})
		for i, d := range w.caches.Traffic(s, data.N) {
			st := &w.stats[c.ranks[i]]
			st.SentMessages += d.SentMessages
			st.SentBytes += d.SentBytes
			if rec := w.cfg.Trace; rec != nil {
				m := c.ranks[i]
				rec.Rank(m, trace.PhaseBcast, pre[i], w.sim.clocks[m]-pre[i],
					int64(hockney.BytesPerElement*data.N), d.SentMessages)
			}
		}
		cg.done = true
		shard.cond.Broadcast()
		delete(shard.colls, seq) // waiters hold the pointer
		return
	}
	// Every non-executing member waits at least once (done can only flip
	// while no member holds the shard lock between its arrival increment
	// and this loop), so the last of the p−1 waiters to leave retires the
	// gather to the pool.
	for !cg.done {
		if w.aborted.Load() {
			panic(vAborted{})
		}
		shard.cond.Wait()
	}
	cg.released++
	if cg.released == p-1 {
		shard.free = append(shard.free, cg)
	}
}

// vSplitGather coordinates one Split call, mirroring the live runtime.
type vSplitGather struct {
	arrived int
	colors  map[int]int
	keys    map[int]int
	done    bool
	result  map[int]*VComm
}

// Split partitions the communicator exactly like MPI_Comm_split (and like
// the live transport): ranks passing the same colour form a new
// communicator ordered by (key, old rank); a negative colour returns nil.
// Each resulting communicator gets its own coordination shard.
func (c *VComm) Split(color, key int) comm.Comm {
	w := c.w
	seq := c.splitSeq
	c.splitSeq++
	shard := c.shard

	shard.mu.Lock()
	defer shard.mu.Unlock()
	sg := shard.splits[seq]
	if sg == nil {
		sg = &vSplitGather{
			colors: make(map[int]int),
			keys:   make(map[int]int),
		}
		shard.splits[seq] = sg
	}
	sg.colors[c.rank] = color
	sg.keys[c.rank] = key
	sg.arrived++
	if sg.arrived == len(c.ranks) {
		sg.result = c.computeSplit(sg)
		sg.done = true
		shard.cond.Broadcast()
		delete(shard.splits, seq)
	}
	for !sg.done {
		if w.aborted.Load() {
			panic(vAborted{})
		}
		shard.cond.Wait()
	}
	res := sg.result[c.rank]
	if res == nil {
		return nil
	}
	return res
}

// computeSplit builds the new communicators once all members have arrived.
// Called with the parent communicator's shard mutex held by the last
// arriver; each colour's communicator gets a fresh cid and shard. The
// grouping rule lives in comm.SplitGroups, shared by every transport.
func (c *VComm) computeSplit(sg *vSplitGather) map[int]*VComm {
	result := make(map[int]*VComm, len(sg.colors))
	for _, members := range comm.SplitGroups(sg.colors, sg.keys) {
		cid := c.w.nextCID.Add(1)
		shard := c.w.newShard()
		worldRanks := make([]int, len(members))
		for i, m := range members {
			worldRanks[i] = c.ranks[m]
		}
		for i, m := range members {
			result[m] = &VComm{w: c.w, shard: shard, cid: cid, rank: i, ranks: worldRanks}
		}
	}
	for r, col := range sg.colors {
		if col < 0 {
			result[r] = nil
		}
	}
	return result
}

// --- Data plane: storage is elided, only shapes and clocks advance. ---

// NewBuf returns a length-only wire buffer.
func (c *VComm) NewBuf(elems int) comm.Buf { return comm.Buf{N: elems} }

// tilePool recycles the shape-only matrix headers the virtual data plane
// hands out. A single virtual run allocates a handful per rank, but the
// tune planner's refinement stage executes thousands of virtual runs per
// cold plan; recycling the headers across runs keeps that loop from
// churning the GC (allocs/op is tracked by BenchmarkFullScaleBGPSim).
var tilePool = sync.Pool{New: func() any { return new(matrix.Dense) }}

// newPooledTile takes a header from the pool and registers it with the
// world so Run can recycle it once the ranks are done. Safe because the
// algorithm layer never retains tiles beyond its own execution — they are
// scratch panels by construction. tilesMu is setup-phase only: the
// algorithms allocate their panels before the step loop, so the registry
// never contends with the communication hot path.
func (w *VWorld) newPooledTile(rows, cols int) *matrix.Dense {
	d := tilePool.Get().(*matrix.Dense)
	*d = matrix.Dense{Rows: rows, Cols: cols, Stride: cols}
	w.tilesMu.Lock()
	w.tiles = append(w.tiles, d)
	w.tilesMu.Unlock()
	return d
}

// recycleTiles returns every handed-out header to the pool; called by Run
// after all rank goroutines have finished.
func (w *VWorld) recycleTiles() {
	w.tilesMu.Lock()
	tiles := w.tiles
	w.tiles = nil
	w.tilesMu.Unlock()
	for _, d := range tiles {
		tilePool.Put(d)
	}
}

// NewTile returns a shape-only matrix header (nil Data).
func (c *VComm) NewTile(rows, cols int) *matrix.Dense {
	return c.w.newPooledTile(rows, cols)
}

// CloneTile returns a shape-only copy.
func (c *VComm) CloneTile(src *matrix.Dense) *matrix.Dense {
	return c.w.newPooledTile(src.Rows, src.Cols)
}

// Pack checks shapes; no elements move.
func (c *VComm) Pack(dst comm.Buf, src *matrix.Dense) { comm.CheckPack(dst, src) }

// Unpack checks shapes; no elements move.
func (c *VComm) Unpack(dst *matrix.Dense, src comm.Buf) { comm.CheckPack(src, dst) }

// Gemm advances the rank's compute state by the local update's flop count
// — x.Flops(m,n,k): 2·m·k·n classically, blas.StrassenFlops under the
// sub-cubic kernel — divided by the intra-rank parallel-efficiency curve
// hockney.Speedup(x.Threads), the virtual model of the live transport's
// row-band workers (Speedup(1) is exactly 1, so the division is bitwise
// neutral for serial ranks and the engines' parity invariant holds
// unchanged) — on the communication clock normally, or on the dedicated
// compute timeline in overlap mode (double buffering with a communication
// engine, the paper's §VI opportunity). Like the point-to-point calls it
// touches only caller-owned state and takes no lock.
func (c *VComm) Gemm(cm, a, b *matrix.Dense, x comm.Exec) {
	if a.Cols != b.Rows || cm.Rows != a.Rows || cm.Cols != b.Cols {
		panic(fmt.Sprintf("simnet: gemm shape mismatch C(%dx%d) += A(%dx%d)*B(%dx%d)",
			cm.Rows, cm.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	flops := x.Flops(a.Rows, b.Cols, a.Cols) / hockney.Speedup(x.Threads)
	c.charge(flops, x.Threads, true)
}

// Axpy advances the rank's compute state by rows·cols flops (one add per
// element) — the virtual cost of the element-wise update Y += alpha·X. No
// trace span: the live transport emits none for Axpy either.
func (c *VComm) Axpy(alpha float64, x, y *matrix.Dense) {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		panic(fmt.Sprintf("simnet: axpy shape mismatch Y(%dx%d) += %g*X(%dx%d)",
			y.Rows, y.Cols, alpha, x.Rows, x.Cols))
	}
	c.charge(float64(x.Rows)*float64(x.Cols), 0, false)
}

// charge advances the caller's compute state by flops: the communication
// clock normally, the dedicated compute timeline in overlap mode. span
// selects whether a Gemm trace span is emitted.
func (c *VComm) charge(flops float64, threads int, span bool) {
	w := c.w
	me := c.WorldRank()
	if w.cfg.Overlap {
		dt := w.cfg.Model.Compute(flops)
		start := w.computeDone[me]
		if clk := w.sim.clocks[me]; clk > start {
			start = clk
		}
		w.computeDone[me] = start + dt
		if rec := w.cfg.Trace; rec != nil && span {
			rec.RankThreads(me, trace.PhaseGemm, start, dt, threads)
		}
	} else {
		pre := w.sim.clocks[me]
		w.sim.ComputeRanks([]int{me}, flops)
		if rec := w.cfg.Trace; rec != nil && span {
			rec.RankThreads(me, trace.PhaseGemm, pre, w.sim.clocks[me]-pre, threads)
		}
	}
}
