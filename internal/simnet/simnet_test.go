package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hockney"
	"repro/internal/platform"
	"repro/internal/sched"
)

var testModel = hockney.Model{Alpha: 1e-5, Beta: 1e-9, Gamma: 1e-10}

func TestSingleCollectiveMatchesSchedCost(t *testing.T) {
	for _, alg := range []sched.Algorithm{sched.Flat, sched.Binomial, sched.Binary, sched.Chain} {
		for _, p := range []int{2, 3, 7, 16, 33} {
			sc, err := sched.NewBroadcast(alg, p, 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			sim := New(p, testModel)
			members := identity(p)
			sim.ExecOne(Collective{Sched: sc, Members: members, PayloadBytes: 1e6})
			want := sc.Cost(1e6, testModel)
			if got := sim.MaxClock(); math.Abs(got-want) > 1e-15+1e-12*want {
				t.Fatalf("%s p=%d: sim %g, sched.Cost %g", alg, p, got, want)
			}
		}
	}
}

// The O(p) ring fast path must agree exactly with transfer-by-transfer
// execution of the same Van de Geijn schedule, for any starting clocks.
func TestRingFastPathEquivalence(t *testing.T) {
	f := func(pp uint8, seed uint16) bool {
		p := int(pp%30) + 2
		sc, err := sched.NewBroadcast(sched.VanDeGeijn, p, int(seed)%p, 1)
		if err != nil {
			return false
		}
		payload := 1e5 + float64(seed)
		// Random-ish but deterministic initial clocks.
		init := make([]float64, p)
		x := uint64(seed) + 1
		for i := range init {
			x = x*6364136223846793005 + 1442695040888963407
			init[i] = float64(x%1000) * 1e-6
		}
		// Reference: event-level execution via sched.CostOnClocks.
		ref := make([]float64, p)
		copy(ref, init)
		sc.CostOnClocks(ref, payload, testModel)
		// Fast path via the simulator.
		sim := New(p, testModel)
		copy(sim.clocks, init)
		sim.ExecOne(Collective{Sched: sc, Members: identity(p), PayloadBytes: payload})
		for i := range ref {
			if math.Abs(ref[i]-sim.clocks[i]) > 1e-12*(1+ref[i]) {
				t.Logf("p=%d rank %d: ref %.15g fast %.15g", p, i, ref[i], sim.clocks[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDisjointCollectivesRunConcurrently(t *testing.T) {
	// Two disjoint binomial broadcasts in one phase must cost the same
	// as one (they overlap perfectly), not twice as much.
	p := 8
	sc, _ := sched.NewBroadcast(sched.Binomial, 4, 0, 1)
	sim := New(p, testModel)
	sim.ExecPhase([]Collective{
		{Sched: sc, Members: []int{0, 1, 2, 3}, PayloadBytes: 1e6},
		{Sched: sc, Members: []int{4, 5, 6, 7}, PayloadBytes: 1e6},
	})
	want := sc.Cost(1e6, testModel)
	if got := sim.MaxClock(); math.Abs(got-want) > 1e-12*want {
		t.Fatalf("concurrent phases: %g, want %g", got, want)
	}
}

func TestSequentialPhasesAccumulate(t *testing.T) {
	p := 4
	sc, _ := sched.NewBroadcast(sched.Binomial, p, 0, 1)
	sim := New(p, testModel)
	one := sc.Cost(1e6, testModel)
	sim.ExecOne(Collective{Sched: sc, Members: identity(p), PayloadBytes: 1e6})
	sim.ExecOne(Collective{Sched: sc, Members: identity(p), PayloadBytes: 1e6})
	if got := sim.MaxClock(); math.Abs(got-2*one) > 1e-12 {
		t.Fatalf("two phases: %g, want %g", got, 2*one)
	}
}

func TestComputeSeparatedFromComm(t *testing.T) {
	p := 4
	sc, _ := sched.NewBroadcast(sched.Binomial, p, 0, 1)
	sim := New(p, testModel)
	sim.ExecOne(Collective{Sched: sc, Members: identity(p), PayloadBytes: 8e5})
	commOnly := sim.MaxCommTime()
	sim.ComputeRanks(identity(p), 1e9) // 0.1s at γ=1e-10
	if math.Abs(sim.MaxCommTime()-commOnly) > 1e-15 {
		t.Fatal("compute leaked into comm time")
	}
	wantTotal := commOnly + 0.1
	if math.Abs(sim.MaxClock()-wantTotal) > 1e-9 {
		t.Fatalf("total %g, want %g", sim.MaxClock(), wantTotal)
	}
}

func TestCommTimeIncludesWaiting(t *testing.T) {
	// Rank 1 computes for long before a broadcast; rank 0 (root) then
	// waits for it — waiting counts as communication for rank 0.
	p := 2
	sc, _ := sched.NewBroadcast(sched.Binomial, p, 0, 1)
	sim := New(p, testModel)
	sim.ComputeRanks([]int{1}, 1e9) // rank 1 busy until 0.1
	sim.ExecOne(Collective{Sched: sc, Members: identity(p), PayloadBytes: 0})
	hop := testModel.Alpha
	if got := sim.CommTime(0); math.Abs(got-(0.1+hop)) > 1e-9 {
		t.Fatalf("root comm time %g, want %g (wait + hop)", got, 0.1+hop)
	}
	if got := sim.CommTime(1); math.Abs(got-hop) > 1e-12 {
		t.Fatalf("late rank comm time %g, want %g", got, hop)
	}
}

func TestContentionScalesBandwidthOnly(t *testing.T) {
	p := 2
	sc, _ := sched.NewBroadcast(sched.Binomial, p, 0, 1)
	free := New(p, testModel)
	free.ExecOne(Collective{Sched: sc, Members: identity(p), PayloadBytes: 1e6})
	congested := New(p, testModel)
	congested.SetContention(func(int) float64 { return 10 })
	congested.ExecOne(Collective{Sched: sc, Members: identity(p), PayloadBytes: 1e6})
	wantDelta := 9 * 1e6 * testModel.Beta // only the mβ term scales
	if got := congested.MaxClock() - free.MaxClock(); math.Abs(got-wantDelta) > 1e-12 {
		t.Fatalf("contention delta %g, want %g", got, wantDelta)
	}
}

func TestSharedSegmentCountsFlows(t *testing.T) {
	// Two disjoint 2-rank broadcasts in one phase under SharedSegment:
	// each transfer sees 2 flows, so bandwidth halves.
	sc, _ := sched.NewBroadcast(sched.Binomial, 2, 0, 1)
	sim := New(4, testModel)
	sim.SetContention(SharedSegment)
	sim.ExecPhase([]Collective{
		{Sched: sc, Members: []int{0, 1}, PayloadBytes: 1e6},
		{Sched: sc, Members: []int{2, 3}, PayloadBytes: 1e6},
	})
	want := testModel.Alpha + 1e6*testModel.Beta*2
	if got := sim.MaxClock(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("shared segment: %g, want %g", got, want)
	}
}

func TestTorusContentionSaturates(t *testing.T) {
	f := TorusContention(6, 16384)
	if f(1) != 1 {
		t.Fatal("single flow must be contention-free")
	}
	cap3d := 6 * math.Pow(16384, 2.0/3.0)
	if got := f(int(cap3d) * 2); math.Abs(got-2) > 0.01 {
		t.Fatalf("2x capacity should give factor 2, got %g", got)
	}
}

func TestPow23(t *testing.T) {
	for _, x := range []float64{1, 8, 27, 1000, 16384, 1048576} {
		want := math.Pow(x, 2.0/3.0)
		if got := pow23(x); math.Abs(got-want) > 1e-9*want {
			t.Fatalf("pow23(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestContentionFor(t *testing.T) {
	if f := ContentionFor(platform.Grid5000(), 128, false); f(100) != 1 {
		t.Fatal("disabled contention must be free")
	}
	if f := ContentionFor(platform.Grid5000(), 128, true); f(100) != 100 {
		t.Fatal("grid5000 should share the segment")
	}
	if f := ContentionFor(platform.BlueGeneP(), 16384, true); f(1) != 1 {
		t.Fatal("torus single flow should be free")
	}
}

func TestMemberMappingPermutes(t *testing.T) {
	// Executing on permuted members must permute the clocks, not change
	// the cost.
	p := 5
	sc, _ := sched.NewBroadcast(sched.Flat, p, 0, 1)
	simA := New(p, testModel)
	simA.ExecOne(Collective{Sched: sc, Members: []int{0, 1, 2, 3, 4}, PayloadBytes: 1e5})
	simB := New(p, testModel)
	simB.ExecOne(Collective{Sched: sc, Members: []int{4, 3, 2, 1, 0}, PayloadBytes: 1e5})
	if math.Abs(simA.MaxClock()-simB.MaxClock()) > 1e-15 {
		t.Fatal("member permutation changed the cost")
	}
	if math.Abs(simA.Clock(1)-simB.Clock(3)) > 1e-15 {
		t.Fatal("member permutation did not permute clocks")
	}
}

func TestWrongMemberCountPanics(t *testing.T) {
	sc, _ := sched.NewBroadcast(sched.Binomial, 4, 0, 1)
	sim := New(4, testModel)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on member/schedule mismatch")
		}
	}()
	sim.ExecOne(Collective{Sched: sc, Members: []int{0, 1}, PayloadBytes: 1})
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p=0")
		}
	}()
	New(0, testModel)
}

// Property: simulated broadcast time is non-decreasing in payload and in
// rank count for binomial trees.
func TestQuickMonotonicity(t *testing.T) {
	f := func(p1, p2 uint8, m1, m2 uint32) bool {
		pa, pb := int(p1%60)+2, int(p2%60)+2
		if pa > pb {
			pa, pb = pb, pa
		}
		ma, mb := float64(m1), float64(m2)
		if ma > mb {
			ma, mb = mb, ma
		}
		cost := func(p int, m float64) float64 {
			sc, err := sched.NewBroadcast(sched.Binomial, p, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			sim := New(p, testModel)
			sim.ExecOne(Collective{Sched: sc, Members: identity(p), PayloadBytes: m})
			return sim.MaxClock()
		}
		return cost(pa, ma) <= cost(pb, mb)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func identity(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}
