package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hockney"
)

var testModel = hockney.Model{Alpha: 1e-5, Beta: 1e-9}

func mustBcast(t *testing.T, alg Algorithm, p, root, segments int) *Schedule {
	t.Helper()
	s, err := NewBroadcast(alg, p, root, segments)
	if err != nil {
		t.Fatalf("NewBroadcast(%s,%d,%d,%d): %v", alg, p, root, segments, err)
	}
	return s
}

func TestAllAlgorithmsValidate(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 32, 33, 64, 100, 128} {
			for _, root := range []int{0, p / 2, p - 1} {
				s := mustBcast(t, alg, p, root, 4)
				if err := Validate(s); err != nil {
					t.Fatalf("%s p=%d root=%d invalid: %v", alg, p, root, err)
				}
			}
		}
	}
}

func TestTreeAlgorithmsNonRedundant(t *testing.T) {
	for _, alg := range []Algorithm{Flat, Binomial, Binary, Chain} {
		for _, p := range []int{1, 2, 5, 8, 16, 31} {
			s := mustBcast(t, alg, p, 0, 3)
			if err := ValidateNoRedundancy(s); err != nil {
				t.Fatalf("%s p=%d redundant: %v", alg, p, err)
			}
		}
	}
}

func TestSingleRankEmptySchedule(t *testing.T) {
	for _, alg := range Algorithms() {
		s := mustBcast(t, alg, 1, 0, 4)
		if s.NumTransfers() != 0 {
			t.Fatalf("%s p=1 has %d transfers", alg, s.NumTransfers())
		}
		if s.Cost(1e6, testModel) != 0 {
			t.Fatalf("%s p=1 non-zero cost", alg)
		}
	}
}

func TestBadArguments(t *testing.T) {
	if _, err := NewBroadcast(Binomial, 0, 0, 1); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := NewBroadcast(Binomial, 4, 4, 1); err == nil {
		t.Fatal("root=p accepted")
	}
	if _, err := NewBroadcast(Algorithm("nope"), 4, 0, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// The binomial tree must complete in exactly ⌈log₂ p⌉ rounds — the paper's
// Table I latency factor.
func TestBinomialRoundCount(t *testing.T) {
	for _, c := range []struct{ p, rounds int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {128, 7}, {1024, 10},
	} {
		s := mustBcast(t, Binomial, c.p, 0, 1)
		if len(s.Rounds) != c.rounds {
			t.Fatalf("binomial p=%d: %d rounds, want %d", c.p, len(s.Rounds), c.rounds)
		}
	}
}

// Binomial cost must equal log₂(p)(α+mβ) for power-of-two p (paper §IV).
func TestBinomialCostMatchesFormula(t *testing.T) {
	m := 1e6 // bytes
	for _, p := range []int{2, 4, 8, 16, 64, 256} {
		s := mustBcast(t, Binomial, p, 0, 1)
		got := s.Cost(m, testModel)
		want := math.Log2(float64(p)) * (testModel.Alpha + m*testModel.Beta)
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("binomial p=%d cost %g, want %g", p, got, want)
		}
	}
}

// Flat tree cost is (p−1)(α+mβ): the root serialises all sends.
func TestFlatCostMatchesFormula(t *testing.T) {
	m := 1e5
	for _, p := range []int{2, 3, 9, 17} {
		s := mustBcast(t, Flat, p, 0, 1)
		got := s.Cost(m, testModel)
		want := float64(p-1) * (testModel.Alpha + m*testModel.Beta)
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("flat p=%d cost %g, want %g", p, got, want)
		}
	}
}

// Van de Geijn cost must match (log₂p + p − 1)α + 2((p−1)/p)mβ for
// power-of-two p (paper Table II). The clock-based replay should agree with
// the closed form to within rounding: the scatter's bandwidth term is
// (p−1)/p·m serialised down the tree and the ring adds (p−1)/p·m more.
func TestVanDeGeijnCostMatchesFormula(t *testing.T) {
	m := 8e6
	for _, p := range []int{2, 4, 8, 16, 64, 128} {
		s := mustBcast(t, VanDeGeijn, p, 0, 1)
		got := s.Cost(m, testModel)
		pf := float64(p)
		want := (math.Log2(pf)+pf-1)*testModel.Alpha + 2*(pf-1)/pf*m*testModel.Beta
		if math.Abs(got-want) > 0.02*want {
			t.Fatalf("vandegeijn p=%d cost %g, want %g (%.1f%% off)",
				p, got, want, 100*math.Abs(got-want)/want)
		}
	}
}

// Chain pipeline cost is (S+p−2)(α + (m/S)β).
func TestChainCostMatchesFormula(t *testing.T) {
	m := 1e6
	for _, c := range []struct{ p, segs int }{{2, 1}, {4, 4}, {8, 16}, {16, 8}} {
		s := mustBcast(t, Chain, c.p, 0, c.segs)
		got := s.Cost(m, testModel)
		want := float64(c.segs+c.p-2) * (testModel.Alpha + m/float64(c.segs)*testModel.Beta)
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("chain p=%d S=%d cost %g, want %g", c.p, c.segs, got, want)
		}
	}
}

// Tree algorithms move exactly (p−1)·m bytes aggregate. Van de Geijn moves
// more in aggregate — the binomial scatter ships m/2 per round over
// log₂(p) rounds (segments traverse several hops) and the ring adds
// (p−1)·p·(m/p) — even though its *per-rank* (critical-path) bytes are
// lower, which is what the paper's bandwidth factor counts.
func TestTotalBytes(t *testing.T) {
	m := 1000.0
	for _, alg := range []Algorithm{Flat, Binomial, Binary} {
		s := mustBcast(t, alg, 16, 0, 1)
		if got := s.TotalBytes(m); got != 15*m {
			t.Fatalf("%s total bytes %g, want %g", alg, got, 15*m)
		}
	}
	s := mustBcast(t, Chain, 16, 0, 4)
	if got := s.TotalBytes(m); math.Abs(got-15*m) > 1e-9 {
		t.Fatalf("chain total bytes %g, want %g", got, 15*m)
	}
	// p=16: scatter log₂(16)·m/2 = 2m; ring 15 rounds × 16 ranks × m/16.
	sv := mustBcast(t, VanDeGeijn, 16, 0, 1)
	want := 2*m + 15*m
	if got := sv.TotalBytes(m); math.Abs(got-want) > 1e-9 {
		t.Fatalf("vandegeijn total bytes %g, want %g", got, want)
	}
}

// For large messages Van de Geijn must beat binomial (2(p−1)/p·mβ versus
// log₂(p)·mβ); for tiny messages binomial must win on latency.
func TestAlgorithmCrossover(t *testing.T) {
	p := 64
	bin := mustBcast(t, Binomial, p, 0, 1)
	vdg := mustBcast(t, VanDeGeijn, p, 0, 1)
	big := 1e8
	if bin.Cost(big, testModel) <= vdg.Cost(big, testModel) {
		t.Fatal("binomial should lose to van de Geijn on large messages")
	}
	small := 8.0
	if bin.Cost(small, testModel) >= vdg.Cost(small, testModel) {
		t.Fatal("binomial should beat van de Geijn on small messages")
	}
}

func TestRootRelativity(t *testing.T) {
	// A schedule rooted at r must be the root-0 schedule with ranks
	// rotated: costs identical, validation passes, and the root is the
	// only rank never receiving.
	for _, alg := range Algorithms() {
		p := 16
		s0 := mustBcast(t, alg, p, 0, 2)
		s5 := mustBcast(t, alg, p, 5, 2)
		if math.Abs(s0.Cost(1e6, testModel)-s5.Cost(1e6, testModel)) > 1e-12 {
			t.Fatalf("%s: cost depends on root", alg)
		}
		for _, round := range s5.Rounds {
			for _, tr := range round.Transfers {
				if tr.Dst == 5 && alg != VanDeGeijn {
					t.Fatalf("%s: root received a transfer", alg)
				}
			}
		}
	}
}

func TestCostOnClocksComposition(t *testing.T) {
	// Two broadcasts back to back cost the sum of their costs when the
	// clocks are shared (no overlap possible on identical rank sets).
	p := 8
	s := mustBcast(t, Binomial, p, 0, 1)
	single := s.Cost(1e6, testModel)
	clocks := make([]float64, p)
	s.CostOnClocks(clocks, 1e6, testModel)
	s.CostOnClocks(clocks, 1e6, testModel)
	max := 0.0
	for _, c := range clocks {
		if c > max {
			max = c
		}
	}
	if math.Abs(max-2*single) > 1e-12 {
		t.Fatalf("composed cost %g, want %g", max, 2*single)
	}
}

func TestCostOnClocksWrongLengthPanics(t *testing.T) {
	s := mustBcast(t, Binomial, 8, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong clock slice length did not panic")
		}
	}()
	s.CostOnClocks(make([]float64, 4), 1, testModel)
}

// Property: every generated schedule for random (alg, p, root) validates.
func TestQuickAllValid(t *testing.T) {
	algs := Algorithms()
	f := func(pp, rr, aa uint16) bool {
		p := int(pp%200) + 1
		root := int(rr) % p
		alg := algs[int(aa)%len(algs)]
		s, err := NewBroadcast(alg, p, root, int(aa%7)+1)
		if err != nil {
			return false
		}
		return Validate(s) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: binomial latency (rounds) never exceeds flat and never exceeds
// p−1; cost is monotone in message size.
func TestQuickCostMonotoneInSize(t *testing.T) {
	s := mustBcast(t, VanDeGeijn, 24, 0, 1)
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return s.Cost(x, testModel) <= s.Cost(y, testModel)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSegBytes(t *testing.T) {
	s := mustBcast(t, VanDeGeijn, 4, 0, 1)
	tr := Transfer{Src: 0, Dst: 2, SegLo: 2, SegHi: 4}
	if got := s.SegBytes(tr, 1000); got != 500 {
		t.Fatalf("SegBytes = %g, want 500", got)
	}
}

func TestBinaryDeeperButParallel(t *testing.T) {
	// Binary tree rounds grow like 2·log₂ p; must still validate and be
	// cheaper than flat for large p.
	p := 64
	bin := mustBcast(t, Binary, p, 0, 1)
	flat := mustBcast(t, Flat, p, 0, 1)
	if bin.Cost(1e6, testModel) >= flat.Cost(1e6, testModel) {
		t.Fatal("binary tree should beat flat tree at p=64")
	}
}

func TestSegmentRange(t *testing.T) {
	// 10 elements in 4 segments: sizes 3,3,2,2.
	cases := []struct{ lo, hi, wantLo, wantHi int }{
		{0, 1, 0, 3}, {1, 2, 3, 6}, {2, 3, 6, 8}, {3, 4, 8, 10}, {0, 4, 0, 10}, {1, 3, 3, 8},
	}
	for _, c := range cases {
		lo, hi := SegmentRange(10, 4, c.lo, c.hi)
		if lo != c.wantLo || hi != c.wantHi {
			t.Fatalf("SegmentRange(10,4,%d,%d) = %d,%d want %d,%d", c.lo, c.hi, lo, hi, c.wantLo, c.wantHi)
		}
	}
	// Payload smaller than segment count: empty middle segments are fine.
	lo, hi := SegmentRange(2, 4, 2, 3)
	if lo != 2 || hi != 2 {
		t.Fatalf("SegmentRange(2,4,2,3) = %d,%d", lo, hi)
	}
}
