package sched

import "fmt"

// Validate checks the structural invariants every broadcast schedule must
// satisfy; the property tests run it over every algorithm, size and root.
//
//  1. rank and segment indices are in range and no rank sends to itself;
//  2. one-port model: within a round, a rank is the source of at most one
//     transfer and the destination of at most one transfer;
//  3. data availability: a rank only sends segments it already holds
//     (the root starts holding all segments);
//  4. completeness: after the last round every rank holds every segment.
//
// Redundant deliveries (receiving a segment already held) are permitted:
// the scatter-allgather broadcast really performs them — ranks that
// forwarded segments during the scatter still take part in every ring
// round, exactly as in the MPICH implementation and in the paper's
// (log₂p + p − 1)α cost. Tree algorithms never produce them, which
// ValidateNoRedundancy asserts separately.
func Validate(s *Schedule) error {
	if s.NumRanks <= 0 {
		return fmt.Errorf("sched: schedule over %d ranks", s.NumRanks)
	}
	if s.Segments <= 0 {
		return fmt.Errorf("sched: %d segments", s.Segments)
	}
	// holds[rank][seg]
	holds := make([][]bool, s.NumRanks)
	for r := range holds {
		holds[r] = make([]bool, s.Segments)
	}
	for seg := 0; seg < s.Segments; seg++ {
		holds[s.Root][seg] = true
	}
	for ri, round := range s.Rounds {
		srcSeen := make(map[int]bool)
		dstSeen := make(map[int]bool)
		// Deliveries become visible at the end of the round: stage them.
		type delivery struct{ rank, lo, hi int }
		var staged []delivery
		for ti, t := range round.Transfers {
			if t.Src < 0 || t.Src >= s.NumRanks || t.Dst < 0 || t.Dst >= s.NumRanks {
				return fmt.Errorf("round %d transfer %d: rank out of range: %+v", ri, ti, t)
			}
			if t.Src == t.Dst {
				return fmt.Errorf("round %d transfer %d: self-send: %+v", ri, ti, t)
			}
			if t.SegLo < 0 || t.SegHi > s.Segments || t.SegLo >= t.SegHi {
				return fmt.Errorf("round %d transfer %d: bad segment range: %+v", ri, ti, t)
			}
			if srcSeen[t.Src] {
				return fmt.Errorf("round %d: rank %d sends twice (one-port violation)", ri, t.Src)
			}
			if dstSeen[t.Dst] {
				return fmt.Errorf("round %d: rank %d receives twice (one-port violation)", ri, t.Dst)
			}
			srcSeen[t.Src] = true
			dstSeen[t.Dst] = true
			for seg := t.SegLo; seg < t.SegHi; seg++ {
				if !holds[t.Src][seg] {
					return fmt.Errorf("round %d: rank %d sends segment %d it does not hold", ri, t.Src, seg)
				}
			}
			staged = append(staged, delivery{t.Dst, t.SegLo, t.SegHi})
		}
		for _, d := range staged {
			for seg := d.lo; seg < d.hi; seg++ {
				holds[d.rank][seg] = true
			}
		}
	}
	for r := 0; r < s.NumRanks; r++ {
		for seg := 0; seg < s.Segments; seg++ {
			if !holds[r][seg] {
				return fmt.Errorf("incomplete: rank %d never receives segment %d", r, seg)
			}
		}
	}
	return nil
}

// ValidateNoRedundancy additionally checks that no rank ever receives a
// segment it already holds — true of every tree-shaped broadcast (flat,
// binomial, binary, chain) where traffic equals the information-theoretic
// minimum, and deliberately false for scatter-allgather.
func ValidateNoRedundancy(s *Schedule) error {
	holds := make([][]bool, s.NumRanks)
	for r := range holds {
		holds[r] = make([]bool, s.Segments)
	}
	for seg := 0; seg < s.Segments; seg++ {
		holds[s.Root][seg] = true
	}
	for ri, round := range s.Rounds {
		for _, t := range round.Transfers {
			for seg := t.SegLo; seg < t.SegHi; seg++ {
				if holds[t.Dst][seg] {
					return fmt.Errorf("round %d: rank %d re-receives segment %d", ri, t.Dst, seg)
				}
			}
		}
		for _, t := range round.Transfers {
			for seg := t.SegLo; seg < t.SegHi; seg++ {
				holds[t.Dst][seg] = true
			}
		}
	}
	return nil
}
