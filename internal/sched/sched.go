// Package sched generates collective-communication schedules: explicit,
// data-dependency-respecting lists of point-to-point transfers that realise a
// broadcast over p ranks. A schedule is pure data, produced once per
// (algorithm, p, root) and then executed by two independent engines:
//
//   - internal/mpi replays it on real channels, moving real matrix blocks
//     (the correctness path);
//   - internal/simnet replays it on per-rank virtual clocks under the
//     Hockney model (the timing path for the paper's large-scale figures).
//
// Because both engines execute the *same* transfers, the simulated times in
// EXPERIMENTS.md measure exactly the communication pattern the runnable code
// performs — the property the paper's Section IV analysis relies on.
//
// The algorithms provided are the ones the paper names (Section II-B and IV):
// binomial tree, Van de Geijn scatter-allgather, plus the flat tree, binary
// tree and segmented chain (pipelined linear) variants found in MPICH/Open
// MPI broadcast implementations.
package sched

import (
	"fmt"

	"repro/internal/hockney"
)

// Transfer is one point-to-point message: Src sends segments [SegLo,SegHi)
// of the broadcast payload to Dst. Ranks are communicator-local.
type Transfer struct {
	Src, Dst     int
	SegLo, SegHi int
}

// Round groups transfers that may proceed concurrently. Within a round each
// rank appears at most once as a sender and at most once as a receiver
// (one-port, full-duplex model — the standard assumption behind the
// log₂(p)-style costs in the paper's Table I/II).
type Round struct {
	Transfers []Transfer
}

// Schedule is an ordered sequence of rounds realising one collective over
// NumRanks ranks rooted at Root, with the payload cut into Segments equal
// parts.
type Schedule struct {
	Algorithm Algorithm
	NumRanks  int
	Root      int
	Segments  int
	Rounds    []Round

	// RingStart/RingRounds describe a ring-allgather suffix: starting at
	// round index RingStart, RingRounds consecutive rounds each carry
	// exactly one single-segment transfer from every rank to its ring
	// successor. The Van de Geijn generator sets them (RingStart < 0
	// otherwise); the simulator uses them to advance clocks through the
	// O(p²) ring with an exact O(p) recurrence (see simnet), which is
	// property-tested equivalent to transfer-by-transfer execution.
	RingStart  int
	RingRounds int
}

// Algorithm names a broadcast algorithm.
type Algorithm string

// Broadcast algorithm identifiers.
const (
	// Flat is the star topology: the root sends the whole message to
	// every other rank in sequence. Cost (p-1)(α+mβ).
	Flat Algorithm = "flat"
	// Binomial is the binomial tree: log₂(p) rounds, every informed rank
	// forwards. Cost ⌈log₂ p⌉(α+mβ) — the first row of the paper's
	// Table I.
	Binomial Algorithm = "binomial"
	// Binary is a (non-pipelined) complete binary tree; parents forward
	// to their two children in consecutive rounds.
	Binary Algorithm = "binary"
	// Chain is the segmented linear pipeline: ranks form a line and S
	// message segments stream down it. Cost (S+p-2)(α+(m/S)β).
	Chain Algorithm = "chain"
	// VanDeGeijn is the scatter-allgather broadcast (Barnett et al.,
	// InterCom): binomial scatter of p segments followed by a ring
	// allgather. Cost (log₂ p + p − 1)α + 2((p−1)/p)mβ — the second row
	// of the paper's Table II.
	VanDeGeijn Algorithm = "vandegeijn"
)

// Algorithms lists every broadcast generator, for sweeps and tests.
func Algorithms() []Algorithm {
	return []Algorithm{Flat, Binomial, Binary, Chain, VanDeGeijn}
}

// ByName maps a user-facing name (plus the historical aliases) to a
// broadcast algorithm; the empty string defaults to binomial. Every
// surface that parses broadcast names — the façade's BroadcastByName, the
// CLI, the serving daemon — routes here, so a new schedule or alias is
// added in one place.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "", string(Binomial):
		return Binomial, nil
	case string(VanDeGeijn), "vdg", "scatter-allgather":
		return VanDeGeijn, nil
	case string(Flat):
		return Flat, nil
	case string(Binary):
		return Binary, nil
	case string(Chain), "pipeline":
		return Chain, nil
	}
	return "", fmt.Errorf("sched: unknown broadcast algorithm %q (have binomial, vandegeijn, flat, binary, chain)", name)
}

// NewBroadcast builds the schedule for the given algorithm over p ranks
// rooted at root. segments is honoured only by Chain (pipeline depth);
// VanDeGeijn always uses p segments, the others 1. segments <= 0 defaults
// to 1.
func NewBroadcast(alg Algorithm, p, root, segments int) (*Schedule, error) {
	if p <= 0 {
		return nil, fmt.Errorf("sched: invalid rank count %d", p)
	}
	if root < 0 || root >= p {
		return nil, fmt.Errorf("sched: root %d outside [0,%d)", root, p)
	}
	if segments <= 0 {
		segments = 1
	}
	var s *Schedule
	switch alg {
	case Flat:
		s = flatBroadcast(p, root)
	case Binomial:
		s = treeBroadcast(Binomial, p, root, binomialParents(p))
	case Binary:
		s = treeBroadcast(Binary, p, root, binaryParents(p))
	case Chain:
		s = chainBroadcast(p, root, segments)
	case VanDeGeijn:
		s = vanDeGeijnBroadcast(p, root)
	default:
		return nil, fmt.Errorf("sched: unknown broadcast algorithm %q", alg)
	}
	return s, nil
}

// rel converts an absolute rank to a root-relative virtual rank and back.
func rel(rank, root, p int) int  { return ((rank-root)%p + p) % p }
func abs(vrank, root, p int) int { return (vrank + root) % p }

// flatBroadcast: the root sends the full payload to each rank in turn. The
// one-port model forces one transfer per round.
func flatBroadcast(p, root int) *Schedule {
	s := &Schedule{Algorithm: Flat, NumRanks: p, Root: root, Segments: 1, RingStart: -1}
	for vr := 1; vr < p; vr++ {
		s.Rounds = append(s.Rounds, Round{Transfers: []Transfer{
			{Src: root, Dst: abs(vr, root, p), SegLo: 0, SegHi: 1},
		}})
	}
	return s
}

// binomialParents returns, in virtual-rank space, the parent of each rank in
// the binomial broadcast tree rooted at 0: the parent of vr clears its
// highest set bit.
func binomialParents(p int) []int {
	parent := make([]int, p)
	parent[0] = -1
	for vr := 1; vr < p; vr++ {
		hb := 1
		for hb<<1 <= vr {
			hb <<= 1
		}
		parent[vr] = vr - hb
	}
	return parent
}

// binaryParents returns the complete-binary-tree parents in virtual-rank
// space: children of vr are 2vr+1 and 2vr+2.
func binaryParents(p int) []int {
	parent := make([]int, p)
	parent[0] = -1
	for vr := 1; vr < p; vr++ {
		parent[vr] = (vr - 1) / 2
	}
	return parent
}

// treeBroadcast turns any broadcast tree (given as a parent array over
// virtual ranks) into a one-port round schedule with a greedy earliest-
// round assignment: an edge parent→child is scheduled in the first round
// where the parent already holds the data and neither endpoint is busy.
// For the binomial tree this reproduces the classic ⌈log₂ p⌉-round
// schedule exactly (asserted in tests).
func treeBroadcast(alg Algorithm, p, root int, parent []int) *Schedule {
	s := &Schedule{Algorithm: alg, NumRanks: p, Root: root, Segments: 1, RingStart: -1}
	if p == 1 {
		return s
	}
	// children lists per virtual rank in increasing order. For the
	// binomial parent array the child with the smallest virtual rank
	// roots the largest subtree (clearing the highest bit of vr), so
	// ascending order sends to the largest subtree first — the classic
	// recursive-doubling order that completes in ⌈log₂ p⌉ rounds
	// (asserted by TestBinomialRoundCount).
	children := make([][]int, p)
	for vr := 1; vr < p; vr++ {
		children[parent[vr]] = append(children[parent[vr]], vr)
	}
	avail := make([]int, p)     // first round in which the rank holds data
	busyUntil := make([]int, p) // first round in which the rank is free
	for vr := range avail {
		avail[vr] = -1
	}
	avail[0] = 0
	// BFS order guarantees parents are placed before children.
	queue := []int{0}
	var edges []struct{ round, src, dst int }
	maxRound := 0
	for len(queue) > 0 {
		vr := queue[0]
		queue = queue[1:]
		for _, child := range children[vr] {
			r := avail[vr]
			if busyUntil[vr] > r {
				r = busyUntil[vr]
			}
			busyUntil[vr] = r + 1
			avail[child] = r + 1
			busyUntil[child] = r + 1
			edges = append(edges, struct{ round, src, dst int }{r, vr, child})
			if r+1 > maxRound {
				maxRound = r + 1
			}
			queue = append(queue, child)
		}
	}
	s.Rounds = make([]Round, maxRound)
	for _, e := range edges {
		s.Rounds[e.round].Transfers = append(s.Rounds[e.round].Transfers, Transfer{
			Src: abs(e.src, root, p), Dst: abs(e.dst, root, p), SegLo: 0, SegHi: 1,
		})
	}
	return s
}

// chainBroadcast streams `segments` pieces down the line
// root → root+1 → … : round t carries segment t−i over edge (i,i+1) in
// virtual-rank space whenever 0 ≤ t−i < segments.
func chainBroadcast(p, root, segments int) *Schedule {
	s := &Schedule{Algorithm: Chain, NumRanks: p, Root: root, Segments: segments, RingStart: -1}
	if p == 1 {
		return s
	}
	totalRounds := segments + p - 2
	s.Rounds = make([]Round, totalRounds)
	for t := 0; t < totalRounds; t++ {
		for vr := 0; vr < p-1; vr++ {
			seg := t - vr
			if seg < 0 || seg >= segments {
				continue
			}
			s.Rounds[t].Transfers = append(s.Rounds[t].Transfers, Transfer{
				Src: abs(vr, root, p), Dst: abs(vr+1, root, p), SegLo: seg, SegHi: seg + 1,
			})
		}
	}
	return s
}

// vanDeGeijnBroadcast: binomial scatter of p segments (segment i destined to
// virtual rank i) followed by a ring allgather. Works for any p, not only
// powers of two: the scatter splits the destination range at the largest
// power of two below its size, exactly like the MPICH implementation.
func vanDeGeijnBroadcast(p, root int) *Schedule {
	s := &Schedule{Algorithm: VanDeGeijn, NumRanks: p, Root: root, Segments: p, RingStart: -1}
	if p == 1 {
		return s
	}
	// Scatter phase. Each informed rank owns a contiguous virtual-rank
	// interval [lo,hi) whose segments it still holds; it repeatedly sends
	// the upper half to the first rank of that half.
	type span struct{ lo, hi int }
	owner := map[int]span{0: {0, p}}
	round := 0
	for {
		var transfers []Transfer
		next := map[int]span{}
		for vr, sp := range owner {
			size := sp.hi - sp.lo
			if size <= 1 {
				next[vr] = sp
				continue
			}
			half := 1
			for half<<1 < size {
				half <<= 1
			}
			mid := sp.lo + half
			transfers = append(transfers, Transfer{
				Src: abs(vr, root, p), Dst: abs(mid, root, p), SegLo: mid, SegHi: sp.hi,
			})
			next[vr] = span{sp.lo, mid}
			next[mid] = span{mid, sp.hi}
		}
		if len(transfers) == 0 {
			break
		}
		s.Rounds = append(s.Rounds, Round{Transfers: sortTransfers(transfers)})
		owner = next
		round++
		if round > 64 {
			panic("sched: scatter did not converge")
		}
	}
	// Ring allgather: p−1 rounds; in round r, virtual rank vr sends
	// segment (vr−r mod p) to vr+1.
	s.RingStart = len(s.Rounds)
	s.RingRounds = p - 1
	for r := 0; r < p-1; r++ {
		var transfers []Transfer
		for vr := 0; vr < p; vr++ {
			seg := ((vr-r)%p + p) % p
			transfers = append(transfers, Transfer{
				Src: abs(vr, root, p), Dst: abs((vr+1)%p, root, p), SegLo: seg, SegHi: seg + 1,
			})
		}
		s.Rounds = append(s.Rounds, Round{Transfers: transfers})
	}
	return s
}

// sortTransfers orders transfers deterministically by (Src,Dst) so schedule
// generation is reproducible regardless of map iteration order.
func sortTransfers(ts []Transfer) []Transfer {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0; j-- {
			a, b := ts[j-1], ts[j]
			if a.Src < b.Src || (a.Src == b.Src && a.Dst <= b.Dst) {
				break
			}
			ts[j-1], ts[j] = b, a
		}
	}
	return ts
}

// SegBytes returns the wire size of a transfer carrying seg segments of a
// payload of m total bytes cut into `segments` parts.
func (s *Schedule) SegBytes(t Transfer, payloadBytes float64) float64 {
	return payloadBytes * float64(t.SegHi-t.SegLo) / float64(s.Segments)
}

// SegmentRange maps the segment interval [segLo,segHi) of a payload of n
// elements cut into `segments` parts onto element indices. Segments are
// near-equal: the first n%segments segments get one extra element, matching
// how MPI implementations split non-divisible buffers. Both schedule
// executors — the live runtime (internal/mpi) and the virtual communicator
// (internal/simnet) — use this same integer split, so their per-transfer
// byte counts agree exactly.
func SegmentRange(n, segments, segLo, segHi int) (lo, hi int) {
	segStart := func(s int) int {
		base := n / segments
		extra := n % segments
		if s <= extra {
			return s * (base + 1)
		}
		return extra*(base+1) + (s-extra)*base
	}
	return segStart(segLo), segStart(segHi)
}

// Cost replays the schedule on per-rank virtual clocks under the Hockney
// model and returns the time at which the last rank completes — the
// congestion-free broadcast time. Both endpoints of a transfer are occupied
// for its whole duration (rendezvous semantics).
func (s *Schedule) Cost(payloadBytes float64, m hockney.Model) float64 {
	clocks := make([]float64, s.NumRanks)
	s.CostOnClocks(clocks, payloadBytes, m)
	max := 0.0
	for _, c := range clocks {
		if c > max {
			max = c
		}
	}
	return max
}

// CostOnClocks advances the provided per-rank clocks through the schedule.
// It is the composition primitive the simulator uses to chain many
// collectives and compute phases into one timeline.
//
// Rounds use full-duplex one-port semantics: within a round every transfer
// starts from the pre-round clocks of its endpoints, so a rank may send one
// message and receive another simultaneously (the ring allgather and the
// chain pipeline rely on this, and it is the assumption behind their
// (p−1)(α+(m/p)β)-style closed forms). Transfers in different rounds
// serialise through the updated clocks.
func (s *Schedule) CostOnClocks(clocks []float64, payloadBytes float64, m hockney.Model) {
	if len(clocks) != s.NumRanks {
		panic(fmt.Sprintf("sched: %d clocks for %d ranks", len(clocks), s.NumRanks))
	}
	type update struct {
		rank int
		end  float64
	}
	var updates []update
	for _, round := range s.Rounds {
		updates = updates[:0]
		for _, t := range round.Transfers {
			start := clocks[t.Src]
			if clocks[t.Dst] > start {
				start = clocks[t.Dst]
			}
			end := start + m.PointToPoint(s.SegBytes(t, payloadBytes))
			updates = append(updates, update{t.Src, end}, update{t.Dst, end})
		}
		for _, u := range updates {
			if u.end > clocks[u.rank] {
				clocks[u.rank] = u.end
			}
		}
	}
}

// TotalBytes returns the total traffic of the schedule for a payload of m
// bytes — the bandwidth-term numerator in the paper's cost tables.
func (s *Schedule) TotalBytes(payloadBytes float64) float64 {
	sum := 0.0
	for _, round := range s.Rounds {
		for _, t := range round.Transfers {
			sum += s.SegBytes(t, payloadBytes)
		}
	}
	return sum
}

// NumTransfers returns the number of point-to-point messages.
func (s *Schedule) NumTransfers() int {
	n := 0
	for _, r := range s.Rounds {
		n += len(r.Transfers)
	}
	return n
}
