// AVX2+FMA micro-kernel for the packed GEMM path, plus the CPUID probe
// that gates it. The kernel contracts one packed mr×kc A micropanel
// against one packed kc×nr B micropanel and adds the mr×nr product into
// the C micro-tile. Accumulators live in ymm registers: one register per
// C row and two chains per row (even/odd k), so eight FMA chains cover
// the FMA latency at full throughput. Only full 4×4 tiles come here; edge
// tiles take the portable masked kernel.

#include "textflag.h"

// func cpuHasAVXFMA() bool
TEXT ·cpuHasAVXFMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, BX
	ANDL $0x18001000, BX // FMA (bit 12) | OSXSAVE (27) | AVX (28)
	CMPL BX, $0x18001000
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX          // XCR0: xmm (bit 1) and ymm (bit 2) state enabled
	CMPL AX, $6
	JNE  no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func kernel4x4fma(kc int, ap, bp, ct *float64, ldc int)
TEXT ·kernel4x4fma(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ ct+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8          // C row stride in bytes

	// Y0..Y3: even-k accumulators for C rows 0..3; Y4..Y7: odd-k chains.
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	CMPQ CX, $2
	JL   tail

loop:
	VMOVUPD      (DI), Y8       // B micropanel row k
	VMOVUPD      32(DI), Y9     // B micropanel row k+1
	VBROADCASTSD (SI), Y10      // A(0, k)
	VBROADCASTSD 32(SI), Y11    // A(0, k+1)
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y11, Y4
	VBROADCASTSD 8(SI), Y10
	VBROADCASTSD 40(SI), Y11
	VFMADD231PD  Y8, Y10, Y1
	VFMADD231PD  Y9, Y11, Y5
	VBROADCASTSD 16(SI), Y10
	VBROADCASTSD 48(SI), Y11
	VFMADD231PD  Y8, Y10, Y2
	VFMADD231PD  Y9, Y11, Y6
	VBROADCASTSD 24(SI), Y10
	VBROADCASTSD 56(SI), Y11
	VFMADD231PD  Y8, Y10, Y3
	VFMADD231PD  Y9, Y11, Y7
	ADDQ         $64, SI
	ADDQ         $64, DI
	SUBQ         $2, CX
	CMPQ         CX, $2
	JGE          loop

tail:
	TESTQ CX, CX
	JZ    reduce
	VMOVUPD      (DI), Y8
	VBROADCASTSD (SI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VBROADCASTSD 8(SI), Y10
	VFMADD231PD  Y8, Y10, Y1
	VBROADCASTSD 16(SI), Y10
	VFMADD231PD  Y8, Y10, Y2
	VBROADCASTSD 24(SI), Y10
	VFMADD231PD  Y8, Y10, Y3

reduce:
	VADDPD Y4, Y0, Y0
	VADDPD Y5, Y1, Y1
	VADDPD Y6, Y2, Y2
	VADDPD Y7, Y3, Y3

	VADDPD  (DX), Y0, Y0
	VMOVUPD Y0, (DX)
	ADDQ    R8, DX
	VADDPD  (DX), Y1, Y1
	VMOVUPD Y1, (DX)
	ADDQ    R8, DX
	VADDPD  (DX), Y2, Y2
	VMOVUPD Y2, (DX)
	ADDQ    R8, DX
	VADDPD  (DX), Y3, Y3
	VMOVUPD Y3, (DX)
	VZEROUPPER
	RET
