package blas

import (
	"testing"

	"repro/internal/matrix"
)

// relTol is the acceptance tolerance for Strassen vs the packed reference:
// Strassen reassociates the arithmetic, so bit equality is not expected.
const relTol = 1e-9

func assertClose(t *testing.T, got, want *matrix.Dense, ctx string) {
	t.Helper()
	diff := matrix.MaxAbsDiff(got, want)
	scale := want.FrobeniusNorm()
	if scale == 0 {
		scale = 1
	}
	if diff/scale > relTol {
		t.Fatalf("%s: relative error %g exceeds %g", ctx, diff/scale, relTol)
	}
}

// TestStrassenGemmPropertyGrid validates C += A·B against the packed
// reference over ragged, non-divisible and rectangular shapes, with a
// nonzero initial C so the accumulate contract is exercised.
func TestStrassenGemmPropertyGrid(t *testing.T) {
	shapes := [][3]int{
		{64, 64, 64},    // even power of two
		{96, 96, 96},    // divisible but not a power of two
		{65, 65, 65},    // odd at the top level
		{100, 60, 84},   // rectangular, even
		{97, 61, 85},    // rectangular, odd everywhere
		{33, 129, 65},   // ragged: every level pads
		{128, 16, 128},  // one dim below any cutoff
		{1, 77, 77},     // degenerate row
		{130, 258, 514}, // pad-and-crop style near-round
	}
	cutoffs := []int{8, 16, 32}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := matrix.Random(m, k, 11)
		b := matrix.Random(k, n, 22)
		c0 := matrix.Random(m, n, 33)
		want := c0.Clone()
		Gemm(want, a, b)
		for _, cut := range cutoffs {
			got := c0.Clone()
			StrassenGemm(got, a, b, cut, 1)
			assertClose(t, got, want, "strassen")
		}
	}
}

// TestStrassenGemmViews runs Strassen on strided views (submatrices of a
// larger allocation), the shape the distributed quadrant code hands it.
func TestStrassenGemmViews(t *testing.T) {
	big := matrix.Random(200, 200, 7)
	a := big.View(3, 5, 90, 70)
	b := matrix.Random(210, 210, 8).View(0, 1, 70, 110)
	c := matrix.New(120, 120).View(10, 5, 90, 110)
	want := c.Clone()
	Gemm(want, a, b)
	StrassenGemm(c, a, b, 16, 1)
	assertClose(t, c, want, "strassen on views")
}

// TestStrassenThresholdBoundary checks sizes just below, at and just above
// the cutoff: at or below the cutoff the packed path runs verbatim
// (bit-identical to Gemm); above it the recursion engages and stays within
// tolerance.
func TestStrassenThresholdBoundary(t *testing.T) {
	const cut = 64
	for _, n := range []int{cut - 1, cut, cut + 1, 2 * cut} {
		a := matrix.Random(n, n, 1)
		b := matrix.Random(n, n, 2)
		want := matrix.New(n, n)
		Gemm(want, a, b)
		got := matrix.New(n, n)
		StrassenGemm(got, a, b, cut, 1)
		if n <= cut {
			if !matrix.Equal(got, want) {
				t.Fatalf("n=%d ≤ cutoff %d must take the packed path bit-identically", n, cut)
			}
			continue
		}
		assertClose(t, got, want, "above cutoff")
	}
}

// TestStrassenThreadDeterminism: the combine stage applies contributions in
// fixed product order regardless of worker count, so every thread count
// yields the same bits.
func TestStrassenThreadDeterminism(t *testing.T) {
	a := matrix.Random(130, 140, 3)
	b := matrix.Random(140, 150, 4)
	ref := matrix.New(130, 150)
	StrassenGemm(ref, a, b, 32, 1)
	for _, th := range []int{2, 3, 4, 7, 16} {
		got := matrix.New(130, 150)
		StrassenGemm(got, a, b, 32, th)
		if !matrix.Equal(got, ref) {
			t.Fatalf("threads=%d differs from serial bits", th)
		}
		// And repeated runs at the same count are stable.
		again := matrix.New(130, 150)
		StrassenGemm(again, a, b, 32, th)
		if !matrix.Equal(again, got) {
			t.Fatalf("threads=%d not deterministic across runs", th)
		}
	}
}

// TestStrassenFlops pins the recursion accounting: at or below the cutoff
// the count is exactly 2mnk, one level up it is 7 sub-multiplies plus the
// 5+5+12 quadrant adds.
func TestStrassenFlops(t *testing.T) {
	if got, want := StrassenFlops(64, 64, 64, 64), FlopsGemm(64, 64, 64); got != want {
		t.Fatalf("base case: got %g want %g", got, want)
	}
	q := 64.0 * 64
	want := 7*FlopsGemm(64, 64, 64) + 22*q
	if got := StrassenFlops(128, 128, 128, 64); got != want {
		t.Fatalf("one level: got %g want %g", got, want)
	}
	// Odd dims round each quadrant up.
	q = 64.0 * 64
	want = 7*FlopsGemm(64, 64, 64) + 22*q
	if got := StrassenFlops(127, 127, 127, 64); got != want {
		t.Fatalf("odd one level: got %g want %g", got, want)
	}
	// Cutoff ≤ 0 selects the default.
	if StrassenFlops(512, 512, 512, 0) != StrassenFlops(512, 512, 512, DefaultStrassenCutoff) {
		t.Fatal("cutoff 0 must mean the default")
	}
}

// TestParallelGemmBandAlignment: band boundaries must be multiples of the
// mc packing block (so straddled panels are never packed twice) and the
// threaded result must stay bit-identical to the serial kernel.
func TestParallelGemmBandAlignment(t *testing.T) {
	for _, rows := range []int{128, 200, 257, 1000} {
		a := matrix.Random(rows, 90, 5)
		b := matrix.Random(90, 70, 6)
		want := matrix.New(rows, 70)
		Gemm(want, a, b)
		for _, w := range []int{2, 3, 4, 9} {
			got := matrix.New(rows, 70)
			ParallelGemm(got, a, b, w)
			if !matrix.Equal(got, want) {
				t.Fatalf("rows=%d workers=%d differs from serial", rows, w)
			}
		}
	}
}
