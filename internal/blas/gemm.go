// Package blas provides the dense floating-point kernels that stand in for
// the vendor BLAS libraries (Intel MKL on Grid'5000, IBM ESSL on BlueGene/P)
// used by the paper for all sequential computation. The central routine is
// Gemm, a packed, register-tiled matrix-matrix multiply in the GotoBLAS
// blocking scheme, with optional goroutine parallelism over write-disjoint
// C row bands (ParallelGemm — the intra-rank analog of the paper's OpenMP
// threads inside each MPI process); Naive is the O(n³) reference all other
// kernels are validated against, and ScalarGemm is the previous
// cache-blocked scalar kernel, kept as the old-vs-new benchmark reference.
package blas

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/matrix"
)

// Register-tile and cache-block sizes for the packed kernel. The micro-tile
// is mr×nr entries of C held in scalar accumulators for a full kc-long
// contraction; mc×kc panels of A and kc×nc panels of B are packed into
// contiguous pooled buffers so the micro-kernel streams them with unit
// stride regardless of the caller's layout. The exact values only affect
// speed, never results.
const (
	mr = 4 // micro-tile rows of C per kernel invocation
	nr = 4 // micro-tile cols of C per kernel invocation

	mcBlock = 128  // A panel rows resident in L2 while B micropanels stream
	kcBlock = 256  // contraction depth packed per panel pair
	ncBlock = 2048 // B panel cols packed per outer iteration
)

// tile sizes for ScalarGemm, the previous blocked kernel.
const (
	tileM = 64
	tileN = 64
	tileK = 64
)

// checkGemmShapes panics unless C += A·B is well-formed.
func checkGemmShapes(c, a, b *matrix.Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("blas: gemm shape mismatch C(%dx%d) += A(%dx%d)*B(%dx%d)",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Naive computes C += A·B with three plain loops. It is the correctness
// oracle for every other kernel and for the distributed algorithms.
func Naive(c, a, b *matrix.Dense) {
	checkGemmShapes(c, a, b)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*b.Stride : k*b.Stride+b.Cols]
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
}

// packPool recycles packing buffers across calls: a resident serving rank
// multiplies the same panel shapes millions of times, and the pool makes
// the steady state allocation-free.
var packPool = sync.Pool{New: func() any { return new([]float64) }}

func packBuf(n int) *[]float64 {
	p := packPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func roundUp(v, q int) int { return (v + q - 1) / q * q }

// packA copies the A block [i0,i0+mcb)×[k0,k0+kcb) into mr-row micropanels:
// micropanel i/mr holds element (i,k) at offset k*mr + i%mr, so the kernel
// reads one mr-wide column slice per k step with unit stride. Rows past mcb
// in the last micropanel are zero-filled; their products land in
// accumulators the masked writeback discards, so padding never changes
// results.
func packA(ap []float64, a *matrix.Dense, i0, mcb, k0, kcb int) {
	for i := 0; i < mcb; i += mr {
		dst := ap[(i/mr)*kcb*mr : (i/mr+1)*kcb*mr]
		rows := min(mr, mcb-i)
		for r := 0; r < rows; r++ {
			src := a.Data[(i0+i+r)*a.Stride+k0 : (i0+i+r)*a.Stride+k0+kcb]
			for k, v := range src {
				dst[k*mr+r] = v
			}
		}
		for r := rows; r < mr; r++ {
			for k := 0; k < kcb; k++ {
				dst[k*mr+r] = 0
			}
		}
	}
}

// packB copies the B block [k0,k0+kcb)×[j0,j0+ncb) into nr-column
// micropanels: micropanel j/nr holds element (k,j) at offset k*nr + j%nr —
// effectively a transpose into contiguous kc×nr strips. Columns past ncb in
// the last micropanel are zero-filled.
func packB(bp []float64, b *matrix.Dense, k0, kcb, j0, ncb int) {
	for j := 0; j < ncb; j += nr {
		dst := bp[(j/nr)*kcb*nr : (j/nr+1)*kcb*nr]
		cols := min(nr, ncb-j)
		if cols == nr {
			for k := 0; k < kcb; k++ {
				src := b.Data[(k0+k)*b.Stride+j0+j : (k0+k)*b.Stride+j0+j+nr]
				d := dst[k*nr : k*nr+nr]
				d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			}
			continue
		}
		for k := 0; k < kcb; k++ {
			src := b.Data[(k0+k)*b.Stride+j0+j : (k0+k)*b.Stride+j0+j+cols]
			d := dst[k*nr : k*nr+nr]
			for cc, v := range src {
				d[cc] = v
			}
			for cc := cols; cc < nr; cc++ {
				d[cc] = 0
			}
		}
	}
}

// kernel4x4 contracts one packed A micropanel against one packed B
// micropanel over depth kc, accumulating the mr×nr C micro-tile two rows
// at a time in eight independent scalar accumulators — few enough that the
// compiler keeps every chain in a register (sixteen at once spill), so C
// is loaded and stored once per kc block instead of once per k step, and
// the independent chains expose instruction-level parallelism the
// single-accumulator scalar loop cannot. ct is positioned at the C
// micro-tile's top-left corner; mrows/ncols mask the writeback on edge
// tiles (the padded lanes' accumulators are simply dropped).
func kernel4x4(kc int, ap, bp, ct []float64, ldc, mrows, ncols int) {
	ap = ap[: kc*mr : kc*mr]
	bp = bp[:len(ap):len(ap)]
	full := mrows == mr && ncols == nr
	var acc [mr * nr]float64
	for i := 0; i < mr; i += 2 {
		var c00, c01, c02, c03, c10, c11, c12, c13 float64
		for k := 0; k <= len(ap)-mr; k += mr {
			b0, b1, b2, b3 := bp[k], bp[k+1], bp[k+2], bp[k+3]
			a0, a1 := ap[k+i], ap[k+i+1]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
		}
		if full {
			r0 := ct[i*ldc : i*ldc+nr : i*ldc+nr]
			r1 := ct[(i+1)*ldc : (i+1)*ldc+nr : (i+1)*ldc+nr]
			r0[0] += c00
			r0[1] += c01
			r0[2] += c02
			r0[3] += c03
			r1[0] += c10
			r1[1] += c11
			r1[2] += c12
			r1[3] += c13
			continue
		}
		acc[i*nr+0], acc[i*nr+1], acc[i*nr+2], acc[i*nr+3] = c00, c01, c02, c03
		acc[(i+1)*nr+0], acc[(i+1)*nr+1], acc[(i+1)*nr+2], acc[(i+1)*nr+3] = c10, c11, c12, c13
	}
	if !full {
		for i := 0; i < mrows; i++ {
			ci := ct[i*ldc:]
			for j := 0; j < ncols; j++ {
				ci[j] += acc[i*nr+j]
			}
		}
	}
}

// Gemm computes C += A·B with the packed register-tiled kernel. It accepts
// views (non-tight strides) for all operands. Results are deterministic:
// every C entry accumulates its k-terms in ascending order (register
// accumulation within each kc block, blocks applied in order), so repeated
// runs are bit-identical — though the float association differs from
// Naive's by the per-block partial sums.
func Gemm(c, a, b *matrix.Dense) {
	checkGemmShapes(c, a, b)
	gemmRows(c, a, b, 0, a.Rows)
}

// gemmRows runs the packed path over C rows [i0,i1). Splitting on C rows
// keeps parallel workers write-disjoint; each band packs its own panels,
// so bands share nothing but the read-only inputs.
func gemmRows(c, a, b *matrix.Dense, i0, i1 int) {
	n, kdim := b.Cols, a.Cols
	if i1 <= i0 || n == 0 || kdim == 0 {
		return
	}
	kcMax := min(kcBlock, kdim)
	apBuf := packBuf(roundUp(min(mcBlock, i1-i0), mr) * kcMax)
	bpBuf := packBuf(roundUp(min(ncBlock, n), nr) * kcMax)
	for jc := 0; jc < n; jc += ncBlock {
		ncb := min(ncBlock, n-jc)
		for pc := 0; pc < kdim; pc += kcBlock {
			kcb := min(kcBlock, kdim-pc)
			bp := (*bpBuf)[:roundUp(ncb, nr)*kcb]
			packB(bp, b, pc, kcb, jc, ncb)
			for ic := i0; ic < i1; ic += mcBlock {
				mcb := min(mcBlock, i1-ic)
				ap := (*apBuf)[:roundUp(mcb, mr)*kcb]
				packA(ap, a, ic, mcb, pc, kcb)
				for jr := 0; jr < ncb; jr += nr {
					bpj := bp[(jr/nr)*kcb*nr:]
					ncols := min(nr, ncb-jr)
					for ir := 0; ir < mcb; ir += mr {
						apo := ap[(ir/mr)*kcb*mr:]
						mrows := min(mr, mcb-ir)
						ct := c.Data[(ic+ir)*c.Stride+jc+jr:]
						if useFMAKernel && mrows == mr && ncols == nr {
							kernel4x4fma(kcb, &apo[0], &bpj[0], &ct[0], c.Stride)
						} else {
							kernel4x4(kcb, apo, bpj, ct, c.Stride, mrows, ncols)
						}
					}
				}
			}
		}
	}
	packPool.Put(apBuf)
	packPool.Put(bpBuf)
}

// ParallelGemm computes C += A·B splitting C's rows across up to workers
// goroutines (GOMAXPROCS when workers <= 0). Workers own disjoint row bands
// of C, so no synchronisation beyond the final join is needed, and the band
// partition depends only on (rows, workers) — repeated runs at a fixed
// worker count are bit-identical. Band boundaries land on multiples of the
// mc packing block so a worker never starts mid-panel: a straddled mc panel
// would be packed twice, once by each neighbour.
func ParallelGemm(c, a, b *matrix.Dense, workers int) {
	checkGemmShapes(c, a, b)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rows := a.Rows
	// Partition whole mc blocks, not rows: worker w takes blocks
	// [w·blocks/workers, (w+1)·blocks/workers), the same balanced split as
	// before but quantised to the packing granularity.
	blocks := (rows + mcBlock - 1) / mcBlock
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 || rows*b.Cols*a.Cols < 32*32*32 {
		gemmRows(c, a, b, 0, rows)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		i0 := w * blocks / workers * mcBlock
		i1 := (w + 1) * blocks / workers * mcBlock
		if i1 > rows {
			i1 = rows
		}
		if i0 >= i1 {
			continue
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			gemmRows(c, a, b, i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// ScalarGemm is the previous cache-blocked scalar kernel — one accumulator,
// unpacked operands — retained as the baseline the kernel bench measures
// the packed kernel against. It accepts views for all operands.
func ScalarGemm(c, a, b *matrix.Dense) {
	checkGemmShapes(c, a, b)
	n, k := b.Cols, a.Cols
	for ii := 0; ii < a.Rows; ii += tileM {
		iMax := min(ii+tileM, a.Rows)
		for kk := 0; kk < k; kk += tileK {
			kMax := min(kk+tileK, k)
			for jj := 0; jj < n; jj += tileN {
				jMax := min(jj+tileN, n)
				scalarKernel(c, a, b, ii, iMax, kk, kMax, jj, jMax)
			}
		}
	}
}

// scalarKernel updates the C tile [i0,i1)×[j0,j1) with the A panel
// [i0,i1)×[k0,k1) and B panel [k0,k1)×[j0,j1). The inner loop runs along
// contiguous rows of B and C so the loads stream.
func scalarKernel(c, a, b *matrix.Dense, i0, i1, k0, k1, j0, j1 int) {
	for i := i0; i < i1; i++ {
		crow := c.Data[i*c.Stride+j0 : i*c.Stride+j1]
		arow := a.Data[i*a.Stride+k0 : i*a.Stride+k1]
		for ko, aik := range arow {
			brow := b.Data[(k0+ko)*b.Stride+j0 : (k0+ko)*b.Stride+j1]
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
}

// Axpy computes y += alpha*x element-wise over matrices of equal shape.
func Axpy(alpha float64, x, y *matrix.Dense) {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		panic(matrix.ErrShape)
	}
	for i := 0; i < x.Rows; i++ {
		xr := x.Data[i*x.Stride : i*x.Stride+x.Cols]
		yr := y.Data[i*y.Stride : i*y.Stride+y.Cols]
		for j := range xr {
			yr[j] += alpha * xr[j]
		}
	}
}

// Dot returns the Frobenius inner product <a,b> = sum a_ij*b_ij.
func Dot(a, b *matrix.Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(matrix.ErrShape)
	}
	sum := 0.0
	for i := 0; i < a.Rows; i++ {
		ar := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		br := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		for j := range ar {
			sum += ar[j] * br[j]
		}
	}
	return sum
}

// FlopsGemm returns the floating-point operation count of an m×k by k×n
// multiply-accumulate, using the conventional 2mnk (one multiply + one add
// per term), the same accounting the paper's 2n³/p computation cost uses.
func FlopsGemm(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}

// HasFMAKernel reports whether the AVX2+FMA assembly microkernel is active
// on this host (amd64 with AVX2, FMA and OS-enabled YMM state); otherwise
// the portable register-tiled Go kernel runs. Exposed for benchmarks and
// diagnostics — both paths satisfy the same accuracy contract.
func HasFMAKernel() bool { return useFMAKernel }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
