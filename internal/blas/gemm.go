// Package blas provides the dense floating-point kernels that stand in for
// the vendor BLAS libraries (Intel MKL on Grid'5000, IBM ESSL on BlueGene/P)
// used by the paper for all sequential computation. The central routine is
// Gemm, a cache-blocked general matrix-matrix multiply with optional
// goroutine parallelism; Naive is the O(n³) reference all other kernels are
// validated against.
package blas

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/matrix"
)

// tile sizes for the blocked kernel, chosen so an (mc×kc) panel of A and a
// (kc×nc) panel of B fit comfortably in L2 on commodity hardware. The exact
// values only affect speed, never results.
const (
	tileM = 64
	tileN = 64
	tileK = 64
)

// checkGemmShapes panics unless C += A·B is well-formed.
func checkGemmShapes(c, a, b *matrix.Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("blas: gemm shape mismatch C(%dx%d) += A(%dx%d)*B(%dx%d)",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Naive computes C += A·B with three plain loops. It is the correctness
// oracle for every other kernel and for the distributed algorithms.
func Naive(c, a, b *matrix.Dense) {
	checkGemmShapes(c, a, b)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*b.Stride : k*b.Stride+b.Cols]
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
}

// Gemm computes C += A·B using a cache-blocked kernel. It accepts views
// (non-tight strides) for all operands.
func Gemm(c, a, b *matrix.Dense) {
	checkGemmShapes(c, a, b)
	gemmRange(c, a, b, 0, a.Rows)
}

// gemmRange updates rows [i0,i1) of C. Splitting on C rows keeps parallel
// workers write-disjoint.
func gemmRange(c, a, b *matrix.Dense, i0, i1 int) {
	m, n, k := a.Rows, b.Cols, a.Cols
	_ = m
	for ii := i0; ii < i1; ii += tileM {
		iMax := min(ii+tileM, i1)
		for kk := 0; kk < k; kk += tileK {
			kMax := min(kk+tileK, k)
			for jj := 0; jj < n; jj += tileN {
				jMax := min(jj+tileN, n)
				microKernel(c, a, b, ii, iMax, kk, kMax, jj, jMax)
			}
		}
	}
}

// microKernel updates the C tile [i0,i1)×[j0,j1) with the A panel
// [i0,i1)×[k0,k1) and B panel [k0,k1)×[j0,j1). The inner loop runs along
// contiguous rows of B and C so the compiler can keep the accumulator in
// registers and the loads stream.
func microKernel(c, a, b *matrix.Dense, i0, i1, k0, k1, j0, j1 int) {
	for i := i0; i < i1; i++ {
		crow := c.Data[i*c.Stride+j0 : i*c.Stride+j1]
		arow := a.Data[i*a.Stride+k0 : i*a.Stride+k1]
		for ko, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[(k0+ko)*b.Stride+j0 : (k0+ko)*b.Stride+j1]
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
}

// ParallelGemm computes C += A·B splitting C's rows across up to workers
// goroutines (GOMAXPROCS when workers <= 0). Workers own disjoint row bands
// of C, so no synchronisation beyond the final join is needed.
func ParallelGemm(c, a, b *matrix.Dense, workers int) {
	checkGemmShapes(c, a, b)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rows := a.Rows
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || rows*b.Cols*a.Cols < 32*32*32 {
		gemmRange(c, a, b, 0, rows)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		i0 := w * rows / workers
		i1 := (w + 1) * rows / workers
		if i0 == i1 {
			continue
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			gemmRange(c, a, b, i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// Axpy computes y += alpha*x element-wise over matrices of equal shape.
func Axpy(alpha float64, x, y *matrix.Dense) {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		panic(matrix.ErrShape)
	}
	for i := 0; i < x.Rows; i++ {
		xr := x.Data[i*x.Stride : i*x.Stride+x.Cols]
		yr := y.Data[i*y.Stride : i*y.Stride+y.Cols]
		for j := range xr {
			yr[j] += alpha * xr[j]
		}
	}
}

// Dot returns the Frobenius inner product <a,b> = sum a_ij*b_ij.
func Dot(a, b *matrix.Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(matrix.ErrShape)
	}
	sum := 0.0
	for i := 0; i < a.Rows; i++ {
		ar := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		br := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		for j := range ar {
			sum += ar[j] * br[j]
		}
	}
	return sum
}

// FlopsGemm returns the floating-point operation count of an m×k by k×n
// multiply-accumulate, using the conventional 2mnk (one multiply + one add
// per term), the same accounting the paper's 2n³/p computation cost uses.
func FlopsGemm(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
