//go:build amd64

package blas

// useFMAKernel gates the AVX2+FMA micro-kernel: the packed panel layout is
// identical for both kernels, so the choice is made per micro-tile and
// edge tiles always take the portable masked path.
var useFMAKernel = cpuHasAVXFMA()

// cpuHasAVXFMA probes CPUID/XGETBV for AVX + FMA support with OS-enabled
// ymm state.
func cpuHasAVXFMA() bool

//go:noescape
func kernel4x4fma(kc int, ap, bp, ct *float64, ldc int)
