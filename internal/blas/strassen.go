package blas

import (
	"sync"

	"repro/internal/matrix"
)

// Strassen's sub-cubic GEMM. StrassenGemm computes C += A·B by recursive
// 2×2 quadrant splits with the seven Strassen products, falling back to the
// packed register-tiled kernel below a tunable cutoff. Odd dimensions are
// padded to even with pooled zero-extended copies only at the levels where
// a dimension is odd; even levels recurse on views and copy nothing. The
// result is bit-deterministic and independent of the thread count: the
// seven top-level products are computed independently (possibly in
// parallel) and their twelve C contributions are always applied in the same
// fixed product order, so serial and threaded runs produce identical bits.
// Strassen reassociates the float arithmetic, so results differ from
// Gemm/Naive in the low bits — validate against a reference with a relative
// tolerance, not bit equality.

// DefaultStrassenCutoff is the dimension at or below which the recursion
// bottoms out in the packed kernel. Strassen trades one multiply for ~18
// quadrant-sized adds per level; below a few hundred the packed kernel's
// O(n³) with high arithmetic intensity wins, above it the 7/8 multiply
// saving compounds. Tuned on the kernelbench crossover sweep (n=2048
// gives ~1.2x over packed with this cutoff).
const DefaultStrassenCutoff = 256

// StrassenCutoff normalises a user-supplied cutoff: values ≤ 0 select
// DefaultStrassenCutoff, and the floor of 8 keeps the recursion from
// degenerating into scalar-sized leaves.
func StrassenCutoff(c int) int {
	if c <= 0 {
		return DefaultStrassenCutoff
	}
	if c < 8 {
		return 8
	}
	return c
}

// StrassenGemm computes C += A·B with Strassen's algorithm, recursing while
// min(m,n,k) exceeds the cutoff (≤ 0 selects DefaultStrassenCutoff) and
// bottoming out in the packed kernel. threads > 1 runs the seven top-level
// products across up to min(threads, 7) goroutines; deeper levels and the
// combine stage are serial, so the result is bit-identical at every thread
// count.
func StrassenGemm(c, a, b *matrix.Dense, cutoff, threads int) {
	checkGemmShapes(c, a, b)
	cutoff = StrassenCutoff(cutoff)
	if strassenBase(a.Rows, b.Cols, a.Cols, cutoff) {
		ParallelGemm(c, a, b, threads)
		return
	}
	if threads > 1 {
		strassenParallel(c, a, b, cutoff, threads)
		return
	}
	strassen(c, a, b, cutoff)
}

func strassenBase(m, n, k, cutoff int) bool {
	return m <= cutoff || n <= cutoff || k <= cutoff
}

// strassenTerm is one quadrant contribution: quadrant index (row-major 0..3)
// and its sign.
type strassenTerm struct {
	q    int
	sign float64
}

// strassenProduct describes one of the seven Strassen products
// M = (ΣA)·(ΣB) and its C contributions.
type strassenProduct struct {
	a, b []strassenTerm
	c    []strassenTerm
}

// strassenProducts is the classic Strassen table. Quadrants are row-major:
// 0=11, 1=12, 2=21, 3=22.
//
//	M1 = (A11+A22)(B11+B22)   C11 += M1, C22 += M1
//	M2 = (A21+A22)·B11        C21 += M2, C22 -= M2
//	M3 = A11·(B12-B22)        C12 += M3, C22 += M3
//	M4 = A22·(B21-B11)        C11 += M4, C21 += M4
//	M5 = (A11+A12)·B22        C11 -= M5, C12 += M5
//	M6 = (A21-A11)(B11+B12)   C22 += M6
//	M7 = (A12-A22)(B21+B22)   C11 += M7
var strassenProducts = [7]strassenProduct{
	{a: []strassenTerm{{0, 1}, {3, 1}}, b: []strassenTerm{{0, 1}, {3, 1}}, c: []strassenTerm{{0, 1}, {3, 1}}},
	{a: []strassenTerm{{2, 1}, {3, 1}}, b: []strassenTerm{{0, 1}}, c: []strassenTerm{{2, 1}, {3, -1}}},
	{a: []strassenTerm{{0, 1}}, b: []strassenTerm{{1, 1}, {3, -1}}, c: []strassenTerm{{1, 1}, {3, 1}}},
	{a: []strassenTerm{{3, 1}}, b: []strassenTerm{{2, 1}, {0, -1}}, c: []strassenTerm{{0, 1}, {2, 1}}},
	{a: []strassenTerm{{0, 1}, {1, 1}}, b: []strassenTerm{{3, 1}}, c: []strassenTerm{{0, -1}, {1, 1}}},
	{a: []strassenTerm{{2, 1}, {0, -1}}, b: []strassenTerm{{0, 1}, {1, 1}}, c: []strassenTerm{{3, 1}}},
	{a: []strassenTerm{{1, 1}, {3, -1}}, b: []strassenTerm{{2, 1}, {3, 1}}, c: []strassenTerm{{0, 1}}},
}

// quadrants returns the four r2×c2 quadrant views of an even-padded 2r2×2c2
// region of m. The caller guarantees m is at least that large; edge
// quadrants of an exactly-sized matrix are full views.
func quadrants(m *matrix.Dense, r2, c2 int) [4]*matrix.Dense {
	return [4]*matrix.Dense{
		m.View(0, 0, r2, c2), m.View(0, c2, r2, c2),
		m.View(r2, 0, r2, c2), m.View(r2, c2, r2, c2),
	}
}

// tmpDense wraps a pooled buffer as a tight r×c matrix.
func tmpDense(buf *[]float64, r, c int) *matrix.Dense {
	return &matrix.Dense{Rows: r, Cols: c, Stride: c, Data: (*buf)[:r*c]}
}

// combineInto writes dst = Σ sign·quadrant over the term list (dst has a
// tight stride; quadrants may be views).
func combineInto(dst *matrix.Dense, quads [4]*matrix.Dense, terms []strassenTerm) *matrix.Dense {
	first := quads[terms[0].q]
	if terms[0].sign == 1 && len(terms) == 1 {
		return first // single positive term: use the view directly
	}
	for i := 0; i < dst.Rows; i++ {
		d := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
		s := first.Data[i*first.Stride : i*first.Stride+first.Cols]
		if terms[0].sign == 1 {
			copy(d, s)
		} else {
			for j, v := range s {
				d[j] = -v
			}
		}
	}
	for _, t := range terms[1:] {
		Axpy(t.sign, quads[t.q], dst)
	}
	return dst
}

// padEven copies src into a pooled zero-padded 2r2×2c2 matrix.
func padEven(buf *[]float64, src *matrix.Dense, r2, c2 int) *matrix.Dense {
	dst := tmpDense(buf, 2*r2, 2*c2)
	dst.Zero()
	dst.View(0, 0, src.Rows, src.Cols).CopyFrom(src)
	return dst
}

// strassen is the serial recursion: C += A·B. One set of pooled sum/product
// temporaries is reused across the seven products; each product's C
// contributions are applied immediately after it is computed, in product
// order — the same per-quadrant axpy order the parallel path uses.
func strassen(c, a, b *matrix.Dense, cutoff int) {
	m, n, k := a.Rows, b.Cols, a.Cols
	if strassenBase(m, n, k, cutoff) {
		gemmRows(c, a, b, 0, m)
		return
	}
	m2, n2, k2 := (m+1)/2, (n+1)/2, (k+1)/2
	if m%2 != 0 || n%2 != 0 || k%2 != 0 {
		// Pad to even at this level only; deeper odd levels pad again.
		abuf, bbuf, cbuf := packBuf(4*m2*k2), packBuf(4*k2*n2), packBuf(4*m2*n2)
		ap := padEven(abuf, a, m2, k2)
		bp := padEven(bbuf, b, k2, n2)
		cp := tmpDense(cbuf, 2*m2, 2*n2)
		cp.Zero()
		strassen(cp, ap, bp, cutoff)
		c.Add(cp.View(0, 0, m, n))
		packPool.Put(abuf)
		packPool.Put(bbuf)
		packPool.Put(cbuf)
		return
	}
	aq, bq, cq := quadrants(a, m2, k2), quadrants(b, k2, n2), quadrants(c, m2, n2)
	saBuf, sbBuf, pBuf := packBuf(m2*k2), packBuf(k2*n2), packBuf(m2*n2)
	sa, sb, p := tmpDense(saBuf, m2, k2), tmpDense(sbBuf, k2, n2), tmpDense(pBuf, m2, n2)
	for _, prod := range strassenProducts {
		ta := combineInto(sa, aq, prod.a)
		tb := combineInto(sb, bq, prod.b)
		p.Zero()
		strassen(p, ta, tb, cutoff)
		for _, t := range prod.c {
			Axpy(t.sign, p, cq[t.q])
		}
	}
	packPool.Put(saBuf)
	packPool.Put(sbBuf)
	packPool.Put(pBuf)
	return
}

// strassenParallel runs the seven top-level products across up to
// min(threads, 7) workers, each product serial inside, then applies the
// twelve C contributions serially in product order — the identical
// per-quadrant axpy sequence the serial path produces, so the bits match.
func strassenParallel(c, a, b *matrix.Dense, cutoff, threads int) {
	m, n, k := a.Rows, b.Cols, a.Cols
	m2, n2, k2 := (m+1)/2, (n+1)/2, (k+1)/2
	if m%2 != 0 || n%2 != 0 || k%2 != 0 {
		abuf, bbuf, cbuf := packBuf(4*m2*k2), packBuf(4*k2*n2), packBuf(4*m2*n2)
		ap := padEven(abuf, a, m2, k2)
		bp := padEven(bbuf, b, k2, n2)
		cp := tmpDense(cbuf, 2*m2, 2*n2)
		cp.Zero()
		strassenParallel(cp, ap, bp, cutoff, threads)
		c.Add(cp.View(0, 0, m, n))
		packPool.Put(abuf)
		packPool.Put(bbuf)
		packPool.Put(cbuf)
		return
	}
	aq, bq, cq := quadrants(a, m2, k2), quadrants(b, k2, n2), quadrants(c, m2, n2)
	workers := threads
	if workers > 7 {
		workers = 7
	}
	var prods [7]*matrix.Dense
	var bufs [7]*[]float64
	next := make(chan int, 7)
	for r := range strassenProducts {
		bufs[r] = packBuf(m2 * n2)
		prods[r] = tmpDense(bufs[r], m2, n2)
		next <- r
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			saBuf, sbBuf := packBuf(m2*k2), packBuf(k2*n2)
			sa, sb := tmpDense(saBuf, m2, k2), tmpDense(sbBuf, k2, n2)
			for r := range next {
				prod := strassenProducts[r]
				ta := combineInto(sa, aq, prod.a)
				tb := combineInto(sb, bq, prod.b)
				prods[r].Zero()
				strassen(prods[r], ta, tb, cutoff)
			}
			packPool.Put(saBuf)
			packPool.Put(sbBuf)
		}()
	}
	wg.Wait()
	for r, prod := range strassenProducts {
		for _, t := range prod.c {
			Axpy(t.sign, prods[r], cq[t.q])
		}
		packPool.Put(bufs[r])
	}
}

// StrassenFlops returns the flop count the Strassen recursion actually
// executes for an m×k by k×n multiply at the given cutoff (≤ 0 selects the
// default): 2·m·n·k at the leaves, plus per level the five two-term A-sum
// adds, five B-sum adds and twelve quadrant C axpys (one flop per element
// each). This is the single accounting shared by the virtual engines and
// the tune scorer, so simulated compute time stays bit-identical across
// transports.
func StrassenFlops(m, n, k, cutoff int) float64 {
	cutoff = StrassenCutoff(cutoff)
	return strassenFlops(m, n, k, cutoff)
}

func strassenFlops(m, n, k, cutoff int) float64 {
	if strassenBase(m, n, k, cutoff) {
		return FlopsGemm(m, n, k)
	}
	m2, n2, k2 := (m+1)/2, (n+1)/2, (k+1)/2
	return 7*strassenFlops(m2, n2, k2, cutoff) +
		5*float64(m2)*float64(k2) + 5*float64(k2)*float64(n2) + 12*float64(m2)*float64(n2)
}
