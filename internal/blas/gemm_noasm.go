//go:build !amd64

package blas

// useFMAKernel is false off amd64; the portable register-tiled kernel
// handles every micro-tile.
const useFMAKernel = false

func kernel4x4fma(kc int, ap, bp, ct *float64, ldc int) {
	panic("blas: fma kernel unavailable")
}
