package blas

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

const tol = 1e-12

func TestNaiveIdentity(t *testing.T) {
	a := matrix.Random(5, 5, 1)
	c := matrix.New(5, 5)
	Naive(c, a, matrix.Identity(5))
	if matrix.MaxAbsDiff(c, a) > tol {
		t.Fatal("A·I != A")
	}
}

func TestNaiveKnownProduct(t *testing.T) {
	a := matrix.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := matrix.FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := matrix.New(2, 2)
	Naive(c, a, b)
	want := matrix.FromSlice(2, 2, []float64{58, 64, 139, 154})
	if matrix.MaxAbsDiff(c, want) != 0 {
		t.Fatalf("got %v want %v", c, want)
	}
}

func TestNaiveAccumulates(t *testing.T) {
	a := matrix.Identity(3)
	c := matrix.Constant(3, 3, 1)
	Naive(c, a, a)
	// C = 1 + I
	if c.At(0, 0) != 2 || c.At(0, 1) != 1 {
		t.Fatalf("accumulation wrong: %v", c)
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {17, 19, 23}, {64, 64, 64}, {65, 70, 33}, {128, 100, 90}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := matrix.Random(m, k, uint64(m*1000+n))
		b := matrix.Random(k, n, uint64(n*1000+k))
		want := matrix.New(m, n)
		Naive(want, a, b)
		got := matrix.New(m, n)
		Gemm(got, a, b)
		if d := matrix.MaxAbsDiff(got, want); d > tol {
			t.Fatalf("gemm(%d,%d,%d) differs from naive by %g", m, n, k, d)
		}
	}
}

func TestGemmOnViews(t *testing.T) {
	// All operands are strided views into larger matrices.
	bigA := matrix.Random(20, 20, 7)
	bigB := matrix.Random(20, 20, 8)
	bigC := matrix.New(20, 20)
	a := bigA.View(2, 3, 10, 12)
	b := bigB.View(1, 4, 12, 9)
	c := bigC.View(5, 5, 10, 9)
	want := matrix.New(10, 9)
	Naive(want, a.Clone(), b.Clone())
	Gemm(c, a, b)
	if d := matrix.MaxAbsDiff(c.Clone(), want); d > tol {
		t.Fatalf("gemm on views differs by %g", d)
	}
	// Nothing outside the C view may be touched.
	if bigC.At(0, 0) != 0 || bigC.At(19, 19) != 0 || bigC.At(4, 5) != 0 {
		t.Fatal("gemm wrote outside the C view")
	}
}

func TestParallelGemmMatchesNaive(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 16} {
		m, n, k := 57, 43, 61
		a := matrix.Random(m, k, 21)
		b := matrix.Random(k, n, 22)
		want := matrix.New(m, n)
		Naive(want, a, b)
		got := matrix.New(m, n)
		ParallelGemm(got, a, b, workers)
		if d := matrix.MaxAbsDiff(got, want); d > tol {
			t.Fatalf("parallel gemm (workers=%d) differs by %g", workers, d)
		}
	}
}

func TestParallelGemmMoreWorkersThanRows(t *testing.T) {
	a := matrix.Random(2, 40, 1)
	b := matrix.Random(40, 40, 2)
	want := matrix.New(2, 40)
	Naive(want, a, b)
	got := matrix.New(2, 40)
	ParallelGemm(got, a, b, 64)
	if matrix.MaxAbsDiff(got, want) > tol {
		t.Fatal("parallel gemm wrong with workers > rows")
	}
}

func TestGemmShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Gemm(matrix.New(2, 2), matrix.New(2, 3), matrix.New(2, 2))
}

// Property: (A(B+B2)) == AB + AB2 — distributivity links Gemm and Axpy.
func TestQuickDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		m := int(seed%6) + 1
		k := int(seed/6%6) + 1
		n := int(seed/36%6) + 1
		a := matrix.Random(m, k, seed)
		b1 := matrix.Random(k, n, seed+1)
		b2 := matrix.Random(k, n, seed+2)
		sum := b1.Clone()
		sum.Add(b2)
		left := matrix.New(m, n)
		Gemm(left, a, sum)
		right := matrix.New(m, n)
		Gemm(right, a, b1)
		Gemm(right, a, b2)
		return matrix.MaxAbsDiff(left, right) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: (AB)ᵀ == BᵀAᵀ.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed uint64) bool {
		m := int(seed%5) + 1
		k := int(seed/5%5) + 1
		n := int(seed/25%5) + 1
		a := matrix.Random(m, k, seed)
		b := matrix.Random(k, n, seed*3+1)
		ab := matrix.New(m, n)
		Gemm(ab, a, b)
		btat := matrix.New(n, m)
		Gemm(btat, b.Transpose(), a.Transpose())
		return matrix.MaxAbsDiff(ab.Transpose(), btat) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: associativity (AB)C == A(BC) within tolerance.
func TestQuickAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		d := int(seed%5) + 1
		a := matrix.Random(d, d, seed)
		b := matrix.Random(d, d, seed+10)
		c := matrix.Random(d, d, seed+20)
		ab := matrix.New(d, d)
		Gemm(ab, a, b)
		abc1 := matrix.New(d, d)
		Gemm(abc1, ab, c)
		bc := matrix.New(d, d)
		Gemm(bc, b, c)
		abc2 := matrix.New(d, d)
		Gemm(abc2, a, bc)
		return matrix.MaxAbsDiff(abc1, abc2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAxpy(t *testing.T) {
	x := matrix.Constant(2, 2, 2)
	y := matrix.Constant(2, 2, 1)
	Axpy(3, x, y)
	if y.At(0, 0) != 7 {
		t.Fatalf("axpy got %v want 7", y.At(0, 0))
	}
}

func TestDot(t *testing.T) {
	a := matrix.Constant(2, 3, 2)
	b := matrix.Constant(2, 3, 3)
	if got := Dot(a, b); math.Abs(got-36) > tol {
		t.Fatalf("dot = %v, want 36", got)
	}
}

func TestFlopsGemm(t *testing.T) {
	if FlopsGemm(10, 20, 30) != 12000 {
		t.Fatalf("flops = %v", FlopsGemm(10, 20, 30))
	}
}

func BenchmarkGemm256(b *testing.B) {
	a := matrix.Random(256, 256, 1)
	bb := matrix.Random(256, 256, 2)
	c := matrix.New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Zero()
		Gemm(c, a, bb)
	}
}

func BenchmarkParallelGemm256(b *testing.B) {
	a := matrix.Random(256, 256, 1)
	bb := matrix.Random(256, 256, 2)
	c := matrix.New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Zero()
		ParallelGemm(c, a, bb, 0)
	}
}

// relDiff is the max elementwise |got-want| / max(1, |want|) — the packed
// kernel reassociates the k loop (per-kc-block partial sums, FMA), so it is
// compared to Naive in relative terms rather than bitwise.
func relDiff(got, want *matrix.Dense) float64 {
	var worst float64
	for i := 0; i < got.Rows; i++ {
		for j := 0; j < got.Cols; j++ {
			w := want.At(i, j)
			den := math.Abs(w)
			if den < 1 {
				den = 1
			}
			if d := math.Abs(got.At(i, j)-w) / den; d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Property: the packed kernel agrees with Naive within 1e-9 relative on
// arbitrary ragged shapes — hitting every edge-masking path (m%mr, n%nr,
// k%kcBlock remainders) across sizes that span one and many register
// tiles, cache blocks and kc panels.
func TestGemmPackedMatchesNaiveRagged(t *testing.T) {
	f := func(ms, ns, ks uint8, seed uint16) bool {
		m, n, k := int(ms)%97+1, int(ns)%89+1, int(ks)%101+1
		a := matrix.Random(m, k, uint64(seed))
		b := matrix.Random(k, n, uint64(seed)+1)
		want := matrix.New(m, n)
		Naive(want, a, b)
		got := matrix.New(m, n)
		Gemm(got, a, b)
		return relDiff(got, want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	// Shapes crossing the mcBlock/kcBlock/ncBlock boundaries, where the
	// packed loop nest takes multi-panel paths the small quick shapes miss.
	for _, dims := range [][3]int{{129, 67, 257}, {256, 2049, 300}, {131, 137, 513}, {1, 1, 1000}, {300, 1, 300}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := matrix.Random(m, k, 5)
		b := matrix.Random(k, n, 6)
		want := matrix.New(m, n)
		Naive(want, a, b)
		got := matrix.New(m, n)
		Gemm(got, a, b)
		if d := relDiff(got, want); d > 1e-9 {
			t.Fatalf("gemm(%d,%d,%d) relative error %g vs naive", m, n, k, d)
		}
	}
}

// Property: the packed kernel handles non-tight strided views of all three
// operands (stride > cols) identically to dense copies.
func TestGemmPackedOnStridedViews(t *testing.T) {
	f := func(ms, ns, ks uint8, seed uint16) bool {
		m, n, k := int(ms)%50+1, int(ns)%50+1, int(ks)%50+1
		bigA := matrix.Random(m+7, k+9, uint64(seed))
		bigB := matrix.Random(k+5, n+11, uint64(seed)+1)
		bigC := matrix.New(m+3, n+6)
		a := bigA.View(4, 5, m, k)
		b := bigB.View(2, 8, k, n)
		c := bigC.View(1, 2, m, n)
		want := matrix.New(m, n)
		Naive(want, a.Clone(), b.Clone())
		Gemm(c, a, b)
		if relDiff(c.Clone(), want) >= 1e-9 {
			return false
		}
		// The packed writeback must stay inside the C view.
		return bigC.At(0, 0) == 0 && bigC.At(m+2, n+5) == 0 && bigC.At(0, n+5) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The kernel must be bit-deterministic at every fixed worker count:
// repeated runs of Gemm, and of ParallelGemm at each count, produce
// identical bits (the serving layer's session-vs-oneshot equality and the
// engine parity tests rely on this).
func TestGemmDeterministicPerThreadCount(t *testing.T) {
	m, n, k := 137, 129, 257
	a := matrix.Random(m, k, 91)
	b := matrix.Random(k, n, 92)
	run := func(workers int) *matrix.Dense {
		c := matrix.New(m, n)
		if workers <= 1 {
			Gemm(c, a, b)
		} else {
			ParallelGemm(c, a, b, workers)
		}
		return c
	}
	for _, workers := range []int{1, 2, 4} {
		first := run(workers)
		for rep := 0; rep < 3; rep++ {
			again := run(workers)
			if !matrix.Equal(first, again) {
				t.Fatalf("workers=%d: repeated runs are not bit-identical", workers)
			}
		}
	}
}

// ParallelGemm's small-problem cutoff must route through the packed path,
// matching Gemm bitwise.
func TestParallelGemmCutoffMatchesGemm(t *testing.T) {
	m, n, k := 20, 20, 20 // below the 32³ cutoff
	a := matrix.Random(m, k, 11)
	b := matrix.Random(k, n, 12)
	want := matrix.New(m, n)
	Gemm(want, a, b)
	got := matrix.New(m, n)
	ParallelGemm(got, a, b, 8)
	if !matrix.Equal(got, want) {
		t.Fatal("cutoff path differs bitwise from Gemm")
	}
}

// ScalarGemm (the pre-packing reference kernel, kept for benchmarking the
// speedup) still agrees with Naive bitwise — it preserves the per-element
// k-ascending association.
func TestScalarGemmMatchesNaiveBitwise(t *testing.T) {
	for _, dims := range [][3]int{{17, 19, 23}, {64, 64, 64}, {65, 70, 33}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := matrix.Random(m, k, uint64(m))
		b := matrix.Random(k, n, uint64(n))
		want := matrix.New(m, n)
		Naive(want, a, b)
		got := matrix.New(m, n)
		ScalarGemm(got, a, b)
		if !matrix.Equal(got, want) {
			t.Fatalf("scalar gemm(%d,%d,%d) not bit-identical to naive", m, n, k)
		}
	}
}
