package blas

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

const tol = 1e-12

func TestNaiveIdentity(t *testing.T) {
	a := matrix.Random(5, 5, 1)
	c := matrix.New(5, 5)
	Naive(c, a, matrix.Identity(5))
	if matrix.MaxAbsDiff(c, a) > tol {
		t.Fatal("A·I != A")
	}
}

func TestNaiveKnownProduct(t *testing.T) {
	a := matrix.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := matrix.FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := matrix.New(2, 2)
	Naive(c, a, b)
	want := matrix.FromSlice(2, 2, []float64{58, 64, 139, 154})
	if matrix.MaxAbsDiff(c, want) != 0 {
		t.Fatalf("got %v want %v", c, want)
	}
}

func TestNaiveAccumulates(t *testing.T) {
	a := matrix.Identity(3)
	c := matrix.Constant(3, 3, 1)
	Naive(c, a, a)
	// C = 1 + I
	if c.At(0, 0) != 2 || c.At(0, 1) != 1 {
		t.Fatalf("accumulation wrong: %v", c)
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {17, 19, 23}, {64, 64, 64}, {65, 70, 33}, {128, 100, 90}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := matrix.Random(m, k, uint64(m*1000+n))
		b := matrix.Random(k, n, uint64(n*1000+k))
		want := matrix.New(m, n)
		Naive(want, a, b)
		got := matrix.New(m, n)
		Gemm(got, a, b)
		if d := matrix.MaxAbsDiff(got, want); d > tol {
			t.Fatalf("gemm(%d,%d,%d) differs from naive by %g", m, n, k, d)
		}
	}
}

func TestGemmOnViews(t *testing.T) {
	// All operands are strided views into larger matrices.
	bigA := matrix.Random(20, 20, 7)
	bigB := matrix.Random(20, 20, 8)
	bigC := matrix.New(20, 20)
	a := bigA.View(2, 3, 10, 12)
	b := bigB.View(1, 4, 12, 9)
	c := bigC.View(5, 5, 10, 9)
	want := matrix.New(10, 9)
	Naive(want, a.Clone(), b.Clone())
	Gemm(c, a, b)
	if d := matrix.MaxAbsDiff(c.Clone(), want); d > tol {
		t.Fatalf("gemm on views differs by %g", d)
	}
	// Nothing outside the C view may be touched.
	if bigC.At(0, 0) != 0 || bigC.At(19, 19) != 0 || bigC.At(4, 5) != 0 {
		t.Fatal("gemm wrote outside the C view")
	}
}

func TestParallelGemmMatchesNaive(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 16} {
		m, n, k := 57, 43, 61
		a := matrix.Random(m, k, 21)
		b := matrix.Random(k, n, 22)
		want := matrix.New(m, n)
		Naive(want, a, b)
		got := matrix.New(m, n)
		ParallelGemm(got, a, b, workers)
		if d := matrix.MaxAbsDiff(got, want); d > tol {
			t.Fatalf("parallel gemm (workers=%d) differs by %g", workers, d)
		}
	}
}

func TestParallelGemmMoreWorkersThanRows(t *testing.T) {
	a := matrix.Random(2, 40, 1)
	b := matrix.Random(40, 40, 2)
	want := matrix.New(2, 40)
	Naive(want, a, b)
	got := matrix.New(2, 40)
	ParallelGemm(got, a, b, 64)
	if matrix.MaxAbsDiff(got, want) > tol {
		t.Fatal("parallel gemm wrong with workers > rows")
	}
}

func TestGemmShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Gemm(matrix.New(2, 2), matrix.New(2, 3), matrix.New(2, 2))
}

// Property: (A(B+B2)) == AB + AB2 — distributivity links Gemm and Axpy.
func TestQuickDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		m := int(seed%6) + 1
		k := int(seed/6%6) + 1
		n := int(seed/36%6) + 1
		a := matrix.Random(m, k, seed)
		b1 := matrix.Random(k, n, seed+1)
		b2 := matrix.Random(k, n, seed+2)
		sum := b1.Clone()
		sum.Add(b2)
		left := matrix.New(m, n)
		Gemm(left, a, sum)
		right := matrix.New(m, n)
		Gemm(right, a, b1)
		Gemm(right, a, b2)
		return matrix.MaxAbsDiff(left, right) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: (AB)ᵀ == BᵀAᵀ.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed uint64) bool {
		m := int(seed%5) + 1
		k := int(seed/5%5) + 1
		n := int(seed/25%5) + 1
		a := matrix.Random(m, k, seed)
		b := matrix.Random(k, n, seed*3+1)
		ab := matrix.New(m, n)
		Gemm(ab, a, b)
		btat := matrix.New(n, m)
		Gemm(btat, b.Transpose(), a.Transpose())
		return matrix.MaxAbsDiff(ab.Transpose(), btat) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: associativity (AB)C == A(BC) within tolerance.
func TestQuickAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		d := int(seed%5) + 1
		a := matrix.Random(d, d, seed)
		b := matrix.Random(d, d, seed+10)
		c := matrix.Random(d, d, seed+20)
		ab := matrix.New(d, d)
		Gemm(ab, a, b)
		abc1 := matrix.New(d, d)
		Gemm(abc1, ab, c)
		bc := matrix.New(d, d)
		Gemm(bc, b, c)
		abc2 := matrix.New(d, d)
		Gemm(abc2, a, bc)
		return matrix.MaxAbsDiff(abc1, abc2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAxpy(t *testing.T) {
	x := matrix.Constant(2, 2, 2)
	y := matrix.Constant(2, 2, 1)
	Axpy(3, x, y)
	if y.At(0, 0) != 7 {
		t.Fatalf("axpy got %v want 7", y.At(0, 0))
	}
}

func TestDot(t *testing.T) {
	a := matrix.Constant(2, 3, 2)
	b := matrix.Constant(2, 3, 3)
	if got := Dot(a, b); math.Abs(got-36) > tol {
		t.Fatalf("dot = %v, want 36", got)
	}
}

func TestFlopsGemm(t *testing.T) {
	if FlopsGemm(10, 20, 30) != 12000 {
		t.Fatalf("flops = %v", FlopsGemm(10, 20, 30))
	}
}

func BenchmarkGemm256(b *testing.B) {
	a := matrix.Random(256, 256, 1)
	bb := matrix.Random(256, 256, 2)
	c := matrix.New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Zero()
		Gemm(c, a, bb)
	}
}

func BenchmarkParallelGemm256(b *testing.B) {
	a := matrix.Random(256, 256, 1)
	bb := matrix.Random(256, 256, 2)
	c := matrix.New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Zero()
		ParallelGemm(c, a, bb, 0)
	}
}
