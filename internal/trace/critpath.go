package trace

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the critical-path analysis over a recorded timeline: given
// the spans of one run, which rank's work gates the wall clock, how much
// of each rank's time is busy versus waiting, and which cross-rank
// dependencies plausibly caused the gating rank's idle gaps. It is pure
// span arithmetic — no knowledge of the algorithms — so it applies
// identically to live traces and to both virtual engines' timelines.

// RankActivity is one rank's busy/wait split over the run.
type RankActivity struct {
	// Rank is the timeline (HostRank for the host scatter/gather lane).
	Rank int `json:"rank"`
	// BusySeconds is the summed duration of the rank's spans.
	BusySeconds float64 `json:"busy_seconds"`
	// WaitSeconds is wall − busy: time the rank spent blocked on other
	// ranks (or idle before its first / after its last span).
	WaitSeconds float64 `json:"wait_seconds"`
	// PhaseSeconds is the rank's busy time decomposed by phase name.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
}

// BlockingEdge attributes one idle gap on the gating rank to the span —
// on another rank — that ended closest before the gap closed: the event
// whose completion plausibly released the gating rank.
type BlockingEdge struct {
	// FromRank/FromPhase identify the releasing span.
	FromRank  int    `json:"from_rank"`
	FromPhase string `json:"from_phase"`
	// ToPhase is the phase the gating rank entered when the gap closed.
	ToPhase string `json:"to_phase"`
	// GapStart/GapEnd bound the idle interval on the run timeline.
	GapStart float64 `json:"gap_start"`
	GapEnd   float64 `json:"gap_end"`
	// WaitSeconds is the gap's length.
	WaitSeconds float64 `json:"wait_seconds"`
}

// CriticalPathReport is the per-run attribution: what gates wall time.
type CriticalPathReport struct {
	// WallSeconds is the latest span end over every timeline (host
	// included) — the run's critical-path length on the trace's clock.
	WallSeconds float64 `json:"wall_seconds"`
	// GatingRank owns the span that ends last (HostRank when the host
	// gather closes the run, as on the live path).
	GatingRank int `json:"gating_rank"`
	// GatingPhase is the dominant phase (largest summed duration) on the
	// gating rank; GatingPhaseSeconds is its total there.
	GatingPhase        string  `json:"gating_phase"`
	GatingPhaseSeconds float64 `json:"gating_phase_seconds"`
	// Ranks is the per-timeline busy/wait split, ordered by rank (host
	// lane first when present).
	Ranks []RankActivity `json:"ranks"`
	// BlockingEdges are the gating rank's idle gaps, largest first,
	// attributed to the cross-rank span whose end released each one.
	BlockingEdges []BlockingEdge `json:"blocking_edges,omitempty"`
}

// RankPhaseSeconds sums span durations per (rank, phase name) over the
// compute ranks. Host-lane spans (Rank == HostRank) are excluded: the
// host's scatter/gather brackets the distributed run and would double-
// count against the per-rank phase totals the transports report.
func RankPhaseSeconds(spans []Span) map[int]map[string]float64 {
	out := make(map[int]map[string]float64)
	for _, s := range spans {
		if s.Rank == HostRank {
			continue
		}
		m := out[s.Rank]
		if m == nil {
			m = make(map[string]float64)
			out[s.Rank] = m
		}
		m[s.Phase.String()] += s.Dur
	}
	return out
}

// CriticalPath analyses one run's spans (as returned by Recorder.Spans)
// and reports what gates wall time. A nil report is returned for an
// empty timeline.
func CriticalPath(spans []Span) *CriticalPathReport {
	if len(spans) == 0 {
		return nil
	}
	// Wall and gating span: the latest end over every timeline.
	rep := &CriticalPathReport{}
	byRank := make(map[int][]Span)
	gate := spans[0]
	for _, s := range spans {
		byRank[s.Rank] = append(byRank[s.Rank], s)
		if end := s.Start + s.Dur; end > rep.WallSeconds {
			rep.WallSeconds = end
			gate = s
		}
	}
	rep.GatingRank = gate.Rank

	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks) // HostRank (-1) sorts first
	for _, r := range ranks {
		act := RankActivity{Rank: r, PhaseSeconds: make(map[string]float64)}
		for _, s := range byRank[r] {
			act.BusySeconds += s.Dur
			act.PhaseSeconds[s.Phase.String()] += s.Dur
		}
		if act.WaitSeconds = rep.WallSeconds - act.BusySeconds; act.WaitSeconds < 0 {
			act.WaitSeconds = 0
		}
		rep.Ranks = append(rep.Ranks, act)
	}

	// Dominant phase on the gating rank.
	for ph, sec := range rankPhase(byRank[rep.GatingRank]) {
		if sec > rep.GatingPhaseSeconds {
			rep.GatingPhase, rep.GatingPhaseSeconds = ph, sec
		}
	}

	rep.BlockingEdges = blockingEdges(byRank, rep.GatingRank)
	return rep
}

func rankPhase(spans []Span) map[string]float64 {
	m := make(map[string]float64)
	for _, s := range spans {
		m[s.Phase.String()] += s.Dur
	}
	return m
}

// blockingEdges finds the idle gaps on the gating rank's timeline and
// attributes each to the other-rank span ending latest at or before the
// gap's close — the completion that plausibly unblocked it. Gaps below
// 1% of the rank's busiest span are noise and dropped.
func blockingEdges(byRank map[int][]Span, gating int) []BlockingEdge {
	own := append([]Span(nil), byRank[gating]...)
	if len(own) == 0 {
		return nil
	}
	sort.Slice(own, func(i, j int) bool { return own[i].Start < own[j].Start })
	var maxDur float64
	for _, s := range own {
		if s.Dur > maxDur {
			maxDur = s.Dur
		}
	}
	floor := maxDur * 0.01
	var edges []BlockingEdge
	cursor := own[0].Start // idle before the first span has no releaser in-trace
	for _, s := range own {
		if gap := s.Start - cursor; gap > floor && gap > 0 {
			e := BlockingEdge{ToPhase: s.Phase.String(), GapStart: cursor, GapEnd: s.Start, WaitSeconds: gap}
			if from, ok := releaser(byRank, gating, s.Start); ok {
				e.FromRank, e.FromPhase = from.Rank, from.Phase.String()
				edges = append(edges, e)
			}
		}
		if end := s.Start + s.Dur; end > cursor {
			cursor = end
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].WaitSeconds > edges[j].WaitSeconds })
	const topK = 8
	if len(edges) > topK {
		edges = edges[:topK]
	}
	return edges
}

// releaser finds the span on a rank other than gating whose end is
// latest while not after t (with a hair of slack for clock skew between
// rank timelines on the live path).
func releaser(byRank map[int][]Span, gating int, t float64) (Span, bool) {
	const slack = 1e-9
	var best Span
	bestEnd := -1.0
	for r, spans := range byRank {
		if r == gating {
			continue
		}
		for _, s := range spans {
			if end := s.Start + s.Dur; end <= t+slack && end > bestEnd {
				bestEnd, best = end, s
			}
		}
	}
	return best, bestEnd >= 0
}

// Format renders the report as the fixed-width text block hsumma-run
// -critpath prints.
func (r *CriticalPathReport) Format() string {
	if r == nil {
		return "critical path: no spans recorded\n"
	}
	var b strings.Builder
	gr := fmt.Sprintf("rank %d", r.GatingRank)
	if r.GatingRank == HostRank {
		gr = "host"
	}
	fmt.Fprintf(&b, "critical path: %s gates wall %.3fms (dominant phase %s, %.3fms)\n",
		gr, r.WallSeconds*1e3, r.GatingPhase, r.GatingPhaseSeconds*1e3)
	fmt.Fprintf(&b, "%6s %12s %12s %6s\n", "rank", "busy(ms)", "wait(ms)", "busy%")
	for _, a := range r.Ranks {
		name := fmt.Sprintf("%d", a.Rank)
		if a.Rank == HostRank {
			name = "host"
		}
		pct := 0.0
		if r.WallSeconds > 0 {
			pct = 100 * a.BusySeconds / r.WallSeconds
		}
		fmt.Fprintf(&b, "%6s %12.3f %12.3f %5.1f%%\n", name, a.BusySeconds*1e3, a.WaitSeconds*1e3, pct)
	}
	if len(r.BlockingEdges) > 0 {
		fmt.Fprintf(&b, "top blocking edges (gating rank %s):\n", gr)
		for _, e := range r.BlockingEdges {
			fmt.Fprintf(&b, "  rank %d %s -> %s: wait %.3fms (%.3f..%.3fms)\n",
				e.FromRank, e.FromPhase, e.ToPhase, e.WaitSeconds*1e3, e.GapStart*1e3, e.GapEnd*1e3)
		}
	}
	return b.String()
}
