package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteJSONValidChromeTrace(t *testing.T) {
	r := New(2)
	r.Host(PhaseScatter, 0, 0.001, 1024, 0)
	r.Rank(0, PhaseBcast, 0.001, 0.002, 512, 3)
	r.Rank(1, PhaseBcast, 0.001, 0.004, 512, 1)
	r.RankThreads(0, PhaseGemm, 0.003, 0.010, 4)
	r.Rank(1, PhaseShift, 0.005, 0.001, 256, 2)
	r.Host(PhaseGather, 0.015, 0.002, 2048, 0)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var xPerTid = map[int]int{}
	meta := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			xPerTid[ev.Tid]++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("negative ts/dur in event %+v", ev)
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	// Both ranks and the host timeline must have complete events, and
	// every timeline a thread_name metadata record.
	for _, tid := range []int{-1, 0, 1} {
		if xPerTid[tid] == 0 {
			t.Fatalf("no X events for tid %d (have %v)", tid, xPerTid)
		}
	}
	if meta != 3 {
		t.Fatalf("%d thread_name metadata events, want 3", meta)
	}
}

func TestCountsAndSpans(t *testing.T) {
	r := New(2)
	r.Rank(0, PhaseBcast, 0, 1, 8, 1)
	r.Rank(0, PhaseBcast, 1, 1, 8, 1)
	r.Rank(1, PhaseGemm, 0, 2, 0, 0)
	r.Host(PhaseScatter, 0, 0.5, 64, 0)
	counts := r.Counts()
	if counts[CountKey{Rank: 0, Phase: PhaseBcast}] != 2 {
		t.Fatalf("rank 0 bcast count = %d, want 2", counts[CountKey{Rank: 0, Phase: PhaseBcast}])
	}
	if counts[CountKey{Rank: HostRank, Phase: PhaseScatter}] != 1 {
		t.Fatalf("host scatter count = %d, want 1", counts[CountKey{Rank: HostRank, Phase: PhaseScatter}])
	}
	if got := len(r.Spans()); got != 4 {
		t.Fatalf("Spans() returned %d spans, want 4", got)
	}
}

// A recorder with no spans still writes a valid Chrome trace document —
// thread_name metadata for the rank timelines and an empty event list is
// what Perfetto expects for an idle capture.
func TestWriteJSONEmptyRecorder(t *testing.T) {
	r := New(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty recorder produced invalid JSON: %v\n%s", err, buf.String())
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "M" {
			t.Fatalf("empty recorder emitted a non-metadata event: %v", ev)
		}
	}

	// The degenerate zero-rank, zero-span recorder must also parse.
	buf.Reset()
	if err := New(0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("zero-rank recorder produced invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("zero-rank recorder emitted %d events, want 0", len(doc.TraceEvents))
	}
}

func TestCommPhaseMapOmitsZeroPhases(t *testing.T) {
	var sec [NumPhases]float64
	sec[PhaseBcast] = 1.5
	sec[PhaseGemm] = 0.25
	m := CommPhaseMap(sec)
	if len(m) != 2 || m["bcast"] != 1.5 || m["gemm"] != 0.25 {
		t.Fatalf("CommPhaseMap = %v, want {bcast:1.5 gemm:0.25}", m)
	}
}
