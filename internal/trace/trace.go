// Package trace is the span model behind -trace and /debug/trace: a
// low-overhead, off-by-default recorder of per-rank phase timelines.
//
// The live mpi transport and both virtual engines emit one Span per
// communication or compute operation (broadcast, SendRecv shift,
// point-to-point, Gemm), and the host side adds scatter/gather spans
// around data distribution. A Recorder holds one span buffer per rank;
// each buffer is only ever appended to by the goroutine that owns that
// rank's clock (the rank goroutine on the live path and the goroutine
// engine, the single replay loop on the event engine, the last arriver
// of a collective for its members), so recording takes no locks.
//
// When tracing is disabled every instrumented site sees a nil *Recorder
// and skips span construction entirely; the only always-on cost is the
// per-phase float accumulation in the transports' rank stats.
//
// Timelines export as Chrome trace-event JSON ("X" complete events),
// loadable by Perfetto (ui.perfetto.dev) or chrome://tracing. Span
// times are seconds — wall-clock seconds since the recorder's epoch on
// the live path, virtual seconds on the simulators — scaled to
// microseconds on export.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Phase classifies a span. The transports assign phases by operation
// kind, so the algorithms themselves need no annotations: every Bcast
// is a broadcast round, every SendRecv a shift, every Gemm compute.
type Phase uint8

const (
	PhaseScatter Phase = iota // host-side operand distribution
	PhaseBcast                // one broadcast call (row/col/group round)
	PhaseShift                // a SendRecv exchange (Cannon/Fox shifts)
	PhaseP2P                  // bare Send/Recv and misc collectives
	PhaseGemm                 // local multiply
	PhaseGather               // host-side result collection
	NumPhases
)

var phaseNames = [NumPhases]string{"scatter", "bcast", "shift", "p2p", "gemm", "gather"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase" + strconv.Itoa(int(p))
}

// CommPhaseMap converts a per-phase seconds array (as accumulated by
// the transports) into the map form surfaced in Stats, keeping only
// phases with nonzero time.
func CommPhaseMap(sec [NumPhases]float64) map[string]float64 {
	m := make(map[string]float64, 3)
	for p, s := range sec {
		if s > 0 {
			m[Phase(p).String()] = s
		}
	}
	return m
}

// Span is one timed interval on one rank's timeline. Start and Dur are
// seconds on the run's timeline (wall or virtual). Rank -1 is the host
// timeline (scatter/gather around the distributed run).
type Span struct {
	Rank    int
	Phase   Phase
	Start   float64
	Dur     float64
	Bytes   int64 // payload bytes this rank moved in the operation
	Msgs    int64 // messages this rank sent in the operation
	Threads int   // Gemm spans: intra-rank thread count
}

// HostRank is the pseudo-rank for host-side scatter/gather spans.
const HostRank = -1

// Recorder collects spans for one run. Create one per traced run with
// New(ranks); a nil *Recorder is the disabled state and must not be
// passed to Rank/Host.
type Recorder struct {
	epoch time.Time
	ranks [][]Span
	host  []Span
}

// New returns a Recorder for a run on the given number of ranks, with
// its live epoch set to now.
func New(ranks int) *Recorder {
	return &Recorder{epoch: time.Now(), ranks: make([][]Span, ranks)}
}

// Epoch is the recorder's wall-clock zero for live spans.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// Since converts a wall-clock instant to seconds on the live timeline.
func (r *Recorder) Since(t time.Time) float64 { return t.Sub(r.epoch).Seconds() }

// Rank appends a span to one rank's timeline. Only the goroutine that
// owns the rank's clock may call it; it takes no locks.
func (r *Recorder) Rank(rank int, ph Phase, start, dur float64, bytes, msgs int64) {
	r.ranks[rank] = append(r.ranks[rank], Span{Rank: rank, Phase: ph, Start: start, Dur: dur, Bytes: bytes, Msgs: msgs})
}

// RankThreads is Rank with the Gemm thread count attached.
func (r *Recorder) RankThreads(rank int, ph Phase, start, dur float64, threads int) {
	r.ranks[rank] = append(r.ranks[rank], Span{Rank: rank, Phase: ph, Start: start, Dur: dur, Threads: threads})
}

// Host appends a span to the host timeline (single-goroutine use).
func (r *Recorder) Host(ph Phase, start, dur float64, bytes, msgs int64) {
	r.host = append(r.host, Span{Rank: HostRank, Phase: ph, Start: start, Dur: dur, Bytes: bytes, Msgs: msgs})
}

// Ranks is the number of rank timelines.
func (r *Recorder) Ranks() int { return len(r.ranks) }

// Spans returns every recorded span, host first, then ranks in order,
// each timeline in emission order.
func (r *Recorder) Spans() []Span {
	n := len(r.host)
	for _, rs := range r.ranks {
		n += len(rs)
	}
	out := make([]Span, 0, n)
	out = append(out, r.host...)
	for _, rs := range r.ranks {
		out = append(out, rs...)
	}
	return out
}

// CountKey identifies one (rank, phase) bucket in span counts.
type CountKey struct {
	Rank  int
	Phase Phase
}

// Counts returns the number of spans per (rank, phase), the quantity
// the live-vs-sim parity tests compare.
func (r *Recorder) Counts() map[CountKey]int {
	m := make(map[CountKey]int)
	for _, s := range r.Spans() {
		m[CountKey{s.Rank, s.Phase}]++
	}
	return m
}

// WriteJSON writes the timeline as Chrome trace-event JSON (the
// {"traceEvents": [...]} object form) for Perfetto / chrome://tracing.
// All spans land in one process (pid 0) with one thread per rank; the
// host timeline is thread -1, named "host".
func (r *Recorder) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(s)
	}
	// Thread-name metadata so Perfetto labels the timelines.
	tids := make([]int, 0, len(r.ranks)+1)
	if len(r.host) > 0 {
		tids = append(tids, HostRank)
	}
	for i := range r.ranks {
		tids = append(tids, i)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		name := "rank " + strconv.Itoa(tid)
		if tid == HostRank {
			name = "host"
		}
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%q}}`, tid, name))
	}
	for _, s := range r.Spans() {
		// Seconds -> microseconds, the trace-event time unit.
		line := fmt.Sprintf(`{"name":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{"bytes":%d,"msgs":%d,"threads":%d}}`,
			s.Phase.String(), s.Start*1e6, s.Dur*1e6, s.Rank, s.Bytes, s.Msgs, s.Threads)
		emit(line)
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
