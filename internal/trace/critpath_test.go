package trace

import (
	"math"
	"strings"
	"testing"
)

// TestCriticalPathAttribution drives CriticalPath with a hand-built
// timeline where every quantity is known in closed form: rank 1 works
// 2ms, idles 2ms waiting on rank 0's broadcast, then works 4ms more and
// ends the run.
func TestCriticalPathAttribution(t *testing.T) {
	spans := []Span{
		{Rank: 0, Phase: PhaseBcast, Start: 0, Dur: 0.004},
		{Rank: 1, Phase: PhaseGemm, Start: 0, Dur: 0.002},
		{Rank: 1, Phase: PhaseGemm, Start: 0.004, Dur: 0.004},
	}
	rep := CriticalPath(spans)
	if rep == nil {
		t.Fatal("CriticalPath returned nil for a non-empty timeline")
	}
	if math.Abs(rep.WallSeconds-0.008) > 1e-12 {
		t.Fatalf("WallSeconds = %v, want 0.008", rep.WallSeconds)
	}
	if rep.GatingRank != 1 {
		t.Fatalf("GatingRank = %d, want 1", rep.GatingRank)
	}
	if rep.GatingPhase != "gemm" || math.Abs(rep.GatingPhaseSeconds-0.006) > 1e-12 {
		t.Fatalf("gating phase = %s/%v, want gemm/0.006", rep.GatingPhase, rep.GatingPhaseSeconds)
	}
	if len(rep.Ranks) != 2 {
		t.Fatalf("Ranks has %d entries, want 2", len(rep.Ranks))
	}
	// Ordered by rank; busy + wait must always equal wall.
	for _, a := range rep.Ranks {
		if math.Abs(a.BusySeconds+a.WaitSeconds-rep.WallSeconds) > 1e-12 {
			t.Fatalf("rank %d: busy %v + wait %v != wall %v", a.Rank, a.BusySeconds, a.WaitSeconds, rep.WallSeconds)
		}
	}
	if r1 := rep.Ranks[1]; math.Abs(r1.BusySeconds-0.006) > 1e-12 || math.Abs(r1.WaitSeconds-0.002) > 1e-12 {
		t.Fatalf("rank 1 busy/wait = %v/%v, want 0.006/0.002", r1.BusySeconds, r1.WaitSeconds)
	}
	// The 2ms idle gap closes at t=4ms, exactly when rank 0's broadcast
	// ends — the edge must attribute the wait to that span.
	if len(rep.BlockingEdges) != 1 {
		t.Fatalf("BlockingEdges = %+v, want exactly one", rep.BlockingEdges)
	}
	e := rep.BlockingEdges[0]
	if e.FromRank != 0 || e.FromPhase != "bcast" || e.ToPhase != "gemm" {
		t.Fatalf("edge = %+v, want rank 0 bcast -> gemm", e)
	}
	if math.Abs(e.WaitSeconds-0.002) > 1e-12 {
		t.Fatalf("edge wait = %v, want 0.002", e.WaitSeconds)
	}
}

// TestCriticalPathHostGates covers the live-path shape: the host gather
// ends last, so the host lane gates the wall clock.
func TestCriticalPathHostGates(t *testing.T) {
	spans := []Span{
		{Rank: HostRank, Phase: PhaseScatter, Start: 0, Dur: 0.001},
		{Rank: 0, Phase: PhaseGemm, Start: 0.001, Dur: 0.005},
		{Rank: HostRank, Phase: PhaseGather, Start: 0.006, Dur: 0.002},
	}
	rep := CriticalPath(spans)
	if rep.GatingRank != HostRank {
		t.Fatalf("GatingRank = %d, want host (%d)", rep.GatingRank, HostRank)
	}
	if math.Abs(rep.WallSeconds-0.008) > 1e-12 {
		t.Fatalf("WallSeconds = %v, want 0.008", rep.WallSeconds)
	}
	if rep.GatingPhase != "gather" {
		t.Fatalf("GatingPhase = %s, want gather", rep.GatingPhase)
	}
	// The host lane must sort first in the per-rank table.
	if rep.Ranks[0].Rank != HostRank {
		t.Fatalf("first rank row = %d, want host lane", rep.Ranks[0].Rank)
	}
	if !strings.Contains(rep.Format(), "host gates wall") {
		t.Fatalf("Format() missing host gating line:\n%s", rep.Format())
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	if rep := CriticalPath(nil); rep != nil {
		t.Fatalf("CriticalPath(nil) = %+v, want nil", rep)
	}
	var rep *CriticalPathReport
	if got := rep.Format(); got != "critical path: no spans recorded\n" {
		t.Fatalf("nil Format() = %q", got)
	}
}

// TestCriticalPathOnRecorder exercises the real entry point: a recorder's
// Spans() feed, wall equal to the latest end across host and ranks.
func TestCriticalPathOnRecorder(t *testing.T) {
	r := New(2)
	r.Host(PhaseScatter, 0, 0.001, 64, 0)
	r.Rank(0, PhaseBcast, 0.001, 0.002, 32, 1)
	r.Rank(1, PhaseGemm, 0.001, 0.006, 0, 0)
	r.Host(PhaseGather, 0.007, 0.001, 64, 0)
	rep := CriticalPath(r.Spans())
	if math.Abs(rep.WallSeconds-0.008) > 1e-12 {
		t.Fatalf("WallSeconds = %v, want 0.008", rep.WallSeconds)
	}
	if rep.GatingRank != HostRank {
		t.Fatalf("GatingRank = %d, want host", rep.GatingRank)
	}
	if len(rep.Ranks) != 3 {
		t.Fatalf("Ranks has %d rows, want 3 (host + 2 ranks)", len(rep.Ranks))
	}
	out := rep.Format()
	for _, want := range []string{"critical path:", "busy(ms)", "host"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

// RankPhaseSeconds must exclude the host lane: its scatter/gather brackets
// the run and would double-count against the transports' per-rank stats.
func TestRankPhaseSecondsExcludesHost(t *testing.T) {
	r := New(1)
	r.Host(PhaseScatter, 0, 0.5, 64, 0)
	r.Rank(0, PhaseBcast, 0, 1, 8, 1)
	r.Rank(0, PhaseGemm, 1, 2, 0, 0)
	r.Host(PhaseGather, 3, 0.5, 64, 0)
	got := RankPhaseSeconds(r.Spans())
	if len(got) != 1 {
		t.Fatalf("RankPhaseSeconds covers ranks %v, want only rank 0", got)
	}
	if got[0]["bcast"] != 1 || got[0]["gemm"] != 2 {
		t.Fatalf("rank 0 phases = %v, want bcast:1 gemm:2", got[0])
	}
	if _, ok := got[HostRank]; ok {
		t.Fatal("host lane leaked into RankPhaseSeconds")
	}
}

// A zero-rank recorder is legal (host-only timeline) and must flow
// through Spans/Counts/CriticalPath without panicking.
func TestZeroRankRecorder(t *testing.T) {
	r := New(0)
	if r.Ranks() != 0 {
		t.Fatalf("Ranks() = %d, want 0", r.Ranks())
	}
	if got := len(r.Spans()); got != 0 {
		t.Fatalf("empty zero-rank recorder has %d spans", got)
	}
	if rep := CriticalPath(r.Spans()); rep != nil {
		t.Fatalf("CriticalPath over empty recorder = %+v, want nil", rep)
	}
	r.Host(PhaseScatter, 0, 0.001, 8, 0)
	if got := r.Counts()[CountKey{Rank: HostRank, Phase: PhaseScatter}]; got != 1 {
		t.Fatalf("host scatter count = %d, want 1", got)
	}
	rep := CriticalPath(r.Spans())
	if rep == nil || rep.GatingRank != HostRank {
		t.Fatalf("host-only critical path = %+v, want host-gated report", rep)
	}
}
