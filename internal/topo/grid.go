// Package topo provides the process-topology arithmetic for the SUMMA family:
// two-dimensional s×t process grids, and the two-level hierarchical I×J
// arrangement of groups that defines HSUMMA (paper Section III, Figure 2).
// All communicator colourings (row, column, inter-group row/column) are
// derived here so that the algorithm code and the simulator agree on exactly
// which ranks form each collective.
package topo

import "fmt"

// Grid is a two-dimensional arrangement of p = S×T processes in row-major
// order: rank r sits at row r/T, column r%T.
type Grid struct {
	S int // number of process rows (the paper's s)
	T int // number of process columns (the paper's t)
}

// NewGrid validates and returns an s×t grid.
func NewGrid(s, t int) (Grid, error) {
	if s <= 0 || t <= 0 {
		return Grid{}, fmt.Errorf("topo: invalid grid %dx%d", s, t)
	}
	return Grid{S: s, T: t}, nil
}

// Size returns the number of processes in the grid.
func (g Grid) Size() int { return g.S * g.T }

// Coords maps a rank to its (row, col) position.
func (g Grid) Coords(rank int) (row, col int) {
	g.checkRank(rank)
	return rank / g.T, rank % g.T
}

// Rank maps a (row, col) position to its rank.
func (g Grid) Rank(row, col int) int {
	if row < 0 || row >= g.S || col < 0 || col >= g.T {
		panic(fmt.Sprintf("topo: coords (%d,%d) outside %dx%d grid", row, col, g.S, g.T))
	}
	return row*g.T + col
}

func (g Grid) checkRank(rank int) {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("topo: rank %d outside grid of %d", rank, g.Size()))
	}
}

// RowRanks returns the ranks of grid row i, left to right.
func (g Grid) RowRanks(i int) []int {
	out := make([]int, g.T)
	for j := 0; j < g.T; j++ {
		out[j] = g.Rank(i, j)
	}
	return out
}

// ColRanks returns the ranks of grid column j, top to bottom.
func (g Grid) ColRanks(j int) []int {
	out := make([]int, g.S)
	for i := 0; i < g.S; i++ {
		out[i] = g.Rank(i, j)
	}
	return out
}

func (g Grid) String() string { return fmt.Sprintf("%dx%d", g.S, g.T) }

// SquarestGrid factors p into s×t with s ≤ t and s as close to √p as its
// divisors allow — the conventional choice for SUMMA process grids (and the
// one matching the paper's 8×16 grid for p=128 and 128×128 for p=16384).
func SquarestGrid(p int) (Grid, error) {
	if p <= 0 {
		return Grid{}, fmt.Errorf("topo: invalid process count %d", p)
	}
	best := 1
	for s := 1; s*s <= p; s++ {
		if p%s == 0 {
			best = s
		}
	}
	return Grid{S: best, T: p / best}, nil
}
