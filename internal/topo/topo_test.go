package topo

import (
	"testing"
	"testing/quick"
)

func TestGridCoordsRankRoundTrip(t *testing.T) {
	g, err := NewGrid(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < g.Size(); r++ {
		i, j := g.Coords(r)
		if g.Rank(i, j) != r {
			t.Fatalf("rank %d -> (%d,%d) -> %d", r, i, j, g.Rank(i, j))
		}
	}
}

func TestGridRowMajor(t *testing.T) {
	g := Grid{S: 2, T: 3}
	i, j := g.Coords(4)
	if i != 1 || j != 1 {
		t.Fatalf("rank 4 in 2x3 = (%d,%d), want (1,1)", i, j)
	}
}

func TestNewGridRejectsBad(t *testing.T) {
	if _, err := NewGrid(0, 3); err == nil {
		t.Fatal("0-row grid accepted")
	}
	if _, err := NewGrid(3, -1); err == nil {
		t.Fatal("negative-col grid accepted")
	}
}

func TestRowColRanks(t *testing.T) {
	g := Grid{S: 2, T: 3}
	row := g.RowRanks(1)
	if len(row) != 3 || row[0] != 3 || row[2] != 5 {
		t.Fatalf("row 1 = %v", row)
	}
	col := g.ColRanks(2)
	if len(col) != 2 || col[0] != 2 || col[1] != 5 {
		t.Fatalf("col 2 = %v", col)
	}
}

func TestSquarestGrid(t *testing.T) {
	cases := []struct{ p, s, t int }{
		{1, 1, 1}, {4, 2, 2}, {16, 4, 4}, {128, 8, 16}, {16384, 128, 128},
		{6, 2, 3}, {12, 3, 4}, {7, 1, 7}, {2048, 32, 64},
	}
	for _, c := range cases {
		g, err := SquarestGrid(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if g.S != c.s || g.T != c.t {
			t.Fatalf("SquarestGrid(%d) = %v, want %dx%d", c.p, g, c.s, c.t)
		}
	}
	if _, err := SquarestGrid(0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestHierDivisibility(t *testing.T) {
	g := Grid{S: 6, T: 6}
	if _, err := NewHier(g, 4, 2); err == nil {
		t.Fatal("4 does not divide 6, should fail")
	}
	h, err := NewHier(g, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.InnerS() != 2 || h.InnerT() != 2 || h.Groups() != 9 {
		t.Fatalf("paper's Figure 2 example wrong: %v", h)
	}
}

func TestHierComposeDecomposeRoundTrip(t *testing.T) {
	g := Grid{S: 8, T: 16}
	for _, gg := range []struct{ i, j int }{{1, 1}, {2, 4}, {8, 16}, {4, 2}, {1, 16}} {
		h, err := NewHier(g, gg.i, gg.j)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < g.Size(); r++ {
			x, y, i, j := h.Decompose(r)
			if h.Compose(x, y, i, j) != r {
				t.Fatalf("%v: rank %d -> (%d,%d,%d,%d) -> %d", h, r, x, y, i, j, h.Compose(x, y, i, j))
			}
		}
	}
}

// Communicator colour invariants: each colour class must have exactly the
// size the paper's Algorithm 1 requires, and the classes partition the grid.
func TestColorClassSizes(t *testing.T) {
	g := Grid{S: 8, T: 16}
	h, err := NewHier(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition := func(name string, color func(int) int, wantSize int) {
		classes := map[int][]int{}
		for r := 0; r < g.Size(); r++ {
			c := color(r)
			classes[c] = append(classes[c], r)
		}
		total := 0
		for c, members := range classes {
			if len(members) != wantSize {
				t.Fatalf("%s colour %d has %d members, want %d", name, c, len(members), wantSize)
			}
			total += len(members)
		}
		if total != g.Size() {
			t.Fatalf("%s classes do not partition the grid", name)
		}
	}
	checkPartition("row", g.RowColor, g.T)
	checkPartition("col", g.ColColor, g.S)
	checkPartition("innerRow", h.InnerRowColor, h.InnerT()) // t/J = 4
	checkPartition("innerCol", h.InnerColColor, h.InnerS()) // s/I = 4
	checkPartition("groupRow", h.GroupRowColor, h.J)        // J = 4
	checkPartition("groupCol", h.GroupColColor, h.I)        // I = 2
}

// Two ranks share a group-row communicator iff they agree on (x,i,j) and
// differ only in group column y — the P(x,*)(i,j) communicator of the paper.
func TestGroupRowColorSemantics(t *testing.T) {
	g := Grid{S: 4, T: 8}
	h, _ := NewHier(g, 2, 2)
	for r1 := 0; r1 < g.Size(); r1++ {
		x1, _, i1, j1 := h.Decompose(r1)
		for r2 := 0; r2 < g.Size(); r2++ {
			x2, _, i2, j2 := h.Decompose(r2)
			same := h.GroupRowColor(r1) == h.GroupRowColor(r2)
			want := x1 == x2 && i1 == i2 && j1 == j2
			if same != want {
				t.Fatalf("groupRow colour semantics wrong for ranks %d,%d", r1, r2)
			}
		}
	}
}

func TestGroupColColorSemantics(t *testing.T) {
	g := Grid{S: 4, T: 8}
	h, _ := NewHier(g, 2, 4)
	for r1 := 0; r1 < g.Size(); r1++ {
		_, y1, i1, j1 := h.Decompose(r1)
		for r2 := 0; r2 < g.Size(); r2++ {
			_, y2, i2, j2 := h.Decompose(r2)
			same := h.GroupColColor(r1) == h.GroupColColor(r2)
			want := y1 == y2 && i1 == i2 && j1 == j2
			if same != want {
				t.Fatalf("groupCol colour semantics wrong for ranks %d,%d", r1, r2)
			}
		}
	}
}

func TestFactorGroupsPrefersSquareInner(t *testing.T) {
	g := Grid{S: 128, T: 128}
	h, err := FactorGroups(g, 512)
	if err != nil {
		t.Fatal(err)
	}
	// 512 = 16*32 or 32*16 both give inner 8x4 / 4x8; either is fine but
	// G must be exact and divisible.
	if h.Groups() != 512 {
		t.Fatalf("G = %d", h.Groups())
	}
	h4, err := FactorGroups(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h4.I != 2 || h4.J != 2 {
		t.Fatalf("G=4 on square grid should be 2x2, got %dx%d", h4.I, h4.J)
	}
}

func TestFactorGroupsInfeasible(t *testing.T) {
	g := Grid{S: 8, T: 16} // p = 128
	if _, err := FactorGroups(g, 3); err == nil {
		t.Fatal("G=3 cannot divide an 8x16 grid")
	}
	if _, err := FactorGroups(g, 0); err == nil {
		t.Fatal("G=0 accepted")
	}
}

func TestValidGroupCountsEndpoints(t *testing.T) {
	g := Grid{S: 8, T: 16}
	counts := ValidGroupCounts(g)
	if counts[0] != 1 {
		t.Fatal("G=1 must always be valid")
	}
	last := counts[len(counts)-1]
	if last != g.Size() {
		t.Fatalf("G=p must always be valid, got max %d", last)
	}
	// All powers of two up to 128 must be present for the paper's sweep.
	want := map[int]bool{1: true, 2: true, 4: true, 8: true, 16: true, 32: true, 64: true, 128: true}
	seen := map[int]bool{}
	for _, c := range counts {
		seen[c] = true
	}
	for w := range want {
		if !seen[w] {
			t.Fatalf("power-of-two G=%d missing from valid counts %v", w, counts)
		}
	}
}

// Property: for any valid hierarchy, inner and group communicator sizes
// multiply back to the full grid dimensions.
func TestQuickHierSizes(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		s := int(a%4+1) * 2
		tt := int(b%4+1) * 2
		g := Grid{S: s, T: tt}
		// Pick divisors of s and t.
		i := 1 << (int(c) % 3)
		j := 1 << (int(d) % 3)
		if s%i != 0 || tt%j != 0 {
			return true // skip infeasible
		}
		h, err := NewHier(g, i, j)
		if err != nil {
			return false
		}
		return h.InnerS()*h.I == s && h.InnerT()*h.J == tt && h.Groups() == i*j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHierSpecialCasesAreSUMMA(t *testing.T) {
	// G=1: one group containing the whole grid; G=p: every rank its own
	// group. Both degenerate to plain SUMMA (paper Section III).
	g := Grid{S: 4, T: 4}
	h1, _ := NewHier(g, 1, 1)
	if h1.InnerS() != 4 || h1.InnerT() != 4 {
		t.Fatal("G=1 inner grid must equal the full grid")
	}
	hp, _ := NewHier(g, 4, 4)
	if hp.InnerS() != 1 || hp.InnerT() != 1 {
		t.Fatal("G=p inner grids must be single ranks")
	}
}
