package topo

import "fmt"

// Hier is the two-level hierarchical arrangement of HSUMMA: the S×T process
// grid is partitioned into an I×J grid of groups, each group an internal
// (S/I)×(T/J) grid (paper Section III, Figure 2). Following the paper's
// notation, a process is addressed P(x,y)(i,j): group coordinates (x,y) in
// the I×J group grid, inner coordinates (i,j) inside the group.
type Hier struct {
	Grid Grid
	I    int // group rows
	J    int // group columns
}

// NewHier validates divisibility (I | S, J | T) and returns the hierarchy.
func NewHier(g Grid, i, j int) (Hier, error) {
	if i <= 0 || j <= 0 {
		return Hier{}, fmt.Errorf("topo: invalid group grid %dx%d", i, j)
	}
	if g.S%i != 0 {
		return Hier{}, fmt.Errorf("topo: group rows %d do not divide grid rows %d", i, g.S)
	}
	if g.T%j != 0 {
		return Hier{}, fmt.Errorf("topo: group cols %d do not divide grid cols %d", j, g.T)
	}
	return Hier{Grid: g, I: i, J: j}, nil
}

// Groups returns the number of groups G = I×J.
func (h Hier) Groups() int { return h.I * h.J }

// InnerS and InnerT are the per-group grid dimensions (the paper's s/I, t/J).
func (h Hier) InnerS() int { return h.Grid.S / h.I }

// InnerT returns the number of process columns inside one group.
func (h Hier) InnerT() int { return h.Grid.T / h.J }

// Decompose maps a rank to its hierarchical address (x,y,i,j): group (x,y),
// inner position (i,j).
func (h Hier) Decompose(rank int) (x, y, i, j int) {
	gi, gj := h.Grid.Coords(rank)
	return gi / h.InnerS(), gj / h.InnerT(), gi % h.InnerS(), gj % h.InnerT()
}

// Compose maps a hierarchical address back to a rank.
func (h Hier) Compose(x, y, i, j int) int {
	if x < 0 || x >= h.I || y < 0 || y >= h.J {
		panic(fmt.Sprintf("topo: group (%d,%d) outside %dx%d", x, y, h.I, h.J))
	}
	if i < 0 || i >= h.InnerS() || j < 0 || j >= h.InnerT() {
		panic(fmt.Sprintf("topo: inner (%d,%d) outside %dx%d", i, j, h.InnerS(), h.InnerT()))
	}
	return h.Grid.Rank(x*h.InnerS()+i, y*h.InnerT()+j)
}

// Communicator colourings. Ranks sharing a colour form one communicator.
// The four communicators below are exactly the ones declared in the paper's
// Algorithm 1.

// RowColor groups ranks of one grid row: the row_comm used for the inner
// horizontal broadcast of A. Inside HSUMMA the inner row communicator is
// additionally split per group, which InnerRowColor provides.
func (g Grid) RowColor(rank int) int {
	i, _ := g.Coords(rank)
	return i
}

// ColColor groups ranks of one grid column: col_comm for the inner vertical
// broadcast of B.
func (g Grid) ColColor(rank int) int {
	_, j := g.Coords(rank)
	return j
}

// InnerRowColor groups ranks that share a group and an inner row — the
// row_comm of Algorithm 1 (communicator between P(x,y)(i,*)). Size T/J.
func (h Hier) InnerRowColor(rank int) int {
	x, y, i, _ := h.Decompose(rank)
	return (x*h.J+y)*h.InnerS() + i
}

// InnerColColor groups ranks that share a group and an inner column — the
// col_comm of Algorithm 1 (communicator between P(x,y)(*,j)). Size S/I.
func (h Hier) InnerColColor(rank int) int {
	x, y, _, j := h.Decompose(rank)
	return (x*h.J+y)*h.InnerT() + j
}

// GroupRowColor groups ranks that share a group row and inner coordinates —
// the group_row_comm of Algorithm 1 (communicator between P(x,*)(i,j)),
// used for the horizontal inter-group broadcast of A. Size J.
func (h Hier) GroupRowColor(rank int) int {
	x, _, i, j := h.Decompose(rank)
	return (x*h.InnerS()+i)*h.InnerT() + j
}

// GroupColColor groups ranks that share a group column and inner coordinates
// — the group_col_comm of Algorithm 1 (communicator between P(*,y)(i,j)),
// used for the vertical inter-group broadcast of B. Size I.
func (h Hier) GroupColColor(rank int) int {
	_, y, i, j := h.Decompose(rank)
	return (y*h.InnerS()+i)*h.InnerT() + j
}

// FactorGroups chooses a feasible I×J decomposition with I·J = G for a G
// sweep over an S×T grid: among all factorisations with I | S and J | T it
// picks the one whose per-group grid (S/I)×(T/J) is closest to square,
// matching the paper's preference for square group arrangements (its
// analysis assumes √G×√G). Returns an error when no factorisation exists.
func FactorGroups(g Grid, G int) (Hier, error) {
	if G <= 0 {
		return Hier{}, fmt.Errorf("topo: invalid group count %d", G)
	}
	bestSet := false
	var best Hier
	var bestScore float64
	for i := 1; i <= G; i++ {
		if G%i != 0 {
			continue
		}
		j := G / i
		h, err := NewHier(g, i, j)
		if err != nil {
			continue
		}
		// Aspect-ratio score of the inner grid: |log(innerS/innerT)|
		// monotone proxy without math import — use ratio max/min.
		a, b := float64(h.InnerS()), float64(h.InnerT())
		score := a / b
		if b > a {
			score = b / a
		}
		if !bestSet || score < bestScore {
			best, bestScore, bestSet = h, score, true
		}
	}
	if !bestSet {
		return Hier{}, fmt.Errorf("topo: no I×J=%d factorisation divides grid %v", G, g)
	}
	return best, nil
}

// ValidGroupCounts lists every G in [1, p] that admits a factorisation on
// grid g, in increasing order. These are the x-axis points of the paper's
// G sweeps (Figures 5, 6, 8).
func ValidGroupCounts(g Grid) []int {
	var out []int
	for G := 1; G <= g.Size(); G++ {
		if _, err := FactorGroups(g, G); err == nil {
			out = append(out, G)
		}
	}
	return out
}

func (h Hier) String() string {
	return fmt.Sprintf("%v grid as %dx%d groups of %dx%d", h.Grid, h.I, h.J, h.InnerS(), h.InnerT())
}
