// Package torus models the BlueGene/P interconnect geometry: compute nodes
// arranged in a 3D torus (Shaheen: 16 racks of 1024 nodes), four cores per
// node in VN mode, with messages wormhole-routed along shortest torus
// paths. The paper observes that "mapping communication layouts to network
// hardware on BlueGene/P impacts the communication performance" (the
// Figure 8 "zigzags", citing Balaji et al.); this package provides the
// rank→coordinate mapping and hop-distance metric that lets the simulator
// reproduce that mapping sensitivity as an ablation.
package torus

import "fmt"

// Torus is an X×Y×Z node torus with CoresPerNode cores per node. MPI ranks
// map to cores in the BG/P default XYZT order: consecutive ranks fill a
// node's cores, consecutive nodes advance along X, then Y, then Z.
type Torus struct {
	X, Y, Z      int
	CoresPerNode int
}

// ForCores returns the most cubic torus holding exactly p cores in VN mode
// (4 cores/node). It errors when p is not a multiple of 4 or the node
// count has no 3-factor decomposition (never the case for powers of two).
func ForCores(p int) (Torus, error) {
	const vn = 4
	if p <= 0 || p%vn != 0 {
		return Torus{}, fmt.Errorf("torus: %d cores is not a positive multiple of %d", p, vn)
	}
	nodes := p / vn
	// Most cubic X ≤ Y ≤ Z factorisation of the node count.
	bestX, bestY, bestZ := 1, 1, nodes
	for x := 1; x*x*x <= nodes; x++ {
		if nodes%x != 0 {
			continue
		}
		rem := nodes / x
		for y := x; y*y <= rem; y++ {
			if rem%y != 0 {
				continue
			}
			z := rem / y
			// Later candidates are more cubic (x grows, spread shrinks).
			if z-x <= bestZ-bestX {
				bestX, bestY, bestZ = x, y, z
			}
		}
	}
	return Torus{X: bestX, Y: bestY, Z: bestZ, CoresPerNode: vn}, nil
}

// Nodes returns the node count.
func (t Torus) Nodes() int { return t.X * t.Y * t.Z }

// Cores returns the total core (rank) count.
func (t Torus) Cores() int { return t.Nodes() * t.CoresPerNode }

// NodeCoord maps a rank to its node's torus coordinates.
func (t Torus) NodeCoord(rank int) (x, y, z int) {
	if rank < 0 || rank >= t.Cores() {
		panic(fmt.Sprintf("torus: rank %d outside %d cores", rank, t.Cores()))
	}
	node := rank / t.CoresPerNode
	return node % t.X, (node / t.X) % t.Y, node / (t.X * t.Y)
}

// Distance returns the torus Manhattan hop count between two ranks' nodes
// (0 when they share a node).
func (t Torus) Distance(a, b int) int {
	ax, ay, az := t.NodeCoord(a)
	bx, by, bz := t.NodeCoord(b)
	return wrapDist(ax, bx, t.X) + wrapDist(ay, by, t.Y) + wrapDist(az, bz, t.Z)
}

func wrapDist(a, b, dim int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if dim-d < d {
		d = dim - d
	}
	return d
}

// LinkCost returns the bandwidth multiplier for a transfer between two
// ranks under wormhole routing: a message of distance d occupies d links,
// so its effective share of the network is d times that of a single-hop
// message. Same-node transfers (through shared memory) cost as one hop.
func (t Torus) LinkCost(a, b int) float64 {
	d := t.Distance(a, b)
	if d < 1 {
		return 1
	}
	return float64(d)
}

func (t Torus) String() string {
	return fmt.Sprintf("%dx%dx%d torus, %d cores/node", t.X, t.Y, t.Z, t.CoresPerNode)
}
