package torus

import (
	"testing"
	"testing/quick"
)

func TestForCoresShapes(t *testing.T) {
	cases := []struct {
		p       int
		x, y, z int
	}{
		{4, 1, 1, 1},
		{32, 2, 2, 2},
		{2048, 8, 8, 8},
		{16384, 16, 16, 16}, // Shaheen VN mode: 4096 nodes
		{256, 4, 4, 4},
	}
	for _, c := range cases {
		tor, err := ForCores(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if tor.X != c.x || tor.Y != c.y || tor.Z != c.z {
			t.Fatalf("ForCores(%d) = %v, want %dx%dx%d", c.p, tor, c.x, c.y, c.z)
		}
		if tor.Cores() != c.p {
			t.Fatalf("ForCores(%d).Cores() = %d", c.p, tor.Cores())
		}
	}
	if _, err := ForCores(6); err == nil {
		t.Fatal("non-multiple of 4 accepted")
	}
	if _, err := ForCores(0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestSameNodeDistanceZero(t *testing.T) {
	tor, _ := ForCores(32)
	for r := 0; r < 4; r++ {
		if d := tor.Distance(0, r); d != 0 {
			t.Fatalf("ranks 0 and %d share node 0 but distance %d", r, d)
		}
	}
	if tor.LinkCost(0, 1) != 1 {
		t.Fatal("same-node link cost should be 1")
	}
}

func TestNeighborDistance(t *testing.T) {
	tor, _ := ForCores(2048) // 8x8x8
	// Ranks 0..3 on node (0,0,0); ranks 4..7 on node (1,0,0).
	if d := tor.Distance(0, 4); d != 1 {
		t.Fatalf("adjacent nodes distance %d", d)
	}
}

func TestWraparound(t *testing.T) {
	tor, _ := ForCores(2048) // 8x8x8
	// Node (7,0,0) = node index 7 -> rank 28. Torus wrap: distance 1.
	if d := tor.Distance(0, 28); d != 1 {
		t.Fatalf("wraparound distance %d, want 1", d)
	}
	// Node (4,0,0) -> rank 16: maximal X distance 4.
	if d := tor.Distance(0, 16); d != 4 {
		t.Fatalf("antipodal X distance %d, want 4", d)
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	tor, _ := ForCores(256)
	f := func(a, b uint16) bool {
		ra, rb := int(a)%256, int(b)%256
		d := tor.Distance(ra, rb)
		if d != tor.Distance(rb, ra) {
			return false // symmetry
		}
		if ra == rb && d != 0 {
			return false
		}
		maxD := tor.X/2 + tor.Y/2 + tor.Z/2
		return d >= 0 && d <= maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	tor, _ := ForCores(256)
	f := func(a, b, c uint16) bool {
		ra, rb, rc := int(a)%256, int(b)%256, int(c)%256
		return tor.Distance(ra, rc) <= tor.Distance(ra, rb)+tor.Distance(rb, rc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNodeCoordRoundTrip(t *testing.T) {
	tor, _ := ForCores(2048)
	seen := map[[3]int]int{}
	for rank := 0; rank < tor.Cores(); rank += tor.CoresPerNode {
		x, y, z := tor.NodeCoord(rank)
		key := [3]int{x, y, z}
		if _, dup := seen[key]; dup {
			t.Fatalf("node %v mapped twice", key)
		}
		seen[key] = rank
	}
	if len(seen) != tor.Nodes() {
		t.Fatalf("%d distinct nodes, want %d", len(seen), tor.Nodes())
	}
}

func TestNodeCoordPanicsOutOfRange(t *testing.T) {
	tor, _ := ForCores(32)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tor.NodeCoord(32)
}
