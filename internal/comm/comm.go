// Package comm defines the transport-agnostic communicator interface the
// SUMMA-family algorithms are written against. Every algorithm in
// internal/core and internal/baseline is implemented exactly once, in terms
// of this interface, and runs unchanged on two transports:
//
//   - the live transport (internal/mpi): ranks are goroutines, wire buffers
//     carry real matrix elements, Gemm executes real floating-point work,
//     and communication time is wall-clock — the correctness path;
//
//   - the virtual transport (internal/simnet): ranks are goroutines but
//     wire buffers carry only element counts, Gemm advances a per-rank
//     Hockney compute clock, and every transfer advances virtual time — the
//     timing path that reproduces the paper's BlueGene/P and exascale
//     figures at ranks counts no single machine could host with real data.
//
// Both transports execute the same broadcast schedules (internal/sched) and
// count the same per-rank messages and bytes, so a simulated run is
// traffic-identical to a live run of the same configuration — the invariant
// the parity tests in internal/simalg assert.
//
// The interface has two halves. The communication half (Rank/Size/Split/
// Send/Recv/SendRecv/Bcast) mirrors the MPI subset the paper's Algorithm 1
// uses. The data half (NewBuf/NewTile/CloneTile/Pack/Unpack/Gemm) routes
// every touch of matrix element storage through the transport, which is
// what lets the virtual transport elide storage entirely: a simulated
// 16384-rank run allocates shape headers, not gigabytes of tiles.
package comm

import (
	"fmt"
	"sort"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// Exec describes how a rank executes its local multiplies: the intra-rank
// thread budget (the Go analog of OpenMP threads inside an MPI process;
// values ≤ 1 mean serial) and the optional sub-cubic local kernel. It
// travels with every Gemm call so all three transports — live, goroutine
// virtual and event virtual — agree on both the arithmetic performed and
// the flop count charged.
type Exec struct {
	// Threads is the rank's goroutine budget for the local multiply.
	Threads int
	// Strassen selects blas.StrassenGemm as the local kernel; the virtual
	// transports then charge blas.StrassenFlops instead of 2·m·n·k.
	Strassen bool
	// Cutoff is the Strassen recursion cutoff (≤ 0 selects the blas
	// default); ignored unless Strassen is set.
	Cutoff int
}

// Serial is the default execution: one thread, classic kernel.
var Serial = Exec{Threads: 1}

// Threaded returns a classic-kernel Exec with the given thread budget.
func Threaded(t int) Exec { return Exec{Threads: t} }

// Flops returns the flop count this execution charges for an m×k by k×n
// local multiply: blas.StrassenFlops under the sub-cubic kernel, the
// conventional 2·m·n·k otherwise — evaluated in exactly the historical
// association order, so non-Strassen virtual times stay bit-identical.
func (x Exec) Flops(m, n, k int) float64 {
	if x.Strassen {
		return blas.StrassenFlops(m, n, k, x.Cutoff)
	}
	return blas.FlopsGemm(m, n, k)
}

// Buf is a wire buffer of matrix elements. Under the live transport Data
// holds the elements (len(Data) == N); under a virtual transport Data is
// nil and only the element count N travels — the Hockney cost and the
// traffic accounting depend only on N.
type Buf struct {
	Data []float64
	N    int
}

// Comm is a communicator: an ordered group of ranks with an isolated
// message namespace, plus the data-plane hooks that let a transport decide
// whether matrix elements physically exist.
//
// Collective calls (Split, Bcast) must be made by every member of the
// communicator in the same order — the standard MPI requirement both
// transports rely on to match operations without central coordination.
type Comm interface {
	// Rank returns the caller's rank within the communicator.
	Rank() int
	// Size returns the number of ranks in the communicator.
	Size() int
	// Split partitions the communicator exactly like MPI_Comm_split:
	// ranks passing the same colour form a new communicator ordered by
	// (key, old rank). A negative colour returns nil (MPI_UNDEFINED).
	Split(color, key int) Comm

	// Send delivers data to dst (comm rank) under tag. Sends are eager:
	// they never block and the buffer may be reused on return.
	Send(dst, tag int, data Buf)
	// Recv blocks until a message from src with the given tag arrives.
	// The buffer's element count must equal the message's exactly.
	Recv(src, tag int, buf Buf)
	// SendRecv performs the send and the receive concurrently — the
	// full-duplex shift primitive of Cannon's and Fox's algorithms.
	SendRecv(dst, sendTag int, send Buf, src, recvTag int, recv Buf)
	// Bcast broadcasts root's buffer to every rank in place, executing
	// the named algorithm's schedule from internal/sched transfer by
	// transfer. segments is the chain pipeline depth (pass 1 otherwise).
	Bcast(alg sched.Algorithm, root int, data Buf, segments int)

	// NewBuf allocates a wire buffer of elems elements.
	NewBuf(elems int) Buf
	// NewTile allocates a zeroed rows×cols local matrix.
	NewTile(rows, cols int) *matrix.Dense
	// CloneTile returns a private copy of a tile (Cannon and Fox rotate
	// copies so the caller's inputs stay untouched).
	CloneTile(src *matrix.Dense) *matrix.Dense
	// Pack marshals a tile (or view) into a wire buffer; the element
	// counts must match exactly.
	Pack(dst Buf, src *matrix.Dense)
	// Unpack fills a tile from a wire buffer produced by Pack.
	Unpack(dst *matrix.Dense, src Buf)
	// Gemm performs the local update C += A·B under the given execution
	// descriptor: real arithmetic (packed, threaded or Strassen per x) on
	// the live transport, a compute-clock advance of x.Flops(m,n,k) scaled
	// by the shared parallel-efficiency curve (hockney.Speedup) on the
	// virtual ones.
	Gemm(c, a, b *matrix.Dense, x Exec)
	// Axpy performs the local element-wise update Y += alpha·X over tiles
	// of equal shape — the quadrant add/sub primitive of the distributed
	// Strassen algorithm. Live transports do real arithmetic; virtual ones
	// charge rows·cols flops (one add per element) on the compute clock.
	Axpy(alpha float64, x, y *matrix.Dense)
}

// CheckPack panics unless src's shape fills dst exactly — shared by the
// transports so both enforce the same contract.
func CheckPack(dst Buf, src *matrix.Dense) {
	if src.Rows*src.Cols != dst.N {
		panic(fmt.Sprintf("comm: pack %dx%d tile into %d-element buffer", src.Rows, src.Cols, dst.N))
	}
}

// SplitGroups computes MPI_Comm_split's grouping from every member's
// (colour, key): the member lists (old ranks) of each new communicator,
// colours ascending, each list ordered by (key, old rank); negative
// colours are excluded. Every transport builds its Split result from
// this one function, so the engines cannot drift on communicator
// structure — the invariant the bit-parity tests rely on.
func SplitGroups(colors, keys map[int]int) [][]int {
	byColor := map[int][]int{}
	for r, col := range colors {
		if col < 0 {
			continue
		}
		byColor[col] = append(byColor[col], r)
	}
	cols := make([]int, 0, len(byColor))
	for col := range byColor {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	groups := make([][]int, 0, len(cols))
	for _, col := range cols {
		members := byColor[col]
		sort.Slice(members, func(i, j int) bool {
			ki, kj := keys[members[i]], keys[members[j]]
			if ki != kj {
				return ki < kj
			}
			return members[i] < members[j]
		})
		groups = append(groups, members)
	}
	return groups
}
