package simalg

import (
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// Both engines must be deterministic regardless of scheduling: virtual
// times, communication-time breakdowns and traffic counters may not
// depend on GOMAXPROCS or goroutine interleaving. The goroutine engine
// guarantees it by clock ownership (each rank's clock advances only in
// its own program order); the event engine by construction (disjoint
// collectives commute exactly, message matching is FIFO per sender).
// This is what makes figure regeneration reproducible across hosts.

type detRun struct {
	total, comm float64
	stats       []simnet.VRankStats
}

func bgp4096Run(t *testing.T, ex engine.Executor) detRun {
	t.Helper()
	g := topo.Grid{S: 64, T: 64}
	h, err := topo.FactorGroups(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := RunStats(Config{
		N: 16384, Grid: g, BlockSize: 256, Groups: h,
		Bcast: sched.VanDeGeijn, Machine: platform.BlueGenePCalibrated().Model,
		Executor: ex,
	}, engine.HSUMMA)
	if err != nil {
		t.Fatal(err)
	}
	return detRun{total: res.Total, comm: res.Comm, stats: stats}
}

// TestDeterminism4096BGP runs a full 4096-rank BG/P simulation twice
// under GOMAXPROCS=1 and GOMAXPROCS=NumCPU on both engines and asserts
// every run is bit-identical — across repetitions, across parallelism,
// and across engines.
func TestDeterminism4096BGP(t *testing.T) {
	if testing.Short() {
		t.Skip("full 4096-rank simulation; skipped with -short")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var runs []detRun
	var labels []string
	for _, procs := range []int{1, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		for _, ex := range []engine.Executor{engine.ExecutorGoroutine, engine.ExecutorEvent} {
			for rep := 0; rep < 2; rep++ {
				runs = append(runs, bgp4096Run(t, ex))
				labels = append(labels, string(ex))
			}
		}
	}
	runtime.GOMAXPROCS(prev)

	ref := runs[0]
	for i, r := range runs[1:] {
		if r.total != ref.total || r.comm != ref.comm {
			t.Fatalf("run %d (%s): total/comm %v/%v differ from reference %v/%v",
				i+1, labels[i+1], r.total, r.comm, ref.total, ref.comm)
		}
		for rank := range ref.stats {
			if r.stats[rank] != ref.stats[rank] {
				t.Fatalf("run %d (%s): rank %d traffic %+v differs from reference %+v",
					i+1, labels[i+1], rank, r.stats[rank], ref.stats[rank])
			}
		}
	}
}
