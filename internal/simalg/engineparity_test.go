package simalg

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/evsim"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// The engine parity invariant: the event-driven engine (internal/evsim)
// must produce *bit-identical* virtual times, per-rank communication-time
// breakdowns and per-rank traffic counters to the goroutine engine
// (internal/simnet.VWorld) — for every algorithm, on every platform
// preset, with and without contention. This is what lets "auto" switch
// engines purely on host wall time.

// engineRun executes a spec on one engine and returns per-rank clocks,
// comm times and traffic.
func engineRun(t *testing.T, spec engine.Spec, vcfg simnet.VConfig, ex engine.Executor) (clocks, commT []float64, stats []simnet.VRankStats) {
	t.Helper()
	g := spec.Opts.Grid
	bm, err := dist.NewBlockMap(spec.Opts.N, spec.Opts.N, g)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var algErr error
	rank := func(c comm.Comm) {
		aLoc := c.NewTile(bm.LocalRows(), bm.LocalCols())
		bLoc := c.NewTile(bm.LocalRows(), bm.LocalCols())
		cLoc := c.NewTile(bm.LocalRows(), bm.LocalCols())
		if e := engine.Run(c, spec, aLoc, bLoc, cLoc); e != nil {
			mu.Lock()
			if algErr == nil {
				algErr = e
			}
			mu.Unlock()
		}
	}
	var sim *simnet.Sim
	switch ex {
	case engine.ExecutorEvent:
		w := evsim.NewWorld(g.Size(), vcfg)
		err = w.Run(rank)
		sim, stats = w.Sim(), w.Stats()
	default:
		w := simnet.NewVWorld(g.Size(), vcfg)
		err = w.Run(func(c *simnet.VComm) { rank(c) })
		sim, stats = w.Sim(), w.Stats()
	}
	if err != nil {
		t.Fatalf("%s engine: %v", ex, err)
	}
	if algErr != nil {
		t.Fatalf("%s engine: %v", ex, algErr)
	}
	p := g.Size()
	clocks = make([]float64, p)
	commT = make([]float64, p)
	for r := 0; r < p; r++ {
		clocks[r] = sim.Clock(r)
		commT[r] = sim.CommTime(r)
	}
	return clocks, commT, stats
}

func paritySpecs(t *testing.T) map[string]engine.Spec {
	t.Helper()
	g := topo.Grid{S: 4, T: 4}
	h, err := topo.NewHier(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := 96
	return map[string]engine.Spec{
		"summa": {Algorithm: engine.SUMMA, Opts: core.Options{
			N: n, Grid: g, BlockSize: 8, Broadcast: sched.Binomial}},
		"hsumma": {Algorithm: engine.HSUMMA, Opts: core.Options{
			N: n, Grid: g, BlockSize: 8, OuterBlockSize: 24, Groups: h,
			Broadcast: sched.VanDeGeijn, Segments: 4}},
		"multilevel": {Algorithm: engine.Multilevel, Opts: core.Options{
			N: n, Grid: g, BlockSize: 4, Broadcast: sched.Binomial},
			Levels: []core.Level{{I: 2, J: 2, BlockSize: 8}}},
		"cannon": {Algorithm: engine.Cannon, Opts: core.Options{N: n, Grid: g}},
		"fox": {Algorithm: engine.Fox, Opts: core.Options{
			N: n, Grid: g, Broadcast: sched.VanDeGeijn}},
		"strassen": {Algorithm: engine.Strassen, Opts: core.Options{
			N: n, Grid: g, BlockSize: 8,
			LocalStrassen: true, StrassenCutoff: 8}},
		"strassen_hsumma": {Algorithm: engine.Strassen, Opts: core.Options{
			N: n, Grid: g, BlockSize: 8, StrassenLevels: 1,
			StrassenInnerGroups: 2, Threads: 2}},
	}
}

func parityPlatforms() map[string]platform.Platform {
	return map[string]platform.Platform{
		"grid5000":     platform.Grid5000(),
		"bgp":          platform.BlueGeneP(),
		"exascale":     platform.Exascale(),
		"grid5000-cal": platform.Grid5000Calibrated(),
		"bgp-cal":      platform.BlueGenePCalibrated(),
	}
}

// TestEngineParity is the table-driven bit-identity check: five
// algorithms × five platform presets × contention off/on.
func TestEngineParity(t *testing.T) {
	for algName, spec := range paritySpecs(t) {
		for pfName, pf := range parityPlatforms() {
			for _, contention := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/contention=%t", algName, pfName, contention)
				spec, pf, contention := spec, pf, contention
				t.Run(name, func(t *testing.T) {
					vcfg := simnet.VConfig{Model: pf.Model}
					if contention {
						vcfg.Contention = simnet.ContentionFor(pf, spec.Opts.Grid.Size(), true)
					}
					gc, gm, gs := engineRun(t, spec, vcfg, engine.ExecutorGoroutine)
					ec, em, es := engineRun(t, spec, vcfg, engine.ExecutorEvent)
					for r := range gc {
						if gc[r] != ec[r] {
							t.Fatalf("rank %d clock: goroutine %v vs event %v", r, gc[r], ec[r])
						}
						if gm[r] != em[r] {
							t.Fatalf("rank %d comm time: goroutine %v vs event %v", r, gm[r], em[r])
						}
						if gs[r] != es[r] {
							t.Fatalf("rank %d traffic: goroutine %+v vs event %+v", r, gs[r], es[r])
						}
					}
				})
			}
		}
	}
}

// TestEngineParityOverlapAndLinkCost covers the model knobs outside the
// main table: the overlap compute timeline, and a non-uniform link model
// (which disables the symmetry memo — transfer times depend on rank
// placement).
func TestEngineParityOverlapAndLinkCost(t *testing.T) {
	specs := paritySpecs(t)
	pf := platform.BlueGenePCalibrated()

	t.Run("overlap", func(t *testing.T) {
		spec := specs["hsumma"]
		vcfg := simnet.VConfig{Model: pf.Model, Overlap: true}
		// Overlap moves Gemm onto a separate timeline; Total differs from
		// MaxClock, so compare through the world totals as well.
		gRes, gStats, err := RunSpecOn(spec, vcfg, engine.ExecutorGoroutine)
		if err != nil {
			t.Fatal(err)
		}
		eRes, eStats, err := RunSpecOn(spec, vcfg, engine.ExecutorEvent)
		if err != nil {
			t.Fatal(err)
		}
		if gRes.Total != eRes.Total || gRes.Comm != eRes.Comm {
			t.Fatalf("overlap totals differ: goroutine %+v vs event %+v", gRes, eRes)
		}
		for r := range gStats {
			if gStats[r] != eStats[r] {
				t.Fatalf("rank %d traffic: %+v vs %+v", r, gStats[r], eStats[r])
			}
		}
	})

	t.Run("linkcost", func(t *testing.T) {
		spec := specs["hsumma"]
		link := func(src, dst int) float64 { return 1 + 0.1*float64((src+dst)%3) }
		vcfg := simnet.VConfig{Model: pf.Model, LinkCost: link}
		gc, gm, gs := engineRun(t, spec, vcfg, engine.ExecutorGoroutine)
		ec, em, es := engineRun(t, spec, vcfg, engine.ExecutorEvent)
		for r := range gc {
			if gc[r] != ec[r] || gm[r] != em[r] || gs[r] != es[r] {
				t.Fatalf("rank %d differs under link cost: clock %v/%v comm %v/%v stats %+v/%+v",
					r, gc[r], ec[r], gm[r], em[r], gs[r], es[r])
			}
		}
	})
}

// TestEngineAutoSelection pins the auto rule: event for collective-only
// specs, goroutines for the point-to-point baselines and overlap runs —
// and rejection of unknown executors.
func TestEngineAutoSelection(t *testing.T) {
	cases := []struct {
		alg     engine.Algorithm
		overlap bool
		want    engine.Executor
	}{
		{engine.SUMMA, false, engine.ExecutorEvent},
		{engine.HSUMMA, false, engine.ExecutorEvent},
		{engine.Multilevel, false, engine.ExecutorEvent},
		{engine.Cannon, false, engine.ExecutorGoroutine},
		{engine.Fox, false, engine.ExecutorGoroutine},
		{engine.HSUMMA, true, engine.ExecutorGoroutine},
	}
	for _, c := range cases {
		got, err := engine.ResolveExecutor(engine.ExecutorAuto, c.alg, c.overlap)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("auto(%s, overlap=%t) = %s, want %s", c.alg, c.overlap, got, c.want)
		}
		// The empty string behaves as auto.
		got, err = engine.ResolveExecutor("", c.alg, c.overlap)
		if err != nil || got != c.want {
			t.Errorf("empty executor (%s, overlap=%t) = %s (%v), want %s", c.alg, c.overlap, got, err, c.want)
		}
	}
	if _, err := engine.ResolveExecutor("warp", engine.SUMMA, false); err == nil {
		t.Fatal("unknown executor accepted")
	}
}
