package simalg

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/hockney"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/topo"
)

// The refactor's key invariant: because the live runtime and the virtual
// communicator execute the *same* algorithm implementations over the same
// broadcast schedules, a simulated run must report per-rank message and
// byte counts identical to a live run of the same configuration. This is
// what makes the simulated figures trustworthy: they time exactly the
// communication pattern the runnable, correctness-verified code performs.

// liveStats executes the algorithm on the goroutine runtime with real data
// and returns the per-rank traffic counters.
func liveStats(t *testing.T, cfg Config, alg engine.Algorithm) []mpi.RankStats {
	t.Helper()
	g := cfg.Grid
	bm, err := dist.NewBlockMap(cfg.N, cfg.N, g)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(cfg.N, cfg.N, 401)
	b := matrix.Random(cfg.N, cfg.N, 402)
	aT, bT := bm.Scatter(a), bm.Scatter(b)
	cT := make([]*matrix.Dense, g.Size())
	for r := range cT {
		cT[r] = matrix.New(bm.LocalRows(), bm.LocalCols())
	}
	spec := engine.Spec{
		Algorithm: alg,
		Opts: core.Options{
			N: cfg.N, Grid: g,
			BlockSize:           cfg.BlockSize,
			OuterBlockSize:      cfg.OuterBlockSize,
			Groups:              cfg.Groups,
			Broadcast:           cfg.Bcast,
			Segments:            cfg.Segments,
			Threads:             cfg.Threads,
			LocalStrassen:       cfg.LocalStrassen,
			StrassenCutoff:      cfg.StrassenCutoff,
			StrassenLevels:      cfg.StrassenLevels,
			StrassenInnerGroups: cfg.StrassenInnerGroups,
		},
		Levels: cfg.Levels,
	}
	stats, err := mpi.RunStats(g.Size(), func(c *mpi.Comm) {
		if e := engine.Run(mpi.AsComm(c), spec, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			panic(e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// While we have real data in hand, make sure the run was also correct:
	// parity of traffic on a wrong answer would prove nothing.
	want := matrix.New(cfg.N, cfg.N)
	core.Reference(want, a, b)
	if d := matrix.MaxAbsDiff(bm.Gather(cT), want); d > 1e-10 {
		t.Fatalf("live %s run off by %g", alg, d)
	}
	return stats
}

func TestLiveSimTrafficParity(t *testing.T) {
	g := topo.Grid{S: 4, T: 4}
	machine := hockney.Model{Alpha: 1e-5, Beta: 1e-9, Gamma: 1e-10}
	h22, err := topo.NewHier(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	h41, err := topo.NewHier(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		alg  engine.Algorithm
		cfg  Config
	}{
		{"summa_binomial", engine.SUMMA, Config{N: 16, Grid: g, BlockSize: 2, Machine: machine}},
		{"summa_vandegeijn", engine.SUMMA, Config{N: 16, Grid: g, BlockSize: 4, Bcast: sched.VanDeGeijn, Machine: machine}},
		// Chain with a segment count that does not divide the payload
		// exercises the shared integer segment split end to end.
		{"summa_chain_segments", engine.SUMMA, Config{N: 16, Grid: g, BlockSize: 2, Bcast: sched.Chain, Segments: 3, Machine: machine}},
		{"hsumma_g4", engine.HSUMMA, Config{N: 16, Grid: g, BlockSize: 2, OuterBlockSize: 4, Groups: h22, Machine: machine}},
		{"hsumma_skewed_vdg", engine.HSUMMA, Config{N: 16, Grid: g, BlockSize: 2, Groups: h41, Bcast: sched.VanDeGeijn, Machine: machine}},
		{"multilevel", engine.Multilevel, Config{N: 16, Grid: g, BlockSize: 2,
			Levels: []core.Level{{I: 2, J: 2, BlockSize: 4}}, Machine: machine}},
		{"cannon", engine.Cannon, Config{N: 16, Grid: g, Machine: machine}},
		{"fox", engine.Fox, Config{N: 16, Grid: g, Machine: machine}},
		{"fox_vandegeijn", engine.Fox, Config{N: 16, Grid: g, Bcast: sched.VanDeGeijn, Machine: machine}},
		// Strassen's quadrant staging + bottom SUMMA/HSUMMA: the p2p stage
		// and combine traffic must match message for message, byte for byte.
		{"strassen", engine.Strassen, Config{N: 32, Grid: g, BlockSize: 2, Machine: machine}},
		{"strassen_l2", engine.Strassen, Config{N: 32, Grid: g, BlockSize: 4, StrassenLevels: 2, Machine: machine}},
		{"strassen_hsumma_local", engine.Strassen, Config{N: 32, Grid: g, BlockSize: 2,
			StrassenInnerGroups: 2, LocalStrassen: true, StrassenCutoff: 8, Machine: machine}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			live := liveStats(t, c.cfg, c.alg)
			_, sim, err := RunStats(c.cfg, c.alg)
			if err != nil {
				t.Fatal(err)
			}
			if len(live) != len(sim) {
				t.Fatalf("rank counts differ: live %d, sim %d", len(live), len(sim))
			}
			for r := range live {
				if live[r].SentMessages != sim[r].SentMessages {
					t.Errorf("rank %d: live sent %d messages, sim %d", r, live[r].SentMessages, sim[r].SentMessages)
				}
				if live[r].SentBytes != sim[r].SentBytes {
					t.Errorf("rank %d: live sent %d bytes, sim %d", r, live[r].SentBytes, sim[r].SentBytes)
				}
			}
			if t.Failed() {
				t.Logf("live: %+v", live)
				t.Logf("sim : %+v", sim)
			}
		})
	}
}

// The aggregate invariant the paper states ("the amount of data sent is the
// same as in SUMMA") must hold identically in both execution modes.
func TestParityAcrossGroupCounts(t *testing.T) {
	g := topo.Grid{S: 4, T: 4}
	machine := hockney.Model{Alpha: 1e-5, Beta: 1e-9}
	for _, G := range topo.ValidGroupCounts(g) {
		G := G
		t.Run(fmt.Sprintf("G%d", G), func(t *testing.T) {
			h, err := topo.FactorGroups(g, G)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{N: 16, Grid: g, BlockSize: 2, Groups: h, Machine: machine}
			live := liveStats(t, cfg, engine.HSUMMA)
			_, sim, err := RunStats(cfg, engine.HSUMMA)
			if err != nil {
				t.Fatal(err)
			}
			for r := range live {
				if live[r].SentMessages != sim[r].SentMessages || live[r].SentBytes != sim[r].SentBytes {
					t.Fatalf("G=%d rank %d: live (%d msgs, %d B) != sim (%d msgs, %d B)", G, r,
						live[r].SentMessages, live[r].SentBytes, sim[r].SentMessages, sim[r].SentBytes)
				}
			}
		})
	}
}
