package simalg

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/hockney"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// The acceptance matrix for the rectangular generalisation: on tall,
// wide, fat-K and prime-ish (padding-exercising) shapes, every
// SUMMA-family algorithm must hold both parity invariants —
// goroutine-vs-event engine bit-identity and live-vs-sim per-rank
// traffic identity — while the square-only baselines reject with the
// shared ErrSquareOnly on every surface.

// rectShapes is the shape matrix: one representative per aspect class.
func rectShapes() map[string]matrix.Shape {
	return map[string]matrix.Shape{
		"tall":     {M: 192, N: 48, K: 96},
		"wide":     {M: 48, N: 192, K: 96},
		"fatk":     {M: 48, N: 48, K: 384},
		"skinnyk":  {M: 192, N: 192, K: 24},
		"primeish": {M: 97, N: 53, K: 61}, // nothing divides: the padding path
	}
}

// rectSpec builds a runnable spec for the algorithm on a 4×4 grid; block
// sizes are chosen to divide the divisible shapes and to exercise
// padding on the prime-ish one.
func rectSpec(t *testing.T, alg engine.Algorithm, sh matrix.Shape) engine.Spec {
	t.Helper()
	g := topo.Grid{S: 4, T: 4}
	opts := core.Options{Shape: sh, Grid: g, BlockSize: 6, Broadcast: sched.Binomial}
	spec := engine.Spec{Algorithm: alg, Opts: opts}
	switch alg {
	case engine.HSUMMA:
		h, err := topo.NewHier(g, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		spec.Opts.Groups = h
		spec.Opts.OuterBlockSize = 6
		spec.Opts.Broadcast = sched.VanDeGeijn
	case engine.Multilevel:
		spec.Opts.BlockSize = 3
		spec.Levels = []core.Level{{I: 2, J: 2, BlockSize: 6}}
	case engine.Cannon, engine.Fox:
		spec.Opts.BlockSize = 0
	case engine.Strassen:
		spec.Opts.BlockSize = 6 // rejected before block validation anyway
	}
	return spec
}

// TestEngineParityRectangular: goroutine vs event bit-identity over the
// rectangular shape matrix, with and without contention; square-only
// baselines rejected with ErrSquareOnly by both engines.
func TestEngineParityRectangular(t *testing.T) {
	pf := platform.BlueGenePCalibrated()
	for shapeName, sh := range rectShapes() {
		for _, alg := range engine.Algorithms() {
			for _, contention := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/contention=%t", shapeName, alg, contention)
				sh, alg, contention := sh, alg, contention
				t.Run(name, func(t *testing.T) {
					spec := rectSpec(t, alg, sh)
					vcfg := simnet.VConfig{Model: pf.Model}
					if contention {
						vcfg.Contention = simnet.ContentionFor(pf, spec.Opts.Grid.Size(), true)
					}
					if alg == engine.Cannon || alg == engine.Fox || alg == engine.Strassen {
						for _, ex := range []engine.Executor{engine.ExecutorGoroutine, engine.ExecutorEvent} {
							_, _, err := RunSpecOn(spec, vcfg, ex)
							if !errors.Is(err, matrix.ErrSquareOnly) {
								t.Fatalf("%s engine on %v: got %v, want ErrSquareOnly", ex, sh, err)
							}
						}
						return
					}
					gRes, gStats, err := RunSpecOn(spec, vcfg, engine.ExecutorGoroutine)
					if err != nil {
						t.Fatal(err)
					}
					eRes, eStats, err := RunSpecOn(spec, vcfg, engine.ExecutorEvent)
					if err != nil {
						t.Fatal(err)
					}
					if gRes != eRes {
						// Engine differs by construction; everything else
						// must be bit-identical.
						gr, er := gRes, eRes
						gr.Engine, er.Engine = "", ""
						if gr != er {
							t.Fatalf("results differ: goroutine %+v vs event %+v", gRes, eRes)
						}
					}
					for r := range gStats {
						if gStats[r] != eStats[r] {
							t.Fatalf("rank %d traffic: goroutine %+v vs event %+v", r, gStats[r], eStats[r])
						}
					}
				})
			}
		}
	}
}

// liveStatsRect executes the spec on the goroutine runtime with real
// rectangular data (padded exactly as the engine prescribes), verifies
// the product against the sequential reference, and returns the per-rank
// traffic counters.
func liveStatsRect(t *testing.T, spec engine.Spec) []mpi.RankStats {
	t.Helper()
	padded, err := spec.Padded()
	if err != nil {
		t.Fatal(err)
	}
	sh, es := spec.Shape(), padded.Opts.Shape
	g := padded.Opts.Grid
	bmA, err := dist.NewBlockMap(es.M, es.K, g)
	if err != nil {
		t.Fatal(err)
	}
	bmB, err := dist.NewBlockMap(es.K, es.N, g)
	if err != nil {
		t.Fatal(err)
	}
	bmC, err := dist.NewBlockMap(es.M, es.N, g)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(sh.M, sh.K, 501)
	b := matrix.Random(sh.K, sh.N, 502)
	aPad := matrix.New(es.M, es.K)
	aPad.View(0, 0, sh.M, sh.K).CopyFrom(a)
	bPad := matrix.New(es.K, es.N)
	bPad.View(0, 0, sh.K, sh.N).CopyFrom(b)
	aT, bT := bmA.Scatter(aPad), bmB.Scatter(bPad)
	cT := make([]*matrix.Dense, g.Size())
	for r := range cT {
		cT[r] = matrix.New(bmC.LocalRows(), bmC.LocalCols())
	}
	stats, err := mpi.RunStats(g.Size(), func(c *mpi.Comm) {
		if e := engine.Run(mpi.AsComm(c), padded, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			panic(e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Traffic parity on a wrong answer would prove nothing: check the
	// cropped product against the sequential reference.
	got := bmC.Gather(cT).View(0, 0, sh.M, sh.N)
	want := matrix.New(sh.M, sh.N)
	core.Reference(want, a, b)
	if d := matrix.MaxAbsDiff(got.Clone(), want); d > 1e-10 {
		t.Fatalf("live rect run off by %g (shape %v, padded %v)", d, sh, es)
	}
	return stats
}

// TestLiveSimTrafficParityRectangular: per-rank message and byte counts
// of a live rectangular run must match the simulated run bit-for-bit,
// across the shape matrix and the SUMMA-family algorithms.
func TestLiveSimTrafficParityRectangular(t *testing.T) {
	machine := hockney.Model{Alpha: 1e-5, Beta: 1e-9, Gamma: 1e-10}
	for shapeName, sh := range rectShapes() {
		for _, alg := range []engine.Algorithm{engine.SUMMA, engine.HSUMMA, engine.Multilevel} {
			name := fmt.Sprintf("%s/%s", shapeName, alg)
			sh, alg := sh, alg
			t.Run(name, func(t *testing.T) {
				spec := rectSpec(t, alg, sh)
				live := liveStatsRect(t, spec)
				_, sim, err := RunSpecOn(spec, simnet.VConfig{Model: machine}, engine.ExecutorAuto)
				if err != nil {
					t.Fatal(err)
				}
				if len(live) != len(sim) {
					t.Fatalf("rank counts differ: live %d, sim %d", len(live), len(sim))
				}
				for r := range live {
					if live[r].SentMessages != sim[r].SentMessages || live[r].SentBytes != sim[r].SentBytes {
						t.Fatalf("rank %d: live (%d msgs, %d B) != sim (%d msgs, %d B)", r,
							live[r].SentMessages, live[r].SentBytes, sim[r].SentMessages, sim[r].SentBytes)
					}
				}
			})
		}
	}
}
