package simalg

import (
	"math"
	"testing"

	"repro/internal/hockney"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/topo"
)

var machine = hockney.Model{Alpha: 1e-5, Beta: 1e-9, Gamma: 1e-10}

func mustHier(t *testing.T, g topo.Grid, G int) topo.Hier {
	t.Helper()
	h, err := topo.FactorGroups(g, G)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// On a square power-of-two grid with the binomial broadcast every rank
// finishes each broadcast round simultaneously, so the simulated SUMMA time
// must match the closed-form model exactly.
func TestSUMMAMatchesClosedFormBinomial(t *testing.T) {
	g := topo.Grid{S: 8, T: 8}
	cfg := Config{N: 512, Grid: g, BlockSize: 64, Bcast: sched.Binomial, Machine: machine}
	res, err := SUMMA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par := model.Params{N: 512, P: 64, B: 64, Machine: machine, Bcast: model.BinomialTree{}}
	want := model.SUMMA(par)
	if rel := math.Abs(res.Comm-want.Comm()) / want.Comm(); rel > 1e-9 {
		t.Fatalf("sim comm %g vs model %g (rel %g)", res.Comm, want.Comm(), rel)
	}
	if rel := math.Abs(res.Total-want.Total()) / want.Total(); rel > 1e-9 {
		t.Fatalf("sim total %g vs model %g (rel %g)", res.Total, want.Total(), rel)
	}
}

// HSUMMA simulation must agree with the closed form (binomial, square
// grids, square groups) — equation (3)–(5).
func TestHSUMMAMatchesClosedFormBinomial(t *testing.T) {
	g := topo.Grid{S: 8, T: 8}
	for _, G := range []int{1, 4, 16, 64} {
		cfg := Config{N: 512, Grid: g, BlockSize: 64, Groups: mustHier(t, g, G), Bcast: sched.Binomial, Machine: machine}
		res, err := HSUMMA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		par := model.Params{N: 512, P: 64, B: 64, Machine: machine, Bcast: model.BinomialTree{}}
		want := model.HSUMMA(par, float64(G))
		if rel := math.Abs(res.Comm-want.Comm()) / want.Comm(); rel > 1e-9 {
			t.Fatalf("G=%d: sim comm %g vs model %g (rel %g)", G, res.Comm, want.Comm(), rel)
		}
	}
}

// G=1 and G=p must reproduce the SUMMA simulation exactly — same phases,
// same schedules, same clocks.
func TestHSUMMADegeneratesToSUMMA(t *testing.T) {
	g := topo.Grid{S: 4, T: 8}
	for _, alg := range []sched.Algorithm{sched.Binomial, sched.VanDeGeijn} {
		cfg := Config{N: 256, Grid: g, BlockSize: 32, Bcast: alg, Machine: machine}
		su, err := SUMMA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, G := range []int{1, g.Size()} {
			hcfg := cfg
			hcfg.Groups = mustHier(t, g, G)
			hs, err := HSUMMA(hcfg)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(hs.Comm-su.Comm) > 1e-12*su.Comm || math.Abs(hs.Total-su.Total) > 1e-12*su.Total {
				t.Fatalf("%s G=%d: HSUMMA sim (%g,%g) != SUMMA sim (%g,%g)",
					alg, G, hs.Comm, hs.Total, su.Comm, su.Total)
			}
		}
	}
}

// The headline mechanism: on a latency-dominated platform, an intermediate
// G beats both endpoints.
func TestInteriorGWins(t *testing.T) {
	g := topo.Grid{S: 16, T: 16}
	lat := hockney.Model{Alpha: 1e-3, Beta: 1e-10, Gamma: 0}
	base := Config{N: 1024, Grid: g, BlockSize: 32, Bcast: sched.VanDeGeijn, Machine: lat}
	su, err := SUMMA(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Groups = mustHier(t, g, 16) // G = √p
	hs, err := HSUMMA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Comm >= su.Comm {
		t.Fatalf("interior G did not win: HSUMMA %g vs SUMMA %g", hs.Comm, su.Comm)
	}
}

// Compute time must be identical across algorithms and G (same flops).
func TestComputeInvariant(t *testing.T) {
	g := topo.Grid{S: 4, T: 4}
	base := Config{N: 256, Grid: g, BlockSize: 32, Machine: machine}
	su, _ := SUMMA(base)
	cfg := base
	cfg.Groups = mustHier(t, g, 4)
	hs, _ := HSUMMA(cfg)
	if su.Compute != hs.Compute {
		t.Fatalf("compute differs: %g vs %g", su.Compute, hs.Compute)
	}
	want := machine.Compute(2 * 256 * 256 * 256 / 16)
	if math.Abs(su.Compute-want) > 1e-15 {
		t.Fatalf("compute %g, want %g", su.Compute, want)
	}
}

// Total ≈ Comm + Compute when phases serialise (no overlap in the
// simulated algorithm, as in the paper's non-overlapped implementation).
func TestTotalDecomposition(t *testing.T) {
	g := topo.Grid{S: 8, T: 8}
	cfg := Config{N: 512, Grid: g, BlockSize: 64, Bcast: sched.Binomial, Machine: machine}
	res, _ := SUMMA(cfg)
	if math.Abs(res.Total-(res.Comm+res.Compute)) > 1e-9*res.Total {
		t.Fatalf("total %g != comm %g + compute %g", res.Total, res.Comm, res.Compute)
	}
}

func TestValidationErrors(t *testing.T) {
	g := topo.Grid{S: 4, T: 4}
	if _, err := SUMMA(Config{N: 0, Grid: g, BlockSize: 8, Machine: machine}); err == nil {
		t.Fatal("accepted n=0")
	}
	hb := Config{N: 256, Grid: g, BlockSize: 8, OuterBlockSize: 12, Groups: mustHier(t, g, 4), Machine: machine}
	if _, err := HSUMMA(hb); err == nil {
		t.Fatal("accepted B not multiple of b")
	}
	// Non-divisible problems are no longer rejected: the spec is padded to
	// the execution shape (the result the padded live run computes, then
	// crops). The padded shape is echoed on the result.
	res, err := SUMMA(Config{N: 100, Grid: g, BlockSize: 8, Machine: machine})
	if err != nil {
		t.Fatalf("n=100 on 4x4 should pad, got %v", err)
	}
	if res.Shape.K != 128 || res.Shape.M != 100 || res.Shape.N != 100 {
		t.Fatalf("unexpected padded shape %v", res.Shape)
	}
}

func TestCannonSquareOnly(t *testing.T) {
	if _, err := Cannon(Config{N: 64, Grid: topo.Grid{S: 2, T: 4}, BlockSize: 8, Machine: machine}); err == nil {
		t.Fatal("Cannon accepted non-square grid")
	}
}

// Cannon's communication per the classic analysis: two alignment phases
// plus 2(q−1) single-hop shift phases of (n/q)² elements each.
func TestCannonCommMagnitude(t *testing.T) {
	q, n := 8, 512
	cfg := Config{N: n, Grid: topo.Grid{S: q, T: q}, BlockSize: n / q, Machine: machine}
	res, err := Cannon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tile := float64(n / q)
	hop := machine.Alpha + tile*tile*machine.Beta
	want := (2 + 2*float64(q-1)) * hop
	if math.Abs(res.Comm-want) > 1e-9*want {
		t.Fatalf("cannon comm %g, want %g", res.Comm, want)
	}
}

// Contention must slow things down, never speed them up.
func TestContentionMonotone(t *testing.T) {
	g := topo.Grid{S: 8, T: 8}
	cfg := Config{N: 512, Grid: g, BlockSize: 64, Bcast: sched.VanDeGeijn, Machine: machine}
	free, _ := SUMMA(cfg)
	cfg.Contention = func(f int) float64 { return float64(f) }
	congested, _ := SUMMA(cfg)
	if congested.Comm <= free.Comm {
		t.Fatalf("contention did not slow comm: %g vs %g", congested.Comm, free.Comm)
	}
	if congested.Compute != free.Compute {
		t.Fatal("contention changed compute time")
	}
}

// A miniature of the paper's Figure 8 shape on a 16×16 grid: the G sweep
// has an interior minimum under Van de Geijn on a latency-heavy machine,
// and the endpoints equal SUMMA.
func TestGSweepUShape(t *testing.T) {
	g := topo.Grid{S: 16, T: 16}
	m := hockney.Model{Alpha: 1e-4, Beta: 1e-10}
	base := Config{N: 2048, Grid: g, BlockSize: 64, Bcast: sched.VanDeGeijn, Machine: m}
	su, err := SUMMA(base)
	if err != nil {
		t.Fatal(err)
	}
	bestG, bestComm := 1, math.Inf(1)
	for G := 1; G <= 256; G *= 2 {
		cfg := base
		cfg.Groups = mustHier(t, g, G)
		hs, err := HSUMMA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if hs.Comm < bestComm {
			bestG, bestComm = G, hs.Comm
		}
	}
	if bestG <= 1 || bestG >= 256 {
		t.Fatalf("minimum at boundary G=%d — no U shape", bestG)
	}
	if bestComm >= su.Comm {
		t.Fatal("best HSUMMA does not beat SUMMA")
	}
}

// The real BG/P preset at a reduced scale still shows the win with the
// paper's b=B blocks.
func TestBGPPresetSmallScale(t *testing.T) {
	pf := platform.BlueGeneP()
	g := topo.Grid{S: 32, T: 32} // 1024 "cores"
	// b chosen so the paper's minimum condition α/β > 2nb/p holds at this
	// reduced scale: 2·8192·64/1024 = 1024 < 3000.
	base := Config{N: 8192, Grid: g, BlockSize: 64, Bcast: sched.VanDeGeijn, Machine: pf.Model}
	su, err := SUMMA(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Groups = mustHier(t, g, 32)
	hs, err := HSUMMA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Comm >= su.Comm {
		t.Fatalf("no win on scaled BG/P: HSUMMA %g vs SUMMA %g", hs.Comm, su.Comm)
	}
}
