package simalg

import (
	"math"
	"testing"

	"repro/internal/hockney"
	"repro/internal/sched"
	"repro/internal/topo"
)

// Overlap can only help, and is bounded below by both the pure-comm and
// pure-compute timelines.
func TestOverlapBounds(t *testing.T) {
	g := topo.Grid{S: 8, T: 8}
	base := Config{N: 1024, Grid: g, BlockSize: 64, Bcast: sched.VanDeGeijn,
		Machine: hockney.Model{Alpha: 1e-4, Beta: 1e-9, Gamma: 2e-10}}
	plain, err := SUMMA(base)
	if err != nil {
		t.Fatal(err)
	}
	ov := base
	ov.Overlap = true
	lapped, err := SUMMA(ov)
	if err != nil {
		t.Fatal(err)
	}
	if lapped.Total > plain.Total+1e-12 {
		t.Fatalf("overlap made things slower: %g vs %g", lapped.Total, plain.Total)
	}
	if lapped.Total < lapped.Compute-1e-12 {
		t.Fatalf("overlap total %g below pure compute %g", lapped.Total, lapped.Compute)
	}
	if lapped.Total < plain.Comm-1e-12 {
		t.Fatalf("overlap total %g below pure comm %g", lapped.Total, plain.Comm)
	}
	// With comparable comm and compute shares, overlap should give a
	// real improvement, approaching max(comm, compute).
	if plain.Total-lapped.Total < 0.1*math.Min(plain.Comm, plain.Compute) {
		t.Fatalf("overlap saved almost nothing: %g -> %g (comm %g, compute %g)",
			plain.Total, lapped.Total, plain.Comm, plain.Compute)
	}
}

// In the compute-dominated regime, overlapped total approaches compute +
// one communication step (pipeline fill).
func TestOverlapComputeDominated(t *testing.T) {
	g := topo.Grid{S: 4, T: 4}
	cfg := Config{N: 512, Grid: g, BlockSize: 64, Bcast: sched.Binomial,
		Machine: hockney.Model{Alpha: 1e-7, Beta: 1e-12, Gamma: 1e-9},
		Overlap: true}
	res, err := SUMMA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total > res.Compute*1.05 {
		t.Fatalf("compute-dominated overlap total %g far above compute %g", res.Total, res.Compute)
	}
}

// Overlap applies to HSUMMA too, and never reports a smaller comm time
// (comm accounting is independent of overlap).
func TestOverlapHSUMMA(t *testing.T) {
	g := topo.Grid{S: 8, T: 8}
	h, err := topo.FactorGroups(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{N: 1024, Grid: g, BlockSize: 64, Groups: h, Bcast: sched.VanDeGeijn,
		Machine: hockney.Model{Alpha: 1e-4, Beta: 1e-9, Gamma: 2e-10}}
	plain, err := HSUMMA(base)
	if err != nil {
		t.Fatal(err)
	}
	ov := base
	ov.Overlap = true
	lapped, err := HSUMMA(ov)
	if err != nil {
		t.Fatal(err)
	}
	if lapped.Total > plain.Total+1e-12 {
		t.Fatalf("HSUMMA overlap slower: %g vs %g", lapped.Total, plain.Total)
	}
	if math.Abs(lapped.Comm-plain.Comm) > 1e-12*plain.Comm {
		t.Fatalf("overlap changed comm accounting: %g vs %g", lapped.Comm, plain.Comm)
	}
}
