// Package simalg replays the step structure of the distributed algorithms
// (SUMMA, HSUMMA, Cannon) on the discrete-event simulator — the timing path
// that regenerates the paper's figures at BlueGene/P scale. The phase
// decomposition mirrors internal/core exactly: the same pivot owners, the
// same communicators (as member lists), the same broadcast schedules, the
// same per-step DGEMM volume; only the matrix payloads are replaced by
// their sizes.
package simalg

import (
	"fmt"

	"repro/internal/hockney"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// Config describes one simulated run.
type Config struct {
	N              int
	Grid           topo.Grid
	BlockSize      int       // b
	OuterBlockSize int       // B; 0 means B = b
	Groups         topo.Hier // HSUMMA group arrangement
	Bcast          sched.Algorithm
	Segments       int
	Machine        hockney.Model
	// Contention is the optional link-sharing model (nil = none, the
	// paper's assumption).
	Contention simnet.ContentionFunc
	// LinkCost optionally scales each transfer's bandwidth term by the
	// physical route length (e.g. torus hop distance) — the mapping-
	// sensitivity ablation behind the paper's Figure 8 "zigzags".
	LinkCost simnet.LinkCostFunc
	// Overlap enables communication/computation overlap (double
	// buffering with a dedicated communication engine, as on the BG/P
	// DMA): broadcasts of step k+1 proceed while step k's local update
	// is still computing. The paper obtains its results *without*
	// overlap and names it as a further opportunity (§VI); this flag is
	// the corresponding ablation.
	Overlap bool
}

func (c Config) withDefaults() Config {
	if c.Bcast == "" {
		c.Bcast = sched.Binomial
	}
	if c.Segments <= 0 {
		c.Segments = 1
	}
	if c.OuterBlockSize == 0 {
		c.OuterBlockSize = c.BlockSize
	}
	return c
}

func (c Config) validate(hier bool) error {
	g := c.Grid
	if c.N <= 0 || c.BlockSize <= 0 || g.S <= 0 || g.T <= 0 {
		return fmt.Errorf("simalg: invalid config n=%d b=%d grid=%v", c.N, c.BlockSize, c.Grid)
	}
	if c.N%g.S != 0 || c.N%g.T != 0 {
		return fmt.Errorf("simalg: n=%d not divisible by grid %v", c.N, g)
	}
	if (c.N/g.S)%c.BlockSize != 0 || (c.N/g.T)%c.BlockSize != 0 {
		return fmt.Errorf("simalg: block %d does not divide tile", c.BlockSize)
	}
	if hier {
		B := c.OuterBlockSize
		if B%c.BlockSize != 0 || (c.N/g.S)%B != 0 || (c.N/g.T)%B != 0 {
			return fmt.Errorf("simalg: outer block %d invalid for tile %dx%d (b=%d)",
				B, c.N/g.S, c.N/g.T, c.BlockSize)
		}
		if c.Groups.Grid != g || g.S%c.Groups.I != 0 || g.T%c.Groups.J != 0 {
			return fmt.Errorf("simalg: group arrangement %+v invalid for grid %v", c.Groups, g)
		}
	}
	return nil
}

// Result reports simulated times the way the paper does.
type Result struct {
	Total   float64 // execution time: communication + computation (s)
	Comm    float64 // max per-rank time inside communication (s)
	Compute float64 // per-rank computation time 2n³/p·γ (s)
}

// schedCache avoids regenerating identical broadcast schedules across the
// thousands of steps of one simulation.
type schedCache map[schedKey]*sched.Schedule

type schedKey struct {
	alg      sched.Algorithm
	p, root  int
	segments int
}

func (sc schedCache) get(alg sched.Algorithm, p, root, segments int) *sched.Schedule {
	k := schedKey{alg, p, root, segments}
	if s, ok := sc[k]; ok {
		return s
	}
	s, err := sched.NewBroadcast(alg, p, root, segments)
	if err != nil {
		panic(fmt.Sprintf("simalg: %v", err))
	}
	sc[k] = s
	return s
}

// SUMMA simulates the flat algorithm: n/b steps of (row broadcasts ‖ …),
// (column broadcasts ‖ …), local update.
func SUMMA(cfg Config) (Result, error) {
	c := cfg.withDefaults()
	if err := c.validate(false); err != nil {
		return Result{}, err
	}
	g := c.Grid
	n, b := c.N, c.BlockSize
	localRows, localCols := n/g.S, n/g.T
	sim := simnet.New(g.Size(), c.Machine)
	sim.SetContention(c.Contention)
	sim.SetLinkCost(c.LinkCost)
	cache := schedCache{}

	aBytes := float64(localRows * b) // payloads in elements: the paper's β convention
	bBytes := float64(b * localCols)
	flopsPerStep := 2 * float64(localRows) * float64(localCols) * float64(b)

	rowMembers := make([][]int, g.S)
	for i := range rowMembers {
		rowMembers[i] = g.RowRanks(i)
	}
	colMembers := make([][]int, g.T)
	for j := range colMembers {
		colMembers[j] = g.ColRanks(j)
	}

	aPhase := make([]simnet.Collective, g.S)
	bPhase := make([]simnet.Collective, g.T)
	oc := newOverlapClock(c, sim)
	for k := 0; k < n/b; k++ {
		lo := k * b
		ownerCol := lo / localCols
		ownerRow := lo / localRows
		rowSched := cache.get(c.Bcast, g.T, ownerCol, c.Segments)
		colSched := cache.get(c.Bcast, g.S, ownerRow, c.Segments)
		for i := 0; i < g.S; i++ {
			aPhase[i] = simnet.Collective{Sched: rowSched, Members: rowMembers[i], PayloadBytes: aBytes}
		}
		sim.ExecPhase(aPhase)
		for j := 0; j < g.T; j++ {
			bPhase[j] = simnet.Collective{Sched: colSched, Members: colMembers[j], PayloadBytes: bBytes}
		}
		sim.ExecPhase(bPhase)
		oc.compute(flopsPerStep)
	}
	return oc.result(), nil
}

// HSUMMA simulates the hierarchical algorithm: n/B outer steps, each with
// inter-group broadcasts of the outer panels followed by B/b inner steps of
// intra-group broadcasts and local updates — the same phase structure as
// core.HSUMMA.
func HSUMMA(cfg Config) (Result, error) {
	c := cfg.withDefaults()
	if err := c.validate(true); err != nil {
		return Result{}, err
	}
	g := c.Grid
	h := c.Groups
	n, b, B := c.N, c.BlockSize, c.OuterBlockSize
	localRows, localCols := n/g.S, n/g.T
	innerS, innerT := h.InnerS(), h.InnerT()
	sim := simnet.New(g.Size(), c.Machine)
	sim.SetContention(c.Contention)
	sim.SetLinkCost(c.LinkCost)
	cache := schedCache{}

	aOuterBytes := float64(localRows * B) // payloads in elements, as in SUMMA above
	bOuterBytes := float64(B * localCols)
	aBytes := float64(localRows * b)
	bBytes := float64(b * localCols)
	flopsPerInner := 2 * float64(localRows) * float64(localCols) * float64(b)

	oc := newOverlapClock(c, sim)
	for ko := 0; ko < n/B; ko++ {
		lo := ko * B
		ownerGridCol := lo / localCols
		ownerGridRow := lo / localRows
		yo, jjo := ownerGridCol/innerT, ownerGridCol%innerT
		xo, iio := ownerGridRow/innerS, ownerGridRow%innerS

		// Inter-group horizontal broadcast of A's outer panel: one
		// collective per global grid row, across the J group columns,
		// members pinned to inner column jjo.
		if h.J > 1 {
			aOuter := make([]simnet.Collective, 0, g.S)
			s := cache.get(c.Bcast, h.J, yo, c.Segments)
			for x := 0; x < h.I; x++ {
				for ii := 0; ii < innerS; ii++ {
					members := make([]int, h.J)
					for z := 0; z < h.J; z++ {
						members[z] = h.Compose(x, z, ii, jjo)
					}
					aOuter = append(aOuter, simnet.Collective{Sched: s, Members: members, PayloadBytes: aOuterBytes})
				}
			}
			sim.ExecPhase(aOuter)
		}
		// Inter-group vertical broadcast of B's outer panel.
		if h.I > 1 {
			bOuter := make([]simnet.Collective, 0, g.T)
			s := cache.get(c.Bcast, h.I, xo, c.Segments)
			for y := 0; y < h.J; y++ {
				for jj := 0; jj < innerT; jj++ {
					members := make([]int, h.I)
					for z := 0; z < h.I; z++ {
						members[z] = h.Compose(z, y, iio, jj)
					}
					bOuter = append(bOuter, simnet.Collective{Sched: s, Members: members, PayloadBytes: bOuterBytes})
				}
			}
			sim.ExecPhase(bOuter)
		}

		for ki := 0; ki < B/b; ki++ {
			if innerT > 1 {
				inner := make([]simnet.Collective, 0, g.Size()/innerT)
				s := cache.get(c.Bcast, innerT, jjo, c.Segments)
				for x := 0; x < h.I; x++ {
					for y := 0; y < h.J; y++ {
						for ii := 0; ii < innerS; ii++ {
							members := make([]int, innerT)
							for jj := 0; jj < innerT; jj++ {
								members[jj] = h.Compose(x, y, ii, jj)
							}
							inner = append(inner, simnet.Collective{Sched: s, Members: members, PayloadBytes: aBytes})
						}
					}
				}
				sim.ExecPhase(inner)
			}
			if innerS > 1 {
				inner := make([]simnet.Collective, 0, g.Size()/innerS)
				s := cache.get(c.Bcast, innerS, iio, c.Segments)
				for x := 0; x < h.I; x++ {
					for y := 0; y < h.J; y++ {
						for jj := 0; jj < innerT; jj++ {
							members := make([]int, innerS)
							for ii := 0; ii < innerS; ii++ {
								members[ii] = h.Compose(x, y, ii, jj)
							}
							inner = append(inner, simnet.Collective{Sched: s, Members: members, PayloadBytes: bBytes})
						}
					}
				}
				sim.ExecPhase(inner)
			}
			oc.compute(flopsPerInner)
		}
	}
	return oc.result(), nil
}

// Cannon simulates Cannon's algorithm on a square q×q grid: the initial
// alignment shifts followed by q steps of (update, rotate A left, rotate B
// up). Used as an extra baseline in the comparison benches.
func Cannon(cfg Config) (Result, error) {
	c := cfg.withDefaults()
	g := c.Grid
	if g.S != g.T {
		return Result{}, fmt.Errorf("simalg: Cannon needs a square grid, got %v", g)
	}
	if c.N%g.S != 0 {
		return Result{}, fmt.Errorf("simalg: n=%d not divisible by q=%d", c.N, g.S)
	}
	q := g.S
	tile := c.N / q
	tileBytes := float64(tile * tile) // elements
	flopsPerStep := 2 * float64(tile) * float64(tile) * float64(tile)
	sim := simnet.New(g.Size(), c.Machine)
	sim.SetContention(c.Contention)
	sim.SetLinkCost(c.LinkCost)
	mod := func(v int) int { return ((v % q) + q) % q }

	// Initial alignment: row i of A shifts left by i, column j of B up by j.
	var align []simnet.PairTransfer
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			if i > 0 {
				align = append(align, simnet.PairTransfer{Src: g.Rank(i, j), Dst: g.Rank(i, mod(j-i)), Bytes: tileBytes})
			}
		}
	}
	sim.ExecTransfers(align)
	align = align[:0]
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			if j > 0 {
				align = append(align, simnet.PairTransfer{Src: g.Rank(i, j), Dst: g.Rank(mod(i-j), j), Bytes: tileBytes})
			}
		}
	}
	sim.ExecTransfers(align)

	shiftA := make([]simnet.PairTransfer, 0, g.Size())
	shiftB := make([]simnet.PairTransfer, 0, g.Size())
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			shiftA = append(shiftA, simnet.PairTransfer{Src: g.Rank(i, j), Dst: g.Rank(i, mod(j-1)), Bytes: tileBytes})
			shiftB = append(shiftB, simnet.PairTransfer{Src: g.Rank(i, j), Dst: g.Rank(mod(i-1), j), Bytes: tileBytes})
		}
	}
	for step := 0; step < q; step++ {
		sim.ComputeAll(flopsPerStep)
		if step == q-1 {
			break
		}
		sim.ExecTransfers(shiftA)
		sim.ExecTransfers(shiftB)
	}
	return result(sim, c), nil
}

func result(sim *simnet.Sim, c Config) Result {
	n := float64(c.N)
	p := float64(c.Grid.Size())
	return Result{
		Total:   sim.MaxClock(),
		Comm:    sim.MaxCommTime(),
		Compute: c.Machine.Compute(2 * n * n * n / p),
	}
}
