// Package simalg runs the distributed algorithms on the discrete-event
// simulator — the timing path that regenerates the paper's figures at
// BlueGene/P scale. Since the Comm-interface refactor it contains no
// algorithm logic of its own: it is a thin adapter that executes the
// *same* implementations from internal/core and internal/baseline (via
// internal/engine) on the simnet virtual communicator, where wire buffers
// carry only element counts and local updates advance a Hockney compute
// clock. A simulated run therefore performs — by construction, not by
// mirroring — exactly the communication pattern of a live run, with
// identical per-rank message and byte counts (asserted by parity_test.go).
package simalg

import (
	"sync"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/evsim"
	"repro/internal/hockney"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// Config describes one simulated run.
type Config struct {
	// Shape is the global GEMM shape C (M×N) += A (M×K)·B (K×N); the zero
	// value defers to N, the square shorthand.
	Shape          matrix.Shape
	N              int
	Grid           topo.Grid
	BlockSize      int       // b
	OuterBlockSize int       // B; 0 means B = b
	Groups         topo.Hier // HSUMMA group arrangement
	// Levels configures Multilevel (outermost first); BlockSize is the
	// innermost panel width.
	Levels   []core.Level
	Bcast    sched.Algorithm
	Segments int
	// Threads is the per-rank thread budget for the local multiply.
	Threads int
	// LocalStrassen selects the sub-cubic rank-local kernel (with
	// StrassenCutoff) for any algorithm; StrassenLevels and
	// StrassenInnerGroups configure the distributed Strassen recursion
	// (see core.Options).
	LocalStrassen       bool
	StrassenCutoff      int
	StrassenLevels      int
	StrassenInnerGroups int
	Machine             hockney.Model
	// Contention is the optional link-sharing model (nil = none, the
	// paper's assumption). It is applied per collective round and per
	// point-to-point transfer.
	Contention simnet.ContentionFunc
	// LinkCost optionally scales each transfer's bandwidth term by the
	// physical route length (e.g. torus hop distance) — the mapping-
	// sensitivity ablation behind the paper's Figure 8 "zigzags".
	LinkCost simnet.LinkCostFunc
	// Overlap enables communication/computation overlap (double
	// buffering with a dedicated communication engine, as on the BG/P
	// DMA): broadcasts of step k+1 proceed while step k's local update
	// is still computing. The paper obtains its results *without*
	// overlap and names it as a further opportunity (§VI); this flag is
	// the corresponding ablation.
	Overlap bool
	// Executor selects the virtual execution engine (goroutine | event |
	// auto); empty means auto. Engines are bit-identical — the choice
	// only affects host wall time.
	Executor engine.Executor
}

// Result reports simulated times the way the paper does.
type Result struct {
	Total   float64 // execution time: communication + computation (s)
	Comm    float64 // max per-rank time inside communication (s)
	Compute float64 // per-rank computation time 2MNK/p·γ (s)
	// Engine is the virtual execution engine that produced the result
	// (what "auto" resolved to). Engines are bit-identical; this is
	// recorded so plans and reports can say which one did the work.
	Engine engine.Executor
	// Shape is the execution shape actually simulated — the requested
	// shape rounded up to the algorithm's divisibility constraints (see
	// engine.Spec.PaddedShape), identical to what a live run executes.
	Shape matrix.Shape
}

// SUMMA simulates the flat algorithm.
func SUMMA(cfg Config) (Result, error) {
	res, _, err := RunStats(cfg, engine.SUMMA)
	return res, err
}

// HSUMMA simulates the paper's hierarchical algorithm with cfg.Groups.
func HSUMMA(cfg Config) (Result, error) {
	res, _, err := RunStats(cfg, engine.HSUMMA)
	return res, err
}

// Multilevel simulates the multilevel generalisation with cfg.Levels.
func Multilevel(cfg Config) (Result, error) {
	res, _, err := RunStats(cfg, engine.Multilevel)
	return res, err
}

// Cannon simulates Cannon's algorithm on a square q×q grid.
func Cannon(cfg Config) (Result, error) {
	res, _, err := RunStats(cfg, engine.Cannon)
	return res, err
}

// Fox simulates Fox's broadcast-multiply-roll algorithm.
func Fox(cfg Config) (Result, error) {
	res, _, err := RunStats(cfg, engine.Fox)
	return res, err
}

// Strassen simulates the distributed Strassen quadrant recursion.
func Strassen(cfg Config) (Result, error) {
	res, _, err := RunStats(cfg, engine.Strassen)
	return res, err
}

// RunStats executes the given algorithm on the virtual communicator and
// returns the simulated times plus the per-rank traffic counters — the
// quantities the live runtime reports through mpi.RunStats, enabling
// live-vs-simulated parity checks.
func RunStats(cfg Config, alg engine.Algorithm) (Result, []simnet.VRankStats, error) {
	spec := engine.Spec{
		Algorithm: alg,
		Opts: core.Options{
			Shape: cfg.Shape, N: cfg.N, Grid: cfg.Grid,
			BlockSize:           cfg.BlockSize,
			OuterBlockSize:      cfg.OuterBlockSize,
			Groups:              cfg.Groups,
			Broadcast:           cfg.Bcast,
			Segments:            cfg.Segments,
			Threads:             cfg.Threads,
			LocalStrassen:       cfg.LocalStrassen,
			StrassenCutoff:      cfg.StrassenCutoff,
			StrassenLevels:      cfg.StrassenLevels,
			StrassenInnerGroups: cfg.StrassenInnerGroups,
		},
		Levels: cfg.Levels,
	}
	return RunSpecOn(spec, simnet.VConfig{
		Model:      cfg.Machine,
		Contention: cfg.Contention,
		LinkCost:   cfg.LinkCost,
		Overlap:    cfg.Overlap,
	}, cfg.Executor)
}

// RunSpec executes a fully resolved engine spec — the same value the live
// path hands to engine.Run — on the virtual communicator under the given
// virtual-world configuration, selecting the execution engine
// automatically (event for collective-only specs, goroutines otherwise).
func RunSpec(spec engine.Spec, vcfg simnet.VConfig) (Result, []simnet.VRankStats, error) {
	return RunSpecOn(spec, vcfg, engine.ExecutorAuto)
}

// virtualWorld is what the two execution engines have in common: run the
// rank programs, then report times and traffic.
type virtualWorld interface {
	Total() float64
	MaxCommTime() float64
	Stats() []simnet.VRankStats
}

// RunSpecOn is RunSpec with an explicit executor selection (goroutine |
// event | auto). The engines are bit-identical in every output — virtual
// times, per-rank communication-time breakdowns, traffic counters — which
// the engine parity tests in this package assert; they differ only in
// host wall time.
func RunSpecOn(spec engine.Spec, vcfg simnet.VConfig, ex engine.Executor) (Result, []simnet.VRankStats, error) {
	resolved, err := engine.ResolveExecutor(ex, spec.Algorithm, vcfg.Overlap)
	if err != nil {
		return Result{}, nil, err
	}
	// Pad to the algorithm's divisibility constraints (idempotent), the
	// same execution shape the live path runs — the parity invariant.
	spec, err = spec.Padded()
	if err != nil {
		return Result{}, nil, err
	}
	sh := spec.Opts.Shape
	g := spec.Opts.Grid
	bmA, err := dist.NewBlockMap(sh.M, sh.K, g)
	if err != nil {
		return Result{}, nil, err
	}
	bmB, err := dist.NewBlockMap(sh.K, sh.N, g)
	if err != nil {
		return Result{}, nil, err
	}
	bmC, err := dist.NewBlockMap(sh.M, sh.N, g)
	if err != nil {
		return Result{}, nil, err
	}
	var mu sync.Mutex
	var algErr error
	rank := func(c comm.Comm) {
		// Shape-only tiles, one per operand: the virtual transport never
		// touches element storage, so a 16384-rank simulation allocates
		// only headers.
		aLoc := c.NewTile(bmA.LocalRows(), bmA.LocalCols())
		bLoc := c.NewTile(bmB.LocalRows(), bmB.LocalCols())
		cLoc := c.NewTile(bmC.LocalRows(), bmC.LocalCols())
		if e := engine.Run(c, spec, aLoc, bLoc, cLoc); e != nil {
			mu.Lock()
			if algErr == nil {
				algErr = e
			}
			mu.Unlock()
		}
	}
	var w virtualWorld
	switch resolved {
	case engine.ExecutorEvent:
		ew := evsim.NewWorld(g.Size(), vcfg)
		err = ew.Run(rank)
		w = ew
	default:
		gw := simnet.NewVWorld(g.Size(), vcfg)
		err = gw.Run(func(c *simnet.VComm) { rank(c) })
		w = gw
	}
	if err != nil {
		return Result{}, nil, err
	}
	if algErr != nil {
		return Result{}, nil, algErr
	}
	p := float64(g.Size())
	res := Result{
		Total: w.Total(),
		Comm:  w.MaxCommTime(),
		// Intra-rank threads shorten the local multiplies by the shared
		// efficiency curve; Speedup(1) is exactly 1, preserving serial
		// results bitwise.
		Compute: vcfg.Model.Compute(sh.Flops() / p / hockney.Speedup(spec.Opts.Threads)),
		Engine:  resolved,
		Shape:   sh,
	}
	return res, w.Stats(), nil
}
