package simalg

import "repro/internal/simnet"

// overlapClock tracks per-rank computation completion separately from the
// simulator's communication clocks when Config.Overlap is set.
//
// Without overlap (the paper's implementation), compute advances the
// simulator clocks directly, so the next step's broadcasts wait for the
// local update — communication and computation strictly alternate.
//
// With overlap, the communication engine runs free (broadcasts of step k+1
// start as soon as step k's broadcasts finish on that rank) while the
// update of step k executes on the compute clock:
//
//	computeDone[r] = max(commDone_k[r], computeDone[r]) + T_compute
//
// which models double buffering with a dedicated DMA/communication thread.
// The run's total time is then the later of the two timelines.
type overlapClock struct {
	cfg         Config
	sim         *simnet.Sim
	computeDone []float64
}

func newOverlapClock(cfg Config, sim *simnet.Sim) *overlapClock {
	oc := &overlapClock{cfg: cfg, sim: sim}
	if cfg.Overlap {
		oc.computeDone = make([]float64, sim.Size())
	}
	return oc
}

// compute advances the per-rank computation state by flops operations,
// either on the shared clocks (no overlap) or on the dedicated compute
// timeline.
func (oc *overlapClock) compute(flops float64) {
	if !oc.cfg.Overlap {
		oc.sim.ComputeAll(flops)
		return
	}
	dt := oc.cfg.Machine.Compute(flops)
	for r := range oc.computeDone {
		start := oc.computeDone[r]
		if clk := oc.sim.Clock(r); clk > start {
			start = clk
		}
		oc.computeDone[r] = start + dt
	}
}

// result assembles the Result, taking the later of the communication and
// computation timelines as the total in overlap mode.
func (oc *overlapClock) result() Result {
	res := result(oc.sim, oc.cfg)
	if oc.cfg.Overlap {
		total := oc.sim.MaxClock()
		for _, cd := range oc.computeDone {
			if cd > total {
				total = cd
			}
		}
		res.Total = total
	}
	return res
}
