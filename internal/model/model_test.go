package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hockney"
	"repro/internal/platform"
	"repro/internal/sched"
)

func grid5000Params() Params {
	return Params{N: 8192, P: 128, B: 64, Machine: platform.Grid5000().Model, Bcast: VanDeGeijn{}}
}

func bgpParams() Params {
	return Params{N: 65536, P: 16384, B: 256, Machine: platform.BlueGeneP().Model, Bcast: VanDeGeijn{}}
}

func exascaleParams() Params {
	return Params{N: 1 << 22, P: 1 << 20, B: 256, Machine: platform.Exascale().Model, Bcast: VanDeGeijn{}}
}

// The degeneracy identity of Section IV: T_HS(G=1) = T_HS(G=p) = T_S.
func TestHSUMMADegeneratesToSUMMA(t *testing.T) {
	for _, bc := range []Broadcast{BinomialTree{}, VanDeGeijn{}, FlatTree{}} {
		par := Params{N: 4096, P: 1024, B: 64, Machine: hockney.Model{Alpha: 1e-5, Beta: 1e-9}, Bcast: bc}
		s := SUMMA(par).Comm()
		h1 := HSUMMA(par, 1).Comm()
		hp := HSUMMA(par, float64(par.P)).Comm()
		if math.Abs(s-h1) > 1e-12*s || math.Abs(s-hp) > 1e-12*s {
			t.Fatalf("%s: T_S=%g T_HS(1)=%g T_HS(p)=%g", bc.Name(), s, h1, hp)
		}
	}
}

// Equation (9): ∂T_HS/∂G = 0 at G = √p for the Van de Geijn model.
func TestStationaryPointAtSqrtP(t *testing.T) {
	par := bgpParams()
	sq := math.Sqrt(float64(par.P))
	d := DerivativeG(par, sq)
	// Scale: compare against the derivative away from the extremum.
	dRef := math.Abs(DerivativeG(par, sq/4)) + math.Abs(DerivativeG(par, sq*4))
	if math.Abs(d) > 1e-3*dRef {
		t.Fatalf("derivative at √p = %g, reference magnitude %g", d, dRef)
	}
}

// Equations (10)/(11) with the paper's own platform numbers: both Grid'5000
// (α/β = 1e5 ≫ 2nb/p = 8192) and BG/P (3000 > 2048) satisfy the interior-
// minimum condition; the interior minimum must beat the endpoints.
func TestMinimumConditionOnPaperPlatforms(t *testing.T) {
	for _, par := range []Params{grid5000Params(), bgpParams(), exascaleParams()} {
		if !MinimumAtSqrtP(par) {
			t.Fatalf("platform %v should satisfy the minimum condition", par.Machine)
		}
		sq := math.Sqrt(float64(par.P))
		interior := HSUMMA(par, sq).Comm()
		edge := SUMMA(par).Comm()
		if interior >= edge {
			t.Fatalf("interior minimum %g not below endpoint %g", interior, edge)
		}
	}
}

// When the condition flips (huge bandwidth cost, tiny latency), G=√p must
// be a maximum: endpoints win.
func TestMaximumWhenConditionFails(t *testing.T) {
	par := Params{N: 65536, P: 256, B: 256,
		Machine: hockney.Model{Alpha: 1e-9, Beta: 1e-6}, Bcast: VanDeGeijn{}}
	if MinimumAtSqrtP(par) {
		t.Fatal("condition should fail for latency-free machine")
	}
	sq := math.Sqrt(float64(par.P))
	interior := HSUMMA(par, sq).Comm()
	edge := SUMMA(par).Comm()
	if interior <= edge {
		t.Fatalf("interior %g should exceed endpoint %g when condition fails", interior, edge)
	}
}

// The closed forms of Tables I and II must agree with the factors derived
// from the executable schedules (powers of two; vdg within the rounding of
// its scatter phase).
func TestClosedFormsMatchSchedules(t *testing.T) {
	binSched := NewFromSchedule(sched.Binomial, 1)
	vdgSched := NewFromSchedule(sched.VanDeGeijn, 1)
	for _, p := range []float64{2, 4, 8, 16, 64, 128} {
		if l, ls := (BinomialTree{}).Latency(p), binSched.Latency(p); math.Abs(l-ls) > 1e-9 {
			t.Fatalf("binomial L(%g): closed %g sched %g", p, l, ls)
		}
		if w, ws := (BinomialTree{}).Bandwidth(p), binSched.Bandwidth(p); math.Abs(w-ws) > 1e-9 {
			t.Fatalf("binomial W(%g): closed %g sched %g", p, w, ws)
		}
		if l, ls := (VanDeGeijn{}).Latency(p), vdgSched.Latency(p); math.Abs(l-ls) > 0.02*l {
			t.Fatalf("vdg L(%g): closed %g sched %g", p, l, ls)
		}
		if w, ws := (VanDeGeijn{}).Bandwidth(p), vdgSched.Bandwidth(p); math.Abs(w-ws) > 0.05*w {
			t.Fatalf("vdg W(%g): closed %g sched %g", p, w, ws)
		}
	}
}

func TestFromScheduleP1IsZero(t *testing.T) {
	m := NewFromSchedule(sched.Binomial, 1)
	if m.Latency(1) != 0 || m.Bandwidth(1) != 0 {
		t.Fatal("L(1) and W(1) must be 0 (paper's boundary condition)")
	}
}

// Optimal-G search over the BG/P configuration must land in the interior,
// and the paper's reported optimum (G = 512 on 16384 cores) must be within
// a factor ~4 of our model's optimum (the model is congestion-free, the
// machine was not — the paper itself reports the same kind of offset).
func TestOptimalGOnBGP(t *testing.T) {
	par := bgpParams()
	var candidates []int
	for g := 1; g <= par.P; g *= 2 {
		candidates = append(candidates, g)
	}
	bestG, best := OptimalG(par, candidates)
	if bestG <= 1 || bestG >= par.P {
		t.Fatalf("optimum G=%d not interior", bestG)
	}
	if best.Comm() >= SUMMA(par).Comm() {
		t.Fatal("optimum does not beat SUMMA")
	}
	if bestG < 128 || bestG > 4096 {
		t.Fatalf("optimum G=%d implausibly far from paper's 512 / √p=128", bestG)
	}
}

// Figure 10's qualitative content: on the exascale platform the HSUMMA
// curve over G is U-shaped with an interior minimum several times below
// the SUMMA endpoints.
func TestExascalePredictionShape(t *testing.T) {
	par := exascaleParams()
	endpoint := SUMMA(par).Comm()
	sq := math.Sqrt(float64(par.P)) // 1024
	mid := HSUMMA(par, sq).Comm()
	if mid >= endpoint {
		t.Fatal("no exascale win predicted")
	}
	if endpoint/mid < 1.5 {
		t.Fatalf("exascale improvement only %.2fx, expected a clear win", endpoint/mid)
	}
	// U shape: cost decreases from G=1 to √p and increases after.
	prev := HSUMMA(par, 1).Comm()
	for g := 4.0; g <= sq; g *= 4 {
		cur := HSUMMA(par, g).Comm()
		if cur > prev+1e-12 {
			t.Fatalf("not decreasing towards √p at G=%g", g)
		}
		prev = cur
	}
	prev = HSUMMA(par, sq).Comm()
	for g := sq * 4; g <= float64(par.P); g *= 4 {
		cur := HSUMMA(par, g).Comm()
		if cur < prev-1e-12 {
			t.Fatalf("not increasing past √p at G=%g", g)
		}
		prev = cur
	}
}

// Computation cost is 2n³/p·γ regardless of G — HSUMMA changes only
// communication (paper Tables I and II, "Comp. Cost" column).
func TestComputeCostIndependentOfG(t *testing.T) {
	par := bgpParams()
	c0 := SUMMA(par).Compute
	for _, g := range []float64{1, 4, 64, 512, 16384} {
		if c := HSUMMA(par, g).Compute; c != c0 {
			t.Fatalf("compute cost changed with G=%g: %g vs %g", g, c, c0)
		}
	}
	want := 2 * math.Pow(65536, 3) / 16384 * par.Machine.Gamma
	if math.Abs(c0-want) > 1e-9*want {
		t.Fatalf("compute cost %g, want %g", c0, want)
	}
}

// Splitting b and B: larger outer blocks reduce outer latency while leaving
// bandwidth unchanged.
func TestSplitBlocksReduceOuterLatency(t *testing.T) {
	par := bgpParams()
	g := 128.0
	same := HSUMMASplitBlocks(par, g, par.B)
	bigger := HSUMMASplitBlocks(par, g, par.B*4)
	if bigger.Latency >= same.Latency {
		t.Fatal("larger outer block should reduce latency")
	}
	if math.Abs(bigger.Bandwidth-same.Bandwidth) > 1e-12*same.Bandwidth {
		t.Fatal("outer block size must not change bandwidth term")
	}
	if same.Comm() <= 0 {
		t.Fatal("degenerate cost")
	}
}

func TestSplitBlocksValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-multiple outer block accepted")
		}
	}()
	HSUMMASplitBlocks(bgpParams(), 4, 300)
}

func TestValidateRejects(t *testing.T) {
	bad := []Params{
		{N: 0, P: 4, B: 1},
		{N: 4, P: 0, B: 1},
		{N: 4, P: 4, B: 0},
	}
	for _, par := range bad {
		if par.Validate() == nil {
			t.Fatalf("accepted %+v", par)
		}
	}
}

func TestHSUMMARejectsBadG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("G out of range accepted")
		}
	}()
	HSUMMA(grid5000Params(), 0.5)
}

// Property: for any machine with α,β > 0 and any G in (1,p), HSUMMA's cost
// never exceeds both endpoints by more than numerical noise... stronger:
// cost at any G is bounded below by the compute cost and above by
// T_S(latency)+T_S(bandwidth) when the condition holds.
func TestQuickInteriorNeverWorseThanWorstEndpoint(t *testing.T) {
	f := func(a, b uint16, gExp uint8) bool {
		par := Params{
			N: 1 << 14, P: 1 << 12, B: 64,
			Machine: hockney.Model{Alpha: 1e-8 + float64(a)*1e-9, Beta: 1e-12 + float64(b)*1e-12},
			Bcast:   VanDeGeijn{},
		}
		G := float64(int(1) << (gExp % 13))
		c := HSUMMA(par, G).Comm()
		s := SUMMA(par).Comm()
		// The interior can only be worse than the endpoints when the
		// condition fails, and then the maximum sits at √p; in all
		// cases cost stays within [min(s, T(√p)), max(s, T(√p))].
		lo := math.Min(s, HSUMMA(par, math.Sqrt(float64(par.P))).Comm())
		hi := math.Max(s, HSUMMA(par, math.Sqrt(float64(par.P))).Comm())
		return c >= lo-1e-9*hi && c <= hi+1e-9*hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Bandwidth factor of HSUMMA at G=√p with Van de Geijn is 8(1−1/p^¼)·n²/√p
// (the last row of Table II).
func TestTableIIOptimalRow(t *testing.T) {
	par := bgpParams()
	p := float64(par.P)
	n := float64(par.N)
	got := HSUMMA(par, math.Sqrt(p)).Bandwidth
	want := 8 * (1 - 1/math.Pow(p, 0.25)) * n * n / math.Sqrt(p) * par.Machine.Beta * par.elemBytes()
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("Table II optimal bandwidth: got %g want %g", got, want)
	}
	gotL := HSUMMA(par, math.Sqrt(p)).Latency
	wantL := (math.Log2(p) + 4*(math.Pow(p, 0.25)-1)) * n / float64(par.B) * par.Machine.Alpha
	if math.Abs(gotL-wantL) > 1e-9*wantL {
		t.Fatalf("Table II optimal latency: got %g want %g", gotL, wantL)
	}
}
