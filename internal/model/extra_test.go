package model

import (
	"math"
	"testing"

	"repro/internal/hockney"
	"repro/internal/sched"
)

func TestFlatTreeModel(t *testing.T) {
	f := FlatTree{}
	if f.Latency(1) != 0 || f.Bandwidth(1) != 0 {
		t.Fatal("flat L(1)/W(1) must be 0")
	}
	if f.Latency(9) != 8 || f.Bandwidth(9) != 8 {
		t.Fatal("flat factors must be p-1")
	}
	if f.Name() != "flat" {
		t.Fatal("name")
	}
	// Flat closed form matches the generated schedule exactly.
	fs := NewFromSchedule(sched.Flat, 1)
	for _, p := range []float64{2, 5, 9} {
		if math.Abs(f.Latency(p)-fs.Latency(p)) > 1e-12 {
			t.Fatalf("flat L(%g) mismatch", p)
		}
		if math.Abs(f.Bandwidth(p)-fs.Bandwidth(p)) > 1e-12 {
			t.Fatalf("flat W(%g) mismatch", p)
		}
	}
}

func TestBroadcastModelNames(t *testing.T) {
	if (BinomialTree{}).Name() != "binomial" || (VanDeGeijn{}).Name() != "vandegeijn" {
		t.Fatal("model names wrong")
	}
	if NewFromSchedule(sched.Chain, 4).Name() != "sched:chain" {
		t.Fatal("schedule model name wrong")
	}
}

func TestFromScheduleCaches(t *testing.T) {
	m := NewFromSchedule(sched.Binomial, 1)
	a := m.Latency(64)
	b := m.Latency(64) // second call hits the cache
	if a != b {
		t.Fatal("cache returned a different value")
	}
	if len(m.cache) != 1 {
		t.Fatalf("cache has %d entries, want 1", len(m.cache))
	}
}

func TestVanDeGeijnBoundaries(t *testing.T) {
	v := VanDeGeijn{}
	if v.Latency(1) != 0 || v.Bandwidth(1) != 0 {
		t.Fatal("vdg L(1)/W(1) must be 0")
	}
	if v.Bandwidth(1e12) >= 2 {
		t.Fatal("vdg W must stay below 2")
	}
}

func TestDerivativeSignsAroundOptimum(t *testing.T) {
	par := Params{N: 65536, P: 16384, B: 256,
		Machine: hockney.Model{Alpha: 3e-6, Beta: 1e-9}, Bcast: VanDeGeijn{}}
	sq := math.Sqrt(float64(par.P))
	if DerivativeG(par, sq/8) >= 0 {
		t.Fatal("cost should decrease left of √p when the condition holds")
	}
	if DerivativeG(par, sq*8) <= 0 {
		t.Fatal("cost should increase right of √p when the condition holds")
	}
}

func TestOptimalGRestrictedCandidates(t *testing.T) {
	par := Params{N: 65536, P: 16384, B: 256,
		Machine: hockney.Model{Alpha: 3e-6, Beta: 1e-9}, Bcast: VanDeGeijn{}}
	g, cost := OptimalG(par, []int{1, 16384})
	if g != 1 && g != 16384 {
		t.Fatalf("restricted search escaped candidates: %d", g)
	}
	if math.Abs(cost.Comm()-SUMMA(par).Comm()) > 1e-12*cost.Comm() {
		t.Fatal("endpoint cost must equal SUMMA")
	}
	// Out-of-range candidates are ignored gracefully.
	g2, _ := OptimalG(par, []int{-5, 0, 128, 1 << 30})
	if g2 != 128 {
		t.Fatalf("expected 128 to win, got %d", g2)
	}
}

func TestCostAccessors(t *testing.T) {
	c := Cost{Latency: 1, Bandwidth: 2, Compute: 3}
	if c.Comm() != 3 || c.Total() != 6 {
		t.Fatalf("accessors wrong: %v %v", c.Comm(), c.Total())
	}
}

func TestSafeLog2(t *testing.T) {
	if safeLog2(0.5) != 0 || safeLog2(1) != 0 {
		t.Fatal("log2 below 1 must clamp to 0")
	}
	if math.Abs(safeLog2(8)-3) > 1e-15 {
		t.Fatal("log2(8) != 3")
	}
}

// MinimumAtSqrtP respects the ElemBytes unit knob: byte-counting tightens
// the condition by 8x.
func TestMinimumConditionUnits(t *testing.T) {
	par := Params{N: 65536, P: 16384, B: 256,
		Machine: hockney.Model{Alpha: 3e-6, Beta: 1e-9}, Bcast: VanDeGeijn{}}
	if !MinimumAtSqrtP(par) {
		t.Fatal("element units: paper's condition should hold")
	}
	par.ElemBytes = 8
	if MinimumAtSqrtP(par) {
		t.Fatal("byte units: 375 < 2048, condition should fail")
	}
}
