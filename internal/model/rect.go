package model

import (
	"fmt"

	"repro/internal/hockney"
	"repro/internal/matrix"
	"repro/internal/topo"
)

// This file generalises the paper's closed-form costs from the square
// (n, √p×√p) analysis of Tables I–II to rectangular problems on explicit
// S×T grids: the per-rank panels are (M/S)×b for A and b×(N/T) for B, and
// the pivot loop makes K/b steps over the contraction dimension. On a
// square problem (M = N = K on a square grid with square groups) the
// rectangular forms delegate to the square formulas, so they reduce to
// them *bit-exactly* — the planner's stage-1 ranking of a square request
// is unchanged by the generalisation (asserted in rect_test.go on all
// five platform presets).

// RectParams fixes a rectangular GEMM instance on an explicit process
// grid for the generalised closed-form analysis.
type RectParams struct {
	// Shape is the global problem C (M×N) += A (M×K)·B (K×N).
	Shape matrix.Shape
	// Grid is the S×T process grid (the square analysis assumes √p×√p).
	Grid topo.Grid
	// B is the pivot panel width b.
	B int
	// Machine is the Hockney model.
	Machine hockney.Model
	// Bcast is the broadcast model of equation (1); defaults to
	// BinomialTree.
	Bcast Broadcast
	// ElemBytes converts elements to the units β is quoted in (0 = 1, as
	// in Params).
	ElemBytes float64
}

func (p RectParams) validate() error {
	if err := p.Shape.Validate(); err != nil {
		return err
	}
	if p.Grid.S <= 0 || p.Grid.T <= 0 || p.B <= 0 {
		return fmt.Errorf("model: invalid rect params grid=%v b=%d", p.Grid, p.B)
	}
	return nil
}

func (p RectParams) square() Params {
	return Params{N: p.Shape.N, P: p.Grid.Size(), B: p.B,
		Machine: p.Machine, Bcast: p.Bcast, ElemBytes: p.ElemBytes}
}

func (p RectParams) isSquare() bool { return p.Shape.IsSquare() && p.Grid.S == p.Grid.T }

func (p RectParams) bcast() Broadcast {
	if p.Bcast == nil {
		return BinomialTree{}
	}
	return p.Bcast
}

func (p RectParams) elemBytes() float64 {
	if p.ElemBytes <= 0 {
		return 1
	}
	return p.ElemBytes
}

// SUMMARect evaluates the flat algorithm's cost on a rectangular problem:
// K/b steps, each broadcasting the (M/S)×b panel of A over the T-wide row
// communicator and the b×(N/T) panel of B over the S-tall column
// communicator:
//
//	T_S = (K/b)·( L(T) + L(S) )·α + (K/b)·( (M/S)·b·W(T) + b·(N/T)·W(S) )·β
//
// With M = N = K = n on a √p×√p grid this is Table I/II's
// 2·(n/b)·L(√p)·α + 2·(n²/√p)·W(√p)·β, and the square case delegates to
// SUMMA so the reduction is bit-exact.
func SUMMARect(par RectParams) Cost {
	if err := par.validate(); err != nil {
		panic(err)
	}
	if par.isSquare() {
		return SUMMA(par.square())
	}
	return summaRectGeneric(par)
}

// summaRectGeneric is the rectangular arithmetic itself, shared with the
// package tests that assert it agrees with the square closed form when
// evaluated at M = N = K (the delegation above then makes the public
// reduction bit-exact).
func summaRectGeneric(par RectParams) Cost {
	M := float64(par.Shape.M)
	N := float64(par.Shape.N)
	K := float64(par.Shape.K)
	S := float64(par.Grid.S)
	T := float64(par.Grid.T)
	b := float64(par.B)
	bc := par.bcast()
	eb := par.elemBytes()
	m := par.Machine
	steps := K / b
	return Cost{
		Latency:   steps*bc.Latency(T)*m.Alpha + steps*bc.Latency(S)*m.Alpha,
		Bandwidth: steps*(M/S)*b*eb*bc.Bandwidth(T)*m.Beta + steps*b*(N/T)*eb*bc.Bandwidth(S)*m.Beta,
		Compute:   m.Compute(2 * M * N * K / (S * T)),
	}
}

// HSUMMARect evaluates the hierarchical algorithm's cost for an I×J group
// arrangement on a rectangular problem, with inner block b and outer
// block outerB (0 means b): K/outerB inter-group steps over the J-wide
// group-row and I-tall group-column communicators, plus K/b intra-group
// steps over the (T/J)-wide and (S/I)-tall inner communicators. With
// M = N = K on a square grid with square groups it delegates to HSUMMA
// (or HSUMMASplitBlocks when outerB ≠ b), reducing bit-exactly to the
// paper's Table II forms.
func HSUMMARect(par RectParams, I, J, outerB int) Cost {
	if err := par.validate(); err != nil {
		panic(err)
	}
	if I <= 0 || J <= 0 || par.Grid.S%I != 0 || par.Grid.T%J != 0 {
		panic(fmt.Sprintf("model: invalid group arrangement %dx%d for grid %v", I, J, par.Grid))
	}
	if outerB == 0 {
		outerB = par.B
	}
	if par.isSquare() && I == J {
		if outerB == par.B {
			return HSUMMA(par.square(), float64(I*J))
		}
		return HSUMMASplitBlocks(par.square(), float64(I*J), outerB)
	}
	return hsummaRectGeneric(par, I, J, outerB)
}

// hsummaRectGeneric is the rectangular two-phase arithmetic, shared with
// the package tests (see summaRectGeneric).
func hsummaRectGeneric(par RectParams, I, J, outerB int) Cost {
	M := float64(par.Shape.M)
	N := float64(par.Shape.N)
	K := float64(par.Shape.K)
	S := float64(par.Grid.S)
	T := float64(par.Grid.T)
	b := float64(par.B)
	Bo := float64(outerB)
	fI := float64(I)
	fJ := float64(J)
	bc := par.bcast()
	eb := par.elemBytes()
	m := par.Machine
	outer := K / Bo
	inner := K / b
	return Cost{
		Latency: outer*bc.Latency(fJ)*m.Alpha + outer*bc.Latency(fI)*m.Alpha +
			inner*bc.Latency(T/fJ)*m.Alpha + inner*bc.Latency(S/fI)*m.Alpha,
		Bandwidth: outer*(M/S)*Bo*eb*bc.Bandwidth(fJ)*m.Beta + outer*Bo*(N/T)*eb*bc.Bandwidth(fI)*m.Beta +
			inner*(M/S)*b*eb*bc.Bandwidth(T/fJ)*m.Beta + inner*b*(N/T)*eb*bc.Bandwidth(S/fI)*m.Beta,
		Compute: m.Compute(2 * M * N * K / (S * T)),
	}
}
