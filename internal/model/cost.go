package model

import (
	"fmt"
	"math"

	"repro/internal/hockney"
)

// Params fixes a problem/platform instance for the closed-form analysis.
type Params struct {
	N int // matrix dimension (n×n)
	P int // processor count (analysed as a √p×√p grid)
	B int // block size b (the paper sets B = b throughout the analysis)
	// Machine is the Hockney model (α seconds, β seconds per message
	// unit, γ seconds/flop).
	Machine hockney.Model
	// Bcast is the broadcast model plugged into equation (1); defaults
	// to BinomialTree.
	Bcast Broadcast
	// ElemBytes converts matrix elements to the message units β is
	// quoted in. The paper's analysis applies β directly to element
	// counts (its BG/P validation arithmetic, α/β = 3000 > 2nb/p = 2048,
	// only holds that way), so the default 0 means 1. Set 8 to compare
	// against the byte-counting simulator.
	ElemBytes float64
}

func (p Params) elemBytes() float64 {
	if p.ElemBytes <= 0 {
		return 1
	}
	return p.ElemBytes
}

func (p Params) bcast() Broadcast {
	if p.Bcast == nil {
		return BinomialTree{}
	}
	return p.Bcast
}

// Validate rejects non-positive parameters.
func (p Params) Validate() error {
	if p.N <= 0 || p.P <= 0 || p.B <= 0 {
		return fmt.Errorf("model: invalid params n=%d p=%d b=%d", p.N, p.P, p.B)
	}
	return nil
}

// Cost decomposes a predicted execution time the way the paper's tables do.
type Cost struct {
	Latency   float64 // α terms, seconds
	Bandwidth float64 // β terms, seconds
	Compute   float64 // 2n³/p·γ, seconds
}

// Comm returns the communication-only time (what the paper's Figures 5–7
// and 9 plot).
func (c Cost) Comm() float64 { return c.Latency + c.Bandwidth }

// Total returns communication plus computation (Figure 8's overall time).
func (c Cost) Total() float64 { return c.Comm() + c.Compute }

// SUMMA evaluates the flat algorithm's cost: per Table I/II, with the
// generic model of equation (2):
//
//	T_S(n,p) = 2·( (n/b)·L(√p)·α + (n²/√p)·W(√p)·β )
//
// The factor 2 covers the A (horizontal) and B (vertical) broadcasts.
func SUMMA(par Params) Cost {
	if err := par.Validate(); err != nil {
		panic(err)
	}
	n := float64(par.N)
	p := float64(par.P)
	b := float64(par.B)
	bc := par.bcast()
	sq := math.Sqrt(p)
	m := par.Machine
	return Cost{
		Latency:   2 * (n / b) * bc.Latency(sq) * m.Alpha,
		Bandwidth: 2 * (n * n / sq) * par.elemBytes() * bc.Bandwidth(sq) * m.Beta,
		Compute:   m.Compute(2 * n * n * n / p),
	}
}

// HSUMMA evaluates the hierarchical algorithm's cost for G groups
// (equations 3–5 with b = B):
//
//	T_HS(n,p,G) = 2·(n/b)·( L(√G) + L(√(p/G)) )·α
//	            + 2·(n²/√p)·( W(√G) + W(√(p/G)) )·β
//
// G = 1 and G = p reproduce SUMMA exactly (L(1) = W(1) = 0).
func HSUMMA(par Params, G float64) Cost {
	if err := par.Validate(); err != nil {
		panic(err)
	}
	if G < 1 || G > float64(par.P) {
		panic(fmt.Sprintf("model: G=%g outside [1,%d]", G, par.P))
	}
	n := float64(par.N)
	p := float64(par.P)
	b := float64(par.B)
	bc := par.bcast()
	m := par.Machine
	sqG := math.Sqrt(G)
	sqIn := math.Sqrt(p / G)
	return Cost{
		Latency:   2 * (n / b) * (bc.Latency(sqG) + bc.Latency(sqIn)) * m.Alpha,
		Bandwidth: 2 * (n * n / math.Sqrt(p)) * par.elemBytes() * (bc.Bandwidth(sqG) + bc.Bandwidth(sqIn)) * m.Beta,
		Compute:   m.Compute(2 * n * n * n / p),
	}
}

// HSUMMASplitBlocks generalises HSUMMA to distinct inner block b and outer
// block B (the paper's Table II general row): the inner latency factor uses
// n/b steps, the outer one n/B.
func HSUMMASplitBlocks(par Params, G float64, outerB int) Cost {
	if outerB <= 0 || outerB%par.B != 0 {
		panic(fmt.Sprintf("model: outer block %d must be a positive multiple of b=%d", outerB, par.B))
	}
	n := float64(par.N)
	p := float64(par.P)
	b := float64(par.B)
	Bo := float64(outerB)
	bc := par.bcast()
	m := par.Machine
	sqG := math.Sqrt(G)
	sqIn := math.Sqrt(p / G)
	return Cost{
		Latency:   2 * ((n/b)*bc.Latency(sqIn) + (n/Bo)*bc.Latency(sqG)) * m.Alpha,
		Bandwidth: 2 * (n * n / math.Sqrt(p)) * par.elemBytes() * (bc.Bandwidth(sqG) + bc.Bandwidth(sqIn)) * m.Beta,
		Compute:   m.Compute(2 * n * n * n / p),
	}
}

// MinimumAtSqrtP reports the paper's condition (eq. 10): with the Van de
// Geijn broadcast, T_HS(G) has its interior minimum at G = √p iff
// α/β > 2nb/p; otherwise G = √p is a maximum and the optimum sits at the
// endpoints G ∈ {1, p}. β is taken per message unit (see Params.ElemBytes).
func MinimumAtSqrtP(par Params) bool {
	n := float64(par.N)
	p := float64(par.P)
	b := float64(par.B)
	beta := par.Machine.Beta * par.elemBytes()
	if beta == 0 {
		return true
	}
	return par.Machine.Alpha/beta > 2*n*b/p
}

// OptimalG minimises the HSUMMA communication cost over the feasible group
// counts. Candidates are the stationary point G = √p (eq. 9) and the
// endpoints; when candidates is non-nil (e.g. the divisor-constrained G
// values of a real grid) the search is restricted to it.
func OptimalG(par Params, candidates []int) (bestG int, best Cost) {
	if err := par.Validate(); err != nil {
		panic(err)
	}
	if candidates == nil {
		sq := int(math.Round(math.Sqrt(float64(par.P))))
		candidates = []int{1, sq, par.P}
		// Neighbouring powers of two around √p guard against rounding.
		for g := 2; g < par.P; g *= 2 {
			candidates = append(candidates, g)
		}
	}
	bestG = 1
	best = HSUMMA(par, 1)
	for _, g := range candidates {
		if g < 1 || g > par.P {
			continue
		}
		c := HSUMMA(par, float64(g))
		if c.Comm() < best.Comm() {
			bestG, best = g, c
		}
	}
	return bestG, best
}

// DerivativeG returns ∂T_HS/∂G evaluated numerically (central difference) —
// used by tests to confirm the stationary point at G = √p the paper proves
// analytically in equation (9).
func DerivativeG(par Params, G float64) float64 {
	h := G * 1e-6
	lo := HSUMMA(par, G-h).Comm()
	hi := HSUMMA(par, G+h).Comm()
	return (hi - lo) / (2 * h)
}
