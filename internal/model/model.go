// Package model implements the paper's closed-form performance analysis
// (Section IV): the generic broadcast model T_bcast(m,p) = L(p)·α + m·W(p)·β
// of equation (1), the SUMMA and HSUMMA communication cost functions of
// Tables I and II, the extremum analysis of ∂T_HS/∂G (equations 6–11, with
// the G = √p stationary point and the α/β ⋛ 2nb/p minimum/maximum
// condition), and the exascale prediction of Figure 10.
//
// Conventions: the paper's analysis assumes a square √p×√p grid and, for
// HSUMMA, √G×√G groups with b = B unless stated. Message sizes on the wire
// are counted in bytes (8 per float64 element), so β is in seconds/byte as
// in the platform presets.
package model

import (
	"fmt"
	"math"

	"repro/internal/hockney"
	"repro/internal/sched"
)

// Broadcast is the paper's generic homogeneous broadcast model (eq. 1):
// broadcasting m bytes over p processors costs L(p)·α + m·W(p)·β, with
// L(1) = W(1) = 0.
type Broadcast interface {
	// Latency returns L(p), the α multiplier.
	Latency(p float64) float64
	// Bandwidth returns W(p), the mβ multiplier.
	Bandwidth(p float64) float64
	// Name identifies the algorithm in reports.
	Name() string
}

// BinomialTree is the binomial broadcast: L(p) = W(p) = log₂(p) — the
// model behind the paper's Table I.
type BinomialTree struct{}

// Latency returns log₂(p).
func (BinomialTree) Latency(p float64) float64 { return safeLog2(p) }

// Bandwidth returns log₂(p).
func (BinomialTree) Bandwidth(p float64) float64 { return safeLog2(p) }

// Name implements Broadcast.
func (BinomialTree) Name() string { return "binomial" }

// VanDeGeijn is the scatter-allgather broadcast: L(p) = log₂(p) + p − 1,
// W(p) = 2(p−1)/p — the model behind the paper's Table II.
type VanDeGeijn struct{}

// Latency returns log₂(p) + p − 1.
func (VanDeGeijn) Latency(p float64) float64 {
	if p <= 1 {
		return 0
	}
	return safeLog2(p) + p - 1
}

// Bandwidth returns 2(p−1)/p.
func (VanDeGeijn) Bandwidth(p float64) float64 {
	if p <= 1 {
		return 0
	}
	return 2 * (p - 1) / p
}

// Name implements Broadcast.
func (VanDeGeijn) Name() string { return "vandegeijn" }

// FlatTree is the star broadcast: L(p) = W(p) = p − 1. Not used by the
// paper's tables but useful in ablations.
type FlatTree struct{}

// Latency returns p − 1.
func (FlatTree) Latency(p float64) float64 { return math.Max(0, p-1) }

// Bandwidth returns p − 1.
func (FlatTree) Bandwidth(p float64) float64 { return math.Max(0, p-1) }

// Name implements Broadcast.
func (FlatTree) Name() string { return "flat" }

// FromSchedule derives L(p) and W(p) numerically from the actual schedules
// in internal/sched: broadcast cost is affine in the message size for every
// provided algorithm, so two evaluations per p recover the exact factors.
// This ties the closed-form model to the executable schedules — the tests
// assert the paper's closed forms agree with the generated schedules.
type FromSchedule struct {
	Alg      sched.Algorithm
	Segments int

	cache map[int][2]float64
}

// NewFromSchedule returns a schedule-derived broadcast model.
func NewFromSchedule(alg sched.Algorithm, segments int) *FromSchedule {
	return &FromSchedule{Alg: alg, Segments: segments, cache: make(map[int][2]float64)}
}

func (f *FromSchedule) factors(p float64) [2]float64 {
	ip := int(p + 0.5)
	if ip <= 1 {
		return [2]float64{0, 0}
	}
	if v, ok := f.cache[ip]; ok {
		return v
	}
	s, err := sched.NewBroadcast(f.Alg, ip, 0, f.Segments)
	if err != nil {
		panic(fmt.Sprintf("model: %v", err))
	}
	// Cost with unit α, zero β isolates L; zero α, unit β (per byte,
	// message of one byte) isolates W.
	l := s.Cost(1, hockney.Model{Alpha: 1, Beta: 0})
	w := s.Cost(1, hockney.Model{Alpha: 0, Beta: 1})
	v := [2]float64{l, w}
	f.cache[ip] = v
	return v
}

// Latency implements Broadcast using the generated schedule.
func (f *FromSchedule) Latency(p float64) float64 { return f.factors(p)[0] }

// Bandwidth implements Broadcast using the generated schedule.
func (f *FromSchedule) Bandwidth(p float64) float64 { return f.factors(p)[1] }

// Name implements Broadcast.
func (f *FromSchedule) Name() string { return "sched:" + string(f.Alg) }

func safeLog2(p float64) float64 {
	if p <= 1 {
		return 0
	}
	return math.Log2(p)
}
