package model

import (
	"math"
	"testing"

	"repro/internal/hockney"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/topo"
)

func presets() []platform.Platform {
	return []platform.Platform{
		platform.Grid5000(), platform.BlueGeneP(), platform.Exascale(),
		platform.Grid5000Calibrated(), platform.BlueGenePCalibrated(),
	}
}

// Acceptance: the rectangular cost model reduces *bit-exactly* to the
// existing square formulas at M = N = K, on every platform preset and
// under both of the paper's broadcast models.
func TestRectReducesToSquareBitExact(t *testing.T) {
	n, p, b := 65536, 16384, 256
	grid := topo.Grid{S: 128, T: 128}
	for _, pf := range presets() {
		for _, bc := range []Broadcast{BinomialTree{}, VanDeGeijn{}} {
			rp := RectParams{Shape: matrix.Square(n), Grid: grid, B: b, Machine: pf.Model, Bcast: bc}
			sp := Params{N: n, P: p, B: b, Machine: pf.Model, Bcast: bc}

			if got, want := SUMMARect(rp), SUMMA(sp); got != want {
				t.Fatalf("%s/%s SUMMA: rect %+v != square %+v", pf.Name, bc.Name(), got, want)
			}
			for _, G := range []int{1, 16, 128, 1024, 16384} {
				I := int(math.Round(math.Sqrt(float64(G))))
				if I*I != G {
					continue
				}
				got := HSUMMARect(rp, I, I, 0)
				want := HSUMMA(sp, float64(G))
				if got != want {
					t.Fatalf("%s/%s HSUMMA G=%d: rect %+v != square %+v", pf.Name, bc.Name(), G, got, want)
				}
			}
			// Split blocks (B = 4b) must reduce to the Table II general row.
			if got, want := HSUMMARect(rp, 16, 16, 4*b), HSUMMASplitBlocks(sp, 256, 4*b); got != want {
				t.Fatalf("%s/%s split blocks: rect %+v != square %+v", pf.Name, bc.Name(), got, want)
			}
		}
	}
}

// The generic rectangular arithmetic (the non-delegated path) must agree
// with the square closed form to floating-point reassociation tolerance —
// the delegation above is a consistency shortcut, not a different model.
func TestRectGenericAgreesWithSquare(t *testing.T) {
	n, p, b := 4096, 256, 64
	grid := topo.Grid{S: 16, T: 16}
	for _, pf := range presets() {
		for _, bc := range []Broadcast{BinomialTree{}, VanDeGeijn{}} {
			rp := RectParams{Shape: matrix.Square(n), Grid: grid, B: b, Machine: pf.Model, Bcast: bc}
			sp := Params{N: n, P: p, B: b, Machine: pf.Model, Bcast: bc}
			got := summaRectGeneric(rp).Comm()
			want := SUMMA(sp).Comm()
			if math.Abs(got-want) > 1e-12*want {
				t.Fatalf("%s/%s: generic rect %g vs square %g", pf.Name, bc.Name(), got, want)
			}
			gotH := hsummaRectGeneric(rp, 4, 4, b).Comm()
			wantH := HSUMMA(sp, 16).Comm()
			if math.Abs(gotH-wantH) > 1e-12*wantH {
				t.Fatalf("%s/%s HSUMMA: generic rect %g vs square %g", pf.Name, bc.Name(), gotH, wantH)
			}
		}
	}
}

// Rectangular sanity: a tall problem on a tall grid must broadcast less
// than on the transposed (mismatched) grid — the effect that makes the
// planner's orientation search worthwhile.
func TestRectOrientationMatters(t *testing.T) {
	m := hockney.Model{Alpha: 1e-5, Beta: 1e-9, Gamma: 1e-11}
	sh := matrix.Shape{M: 16384, N: 512, K: 16384}
	tall := SUMMARect(RectParams{Shape: sh, Grid: topo.Grid{S: 32, T: 4}, B: 64, Machine: m})
	wide := SUMMARect(RectParams{Shape: sh, Grid: topo.Grid{S: 4, T: 32}, B: 64, Machine: m})
	if tall.Comm() >= wide.Comm() {
		t.Fatalf("tall-on-tall %g not cheaper than tall-on-wide %g", tall.Comm(), wide.Comm())
	}
	// Compute is orientation-independent.
	if tall.Compute != wide.Compute {
		t.Fatalf("compute differs with orientation: %g vs %g", tall.Compute, wide.Compute)
	}
}

func TestRectParamsValidate(t *testing.T) {
	m := hockney.Model{Alpha: 1, Beta: 1}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero shape", func() {
		SUMMARect(RectParams{Grid: topo.Grid{S: 2, T: 2}, B: 2, Machine: m})
	})
	mustPanic("zero block", func() {
		SUMMARect(RectParams{Shape: matrix.Square(8), Grid: topo.Grid{S: 2, T: 2}, Machine: m})
	})
	mustPanic("bad groups", func() {
		HSUMMARect(RectParams{Shape: matrix.Square(8), Grid: topo.Grid{S: 2, T: 2}, B: 2, Machine: m}, 3, 1, 0)
	})
}
