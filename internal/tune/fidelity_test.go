package tune

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/simalg"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// TestPredictPhasesFidelity is the plan-fidelity invariant: the closed-form
// per-phase prediction ResolveSpec attaches to every spec must agree with
// what a traced virtual run of the same spec on the same machine actually
// measures — per phase, on the critical rank — for all five algorithms.
// Comm phases get a 2x band (the model is a critical-path decomposition,
// the schedule has waits the model folds differently); gemm is charged from
// the identical formula on both sides and must match tightly.
func TestPredictPhasesFidelity(t *testing.T) {
	pf := platform.Grid5000()
	shape := matrix.Shape{M: 256, N: 256, K: 256}
	cases := []struct {
		name string
		rp   ResolveParams
	}{
		{"summa", ResolveParams{Shape: shape, Procs: 16, Algorithm: engine.SUMMA, BlockSize: 32}},
		{"hsumma", ResolveParams{Shape: shape, Procs: 16, Algorithm: engine.HSUMMA, BlockSize: 32, Groups: 4}},
		{"multilevel", ResolveParams{Shape: shape, Procs: 16, Algorithm: engine.Multilevel, BlockSize: 32,
			Levels: []core.Level{{I: 2, J: 2, BlockSize: 32}}}},
		{"cannon", ResolveParams{Shape: shape, Procs: 16, Algorithm: engine.Cannon}},
		{"fox", ResolveParams{Shape: shape, Procs: 16, Algorithm: engine.Fox}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ResolveSpec(tc.rp)
			if err != nil {
				t.Fatal(err)
			}
			if len(spec.Predicted) == 0 {
				t.Fatal("ResolveSpec attached no prediction")
			}
			for _, ex := range []engine.Executor{engine.ExecutorGoroutine, engine.ExecutorEvent} {
				vcfg := simnet.VConfig{Model: pf.Model, Trace: trace.New(spec.Opts.Grid.Size())}
				if _, _, err := simalg.RunSpecOn(spec, vcfg, ex); err != nil {
					t.Fatal(err)
				}
				// Measured side: the critical (max over ranks) per-phase
				// seconds of the virtual timeline — the same quantity the
				// prediction decomposes.
				measured := map[string]float64{}
				for _, phases := range trace.RankPhaseSeconds(vcfg.Trace.Spans()) {
					for ph, sec := range phases {
						if sec > measured[ph] {
							measured[ph] = sec
						}
					}
				}
				for ph, pred := range spec.Predicted {
					got, ok := measured[ph]
					if !ok || got <= 0 {
						t.Fatalf("%s: predicted phase %q (%.3gs) has no measured spans (measured %v)",
							ex, ph, pred, measured)
					}
					ratio := got / pred
					lo, hi := 0.5, 2.0
					if ph == "gemm" {
						// Both sides charge m.Compute(2MNK/p) — only padding
						// and FP association separate them.
						lo, hi = 0.99, 1.01
					}
					if ratio < lo || ratio > hi {
						t.Errorf("%s: phase %q measured/predicted = %.3f (measured %.3gs, predicted %.3gs), want within [%g, %g]",
							ex, ph, ratio, got, pred, lo, hi)
					}
				}
			}
		})
	}
}
