package tune

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hockney"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/sched"
)

// scorer evaluates candidates with the closed-form broadcast models of
// internal/model generalised to rectangular problems on rectangular S×T
// grids (the paper's tables assume n×n on √p×√p): SUMMA and HSUMMA score
// through model.SUMMARect/HSUMMARect, which reduce bit-exactly to
// model.SUMMA and model.HSUMMA on square problems (asserted in the model
// and tune package tests), so a square request ranks exactly as before
// the generalisation. One scorer is built per plan so the
// schedule-derived broadcast factors are cached across the thousands of
// stage-1 evaluations.
type scorer struct {
	sh matrix.Shape
	m  hockney.Model
	// overlap scores total as max(comm, compute) instead of their sum.
	overlap bool
	bcasts  map[bcKey]model.Broadcast
}

type bcKey struct {
	alg      sched.Algorithm
	segments int
}

func newScorer(sh matrix.Shape, m hockney.Model, overlap bool) *scorer {
	return &scorer{sh: sh, m: m, overlap: overlap, bcasts: make(map[bcKey]model.Broadcast)}
}

// bcast returns the equation-(1) factors L(p), W(p) for a broadcast
// algorithm: the paper's closed forms where it states them (Tables I–II),
// schedule-derived factors (model.FromSchedule) for the rest — tying the
// planner's stage 1 to the exact schedules stage 2 executes.
func (s *scorer) bcast(alg sched.Algorithm, segments int) model.Broadcast {
	if alg == "" {
		alg = sched.Binomial
	}
	k := bcKey{alg, segments}
	if bc, ok := s.bcasts[k]; ok {
		return bc
	}
	var bc model.Broadcast
	switch alg {
	case sched.Binomial:
		bc = model.BinomialTree{}
	case sched.VanDeGeijn:
		bc = model.VanDeGeijn{}
	case sched.Flat:
		bc = model.FlatTree{}
	default:
		bc = model.NewFromSchedule(alg, segments)
	}
	s.bcasts[k] = bc
	return bc
}

// bcastStep returns the cost of broadcasting elems matrix elements over a
// communicator of p ranks under the candidate's broadcast model.
func (s *scorer) bcastStep(bc model.Broadcast, p, elems float64) float64 {
	if p <= 1 {
		return 0
	}
	return bc.Latency(p)*s.m.Alpha + elems*bc.Bandwidth(p)*s.m.Beta
}

// execShape returns the shape the candidate would actually execute: the
// requested shape rounded up to the candidate's divisibility constraints
// (identity on dividing shapes). Scoring the padded shape keeps the
// stage-1 ranking honest on non-dividing problems, where candidates with
// different blocks pad by different amounts and an analytic-only plan
// has no stage-2 run to correct it.
func (s *scorer) execShape(c Candidate) matrix.Shape {
	spec := engine.Spec{Algorithm: c.Algorithm, Opts: core.Options{
		Shape: s.sh, Grid: c.Grid,
		BlockSize: c.BlockSize, OuterBlockSize: c.OuterBlockSize,
	}, Levels: c.Levels}
	padded, err := spec.PaddedShape()
	if err != nil {
		return s.sh // square-only rejection is handled by the enumeration
	}
	return padded
}

// score returns the candidate's analytic (comm, total) in seconds.
func (s *scorer) score(c Candidate) (comm, total float64) {
	sh := s.execShape(c)
	M := float64(sh.M)
	N := float64(sh.N)
	K := float64(sh.K)
	p := float64(c.Grid.Size())
	S := float64(c.Grid.S)
	T := float64(c.Grid.T)
	tileA := M / S // rows of the per-rank A panel (and C tile)
	tileB := N / T // cols of the per-rank B panel

	switch c.Algorithm {
	case engine.SUMMA:
		comm = model.SUMMARect(model.RectParams{
			Shape: sh, Grid: c.Grid, B: c.BlockSize,
			Machine: s.m, Bcast: s.bcast(c.Broadcast, c.Segments),
		}).Comm()

	case engine.HSUMMA:
		comm = model.HSUMMARect(model.RectParams{
			Shape: sh, Grid: c.Grid, B: c.BlockSize,
			Machine: s.m, Bcast: s.bcast(c.Broadcast, c.Segments),
		}, c.GroupShape[0], c.GroupShape[1], c.OuterBlockSize).Comm()

	case engine.Multilevel:
		bc := s.bcast(c.Broadcast, c.Segments)
		remS, remT := S, T
		for _, lv := range c.Levels {
			Bk := float64(lv.BlockSize)
			comm += (K / Bk) * (s.bcastStep(bc, float64(lv.J), tileA*Bk) + s.bcastStep(bc, float64(lv.I), Bk*tileB))
			remS /= float64(lv.I)
			remT /= float64(lv.J)
		}
		b := float64(c.BlockSize)
		comm += (K / b) * (s.bcastStep(bc, remT, tileA*b) + s.bcastStep(bc, remS, b*tileB))

	case engine.Cannon:
		// q−1 alignment shifts amortise into the q compute-step shifts on
		// the virtual transport's full-duplex rendezvous; charge 2 transfers
		// of the n²/p tile per step plus one alignment round each way.
		// (Square-only: the enumeration never proposes Cannon otherwise.)
		q := S
		tile := N * N / p
		shift := s.m.Alpha + tile*s.m.Beta
		comm = 2 * (q + 1) * shift

	case engine.Fox:
		bc := s.bcast(c.Broadcast, c.Segments)
		q := S
		tile := N * N / p
		comm = q * (s.bcastStep(bc, q, tile) + (s.m.Alpha + tile*s.m.Beta))
	}

	// Intra-rank threads shorten the local multiplies by the shared
	// parallel-efficiency curve — the same factor the virtual engines
	// charge, so analytic and simulated rankings agree on the hybrid
	// trade-off. Speedup(1) is exactly 1, leaving serial scores bitwise
	// unchanged.
	compute := s.m.Compute(2 * M * N * K / p / hockney.Speedup(c.Threads))
	if s.overlap {
		total = comm
		if compute > total {
			total = compute
		}
	} else {
		total = comm + compute
	}
	return comm, total
}
