package tune

import (
	"repro/internal/engine"
	"repro/internal/hockney"
	"repro/internal/model"
	"repro/internal/sched"
)

// scorer evaluates candidates with the closed-form broadcast models of
// internal/model generalised to rectangular S×T grids (the paper's tables
// assume √p×√p; on a square grid the formulas below reduce to model.SUMMA
// and model.HSUMMA exactly, which the package tests assert). One scorer is
// built per plan so the schedule-derived broadcast factors are cached
// across the thousands of stage-1 evaluations.
type scorer struct {
	n int
	m hockney.Model
	// overlap scores total as max(comm, compute) instead of their sum.
	overlap bool
	bcasts  map[bcKey]model.Broadcast
}

type bcKey struct {
	alg      sched.Algorithm
	segments int
}

func newScorer(n int, m hockney.Model, overlap bool) *scorer {
	return &scorer{n: n, m: m, overlap: overlap, bcasts: make(map[bcKey]model.Broadcast)}
}

// bcast returns the equation-(1) factors L(p), W(p) for a broadcast
// algorithm: the paper's closed forms where it states them (Tables I–II),
// schedule-derived factors (model.FromSchedule) for the rest — tying the
// planner's stage 1 to the exact schedules stage 2 executes.
func (s *scorer) bcast(alg sched.Algorithm, segments int) model.Broadcast {
	if alg == "" {
		alg = sched.Binomial
	}
	k := bcKey{alg, segments}
	if bc, ok := s.bcasts[k]; ok {
		return bc
	}
	var bc model.Broadcast
	switch alg {
	case sched.Binomial:
		bc = model.BinomialTree{}
	case sched.VanDeGeijn:
		bc = model.VanDeGeijn{}
	case sched.Flat:
		bc = model.FlatTree{}
	default:
		bc = model.NewFromSchedule(alg, segments)
	}
	s.bcasts[k] = bc
	return bc
}

// bcastStep returns the cost of broadcasting elems matrix elements over a
// communicator of p ranks under the candidate's broadcast model.
func (s *scorer) bcastStep(bc model.Broadcast, p, elems float64) float64 {
	if p <= 1 {
		return 0
	}
	return bc.Latency(p)*s.m.Alpha + elems*bc.Bandwidth(p)*s.m.Beta
}

// score returns the candidate's analytic (comm, total) in seconds.
func (s *scorer) score(c Candidate) (comm, total float64) {
	n := float64(s.n)
	p := float64(c.Grid.Size())
	S := float64(c.Grid.S)
	T := float64(c.Grid.T)
	tileA := n / S // rows of the per-rank A panel (and C tile)
	tileB := n / T // cols of the per-rank B panel

	switch c.Algorithm {
	case engine.SUMMA:
		bc := s.bcast(c.Broadcast, c.Segments)
		b := float64(c.BlockSize)
		steps := n / b
		comm = steps * (s.bcastStep(bc, T, tileA*b) + s.bcastStep(bc, S, b*tileB))

	case engine.HSUMMA:
		bc := s.bcast(c.Broadcast, c.Segments)
		b := float64(c.BlockSize)
		B := float64(c.OuterBlockSize)
		if B == 0 {
			B = b
		}
		I := float64(c.GroupShape[0])
		J := float64(c.GroupShape[1])
		// Outer phase: n/B inter-group broadcasts over the J-wide group-row
		// and I-tall group-column communicators; inner phase: n/b intra-group
		// broadcasts over the (T/J)-wide and (S/I)-tall inner communicators.
		comm = (n/B)*(s.bcastStep(bc, J, tileA*B)+s.bcastStep(bc, I, B*tileB)) +
			(n/b)*(s.bcastStep(bc, T/J, tileA*b)+s.bcastStep(bc, S/I, b*tileB))

	case engine.Multilevel:
		bc := s.bcast(c.Broadcast, c.Segments)
		remS, remT := S, T
		for _, lv := range c.Levels {
			Bk := float64(lv.BlockSize)
			comm += (n / Bk) * (s.bcastStep(bc, float64(lv.J), tileA*Bk) + s.bcastStep(bc, float64(lv.I), Bk*tileB))
			remS /= float64(lv.I)
			remT /= float64(lv.J)
		}
		b := float64(c.BlockSize)
		comm += (n / b) * (s.bcastStep(bc, remT, tileA*b) + s.bcastStep(bc, remS, b*tileB))

	case engine.Cannon:
		// q−1 alignment shifts amortise into the q compute-step shifts on
		// the virtual transport's full-duplex rendezvous; charge 2 transfers
		// of the n²/p tile per step plus one alignment round each way.
		q := S
		tile := n * n / p
		shift := s.m.Alpha + tile*s.m.Beta
		comm = 2 * (q + 1) * shift

	case engine.Fox:
		bc := s.bcast(c.Broadcast, c.Segments)
		q := S
		tile := n * n / p
		comm = q * (s.bcastStep(bc, q, tile) + (s.m.Alpha + tile*s.m.Beta))
	}

	compute := s.m.Compute(2 * n * n * n / p)
	if s.overlap {
		total = comm
		if compute > total {
			total = compute
		}
	} else {
		total = comm + compute
	}
	return comm, total
}
