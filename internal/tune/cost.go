package tune

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hockney"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/topo"
)

// scorer evaluates candidates with the closed-form broadcast models of
// internal/model generalised to rectangular problems on rectangular S×T
// grids (the paper's tables assume n×n on √p×√p): SUMMA and HSUMMA score
// through model.SUMMARect/HSUMMARect, which reduce bit-exactly to
// model.SUMMA and model.HSUMMA on square problems (asserted in the model
// and tune package tests), so a square request ranks exactly as before
// the generalisation. One scorer is built per plan so the
// schedule-derived broadcast factors are cached across the thousands of
// stage-1 evaluations.
type scorer struct {
	sh matrix.Shape
	m  hockney.Model
	// overlap scores total as max(comm, compute) instead of their sum.
	overlap bool
	bcasts  map[bcKey]model.Broadcast
}

type bcKey struct {
	alg      sched.Algorithm
	segments int
}

func newScorer(sh matrix.Shape, m hockney.Model, overlap bool) *scorer {
	return &scorer{sh: sh, m: m, overlap: overlap, bcasts: make(map[bcKey]model.Broadcast)}
}

// bcast returns the equation-(1) factors L(p), W(p) for a broadcast
// algorithm: the paper's closed forms where it states them (Tables I–II),
// schedule-derived factors (model.FromSchedule) for the rest — tying the
// planner's stage 1 to the exact schedules stage 2 executes.
func (s *scorer) bcast(alg sched.Algorithm, segments int) model.Broadcast {
	if alg == "" {
		alg = sched.Binomial
	}
	k := bcKey{alg, segments}
	if bc, ok := s.bcasts[k]; ok {
		return bc
	}
	var bc model.Broadcast
	switch alg {
	case sched.Binomial:
		bc = model.BinomialTree{}
	case sched.VanDeGeijn:
		bc = model.VanDeGeijn{}
	case sched.Flat:
		bc = model.FlatTree{}
	default:
		bc = model.NewFromSchedule(alg, segments)
	}
	s.bcasts[k] = bc
	return bc
}

// bcastStep returns the cost of broadcasting elems matrix elements over a
// communicator of p ranks under the candidate's broadcast model.
func (s *scorer) bcastStep(bc model.Broadcast, p, elems float64) float64 {
	if p <= 1 {
		return 0
	}
	return bc.Latency(p)*s.m.Alpha + elems*bc.Bandwidth(p)*s.m.Beta
}

// execShape returns the shape the candidate would actually execute: the
// requested shape rounded up to the candidate's divisibility constraints
// (identity on dividing shapes). Scoring the padded shape keeps the
// stage-1 ranking honest on non-dividing problems, where candidates with
// different blocks pad by different amounts and an analytic-only plan
// has no stage-2 run to correct it.
func (s *scorer) execShape(c Candidate) matrix.Shape {
	spec := engine.Spec{Algorithm: c.Algorithm, Opts: core.Options{
		Shape: s.sh, Grid: c.Grid,
		BlockSize: c.BlockSize, OuterBlockSize: c.OuterBlockSize,
	}, Levels: c.Levels}
	padded, err := spec.PaddedShape()
	if err != nil {
		return s.sh // square-only rejection is handled by the enumeration
	}
	return padded
}

// score returns the candidate's analytic (comm, total) in seconds.
func (s *scorer) score(c Candidate) (comm, total float64) {
	sh := s.execShape(c)
	M := float64(sh.M)
	N := float64(sh.N)
	K := float64(sh.K)
	p := float64(c.Grid.Size())
	S := float64(c.Grid.S)
	T := float64(c.Grid.T)
	tileA := M / S // rows of the per-rank A panel (and C tile)
	tileB := N / T // cols of the per-rank B panel

	switch c.Algorithm {
	case engine.SUMMA:
		comm = model.SUMMARect(model.RectParams{
			Shape: sh, Grid: c.Grid, B: c.BlockSize,
			Machine: s.m, Bcast: s.bcast(c.Broadcast, c.Segments),
		}).Comm()

	case engine.HSUMMA:
		comm = model.HSUMMARect(model.RectParams{
			Shape: sh, Grid: c.Grid, B: c.BlockSize,
			Machine: s.m, Bcast: s.bcast(c.Broadcast, c.Segments),
		}, c.GroupShape[0], c.GroupShape[1], c.OuterBlockSize).Comm()

	case engine.Multilevel:
		bc := s.bcast(c.Broadcast, c.Segments)
		remS, remT := S, T
		for _, lv := range c.Levels {
			Bk := float64(lv.BlockSize)
			comm += (K / Bk) * (s.bcastStep(bc, float64(lv.J), tileA*Bk) + s.bcastStep(bc, float64(lv.I), Bk*tileB))
			remS /= float64(lv.I)
			remT /= float64(lv.J)
		}
		b := float64(c.BlockSize)
		comm += (K / b) * (s.bcastStep(bc, remT, tileA*b) + s.bcastStep(bc, remS, b*tileB))

	case engine.Cannon:
		// q−1 alignment shifts amortise into the q compute-step shifts on
		// the virtual transport's full-duplex rendezvous; charge 2 transfers
		// of the n²/p tile per step plus one alignment round each way.
		// (Square-only: the enumeration never proposes Cannon otherwise.)
		q := S
		tile := N * N / p
		shift := s.m.Alpha + tile*s.m.Beta
		comm = 2 * (q + 1) * shift

	case engine.Fox:
		bc := s.bcast(c.Broadcast, c.Segments)
		q := S
		tile := N * N / p
		comm = q * (s.bcastStep(bc, q, tile) + (s.m.Alpha + tile*s.m.Beta))

	case engine.Strassen:
		comm = s.strassenComm(c, sh)
	}

	// Intra-rank threads shorten the local multiplies by the shared
	// parallel-efficiency curve — the same factor the virtual engines
	// charge, so analytic and simulated rankings agree on the hybrid
	// trade-off. Speedup(1) is exactly 1, leaving serial scores bitwise
	// unchanged. Candidates running sub-cubic arithmetic (the strassen
	// algorithm and/or the local kernel) charge the flops the virtual
	// transports would — the historical 2MNK/p expression is kept bitwise
	// intact for everything else.
	var compute float64
	switch {
	case c.Algorithm == engine.Strassen:
		compute = s.strassenCompute(c, sh)
	case c.LocalStrassen:
		compute = s.localKernelCompute(c, sh)
	default:
		compute = s.m.Compute(2 * M * N * K / p / hockney.Speedup(c.Threads))
	}
	if s.overlap {
		total = comm
		if compute > total {
			total = compute
		}
	} else {
		total = comm + compute
	}
	return comm, total
}

// exec returns the execution descriptor the candidate's local multiplies
// run under — the same value the transports charge flops through.
func candExec(c Candidate) core.Options {
	return core.Options{Threads: c.Threads, LocalStrassen: c.LocalStrassen, StrassenCutoff: c.StrassenCutoff}
}

// strassenLevelTraffic derives the per-level per-rank communication of the
// quadrant recursion from the same product table the execution walks
// (core.StrassenProducts): the critical-path rank's staged-term and
// contribution messages, and its axpy element count (operand assembly plus
// C combination). Every message carries one tile (n/s)² at every level.
func strassenLevelTraffic() (maxMsgs, maxAxpys int) {
	var msgs, axpys [4]int
	for _, p := range core.StrassenProducts() {
		for _, operand := range [][]core.StrassenTerm{p.A, p.B} {
			for _, t := range operand {
				if t.Q != p.Host {
					msgs[t.Q]++    // staged send
					msgs[p.Host]++ // staged receive
				}
			}
			axpys[p.Host] += len(operand) - 1 // first term is a copy
		}
		for _, t := range p.C {
			if t.Q != p.Host {
				msgs[p.Host]++ // contribution send
				msgs[t.Q]++    // contribution receive
			}
			axpys[t.Q]++ // every contribution lands as one axpy
		}
	}
	for q := 0; q < 4; q++ {
		if msgs[q] > maxMsgs {
			maxMsgs = msgs[q]
		}
		if axpys[q] > maxAxpys {
			maxAxpys = axpys[q]
		}
	}
	return maxMsgs, maxAxpys
}

// strassenComm models the quadrant recursion's communication: per level
// the critical-path rank exchanges tile-sized staging and contribution
// messages, each quadrant then computes its (up to two) hosted products
// sequentially — cost(l) = level + 2·cost(l−1) — bottoming out in the
// SUMMA (or HSUMMA) closed form on the sub-grid.
func (s *scorer) strassenComm(c Candidate, sh matrix.Shape) float64 {
	levels := core.StrassenLevelsOf(c.StrassenLevels)
	div := 1 << levels
	if c.Grid.S != c.Grid.T || c.Grid.S%div != 0 || sh.N%div != 0 {
		return 0 // infeasible candidates never reach scoring via enumeration
	}
	tile := float64(sh.N) / float64(c.Grid.S)
	elems := tile * tile
	msgs, _ := strassenLevelTraffic()
	level := float64(msgs) * (s.m.Alpha + elems*s.m.Beta)

	sub := topo.Grid{S: c.Grid.S / div, T: c.Grid.S / div}
	var bottom float64
	if sub.Size() > 1 {
		params := model.RectParams{
			Shape: matrix.Square(sh.N / div), Grid: sub, B: c.BlockSize,
			Machine: s.m, Bcast: s.bcast(c.Broadcast, c.Segments),
		}
		if G := c.StrassenInnerGroups; G > 0 {
			if h, err := topo.FactorGroups(sub, G); err == nil {
				bottom = model.HSUMMARect(params, h.I, h.J, c.OuterBlockSize).Comm()
			} else {
				bottom = model.SUMMARect(params).Comm()
			}
		} else {
			bottom = model.SUMMARect(params).Comm()
		}
	}
	comm := bottom
	for l := 0; l < levels; l++ {
		comm = level + 2*comm
	}
	return comm
}

// strassenCompute models the quadrant recursion's critical-path flops the
// way the virtual transports charge them: 2^levels sequential bottom
// problems of n/2^levels on the sub-grid — each K/b rank-b local updates
// through the candidate's execution descriptor (sub-cubic when the local
// kernel is on) — plus the per-level quadrant add/sub arithmetic, which is
// never thread-accelerated (matching comm.Axpy on every transport).
func (s *scorer) strassenCompute(c Candidate, sh matrix.Shape) float64 {
	levels := core.StrassenLevelsOf(c.StrassenLevels)
	div := 1 << levels
	if c.Grid.S%div != 0 || sh.N%div != 0 || c.BlockSize <= 0 {
		return 0
	}
	x := candExec(c).Exec()
	tile := sh.N / c.Grid.S // per-rank tile edge, invariant across levels
	steps := float64(sh.N/div) / float64(c.BlockSize)
	gemm := steps * x.Flops(tile, tile, c.BlockSize)
	_, axpys := strassenLevelTraffic()
	axpy := float64(axpys) * float64(tile) * float64(tile)
	gf, af := gemm, 0.0
	for l := 0; l < levels; l++ {
		gf, af = 2*gf, axpy+2*af
	}
	return s.m.Compute(gf/hockney.Speedup(c.Threads) + af)
}

// predictPhases decomposes the candidate's closed-form cost onto the
// trace phase vocabulary: the comm term split across bcast / shift / p2p
// exactly as the transports would record it (SUMMA-family traffic is all
// broadcast rounds, Cannon all SendRecv shifts, Fox broadcasts plus a
// roll shift per step, Strassen p2p quadrant staging around a broadcast
// bottom), and the compute term under "gemm". Zero phases are omitted.
// The per-phase sums reproduce score()'s comm and compute up to floating-
// point association — the formulas are the same, only factored per phase
// — so a plan's prediction and its ranking never disagree on what the
// model said. This is the denominator of the serving layer's
// measured/predicted drift tracking, so it must stay in lockstep with
// score(): the fidelity tests compare it against traced virtual runs.
func (s *scorer) predictPhases(c Candidate) map[string]float64 {
	sh := s.execShape(c)
	N := float64(sh.N)
	p := float64(c.Grid.Size())
	S := float64(c.Grid.S)

	var bcast, shift, p2p float64
	switch c.Algorithm {
	case engine.SUMMA, engine.HSUMMA, engine.Multilevel:
		bcast, _ = s.score(c) // single-phase: the whole comm term is broadcast
	case engine.Cannon:
		comm, _ := s.score(c)
		shift = comm
	case engine.Fox:
		bc := s.bcast(c.Broadcast, c.Segments)
		q := S
		tile := N * N / p
		bcast = q * s.bcastStep(bc, q, tile)
		shift = q * (s.m.Alpha + tile*s.m.Beta)
	case engine.Strassen:
		bcast, p2p = s.strassenCommSplit(c, sh)
	}

	var gemm float64
	switch {
	case c.Algorithm == engine.Strassen:
		gemm = s.strassenCompute(c, sh)
	case c.LocalStrassen:
		gemm = s.localKernelCompute(c, sh)
	default:
		gemm = s.m.Compute(2 * float64(sh.M) * N * float64(sh.K) / p / hockney.Speedup(c.Threads))
	}

	out := make(map[string]float64, 3)
	for _, ph := range []struct {
		name string
		sec  float64
	}{{"bcast", bcast}, {"shift", shift}, {"p2p", p2p}, {"gemm", gemm}} {
		if ph.sec > 0 {
			out[ph.name] = ph.sec
		}
	}
	return out
}

// strassenCommSplit is strassenComm with the per-level quadrant staging
// (point-to-point sends) separated from the bottom SUMMA/HSUMMA term
// (broadcast rounds): the recursion comm(l) = level + 2·comm(l−1) folds
// to p2p(l) = level + 2·p2p(l−1) over a bottom that doubles per level.
func (s *scorer) strassenCommSplit(c Candidate, sh matrix.Shape) (bcast, p2p float64) {
	levels := core.StrassenLevelsOf(c.StrassenLevels)
	div := 1 << levels
	if c.Grid.S != c.Grid.T || c.Grid.S%div != 0 || sh.N%div != 0 {
		return 0, 0
	}
	tile := float64(sh.N) / float64(c.Grid.S)
	elems := tile * tile
	msgs, _ := strassenLevelTraffic()
	level := float64(msgs) * (s.m.Alpha + elems*s.m.Beta)

	sub := topo.Grid{S: c.Grid.S / div, T: c.Grid.S / div}
	var bottom float64
	if sub.Size() > 1 {
		params := model.RectParams{
			Shape: matrix.Square(sh.N / div), Grid: sub, B: c.BlockSize,
			Machine: s.m, Bcast: s.bcast(c.Broadcast, c.Segments),
		}
		if G := c.StrassenInnerGroups; G > 0 {
			if h, err := topo.FactorGroups(sub, G); err == nil {
				bottom = model.HSUMMARect(params, h.I, h.J, c.OuterBlockSize).Comm()
			} else {
				bottom = model.SUMMARect(params).Comm()
			}
		} else {
			bottom = model.SUMMARect(params).Comm()
		}
	}
	bcast = bottom
	for l := 0; l < levels; l++ {
		p2p = level + 2*p2p
		bcast = 2 * bcast
	}
	return bcast, p2p
}

// localKernelCompute charges a classic algorithm's local multiplies
// through the sub-cubic kernel descriptor: the same per-step flop counts
// the virtual transports record, so the analytic ranking sees the local
// kernel's win exactly where the simulation does.
func (s *scorer) localKernelCompute(c Candidate, sh matrix.Shape) float64 {
	x := candExec(c).Exec()
	var flops float64
	switch c.Algorithm {
	case engine.Cannon, engine.Fox:
		q := c.Grid.S
		t := sh.N / q
		flops = float64(q) * x.Flops(t, t, t)
	default: // SUMMA family: K/b rank-b updates of the (M/S)×(N/T) tile
		b := c.BlockSize
		if b <= 0 {
			b = 1
		}
		flops = float64(sh.K/b) * x.Flops(sh.M/c.Grid.S, sh.N/c.Grid.T, b)
	}
	return s.m.Compute(flops / hockney.Speedup(c.Threads))
}
