package tune

import (
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/topo"
)

// Auto block sizes must never exceed a skinny dimension's per-rank
// extent — the DefaultBlockSize half of the skinny-dimension rule.
func TestDefaultBlockSizeSkinnyDimensions(t *testing.T) {
	cases := []struct {
		sh   matrix.Shape
		g    topo.Grid
		want int
	}{
		// Square behaviour unchanged.
		{matrix.Square(256), topo.Grid{S: 4, T: 4}, 64},
		{matrix.Square(256), topo.Grid{S: 2, T: 8}, 32},
		// Skinny N: N/T = 512/8 = 64 does not bind, K extents do not
		// bind, full default.
		{matrix.Shape{M: 8192, N: 512, K: 8192}, topo.Grid{S: 8, T: 8}, 64},
		// Skinny N: N/T = 64/8 = 8 caps b at 8 even though K extents
		// would allow 64.
		{matrix.Shape{M: 8192, N: 64, K: 8192}, topo.Grid{S: 8, T: 8}, 8},
		// Skinny K: K/S = 32/4 = 8 caps b.
		{matrix.Shape{M: 4096, N: 4096, K: 32}, topo.Grid{S: 4, T: 4}, 8},
		// Skinny M caps even though it is not a K extent.
		{matrix.Shape{M: 16, N: 4096, K: 4096}, topo.Grid{S: 4, T: 4}, 4},
		// Dimension smaller than the grid degrades to 1 (padding covers it).
		{matrix.Shape{M: 2, N: 4096, K: 4096}, topo.Grid{S: 4, T: 4}, 1},
		// Non-dividing K: the block is bounded so the padding it forces
		// stays under ~12.5% of K (b=32 would pad 100 → 192; b=4 pads to
		// 108).
		{matrix.Square(100), topo.Grid{S: 3, T: 3}, 4},
	}
	for _, c := range cases {
		if got := DefaultBlockSize(c.sh, c.g); got != c.want {
			t.Fatalf("DefaultBlockSize(%v, %v) = %d, want %d", c.sh, c.g, got, c.want)
		}
	}
}

// The enumeration half of the skinny-dimension rule: no candidate's b or
// B may exceed the smallest per-rank tile extent.
func TestBlockEnumerationRespectsSkinnyExtents(t *testing.T) {
	req := Request{
		Platform: platform.Grid5000(),
		Shape:    matrix.Shape{M: 2048, N: 64, K: 2048},
		P:        16,
	}
	cands, err := Candidates(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Algorithm == engine.Cannon || c.Algorithm == engine.Fox {
			t.Fatalf("square-only %s enumerated for rectangular shape", c.Algorithm)
		}
		limit := minTileExtent(req.Shape, c.Grid)
		if c.BlockSize > limit {
			t.Fatalf("candidate %s: b=%d exceeds min tile extent %d", c, c.BlockSize, limit)
		}
		if c.OuterBlockSize > 0 && c.OuterBlockSize > limit {
			t.Fatalf("candidate %s: B=%d exceeds min tile extent %d", c, c.OuterBlockSize, limit)
		}
	}
}

// Tall problems must get tall grids: the planner enumerates grid
// orientation against the aspect ratio, and quick mode picks the
// orientation-matched grid.
func TestPlannerPicksOrientationMatchedGrid(t *testing.T) {
	tall := matrix.Shape{M: 8192, N: 512, K: 8192}
	req := Request{Platform: platform.Grid5000(), Shape: tall, P: 32, Quick: true}
	grids := candidateGrids(req.withDefaults())
	if len(grids) != 1 {
		t.Fatalf("quick mode returned %d grids", len(grids))
	}
	if g := grids[0]; g.S <= g.T {
		t.Fatalf("tall shape got non-tall quick grid %v", g)
	}

	// The full enumeration must contain both orientations.
	full := candidateGrids(Request{Platform: platform.Grid5000(), Shape: tall, P: 32}.withDefaults())
	sawTall, sawWide := false, false
	for _, g := range full {
		if g.S > g.T {
			sawTall = true
		}
		if g.S < g.T {
			sawWide = true
		}
	}
	if !sawTall || !sawWide {
		t.Fatalf("full enumeration missing an orientation: %v", full)
	}

	// End to end: the planned best grid for a tall problem is tall.
	pl, err := NewPlanner().Plan(Request{Platform: platform.Grid5000(), Shape: tall, P: 32, Quick: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if g := pl.Best.Grid; g.S <= g.T {
		t.Fatalf("planner picked grid %v for tall shape %v", g, tall)
	}
	if pl.Shape != tall {
		t.Fatalf("plan shape %v, want %v", pl.Shape, tall)
	}

	// Square requests keep the squarest-grid behaviour.
	sq := candidateGrids(Request{Platform: platform.Grid5000(), Shape: matrix.Square(512), P: 32, Quick: true}.withDefaults())
	if len(sq) != 1 || sq[0] != (topo.Grid{S: 4, T: 8}) {
		t.Fatalf("square quick grid = %v, want 4x8", sq)
	}
}

// Asking the planner for a square-only baseline on a rectangular shape
// must report the shared ErrSquareOnly — the same error Multiply and
// Simulate return.
func TestCandidatesSquareOnlyError(t *testing.T) {
	_, err := Candidates(Request{
		Platform:   platform.Grid5000(),
		Shape:      matrix.Shape{M: 512, N: 128, K: 512},
		P:          16,
		Algorithms: []engine.Algorithm{engine.Cannon, engine.Fox},
	})
	if !errors.Is(err, matrix.ErrSquareOnly) {
		t.Fatalf("got %v, want ErrSquareOnly", err)
	}
}

// The rectangular scorer agrees with the planner's stage-2 simulation
// ranking closely enough to plan rectangles: the refined best of a rect
// request must be executable and report a sensible simulated time.
func TestPlanRectangularEndToEnd(t *testing.T) {
	req := Request{
		Platform: platform.Grid5000Calibrated(),
		Shape:    matrix.Shape{M: 1024, N: 128, K: 1024},
		P:        16, Quick: true, NoCache: true,
	}
	pl, err := NewPlanner().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Best.Refined {
		t.Fatalf("rect best not refined: %+v", pl.Best)
	}
	if pl.Best.SimTotal <= 0 {
		t.Fatalf("non-positive simulated total: %+v", pl.Best)
	}
	if pl.N != 0 {
		t.Fatalf("rect plan echoed square shorthand n=%d", pl.N)
	}
	// The cache fingerprint must distinguish shapes with equal K.
	pl2, err := NewPlanner().Plan(Request{
		Platform: req.Platform,
		Shape:    matrix.Shape{M: 128, N: 1024, K: 1024},
		P:        16, Quick: true, NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(req.withDefaults()) == fingerprint(Request{
		Platform: req.Platform,
		Shape:    matrix.Shape{M: 128, N: 1024, K: 1024},
		P:        16, Quick: true, NoCache: true,
	}.withDefaults()) {
		t.Fatal("transposed shapes share a cache fingerprint")
	}
	_ = pl2
}
