package tune

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/simalg"
	"repro/internal/simnet"
)

// The planner must select sub-cubic arithmetic only where the cost model
// says it wins, and the model must agree with the virtual runs about
// where that is.

// Small problems: the distributed Strassen recursion buys no per-rank
// flops (2 sequential sub-problems ≈ classic's critical path) and the
// local kernel falls through to the classic one below the crossover — the
// planner must stay classic.
func TestPlannerStaysClassicOnSmallProblems(t *testing.T) {
	pl, err := NewPlanner().Plan(Request{
		Platform: platform.Grid5000(), N: 256, P: 16,
		Quick: true, NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Best.Algorithm == engine.Strassen || pl.Best.LocalStrassen {
		t.Fatalf("planner picked sub-cubic config %s at n=256, where it cannot win", pl.Best.Candidate)
	}
}

// Large compute-dominated problems: the local Strassen kernel cuts the
// per-rank flops below 2MNK/p, and nothing else in the candidate space
// can — the planner must turn it on.
func TestPlannerEnablesLocalKernelOnLargeProblems(t *testing.T) {
	pl, err := NewPlanner().Plan(Request{
		Platform: platform.Grid5000(), N: 8192, P: 4,
		Quick: true, AnalyticOnly: true, NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Best.LocalStrassen {
		t.Fatalf("planner kept the classic kernel at n=8192: %s", pl.Best.Candidate)
	}
}

// Wherever the planner ranks a strassen-algorithm candidate above a
// classic one analytically, the virtual run must agree to 5% — otherwise
// the model is steering Auto towards configurations the authoritative
// timing path would reject.
func TestStrassenModelAgreesWithSimulation(t *testing.T) {
	req := Request{
		Platform: platform.Grid5000(), N: 1024, P: 16,
		Algorithms: []engine.Algorithm{engine.SUMMA, engine.Strassen},
		Quick:      true, NoCache: true, TopK: 16,
	}
	pl, err := NewPlanner().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	// Rank by model, rank by simulation: the orderings of the refined set
	// must agree on which family wins, within tolerance.
	var bestModel, bestSim *Scored
	for i := range pl.Ranked {
		s := &pl.Ranked[i]
		if !s.Refined {
			continue
		}
		if bestModel == nil || s.ModelTotal < bestModel.ModelTotal {
			bestModel = s
		}
		if bestSim == nil || s.SimTotal < bestSim.SimTotal {
			bestSim = s
		}
	}
	if bestModel == nil || bestSim == nil {
		t.Fatal("no refined candidates")
	}
	if bestModel.Algorithm != bestSim.Algorithm {
		// Different family picks are tolerable only when the simulated
		// costs are within 5% of each other — i.e. the model's pick is
		// not materially wrong.
		if bestModel.SimTotal > bestSim.SimTotal*1.05 {
			t.Fatalf("model prefers %s (sim %.3g s) but simulation prefers %s (%.3g s)",
				bestModel.Candidate, bestModel.SimTotal, bestSim.Candidate, bestSim.SimTotal)
		}
	}
}

// Every enumerated strassen candidate must resolve and simulate: the
// feasibility filters in the enumeration must match the execution layer's
// validation exactly.
func TestStrassenCandidatesAreRunnable(t *testing.T) {
	req := Request{
		Platform: platform.Grid5000(), N: 512, P: 16,
		Algorithms: []engine.Algorithm{engine.Strassen},
		NoCache:    true,
	}
	cands, err := Candidates(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no strassen candidates on a 4x4 grid")
	}
	sawLevels2, sawGroups := false, false
	for _, c := range cands {
		if c.StrassenLevels == 2 {
			sawLevels2 = true
		}
		if c.StrassenInnerGroups > 0 {
			sawGroups = true
		}
		spec, err := c.Spec(matrix.Square(req.N))
		if err != nil {
			t.Fatalf("candidate %s does not resolve: %v", c, err)
		}
		if _, _, err := simalg.RunSpec(spec, simnet.VConfig{Model: req.Platform.Model}); err != nil {
			t.Fatalf("candidate %s does not simulate: %v", c, err)
		}
	}
	if !sawLevels2 {
		t.Fatal("full-mode enumeration proposed no two-level recursion on a 4x4 grid")
	}
	if !sawGroups {
		t.Fatal("full-mode enumeration proposed no HSUMMA bottom")
	}
}
