package tune

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simalg"
	"repro/internal/simnet"
)

// Planner runs the two-stage search and memoises its results. The zero
// value is not usable; use NewPlanner (or the package-level Plan, which
// shares one default planner and hence one cache).
type Planner struct {
	// MaxParallel caps the concurrent stage-2 virtual runs (default:
	// GOMAXPROCS). Each virtual run is itself parallel across its ranks,
	// so a small cap keeps the host responsive.
	MaxParallel int

	mu    sync.Mutex
	cache map[string]*Plan

	hits, misses, simRuns atomic.Int64
	refineNanos           atomic.Int64
}

// NewPlanner returns an empty planner with its own plan cache.
func NewPlanner() *Planner {
	return &Planner{cache: make(map[string]*Plan)}
}

// defaultPlanner backs the package-level Plan; its cache is shared by every
// caller that does not construct a Planner of its own (hsumma.Multiply,
// hsumma.Simulate and the CLI all route here, so a serving workload pays
// each distinct search once per process).
var defaultPlanner = NewPlanner()

// PlanFor runs (or serves from cache) the search for req on the shared
// default planner.
func PlanFor(req Request) (*Plan, error) { return defaultPlanner.Plan(req) }

// Stats reports the shared default planner's counters.
func Stats() PlannerStats { return defaultPlanner.Stats() }

// PlannerStats are the planner's observability counters.
type PlannerStats struct {
	CacheHits   int64
	CacheMisses int64
	// SimRuns counts stage-2 virtual runs executed (not served from the
	// plan cache) — the expensive quantity the cache exists to avoid.
	SimRuns int64
	// RefineNanos is the cumulative wall time spent inside the stage-2
	// refinement (the virtual runs), across all cold plans. Together with
	// SimRuns it shows what the event engine buys: the same picks at a
	// fraction of the refinement wall time.
	RefineNanos int64
}

// RefineTime is RefineNanos as a duration.
func (s PlannerStats) RefineTime() time.Duration { return time.Duration(s.RefineNanos) }

// Stats returns a snapshot of the planner's counters.
func (p *Planner) Stats() PlannerStats {
	return PlannerStats{
		CacheHits:   p.hits.Load(),
		CacheMisses: p.misses.Load(),
		SimRuns:     p.simRuns.Load(),
		RefineNanos: p.refineNanos.Load(),
	}
}

// fingerprint canonicalises everything that changes a plan's outcome:
// the platform's Hockney parameters and contention class, the problem, and
// every search flag. Two requests with equal fingerprints are guaranteed
// the same plan, so the cache may serve one for the other.
func fingerprint(req Request) string {
	var b strings.Builder
	pf := req.Platform
	fmt.Fprintf(&b, "pf=%s|a=%g|b=%g|g=%g|cont=%d|deg=%d",
		pf.Name, pf.Model.Alpha, pf.Model.Beta, pf.Model.Gamma, pf.Contention, pf.TorusDegree)
	fmt.Fprintf(&b, "|M=%d|N=%d|K=%d|p=%d|obj=%s|k=%d|quick=%t|analytic=%t|contention=%t|overlap=%t",
		req.Shape.M, req.Shape.N, req.Shape.K, req.P, req.Objective, req.TopK, req.Quick, req.AnalyticOnly, req.Contention, req.Overlap)
	if req.Grid != nil {
		fmt.Fprintf(&b, "|grid=%dx%d", req.Grid.S, req.Grid.T)
	}
	if req.BlockSize > 0 {
		fmt.Fprintf(&b, "|b=%d", req.BlockSize)
	}
	if req.OuterBlockSize > 0 {
		fmt.Fprintf(&b, "|B=%d", req.OuterBlockSize)
	}
	// The hybrid knobs change both the candidate space and the scores, so
	// they join the identity; serial requests keep their historical keys.
	if req.Threads > 0 {
		fmt.Fprintf(&b, "|t=%d", req.Threads)
	}
	if req.CoreBudget > 0 {
		fmt.Fprintf(&b, "|cores=%d", req.CoreBudget)
	}
	fmt.Fprintf(&b, "|algs=%v|bcasts=%v|exec=%s", req.Algorithms, req.Broadcasts, req.Executor)
	return b.String()
}

// Plan searches the configuration space for req and returns the ranked
// plan. Results are memoised: a repeated request (same platform
// fingerprint, problem and flags) returns the cached plan with FromCache
// set, paying no analytic scan and no virtual runs.
func (p *Planner) Plan(req Request) (*Plan, error) {
	req = req.withDefaults()
	if err := req.validate(); err != nil {
		return nil, err
	}
	key := fingerprint(req)
	if !req.NoCache {
		p.mu.Lock()
		cached := p.cache[key]
		p.mu.Unlock()
		if cached != nil {
			p.hits.Add(1)
			out := copyPlan(cached)
			out.FromCache = true
			return out, nil
		}
		p.misses.Add(1)
	}

	plan, err := p.plan(req)
	if err != nil {
		return nil, err
	}
	if !req.NoCache {
		p.mu.Lock()
		p.cache[key] = plan
		p.mu.Unlock()
	}
	return copyPlan(plan), nil
}

// Invalidate drops the memoised plan for req, returning whether one was
// cached. The serving layer's drift tracker calls it (through the
// package-level wrapper) when a spec's measured/predicted ratio drifts
// persistently: the next request for the shape replans from current
// calibration instead of serving the stale cached pick.
func (p *Planner) Invalidate(req Request) bool {
	req = req.withDefaults()
	key := fingerprint(req)
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.cache[key]
	delete(p.cache, key)
	return ok
}

// InvalidatePlan drops the shared default planner's memoised plan for req.
func InvalidatePlan(req Request) bool { return defaultPlanner.Invalidate(req) }

// copyPlan returns a caller-owned copy: the Ranked slice is duplicated so
// a caller re-sorting or editing its plan cannot corrupt the cached one.
func copyPlan(pl *Plan) *Plan {
	out := *pl
	out.Ranked = append([]Scored(nil), pl.Ranked...)
	return &out
}

func (p *Planner) plan(req Request) (*Plan, error) {
	cands, err := Candidates(req)
	if err != nil {
		return nil, err
	}

	// Stage 1: closed-form scoring of the whole space.
	sc := newScorer(req.Shape, req.Platform.Model, req.Overlap)
	scored := make([]Scored, len(cands))
	for i, c := range cands {
		comm, total := sc.score(c)
		scored[i] = Scored{Candidate: c, ModelComm: comm, ModelTotal: total}
	}
	sort.SliceStable(scored, func(i, j int) bool {
		return scored[i].objective(req.Objective) < scored[j].objective(req.Objective)
	})

	top := scored
	if len(top) > req.TopK {
		top = top[:req.TopK]
	}
	top = append([]Scored(nil), top...)
	// Attach the per-phase model decomposition to the refinement set only
	// (not all thousands of scanned candidates): these are the entries a
	// plan surfaces, and the winner's map is what the execution spec — and
	// the serving drift tracker — carries forward.
	for i := range top {
		top[i].PredictedSecondsByPhase = sc.predictPhases(top[i].Candidate)
	}

	// Stage 2: parallel virtual runs over the stage-1 winners — the
	// authoritative ranking, including contention and overlap if asked.
	simulated := 0
	if !req.AnalyticOnly {
		p.refine(req, top)
		for i := range top {
			if top[i].Refined {
				simulated++
			}
		}
		rank(top, req.Objective)
	}
	if top[0].Err != "" {
		return nil, fmt.Errorf("tune: every refined candidate failed; best: %s: %s", top[0].Candidate, top[0].Err)
	}
	n := 0
	if req.Shape.IsSquare() {
		n = req.Shape.N
	}
	return &Plan{
		Platform:   req.Platform.Name,
		Shape:      req.Shape,
		N:          n,
		P:          req.P,
		CoreBudget: req.CoreBudget,
		Objective:  req.Objective,
		Best:       top[0],
		Ranked:     top,
		Scanned:    len(cands),
		Simulated:  simulated,
		Engine:     string(req.Executor), // normalised by withDefaults
	}, nil
}

// refine runs the stage-2 virtual runs for the given candidates in
// parallel, filling their Sim fields in place. Each run goes through the
// requested executor policy (default auto, which picks the event engine
// for collective-only candidates — the bulk of any top-K set); the
// cumulative wall time is tracked in RefineNanos.
func (p *Planner) refine(req Request, top []Scored) {
	start := time.Now()
	defer func() { p.refineNanos.Add(int64(time.Since(start))) }()
	maxPar := p.MaxParallel
	if maxPar <= 0 {
		maxPar = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, maxPar)
	var wg sync.WaitGroup
	for i := range top {
		wg.Add(1)
		go func(s *Scored) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			spec, err := s.Candidate.Spec(req.Shape)
			if err != nil {
				s.Err = err.Error()
				return
			}
			vcfg := simnet.VConfig{Model: req.Platform.Model, Overlap: req.Overlap}
			if req.Contention {
				vcfg.Contention = simnet.ContentionFor(req.Platform, s.Candidate.Grid.Size(), true)
			}
			p.simRuns.Add(1)
			res, _, err := simalg.RunSpecOn(spec, vcfg, req.Executor)
			if err != nil {
				s.Err = err.Error()
				return
			}
			s.SimComm, s.SimTotal, s.Refined = res.Comm, res.Total, true
			s.Engine = string(res.Engine)
		}(&top[i])
	}
	wg.Wait()
}
