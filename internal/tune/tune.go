// Package tune is the model-driven autotuning planner: given a platform
// (Hockney machine plus contention description), a problem size n and a
// processor count p, it searches the configuration space the paper leaves
// to the reader — algorithm × group hierarchy × grid shape × block sizes ×
// broadcast variant — and returns a ranked Plan.
//
// The search runs in two stages, mirroring how the paper itself proceeds
// from Tables I–II to measurements:
//
//  1. every feasible candidate is scored analytically with the closed-form
//     broadcast models of internal/model under the platform's Hockney
//     parameters (microseconds per candidate, so thousands are scanned);
//
//  2. the top-K candidates by analytic score are re-ranked by parallel
//     virtual runs on the simnet communicator — the authoritative timing
//     path, which executes the real schedules and honours contention and
//     overlap when requested.
//
// Plans are memoised in a cache keyed by (platform fingerprint, n, p,
// search flags), so serving-style workloads that repeatedly ask "how should
// I multiply n×n on this machine?" pay the search once.
package tune

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/topo"
)

// Objective selects the quantity the planner minimises.
type Objective string

const (
	// MinTotal minimises simulated execution time (communication plus
	// computation) — the paper's Figure 8 quantity, and the default.
	MinTotal Objective = "total"
	// MinComm minimises communication time only (Figures 5–7, 9).
	MinComm Objective = "comm"
)

// Request describes one planning problem.
type Request struct {
	// Platform is the machine to tune for (preset or calibrated model).
	Platform platform.Platform
	// N is the matrix dimension, P the processor count.
	N, P int
	// Grid optionally pins the process grid (otherwise every feasible
	// S×T factorisation of P is searched).
	Grid *topo.Grid
	// BlockSize optionally pins the paper's b (otherwise the feasible
	// power-of-two blocks are searched). The paper's G sweeps hold b
	// fixed, so figure annotation pins it too.
	BlockSize int
	// OuterBlockSize optionally pins HSUMMA's B (otherwise b and its
	// feasible multiples are searched; the paper sets B = b throughout).
	OuterBlockSize int
	// Algorithms restricts the candidate algorithms; nil means SUMMA,
	// HSUMMA, Cannon and Fox (Multilevel joins when listed explicitly).
	Algorithms []engine.Algorithm
	// Broadcasts restricts the broadcast variants; nil means binomial,
	// Van de Geijn and (in full mode) binary.
	Broadcasts []sched.Algorithm
	// Objective defaults to MinTotal.
	Objective Objective
	// TopK is the number of stage-1 winners refined by simulation
	// (default 8).
	TopK int
	// Quick trims the candidate space (fewer block sizes, power-of-two
	// group counts, squarest grid only) so a plan completes in well under
	// a second — the mode tests and CI smoke runs use.
	Quick bool
	// AnalyticOnly skips the stage-2 simulation refinement entirely; the
	// ranking is by closed-form cost. Used for very large p, where even a
	// virtual run is expensive.
	AnalyticOnly bool
	// Contention enables the platform's link-sharing model during the
	// stage-2 virtual runs.
	Contention bool
	// Overlap enables communication/computation overlap in stage 2 (and
	// scores stage 1 as max(comm, compute) instead of their sum).
	Overlap bool
	// Executor selects the virtual execution engine for the stage-2
	// refinement runs (goroutine | event | auto); empty means auto, which
	// picks the event engine for collective-only candidates. Engines are
	// bit-identical, so the choice cannot change the plan — only its wall
	// time; plans record what ran (see Scored.Engine).
	Executor engine.Executor
	// NoCache bypasses the plan cache for this request.
	NoCache bool
}

func (r Request) withDefaults() Request {
	if r.Objective == "" {
		r.Objective = MinTotal
	}
	if r.Executor == "" {
		// Normalise before fingerprinting so "" and "auto" — the same
		// policy — share a cache entry.
		r.Executor = engine.ExecutorAuto
	}
	if r.TopK <= 0 {
		r.TopK = 8
	}
	if len(r.Algorithms) == 0 {
		r.Algorithms = []engine.Algorithm{engine.SUMMA, engine.HSUMMA, engine.Cannon, engine.Fox}
	}
	if len(r.Broadcasts) == 0 {
		r.Broadcasts = []sched.Algorithm{sched.Binomial, sched.VanDeGeijn}
		if !r.Quick {
			r.Broadcasts = append(r.Broadcasts, sched.Binary)
		}
	}
	return r
}

func (r Request) validate() error {
	if r.N <= 0 || r.P <= 0 {
		return fmt.Errorf("tune: invalid problem n=%d p=%d", r.N, r.P)
	}
	if r.Grid != nil && r.Grid.Size() != r.P {
		return fmt.Errorf("tune: pinned grid %v does not hold %d procs", *r.Grid, r.P)
	}
	return nil
}

// Candidate is one fully specified configuration the planner can score,
// simulate and hand to the engine.
type Candidate struct {
	Algorithm engine.Algorithm `json:"algorithm"`
	Grid      topo.Grid        `json:"grid"`
	// Groups and GroupShape describe the HSUMMA hierarchy (G = I×J).
	Groups     int    `json:"groups,omitempty"`
	GroupShape [2]int `json:"group_shape,omitempty"`
	BlockSize  int    `json:"block_size,omitempty"`
	// OuterBlockSize is HSUMMA's B (0 = b).
	OuterBlockSize int             `json:"outer_block_size,omitempty"`
	Broadcast      sched.Algorithm `json:"broadcast,omitempty"`
	Segments       int             `json:"segments,omitempty"`
	Levels         []core.Level    `json:"levels,omitempty"`
}

// Spec resolves the candidate into the engine's transport-independent run
// description — the same value hsumma.Multiply and hsumma.Simulate execute.
func (c Candidate) Spec(n int) (engine.Spec, error) {
	opts := core.Options{
		N: n, Grid: c.Grid,
		BlockSize:      c.BlockSize,
		OuterBlockSize: c.OuterBlockSize,
		Broadcast:      c.Broadcast,
		Segments:       c.Segments,
	}
	if c.Algorithm == engine.HSUMMA {
		h, err := topo.NewHier(c.Grid, c.GroupShape[0], c.GroupShape[1])
		if err != nil {
			return engine.Spec{}, err
		}
		opts.Groups = h
	}
	return engine.Spec{Algorithm: c.Algorithm, Opts: opts, Levels: c.Levels}, nil
}

func (c Candidate) String() string {
	s := fmt.Sprintf("%s grid=%v", c.Algorithm, c.Grid)
	if c.Algorithm == engine.HSUMMA {
		s += fmt.Sprintf(" G=%d(%dx%d)", c.Groups, c.GroupShape[0], c.GroupShape[1])
	}
	if c.BlockSize > 0 {
		s += fmt.Sprintf(" b=%d", c.BlockSize)
		if c.OuterBlockSize > 0 && c.OuterBlockSize != c.BlockSize {
			s += fmt.Sprintf(" B=%d", c.OuterBlockSize)
		}
	}
	for _, lv := range c.Levels {
		s += fmt.Sprintf(" L%dx%d:%d", lv.I, lv.J, lv.BlockSize)
	}
	if c.Broadcast != "" {
		s += " bcast=" + string(c.Broadcast)
	}
	return s
}

// Scored is a candidate with its stage-1 (closed-form) and, when refined,
// stage-2 (simulated) costs in seconds.
type Scored struct {
	Candidate
	ModelComm  float64 `json:"model_comm_s"`
	ModelTotal float64 `json:"model_total_s"`
	SimComm    float64 `json:"sim_comm_s,omitempty"`
	SimTotal   float64 `json:"sim_total_s,omitempty"`
	// Refined reports whether the stage-2 virtual run was performed.
	Refined bool `json:"refined"`
	// Engine records which virtual execution engine scored the candidate
	// in stage 2 ("goroutine" or "event"), empty when not refined.
	Engine string `json:"engine,omitempty"`
	// Err records a stage-2 failure (the candidate is ranked last).
	Err string `json:"err,omitempty"`
}

// objective returns the value the plan ranks by: the simulated cost when
// available, the analytic one otherwise.
func (s Scored) objective(o Objective) float64 {
	if s.Refined {
		if o == MinComm {
			return s.SimComm
		}
		return s.SimTotal
	}
	if o == MinComm {
		return s.ModelComm
	}
	return s.ModelTotal
}

// Plan is the planner's answer: the best configuration plus the ranked
// refinement set and search statistics.
type Plan struct {
	Platform  string    `json:"platform"`
	N         int       `json:"n"`
	P         int       `json:"p"`
	Objective Objective `json:"objective"`
	// Best is Ranked[0], repeated for convenience.
	Best Scored `json:"best"`
	// Ranked holds the stage-2 refinement set, best first; entries beyond
	// it were rejected analytically.
	Ranked []Scored `json:"ranked"`
	// Scanned counts the candidates scored analytically in stage 1;
	// Simulated counts the stage-2 virtual runs.
	Scanned   int `json:"scanned"`
	Simulated int `json:"simulated"`
	// Engine is the executor policy the refinement ran under ("auto",
	// "goroutine" or "event"); per-candidate resolution is in
	// Ranked[i].Engine.
	Engine string `json:"engine,omitempty"`
	// FromCache reports that this plan was served from the plan cache.
	FromCache bool `json:"from_cache,omitempty"`
}

// DefaultBlockSize is the shared "BlockSize: 0 means auto" rule used by
// both execution paths (hsumma.Multiply and hsumma.Simulate) and by the
// planner's b search as its fallback: the largest power-of-two block (≤64)
// dividing both tile dimensions, degrading to 1 when the tiles are odd.
func DefaultBlockSize(n int, g topo.Grid) int {
	b := 64
	for b > 1 && ((n/g.S)%b != 0 || (n/g.T)%b != 0) {
		b /= 2
	}
	return b
}

// Candidates enumerates the feasible configuration space for a request —
// exactly the space Plan searches, exported so tests can sweep it
// exhaustively and compare against the planner's choice.
func Candidates(req Request) ([]Candidate, error) {
	req = req.withDefaults()
	if err := req.validate(); err != nil {
		return nil, err
	}
	grids := candidateGrids(req)
	if len(grids) == 0 {
		return nil, fmt.Errorf("tune: no process grid of %d ranks divides n=%d", req.P, req.N)
	}
	var out []Candidate
	for _, g := range grids {
		bs := blockCandidates(req.N, g, req.Quick)
		if req.BlockSize > 0 {
			if (req.N/g.S)%req.BlockSize != 0 || (req.N/g.T)%req.BlockSize != 0 {
				continue
			}
			bs = []int{req.BlockSize}
		}
		for _, alg := range req.Algorithms {
			switch alg {
			case engine.SUMMA:
				for _, b := range bs {
					for _, bc := range req.Broadcasts {
						out = append(out, Candidate{Algorithm: alg, Grid: g, BlockSize: b, Broadcast: bc})
					}
				}
			case engine.HSUMMA:
				for _, G := range groupCandidates(g, req.Quick) {
					h, err := topo.FactorGroups(g, G)
					if err != nil {
						continue
					}
					for _, b := range bs {
						for _, B := range outerBlockCandidates(req, g, b) {
							for _, bc := range req.Broadcasts {
								out = append(out, Candidate{
									Algorithm: alg, Grid: g,
									Groups: G, GroupShape: [2]int{h.I, h.J},
									BlockSize: b, OuterBlockSize: B, Broadcast: bc,
								})
							}
						}
					}
				}
			case engine.Multilevel:
				out = append(out, multilevelCandidates(req, g, bs)...)
			case engine.Cannon:
				// Cannon needs a square grid with tiles aligned to it.
				if g.S == g.T && req.N%g.S == 0 {
					out = append(out, Candidate{Algorithm: alg, Grid: g})
				}
			case engine.Fox:
				if g.S == g.T && req.N%g.S == 0 {
					for _, bc := range req.Broadcasts {
						out = append(out, Candidate{Algorithm: alg, Grid: g, Broadcast: bc})
					}
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tune: no feasible candidate for n=%d p=%d", req.N, req.P)
	}
	return out, nil
}

// candidateGrids lists the process grids the search considers: every S×T
// factorisation of P whose dimensions divide N (the algorithms' layout
// constraint), skewed no worse than 8:1 when a squarer choice exists.
// Quick mode keeps only the squarest feasible grid, since grid shape is a
// second-order effect the paper holds fixed.
func candidateGrids(req Request) []topo.Grid {
	if req.Grid != nil {
		if req.N%req.Grid.S == 0 && req.N%req.Grid.T == 0 {
			return []topo.Grid{*req.Grid}
		}
		return nil
	}
	var all []topo.Grid
	for s := 1; s*s <= req.P; s++ {
		if req.P%s != 0 {
			continue
		}
		t := req.P / s
		if req.N%s != 0 || req.N%t != 0 {
			continue
		}
		all = append(all, topo.Grid{S: s, T: t})
	}
	if len(all) == 0 {
		return nil
	}
	// all is ordered by increasing S, so the last entry is the squarest.
	squarest := all[len(all)-1]
	if req.Quick {
		return []topo.Grid{squarest}
	}
	kept := all[:0]
	for _, g := range all {
		if g == squarest || g.T <= 8*g.S {
			kept = append(kept, g)
		}
	}
	return kept
}

// blockCandidates lists the power-of-two block sizes dividing both tile
// dimensions, within the paper's experimental range [16, 512] (smaller ones
// admitted only when nothing in range divides). Quick mode keeps at most
// three, spread across the range.
func blockCandidates(n int, g topo.Grid, quick bool) []int {
	var bs []int
	for b := 1; b <= 512; b *= 2 {
		if (n/g.S)%b == 0 && (n/g.T)%b == 0 {
			bs = append(bs, b)
		}
	}
	// Prefer the paper's range; tiny blocks only as a last resort.
	inRange := bs[:0:0]
	for _, b := range bs {
		if b >= 16 {
			inRange = append(inRange, b)
		}
	}
	if len(inRange) > 0 {
		bs = inRange
	}
	if quick && len(bs) > 3 {
		bs = []int{bs[0], bs[len(bs)/2], bs[len(bs)-1]}
	}
	return bs
}

// groupCandidates lists the HSUMMA group counts to try on a grid: every
// feasible G in full mode, the power-of-two subset (plus endpoints) in
// quick mode — the same subset the paper's figures sweep.
func groupCandidates(g topo.Grid, quick bool) []int {
	counts := topo.ValidGroupCounts(g)
	if !quick {
		return counts
	}
	var out []int
	for _, G := range counts {
		if G&(G-1) == 0 || G == g.Size() {
			out = append(out, G)
		}
	}
	return out
}

// outerBlockCandidates lists HSUMMA's B values for a given b: B = b (the
// paper's configuration) plus, in full mode, the feasible multiples 2b and
// 4b (§III: the inter-group block should be at least the intra-group one).
// A pinned Request.OuterBlockSize replaces the search.
func outerBlockCandidates(req Request, g topo.Grid, b int) []int {
	if B := req.OuterBlockSize; B > 0 {
		if B%b != 0 || (req.N/g.S)%B != 0 || (req.N/g.T)%B != 0 {
			return nil
		}
		return []int{B}
	}
	out := []int{b}
	if req.Quick {
		return out
	}
	for _, mult := range []int{2, 4} {
		B := b * mult
		if (req.N/g.S)%B == 0 && (req.N/g.T)%B == 0 {
			out = append(out, B)
		}
	}
	return out
}

// multilevelCandidates proposes three-level hierarchies (two grouping
// levels over the flat grid): 2×2 and 4×4 outer groupings with halving
// panel widths, filtered by the multilevel divisibility rules. The
// two-level case is already covered by the HSUMMA candidates.
func multilevelCandidates(req Request, g topo.Grid, bs []int) []Candidate {
	var out []Candidate
	shapes := [][2][2]int{
		{{2, 2}, {2, 2}},
		{{4, 4}, {2, 2}},
	}
	for _, shape := range shapes {
		i1, j1 := shape[0][0], shape[0][1]
		i2, j2 := shape[1][0], shape[1][1]
		if g.S%(i1*i2) != 0 || g.T%(j1*j2) != 0 {
			continue
		}
		for _, b := range bs {
			top := 4 * b
			if (req.N/g.S)%top != 0 || (req.N/g.T)%top != 0 {
				continue
			}
			for _, bc := range req.Broadcasts {
				out = append(out, Candidate{
					Algorithm: engine.Multilevel, Grid: g, BlockSize: b, Broadcast: bc,
					Levels: []core.Level{
						{I: i1, J: j1, BlockSize: top},
						{I: i2, J: j2, BlockSize: 2 * b},
					},
				})
			}
		}
	}
	return out
}

// rank sorts scored candidates by the request's objective, errors last.
func rank(scored []Scored, o Objective) {
	sort.SliceStable(scored, func(i, j int) bool {
		if (scored[i].Err == "") != (scored[j].Err == "") {
			return scored[i].Err == ""
		}
		return scored[i].objective(o) < scored[j].objective(o)
	})
}
