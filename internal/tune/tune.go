// Package tune is the model-driven autotuning planner: given a platform
// (Hockney machine plus contention description), a GEMM problem shape
// (M, N, K — or the square shorthand n) and a processor count p, it
// searches the configuration space the paper leaves to the reader —
// algorithm × group hierarchy × grid shape and orientation × block sizes
// × broadcast variant — and returns a ranked Plan.
//
// The search runs in two stages, mirroring how the paper itself proceeds
// from Tables I–II to measurements:
//
//  1. every feasible candidate is scored analytically with the closed-form
//     broadcast models of internal/model under the platform's Hockney
//     parameters (microseconds per candidate, so thousands are scanned);
//
//  2. the top-K candidates by analytic score are re-ranked by parallel
//     virtual runs on the simnet communicator — the authoritative timing
//     path, which executes the real schedules and honours contention and
//     overlap when requested.
//
// Plans are memoised in a cache keyed by (platform fingerprint, n, p,
// search flags), so serving-style workloads that repeatedly ask "how should
// I multiply n×n on this machine?" pay the search once.
package tune

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/topo"
)

// Objective selects the quantity the planner minimises.
type Objective string

const (
	// MinTotal minimises simulated execution time (communication plus
	// computation) — the paper's Figure 8 quantity, and the default.
	MinTotal Objective = "total"
	// MinComm minimises communication time only (Figures 5–7, 9).
	MinComm Objective = "comm"
)

// Request describes one planning problem.
type Request struct {
	// Platform is the machine to tune for (preset or calibrated model).
	Platform platform.Platform
	// Shape is the GEMM problem C (M×N) += A (M×K)·B (K×N); the zero
	// value defers to N, the square shorthand.
	Shape matrix.Shape
	// N is the square matrix dimension (ignored when Shape is set), P the
	// processor count.
	N, P int
	// Grid optionally pins the process grid (otherwise every feasible
	// S×T factorisation of P is searched).
	Grid *topo.Grid
	// BlockSize optionally pins the paper's b (otherwise the feasible
	// power-of-two blocks are searched). The paper's G sweeps hold b
	// fixed, so figure annotation pins it too.
	BlockSize int
	// Threads optionally pins the per-rank thread budget (the hybrid
	// MPI+OpenMP knob). 0 leaves it to the search: 1 when no CoreBudget
	// is given, the (ranks × threads) sweep otherwise.
	Threads int
	// CoreBudget, when positive, makes the planner trade grid size
	// against intra-rank parallelism: instead of planning for exactly P
	// ranks it enumerates (p = CoreBudget/t, t) splits for power-of-two
	// thread counts t, every candidate consuming at most CoreBudget
	// cores — the serving layer's accounting unit. P is ignored (a
	// pinned Grid constrains p; a pinned Threads constrains t).
	CoreBudget int
	// OuterBlockSize optionally pins HSUMMA's B (otherwise b and its
	// feasible multiples are searched; the paper sets B = b throughout).
	OuterBlockSize int
	// Algorithms restricts the candidate algorithms; nil means SUMMA,
	// HSUMMA, Cannon and Fox (Multilevel joins when listed explicitly).
	Algorithms []engine.Algorithm
	// Broadcasts restricts the broadcast variants; nil means binomial,
	// Van de Geijn and (in full mode) binary.
	Broadcasts []sched.Algorithm
	// Objective defaults to MinTotal.
	Objective Objective
	// TopK is the number of stage-1 winners refined by simulation
	// (default 8).
	TopK int
	// Quick trims the candidate space (fewer block sizes, power-of-two
	// group counts, squarest grid only) so a plan completes in well under
	// a second — the mode tests and CI smoke runs use.
	Quick bool
	// AnalyticOnly skips the stage-2 simulation refinement entirely; the
	// ranking is by closed-form cost. Used for very large p, where even a
	// virtual run is expensive.
	AnalyticOnly bool
	// Contention enables the platform's link-sharing model during the
	// stage-2 virtual runs.
	Contention bool
	// Overlap enables communication/computation overlap in stage 2 (and
	// scores stage 1 as max(comm, compute) instead of their sum).
	Overlap bool
	// Executor selects the virtual execution engine for the stage-2
	// refinement runs (goroutine | event | auto); empty means auto, which
	// picks the event engine for collective-only candidates. Engines are
	// bit-identical, so the choice cannot change the plan — only its wall
	// time; plans record what ran (see Scored.Engine).
	Executor engine.Executor
	// NoCache bypasses the plan cache for this request.
	NoCache bool
}

func (r Request) withDefaults() Request {
	if r.Shape.IsZero() {
		r.Shape = matrix.Square(r.N)
	}
	if r.Objective == "" {
		r.Objective = MinTotal
	}
	if r.Executor == "" {
		// Normalise before fingerprinting so "" and "auto" — the same
		// policy — share a cache entry.
		r.Executor = engine.ExecutorAuto
	}
	if r.TopK <= 0 {
		r.TopK = 8
	}
	if len(r.Algorithms) == 0 {
		r.Algorithms = []engine.Algorithm{engine.SUMMA, engine.HSUMMA, engine.Cannon, engine.Fox, engine.Strassen}
	}
	if len(r.Broadcasts) == 0 {
		r.Broadcasts = []sched.Algorithm{sched.Binomial, sched.VanDeGeijn}
		if !r.Quick {
			r.Broadcasts = append(r.Broadcasts, sched.Binary)
		}
	}
	return r
}

func (r Request) validate() error {
	// The same dimension-naming validation Multiply and Simulate apply,
	// so all three public surfaces report identical shape errors.
	if err := r.Shape.Validate(); err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	if r.CoreBudget > 0 {
		// Under a core budget the rank count is searched, not pinned; a
		// pinned grid (and/or thread count) must still fit the budget.
		t := r.Threads
		if t < 1 {
			t = 1
		}
		if r.Grid != nil && r.Grid.Size()*t > r.CoreBudget {
			return fmt.Errorf("tune: pinned grid %v × %d threads exceeds core budget %d", *r.Grid, t, r.CoreBudget)
		}
		if r.Threads > r.CoreBudget {
			return fmt.Errorf("tune: pinned threads %d exceeds core budget %d", r.Threads, r.CoreBudget)
		}
		return nil
	}
	if r.P <= 0 {
		return fmt.Errorf("tune: invalid processor count p=%d", r.P)
	}
	if r.Grid != nil && r.Grid.Size() != r.P {
		return fmt.Errorf("tune: pinned grid %v does not hold %d procs", *r.Grid, r.P)
	}
	return nil
}

// rankThreadPairs lists the (ranks, threads-per-rank) splits the search
// covers. Without a CoreBudget there is exactly one: the requested P with
// the pinned thread count (default 1). Under a CoreBudget every
// power-of-two thread count is paired with the rank count that fills the
// budget, so the planner can answer "64 cores: 64×1, 32×2, 16×4, …?" with
// the cost model arbitrating grid-level communication against intra-rank
// speedup.
func rankThreadPairs(req Request) [][2]int {
	if req.CoreBudget <= 0 {
		t := req.Threads
		if t < 1 {
			t = 1
		}
		return [][2]int{{req.P, t}}
	}
	var out [][2]int
	for t := 1; t <= req.CoreBudget; t *= 2 {
		if req.Threads > 0 && t != req.Threads {
			continue
		}
		p := req.CoreBudget / t
		if req.Grid != nil {
			if req.Grid.Size()*t > req.CoreBudget {
				break
			}
			p = req.Grid.Size()
		}
		if p < 1 {
			break
		}
		out = append(out, [2]int{p, t})
	}
	return out
}

// Candidate is one fully specified configuration the planner can score,
// simulate and hand to the engine.
type Candidate struct {
	Algorithm engine.Algorithm `json:"algorithm"`
	Grid      topo.Grid        `json:"grid"`
	// Groups and GroupShape describe the HSUMMA hierarchy (G = I×J).
	Groups     int    `json:"groups,omitempty"`
	GroupShape [2]int `json:"group_shape,omitempty"`
	BlockSize  int    `json:"block_size,omitempty"`
	// OuterBlockSize is HSUMMA's B (0 = b).
	OuterBlockSize int             `json:"outer_block_size,omitempty"`
	Broadcast      sched.Algorithm `json:"broadcast,omitempty"`
	Segments       int             `json:"segments,omitempty"`
	Levels         []core.Level    `json:"levels,omitempty"`
	// Threads is the per-rank thread budget (0 and 1 both mean serial);
	// the candidate consumes Grid.Size() × max(1, Threads) cores.
	Threads int `json:"threads,omitempty"`
	// StrassenLevels is the quadrant recursion depth for the strassen
	// algorithm (0 = one level); StrassenInnerGroups > 0 selects an HSUMMA
	// bottom with that group count.
	StrassenLevels      int `json:"strassen_levels,omitempty"`
	StrassenInnerGroups int `json:"strassen_inner_groups,omitempty"`
	// LocalStrassen runs the sub-cubic rank-local kernel (any algorithm);
	// StrassenCutoff is its recursion cutoff (0 = blas default).
	LocalStrassen  bool `json:"local_strassen,omitempty"`
	StrassenCutoff int  `json:"strassen_cutoff,omitempty"`
}

// Cores returns the candidate's total core consumption — the quantity a
// CoreBudget bounds and the serving scheduler leases.
func (c Candidate) Cores() int {
	t := c.Threads
	if t < 1 {
		t = 1
	}
	return c.Grid.Size() * t
}

// Spec resolves the candidate into the engine's transport-independent run
// description — the same value hsumma.Multiply and hsumma.Simulate execute.
func (c Candidate) Spec(sh matrix.Shape) (engine.Spec, error) {
	opts := core.Options{
		Shape: sh, Grid: c.Grid,
		BlockSize:           c.BlockSize,
		OuterBlockSize:      c.OuterBlockSize,
		Broadcast:           c.Broadcast,
		Segments:            c.Segments,
		Threads:             c.Threads,
		StrassenLevels:      c.StrassenLevels,
		StrassenInnerGroups: c.StrassenInnerGroups,
		LocalStrassen:       c.LocalStrassen,
		StrassenCutoff:      c.StrassenCutoff,
	}
	if c.Algorithm == engine.HSUMMA {
		h, err := topo.NewHier(c.Grid, c.GroupShape[0], c.GroupShape[1])
		if err != nil {
			return engine.Spec{}, err
		}
		opts.Groups = h
	}
	return engine.Spec{Algorithm: c.Algorithm, Opts: opts, Levels: c.Levels}, nil
}

func (c Candidate) String() string {
	s := fmt.Sprintf("%s grid=%v", c.Algorithm, c.Grid)
	if c.Algorithm == engine.HSUMMA {
		s += fmt.Sprintf(" G=%d(%dx%d)", c.Groups, c.GroupShape[0], c.GroupShape[1])
	}
	if c.BlockSize > 0 {
		s += fmt.Sprintf(" b=%d", c.BlockSize)
		if c.OuterBlockSize > 0 && c.OuterBlockSize != c.BlockSize {
			s += fmt.Sprintf(" B=%d", c.OuterBlockSize)
		}
	}
	for _, lv := range c.Levels {
		s += fmt.Sprintf(" L%dx%d:%d", lv.I, lv.J, lv.BlockSize)
	}
	if c.Broadcast != "" {
		s += " bcast=" + string(c.Broadcast)
	}
	if c.Threads > 1 {
		s += fmt.Sprintf(" t=%d", c.Threads)
	}
	if c.Algorithm == engine.Strassen {
		s += fmt.Sprintf(" sl=%d", core.StrassenLevelsOf(c.StrassenLevels))
		if c.StrassenInnerGroups > 0 {
			s += fmt.Sprintf(" sg=%d", c.StrassenInnerGroups)
		}
	}
	if c.LocalStrassen {
		s += " local-strassen"
	}
	return s
}

// Scored is a candidate with its stage-1 (closed-form) and, when refined,
// stage-2 (simulated) costs in seconds.
type Scored struct {
	Candidate
	ModelComm  float64 `json:"model_comm_s"`
	ModelTotal float64 `json:"model_total_s"`
	SimComm    float64 `json:"sim_comm_s,omitempty"`
	SimTotal   float64 `json:"sim_total_s,omitempty"`
	// PredictedSecondsByPhase is the closed-form cost decomposed onto the
	// trace phase vocabulary (bcast/shift/p2p for comm, gemm for compute);
	// the comm phases sum to ModelComm up to floating-point association.
	// It is the measured-vs-predicted denominator the serving layer's
	// drift tracking audits.
	PredictedSecondsByPhase map[string]float64 `json:"predicted_seconds_by_phase,omitempty"`
	// Refined reports whether the stage-2 virtual run was performed.
	Refined bool `json:"refined"`
	// Engine records which virtual execution engine scored the candidate
	// in stage 2 ("goroutine" or "event"), empty when not refined.
	Engine string `json:"engine,omitempty"`
	// Err records a stage-2 failure (the candidate is ranked last).
	Err string `json:"err,omitempty"`
}

// objective returns the value the plan ranks by: the simulated cost when
// available, the analytic one otherwise.
func (s Scored) objective(o Objective) float64 {
	if s.Refined {
		if o == MinComm {
			return s.SimComm
		}
		return s.SimTotal
	}
	if o == MinComm {
		return s.ModelComm
	}
	return s.ModelTotal
}

// Plan is the planner's answer: the best configuration plus the ranked
// refinement set and search statistics.
type Plan struct {
	Platform string `json:"platform"`
	// Shape is the *requested* GEMM problem; candidates that need padding
	// are scored and simulated at their own (grid-dependent) execution
	// shapes. N echoes the square shorthand (0 for rectangular problems).
	Shape matrix.Shape `json:"shape"`
	N     int          `json:"n,omitempty"`
	P     int          `json:"p"`
	// CoreBudget echoes the request's core budget when the plan searched
	// (ranks × threads) splits instead of a fixed P.
	CoreBudget int       `json:"core_budget,omitempty"`
	Objective  Objective `json:"objective"`
	// Best is Ranked[0], repeated for convenience.
	Best Scored `json:"best"`
	// Ranked holds the stage-2 refinement set, best first; entries beyond
	// it were rejected analytically.
	Ranked []Scored `json:"ranked"`
	// Scanned counts the candidates scored analytically in stage 1;
	// Simulated counts the stage-2 virtual runs.
	Scanned   int `json:"scanned"`
	Simulated int `json:"simulated"`
	// Engine is the executor policy the refinement ran under ("auto",
	// "goroutine" or "event"); per-candidate resolution is in
	// Ranked[i].Engine.
	Engine string `json:"engine,omitempty"`
	// FromCache reports that this plan was served from the plan cache.
	FromCache bool `json:"from_cache,omitempty"`
}

// PredictPhases evaluates the closed-form per-phase prediction for a
// resolved spec on a platform — the same decomposition the planner
// attaches to its ranked candidates, reachable for pinned (non-Auto)
// requests too so every resolved execution carries a model prediction
// for the drift tracker to audit. Call it on a padded spec; the scorer
// re-pads idempotently. Cost: a handful of closed-form evaluations,
// microseconds.
func PredictPhases(spec engine.Spec, pf platform.Platform) map[string]float64 {
	c := Candidate{
		Algorithm:           spec.Algorithm,
		Grid:                spec.Opts.Grid,
		BlockSize:           spec.Opts.BlockSize,
		OuterBlockSize:      spec.Opts.OuterBlockSize,
		Broadcast:           spec.Opts.Broadcast,
		Segments:            spec.Opts.Segments,
		Levels:              spec.Levels,
		Threads:             spec.Opts.Threads,
		StrassenLevels:      spec.Opts.StrassenLevels,
		StrassenInnerGroups: spec.Opts.StrassenInnerGroups,
		LocalStrassen:       spec.Opts.LocalStrassen,
		StrassenCutoff:      spec.Opts.StrassenCutoff,
	}
	if spec.Algorithm == engine.HSUMMA {
		c.GroupShape = [2]int{spec.Opts.Groups.I, spec.Opts.Groups.J}
		c.Groups = spec.Opts.Groups.Groups()
	}
	sc := newScorer(spec.Shape(), pf.Model, false)
	return sc.predictPhases(c)
}

// minTileExtent returns the smallest per-rank tile extent of the three
// operands — min(M/S, K/S, K/T, N/T), floored at 1 — the ceiling any auto
// block size must respect so panels never exceed a skinny dimension.
func minTileExtent(sh matrix.Shape, g topo.Grid) int {
	min := sh.M / g.S
	for _, e := range []int{sh.K / g.S, sh.K / g.T, sh.N / g.T} {
		if e < min {
			min = e
		}
	}
	if min < 1 {
		min = 1
	}
	return min
}

// DefaultBlockSize is the shared "BlockSize: 0 means auto" rule used by
// both execution paths (hsumma.Multiply and hsumma.Simulate) and by the
// planner's b search as its fallback: the largest power-of-two block
// (≤64) not exceeding the smallest per-rank tile extent and — when the
// shape divides the grid — dividing the per-rank K extents exactly, so no
// padding is introduced. On shapes that do not divide the grid (where
// execution pads K to a multiple of b·lcm(S,T)) the block is additionally
// bounded so the padding it forces stays under ~12.5% of K — a large b
// would otherwise silently inflate the executed problem. It degrades to 1
// when the extents are odd.
func DefaultBlockSize(sh matrix.Shape, g topo.Grid) int {
	if sh.IsZero() || g.S <= 0 || g.T <= 0 {
		return 1
	}
	b := 64
	for b > 1 && b > minTileExtent(sh, g) {
		b /= 2
	}
	if sh.K%g.S == 0 && sh.K%g.T == 0 {
		for b > 1 && ((sh.K/g.S)%b != 0 || (sh.K/g.T)%b != 0) {
			b /= 2
		}
	} else {
		// Padding territory: K will execute as ceil(K / b·lcm(S,T)) units.
		// ceilMult is non-decreasing in b, so halve until the overhead a
		// block of this size forces is bounded.
		L := lcm(g.S, g.T)
		for b > 1 && ceilMult(sh.K, b*L)-sh.K > sh.K/8 {
			b /= 2
		}
	}
	return b
}

// ceilMult rounds v up to the next multiple of m.
func ceilMult(v, m int) int { return (v + m - 1) / m * m }

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// Candidates enumerates the feasible configuration space for a request —
// exactly the space Plan searches, exported so tests can sweep it
// exhaustively and compare against the planner's choice.
func Candidates(req Request) ([]Candidate, error) {
	req = req.withDefaults()
	if err := req.validate(); err != nil {
		return nil, err
	}
	sh := req.Shape
	squareOnlySkipped := false
	var out []Candidate
	for _, pt := range rankThreadPairs(req) {
		sub := req
		sub.P, sub.Threads = pt[0], pt[1]
		pair := pairCandidates(sub, sh, &squareOnlySkipped)
		if sub.Threads > 1 {
			for i := range pair {
				pair[i].Threads = sub.Threads
			}
		}
		out = append(out, pair...)
	}
	if len(out) == 0 {
		if squareOnlySkipped {
			return nil, fmt.Errorf("tune: no feasible candidate for shape %v p=%d: %w", sh, req.P, matrix.ErrSquareOnly)
		}
		if req.CoreBudget > 0 {
			return nil, fmt.Errorf("tune: no feasible candidate for shape %v under core budget %d", sh, req.CoreBudget)
		}
		return nil, fmt.Errorf("tune: no process grid of %d ranks fits shape %v", req.P, sh)
	}
	return out, nil
}

// pairCandidates enumerates the configuration space for one (ranks,
// threads) split — the per-grid algorithm/block/broadcast sweep.
func pairCandidates(req Request, sh matrix.Shape, squareOnlySkipped *bool) []Candidate {
	grids := candidateGrids(req)
	var out []Candidate
	for _, g := range grids {
		bs := blockCandidates(sh, g, req.Quick)
		if req.BlockSize > 0 {
			// A pinned b is a user constraint: feasibility follows the
			// execution layer, not the auto-search skinny cap — when the
			// shape divides the grid the panels must divide exactly,
			// otherwise padding makes any pinned b runnable.
			if sh.K%g.S == 0 && sh.K%g.T == 0 &&
				((sh.K/g.S)%req.BlockSize != 0 || (sh.K/g.T)%req.BlockSize != 0) {
				continue
			}
			bs = []int{req.BlockSize}
		}
		for _, alg := range req.Algorithms {
			switch alg {
			case engine.SUMMA:
				for _, b := range bs {
					for _, bc := range req.Broadcasts {
						out = append(out, Candidate{Algorithm: alg, Grid: g, BlockSize: b, Broadcast: bc})
					}
				}
			case engine.HSUMMA:
				for _, G := range groupCandidates(g, req.Quick) {
					h, err := topo.FactorGroups(g, G)
					if err != nil {
						continue
					}
					for _, b := range bs {
						for _, B := range outerBlockCandidates(req, g, b) {
							for _, bc := range req.Broadcasts {
								out = append(out, Candidate{
									Algorithm: alg, Grid: g,
									Groups: G, GroupShape: [2]int{h.I, h.J},
									BlockSize: b, OuterBlockSize: B, Broadcast: bc,
								})
							}
						}
					}
				}
			case engine.Multilevel:
				out = append(out, multilevelCandidates(req, g, bs)...)
			case engine.Cannon:
				// Cannon is square-only: square problem on a square grid
				// (a non-divisible n pads to the next multiple of q,
				// exactly as the execution layer does).
				if !sh.IsSquare() {
					*squareOnlySkipped = true
					continue
				}
				if g.S == g.T {
					out = append(out, Candidate{Algorithm: alg, Grid: g})
				}
			case engine.Fox:
				if !sh.IsSquare() {
					*squareOnlySkipped = true
					continue
				}
				if g.S == g.T {
					for _, bc := range req.Broadcasts {
						out = append(out, Candidate{Algorithm: alg, Grid: g, Broadcast: bc})
					}
				}
			case engine.Strassen:
				if !sh.IsSquare() {
					*squareOnlySkipped = true
					continue
				}
				out = append(out, strassenCandidates(req, g)...)
			}
		}
	}
	return append(out, localKernelVariants(sh, out)...)
}

// strassenCandidates proposes the distributed Strassen configurations for
// one grid: square grids with an even side only, one recursion level (two
// in full mode when the grid quarters), block sizes feasible for the
// bottom sub-grid problem, and — in full mode — an HSUMMA bottom at G=4.
// The binomial broadcast suffices for the bottom collectives in quick
// mode; full mode sweeps the requested broadcasts like every other
// candidate family.
func strassenCandidates(req Request, g topo.Grid) []Candidate {
	if g.S != g.T || g.S%2 != 0 {
		return nil
	}
	levels := []int{1}
	if !req.Quick && g.S%4 == 0 {
		levels = append(levels, 2)
	}
	bcasts := req.Broadcasts
	if req.Quick {
		bcasts = bcasts[:1]
	}
	var out []Candidate
	for _, l := range levels {
		div := 1 << l
		if req.Shape.N%div != 0 {
			continue
		}
		// Blocks are constrained by the bottom problem: size n/2^l on an
		// (s/2^l)² sub-grid — the per-rank extents equal the full problem's
		// n/s, so the same feasibility rule applies at every depth.
		sub := topo.Grid{S: g.S / div, T: g.S / div}
		subShape := matrix.Square(req.Shape.N / div)
		bs := blockCandidates(subShape, sub, req.Quick)
		if req.BlockSize > 0 {
			if (req.Shape.N/div/sub.S)%req.BlockSize != 0 {
				continue
			}
			bs = []int{req.BlockSize}
		}
		groups := []int{0}
		if !req.Quick && sub.Size() >= 4 {
			groups = append(groups, 4)
		}
		for _, b := range bs {
			for _, G := range groups {
				for _, bc := range bcasts {
					out = append(out, Candidate{
						Algorithm: engine.Strassen, Grid: g, BlockSize: b,
						Broadcast: bc, StrassenLevels: l, StrassenInnerGroups: G,
					})
				}
			}
		}
	}
	return out
}

// localKernelVariants duplicates candidates with the sub-cubic rank-local
// kernel enabled — but only where the kernel can actually win: every
// dimension of the rank-local multiplies (tile extents and the panel
// width) must exceed the Strassen crossover, otherwise StrassenGemm falls
// straight through to the classic kernel and the variant would only
// double the search space.
func localKernelVariants(sh matrix.Shape, cands []Candidate) []Candidate {
	var out []Candidate
	for _, c := range cands {
		minDim := minTileExtent(sh, c.Grid)
		if c.Algorithm == engine.Strassen {
			div := 1 << core.StrassenLevelsOf(c.StrassenLevels)
			minDim = sh.N / c.Grid.S // tile extent, invariant across levels
			if sh.N%div != 0 {
				continue
			}
		}
		if c.BlockSize > 0 && c.BlockSize < minDim {
			minDim = c.BlockSize
		}
		if minDim <= blas.DefaultStrassenCutoff {
			continue
		}
		v := c
		v.LocalStrassen = true
		out = append(out, v)
	}
	return out
}

// gridDivides reports the SUMMA-family layout constraint: every operand's
// tiles are uniform on the grid (S | M, S | K, T | K, T | N).
func gridDivides(sh matrix.Shape, g topo.Grid) bool {
	return sh.M%g.S == 0 && sh.K%g.S == 0 && sh.K%g.T == 0 && sh.N%g.T == 0
}

// aspectDistance measures how far a grid's S:T ratio sits from the
// shape's M:N ratio on a log scale — zero for a perfectly
// orientation-matched grid (tall problems on tall grids).
func aspectDistance(sh matrix.Shape, g topo.Grid) float64 {
	return math.Abs(math.Log(float64(g.S)/float64(g.T)) - math.Log(float64(sh.M)/float64(sh.N)))
}

// candidateGrids lists the process grids the search considers: every S×T
// factorisation of P whose dimensions divide the shape (the algorithms'
// layout constraint; when nothing divides — prime-ish dimensions — every
// factorisation is kept and execution pads). For rectangular outputs
// (M ≠ N) both orientations of each factorisation are enumerated, so a
// tall problem can land on a tall grid. Grids are skew-filtered to 8:1
// around the output aspect ratio, keeping the squarest and the
// aspect-closest unconditionally. Quick mode keeps only the feasible grid
// whose orientation best matches the aspect ratio — the squarest one on
// square problems, matching the paper's fixed grids.
func candidateGrids(req Request) []topo.Grid {
	sh := req.Shape
	if req.Grid != nil {
		// A pinned grid is always accepted: padding makes it executable
		// even when it does not divide the shape.
		return []topo.Grid{*req.Grid}
	}
	collect := func(requireDivides bool) []topo.Grid {
		var all []topo.Grid
		for s := 1; s*s <= req.P; s++ {
			if req.P%s != 0 {
				continue
			}
			t := req.P / s
			g := topo.Grid{S: s, T: t}
			if !requireDivides || gridDivides(sh, g) {
				all = append(all, g)
			}
			// The transposed orientation only matters when the output is
			// rectangular; on M = N the cost is symmetric in (S, T).
			if s != t && sh.M != sh.N {
				gT := topo.Grid{S: t, T: s}
				if !requireDivides || gridDivides(sh, gT) {
					all = append(all, gT)
				}
			}
		}
		return all
	}
	all := collect(true)
	if len(all) == 0 {
		all = collect(false) // padding territory: prime-ish dimensions
	}
	if len(all) == 0 {
		return nil
	}
	// The squarest factorisation, and the orientation closest to the
	// output aspect ratio, are always kept.
	squarest, closest := all[0], all[0]
	for _, g := range all {
		if min(g.S, g.T) > min(squarest.S, squarest.T) {
			squarest = g
		}
		if aspectDistance(sh, g) < aspectDistance(sh, closest) {
			closest = g
		}
	}
	if req.Quick {
		return []topo.Grid{closest}
	}
	kept := all[:0]
	for _, g := range all {
		if g == squarest || g == closest || aspectDistance(sh, g) <= math.Log(8) {
			kept = append(kept, g)
		}
	}
	return kept
}

// blockCandidates lists the power-of-two block sizes keyed off the
// per-rank tile extents: never exceeding the smallest extent of any
// operand (so auto blocks never exceed a skinny dimension) and — when the
// shape divides the grid — dividing the per-rank K extents exactly.
// Within that, the paper's experimental range [16, 512] is preferred
// (smaller ones admitted only when nothing in range fits). Quick mode
// keeps at most three, spread across the range.
func blockCandidates(sh matrix.Shape, g topo.Grid, quick bool) []int {
	cap := minTileExtent(sh, g)
	exact := sh.K%g.S == 0 && sh.K%g.T == 0
	var bs []int
	for b := 1; b <= 512 && b <= cap; b *= 2 {
		if exact && ((sh.K/g.S)%b != 0 || (sh.K/g.T)%b != 0) {
			continue
		}
		bs = append(bs, b)
	}
	// b = 1 always passes both filters, so bs is never empty.
	// Prefer the paper's range; tiny blocks only as a last resort.
	inRange := bs[:0:0]
	for _, b := range bs {
		if b >= 16 {
			inRange = append(inRange, b)
		}
	}
	if len(inRange) > 0 {
		bs = inRange
	}
	if quick && len(bs) > 3 {
		bs = []int{bs[0], bs[len(bs)/2], bs[len(bs)-1]}
	}
	return bs
}

// groupCandidates lists the HSUMMA group counts to try on a grid: every
// feasible G in full mode, the power-of-two subset (plus endpoints) in
// quick mode — the same subset the paper's figures sweep.
func groupCandidates(g topo.Grid, quick bool) []int {
	counts := topo.ValidGroupCounts(g)
	if !quick {
		return counts
	}
	var out []int
	for _, G := range counts {
		if G&(G-1) == 0 || G == g.Size() {
			out = append(out, G)
		}
	}
	return out
}

// outerBlockCandidates lists HSUMMA's B values for a given b: B = b (the
// paper's configuration) plus, in full mode, the feasible multiples 2b and
// 4b (§III: the inter-group block should be at least the intra-group one).
// Feasibility is keyed off the per-rank K extents (B-wide outer panels
// must live in one grid row/column) and the smallest tile extent. A
// pinned Request.OuterBlockSize replaces the search.
func outerBlockCandidates(req Request, g topo.Grid, b int) []int {
	sh := req.Shape
	exact := sh.K%g.S == 0 && sh.K%g.T == 0
	divides := func(B int) bool {
		return !exact || ((sh.K/g.S)%B == 0 && (sh.K/g.T)%B == 0)
	}
	if B := req.OuterBlockSize; B > 0 {
		// A pinned B, like a pinned b, follows the execution layer's
		// feasibility (padding covers non-dividing shapes), not the
		// auto-search skinny cap.
		if B%b != 0 || !divides(B) {
			return nil
		}
		return []int{B}
	}
	out := []int{b}
	if req.Quick {
		return out
	}
	for _, mult := range []int{2, 4} {
		if B := b * mult; B <= minTileExtent(sh, g) && divides(B) {
			out = append(out, B)
		}
	}
	return out
}

// multilevelCandidates proposes three-level hierarchies (two grouping
// levels over the flat grid): 2×2 and 4×4 outer groupings with halving
// panel widths, filtered by the multilevel divisibility rules. The
// two-level case is already covered by the HSUMMA candidates.
func multilevelCandidates(req Request, g topo.Grid, bs []int) []Candidate {
	var out []Candidate
	shapes := [][2][2]int{
		{{2, 2}, {2, 2}},
		{{4, 4}, {2, 2}},
	}
	sh := req.Shape
	exact := sh.K%g.S == 0 && sh.K%g.T == 0
	for _, shape := range shapes {
		i1, j1 := shape[0][0], shape[0][1]
		i2, j2 := shape[1][0], shape[1][1]
		if g.S%(i1*i2) != 0 || g.T%(j1*j2) != 0 {
			continue
		}
		for _, b := range bs {
			top := 4 * b
			if top > minTileExtent(sh, g) {
				continue
			}
			if exact && ((sh.K/g.S)%top != 0 || (sh.K/g.T)%top != 0) {
				continue
			}
			for _, bc := range req.Broadcasts {
				out = append(out, Candidate{
					Algorithm: engine.Multilevel, Grid: g, BlockSize: b, Broadcast: bc,
					Levels: []core.Level{
						{I: i1, J: j1, BlockSize: top},
						{I: i2, J: j2, BlockSize: 2 * b},
					},
				})
			}
		}
	}
	return out
}

// rank sorts scored candidates by the request's objective, errors last.
func rank(scored []Scored, o Objective) {
	sort.SliceStable(scored, func(i, j int) bool {
		if (scored[i].Err == "") != (scored[j].Err == "") {
			return scored[i].Err == ""
		}
		return scored[i].objective(o) < scored[j].objective(o)
	})
}
