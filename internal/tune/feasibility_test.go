package tune

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/topo"
)

// Planner feasibility must match the execution layer: a pinned block
// size the algorithms accept, and a padded square-only baseline the
// simulator runs, may not be declared infeasible by the enumeration.
func TestPlannerFeasibilityMatchesExecution(t *testing.T) {
	// Pinned b=256 on an 8x8 grid for the tall shape: execution accepts it
	// (K extents 1024 divisible), so the planner must too.
	g := topo.Grid{S: 8, T: 8}
	pl, err := NewPlanner().Plan(Request{
		Platform: platform.Grid5000(),
		Shape:    matrix.Shape{M: 8192, N: 512, K: 8192},
		P:        64, Grid: &g, BlockSize: 256, Quick: true, NoCache: true,
	})
	if err != nil {
		t.Fatalf("pinned b=256: %v", err)
	}
	if pl.Best.BlockSize != 256 && pl.Best.Algorithm != engine.Cannon && pl.Best.Algorithm != engine.Fox {
		t.Fatalf("pinned b escaped: %+v", pl.Best.Candidate)
	}
	// Pinned OuterBlockSize beyond the skinny cap: execution pads, so the
	// planner must keep HSUMMA in the space.
	plB, err := NewPlanner().Plan(Request{
		Platform: platform.Grid5000(),
		Shape:    matrix.Shape{M: 8192, N: 512, K: 8192},
		P:        64, Grid: &g, BlockSize: 64, OuterBlockSize: 128,
		Algorithms: []engine.Algorithm{engine.HSUMMA},
		Quick:      true, NoCache: true,
	})
	if err != nil {
		t.Fatalf("pinned B=128: %v", err)
	}
	if plB.Best.OuterBlockSize != 128 {
		t.Fatalf("pinned B escaped: %+v", plB.Best.Candidate)
	}

	// Cannon on n=7, p=4: execution pads to 8; the planner must agree.
	pl2, err := NewPlanner().Plan(Request{
		Platform:   platform.Grid5000(),
		Shape:      matrix.Square(7),
		P:          4,
		Algorithms: []engine.Algorithm{engine.Cannon},
		Quick:      true, NoCache: true,
	})
	if err != nil {
		t.Fatalf("cannon n=7: %v", err)
	}
	if pl2.Best.Algorithm != engine.Cannon {
		t.Fatalf("unexpected best %+v", pl2.Best.Candidate)
	}
}
