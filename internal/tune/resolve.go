package tune

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/topo"
)

// This file is the shared live-path configuration resolution: it turns a
// user-facing description of one multiplication (what the public
// hsumma.Config carries, and what the serving layer receives per request)
// into the engine's fully pinned, padded Spec. hsumma.Multiply,
// hsumma.Simulate and internal/serve all route through ResolveSpec, so the
// three surfaces agree on defaulting (algorithm, grid, groups, block
// sizes), on AlgAuto planner resolution — and therefore on engine.Spec.Key,
// the identity the serving layer's session routing and the plan cache are
// keyed by.

// AutoProcs is the rank-count threshold beyond which implicit Auto
// resolution skips the stage-2 virtual refinement: a single full-scale
// virtual run at the paper's 16384 ranks costs seconds, and the analytic
// ranking is already faithful there (asserted against exhaustive sweeps in
// this package's tests at tractable scale).
const AutoProcs = 2048

// ResolveParams describes one live multiplication the way a caller pins it:
// zero values mean "resolve for me". It is the transport-free subset of the
// public Config.
type ResolveParams struct {
	// Shape is the global GEMM problem (required).
	Shape matrix.Shape
	// Procs is the rank count (required; must match Grid when both set).
	Procs int
	// Algorithm defaults to HSUMMA; engine.Auto delegates everything not
	// explicitly pinned to the planner.
	Algorithm engine.Algorithm
	// Grid optionally pins the process grid.
	Grid *topo.Grid
	// Groups is HSUMMA's G (0 = feasible count closest to √p).
	Groups int
	// BlockSize is the paper's b (0 = DefaultBlockSize); OuterBlockSize is
	// HSUMMA's B (0 = b).
	BlockSize, OuterBlockSize int
	// Levels configures Multilevel (outermost first).
	Levels []core.Level
	// Broadcast selects the collective schedule (empty = binomial).
	Broadcast sched.Algorithm
	// Segments is the chain-broadcast pipeline depth.
	Segments int
	// Threads is the per-rank thread budget for the local multiplies (the
	// hybrid MPI+OpenMP knob). 0 or 1 keeps ranks serial; under
	// engine.Auto, 0 lets the planner choose (currently 1 unless the
	// request carries a core budget).
	Threads int
	// StrassenLevels is the strassen algorithm's quadrant recursion depth
	// (0 = one level); StrassenInnerGroups > 0 selects an HSUMMA bottom.
	StrassenLevels, StrassenInnerGroups int
	// LocalStrassen runs the sub-cubic rank-local kernel under any
	// algorithm; StrassenCutoff is its recursion cutoff (0 = blas default).
	LocalStrassen  bool
	StrassenCutoff int
	// Platform names the machine the planner tunes for under
	// engine.Auto (nil = the Grid'5000 preset). Ignored otherwise.
	Platform *platform.Platform
}

// ResolveSpec resolves the parameters into the padded execution spec both
// live paths run. Errors are unprefixed (wrapped where sentinel identity
// matters, e.g. matrix.ErrSquareOnly); each caller applies its own
// namespace — the façade adds "hsumma:", the HTTP layer serves them bare.
// The resolution itself: planner resolution for engine.Auto (explicit Grid and
// BlockSize are honoured as constraints), grid factorisation, the shared
// BlockSize-0-means-auto rule, the √p group default, and the padding of
// the shape up to the algorithm's divisibility constraints. Square-only
// baselines reject rectangular shapes with matrix.ErrSquareOnly.
func ResolveSpec(rp ResolveParams) (engine.Spec, error) {
	if err := rp.Shape.Validate(); err != nil {
		return engine.Spec{}, err
	}
	if rp.Procs <= 0 {
		return engine.Spec{}, fmt.Errorf("Procs must be positive")
	}
	if rp.Threads < 0 {
		return engine.Spec{}, fmt.Errorf("Threads must be non-negative, have %d", rp.Threads)
	}
	if rp.Algorithm == engine.Auto {
		planned, err := resolveAutoParams(rp)
		if err != nil {
			return engine.Spec{}, err
		}
		rp = planned
	}
	grid, err := resolveGrid(rp)
	if err != nil {
		return engine.Spec{}, err
	}
	if rp.Algorithm == "" {
		rp.Algorithm = engine.HSUMMA
	}
	if rp.BlockSize <= 0 {
		// The shared "0 means auto" rule, next to the planner's b/B search
		// so Multiply and Simulate default identically.
		rp.BlockSize = DefaultBlockSize(rp.Shape, grid)
	}
	spec := engine.Spec{
		Algorithm: rp.Algorithm,
		Opts: core.Options{
			Shape: rp.Shape, Grid: grid,
			BlockSize:           rp.BlockSize,
			OuterBlockSize:      rp.OuterBlockSize,
			Broadcast:           rp.Broadcast,
			Segments:            rp.Segments,
			Threads:             rp.Threads,
			StrassenLevels:      rp.StrassenLevels,
			StrassenInnerGroups: rp.StrassenInnerGroups,
			LocalStrassen:       rp.LocalStrassen,
			StrassenCutoff:      rp.StrassenCutoff,
		},
		Levels: rp.Levels,
	}
	if rp.Algorithm == engine.HSUMMA {
		h, err := resolveGroups(grid, rp.Groups)
		if err != nil {
			return engine.Spec{}, err
		}
		spec.Opts.Groups = h
	}
	// Round the shape up to the execution shape (identity on divisible
	// problems); square-only algorithms reject rectangular shapes here.
	spec, err = spec.Padded()
	if err != nil {
		return engine.Spec{}, err
	}
	// Attach the model's per-phase prediction for the resolved execution —
	// pinned requests included, so the serving layer's drift tracking
	// always has a denominator. Advisory metadata: never part of Spec.Key.
	pf := platform.Grid5000()
	if rp.Platform != nil {
		pf = *rp.Platform
	}
	spec.Predicted = PredictPhases(spec, pf)
	return spec, nil
}

// resolveAutoParams replaces Algorithm: engine.Auto with the planner's
// choice for rp.Platform (default: the Grid'5000 preset), honouring
// explicit Grid and BlockSize settings as constraints. Plans are memoised,
// so a serving workload pays the search once per distinct shape.
func resolveAutoParams(rp ResolveParams) (ResolveParams, error) {
	pl, err := PlanFor(AutoRequest(rp))
	if err != nil {
		return ResolveParams{}, err
	}
	c := pl.Best.Candidate
	rp.Algorithm = c.Algorithm
	g := c.Grid
	rp.Grid = &g
	rp.Procs = c.Grid.Size()
	rp.Groups = c.Groups
	rp.BlockSize = c.BlockSize
	rp.OuterBlockSize = c.OuterBlockSize
	rp.Broadcast = c.Broadcast
	rp.Segments = c.Segments
	rp.Levels = c.Levels
	if c.Threads > 0 {
		rp.Threads = c.Threads
	}
	rp.StrassenLevels = c.StrassenLevels
	rp.StrassenInnerGroups = c.StrassenInnerGroups
	rp.LocalStrassen = c.LocalStrassen
	rp.StrassenCutoff = c.StrassenCutoff
	return rp, nil
}

// AutoRequest is the exact planner Request the implicit-Auto resolution
// path builds for rp — exported so callers that need to act on the same
// cache entry (the serving drift tracker invalidating a stale memoised
// plan via InvalidatePlan) address it by construction rather than by
// duplicating the Request recipe.
func AutoRequest(rp ResolveParams) Request {
	pf := platform.Grid5000()
	if rp.Platform != nil {
		pf = *rp.Platform
	}
	return Request{
		Platform: pf, Shape: rp.Shape, P: rp.Procs,
		Grid: rp.Grid, BlockSize: rp.BlockSize,
		Threads:      rp.Threads,
		Quick:        true,
		AnalyticOnly: rp.Procs > AutoProcs,
	}
}

func resolveGrid(rp ResolveParams) (topo.Grid, error) {
	if rp.Grid != nil {
		g, err := topo.NewGrid(rp.Grid.S, rp.Grid.T)
		if err != nil {
			return topo.Grid{}, err
		}
		if g.Size() != rp.Procs {
			return topo.Grid{}, fmt.Errorf("grid %v does not hold %d procs", g, rp.Procs)
		}
		return g, nil
	}
	return topo.SquarestGrid(rp.Procs)
}

func resolveGroups(g topo.Grid, G int) (topo.Hier, error) {
	if G > 0 {
		return topo.FactorGroups(g, G)
	}
	// Default: the feasible group count closest to √p, the paper's
	// analytic optimum.
	counts := topo.ValidGroupCounts(g)
	if len(counts) == 0 {
		// Unreachable for any valid grid (G=1 always factorises), but a
		// guard beats an index panic if ValidGroupCounts ever changes.
		return topo.Hier{}, fmt.Errorf("no feasible group count for grid %v", g)
	}
	best := counts[0]
	for _, c := range counts {
		if absInt(c*c-g.Size()) < absInt(best*best-g.Size()) {
			best = c
		}
	}
	return topo.FactorGroups(g, best)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
