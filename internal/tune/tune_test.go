package tune

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simalg"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// The scorer's rectangular-grid formulas must reduce to the paper's
// closed forms (internal/model, Tables I–II) on a square grid.
func TestScorerMatchesClosedFormOnSquareGrid(t *testing.T) {
	m := platform.BlueGeneP().Model
	n, p, b := 4096, 64, 64
	sc := newScorer(matrix.Square(n), m, false)
	grid := topo.Grid{S: 8, T: 8}

	for _, bc := range []sched.Algorithm{sched.Binomial, sched.VanDeGeijn} {
		var bcm model.Broadcast = model.BinomialTree{}
		if bc == sched.VanDeGeijn {
			bcm = model.VanDeGeijn{}
		}
		par := model.Params{N: n, P: p, B: b, Machine: m, Bcast: bcm}

		comm, _ := sc.score(Candidate{Algorithm: engine.SUMMA, Grid: grid, BlockSize: b, Broadcast: bc})
		if want := model.SUMMA(par).Comm(); math.Abs(comm-want) > 1e-12*want {
			t.Fatalf("%s SUMMA: scorer %g, closed form %g", bc, comm, want)
		}
		for _, G := range []int{1, 4, 16, 64} {
			h, err := topo.FactorGroups(grid, G)
			if err != nil {
				t.Fatal(err)
			}
			comm, _ := sc.score(Candidate{
				Algorithm: engine.HSUMMA, Grid: grid,
				Groups: G, GroupShape: [2]int{h.I, h.J},
				BlockSize: b, OuterBlockSize: b, Broadcast: bc,
			})
			if want := model.HSUMMA(par, float64(G)).Comm(); math.Abs(comm-want) > 1e-12*want {
				t.Fatalf("%s HSUMMA G=%d: scorer %g, closed form %g", bc, G, comm, want)
			}
		}
	}
}

// simulateCandidate runs the authoritative stage-2 measurement for one
// candidate — the exhaustive-sweep oracle the planner is held against.
func simulateCandidate(t *testing.T, req Request, c Candidate) (comm, total float64) {
	t.Helper()
	spec, err := c.Spec(matrix.Square(req.N))
	if err != nil {
		t.Fatalf("%s: %v", c, err)
	}
	vcfg := simnet.VConfig{Model: req.Platform.Model, Overlap: req.Overlap}
	if req.Contention {
		vcfg.Contention = simnet.ContentionFor(req.Platform, c.Grid.Size(), true)
	}
	res, _, err := simalg.RunSpec(spec, vcfg)
	if err != nil {
		t.Fatalf("%s: %v", c, err)
	}
	return res.Comm, res.Total
}

// Acceptance: on each paper platform preset the planner's choice must
// simulate within 5% of the best configuration an exhaustive simnet sweep
// of the same candidate space finds.
func TestPlannerWithinFivePercentOfExhaustive(t *testing.T) {
	for _, pf := range []platform.Platform{
		platform.Grid5000(), platform.BlueGeneP(), platform.Exascale(),
		platform.Grid5000Calibrated(), platform.BlueGenePCalibrated(),
	} {
		pf := pf
		t.Run(pf.Name, func(t *testing.T) {
			req := Request{Platform: pf, N: 512, P: 16, Quick: true, NoCache: true}
			pl, err := NewPlanner().Plan(req)
			if err != nil {
				t.Fatal(err)
			}
			if !pl.Best.Refined {
				t.Fatalf("best candidate not simulation-refined: %+v", pl.Best)
			}

			cands, err := Candidates(req)
			if err != nil {
				t.Fatal(err)
			}
			if len(cands) != pl.Scanned {
				t.Fatalf("planner scanned %d candidates, Candidates lists %d", pl.Scanned, len(cands))
			}
			bestExhaustive := math.Inf(1)
			var bestCand Candidate
			for _, c := range cands {
				_, total := simulateCandidate(t, req, c)
				if total < bestExhaustive {
					bestExhaustive, bestCand = total, c
				}
			}
			if pl.Best.SimTotal > bestExhaustive*1.05 {
				t.Fatalf("planner chose %s (%.6g s); exhaustive best is %s (%.6g s) — %.1f%% worse",
					pl.Best.Candidate, pl.Best.SimTotal, bestCand, bestExhaustive,
					100*(pl.Best.SimTotal/bestExhaustive-1))
			}
		})
	}
}

// Acceptance: for HSUMMA on the (calibrated, latency-dominated) BG/P with
// the scatter-allgather broadcast the paper measured, the planner's G at
// the paper's full scale must reproduce the optimum trend — an interior
// value near √p, not an endpoint.
func TestPlannerBGPGroupTrend(t *testing.T) {
	pf := platform.BlueGenePCalibrated()
	pl, err := NewPlanner().Plan(Request{
		Platform: pf, N: 65536, P: 16384, BlockSize: 256, OuterBlockSize: 256,
		Algorithms:   []engine.Algorithm{engine.HSUMMA},
		Broadcasts:   []sched.Algorithm{sched.VanDeGeijn},
		Objective:    MinComm,
		AnalyticOnly: true, // one virtual run at p=16384 costs ~14 s; the analytic ranking is exact here
		NoCache:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	G := pl.Best.Groups
	sqrtP := 128
	if G <= 1 || G >= 16384 {
		t.Fatalf("planner chose endpoint G=%d; paper's optimum is interior (near √p=%d)", G, sqrtP)
	}
	if G < sqrtP/4 || G > sqrtP*4 {
		t.Fatalf("planner chose G=%d, not near √p=%d (paper's eq. 9 optimum)", G, sqrtP)
	}
}

// A served-from-cache plan must cost no further virtual runs — the
// observable quantity that makes a cache hit cheaper than a cold plan
// (BenchmarkPlanColdVsCached in the root package measures the wall-time
// side).
func TestPlanCacheHit(t *testing.T) {
	p := NewPlanner()
	req := Request{Platform: platform.Grid5000(), N: 512, P: 16, Quick: true}
	cold, err := p.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FromCache {
		t.Fatal("first plan reported FromCache")
	}
	st := p.Stats()
	if st.CacheMisses != 1 || st.SimRuns == 0 {
		t.Fatalf("unexpected cold-plan counters: %+v", st)
	}
	warm, err := p.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache {
		t.Fatal("second identical plan not served from cache")
	}
	after := p.Stats()
	if after.SimRuns != st.SimRuns {
		t.Fatalf("cache hit ran %d further virtual runs", after.SimRuns-st.SimRuns)
	}
	if after.CacheHits != 1 {
		t.Fatalf("cache hits %d, want 1", after.CacheHits)
	}
	if warm.Best.Candidate.String() != cold.Best.Candidate.String() {
		t.Fatalf("cached plan differs: %s vs %s", warm.Best.Candidate, cold.Best.Candidate)
	}
	// A different problem must miss.
	if pl, err := p.Plan(Request{Platform: platform.Grid5000(), N: 256, P: 16, Quick: true}); err != nil {
		t.Fatal(err)
	} else if pl.FromCache {
		t.Fatal("different problem served from cache")
	}
}

func TestDefaultBlockSize(t *testing.T) {
	cases := []struct {
		n    int
		g    topo.Grid
		want int
	}{
		{256, topo.Grid{S: 4, T: 4}, 64}, // 64-wide tiles: full default
		{256, topo.Grid{S: 2, T: 8}, 32}, // 32-wide tiles cap it
		{96, topo.Grid{S: 4, T: 4}, 8},   // 24 = 8·3: largest dividing power of two
		{9, topo.Grid{S: 3, T: 3}, 1},    // odd tiles degrade to 1
	}
	for _, c := range cases {
		if got := DefaultBlockSize(matrix.Square(c.n), c.g); got != c.want {
			t.Fatalf("DefaultBlockSize(%d, %v) = %d, want %d", c.n, c.g, got, c.want)
		}
	}
}

// Every candidate the enumerator emits must satisfy the engine's layout
// constraints — a candidate that fails only at execution time would poison
// stage 2.
func TestCandidatesAreFeasible(t *testing.T) {
	reqs := []Request{
		{Platform: platform.Grid5000(), N: 512, P: 16},
		{Platform: platform.BlueGeneP(), N: 768, P: 12, Algorithms: []engine.Algorithm{
			engine.SUMMA, engine.HSUMMA, engine.Multilevel, engine.Cannon, engine.Fox}},
		{Platform: platform.Exascale(), N: 1024, P: 64, Quick: true},
	}
	for _, req := range reqs {
		cands, err := Candidates(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			if _, err := c.Spec(matrix.Square(req.N)); err != nil {
				t.Fatalf("candidate %s does not resolve: %v", c, err)
			}
			if c.Grid.Size() != req.P {
				t.Fatalf("candidate %s grid does not hold %d procs", c, req.P)
			}
		}
	}
}

// A pinned grid or block size must constrain every candidate.
func TestCandidatePins(t *testing.T) {
	g := topo.Grid{S: 2, T: 8}
	cands, err := Candidates(Request{
		Platform: platform.Grid5000(), N: 512, P: 16, Grid: &g, BlockSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Grid != g {
			t.Fatalf("candidate %s escaped the pinned grid", c)
		}
		if c.BlockSize != 32 && c.Algorithm != engine.Cannon && c.Algorithm != engine.Fox {
			t.Fatalf("candidate %s escaped the pinned block size", c)
		}
	}
	// Cannon/Fox need a square grid; the pinned 2x8 grid excludes them.
	for _, c := range cands {
		if c.Algorithm == engine.Cannon || c.Algorithm == engine.Fox {
			t.Fatalf("non-square pinned grid admitted %s", c)
		}
	}
}

// Under a core budget the enumeration must sweep (ranks × threads) splits:
// every candidate fits the budget, more than one thread count appears, and
// pinning Threads collapses the sweep to that value.
func TestCoreBudgetEnumeratesRankThreadSplits(t *testing.T) {
	req := Request{Platform: platform.Grid5000(), N: 1024, CoreBudget: 64, Quick: true}
	cands, err := Candidates(req)
	if err != nil {
		t.Fatal(err)
	}
	threadCounts := map[int]bool{}
	for _, c := range cands {
		if c.Cores() > req.CoreBudget {
			t.Fatalf("candidate %s needs %d cores, budget is %d", c, c.Cores(), req.CoreBudget)
		}
		th := c.Threads
		if th < 1 {
			th = 1
		}
		threadCounts[th] = true
		if c.Grid.Size()*th > req.CoreBudget {
			t.Fatalf("candidate %s: %d ranks × %d threads exceeds budget", c, c.Grid.Size(), th)
		}
	}
	if len(threadCounts) < 2 {
		t.Fatalf("core-budget sweep produced only thread counts %v, want at least two splits", threadCounts)
	}

	pinned, err := Candidates(Request{Platform: platform.Grid5000(), N: 1024, CoreBudget: 64, Threads: 4, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range pinned {
		if c.Threads != 4 {
			t.Fatalf("pinned Threads=4 produced candidate %s with t=%d", c, c.Threads)
		}
		if c.Grid.Size() != 16 {
			t.Fatalf("64 cores / 4 threads should plan 16 ranks, candidate %s has %d", c, c.Grid.Size())
		}
	}
}

// PlanFor under a core budget must rank hybrid candidates and resolve to a
// concrete (grid, threads) pair whose cores fit the budget; the plan echoes
// the budget for display and JSON consumers.
func TestPlanForCoreBudget(t *testing.T) {
	pl, err := PlanFor(Request{
		Platform: platform.Grid5000(), N: 1024, CoreBudget: 64,
		Quick: true, AnalyticOnly: true, NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.CoreBudget != 64 {
		t.Fatalf("plan echoes core budget %d, want 64", pl.CoreBudget)
	}
	best := pl.Best.Candidate
	if best.Cores() > 64 {
		t.Fatalf("best candidate %s needs %d cores, budget is 64", best, best.Cores())
	}
	// The winner's spec must carry the thread budget into execution.
	spec, err := best.Spec(matrix.Square(1024))
	if err != nil {
		t.Fatal(err)
	}
	wantT := best.Threads
	if wantT < 1 {
		wantT = 1
	}
	gotT := spec.Opts.Threads
	if gotT < 1 {
		gotT = 1
	}
	if gotT != wantT {
		t.Fatalf("spec threads %d, candidate threads %d", gotT, wantT)
	}
}

// The analytic scorer must reward intra-rank threads on compute-bound
// problems: same grid, more threads, strictly lower total (and untouched
// communication).
func TestScorerThreadsSpeedup(t *testing.T) {
	s := newScorer(matrix.Square(2048), platform.Grid5000().Model, false)
	g := topo.Grid{S: 4, T: 4}
	serial := Candidate{Algorithm: engine.SUMMA, Grid: g, BlockSize: 128, Broadcast: sched.Binomial}
	hybrid := serial
	hybrid.Threads = 4
	commS, totalS := s.score(serial)
	commH, totalH := s.score(hybrid)
	if commS != commH {
		t.Fatalf("threads changed communication cost: %g vs %g", commS, commH)
	}
	if totalH >= totalS {
		t.Fatalf("4 threads did not lower total: %g vs %g", totalH, totalS)
	}
}
