package tune

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/platform"
)

// The event engine is bit-identical to the goroutine engine, so routing
// the planner's stage-2 refinement through it must leave every pick
// unchanged — on all five platform presets. This is the acceptance
// condition for letting "auto" (the default) use the event engine in
// planning.
func TestRefinementEngineDoesNotChangePicks(t *testing.T) {
	presets := map[string]platform.Platform{
		"grid5000":     platform.Grid5000(),
		"bgp":          platform.BlueGeneP(),
		"exascale":     platform.Exascale(),
		"grid5000-cal": platform.Grid5000Calibrated(),
		"bgp-cal":      platform.BlueGenePCalibrated(),
	}
	for name, pf := range presets {
		pf := pf
		t.Run(name, func(t *testing.T) {
			base := Request{Platform: pf, N: 512, P: 16, Quick: true, NoCache: true}
			var plans []*Plan
			for _, ex := range []engine.Executor{engine.ExecutorGoroutine, engine.ExecutorEvent, engine.ExecutorAuto} {
				req := base
				req.Executor = ex
				pl, err := NewPlanner().Plan(req)
				if err != nil {
					t.Fatalf("%s: %v", ex, err)
				}
				plans = append(plans, pl)
			}
			ref := plans[0]
			for _, pl := range plans[1:] {
				if fmt.Sprintf("%+v", pl.Best.Candidate) != fmt.Sprintf("%+v", ref.Best.Candidate) {
					t.Fatalf("best pick changed with executor: %+v vs %+v", pl.Best.Candidate, ref.Best.Candidate)
				}
				if len(pl.Ranked) != len(ref.Ranked) {
					t.Fatalf("ranked set size changed: %d vs %d", len(pl.Ranked), len(ref.Ranked))
				}
				for i := range pl.Ranked {
					if fmt.Sprintf("%+v", pl.Ranked[i].Candidate) != fmt.Sprintf("%+v", ref.Ranked[i].Candidate) ||
						pl.Ranked[i].SimComm != ref.Ranked[i].SimComm ||
						pl.Ranked[i].SimTotal != ref.Ranked[i].SimTotal {
						t.Fatalf("rank %d differs across executors: %+v vs %+v", i, pl.Ranked[i], ref.Ranked[i])
					}
				}
			}
		})
	}
}

// TestRefineTimeCounter checks that cold plans accumulate refinement wall
// time in the planner counters (the observability the event engine's
// speedup is measured against).
func TestRefineTimeCounter(t *testing.T) {
	p := NewPlanner()
	if _, err := p.Plan(Request{Platform: platform.Grid5000(), N: 512, P: 16, Quick: true}); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.SimRuns == 0 {
		t.Fatal("expected stage-2 virtual runs")
	}
	if st.RefineNanos <= 0 {
		t.Fatalf("RefineNanos = %d, want > 0", st.RefineNanos)
	}
	if st.RefineTime() <= 0 {
		t.Fatalf("RefineTime() = %v, want > 0", st.RefineTime())
	}
	// A cache hit must not add refinement time.
	before := p.Stats().RefineNanos
	if _, err := p.Plan(Request{Platform: platform.Grid5000(), N: 512, P: 16, Quick: true}); err != nil {
		t.Fatal(err)
	}
	if after := p.Stats().RefineNanos; after != before {
		t.Fatalf("cache hit changed RefineNanos: %d -> %d", before, after)
	}
}
