// Package hockney implements the Hockney point-to-point communication model
// used throughout the paper (Section IV): the time to move a message of m
// bytes between two processors is T(m) = α + m·β, where α is the latency and
// β the reciprocal bandwidth. The same Model value parameterises the
// closed-form analysis (internal/model) and the discrete-event simulator
// (internal/simnet), so the two timing paths are always comparing like with
// like.
package hockney

import (
	"fmt"
	"math"
	"sync/atomic"
)

// BytesPerElement is the wire size of one matrix element (float64).
const BytesPerElement = 8

// Model is a homogeneous Hockney machine model. Gamma extends the pure
// communication model with the combined floating-point multiply-add time the
// paper calls γ, so one Model describes a full platform.
type Model struct {
	// Alpha is the per-message latency in seconds.
	Alpha float64
	// Beta is the reciprocal bandwidth in seconds per message unit.
	// This repository follows the paper's arithmetic and counts matrix
	// elements as the unit (see internal/platform); PointToPoint simply
	// applies Beta to whatever unit the caller passes.
	Beta float64
	// Gamma is the time of one floating-point operation in seconds
	// (the paper charges 2·n³/p flops of computation at this rate).
	Gamma float64
}

// PointToPoint returns the time to send a message of the given size (in
// Beta's units) between two processors.
func (m Model) PointToPoint(size float64) float64 {
	if size < 0 {
		panic(fmt.Sprintf("hockney: negative message size %g", size))
	}
	return m.Alpha + size*m.Beta
}

// ElemBytes converts an element count to wire bytes.
func ElemBytes(elems float64) float64 { return elems * BytesPerElement }

// Compute returns the time to execute the given number of floating-point
// operations on one processor.
func (m Model) Compute(flops float64) float64 {
	if flops < 0 {
		panic(fmt.Sprintf("hockney: negative flop count %g", flops))
	}
	return flops * m.Gamma
}

// DefaultThreadOverhead is the uncalibrated serial-fraction coefficient of
// the intra-rank parallel-efficiency curve: Speedup(t) = t / (1 + s·(t−1)),
// an Amdahl-style model of the per-band packing redundancy and join cost
// the threaded kernel pays. 0.03 gives Speedup(4) ≈ 3.67, the near-linear
// scaling the packed kernel shows on write-disjoint row bands; hosts that
// have run cmd/hsumma-bench -kernelbench can replace it with the measured
// fit via CalibrateFromScaling.
const DefaultThreadOverhead = 0.03

// threadOverhead holds the active serial fraction as float64 bits, so the
// planner (which calls Speedup from concurrent stage-2 refinements) never
// races a calibration performed at daemon startup.
var threadOverhead atomic.Uint64

func init() { threadOverhead.Store(math.Float64bits(DefaultThreadOverhead)) }

// ThreadOverhead returns the serial fraction Speedup currently models —
// DefaultThreadOverhead unless SetThreadOverhead/CalibrateFromScaling
// replaced it.
func ThreadOverhead() float64 { return math.Float64frombits(threadOverhead.Load()) }

// SetThreadOverhead replaces the modelled serial fraction, clamped to
// [0, 1] (0 = perfect scaling, 1 = no scaling at all). NaN is ignored.
func SetThreadOverhead(s float64) {
	if math.IsNaN(s) {
		return
	}
	threadOverhead.Store(math.Float64bits(math.Min(1, math.Max(0, s))))
}

// CalibrateFromScaling fits the serial fraction from measured intra-rank
// scaling points — thread count t mapped to the observed speedup S over
// one thread, kernelbench's scaling_vs_1t. Inverting the Amdahl curve
// gives one estimate s = (t/S − 1)/(t − 1) per point; the fit is the mean
// over the usable points (t > 1 with positive speedup), clamped to [0, 1]
// and installed via SetThreadOverhead. With no usable point the overhead
// is left untouched (the 3% default stays) and ok is false. Speedup(1)
// remains exactly 1 under any calibration — serial paths stay
// bit-identical.
func CalibrateFromScaling(points map[int]float64) (fit float64, ok bool) {
	var sum float64
	var n int
	for t, s := range points {
		if t <= 1 || s <= 0 {
			continue
		}
		sum += (float64(t)/s - 1) / float64(t-1)
		n++
	}
	if n == 0 {
		return ThreadOverhead(), false
	}
	SetThreadOverhead(sum / float64(n))
	return ThreadOverhead(), true
}

// Speedup returns the modelled intra-rank speedup of the local GEMM when a
// rank multiplies with t goroutine workers (the paper's OpenMP threads
// inside each MPI process). t ≤ 1 returns exactly 1, so dividing a flop
// count by Speedup(threads) is bitwise neutral for the default
// single-threaded configuration — the invariant the virtual engines'
// bit-parity tests rely on.
func Speedup(t int) float64 {
	if t <= 1 {
		return 1
	}
	tf := float64(t)
	return tf / (1 + ThreadOverhead()*(tf-1))
}

// LatencyBandwidthRatio returns α/β in bytes: the message size at which the
// latency and bandwidth terms are equal. The paper's minimum/maximum
// condition (eq. 10–11) compares this ratio against 2nb/p.
func (m Model) LatencyBandwidthRatio() float64 {
	if m.Beta == 0 {
		return 0
	}
	return m.Alpha / m.Beta
}

func (m Model) String() string {
	return fmt.Sprintf("hockney{α=%.3gs, β=%.3gs/elem, γ=%.3gs/flop}", m.Alpha, m.Beta, m.Gamma)
}
