package hockney

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointToPoint(t *testing.T) {
	m := Model{Alpha: 1e-4, Beta: 1e-9}
	got := m.PointToPoint(1e6)
	want := 1e-4 + 1e6*1e-9
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("T(1MB) = %g, want %g", got, want)
	}
}

func TestZeroMessagePaysLatencyOnly(t *testing.T) {
	m := Model{Alpha: 5e-6, Beta: 1e-9}
	if m.PointToPoint(0) != 5e-6 {
		t.Fatal("zero-byte message should cost exactly α")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	Model{}.PointToPoint(-1)
}

func TestCompute(t *testing.T) {
	m := Model{Gamma: 1e-9}
	if m.Compute(2e9) != 2.0 {
		t.Fatalf("compute = %v", m.Compute(2e9))
	}
}

func TestElemBytes(t *testing.T) {
	if ElemBytes(100) != 800 {
		t.Fatalf("ElemBytes(100) = %v", ElemBytes(100))
	}
}

func TestLatencyBandwidthRatio(t *testing.T) {
	m := Model{Alpha: 1e-4, Beta: 1e-9}
	if r := m.LatencyBandwidthRatio(); math.Abs(r-1e5) > 1e-6 {
		t.Fatalf("α/β = %v, want 1e5", r)
	}
	if (Model{Alpha: 1}).LatencyBandwidthRatio() != 0 {
		t.Fatal("zero β should yield ratio 0, not a division by zero")
	}
}

// Property: T is affine — T(a+b) = T(a)+T(b)-α.
func TestQuickAffine(t *testing.T) {
	m := Model{Alpha: 3e-6, Beta: 2e-9}
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		lhs := m.PointToPoint(x + y)
		rhs := m.PointToPoint(x) + m.PointToPoint(y) - m.Alpha
		return math.Abs(lhs-rhs) <= 1e-12*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: monotonic in message size.
func TestQuickMonotone(t *testing.T) {
	m := Model{Alpha: 1e-5, Beta: 1e-9}
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return m.PointToPoint(x) <= m.PointToPoint(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if s := (Model{Alpha: 1, Beta: 2, Gamma: 3}).String(); len(s) == 0 {
		t.Fatal("empty String")
	}
}
