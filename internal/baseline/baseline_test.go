package baseline

import (
	"fmt"
	"testing"

	"repro/internal/blas"
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/topo"
)

const tol = 1e-10

func runSquare(t *testing.T, q, n int, algo func(comm.Comm, topo.Grid, matrix.Shape, *matrix.Dense, *matrix.Dense, *matrix.Dense) error) {
	t.Helper()
	g := topo.Grid{S: q, T: q}
	bm, err := dist.NewBlockMap(n, n, g)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(n, n, 31)
	b := matrix.Random(n, n, 32)
	aT, bT := bm.Scatter(a), bm.Scatter(b)
	cT := make([]*matrix.Dense, g.Size())
	for r := range cT {
		cT[r] = matrix.New(bm.LocalRows(), bm.LocalCols())
	}
	if err := mpi.Run(g.Size(), func(c *mpi.Comm) {
		if e := algo(mpi.AsComm(c), g, matrix.Square(n), aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			panic(e)
		}
	}); err != nil {
		t.Fatal(err)
	}
	want := matrix.New(n, n)
	blas.Gemm(want, a, b)
	if d := matrix.MaxAbsDiff(bm.Gather(cT), want); d > tol {
		t.Fatalf("q=%d n=%d: differs from reference by %g", q, n, d)
	}
	// Inputs untouched.
	if !matrix.Equal(bm.Gather(aT), a) || !matrix.Equal(bm.Gather(bT), b) {
		t.Fatal("algorithm modified its inputs")
	}
}

func TestCannonSizes(t *testing.T) {
	for _, c := range []struct{ q, n int }{{1, 4}, {2, 8}, {3, 9}, {4, 16}, {4, 8}} {
		c := c
		t.Run(fmt.Sprintf("q%d_n%d", c.q, c.n), func(t *testing.T) {
			runSquare(t, c.q, c.n, func(cm comm.Comm, g topo.Grid, sh matrix.Shape, a, b, c *matrix.Dense) error {
				return Cannon(cm, g, sh, comm.Serial, a, b, c)
			})
		})
	}
}

func TestFoxSizes(t *testing.T) {
	fox := func(cm comm.Comm, g topo.Grid, sh matrix.Shape, a, b, c *matrix.Dense) error {
		return Fox(cm, g, sh, sched.Binomial, comm.Serial, a, b, c)
	}
	for _, c := range []struct{ q, n int }{{1, 4}, {2, 8}, {3, 9}, {4, 16}} {
		c := c
		t.Run(fmt.Sprintf("q%d_n%d", c.q, c.n), func(t *testing.T) {
			runSquare(t, c.q, c.n, fox)
		})
	}
}

func TestFoxVanDeGeijnBroadcast(t *testing.T) {
	fox := func(cm comm.Comm, g topo.Grid, sh matrix.Shape, a, b, c *matrix.Dense) error {
		return Fox(cm, g, sh, sched.VanDeGeijn, comm.Serial, a, b, c)
	}
	runSquare(t, 4, 16, fox)
}

func TestCannonAccumulates(t *testing.T) {
	q, n := 2, 8
	g := topo.Grid{S: q, T: q}
	bm, _ := dist.NewBlockMap(n, n, g)
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	c0 := matrix.Random(n, n, 3)
	aT, bT, cT := bm.Scatter(a), bm.Scatter(b), bm.Scatter(c0)
	if err := mpi.Run(g.Size(), func(c *mpi.Comm) {
		if e := Cannon(mpi.AsComm(c), g, matrix.Square(n), comm.Serial, aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
			panic(e)
		}
	}); err != nil {
		t.Fatal(err)
	}
	want := c0.Clone()
	blas.Gemm(want, a, b)
	if d := matrix.MaxAbsDiff(bm.Gather(cT), want); d > tol {
		t.Fatalf("accumulation broken: %g", d)
	}
}

func TestNonSquareGridRejected(t *testing.T) {
	g := topo.Grid{S: 2, T: 4}
	err := mpi.Run(8, func(c *mpi.Comm) {
		tile := matrix.New(4, 2)
		if e := Cannon(mpi.AsComm(c), g, matrix.Square(8), comm.Serial, tile, tile.Clone(), tile.Clone()); e == nil {
			panic("non-square grid accepted by Cannon")
		}
		if e := Fox(mpi.AsComm(c), g, matrix.Square(8), sched.Binomial, comm.Serial, tile, tile.Clone(), tile.Clone()); e == nil {
			panic("non-square grid accepted by Fox")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndivisibleNRejected(t *testing.T) {
	g := topo.Grid{S: 2, T: 2}
	err := mpi.Run(4, func(c *mpi.Comm) {
		tile := matrix.New(3, 3)
		if e := Cannon(mpi.AsComm(c), g, matrix.Square(7), comm.Serial, tile, tile.Clone(), tile.Clone()); e == nil {
			panic("n=7 over q=2 accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// All three families must agree numerically on the same inputs (within FP
// reassociation tolerance): Cannon, Fox and the sequential oracle.
func TestCannonFoxAgree(t *testing.T) {
	q, n := 3, 18
	g := topo.Grid{S: q, T: q}
	bm, _ := dist.NewBlockMap(n, n, g)
	a := matrix.Random(n, n, 77)
	b := matrix.Random(n, n, 78)
	results := make([]*matrix.Dense, 2)
	for idx, algo := range []func(comm.Comm, topo.Grid, matrix.Shape, *matrix.Dense, *matrix.Dense, *matrix.Dense) error{
		func(cm comm.Comm, g topo.Grid, sh matrix.Shape, x, y, z *matrix.Dense) error {
			return Cannon(cm, g, sh, comm.Serial, x, y, z)
		},
		func(cm comm.Comm, g topo.Grid, sh matrix.Shape, x, y, z *matrix.Dense) error {
			return Fox(cm, g, sh, sched.Binomial, comm.Threaded(2), x, y, z)
		},
	} {
		aT, bT := bm.Scatter(a), bm.Scatter(b)
		cT := make([]*matrix.Dense, g.Size())
		for r := range cT {
			cT[r] = matrix.New(bm.LocalRows(), bm.LocalCols())
		}
		if err := mpi.Run(g.Size(), func(c *mpi.Comm) {
			if e := algo(mpi.AsComm(c), g, matrix.Square(n), aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]); e != nil {
				panic(e)
			}
		}); err != nil {
			t.Fatal(err)
		}
		results[idx] = bm.Gather(cT)
	}
	if d := matrix.MaxAbsDiff(results[0], results[1]); d > tol {
		t.Fatalf("Cannon and Fox differ by %g", d)
	}
}
