// Package baseline implements the classical distributed matrix
// multiplication algorithms the paper positions HSUMMA against in its
// introduction: Cannon's algorithm (1969) and Fox's broadcast-multiply-roll
// algorithm (1987). Both require a square q×q process grid — exactly the
// restriction the paper cites as the reason SUMMA-style algorithms won in
// practice — and both are validated against sequential GEMM so the
// comparison benches measure correct implementations.
package baseline

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/topo"
)

// squareGridOf validates the square-grid requirement and the tile shapes.
func squareGridOf(comm *mpi.Comm, g topo.Grid, n int) (q int, err error) {
	if g.S != g.T {
		return 0, fmt.Errorf("baseline: %v is not square (Cannon/Fox require q×q)", g)
	}
	if comm.Size() != g.Size() {
		return 0, fmt.Errorf("baseline: communicator size %d does not match grid %v", comm.Size(), g)
	}
	if n%g.S != 0 {
		return 0, fmt.Errorf("baseline: n=%d not divisible by q=%d", n, g.S)
	}
	return g.S, nil
}

// Cannon performs C += A·B with Cannon's algorithm: after an initial
// skewing alignment (row i of A rotated left by i, column j of B rotated up
// by j), q iterations of local multiply followed by a single-step rotation
// of A leftwards and B upwards. Local tiles are (n/q)×(n/q); aLoc and bLoc
// are not modified (the rotations work on copies).
func Cannon(comm *mpi.Comm, g topo.Grid, n int, aLoc, bLoc, cLoc *matrix.Dense) error {
	q, err := squareGridOf(comm, g, n)
	if err != nil {
		return err
	}
	i, j := g.Coords(comm.Rank())
	tile := n / q
	if aLoc.Rows != tile || aLoc.Cols != tile {
		return fmt.Errorf("baseline: tile %dx%d, want %dx%d", aLoc.Rows, aLoc.Cols, tile, tile)
	}
	a := aLoc.Clone()
	b := bLoc.Clone()
	if q == 1 {
		blas.Gemm(cLoc, a, b)
		return nil
	}
	aw := make([]float64, tile*tile)
	bw := make([]float64, tile*tile)

	rot := func(buf *matrix.Dense, wire []float64, dst, src, tag int) {
		buf.Pack(wire[:0])
		comm.SendRecv(dst, tag, wire, src, tag, wire)
		buf.Unpack(wire)
	}
	// Initial alignment: A_{i,j} moves to (i, j-i); B_{i,j} to (i-j, j).
	if i > 0 {
		dst := g.Rank(i, mod(j-i, q))
		src := g.Rank(i, mod(j+i, q))
		rot(a, aw, dst, src, 0)
	}
	if j > 0 {
		dst := g.Rank(mod(i-j, q), j)
		src := g.Rank(mod(i+j, q), j)
		rot(b, bw, dst, src, 1)
	}
	for step := 0; step < q; step++ {
		blas.Gemm(cLoc, a, b)
		if step == q-1 {
			break
		}
		// Rotate A one step left, B one step up.
		rot(a, aw, g.Rank(i, mod(j-1, q)), g.Rank(i, mod(j+1, q)), 2)
		rot(b, bw, g.Rank(mod(i-1, q), j), g.Rank(mod(i+1, q), j), 3)
	}
	return nil
}

// Fox performs C += A·B with Fox's algorithm (broadcast-multiply-roll):
// at step k the tile A_{i,(i+k) mod q} is broadcast along each process row,
// multiplied with the local B, and B rolls upwards one step. bcastAlg
// selects the broadcast schedule (the original paper assumed a hypercube
// broadcast; any algorithm from internal/sched works).
func Fox(comm *mpi.Comm, g topo.Grid, n int, bcastAlg sched.Algorithm, aLoc, bLoc, cLoc *matrix.Dense) error {
	q, err := squareGridOf(comm, g, n)
	if err != nil {
		return err
	}
	if bcastAlg == "" {
		bcastAlg = sched.Binomial
	}
	i, j := g.Coords(comm.Rank())
	tile := n / q
	if aLoc.Rows != tile || aLoc.Cols != tile {
		return fmt.Errorf("baseline: tile %dx%d, want %dx%d", aLoc.Rows, aLoc.Cols, tile, tile)
	}
	rowComm := comm.Split(i, j)
	b := bLoc.Clone()
	if q == 1 {
		blas.Gemm(cLoc, aLoc, b)
		return nil
	}
	aPanel := matrix.New(tile, tile)
	aw := make([]float64, tile*tile)
	bw := make([]float64, tile*tile)
	for k := 0; k < q; k++ {
		root := (i + k) % q
		if j == root {
			aLoc.Pack(aw[:0])
		}
		rowComm.Bcast(bcastAlg, root, aw, 1)
		aPanel.Unpack(aw)
		blas.Gemm(cLoc, aPanel, b)
		if k == q-1 {
			break
		}
		// Roll B upwards: send my B to (i-1, j), receive from (i+1, j).
		b.Pack(bw[:0])
		comm.SendRecv(g.Rank(mod(i-1, q), j), 4, bw, g.Rank(mod(i+1, q), j), 4, bw)
		b.Unpack(bw)
	}
	return nil
}

func mod(v, m int) int { return ((v % m) + m) % m }
