// Package baseline implements the classical distributed matrix
// multiplication algorithms the paper positions HSUMMA against in its
// introduction: Cannon's algorithm (1969) and Fox's broadcast-multiply-roll
// algorithm (1987). Both require a square q×q process grid — exactly the
// restriction the paper cites as the reason SUMMA-style algorithms won in
// practice — and both are validated against sequential GEMM so the
// comparison benches measure correct implementations.
//
// Like the core algorithms, both are written once against the
// transport-agnostic comm.Comm interface and run unchanged on the live
// goroutine runtime and the simnet virtual communicator.
package baseline

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/topo"
)

// squareGridOf validates the square-only restriction (square shape on a
// square grid, via the shared matrix.ErrSquareOnly) and the divisibility
// requirement.
func squareGridOf(c comm.Comm, g topo.Grid, sh matrix.Shape) (q, n int, err error) {
	if !sh.IsSquare() {
		return 0, 0, fmt.Errorf("baseline: shape %v: %w", sh, matrix.ErrSquareOnly)
	}
	if g.S != g.T {
		return 0, 0, fmt.Errorf("baseline: grid %v: %w", g, matrix.ErrSquareOnly)
	}
	if c.Size() != g.Size() {
		return 0, 0, fmt.Errorf("baseline: communicator size %d does not match grid %v", c.Size(), g)
	}
	n = sh.N
	if n%g.S != 0 {
		return 0, 0, fmt.Errorf("baseline: n=%d not divisible by q=%d", n, g.S)
	}
	return g.S, n, nil
}

// Cannon performs C += A·B with Cannon's algorithm: after an initial
// skewing alignment (row i of A rotated left by i, column j of B rotated up
// by j), q iterations of local multiply followed by a single-step rotation
// of A leftwards and B upwards. Local tiles are (n/q)×(n/q); aLoc and bLoc
// are not modified (the rotations work on copies). x describes the local
// multiplies' execution (threads, optional Strassen kernel).
func Cannon(c comm.Comm, g topo.Grid, sh matrix.Shape, x comm.Exec, aLoc, bLoc, cLoc *matrix.Dense) error {
	q, n, err := squareGridOf(c, g, sh)
	if err != nil {
		return err
	}
	i, j := g.Coords(c.Rank())
	tile := n / q
	if aLoc.Rows != tile || aLoc.Cols != tile {
		return fmt.Errorf("baseline: tile %dx%d, want %dx%d", aLoc.Rows, aLoc.Cols, tile, tile)
	}
	a := c.CloneTile(aLoc)
	b := c.CloneTile(bLoc)
	if q == 1 {
		c.Gemm(cLoc, a, b, x)
		return nil
	}
	aw := c.NewBuf(tile * tile)
	bw := c.NewBuf(tile * tile)

	rot := func(buf *matrix.Dense, wire comm.Buf, dst, src, tag int) {
		c.Pack(wire, buf)
		c.SendRecv(dst, tag, wire, src, tag, wire)
		c.Unpack(buf, wire)
	}
	// Initial alignment: A_{i,j} moves to (i, j-i); B_{i,j} to (i-j, j).
	if i > 0 {
		dst := g.Rank(i, mod(j-i, q))
		src := g.Rank(i, mod(j+i, q))
		rot(a, aw, dst, src, 0)
	}
	if j > 0 {
		dst := g.Rank(mod(i-j, q), j)
		src := g.Rank(mod(i+j, q), j)
		rot(b, bw, dst, src, 1)
	}
	for step := 0; step < q; step++ {
		c.Gemm(cLoc, a, b, x)
		if step == q-1 {
			break
		}
		// Rotate A one step left, B one step up.
		rot(a, aw, g.Rank(i, mod(j-1, q)), g.Rank(i, mod(j+1, q)), 2)
		rot(b, bw, g.Rank(mod(i-1, q), j), g.Rank(mod(i+1, q), j), 3)
	}
	return nil
}

// Fox performs C += A·B with Fox's algorithm (broadcast-multiply-roll):
// at step k the tile A_{i,(i+k) mod q} is broadcast along each process row,
// multiplied with the local B, and B rolls upwards one step. bcastAlg
// selects the broadcast schedule (the original paper assumed a hypercube
// broadcast; any algorithm from internal/sched works). x describes the
// local multiplies' execution (threads, optional Strassen kernel).
func Fox(c comm.Comm, g topo.Grid, sh matrix.Shape, bcastAlg sched.Algorithm, x comm.Exec, aLoc, bLoc, cLoc *matrix.Dense) error {
	q, n, err := squareGridOf(c, g, sh)
	if err != nil {
		return err
	}
	if bcastAlg == "" {
		bcastAlg = sched.Binomial
	}
	i, j := g.Coords(c.Rank())
	tile := n / q
	if aLoc.Rows != tile || aLoc.Cols != tile {
		return fmt.Errorf("baseline: tile %dx%d, want %dx%d", aLoc.Rows, aLoc.Cols, tile, tile)
	}
	rowComm := c.Split(i, j)
	b := c.CloneTile(bLoc)
	if q == 1 {
		c.Gemm(cLoc, aLoc, b, x)
		return nil
	}
	aPanel := c.NewTile(tile, tile)
	aw := c.NewBuf(tile * tile)
	bw := c.NewBuf(tile * tile)
	for k := 0; k < q; k++ {
		root := (i + k) % q
		if j == root {
			c.Pack(aw, aLoc)
		}
		rowComm.Bcast(bcastAlg, root, aw, 1)
		c.Unpack(aPanel, aw)
		c.Gemm(cLoc, aPanel, b, x)
		if k == q-1 {
			break
		}
		// Roll B upwards: send my B to (i-1, j), receive from (i+1, j).
		c.Pack(bw, b)
		c.SendRecv(g.Rank(mod(i-1, q), j), 4, bw, g.Rank(mod(i+1, q), j), 4, bw)
		c.Unpack(b, bw)
	}
	return nil
}

func mod(v, m int) int { return ((v % m) + m) % m }
