package evsim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/blas"
	"repro/internal/comm"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// This file is the producer half of the engine: rComm implements
// comm.Comm by *recording* each call as one ring event instead of
// executing it. The recording side performs the same argument validation
// the goroutine engine's VComm does (peer ranges, self-sends, pack
// shapes, Gemm shapes), so programming errors fail identically on both
// engines; timing-side checks that need replay state (receive sizes,
// collective signature mismatches) move to the consumer.

// producer is the per-rank recording context. chead/ctail cache the ring
// indices so the push fast path performs a single atomic publish.
type producer struct {
	w     *World
	world int32
	ring  *ring
	chead uint64 // last observed consumer head
	ctail uint64 // producer-owned tail (mirrored to ring.tail on publish)
}

// finish publishes the remaining events, marks the rank's program
// complete and rings the consumer so the replay can observe the exit
// (and, when this was the last producer, run its termination scan).
func (p *producer) finish() {
	p.publish()
	p.ring.done.Store(true)
	if p.ring.hungry.CompareAndSwap(true, false) {
		p.w.wakeRank(p.world)
	}
	p.w.alive.Add(-1)
	p.w.wakeMu.Lock()
	p.w.wakeCond.Broadcast()
	p.w.wakeMu.Unlock()
}

// commState is one communicator: the immutable member list shared by the
// producer and consumer sides, the producer-side split rendezvous, and the
// consumer-owned collective gather.
//
// The replay holds at most ONE live gather per communicator at any time:
// a member reaches collective k+1 only after k has fired (its replay was
// parked on k), and the gather is retired at fire time before any member
// resumes. So the gather lives inline — no map, no allocation on the
// collective hot path.
type commState struct {
	ranks []int // comm rank -> world rank (immutable after creation)

	// Consumer side: the in-flight collective, valid when gActive.
	g       gather
	gSeq    int32
	gActive bool

	// Producer side: split rendezvous (the only blocking producer call).
	splitMu   sync.Mutex
	splitCond *sync.Cond
	splits    map[int32]*splitGather
}

// newCommState registers a communicator so abort can wake its split
// waiters.
func (w *World) newCommState(ranks []int) *commState {
	cs := &commState{
		ranks:  ranks,
		splits: make(map[int32]*splitGather),
	}
	cs.g.parked = make([]int32, 0, len(ranks)-1)
	cs.splitCond = sync.NewCond(&cs.splitMu)
	w.commMu.Lock()
	w.comms = append(w.comms, cs)
	w.commMu.Unlock()
	return cs
}

// rComm is a recording communicator bound to one rank, implementing
// comm.Comm for the event engine.
type rComm struct {
	p    *producer
	cs   *commState
	rank int32

	opSeq    int32
	splitSeq int32
}

var _ comm.Comm = (*rComm)(nil)

// Rank returns the caller's rank within the communicator.
func (c *rComm) Rank() int { return int(c.rank) }

// Size returns the number of ranks in the communicator.
func (c *rComm) Size() int { return len(c.cs.ranks) }

func (c *rComm) checkPeer(verb string, peer int) {
	if peer < 0 || peer >= len(c.cs.ranks) {
		panic(fmt.Sprintf("evsim: %s rank %d outside communicator of %d", verb, peer, len(c.cs.ranks)))
	}
	if peer == int(c.rank) {
		panic("evsim: self-send is not supported (use local copies)")
	}
}

// ck32 guards the int32 narrowing of recorded payload sizes and shapes:
// a silent wrap would produce wrong virtual times on the event engine
// only, breaking the bit-parity guarantee exactly where it could not be
// noticed. Panicking matches the engines' shared treatment of caller
// errors (the panic aborts the world and surfaces from Run).
func ck32(what string, v int) int32 {
	if v < 0 || int64(v) > math.MaxInt32 {
		panic(fmt.Sprintf("evsim: %s %d does not fit the recorded event field (max %d)", what, v, math.MaxInt32))
	}
	return int32(v)
}

// Send records an eager virtual send; the replay advances the sender's
// clock by the transfer and queues the message for the receiver.
func (c *rComm) Send(dst, tag int, data comm.Buf) {
	c.checkPeer("send to", dst)
	c.p.push(event{comm: c.cs, kind: evSend, a: int32(dst), b: int32(tag), c: ck32("send size", data.N), d: c.rank})
}

// Recv records a blocking receive; the replay parks the rank until the
// matching send has been replayed.
func (c *rComm) Recv(src, tag int, buf comm.Buf) {
	c.checkPeer("recv from", src)
	c.p.push(event{comm: c.cs, kind: evRecv, a: int32(src), b: int32(tag), c: ck32("recv size", buf.N)})
}

// SendRecv records the full-duplex shift primitive as its two halves; the
// replay processes them back to back, completing at the slower of the two
// directions exactly like the goroutine engine.
func (c *rComm) SendRecv(dst, sendTag int, send comm.Buf, src, recvTag int, recv comm.Buf) {
	c.checkPeer("send to", dst)
	c.checkPeer("recv from", src)
	c.p.push(event{comm: c.cs, kind: evSRSend, a: int32(dst), b: int32(sendTag), c: ck32("sendrecv send size", send.N), d: c.rank})
	c.p.push(event{comm: c.cs, kind: evSRRecv, a: int32(src), b: int32(recvTag), c: ck32("sendrecv recv size", recv.N)})
}

// Bcast records one collective arrival. The replay gathers the members by
// the communicator's op sequence and fires the schedule when the last one
// arrives.
func (c *rComm) Bcast(alg sched.Algorithm, root int, data comm.Buf, segments int) {
	p := len(c.cs.ranks)
	if root < 0 || root >= p {
		panic(fmt.Sprintf("evsim: bcast root %d outside communicator of %d", root, p))
	}
	if p == 1 {
		return
	}
	seq := c.opSeq
	c.opSeq++
	c.p.push(event{comm: c.cs, kind: evBcast, alg: algCode(alg),
		a: int32(root), b: int32(segments), c: ck32("bcast size", data.N), d: seq})
}

// splitGather coordinates one Split call, mirroring the goroutine engine.
type splitGather struct {
	arrived int
	colors  map[int]int
	keys    map[int]int
	done    bool
	result  map[int]*rComm
}

// Split partitions the communicator exactly like MPI_Comm_split: ranks
// passing the same colour form a new communicator ordered by (key, old
// rank); a negative colour returns nil. This is the one producer-side
// rendezvous: the child communicator's rank and size feed the algorithm's
// control flow, so recording cannot defer it — but splits are a handful
// per run, so the parks are negligible.
func (c *rComm) Split(color, key int) comm.Comm {
	w := c.p.w
	cs := c.cs
	seq := c.splitSeq
	c.splitSeq++

	// The rendezvous may park this producer indefinitely: make every
	// already-recorded event visible to the replay first.
	c.p.publish()

	cs.splitMu.Lock()
	defer cs.splitMu.Unlock()
	sg := cs.splits[seq]
	if sg == nil {
		sg = &splitGather{colors: make(map[int]int), keys: make(map[int]int)}
		cs.splits[seq] = sg
	}
	sg.colors[int(c.rank)] = color
	sg.keys[int(c.rank)] = key
	sg.arrived++
	if sg.arrived == len(cs.ranks) {
		sg.result = c.computeSplit(sg)
		sg.done = true
		cs.splitCond.Broadcast()
		delete(cs.splits, seq)
	}
	for !sg.done {
		if w.aborted.Load() {
			panic(evAborted{})
		}
		cs.splitCond.Wait()
	}
	res := sg.result[int(c.rank)]
	if res == nil {
		return nil
	}
	return res
}

// computeSplit builds the new communicators once all members have
// arrived; called with the parent's split mutex held by the last arriver.
// The grouping rule lives in comm.SplitGroups, shared with the goroutine
// engine and the live transport, so every engine derives the same
// communicator structure for the same program.
func (c *rComm) computeSplit(sg *splitGather) map[int]*rComm {
	result := make(map[int]*rComm, len(sg.colors))
	for _, members := range comm.SplitGroups(sg.colors, sg.keys) {
		worldRanks := make([]int, len(members))
		for i, m := range members {
			worldRanks[i] = c.cs.ranks[m]
		}
		child := c.p.w.newCommState(worldRanks)
		for i, m := range members {
			result[m] = &rComm{p: c.p.w.prods[worldRanks[i]], cs: child, rank: int32(i)}
		}
	}
	for r, col := range sg.colors {
		if col < 0 {
			result[r] = nil
		}
	}
	return result
}

// --- Data plane: storage is elided, only shapes are recorded. ---

// NewBuf returns a length-only wire buffer.
func (c *rComm) NewBuf(elems int) comm.Buf { return comm.Buf{N: elems} }

// NewTile returns a shape-only matrix header (nil Data).
func (c *rComm) NewTile(rows, cols int) *matrix.Dense {
	return &matrix.Dense{Rows: rows, Cols: cols, Stride: cols}
}

// CloneTile returns a shape-only copy.
func (c *rComm) CloneTile(src *matrix.Dense) *matrix.Dense {
	return &matrix.Dense{Rows: src.Rows, Cols: src.Cols, Stride: src.Cols}
}

// Pack checks shapes; no elements move.
func (c *rComm) Pack(dst comm.Buf, src *matrix.Dense) { comm.CheckPack(dst, src) }

// Unpack checks shapes; no elements move.
func (c *rComm) Unpack(dst *matrix.Dense, src comm.Buf) { comm.CheckPack(src, dst) }

// Gemm validates shapes and records the local update's dimensions plus the
// execution descriptor packed into the event's spare d field: the low 16
// bits carry the thread budget, the high bits the Strassen cutoff (zero
// for the classic kernel — so for every non-Strassen program d equals the
// thread count exactly as it always has, and historical recordings replay
// bit-identically). The replay advances the rank's compute state exactly
// as the goroutine engine's Gemm does, including the
// hockney.Speedup(threads) division.
func (c *rComm) Gemm(cm, a, b *matrix.Dense, x comm.Exec) {
	if a.Cols != b.Rows || cm.Rows != a.Rows || cm.Cols != b.Cols {
		panic(fmt.Sprintf("evsim: gemm shape mismatch C(%dx%d) += A(%dx%d)*B(%dx%d)",
			cm.Rows, cm.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	threads := x.Threads
	if threads < 0 {
		threads = 0
	}
	if threads >= 1<<16 {
		panic(fmt.Sprintf("evsim: gemm threads %d does not fit the packed event field", threads))
	}
	d := int32(threads)
	if x.Strassen {
		// Resolve the cutoff before recording: the replay must charge the
		// exact recursion the live kernel runs.
		cut := blas.StrassenCutoff(x.Cutoff)
		if cut >= 1<<15 {
			panic(fmt.Sprintf("evsim: strassen cutoff %d does not fit the packed event field", cut))
		}
		d |= int32(cut) << 16
	}
	c.p.push(event{comm: c.cs, kind: evGemm,
		a: ck32("gemm rows", a.Rows), b: ck32("gemm cols", b.Cols), c: ck32("gemm inner dim", a.Cols),
		d: d})
}

// Axpy validates shapes and records the element-wise update Y += alpha·X;
// the replay charges rows·cols flops, mirroring the goroutine engine. The
// scalar itself is timing-irrelevant and is not recorded.
func (c *rComm) Axpy(alpha float64, x, y *matrix.Dense) {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		panic(fmt.Sprintf("evsim: axpy shape mismatch Y(%dx%d) += %g*X(%dx%d)",
			y.Rows, y.Cols, alpha, x.Rows, x.Cols))
	}
	c.p.push(event{comm: c.cs, kind: evAxpy,
		a: ck32("axpy rows", x.Rows), b: ck32("axpy cols", x.Cols)})
}

// Broadcast algorithm codes: events carry a byte, not the schedule name.
const (
	algFlat = iota
	algBinomial
	algBinary
	algChain
	algVanDeGeijn
)

func algCode(alg sched.Algorithm) uint8 {
	switch alg {
	case sched.Flat:
		return algFlat
	case sched.Binomial:
		return algBinomial
	case sched.Binary:
		return algBinary
	case sched.Chain:
		return algChain
	case sched.VanDeGeijn:
		return algVanDeGeijn
	default:
		// Same failure the goroutine engine produces when the schedule is
		// built, surfaced at record time.
		panic(fmt.Sprintf("evsim: bcast: unknown broadcast algorithm %q", alg))
	}
}

func algName(code uint8) sched.Algorithm {
	switch code {
	case algFlat:
		return sched.Flat
	case algBinomial:
		return sched.Binomial
	case algBinary:
		return sched.Binary
	case algChain:
		return sched.Chain
	default:
		return sched.VanDeGeijn
	}
}
