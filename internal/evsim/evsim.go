// Package evsim is the discrete-event virtual execution engine: it runs
// the unchanged algorithm layer (internal/core, internal/baseline, through
// internal/engine) at full scale without paying one goroutine park/wake
// per communication call — the cost that dominates the goroutine engine
// (internal/simnet.VWorld) on full-scale runs, where a 16384-rank
// BlueGene/P simulation performs ~15M rendezvous.
//
// # Architecture
//
// Execution is split into producers and one consumer:
//
//   - Producers: one goroutine per rank runs the algorithm against a
//     recording communicator (rComm) that never blocks on communication.
//     Every Send/Recv/SendRecv/Bcast/Gemm appends one compact event to the
//     rank's single-producer/single-consumer ring and returns immediately —
//     legal because the virtual data plane is shape-only, so no received
//     value can influence the program's control flow. The only inter-rank
//     rendezvous left on the producer side is Split, whose *result* (the
//     child communicator's rank and size) does steer control flow; splits
//     are a handful per run, so their parks are noise.
//
//   - Consumer: a single-threaded event loop owns every virtual clock.
//     Each rank's program has become a resumable step function — its ring
//     cursor — which the loop advances until the rank blocks on a
//     dependency: a receive whose matching send has not been replayed yet,
//     or a collective some member has not reached. Collectives fire when
//     their last member's event arrives and execute the same internal/sched
//     schedule through the same Sim Hockney cost code as the goroutine
//     engine, so virtual times, per-rank communication-time breakdowns and
//     traffic counters are bit-identical (asserted by the engine parity
//     tests in internal/simalg).
//
// Back-pressure: a producer that outruns the replay parks when its ring is
// full, and the consumer parks when every runnable rank's ring is empty;
// both parks are amortised over the ring capacity, turning ~15M per-call
// rendezvous into ~100k per-batch ones.
//
// # Rank-symmetry fast path
//
// On top of the loop, clock-equal collectives share executions: under
// uniform links (no LinkCost), symmetric ranks sit at *exactly* the same
// virtual time — e.g. all of one HSUMMA step's per-group broadcasts start
// from the same clock — so the engine memoises a collective's outcome by
// (schedule, payload, start clock) and replays it for every sibling:
// per-role final clocks are copied and the exact floating-point sequence
// of communication-time increments is re-applied in order, which is
// bit-identical to re-walking the schedule because ExecPhase is a
// deterministic function of those inputs. A SUMMA/HSUMMA step then costs
// O(S+T) schedule work instead of O(S·T). The memo stays valid with
// contention enabled (flow counts are per-collective) and is disabled
// under a LinkCost model (transfer times depend on world-rank placement).
//
// Determinism: results are independent of goroutine interleaving and
// GOMAXPROCS by construction — each rank's trace is its own program order,
// disjoint collectives commute exactly (they touch disjoint clocks), and
// message matching is FIFO per (communicator, sender, tag).
package evsim

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// World owns the virtual clocks, the per-rank event rings and the replay
// state for one simulated execution. Create one per run with NewWorld.
type World struct {
	sim    *simnet.Sim
	cfg    simnet.VConfig
	caches *simnet.SchedCache

	stats       []simnet.VRankStats
	computeDone []float64       // overlap mode: per-rank compute timeline
	rec         *trace.Recorder // cfg.Trace; nil = tracing disabled

	prods []*producer
	ranks []rankState

	// Consumer-owned replay state (no locks: single-threaded).
	runnable []int32
	pending  map[msgKey][]vMsg
	waiting  map[msgKey]int32

	memoEnabled bool
	overlap     bool
	memo        map[memoKey]*memoEntry

	// commMu guards the communicator registry (abort wakes split waiters).
	commMu sync.Mutex
	comms  []*commState

	nextCID atomic.Int64
	alive   atomic.Int64
	aborted atomic.Bool

	errMu    sync.Mutex
	firstErr error

	// wakeMu/wakeCond is the producers→consumer doorbell: ranks whose
	// rings transitioned empty→non-empty while the consumer marked them
	// hungry, plus producer-exit notifications.
	wakeMu   sync.Mutex
	wakeCond *sync.Cond
	wakeList []int32
}

// NewWorld returns an event-driven virtual world of p ranks under the
// given configuration (the same VConfig the goroutine engine takes).
func NewWorld(p int, cfg simnet.VConfig) *World {
	sim := simnet.New(p, cfg.Model)
	sim.SetContention(cfg.Contention)
	sim.SetLinkCost(cfg.LinkCost)
	w := &World{
		sim:         sim,
		cfg:         cfg,
		caches:      simnet.NewSchedCache(),
		stats:       make([]simnet.VRankStats, p),
		prods:       make([]*producer, p),
		ranks:       make([]rankState, p),
		pending:     make(map[msgKey][]vMsg),
		waiting:     make(map[msgKey]int32),
		memoEnabled: cfg.LinkCost == nil,
		overlap:     cfg.Overlap,
		rec:         cfg.Trace,
		memo:        make(map[memoKey]*memoEntry),
	}
	if cfg.Overlap {
		w.computeDone = make([]float64, p)
	}
	w.wakeCond = sync.NewCond(&w.wakeMu)
	for r := 0; r < p; r++ {
		pr := &producer{w: w, world: int32(r), ring: newRing()}
		w.prods[r] = pr
		w.ranks[r].ring = pr.ring
	}
	return w
}

// evAborted is the sentinel panic unwinding producers blocked in a ring or
// split rendezvous when the world has already failed.
type evAborted struct{}

// Run executes fn on every rank — each in its own recording goroutine,
// passing each rank its world communicator — while the calling goroutine
// runs the event loop. It returns after the replay is complete (or the
// world aborted); the first error wins.
func (w *World) Run(fn func(c comm.Comm)) error {
	p := w.sim.Size()
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = i
	}
	world := w.newCommState(ranks)
	w.alive.Store(int64(p))
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		rc := &rComm{p: w.prods[r], cs: world, rank: int32(r)}
		wg.Add(1)
		go func(rc *rComm) {
			defer wg.Done()
			defer rc.p.finish()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(evAborted); ok {
						return // collateral unwind, not the root cause
					}
					w.abort(fmt.Errorf("evsim: virtual rank %d panicked: %v\n%s", rc.p.world, rec, debug.Stack()))
				}
			}()
			fn(rc)
		}(rc)
	}
	w.consume()
	wg.Wait()
	w.errMu.Lock()
	err := w.firstErr
	w.errMu.Unlock()
	return err
}

// abort records the first error, marks the world failed and wakes every
// parked party: producers blocked on full rings or split rendezvous, and
// the consumer's doorbell. Never holds the registry mutex across a
// communicator's split lock (mirrors the goroutine engine's discipline).
func (w *World) abort(err error) {
	w.errMu.Lock()
	if w.firstErr == nil && err != nil {
		w.firstErr = err
	}
	w.errMu.Unlock()
	if !w.aborted.CompareAndSwap(false, true) {
		return
	}
	for _, pr := range w.prods {
		r := pr.ring
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	}
	w.commMu.Lock()
	comms := append([]*commState(nil), w.comms...)
	w.commMu.Unlock()
	for _, cs := range comms {
		cs.splitMu.Lock()
		cs.splitCond.Broadcast()
		cs.splitMu.Unlock()
	}
	w.wakeMu.Lock()
	w.wakeCond.Broadcast()
	w.wakeMu.Unlock()
}

// Sim exposes the underlying simulator (clocks, per-rank comm times).
func (w *World) Sim() *simnet.Sim { return w.sim }

// Stats returns a copy of the per-rank traffic counters. Read it only
// after Run returns.
func (w *World) Stats() []simnet.VRankStats {
	out := make([]simnet.VRankStats, len(w.stats))
	copy(out, w.stats)
	return out
}

// Total returns the simulated execution time: the last communication
// clock, or in overlap mode the later of the communication and compute
// timelines — the same definition as the goroutine engine's VWorld.Total.
func (w *World) Total() float64 {
	total := w.sim.MaxClock()
	for _, cd := range w.computeDone {
		if cd > total {
			total = cd
		}
	}
	return total
}

// MaxCommTime returns the largest per-rank time spent inside
// communication, the quantity the paper plots as "communication time".
func (w *World) MaxCommTime() float64 { return w.sim.MaxCommTime() }
