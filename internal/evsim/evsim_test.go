package evsim

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/hockney"
	"repro/internal/sched"
	"repro/internal/simnet"
)

func testCfg() simnet.VConfig {
	return simnet.VConfig{Model: hockney.Model{Alpha: 1e-5, Beta: 1e-8, Gamma: 1e-9}}
}

// TestPointToPointTiming pins the replay's Send/Recv semantics: the
// receiver completes at max(own clock, sender's send-time) plus the
// transfer time — the same arithmetic as the goroutine engine.
func TestPointToPointTiming(t *testing.T) {
	w := NewWorld(2, testCfg())
	err := w.Run(func(c comm.Comm) {
		buf := c.NewBuf(1000)
		switch c.Rank() {
		case 0:
			c.Send(1, 7, buf)
		case 1:
			c.Recv(0, 7, buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m := testCfg().Model
	dt := m.PointToPoint(1000)
	if got := w.Sim().Clock(0); got != dt {
		t.Fatalf("sender clock %v, want %v", got, dt)
	}
	if got := w.Sim().Clock(1); got != dt {
		t.Fatalf("receiver clock %v, want %v (message available at 0)", got, dt)
	}
	st := w.Stats()
	if st[0].SentMessages != 1 || st[0].SentBytes != int64(hockney.BytesPerElement*1000) {
		t.Fatalf("sender stats %+v", st[0])
	}
	if st[1].SentMessages != 0 {
		t.Fatalf("receiver stats %+v", st[1])
	}
}

// TestAlgorithmPanicBecomesError: a rank panic aborts the world and
// surfaces as Run's error, with every goroutine released.
func TestAlgorithmPanicBecomesError(t *testing.T) {
	w := NewWorld(4, testCfg())
	err := w.Run(func(c comm.Comm) {
		if c.Rank() == 2 {
			panic("boom")
		}
		// The others park in a collective that can never complete.
		c.Bcast(sched.Binomial, 0, c.NewBuf(10), 1)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want the rank panic, got %v", err)
	}
}

// TestBcastMismatchAborts: members disagreeing on a collective's
// signature is an SPMD programming error the replay must reject, like
// the goroutine engine's mismatch panic.
func TestBcastMismatchAborts(t *testing.T) {
	w := NewWorld(2, testCfg())
	err := w.Run(func(c comm.Comm) {
		root := 0
		elems := 10
		if c.Rank() == 1 {
			elems = 20
		}
		c.Bcast(sched.Binomial, root, c.NewBuf(elems), 1)
	})
	if err == nil || !strings.Contains(err.Error(), "bcast mismatch") {
		t.Fatalf("want bcast mismatch, got %v", err)
	}
}

// TestRecvSizeMismatchAborts mirrors the goroutine engine's receive-size
// panic.
func TestRecvSizeMismatchAborts(t *testing.T) {
	w := NewWorld(2, testCfg())
	err := w.Run(func(c comm.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, c.NewBuf(10))
		} else {
			c.Recv(0, 0, c.NewBuf(11))
		}
	})
	if err == nil || !strings.Contains(err.Error(), "recv buffer") {
		t.Fatalf("want recv size mismatch, got %v", err)
	}
}

// TestStalledReplayDetected: a receive that never gets a matching send is
// reported as a stall instead of hanging forever.
func TestStalledReplayDetected(t *testing.T) {
	w := NewWorld(2, testCfg())
	err := w.Run(func(c comm.Comm) {
		if c.Rank() == 1 {
			c.Recv(0, 9, c.NewBuf(4)) // rank 0 never sends
		}
	})
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("want stall detection, got %v", err)
	}
}

// TestSplitStructure: split ordering and negative colours match
// MPI_Comm_split (and the goroutine engine).
func TestSplitStructure(t *testing.T) {
	w := NewWorld(6, testCfg())
	type view struct{ rank, size int }
	views := make([]view, 6)
	err := w.Run(func(c comm.Comm) {
		me := c.Rank()
		color := me % 2
		if me == 5 {
			color = -1
		}
		sub := c.Split(color, -me) // reversed key order
		if sub == nil {
			views[me] = view{-1, -1}
			return
		}
		views[me] = view{sub.Rank(), sub.Size()}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Colour 0: members 0,2,4 keyed -0,-2,-4 -> order 4,2,0.
	// Colour 1: members 1,3 keyed -1,-3 -> order 3,1 (5 opted out).
	want := []view{{2, 3}, {1, 2}, {1, 3}, {0, 2}, {0, 3}, {-1, -1}}
	for i, v := range views {
		if v != want[i] {
			t.Fatalf("rank %d split view %+v, want %+v", i, v, want[i])
		}
	}
}

// TestSymmetryMemoShares: clock-equal sibling collectives execute once
// and replay bit-identically — disjoint row broadcasts from a uniform
// start must leave every row with identical per-role clocks.
func TestSymmetryMemoShares(t *testing.T) {
	const rows, cols = 8, 8
	w := NewWorld(rows*cols, testCfg())
	err := w.Run(func(c comm.Comm) {
		row := c.Rank() / cols
		sub := c.Split(row, c.Rank()%cols)
		sub.Bcast(sched.VanDeGeijn, 0, c.NewBuf(4096), 1)
		sub.Bcast(sched.Binomial, 2, c.NewBuf(128), 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows*cols; r++ {
		role := r % cols
		if got, want := w.Sim().Clock(r), w.Sim().Clock(role); got != want {
			t.Fatalf("rank %d clock %v differs from role-equivalent rank %d clock %v", r, got, role, want)
		}
		if got, want := w.Sim().CommTime(r), w.Sim().CommTime(role); got != want {
			t.Fatalf("rank %d comm %v differs from role-equivalent rank %d comm %v", r, got, role, want)
		}
	}
}

// TestSingleRankWorld: a p=1 world degenerates cleanly (collectives are
// no-ops, Gemm advances the clock).
func TestSingleRankWorld(t *testing.T) {
	w := NewWorld(1, testCfg())
	err := w.Run(func(c comm.Comm) {
		c.Bcast(sched.Binomial, 0, c.NewBuf(5), 1)
		c.Gemm(c.NewTile(4, 4), c.NewTile(4, 4), c.NewTile(4, 4), comm.Serial)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := testCfg().Model.Compute(2 * 4 * 4 * 4)
	if got := w.Total(); got != want {
		t.Fatalf("total %v, want %v", got, want)
	}
}
