package evsim

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/hockney"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// This file is the consumer half of the engine: a single-threaded event
// loop that owns every clock, traffic counter and compute timeline.
// Because exactly one goroutine touches them, the hot path needs no
// locks at all — the engine's concurrency is confined to the rings and
// the doorbell.

// Rank replay statuses.
const (
	rsQueued    uint8 = iota // in the runnable stack (or being advanced)
	rsWaitEvent              // ring empty: waiting for the producer
	rsWaitRecv               // blocked on a receive with no matching send yet
	rsWaitColl               // parked in a collective
	rsDone                   // program fully replayed
)

// rankState is the consumer's view of one rank: its ring cursor plus the
// saved state of a blocking call in progress.
type rankState struct {
	ring   *ring
	status uint8

	// Blocked receive (Recv or the receive half of SendRecv).
	hasPending bool
	pendingEv  event

	// SendRecv state between its two halves: the caller's clock snapshot,
	// the send direction's completion time, and (for the shift span) the
	// send payload size.
	srT0        float64
	srSendEnd   float64
	srSendElems int32
}

// msgKey identifies a point-to-point match: communicator identity, the
// sender's comm rank, the tag, and the receiver's world rank.
type msgKey struct {
	cs  *commState
	src int32
	tag int32
	dst int32
}

// vMsg is one in-flight virtual payload: no data, only its size and the
// sender's clock at the moment of the send.
type vMsg struct {
	elems int32
	clock float64
}

// wakeRank is the producer-side doorbell: rank r's ring went
// empty→non-empty (or its producer exited) while the consumer had marked
// it hungry.
func (w *World) wakeRank(r int32) {
	w.wakeMu.Lock()
	w.wakeList = append(w.wakeList, r)
	w.wakeMu.Unlock()
	w.wakeCond.Signal()
}

// consume is the event loop: it drains runnable ranks, parking on the
// doorbell when every rank is blocked, until all programs are replayed or
// the world aborts.
func (w *World) consume() {
	remaining := len(w.ranks)
	// Every rank starts queued; the first advance either consumes early
	// events or files the rank as hungry.
	w.runnable = make([]int32, remaining)
	for i := range w.runnable {
		w.runnable[i] = int32(remaining - 1 - i)
	}
	for remaining > 0 {
		if w.aborted.Load() {
			return
		}
		n := len(w.runnable)
		if n == 0 {
			if !w.awaitWork() {
				return
			}
			continue
		}
		r := w.runnable[n-1]
		w.runnable = w.runnable[:n-1]
		if w.advance(int(r)) {
			remaining--
		}
	}
}

// awaitWork blocks until a producer rings the doorbell, then requeues the
// woken ranks. Returns false when the world aborted or the replay cannot
// progress (a genuine cross-rank deadlock in the recorded programs, which
// only a mismatched SPMD program can produce).
func (w *World) awaitWork() bool {
	w.wakeMu.Lock()
	for len(w.wakeList) == 0 && !w.aborted.Load() && w.alive.Load() > 0 {
		w.wakeCond.Wait()
	}
	list := w.wakeList
	w.wakeList = nil
	w.wakeMu.Unlock()
	if w.aborted.Load() {
		return false
	}
	for _, r := range list {
		if w.ranks[r].status == rsWaitEvent {
			w.ranks[r].status = rsQueued
			w.runnable = append(w.runnable, r)
		}
	}
	if len(w.runnable) == 0 && w.alive.Load() == 0 {
		// All producers have exited and no doorbell is pending: requeue
		// any rank whose ring still has work (or is drained and done);
		// if none, the remaining ranks are blocked forever.
		blocked := 0
		for i := range w.ranks {
			st := &w.ranks[i]
			switch st.status {
			case rsWaitEvent:
				st.status = rsQueued
				w.runnable = append(w.runnable, int32(i))
			case rsWaitRecv, rsWaitColl:
				blocked++
			}
		}
		if len(w.runnable) == 0 {
			if blocked > 0 {
				w.abort(fmt.Errorf("evsim: replay stalled with %d ranks blocked in communication after all programs finished recording (mismatched SPMD program)", blocked))
			}
			return false
		}
	}
	return true
}

// advance resumes one rank's step function: it replays events until the
// rank blocks, runs out of recorded events, or finishes. Returns true
// when the rank's program is fully replayed.
func (w *World) advance(r int) bool {
	st := &w.ranks[r]
	if st.hasPending {
		// A blocked receive was resumed: its message is now queued.
		ok := false
		if st.pendingEv.kind == evRecv {
			ok = w.tryRecv(r, st.pendingEv)
		} else {
			ok = w.trySRRecv(r, st.pendingEv)
		}
		if !ok {
			st.status = rsWaitRecv
			return false
		}
		st.hasPending = false
	}
	ring := st.ring
	for {
		if w.aborted.Load() {
			return false
		}
		h := ring.head.Load()
		t := ring.tail.Load()
		if h == t {
			if ring.done.Load() {
				if ring.tail.Load() != h {
					continue // publish landed before the done flag
				}
				st.status = rsDone
				return true
			}
			st.status = rsWaitEvent
			ring.hungry.Store(true)
			if ring.tail.Load() != h || ring.done.Load() {
				// The producer published (or exited) between our check and
				// the hungry store; reclaim the doorbell if it has not
				// been taken, else its wake is already queued.
				if ring.hungry.CompareAndSwap(true, false) {
					st.status = rsQueued
					continue
				}
			}
			return false
		}
		// Batch: replay the whole visible run, publishing the consumed
		// head (and possibly waking the producer) once at the end or at
		// the first blocking event. Events are read in place — the
		// producer cannot overwrite a slot before head is published.
		buf := ring.buf
		for ; h != t; h++ {
			ev := &buf[h&ringMask]
			switch ev.kind {
			case evBcast:
				if w.arrive(r, *ev) {
					st.status = rsWaitColl
					ring.release(h + 1)
					return false
				}
			case evGemm:
				// Inlined doGemm fast path: the local update is the
				// second most frequent event after collective arrivals.
				// The d field packs threads | strassenCutoff<<16; a zero
				// cutoff is the classic kernel, where the expression below
				// mirrors VComm.Gemm (and the historical replay) bit for
				// bit — Speedup(1) = 1 exactly — keeping engine parity.
				threads := int(ev.d & 0xffff)
				var flops float64
				if cut := int(ev.d >> 16); cut > 0 {
					flops = blas.StrassenFlops(int(ev.a), int(ev.b), int(ev.c), cut) / hockney.Speedup(threads)
				} else {
					flops = 2 * float64(ev.a) * float64(ev.b) * float64(ev.c) / hockney.Speedup(threads)
				}
				if !w.overlap {
					pre := w.sim.Clocks()[r]
					w.sim.ComputeRank(r, flops)
					if w.rec != nil {
						w.rec.RankThreads(r, trace.PhaseGemm, pre, w.sim.Clocks()[r]-pre, threads)
					}
				} else {
					w.doGemmOverlap(r, flops, threads)
				}
			case evAxpy:
				// One add per element, no Speedup, no trace span — the
				// goroutine engine's Axpy bit for bit.
				flops := float64(ev.a) * float64(ev.b)
				if !w.overlap {
					w.sim.ComputeRank(r, flops)
				} else {
					w.doAxpyOverlap(r, flops)
				}
			case evSend:
				w.doSend(r, *ev)
			case evRecv:
				if !w.tryRecv(r, *ev) {
					st.pendingEv, st.hasPending = *ev, true
					st.status = rsWaitRecv
					ring.release(h + 1)
					return false
				}
			case evSRSend:
				w.doSRSend(r, *ev)
			case evSRRecv:
				if !w.trySRRecv(r, *ev) {
					st.pendingEv, st.hasPending = *ev, true
					st.status = rsWaitRecv
					ring.release(h + 1)
					return false
				}
			}
		}
		ring.release(t)
	}
}

// doGemmOverlap advances the rank's dedicated compute timeline (double
// buffering) — the same arithmetic, in the same order, as the goroutine
// engine's Gemm in overlap mode.
func (w *World) doGemmOverlap(me int, flops float64, threads int) {
	dt := w.cfg.Model.Compute(flops)
	start := w.computeDone[me]
	if clk := w.sim.Clocks()[me]; clk > start {
		start = clk
	}
	w.computeDone[me] = start + dt
	if w.rec != nil {
		w.rec.RankThreads(me, trace.PhaseGemm, start, dt, threads)
	}
}

// doAxpyOverlap advances the rank's dedicated compute timeline by an
// axpy's flops — doGemmOverlap without the trace span.
func (w *World) doAxpyOverlap(me int, flops float64) {
	dt := w.cfg.Model.Compute(flops)
	start := w.computeDone[me]
	if clk := w.sim.Clocks()[me]; clk > start {
		start = clk
	}
	w.computeDone[me] = start + dt
}

// doSend replays an eager send: the sender is occupied for the transfer
// and the message is queued carrying the sender's pre-send clock.
func (w *World) doSend(me int, ev event) {
	cs := ev.comm
	dstW := cs.ranks[ev.a]
	clocks := w.sim.Clocks()
	t0 := clocks[me]
	dt := w.sim.TransferTime(me, dstW, int(ev.c), 1)
	clocks[me] = t0 + dt
	w.sim.CommTimes()[me] += dt
	w.stats[me].SentMessages++
	w.stats[me].SentBytes += int64(hockney.BytesPerElement * int(ev.c))
	if w.rec != nil {
		w.rec.Rank(me, trace.PhaseP2P, t0, dt, int64(hockney.BytesPerElement*int(ev.c)), 1)
	}
	w.deliver(msgKey{cs: cs, src: ev.d, tag: ev.b, dst: int32(dstW)}, vMsg{elems: ev.c, clock: t0})
}

// doSRSend replays the send half of a SendRecv: both directions share the
// caller's clock snapshot, and the shift charges the communicator's full
// flow count exactly like the goroutine engine.
func (w *World) doSRSend(me int, ev event) {
	cs := ev.comm
	st := &w.ranks[me]
	dstW := cs.ranks[ev.a]
	t0 := w.sim.Clocks()[me]
	st.srT0 = t0
	st.srSendEnd = t0 + w.sim.TransferTime(me, dstW, int(ev.c), len(cs.ranks))
	st.srSendElems = ev.c
	w.stats[me].SentMessages++
	w.stats[me].SentBytes += int64(hockney.BytesPerElement * int(ev.c))
	w.deliver(msgKey{cs: cs, src: ev.d, tag: ev.b, dst: int32(dstW)}, vMsg{elems: ev.c, clock: t0})
}

// deliver queues a message and resumes a receiver already blocked on its
// key, if any.
func (w *World) deliver(k msgKey, m vMsg) {
	w.pending[k] = append(w.pending[k], m)
	if r, ok := w.waiting[k]; ok {
		delete(w.waiting, k)
		w.ranks[r].status = rsQueued
		w.runnable = append(w.runnable, r)
	}
}

// take pops the FIFO-next matching message, or registers the receiver as
// waiting.
func (w *World) take(me int, k msgKey) (vMsg, bool) {
	q := w.pending[k]
	if len(q) == 0 {
		w.waiting[k] = int32(me)
		return vMsg{}, false
	}
	m := q[0]
	if len(q) == 1 {
		delete(w.pending, k)
	} else {
		w.pending[k] = q[1:]
	}
	return m, true
}

// tryRecv replays a receive: the receiver advances to max(own clock,
// sender's send-time) plus the transfer time. False means no matching
// send has been replayed yet.
func (w *World) tryRecv(me int, ev event) bool {
	cs := ev.comm
	m, ok := w.take(me, msgKey{cs: cs, src: ev.a, tag: ev.b, dst: int32(me)})
	if !ok {
		return false
	}
	if m.elems != ev.c {
		w.abort(fmt.Errorf("evsim: recv buffer %d elements but message has %d (src=%d tag=%d)",
			ev.c, m.elems, ev.a, ev.b))
		return true
	}
	srcW := cs.ranks[ev.a]
	dt := w.sim.TransferTime(srcW, me, int(m.elems), 1)
	pre := w.sim.Clocks()[me]
	end := pre
	if m.clock > end {
		end = m.clock
	}
	w.sim.AdvanceComm(me, end+dt)
	if w.rec != nil {
		w.rec.Rank(me, trace.PhaseP2P, pre, end+dt-pre, int64(hockney.BytesPerElement*int(m.elems)), 1)
	}
	return true
}

// trySRRecv replays the receive half of a SendRecv: the call completes at
// the slower of the two directions, both measured from the snapshot the
// send half took.
func (w *World) trySRRecv(me int, ev event) bool {
	cs := ev.comm
	st := &w.ranks[me]
	m, ok := w.take(me, msgKey{cs: cs, src: ev.a, tag: ev.b, dst: int32(me)})
	if !ok {
		return false
	}
	if m.elems != ev.c {
		w.abort(fmt.Errorf("evsim: sendrecv buffer %d elements but message has %d (src=%d tag=%d)",
			ev.c, m.elems, ev.a, ev.b))
		return true
	}
	recvEnd := st.srT0
	if m.clock > recvEnd {
		recvEnd = m.clock
	}
	recvEnd += w.sim.TransferTime(cs.ranks[ev.a], me, int(m.elems), len(cs.ranks))
	end := st.srSendEnd
	if recvEnd > end {
		end = recvEnd
	}
	w.sim.AdvanceComm(me, end)
	if w.rec != nil {
		w.rec.Rank(me, trace.PhaseShift, st.srT0, end-st.srT0,
			int64(hockney.BytesPerElement*int(st.srSendElems+m.elems)), 2)
	}
	return true
}

// gather coordinates one collective: arrivals are counted, members past
// the first park, and the last arrival fires the schedule.
type gather struct {
	arrived  int32
	alg      uint8
	root     int32
	segments int32
	elems    int32
	parked   []int32
}

// arrive records one collective arrival; when the last member arrives the
// collective executes and every parked member is requeued. Returns true
// when the caller must park.
func (w *World) arrive(me int, ev event) bool {
	cs := ev.comm
	g := &cs.g
	if !cs.gActive {
		cs.gActive = true
		cs.gSeq = ev.d
		g.alg, g.root, g.segments, g.elems = ev.alg, ev.a, ev.b, ev.c
	} else if cs.gSeq != ev.d || g.alg != ev.alg || g.root != ev.a || g.segments != ev.b || g.elems != ev.c {
		w.abort(fmt.Errorf("evsim: bcast mismatch on world rank %d: op %d (%s root=%d seg=%d n=%d) vs live op %d (%s root=%d seg=%d n=%d)",
			me, ev.d, algName(ev.alg), ev.a, ev.b, ev.c, cs.gSeq, algName(g.alg), g.root, g.segments, g.elems))
		return false
	}
	g.arrived++
	if int(g.arrived) == len(cs.ranks) {
		cs.gActive = false
		g.arrived = 0
		w.execColl(cs, g)
		for _, pr := range g.parked {
			w.ranks[pr].status = rsQueued
			w.runnable = append(w.runnable, pr)
		}
		g.parked = g.parked[:0]
		return false
	}
	g.parked = append(g.parked, int32(me))
	return true
}

// --- Collective execution and the rank-symmetry fast path. ---

// memoKey identifies a collective execution up to everything its outcome
// depends on under uniform links: the schedule (pointer identity from the
// shared cache), the payload, and the members' common start clock.
// Contention is per-collective flow counts, so it is part of the schedule;
// a LinkCost model would add world-rank placement, which is why the memo
// is disabled there.
type memoKey struct {
	sched *sched.Schedule
	elems int32
	t0    float64
}

// memoEntry is a captured execution: per-role absolute final clocks (valid
// for the key's t0) and the exact ordered sequence of communication-time
// increments ExecPhase applied — replaying those increments add by add is
// bit-identical to re-walking the schedule, because floating-point
// addition is replayed in the original association order.
type memoEntry struct {
	finals []float64
	advs   []roleAdv
}

type roleAdv struct {
	role  int32
	delta float64
}

// memoCap bounds the memo; start clocks advance monotonically through a
// run, so old entries never hit again and a periodic reset loses nothing.
const memoCap = 4096

// execColl fires a complete collective through the same Hockney cost code
// as the goroutine engine, sharing executions between clock-equal sibling
// collectives where the symmetry fast path applies.
func (w *World) execColl(cs *commState, g *gather) {
	s, err := w.caches.Broadcast(algName(g.alg), len(cs.ranks), int(g.root), int(g.segments))
	if err != nil {
		w.abort(fmt.Errorf("evsim: bcast: %v", err))
		return
	}
	elems := int(g.elems)
	if w.memoEnabled {
		clocks := w.sim.Clocks()
		t0 := clocks[cs.ranks[0]]
		uniform := true
		for _, m := range cs.ranks[1:] {
			if clocks[m] != t0 {
				uniform = false
				break
			}
		}
		if uniform {
			k := memoKey{sched: s, elems: g.elems, t0: t0}
			if e, ok := w.memo[k]; ok {
				comm := w.sim.CommTimes()
				for i, m := range cs.ranks {
					clocks[m] = e.finals[i]
				}
				for _, a := range e.advs {
					comm[cs.ranks[a.role]] += a.delta
				}
				w.applyTraffic(s, elems, cs.ranks)
				// Memoised executions still emit one span per member —
				// from the shared start clock to the replayed final —
				// so span counts match the goroutine engine exactly.
				w.emitCollSpans(s, elems, cs.ranks, nil, t0)
				return
			}
			// Miss: execute once, capturing the outcome for the siblings.
			role := make(map[int]int32, len(cs.ranks))
			for i, m := range cs.ranks {
				role[m] = int32(i)
			}
			e := &memoEntry{}
			w.sim.SetCommHook(func(rank int, delta float64) {
				e.advs = append(e.advs, roleAdv{role: role[rank], delta: delta})
			})
			w.sim.ExecOne(simnet.Collective{Sched: s, Members: cs.ranks, PayloadBytes: float64(elems)})
			w.sim.SetCommHook(nil)
			e.finals = make([]float64, len(cs.ranks))
			for i, m := range cs.ranks {
				e.finals[i] = clocks[m]
			}
			if len(w.memo) >= memoCap {
				w.memo = make(map[memoKey]*memoEntry)
			}
			w.memo[k] = e
			w.applyTraffic(s, elems, cs.ranks)
			w.emitCollSpans(s, elems, cs.ranks, nil, t0)
			return
		}
	}
	var pre []float64
	if w.rec != nil {
		clocks := w.sim.Clocks()
		pre = make([]float64, len(cs.ranks))
		for i, m := range cs.ranks {
			pre[i] = clocks[m]
		}
	}
	w.sim.ExecOne(simnet.Collective{Sched: s, Members: cs.ranks, PayloadBytes: float64(elems)})
	w.applyTraffic(s, elems, cs.ranks)
	w.emitCollSpans(s, elems, cs.ranks, pre, 0)
}

// applyTraffic adds the collective's cached per-role traffic deltas to
// the members — the same cache, and the same integer byte split, as the
// goroutine engine.
func (w *World) applyTraffic(s *sched.Schedule, elems int, members []int) {
	for i, d := range w.caches.Traffic(s, elems) {
		st := &w.stats[members[i]]
		st.SentMessages += d.SentMessages
		st.SentBytes += d.SentBytes
	}
}

// emitCollSpans records one broadcast span per member after a collective
// has advanced the clocks: from pre[i] (or the uniform start t0 on the
// memo paths, where pre is nil) to the member's final clock. No-op when
// tracing is off.
func (w *World) emitCollSpans(s *sched.Schedule, elems int, members []int, pre []float64, t0 float64) {
	if w.rec == nil {
		return
	}
	clocks := w.sim.Clocks()
	for i, d := range w.caches.Traffic(s, elems) {
		m := members[i]
		p0 := t0
		if pre != nil {
			p0 = pre[i]
		}
		w.rec.Rank(m, trace.PhaseBcast, p0, clocks[m]-p0, int64(hockney.BytesPerElement*elems), d.SentMessages)
	}
}
