package evsim

import (
	"sync"
	"sync/atomic"
)

// Ring capacity per rank. 256 events of 32 bytes keeps a 16384-rank world
// at ~130 MB of buffering while amortising each producer/consumer park
// over ~128 communication calls (the producer is woken at the
// half-drained mark, so it refills half a ring per wake).
const (
	ringBits = 8
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
	// ringRefill is the hysteresis mark: a parked producer is woken only
	// once this much space is free. Waking on the first pop would resume
	// it with one free slot — push one event, park again — which is
	// exactly the per-call park/wake cycle this engine exists to avoid.
	ringRefill = ringSize / 2
)

// event is one recorded communication (or compute) call, 32 bytes. The
// integer fields are kind-specific:
//
//	evBcast:  a=root  b=segments c=elems  d=per-comm op sequence
//	evSend:   a=dst   b=tag      c=elems  d=caller's comm rank
//	evRecv:   a=src   b=tag      c=elems
//	evSRSend: a=dst   b=sendTag  c=elems  d=caller's comm rank
//	evSRRecv: a=src   b=recvTag  c=elems
//	evGemm:   a=C rows (A rows)  b=C cols (B cols)  c=inner dim (A cols)
//	          d=threads | strassenCutoff<<16 (cutoff 0 = classic kernel)
//	evAxpy:   a=rows  b=cols
type event struct {
	comm       *commState
	a, b, c, d int32
	kind       uint8
	alg        uint8 // broadcast algorithm code (evBcast only)
}

const (
	evBcast = iota
	evSend
	evRecv
	evSRSend
	evSRRecv
	evGemm
	evAxpy
)

// ring is the single-producer/single-consumer event queue of one rank.
// head is advanced by the consumer (batched — once per drained run, not
// per event), tail by the producer. The producer parks on the embedded
// cond when the ring is full; the consumer's empty-side park goes through
// the world doorbell instead, flagged by hungry so the producer rings it
// exactly once per empty→non-empty transition.
type ring struct {
	buf  *[ringSize]event // fixed-size array: index masking needs no bounds check
	head atomic.Uint64    // next slot to consume
	_    [48]byte         // keep the producer's tail off the consumer's line
	tail atomic.Uint64    // next slot to fill

	mu     sync.Mutex
	cond   *sync.Cond
	parked atomic.Bool // producer is (about to be) parked on cond
	hungry atomic.Bool // consumer wants a doorbell on next publish
	done   atomic.Bool // producer finished its program
}

func newRing() *ring {
	r := &ring{buf: new([ringSize]event)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// publishEvery batches the producer's tail publication: a sequentially
// consistent store costs a full fence, so paying it per event would be
// ~15M fences per full-scale run. Unpublished events are made visible by
// the next periodic publish, a hungry consumer's doorbell, or the
// producer's next blocking point (ring full, split, finish).
const publishEvery = 16

// push appends one event, parking when the ring is full until the
// consumer frees half the ring or the world aborts. Producer-side only.
// The producer caches the consumer's head (chead) and owns its tail
// (ctail), so the fast path is one plain store plus a flag probe.
func (p *producer) push(ev event) {
	r := p.ring
	for {
		if p.ctail-p.chead < ringSize {
			r.buf[p.ctail&ringMask] = ev
			p.ctail++
			if r.hungry.Load() {
				p.publish()
			} else if p.ctail&(publishEvery-1) == 0 {
				r.tail.Store(p.ctail)
			}
			return
		}
		p.chead = r.head.Load()
		if p.ctail-p.chead < ringSize {
			continue
		}
		p.publish() // let the consumer see everything before we park
		if p.w.aborted.Load() {
			panic(evAborted{})
		}
		r.mu.Lock()
		r.parked.Store(true)
		// Recheck under the lock: the consumer may have freed space (or
		// the world aborted) between the check above and the park, and its
		// parked-flag probe may have predated our store.
		if p.ctail-r.head.Load() < ringSize || p.w.aborted.Load() {
			r.parked.Store(false)
			r.mu.Unlock()
			continue
		}
		r.cond.Wait()
		r.mu.Unlock()
		p.chead = r.head.Load()
	}
}

// publish makes every recorded event visible and rings the doorbell if
// the consumer is waiting for this rank. Called from the push fast path
// when the consumer is hungry, and from every producer blocking point —
// ring-full park, split rendezvous, program finish — so no event can
// remain invisible across a producer stall.
func (p *producer) publish() {
	r := p.ring
	r.tail.Store(p.ctail)
	if r.hungry.Load() && r.hungry.CompareAndSwap(true, false) {
		p.w.wakeRank(p.world)
	}
}

// release publishes the consumer's progress and wakes the producer if it
// is parked and at least half the ring has drained (the hysteresis that
// makes each park/wake pay for ~64 events). Consumer-side only.
func (r *ring) release(head uint64) {
	r.head.Store(head)
	if r.parked.Load() && r.tail.Load()-head <= ringSize-ringRefill {
		if r.parked.CompareAndSwap(true, false) {
			r.mu.Lock()
			r.cond.Signal()
			r.mu.Unlock()
		}
	}
}

// empty reports whether the ring has no consumable event right now.
func (r *ring) empty() bool { return r.head.Load() == r.tail.Load() }
