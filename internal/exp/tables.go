package exp

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/topo"
)

// tableParams is the configuration the cost tables are evaluated at: the
// paper's tables are symbolic, so we print both the symbolic factors and
// their value at the BG/P experiment point, where the comparison matters.
func tableParams(o Options) model.Params {
	par := model.Params{N: 65536, P: 16384, B: 256, Machine: platform.BlueGeneP().Model}
	if o.Quick {
		par = model.Params{N: 4096, P: 256, B: 64, Machine: platform.BlueGeneP().Model}
	}
	return par
}

func runTable(id, title string, bc model.Broadcast, o Options) (*Result, error) {
	par := tableParams(o)
	par.Bcast = bc
	sq := math.Sqrt(float64(par.P))
	r := &Result{
		ID: id, Title: title,
		Header: []string{"algorithm", "comp cost (s)", "latency (s)", "bandwidth (s)", "comm total (s)"},
	}
	row := func(name string, c model.Cost) {
		r.Rows = append(r.Rows, []string{
			name,
			fmt.Sprintf("%.4g", c.Compute),
			fmt.Sprintf("%.4g", c.Latency),
			fmt.Sprintf("%.4g", c.Bandwidth),
			fmt.Sprintf("%.4g", c.Comm()),
		})
	}
	row("SUMMA", model.SUMMA(par))
	for _, g := range []float64{4, 16, sq, float64(par.P) / 4} {
		if g < 1 || g > float64(par.P) {
			continue
		}
		label := fmt.Sprintf("HSUMMA G=%d", int(g))
		if g == sq {
			label = fmt.Sprintf("HSUMMA G=√p=%d", int(g))
		}
		row(label, model.HSUMMA(par, g))
	}
	best, bc2 := model.OptimalG(par, nil)
	r.Findings = []string{
		fmt.Sprintf("evaluated at n=%d, p=%d, b=B=%d on %v", par.N, par.P, par.B, par.Machine),
		fmt.Sprintf("model optimum: G=%d with comm %.4gs (SUMMA %.4gs)", best, bc2.Comm(), model.SUMMA(par).Comm()),
		"symbolic factors: see Tables I/II of the paper; these rows are their numeric evaluation",
	}
	return r, nil
}

func runValidation(id string, pf platform.Platform, n, p, b int) (*Result, error) {
	par := model.Params{N: n, P: p, B: b, Machine: pf.Model, Bcast: model.VanDeGeijn{}}
	ratio := pf.Model.Alpha / pf.Model.Beta
	threshold := 2 * float64(n) * float64(b) / float64(p)
	minAt := model.MinimumAtSqrtP(par)
	sq := math.Sqrt(float64(p))
	r := &Result{
		ID:     id,
		Title:  fmt.Sprintf("model validation on %s", pf.Name),
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"alpha (s)", fmt.Sprintf("%.3g", pf.Model.Alpha)},
			{"beta (s/elem)", fmt.Sprintf("%.3g", pf.Model.Beta)},
			{"alpha/beta", fmt.Sprintf("%.4g", ratio)},
			{"2nb/p", fmt.Sprintf("%.4g", threshold)},
			{"interior minimum predicted", fmt.Sprintf("%v", minAt)},
			{"stationary point G=√p", fmt.Sprintf("%.4g", sq)},
			{"T_HS(√p) (s)", fmt.Sprintf("%.4g", model.HSUMMA(par, sq).Comm())},
			{"T_S = T_HS(1) = T_HS(p) (s)", fmt.Sprintf("%.4g", model.SUMMA(par).Comm())},
		},
	}
	verdict := "HSUMMA predicted to outperform SUMMA (paper's conclusion)"
	if !minAt {
		verdict = "G=√p is a maximum; HSUMMA falls back to G∈{1,p} (same cost as SUMMA)"
	}
	r.Findings = []string{verdict}
	return r, nil
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table I: SUMMA vs HSUMMA cost, binomial-tree broadcast",
		Paper: "Table I — latency/bandwidth factor comparison under the binomial model",
		Run: func(o Options) (*Result, error) {
			return runTable("table1", "Table I (binomial broadcast)", model.BinomialTree{}, o)
		},
	})
	register(Experiment{
		ID:    "table2",
		Title: "Table II: SUMMA vs HSUMMA cost, Van de Geijn broadcast",
		Paper: "Table II — including the HSUMMA(G=√p) optimal row",
		Run: func(o Options) (*Result, error) {
			return runTable("table2", "Table II (Van de Geijn broadcast)", model.VanDeGeijn{}, o)
		},
	})
	register(Experiment{
		ID:    "valgrid",
		Title: "Model validation on Grid'5000 (paper §V-A-1)",
		Paper: "α/β = 1e5 > 2nb/p = 8192 ⇒ interior minimum exists",
		Run: func(o Options) (*Result, error) {
			return runValidation("valgrid", platform.Grid5000(), 8192, 128, 64)
		},
	})
	register(Experiment{
		ID:    "valbgp",
		Title: "Model validation on BlueGene/P (paper §V-B-1)",
		Paper: "α/β = 3000 > 2nb/p = 2048 ⇒ interior minimum exists",
		Run: func(o Options) (*Result, error) {
			return runValidation("valbgp", platform.BlueGeneP(), 65536, 16384, 256)
		},
	})
	register(Experiment{
		ID:    "headline",
		Title: "Headline ratios (paper §V-B/§VI): comm and total improvements at 2048 and 16384 cores",
		Paper: "2.08x comm / 1.2x total at 2048; 5.89x comm / 2.36x total at 16384",
		Run:   runHeadline,
	})
}

func runHeadline(o Options) (*Result, error) {
	cores := []int{2048, 16384}
	paperComm := map[int]float64{2048: 2.08, 16384: 5.89}
	paperTotal := map[int]float64{2048: 1.2, 16384: 2.36}
	if o.Quick {
		cores = []int{256}
	}
	r := &Result{
		ID:     "headline",
		Title:  "Headline improvement ratios",
		Header: []string{"cores", "SUMMA comm", "HSUMMA comm", "comm ratio", "paper comm", "SUMMA total", "HSUMMA total", "total ratio", "paper total"},
	}
	for _, p := range cores {
		fc := bgpConfig(o)
		g, err := topo.SquarestGrid(p)
		if err != nil {
			return nil, err
		}
		fc.grid = g
		gs, hComm, hTotal, sComm, sTotal, err := gSweep(fc, sched.VanDeGeijn)
		if err != nil {
			return nil, err
		}
		bi, bv := minOf(hComm)
		_, bt := minOf(hTotal)
		pc, pt := "-", "-"
		if v, ok := paperComm[p]; ok {
			pc = fmt.Sprintf("%.2fx", v)
		}
		if v, ok := paperTotal[p]; ok {
			pt = fmt.Sprintf("%.2fx", v)
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.3g", sComm),
			fmt.Sprintf("%.3g (G=%d)", bv, int(gs[bi])),
			fmt.Sprintf("%.2fx", sComm/bv),
			pc,
			fmt.Sprintf("%.3g", sTotal),
			fmt.Sprintf("%.3g", bt),
			fmt.Sprintf("%.2fx", sTotal/bt),
			pt,
		})
	}
	r.Findings = append(r.Findings,
		"machine: "+bgpConfig(o).pf.Name+" (α fitted to the paper's measured SUMMA comm; HSUMMA ratios are simulator predictions)")
	return r, nil
}
