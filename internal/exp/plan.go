package exp

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/tune"
)

// The "plan" experiment exercises the autotuning planner on the paper's
// three platforms — the capability the paper describes in §VI ("the
// optimal number of groups … can be easily automated") but leaves to the
// reader. For each platform it reports the planner's ranked choice at the
// paper's problem scale, so the experiment registry covers not just the
// paper's figures but the subsystem that picks their configurations.

// planSetting fixes the per-platform problem the planner is asked about.
type planSetting struct {
	pf   platform.Platform
	n, p int
	// analyticOnly skips stage-2 simulation (used where even one virtual
	// run is too expensive: the 2^20-rank exascale model, and the full
	// 16384-rank BG/P in Quick mode).
	analyticOnly bool
}

func planSettings(o Options) []planSetting {
	if o.Quick {
		return []planSetting{
			{pf: platform.Grid5000Calibrated(), n: 1024, p: 32},
			{pf: platform.BlueGenePCalibrated(), n: 4096, p: 256},
			{pf: platform.Exascale(), n: 1 << 14, p: 1 << 12, analyticOnly: true},
		}
	}
	return []planSetting{
		{pf: platform.Grid5000Calibrated(), n: 8192, p: 128},
		{pf: platform.BlueGenePCalibrated(), n: 65536, p: 16384, analyticOnly: true},
		{pf: platform.Exascale(), n: 1 << 22, p: 1 << 20, analyticOnly: true},
	}
}

func runPlan(o Options) (*Result, error) {
	res := &Result{
		ID:     "plan",
		Title:  "Autotuning planner choices on the paper's platforms",
		Header: []string{"platform", "n", "p", "algorithm", "grid", "G", "b", "B", "bcast", "model comm (s)", "sim total (s)"},
	}
	for _, s := range planSettings(o) {
		pf := s.pf
		if o.Uncalibrated {
			switch pf.Name {
			case platform.Grid5000Calibrated().Name:
				pf = platform.Grid5000()
			case platform.BlueGenePCalibrated().Name:
				pf = platform.BlueGeneP()
			}
		}
		pl, err := tune.PlanFor(tune.Request{
			Platform: pf, N: s.n, P: s.p,
			Quick:        o.Quick,
			AnalyticOnly: s.analyticOnly,
		})
		if err != nil {
			return nil, err
		}
		b := pl.Best
		simTotal := "-"
		if b.Refined {
			simTotal = fmt.Sprintf("%.4g", b.SimTotal)
		}
		res.Rows = append(res.Rows, []string{
			pf.Name,
			fmt.Sprintf("%d", s.n), fmt.Sprintf("%d", s.p),
			string(b.Algorithm), b.Grid.String(),
			fmt.Sprintf("%d", b.Groups), fmt.Sprintf("%d", b.BlockSize), fmt.Sprintf("%d", b.OuterBlockSize),
			string(b.Broadcast),
			fmt.Sprintf("%.4g", b.ModelComm), simTotal,
		})
		res.Findings = append(res.Findings,
			fmt.Sprintf("%s: scanned %d candidates, simulated %d; best %s",
				pf.Name, pl.Scanned, pl.Simulated, b.Candidate))
	}
	st := tune.Stats()
	res.Findings = append(res.Findings,
		fmt.Sprintf("plan cache: %d hits, %d misses, %d virtual runs this process", st.CacheHits, st.CacheMisses, st.SimRuns))
	return res, nil
}

func init() {
	register(Experiment{
		ID:    "plan",
		Title: "Autotuner: planner-selected configurations per platform",
		Paper: "§VI — \"the optimal number of groups ... can be easily automated\"; the planner closes that loop",
		Run:   runPlan,
	})
}
