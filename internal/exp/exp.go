// Package exp is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation (Tables I–II, Figures 5–10),
// plus the two model-validation checks (Sections V-A-1, V-B-1) and the
// headline-ratio summary (Section VI). Each experiment regenerates the
// series or rows the paper reports, from the simulator (figures), the
// closed-form model (tables, exascale) or both.
//
// Experiments run in two fidelity modes: Full reproduces the paper's exact
// configuration (p up to 16384), Quick scales the same experiment down for
// use in the test suite. Machine parameters come from internal/platform;
// by default the measurement-driven figures (5–9) use the calibrated
// presets (see platform.BlueGenePCalibrated) and the prediction figure (10)
// uses the published exascale parameters, with the pure published-parameter
// variant available via Options.Uncalibrated.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Options selects the fidelity and machine variant of an experiment run.
type Options struct {
	// Quick runs a scaled-down configuration (small grids) so the whole
	// registry executes in seconds — used by tests. Full mode (false)
	// reproduces the paper's configuration.
	Quick bool
	// Uncalibrated uses the paper's published Hockney parameters instead
	// of the SUMMA-fitted effective machines for Figures 5–9.
	Uncalibrated bool
	// Annotate asks the figure experiments to run the autotuning planner
	// (internal/tune) alongside each sweep and record, as findings, the
	// configuration the planner would have picked — so a regenerated
	// figure carries the planner's choice next to the sweep's optimum.
	Annotate bool
}

// Series is one plotted line: Y[i] is the value at X[i].
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Result is what an experiment produces: series (figures) and/or rows
// (tables), plus free-form findings such as headline ratios.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Header/Rows hold tabular output (Tables I/II, validations).
	Header []string
	Rows   [][]string
	// Findings are one-line conclusions (e.g. ratios vs the paper's).
	Findings []string
}

// Experiment is a registered, runnable reproduction artefact.
type Experiment struct {
	ID    string
	Title string
	// Paper describes what the paper's artefact shows, for the CLI list.
	Paper string
	Run   func(Options) (*Result, error)
}

var registry = map[string]Experiment{}
var order []string

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// ByID returns a registered experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// IDs lists registered experiment identifiers in registration order.
func IDs() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// All returns every experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, 0, len(order))
	for _, id := range order {
		out = append(out, registry[id])
	}
	return out
}

// Format renders a result as aligned ASCII: findings, table, then series
// as columns.
func Format(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "   %s\n", f)
	}
	if len(r.Rows) > 0 {
		writeTable(&b, r.Header, r.Rows)
	}
	if len(r.Series) > 0 {
		writeSeries(&b, r)
	}
	return b.String()
}

func writeTable(b *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func writeSeries(b *strings.Builder, r *Result) {
	// Collect the union of X values to print one row per X.
	xset := map[float64]bool{}
	for _, s := range r.Series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s.Name+" ("+r.YLabel+")")
	}
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range r.Series {
			val := ""
			for i, sx := range s.X {
				if sx == x {
					val = fmt.Sprintf("%.4g", s.Y[i])
					break
				}
			}
			row = append(row, val)
		}
		rows = append(rows, row)
	}
	writeTable(b, header, rows)
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// CSV renders the series of a result as comma-separated values, one line
// per (series, x, y) triple — convenient for external plotting.
func CSV(r *Result) string {
	var b strings.Builder
	b.WriteString("experiment,series,x,y\n")
	for _, s := range r.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%s,%g,%g\n", r.ID, s.Name, s.X[i], s.Y[i])
		}
	}
	return b.String()
}
