package exp

import (
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true} }

func TestRegistryComplete(t *testing.T) {
	// Every evaluation artefact of the paper must be registered.
	want := []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "valgrid", "valbgp", "headline"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(IDs()) {
		t.Fatal("All and IDs disagree")
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(quick())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Fatalf("result id %q for experiment %q", res.ID, e.ID)
			}
			if len(res.Series) == 0 && len(res.Rows) == 0 {
				t.Fatalf("%s produced no data", e.ID)
			}
			out := Format(res)
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s format missing id:\n%s", e.ID, out)
			}
		})
	}
}

func TestFig5UShapeAndDegeneracy(t *testing.T) {
	res, err := registry["fig5"].Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	var hs, su Series
	for _, s := range res.Series {
		switch s.Name {
		case "HSUMMA comm":
			hs = s
		case "SUMMA comm":
			su = s
		}
	}
	if len(hs.Y) < 3 {
		t.Fatalf("too few sweep points: %d", len(hs.Y))
	}
	// Endpoints must equal SUMMA; some interior point must beat it.
	if rel(hs.Y[0], su.Y[0]) > 1e-9 {
		t.Fatalf("G=1 endpoint %g != SUMMA %g", hs.Y[0], su.Y[0])
	}
	last := len(hs.Y) - 1
	if rel(hs.Y[last], su.Y[last]) > 1e-9 {
		t.Fatalf("G=p endpoint %g != SUMMA %g", hs.Y[last], su.Y[last])
	}
	best := hs.Y[0]
	for _, y := range hs.Y {
		if y < best {
			best = y
		}
	}
	if best >= su.Y[0] {
		t.Fatal("no interior win on the calibrated Grid'5000 machine")
	}
}

func TestFig8ReportsTotals(t *testing.T) {
	res, err := registry["fig8"].Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range res.Series {
		names[s.Name] = true
	}
	for _, want := range []string{"HSUMMA comm", "SUMMA comm", "HSUMMA total", "SUMMA total"} {
		if !names[want] {
			t.Fatalf("fig8 missing series %q (have %v)", want, names)
		}
	}
}

func TestFig10MinimumAtSqrtP(t *testing.T) {
	res, err := registry["fig10"].Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	var hs Series
	for _, s := range res.Series {
		if s.Name == "HSUMMA comm" {
			hs = s
		}
	}
	bi := 0
	for i, y := range hs.Y {
		if y < hs.Y[bi] {
			bi = i
		}
	}
	if bi == 0 || bi == len(hs.Y)-1 {
		t.Fatalf("exascale minimum at boundary (G=%g)", hs.X[bi])
	}
}

func TestValidationVerdicts(t *testing.T) {
	for _, id := range []string{"valgrid", "valbgp"} {
		res, err := registry[id].Run(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Findings) == 0 || !strings.Contains(res.Findings[0], "outperform") {
			t.Fatalf("%s verdict missing: %v", id, res.Findings)
		}
	}
}

func TestTablesIncludeOptimalRow(t *testing.T) {
	res, err := registry["table2"].Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if strings.Contains(row[0], "√p") {
			found = true
		}
	}
	if !found {
		t.Fatal("Table II missing the G=√p row")
	}
}

func TestCSVOutput(t *testing.T) {
	res, err := registry["fig10"].Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	csv := CSV(res)
	if !strings.HasPrefix(csv, "experiment,series,x,y\n") {
		t.Fatal("csv header missing")
	}
	if !strings.Contains(csv, "fig10,HSUMMA comm,") {
		t.Fatalf("csv content missing:\n%s", csv[:200])
	}
}

func TestUncalibratedMode(t *testing.T) {
	// The published-parameter mode must also run and still show the
	// U-shape endpoints property.
	res, err := registry["fig8"].Run(Options{Quick: true, Uncalibrated: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no data in uncalibrated mode")
	}
	// The machine line must name the published (non-calibrated) preset.
	found := false
	for _, f := range res.Findings {
		if strings.Contains(f, "machine:") {
			found = true
			if strings.Contains(f, "calibrated") {
				t.Fatalf("uncalibrated run reports a calibrated machine: %s", f)
			}
		}
	}
	if !found {
		t.Fatal("no machine finding reported")
	}
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return d
	}
	return d / b
}
