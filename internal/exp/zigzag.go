package exp

import (
	"fmt"
	"math"

	"repro/internal/sched"
	"repro/internal/simalg"
	"repro/internal/simnet"
	"repro/internal/topo"
	"repro/internal/torus"
)

// The zigzag experiment goes beyond the paper's homogeneous model: the
// paper observes irregular bumps in its Figure 8 and attributes them to
// "mapping communication layouts to network hardware" (citing Balaji et
// al.), explicitly noting its own grouping ignores platform parameters.
// Here the simulator maps ranks onto the Shaheen 3D torus (XYZT order, VN
// mode) and scales every transfer's bandwidth term by its hop distance —
// wormhole routing occupying one link per hop. Because different group
// counts slice the rank space into differently-shaped torus regions, the
// communication time stops being smooth in G: the mapping sensitivity the
// paper measured emerges from geometry alone.
func init() {
	register(Experiment{
		ID:    "zigzag",
		Title: "BG/P mapping sensitivity: G sweep under torus hop-distance link costs",
		Paper: "Figure 8's 'zigzags' — irregularities the paper attributes to rank→torus mapping",
		Run:   runZigzag,
	})
}

func runZigzag(o Options) (*Result, error) {
	fc := bgpConfig(o)
	// The torus needs the exact core count; quick mode shrinks the grid.
	tor, err := torus.ForCores(fc.grid.Size())
	if err != nil {
		return nil, err
	}
	base := simalg.Config{
		N: fc.n, Grid: fc.grid, BlockSize: fc.block,
		// Binomial keeps the event-level execution cheap at 16384 ranks
		// (the ring fast path is disabled under non-uniform links).
		Bcast:   sched.Binomial,
		Machine: fc.pf.Model,
	}
	run := func(linked bool, G int) (float64, error) {
		cfg := base
		if linked {
			cfg.LinkCost = simnet.LinkCostFunc(tor.LinkCost)
		}
		h, err := topo.FactorGroups(fc.grid, G)
		if err != nil {
			return 0, err
		}
		cfg.Groups = h
		res, err := simalg.HSUMMA(cfg)
		if err != nil {
			return 0, err
		}
		return res.Comm, nil
	}
	var gs, flat, mapped []float64
	for G := 1; G <= fc.grid.Size(); G *= 2 {
		if _, err := topo.FactorGroups(fc.grid, G); err != nil {
			continue
		}
		f, err := run(false, G)
		if err != nil {
			return nil, err
		}
		m, err := run(true, G)
		if err != nil {
			return nil, err
		}
		gs = append(gs, float64(G))
		flat = append(flat, f)
		mapped = append(mapped, m)
	}
	res := &Result{
		ID: "zigzag", Title: "Torus-mapping sensitivity of the G sweep",
		XLabel: "groups", YLabel: "seconds",
		Series: []Series{
			{Name: "HSUMMA comm (uniform links)", X: gs, Y: flat},
			{Name: "HSUMMA comm (torus hop costs)", X: gs, Y: mapped},
		},
	}
	res.Findings = append(res.Findings,
		fmt.Sprintf("torus: %v", tor),
		fmt.Sprintf("uniform-link curve roughness %.3f; torus-mapped roughness %.3f (higher = more zigzag)",
			roughness(flat), roughness(mapped)),
		"the paper's Figure 8 zigzags arise from exactly this mapping dependence (§V-B)",
	)
	return res, nil
}

// roughness measures deviation from monotone-valley shape: the summed
// relative magnitude of second differences of log-spaced samples.
func roughness(ys []float64) float64 {
	if len(ys) < 3 {
		return 0
	}
	sum := 0.0
	for i := 1; i < len(ys)-1; i++ {
		d2 := ys[i+1] - 2*ys[i] + ys[i-1]
		sum += math.Abs(d2) / ys[i]
	}
	return sum
}
