package exp

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simalg"
	"repro/internal/topo"
	"repro/internal/tune"
)

// figureConfig resolves the machine and geometry for the Grid'5000 and
// BG/P figure experiments in either fidelity mode.
type figureConfig struct {
	pf    platform.Platform
	grid  topo.Grid
	n     int
	block int
}

func grid5000Config(o Options, fullBlock int) figureConfig {
	pf := platform.Grid5000Calibrated()
	if o.Uncalibrated {
		pf = platform.Grid5000()
	}
	if o.Quick {
		return figureConfig{pf: pf, grid: topo.Grid{S: 4, T: 8}, n: 1024, block: fullBlock / 8}
	}
	return figureConfig{pf: pf, grid: topo.Grid{S: 8, T: 16}, n: 8192, block: fullBlock}
}

func bgpConfig(o Options) figureConfig {
	pf := platform.BlueGenePCalibrated()
	if o.Uncalibrated {
		pf = platform.BlueGeneP()
	}
	if o.Quick {
		return figureConfig{pf: pf, grid: topo.Grid{S: 16, T: 16}, n: 4096, block: 64}
	}
	return figureConfig{pf: pf, grid: topo.Grid{S: 128, T: 128}, n: 65536, block: 256}
}

// gSweep simulates SUMMA once and HSUMMA for every feasible power-of-two
// group count, returning (G values, HSUMMA comm, HSUMMA total, SUMMA comm,
// SUMMA total).
func gSweep(fc figureConfig, bcast sched.Algorithm) (gs []float64, hComm, hTotal []float64, sComm, sTotal float64, err error) {
	base := simalg.Config{
		N: fc.n, Grid: fc.grid, BlockSize: fc.block,
		Bcast: bcast, Machine: fc.pf.Model,
	}
	su, err := simalg.SUMMA(base)
	if err != nil {
		return nil, nil, nil, 0, 0, err
	}
	for G := 1; G <= fc.grid.Size(); G *= 2 {
		h, ferr := topo.FactorGroups(fc.grid, G)
		if ferr != nil {
			continue
		}
		cfg := base
		cfg.Groups = h
		res, herr := simalg.HSUMMA(cfg)
		if herr != nil {
			return nil, nil, nil, 0, 0, herr
		}
		gs = append(gs, float64(G))
		hComm = append(hComm, res.Comm)
		hTotal = append(hTotal, res.Total)
	}
	return gs, hComm, hTotal, su.Comm, su.Total, nil
}

func minOf(ys []float64) (int, float64) {
	best, bestV := 0, math.Inf(1)
	for i, y := range ys {
		if y < bestV {
			best, bestV = i, y
		}
	}
	return best, bestV
}

func constSeries(name string, xs []float64, v float64) Series {
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = v
	}
	return Series{Name: name, X: xs, Y: ys}
}

// figGSweep implements Figures 5, 6 and 8: communication (and for Figure 8
// also total) time against the number of groups.
func figGSweep(id, title string, fc figureConfig, withTotal bool, paperRatioComm float64, o Options) (*Result, error) {
	gs, hComm, hTotal, sComm, sTotal, err := gSweep(fc, sched.VanDeGeijn)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID: id, Title: title,
		XLabel: "groups", YLabel: "seconds",
		Series: []Series{
			{Name: "HSUMMA comm", X: gs, Y: hComm},
			constSeries("SUMMA comm", gs, sComm),
		},
	}
	if withTotal {
		r.Series = append(r.Series,
			Series{Name: "HSUMMA total", X: gs, Y: hTotal},
			constSeries("SUMMA total", gs, sTotal),
		)
	}
	bi, bv := minOf(hComm)
	r.Findings = append(r.Findings,
		fmt.Sprintf("machine: %s (n=%d, grid %v, b=B=%d)", fc.pf.Name, fc.n, fc.grid, fc.block),
		fmt.Sprintf("SUMMA comm %.3gs; best HSUMMA comm %.3gs at G=%d -> %.2fx less comm",
			sComm, bv, int(gs[bi]), sComm/bv),
	)
	if withTotal {
		_, bt := minOf(hTotal)
		r.Findings = append(r.Findings,
			fmt.Sprintf("SUMMA total %.3gs; best HSUMMA total %.3gs -> %.2fx less overall", sTotal, bt, sTotal/bt))
	}
	if paperRatioComm > 0 {
		r.Findings = append(r.Findings,
			fmt.Sprintf("paper reports %.2fx less comm at this scale", paperRatioComm))
	}
	// Degeneracy check: endpoints equal SUMMA (within numerical noise).
	if len(gs) > 0 && gs[0] == 1 {
		if math.Abs(hComm[0]-sComm) > 1e-9*sComm {
			r.Findings = append(r.Findings, "WARNING: G=1 does not match SUMMA")
		}
	}
	if o.Annotate {
		r.Findings = append(r.Findings, planAnnotation(fc, int(gs[bi])))
	}
	return r, nil
}

// planAnnotation runs the autotuning planner on the figure's exact setting
// (platform, grid and block pinned, HSUMMA with the sweep's broadcast) and
// reports its pick next to the sweep's measured optimum — the hook that
// lets a regenerated figure show what the planner would have chosen.
func planAnnotation(fc figureConfig, sweepBestG int) string {
	pl, err := tune.PlanFor(tune.Request{
		Platform: fc.pf, N: fc.n, P: fc.grid.Size(),
		Grid: &fc.grid, BlockSize: fc.block, OuterBlockSize: fc.block,
		Algorithms:   []engine.Algorithm{engine.HSUMMA},
		Broadcasts:   []sched.Algorithm{sched.VanDeGeijn},
		Objective:    tune.MinComm,
		AnalyticOnly: true,
	})
	if err != nil {
		return fmt.Sprintf("planner: failed (%v)", err)
	}
	b := pl.Best
	return fmt.Sprintf("planner picks G=%d (B=%d, model comm %.3gs, analytic) vs sweep best G=%d",
		b.Groups, b.OuterBlockSize, b.ModelComm, sweepBestG)
}

// scalability implements Figures 7 and 9: communication time against the
// processor count, SUMMA vs HSUMMA at its per-p best group count.
func scalability(id, title string, cores []int, mkConfig func(p int) (figureConfig, error)) (*Result, error) {
	var xs, sline, hline []float64
	var findings []string
	for _, p := range cores {
		fc, err := mkConfig(p)
		if err != nil {
			return nil, err
		}
		gs, hComm, _, sComm, _, err := gSweep(fc, sched.VanDeGeijn)
		if err != nil {
			return nil, err
		}
		bi, bv := minOf(hComm)
		xs = append(xs, float64(p))
		sline = append(sline, sComm)
		hline = append(hline, bv)
		findings = append(findings,
			fmt.Sprintf("p=%d: SUMMA %.3gs, HSUMMA %.3gs (G=%d) -> %.2fx", p, sComm, bv, int(gs[bi]), sComm/bv))
	}
	return &Result{
		ID: id, Title: title,
		XLabel: "processes", YLabel: "seconds",
		Series: []Series{
			{Name: "HSUMMA comm (best G)", X: xs, Y: hline},
			{Name: "SUMMA comm", X: xs, Y: sline},
		},
		Findings: findings,
	}, nil
}

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Grid'5000: comm time vs groups, b=B=64, n=8192, p=128",
		Paper: "Figure 5 — HSUMMA U-curve far below SUMMA at small block size",
		Run: func(o Options) (*Result, error) {
			return figGSweep("fig5", "Grid'5000 G sweep (b=64)", grid5000Config(o, 64), false, 0, o)
		},
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Grid'5000: comm time vs groups, b=B=512, n=8192, p=128",
		Paper: "Figure 6 — same sweep at the largest block size; paper's best ratio 1.6x (4.53s -> 2.81s)",
		Run: func(o Options) (*Result, error) {
			return figGSweep("fig6", "Grid'5000 G sweep (b=512)", grid5000Config(o, 512), false, 1.6, o)
		},
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Grid'5000 scalability: comm time vs p, b=B=512, n=8192",
		Paper: "Figure 7 — SUMMA and HSUMMA converge at small p, HSUMMA ahead at p=128",
		Run: func(o Options) (*Result, error) {
			cores := []int{16, 32, 64, 128}
			if o.Quick {
				cores = []int{16, 32}
			}
			return scalability("fig7", "Grid'5000 scalability", cores, func(p int) (figureConfig, error) {
				fc := grid5000Config(o, 512)
				g, err := topo.SquarestGrid(p)
				if err != nil {
					return figureConfig{}, err
				}
				fc.grid = g
				if o.Quick {
					fc.n = 1024
					fc.block = 64
				}
				return fc, nil
			})
		},
	})
	register(Experiment{
		ID:    "fig8",
		Title: "BG/P 16384 cores: execution and comm time vs groups, b=B=256, n=65536",
		Paper: "Figure 8 — SUMMA 50.2s/36.46s; HSUMMA best 21.26s/6.19s at G=512 (2.36x / 5.89x)",
		Run: func(o Options) (*Result, error) {
			return figGSweep("fig8", "BG/P G sweep", bgpConfig(o), true, 5.89, o)
		},
	})
	register(Experiment{
		ID:    "fig9",
		Title: "BG/P scalability: comm time vs p, b=B=256, n=65536",
		Paper: "Figure 9 — HSUMMA's comm advantage grows from 2048 to 16384 cores",
		Run: func(o Options) (*Result, error) {
			cores := []int{2048, 4096, 8192, 16384}
			if o.Quick {
				cores = []int{64, 256}
			}
			return scalability("fig9", "BG/P scalability", cores, func(p int) (figureConfig, error) {
				fc := bgpConfig(o)
				g, err := topo.SquarestGrid(p)
				if err != nil {
					return figureConfig{}, err
				}
				fc.grid = g
				return fc, nil
			})
		},
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Exascale prediction: time vs groups, p=2^20, n=2^22, b=256",
		Paper: "Figure 10 — analytic prediction; minimum at G=√p=1024, SUMMA matched at the endpoints",
		Run:   runFig10,
	})
}

func runFig10(o Options) (*Result, error) {
	pf := platform.Exascale()
	par := model.Params{
		N: 1 << 22, P: 1 << 20, B: 256,
		Machine: pf.Model, Bcast: model.VanDeGeijn{},
	}
	if o.Quick {
		// Preserve the interior-minimum regime when scaling down:
		// 2nb/p = 2048 stays below α/β = 6250.
		par.N = 1 << 14
		par.P = 1 << 12
	}
	var xs, comm, total []float64
	for g := 1; g <= par.P; g *= 4 {
		c := model.HSUMMA(par, float64(g))
		xs = append(xs, float64(g))
		comm = append(comm, c.Comm())
		total = append(total, c.Total())
	}
	s := model.SUMMA(par)
	bi, bv := minOf(comm)
	res := &Result{
		ID: "fig10", Title: "Exascale prediction (closed form)",
		XLabel: "groups", YLabel: "seconds",
		Series: []Series{
			{Name: "HSUMMA comm", X: xs, Y: comm},
			constSeries("SUMMA comm", xs, s.Comm()),
		},
		Findings: []string{
			fmt.Sprintf("machine: %s", pf.Name),
			fmt.Sprintf("SUMMA comm %.3gs; HSUMMA best %.3gs at G=%d (√p=%d) -> %.2fx",
				s.Comm(), bv, int(xs[bi]), int(math.Sqrt(float64(par.P))), s.Comm()/bv),
			fmt.Sprintf("computation adds %.3gs identically to both algorithms", s.Compute),
			fmt.Sprintf("minimum condition α/β > 2nb/p: %v", model.MinimumAtSqrtP(par)),
		},
	}
	res.Series = append(res.Series, Series{Name: "HSUMMA total", X: xs, Y: total})
	return res, nil
}
