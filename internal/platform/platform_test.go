package platform

import (
	"math"
	"testing"
)

func TestPresetsHavePositiveParameters(t *testing.T) {
	for _, pf := range All() {
		if pf.Model.Alpha <= 0 || pf.Model.Beta <= 0 || pf.Model.Gamma <= 0 {
			t.Fatalf("%s has non-positive parameters: %v", pf.Name, pf.Model)
		}
		if pf.MaxCores <= 0 {
			t.Fatalf("%s has no max cores", pf.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, c := range []struct {
		name string
		want string
	}{
		{"grid5000", "Grid5000/Graphene"},
		{"bgp", "BlueGene/P (Shaheen)"},
		{"bluegene", "BlueGene/P (Shaheen)"},
		{"exascale", "Exascale (projected)"},
	} {
		pf, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if pf.Name != c.want {
			t.Fatalf("ByName(%q) = %q", c.name, pf.Name)
		}
	}
	if _, err := ByName("cray"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

// The paper's condition arithmetic must hold with the preset parameters:
// α/β > 2nb/p on all three platforms with their experiment configurations.
func TestPaperConditionArithmetic(t *testing.T) {
	cases := []struct {
		pf      Platform
		n, b, p float64
	}{
		{Grid5000(), 8192, 64, 128},
		{BlueGeneP(), 65536, 256, 16384},
		{Exascale(), 1 << 22, 256, 1 << 20},
	}
	for _, c := range cases {
		ratio := c.pf.Model.Alpha / c.pf.Model.Beta
		threshold := 2 * c.n * c.b / c.p
		if ratio <= threshold {
			t.Fatalf("%s: α/β = %g must exceed 2nb/p = %g (paper §V)", c.pf.Name, ratio, threshold)
		}
	}
}

// The BG/P γ calibration: SUMMA's measured compute time (50.2 − 36.46 s)
// on 16384 cores must be reproduced within 5%.
func TestBGPGammaCalibration(t *testing.T) {
	pf := BlueGeneP()
	n := 65536.0
	flops := 2 * n * n * n / 16384
	got := pf.Model.Compute(flops)
	want := 50.2 - 36.46
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("BG/P compute time %g, paper implies %g", got, want)
	}
}

// The calibrated BG/P α must reproduce the measured SUMMA communication
// time through the Van de Geijn closed form (the fit recorded in
// calibrated.go).
func TestBGPCalibrationAnchor(t *testing.T) {
	pf := BlueGenePCalibrated()
	n, b, p := 65536.0, 256.0, 16384.0
	sq := math.Sqrt(p)
	latFactor := 2 * (n / b) * (math.Log2(sq) + sq - 1)
	bwFactor := 2 * (n * n / sq) * 2 * (sq - 1) / sq
	got := latFactor*pf.Model.Alpha + bwFactor*pf.Model.Beta
	if math.Abs(got-36.46) > 0.05*36.46 {
		t.Fatalf("calibrated BG/P predicts SUMMA comm %g, measured 36.46", got)
	}
}

// The calibrated Grid'5000 parameters must reproduce both measured anchors
// (b=64 → ~24 s, b=512 → ~4.53 s) within 10%.
func TestGrid5000CalibrationAnchors(t *testing.T) {
	pf := Grid5000Calibrated()
	n, p := 8192.0, 128.0
	sq := math.Sqrt(p)
	for _, c := range []struct{ b, want float64 }{{64, 24}, {512, 4.53}} {
		latFactor := 2 * (n / c.b) * (math.Log2(sq) + sq - 1)
		bwFactor := 2 * (n * n / sq) * 2 * (sq - 1) / sq
		got := latFactor*pf.Model.Alpha + bwFactor*pf.Model.Beta
		if math.Abs(got-c.want) > 0.10*c.want {
			t.Fatalf("calibrated Grid5000 b=%g predicts %g, measured %g", c.b, got, c.want)
		}
	}
}

func TestContentionString(t *testing.T) {
	if ContentionNone.String() != "none" || ContentionShared.String() != "shared-segment" ||
		ContentionTorus.String() != "torus" {
		t.Fatal("contention names wrong")
	}
	if Contention(99).String() == "" {
		t.Fatal("unknown contention empty string")
	}
}
