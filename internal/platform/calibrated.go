package platform

// Calibrated presets.
//
// The paper's published Hockney parameters predict the *location* of the
// optimal group count but not the magnitude of the measured times: its own
// validation sections concede this ("we do not have experimental minimum
// exactly at G=√p as predicted"), and the measured SUMMA communication
// times (36.46 s on 16384 BG/P cores; ~24 s on 128 Grid'5000 cores at
// b=64) exceed the congestion-free model by roughly two orders of
// magnitude — sub-communicator broadcasts on both machines pay large
// effective per-message software/routing costs the bare wire parameters
// ignore.
//
// The presets below substitute the unavailable machines with *effective*
// Hockney parameters fitted ONLY to the paper's measured SUMMA numbers
// (never to HSUMMA): with the machine pinned down by the baseline, every
// HSUMMA ratio the simulator then produces is a genuine prediction of the
// algorithm's schedules. The fits are recorded here and re-derived in the
// package tests.

// BlueGenePCalibrated returns the effective BG/P machine fitted to the
// paper's measured SUMMA communication times with the scatter-allgather
// (Van de Geijn) broadcast MPICH selects for these ~1 MB messages:
//
//	comm(p) ≈ 2·(n/b)·L(√p)·α_eff + 2·(n²/√p)·W(√p)·β
//	36.46 s at p=16384 (n=65536, b=256) ⇒ α_eff ≈ 36.46/68608 ≈ 5.3e-4 s
//
// (the p=2048 anchor, ≈10 s from Figure 9, then predicts 13.5 s — the
// two-point fit makes β's contribution negative, so β keeps its published
// value and the latency term absorbs the per-message cost; see
// EXPERIMENTS.md). γ is unchanged: computation was measured directly.
func BlueGenePCalibrated() Platform {
	pf := BlueGeneP()
	pf.Name = "BlueGene/P (Shaheen, calibrated)"
	pf.Model.Alpha = 5.31e-4
	return pf
}

// Grid5000Calibrated returns the effective Graphene machine fitted to the
// paper's two measured SUMMA communication times (both at n=8192, p=128):
// ≈24 s at b=64 and ≈4.53 s at b=512. Solving the two linear equations
//
//	3533·α_eff + 2.32e7·β_eff = 24      (b=64)
//	 442·α_eff + 2.32e7·β_eff = 4.53    (b=512)
//
// gives α_eff ≈ 6.3e-3 s and β_eff ≈ 7.5e-8 s/element (≈9.4 ns/byte —
// about 107 MB/s effective, a plausible saturated shared-Ethernet figure).
func Grid5000Calibrated() Platform {
	pf := Grid5000()
	pf.Name = "Grid5000/Graphene (calibrated)"
	pf.Model.Alpha = 6.3e-3
	pf.Model.Beta = 7.5e-8
	return pf
}
