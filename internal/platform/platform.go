// Package platform defines the machine presets the paper evaluates on:
// the Graphene cluster of Grid'5000 (Section V-A), the Shaheen BlueGene/P
// (Section V-B) and the projected exascale platform (Section V-C). Each
// preset carries the Hockney parameters published in the paper plus a
// calibrated compute rate, and a contention description used by the
// simulator's optional congested mode.
//
// The α and β values are the ones printed in the paper's validation
// subsections. Following the paper's own arithmetic (its BG/P check
// α/β = 3e-6/1e-9 = 3000 > 2nb/p = 2048 applies β directly to element
// counts), β is interpreted as seconds per matrix ELEMENT throughout the
// timing paths; the simulator and the closed-form model both count message
// sizes in elements. γ is not printed for all platforms; where missing it
// is derived from the hardware description (BG/P: 4-way 850 MHz PowerPC
// 450, de-rated to measured ESSL DGEMM efficiency) and recorded here so
// every experiment is reproducible from constants in one file.
package platform

import (
	"fmt"

	"repro/internal/hockney"
)

// Contention names the link-sharing behaviour the simulator should assume.
type Contention int

const (
	// ContentionNone models the paper's analytic assumption: all
	// transfers proceed at full link speed regardless of concurrency.
	ContentionNone Contention = iota
	// ContentionShared models a single shared network segment (commodity
	// Ethernet): concurrent transfers in one simulation phase divide the
	// bandwidth.
	ContentionShared
	// ContentionTorus models a 3D-torus-like fabric: bandwidth divides
	// among concurrent transfers up to the bisection cap, after which it
	// saturates.
	ContentionTorus
)

func (c Contention) String() string {
	switch c {
	case ContentionNone:
		return "none"
	case ContentionShared:
		return "shared-segment"
	case ContentionTorus:
		return "torus"
	}
	return fmt.Sprintf("contention(%d)", int(c))
}

// Platform bundles a Hockney model with the experiment-relevant machine
// description.
type Platform struct {
	Name  string
	Model hockney.Model
	// MaxCores is the largest core count the paper exercised on this
	// platform; experiment sweeps stop here.
	MaxCores int
	// Contention selects the congested-mode link model for the
	// simulator's ablation runs (figures default to ContentionNone, the
	// paper's model assumption).
	Contention Contention
	// TorusDegree is the saturation cap for ContentionTorus (number of
	// independent links per node; 6 on the BG/P 3D torus).
	TorusDegree int
}

// Grid5000 is the Graphene/Nancy cluster preset (Section V-A-1):
// α = 1e-4 s, β = 1e-9 s/element. The Graphene nodes are 4-core 2.53 GHz
// Xeon X3440; with MKL DGEMM near 80% of the 4 flops/cycle/core peak the
// per-core flop time is ≈ 1.2e-10 s.
func Grid5000() Platform {
	return Platform{
		Name: "Grid5000/Graphene",
		Model: hockney.Model{
			Alpha: 1e-4,
			Beta:  1e-9,
			Gamma: 1.2e-10,
		},
		MaxCores:   128,
		Contention: ContentionShared,
	}
}

// BlueGeneP is the Shaheen BG/P preset (Section V-B-1): α = 3e-6 s,
// β = 1e-9 s/element. γ is calibrated to the paper's own measurement: SUMMA on
// 16384 cores spends 50.2−36.46 ≈ 13.7 s computing 2·65536³/16384 flops,
// giving γ ≈ 4.0e-10 s/flop (≈ 73% of the 3.4 Gflop/s PowerPC 450 peak,
// a typical ESSL DGEMM efficiency).
func BlueGeneP() Platform {
	return Platform{
		Name: "BlueGene/P (Shaheen)",
		Model: hockney.Model{
			Alpha: 3e-6,
			Beta:  1e-9,
			Gamma: 4.0e-10,
		},
		MaxCores:    16384,
		Contention:  ContentionTorus,
		TorusDegree: 6,
	}
}

// Exascale is the projected platform of Section V-C: total rate 1e18 flop/s
// over p = 2^20 cores (γ = p/1e18 per core), α = 500 ns,
// β = 1/(100 GB/s) = 1e-11 s/byte = 8e-11 s/element (the one preset whose
// bandwidth the paper quotes physically, so the byte→element conversion is
// applied here).
func Exascale() Platform {
	p := float64(1 << 20)
	return Platform{
		Name: "Exascale (projected)",
		Model: hockney.Model{
			Alpha: 500e-9,
			Beta:  8e-11,
			Gamma: p / 1e18,
		},
		MaxCores:   1 << 20,
		Contention: ContentionNone,
	}
}

// All returns every preset, for table-driven tests and CLI listings.
func All() []Platform {
	return []Platform{Grid5000(), BlueGeneP(), Exascale()}
}

// ByName returns the preset with the given short name: "grid5000", "bgp" or
// "exascale".
func ByName(name string) (Platform, error) {
	switch name {
	case "grid5000", "graphene":
		return Grid5000(), nil
	case "bgp", "bluegene", "bluegenep":
		return BlueGeneP(), nil
	case "exascale":
		return Exascale(), nil
	}
	return Platform{}, fmt.Errorf("platform: unknown preset %q (want grid5000, bgp or exascale)", name)
}
