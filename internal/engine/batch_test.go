package engine

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/topo"
)

// TestWithRHSRepads locks in the batching contract: replacing N re-pads
// only the N dimension (M and K keep the base padding), and the widened
// shape still satisfies the algorithm's constraints.
func TestWithRHSRepads(t *testing.T) {
	groups, err := topo.FactorGroups(topo.Grid{S: 2, T: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := Spec{
		Algorithm: HSUMMA,
		Opts: core.Options{
			Shape: matrix.Shape{M: 30, N: 26, K: 22}, Grid: topo.Grid{S: 2, T: 2},
			BlockSize: 2, OuterBlockSize: 4, Groups: groups,
		},
	}
	padded, err := base.Padded()
	if err != nil {
		t.Fatal(err)
	}
	ps := padded.Shape()

	for _, k := range []int{1, 2, 3, 5} {
		got, err := padded.WithRHS(k * 26)
		if err != nil {
			t.Fatalf("WithRHS(%d): %v", k*26, err)
		}
		gs := got.Shape()
		if gs.M != ps.M || gs.K != ps.K {
			t.Fatalf("WithRHS(%d) changed M or K: %v vs %v", k*26, gs, ps)
		}
		if gs.N < k*26 || gs.N%base.Opts.Grid.T != 0 {
			t.Fatalf("WithRHS(%d): N'=%d not padded to grid", k*26, gs.N)
		}
		// Idempotent under re-padding, like Padded itself.
		again, err := got.WithRHS(gs.N)
		if err != nil || again.Shape() != gs {
			t.Fatalf("WithRHS not stable: %v %v", again.Shape(), err)
		}
	}

	if _, err := padded.WithRHS(0); err == nil {
		t.Fatal("WithRHS(0) did not error")
	}
}

// TestWithRHSSquareOnlyRejects locks in the cannot-batch signal: widening
// a square-only algorithm's RHS makes the shape rectangular and must fail.
func TestWithRHSSquareOnlyRejects(t *testing.T) {
	for _, alg := range []Algorithm{Cannon, Fox} {
		spec := Spec{
			Algorithm: alg,
			Opts:      core.Options{N: 16, Grid: topo.Grid{S: 4, T: 4}, BlockSize: 4},
		}
		_, err := spec.WithRHS(32)
		if !errors.Is(err, matrix.ErrSquareOnly) {
			t.Fatalf("%s: WithRHS(32) err = %v, want ErrSquareOnly", alg, err)
		}
	}
}
