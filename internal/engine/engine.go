// Package engine is the unified algorithm dispatch shared by the two
// execution paths: the live goroutine runtime (hsumma.Multiply) and the
// simnet virtual communicator (hsumma.Simulate, internal/simalg). Both
// paths build a Spec and call Run with their transport's comm.Comm, so
// adding an algorithm here makes it available in every execution mode at
// once — the "write once, run at every scale" property the repository is
// organised around.
package engine

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/blas"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// Algorithm names a distributed multiplication algorithm.
type Algorithm string

// The six distributed algorithms.
const (
	SUMMA      Algorithm = "summa"
	HSUMMA     Algorithm = "hsumma"
	Multilevel Algorithm = "multilevel"
	Cannon     Algorithm = "cannon"
	Fox        Algorithm = "fox"
	// Strassen is the sub-cubic quadrant recursion over the grid
	// (core.Strassen): StrassenLevels rounds of 2×2 grid splitting,
	// bottoming out in SUMMA (or HSUMMA with StrassenInnerGroups) on the
	// sub-grids. Square-only at the inter-rank level, like Cannon and Fox.
	Strassen Algorithm = "strassen"
)

// Auto is the planner-resolved pseudo-algorithm: a Spec never reaches Run
// with it. Both execution paths (hsumma.Multiply and hsumma.Simulate)
// resolve Auto through the internal/tune planner — which picks the
// algorithm, grid shape, group hierarchy, block sizes and broadcast for
// the target platform — before dispatching here.
const Auto Algorithm = "auto"

// Algorithms lists every dispatchable algorithm, for sweeps and tests.
func Algorithms() []Algorithm {
	return []Algorithm{SUMMA, HSUMMA, Multilevel, Cannon, Fox, Strassen}
}

// AlgorithmByName maps a user-facing name (case-insensitive) to an
// algorithm, including the planner's auto pseudo-algorithm. Every surface
// that parses algorithm names shares this table.
func AlgorithmByName(name string) (Algorithm, error) {
	switch a := Algorithm(strings.ToLower(name)); a {
	case SUMMA, HSUMMA, Multilevel, Cannon, Fox, Strassen, Auto:
		return a, nil
	}
	return "", fmt.Errorf("engine: unknown algorithm %q (have summa, hsumma, multilevel, cannon, fox, strassen, auto)", name)
}

// Executor names a virtual execution engine for simulated runs. The live
// path (hsumma.Multiply) always runs goroutine ranks — real data needs a
// real runtime; the selector applies to virtual time only.
type Executor string

const (
	// ExecutorGoroutine is the SPMD goroutine engine (internal/simnet's
	// VWorld): one goroutine per rank, collectives rendezvous on sharded
	// condition variables. Handles every algorithm and every model knob.
	ExecutorGoroutine Executor = "goroutine"
	// ExecutorEvent is the discrete-event engine (internal/evsim): rank
	// programs stream recorded events into a single-threaded replay loop,
	// with a rank-symmetry fast path sharing clock-equal collective
	// executions. Bit-identical to the goroutine engine.
	ExecutorEvent Executor = "event"
	// ExecutorAuto picks per spec: the event engine for the collective-only
	// algorithms (SUMMA, HSUMMA, multilevel) without overlap — where the
	// event loop and its symmetry fast path shine — and the goroutine
	// engine for the point-to-point-heavy baselines (Cannon, Fox) and for
	// overlap runs, whose irregular dependency structure gains nothing
	// from replay. The empty string means auto.
	ExecutorAuto Executor = "auto"
)

// Executors lists the selectable executors, for flags and error messages.
func Executors() []Executor {
	return []Executor{ExecutorGoroutine, ExecutorEvent, ExecutorAuto}
}

// ExecutorNames renders the valid executor names for error messages, so
// every surface (ResolveExecutor, hsumma.EngineByName, CLI help) reports
// the same list and a future executor is added in one place.
func ExecutorNames() string {
	names := make([]string, 0, len(Executors()))
	for _, e := range Executors() {
		names = append(names, string(e))
	}
	return strings.Join(names, ", ")
}

// ResolveExecutor applies the auto rule for a spec and validates explicit
// selections. Both virtual execution paths (simalg and the tune planner's
// refinement) route through here so "auto" means the same thing
// everywhere.
func ResolveExecutor(e Executor, alg Algorithm, overlap bool) (Executor, error) {
	switch e {
	case ExecutorGoroutine, ExecutorEvent:
		return e, nil
	case ExecutorAuto, "":
		switch alg {
		case SUMMA, HSUMMA, Multilevel:
			if !overlap {
				return ExecutorEvent, nil
			}
		}
		return ExecutorGoroutine, nil
	default:
		return "", fmt.Errorf("engine: unknown executor %q (valid: %s)", e, ExecutorNames())
	}
}

// Spec fully describes one distributed multiplication, independent of the
// transport it runs on.
type Spec struct {
	Algorithm Algorithm
	// Opts carries the Shape (with N as the square shorthand), Grid,
	// BlockSize, OuterBlockSize, Groups, Broadcast and Segments (see
	// core.Options).
	Opts core.Options
	// Levels configures Multilevel (outermost first); the inner block is
	// Opts.BlockSize.
	Levels []core.Level
	// Predicted is the planner's closed-form per-phase prediction for this
	// execution in seconds, keyed by trace phase name (bcast/shift/p2p for
	// communication, gemm for compute). tune.ResolveSpec attaches it on
	// every resolution — pinned and Auto alike — so measured Stats can be
	// audited against what the model promised. Advisory observability
	// metadata only: it never enters Key(), never changes what Run
	// executes, and survives Padded()/WithRHS() untouched (a widened batch
	// keeps the original request's prediction).
	Predicted map[string]float64
}

// Shape returns the spec's resolved global GEMM shape: Opts.Shape, or the
// square shorthand Square(Opts.N) when Shape is unset.
func (s Spec) Shape() matrix.Shape {
	if !s.Opts.Shape.IsZero() {
		return s.Opts.Shape
	}
	return matrix.Square(s.Opts.N)
}

// Key returns the spec's canonical execution-shape key: a string under
// which two specs are equal only when they describe the same execution —
// algorithm, global shape, process grid, block sizes, group hierarchy,
// broadcast and segmentation. Fields with a defaulted meaning are
// canonicalised (an empty Broadcast keys as binomial, OuterBlockSize 0 as
// b), so a request that spells the default out loud shares a key with one
// that leaves it blank. The serving layer (internal/serve) routes requests
// by it: two multiplications with the same key can share one resident
// session (its world, block maps and buffers), and the tune planner's
// memoised plan for the shape is reused through the same identity. Call it
// on a resolved spec (after Padded) so the shape the key carries is the
// execution shape.
func (s Spec) Key() string {
	sh := s.Shape()
	bcast := s.Opts.Broadcast
	if bcast == "" {
		bcast = sched.Binomial
	}
	// Segments are honoured only by the chain broadcast (sched.NewBroadcast
	// defaults <= 0 to 1 and the other schedules ignore the knob), and
	// HSUMMA's outer block B only by HSUMMA itself — key only what the
	// execution reads.
	seg := 1
	if bcast == sched.Chain && s.Opts.Segments > 1 {
		seg = s.Opts.Segments
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%dx%dx%d|g=%dx%d|b=%d",
		s.Algorithm, sh.M, sh.N, sh.K, s.Opts.Grid.S, s.Opts.Grid.T, s.Opts.BlockSize)
	if s.Algorithm == HSUMMA {
		outer := s.Opts.OuterBlockSize
		if outer == 0 {
			outer = s.Opts.BlockSize
		}
		fmt.Fprintf(&b, "|B=%d|G=%dx%d", outer, s.Opts.Groups.I, s.Opts.Groups.J)
	}
	if s.Algorithm == Strassen {
		// Levels are canonicalised (≤ 0 means one level); the inner-group
		// count and HSUMMA outer block are keyed only when they bind.
		fmt.Fprintf(&b, "|sl=%d", core.StrassenLevelsOf(s.Opts.StrassenLevels))
		if s.Opts.StrassenInnerGroups > 0 {
			outer := s.Opts.OuterBlockSize
			if outer == 0 {
				outer = s.Opts.BlockSize
			}
			fmt.Fprintf(&b, "|sg=%d|B=%d", s.Opts.StrassenInnerGroups, outer)
		}
	}
	fmt.Fprintf(&b, "|bc=%s|seg=%d", bcast, seg)
	// The sub-cubic local kernel changes the arithmetic every rank runs
	// (and its virtual flop accounting), so it is part of the identity for
	// every algorithm; the cutoff is canonicalised through the blas rule.
	if s.Opts.LocalStrassen {
		fmt.Fprintf(&b, "|ls=%d", blas.StrassenCutoff(s.Opts.StrassenCutoff))
	}
	// The per-rank thread budget changes what the execution runs (and the
	// serving layer's core accounting), so it is part of the identity —
	// but only when hybrid; serial specs keep their historical keys.
	if s.Opts.Threads > 1 {
		fmt.Fprintf(&b, "|t=%d", s.Opts.Threads)
	}
	for _, lv := range s.Levels {
		fmt.Fprintf(&b, "|L%dx%d:%d", lv.I, lv.J, lv.BlockSize)
	}
	return b.String()
}

// PaddedShape returns the smallest execution shape ≥ the spec's shape that
// satisfies the algorithm's divisibility constraints on its grid and block
// sizes. Zero-padding preserves the product — the top-left M×N block of
// the padded C equals A·B — so both execution paths run the padded shape
// and the live path crops the gathered result. Square-only algorithms
// (Cannon, Fox) reject rectangular shapes with matrix.ErrSquareOnly; a
// square-but-non-divisible n is padded to the next multiple of q.
func (s Spec) PaddedShape() (matrix.Shape, error) {
	sh := s.Shape()
	if err := sh.Validate(); err != nil {
		return matrix.Shape{}, err
	}
	g := s.Opts.Grid
	if g.S <= 0 || g.T <= 0 {
		return sh, nil // grid validation happens in the algorithm
	}
	switch s.Algorithm {
	case Cannon, Fox:
		if !sh.IsSquare() {
			return matrix.Shape{}, fmt.Errorf("engine: %s: shape %v: %w", s.Algorithm, sh, matrix.ErrSquareOnly)
		}
		if g.S != g.T {
			return sh, nil // the baseline reports the grid restriction
		}
		return matrix.Square(ceilMult(sh.N, g.S)), nil
	case Strassen:
		// Square-only, like Cannon/Fox — pad-and-crop handles near-square,
		// and a genuinely rectangular request is rejected here (which is
		// also the serving layer's cannot-batch signal via WithRHS).
		if !sh.IsSquare() {
			return matrix.Shape{}, fmt.Errorf("engine: %s: shape %v: %w", s.Algorithm, sh, matrix.ErrSquareOnly)
		}
		if g.S != g.T {
			return sh, nil // the algorithm reports the grid restriction
		}
		// The bottom SUMMA/HSUMMA needs its pivot panels inside one
		// sub-grid row/column: with tile size n/S invariant across levels,
		// unit·S | n suffices at every depth (2^levels | S implies
		// 2^levels | n for free).
		unit := s.Opts.BlockSize
		if s.Opts.StrassenInnerGroups > 0 && s.Opts.OuterBlockSize > unit {
			unit = s.Opts.OuterBlockSize
		}
		if unit <= 0 {
			return sh, nil // block validation happens in the algorithm
		}
		return matrix.Square(ceilMult(sh.N, unit*g.S)), nil
	case SUMMA, HSUMMA, Multilevel:
		// The K padding unit: panels of the widest level must live in one
		// grid row and one grid column, so K must be a multiple of
		// unit·lcm(S,T); M and N only need their own grid dimension.
		unit := s.Opts.BlockSize
		if s.Algorithm == HSUMMA && s.Opts.OuterBlockSize > unit {
			unit = s.Opts.OuterBlockSize
		}
		if s.Algorithm == Multilevel && len(s.Levels) > 0 && s.Levels[0].BlockSize > unit {
			unit = s.Levels[0].BlockSize
		}
		if unit <= 0 {
			return sh, nil // block validation happens in the algorithm
		}
		return matrix.Shape{
			M: ceilMult(sh.M, g.S),
			N: ceilMult(sh.N, g.T),
			K: ceilMult(sh.K, unit*lcm(g.S, g.T)),
		}, nil
	}
	return sh, nil
}

// Padded returns the spec with its shape replaced by PaddedShape — the
// form both execution paths actually run. It is idempotent.
func (s Spec) Padded() (Spec, error) {
	sh, err := s.PaddedShape()
	if err != nil {
		return Spec{}, err
	}
	s.Opts.Shape = sh
	s.Opts.N = 0
	return s, nil
}

// WithRHS returns the spec re-padded for a right-hand side n columns wide:
// the global N is replaced (M and K kept) and the result padded back to the
// algorithm's divisibility constraints. The serving layer's multi-RHS
// batching runs k coalesced same-A requests as one multiply of N' = k·N_req
// through it — valid for the SUMMA family because no block constraint binds
// N, only N ≡ 0 (mod T). Square-only algorithms (Cannon, Fox) reject the
// now-rectangular shape, which is exactly the cannot-batch signal.
func (s Spec) WithRHS(n int) (Spec, error) {
	if n <= 0 {
		return Spec{}, fmt.Errorf("engine: WithRHS: invalid width %d", n)
	}
	sh := s.Shape()
	sh.N = n
	s.Opts.Shape = sh
	s.Opts.N = 0
	return s.Padded()
}

// ceilMult rounds v up to the next multiple of m.
func ceilMult(v, m int) int { return (v + m - 1) / m * m }

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// Run executes the specified algorithm on this rank's communicator and
// tiles. It is called SPMD-style: every rank of the communicator calls Run
// with the same Spec and its own tiles.
func Run(c comm.Comm, s Spec, aLoc, bLoc, cLoc *matrix.Dense) error {
	if s.Opts.Shape.IsZero() {
		s.Opts.Shape = s.Shape()
	}
	switch s.Algorithm {
	case SUMMA:
		return core.SUMMA(c, s.Opts, aLoc, bLoc, cLoc)
	case HSUMMA:
		return core.HSUMMA(c, s.Opts, aLoc, bLoc, cLoc)
	case Multilevel:
		return core.MultilevelHSUMMA(c, s.Opts, s.Levels, s.Opts.BlockSize, aLoc, bLoc, cLoc)
	case Cannon:
		return baseline.Cannon(c, s.Opts.Grid, s.Shape(), s.Opts.Exec(), aLoc, bLoc, cLoc)
	case Fox:
		return baseline.Fox(c, s.Opts.Grid, s.Shape(), s.Opts.Broadcast, s.Opts.Exec(), aLoc, bLoc, cLoc)
	case Strassen:
		return core.Strassen(c, s.Opts, aLoc, bLoc, cLoc)
	case Auto:
		return fmt.Errorf("engine: algorithm %q must be resolved by the tune planner before Run", s.Algorithm)
	default:
		return fmt.Errorf("engine: unknown algorithm %q", s.Algorithm)
	}
}
