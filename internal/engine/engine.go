// Package engine is the unified algorithm dispatch shared by the two
// execution paths: the live goroutine runtime (hsumma.Multiply) and the
// simnet virtual communicator (hsumma.Simulate, internal/simalg). Both
// paths build a Spec and call Run with their transport's comm.Comm, so
// adding an algorithm here makes it available in every execution mode at
// once — the "write once, run at every scale" property the repository is
// organised around.
package engine

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/matrix"
)

// Algorithm names a distributed multiplication algorithm.
type Algorithm string

// The five distributed algorithms.
const (
	SUMMA      Algorithm = "summa"
	HSUMMA     Algorithm = "hsumma"
	Multilevel Algorithm = "multilevel"
	Cannon     Algorithm = "cannon"
	Fox        Algorithm = "fox"
)

// Auto is the planner-resolved pseudo-algorithm: a Spec never reaches Run
// with it. Both execution paths (hsumma.Multiply and hsumma.Simulate)
// resolve Auto through the internal/tune planner — which picks the
// algorithm, grid shape, group hierarchy, block sizes and broadcast for
// the target platform — before dispatching here.
const Auto Algorithm = "auto"

// Algorithms lists every dispatchable algorithm, for sweeps and tests.
func Algorithms() []Algorithm {
	return []Algorithm{SUMMA, HSUMMA, Multilevel, Cannon, Fox}
}

// Spec fully describes one distributed multiplication, independent of the
// transport it runs on.
type Spec struct {
	Algorithm Algorithm
	// Opts carries N, Grid, BlockSize, OuterBlockSize, Groups, Broadcast
	// and Segments (see core.Options).
	Opts core.Options
	// Levels configures Multilevel (outermost first); the inner block is
	// Opts.BlockSize.
	Levels []core.Level
}

// Run executes the specified algorithm on this rank's communicator and
// tiles. It is called SPMD-style: every rank of the communicator calls Run
// with the same Spec and its own tiles.
func Run(c comm.Comm, s Spec, aLoc, bLoc, cLoc *matrix.Dense) error {
	switch s.Algorithm {
	case SUMMA:
		return core.SUMMA(c, s.Opts, aLoc, bLoc, cLoc)
	case HSUMMA:
		return core.HSUMMA(c, s.Opts, aLoc, bLoc, cLoc)
	case Multilevel:
		return core.MultilevelHSUMMA(c, s.Opts, s.Levels, s.Opts.BlockSize, aLoc, bLoc, cLoc)
	case Cannon:
		return baseline.Cannon(c, s.Opts.Grid, s.Opts.N, aLoc, bLoc, cLoc)
	case Fox:
		return baseline.Fox(c, s.Opts.Grid, s.Opts.N, s.Opts.Broadcast, aLoc, bLoc, cLoc)
	case Auto:
		return fmt.Errorf("engine: algorithm %q must be resolved by the tune planner before Run", s.Algorithm)
	default:
		return fmt.Errorf("engine: unknown algorithm %q", s.Algorithm)
	}
}
