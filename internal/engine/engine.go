// Package engine is the unified algorithm dispatch shared by the two
// execution paths: the live goroutine runtime (hsumma.Multiply) and the
// simnet virtual communicator (hsumma.Simulate, internal/simalg). Both
// paths build a Spec and call Run with their transport's comm.Comm, so
// adding an algorithm here makes it available in every execution mode at
// once — the "write once, run at every scale" property the repository is
// organised around.
package engine

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/matrix"
)

// Algorithm names a distributed multiplication algorithm.
type Algorithm string

// The five distributed algorithms.
const (
	SUMMA      Algorithm = "summa"
	HSUMMA     Algorithm = "hsumma"
	Multilevel Algorithm = "multilevel"
	Cannon     Algorithm = "cannon"
	Fox        Algorithm = "fox"
)

// Auto is the planner-resolved pseudo-algorithm: a Spec never reaches Run
// with it. Both execution paths (hsumma.Multiply and hsumma.Simulate)
// resolve Auto through the internal/tune planner — which picks the
// algorithm, grid shape, group hierarchy, block sizes and broadcast for
// the target platform — before dispatching here.
const Auto Algorithm = "auto"

// Algorithms lists every dispatchable algorithm, for sweeps and tests.
func Algorithms() []Algorithm {
	return []Algorithm{SUMMA, HSUMMA, Multilevel, Cannon, Fox}
}

// Executor names a virtual execution engine for simulated runs. The live
// path (hsumma.Multiply) always runs goroutine ranks — real data needs a
// real runtime; the selector applies to virtual time only.
type Executor string

const (
	// ExecutorGoroutine is the SPMD goroutine engine (internal/simnet's
	// VWorld): one goroutine per rank, collectives rendezvous on sharded
	// condition variables. Handles every algorithm and every model knob.
	ExecutorGoroutine Executor = "goroutine"
	// ExecutorEvent is the discrete-event engine (internal/evsim): rank
	// programs stream recorded events into a single-threaded replay loop,
	// with a rank-symmetry fast path sharing clock-equal collective
	// executions. Bit-identical to the goroutine engine.
	ExecutorEvent Executor = "event"
	// ExecutorAuto picks per spec: the event engine for the collective-only
	// algorithms (SUMMA, HSUMMA, multilevel) without overlap — where the
	// event loop and its symmetry fast path shine — and the goroutine
	// engine for the point-to-point-heavy baselines (Cannon, Fox) and for
	// overlap runs, whose irregular dependency structure gains nothing
	// from replay. The empty string means auto.
	ExecutorAuto Executor = "auto"
)

// Executors lists the selectable executors, for flags and error messages.
func Executors() []Executor {
	return []Executor{ExecutorGoroutine, ExecutorEvent, ExecutorAuto}
}

// ExecutorNames renders the valid executor names for error messages, so
// every surface (ResolveExecutor, hsumma.EngineByName, CLI help) reports
// the same list and a future executor is added in one place.
func ExecutorNames() string {
	names := make([]string, 0, len(Executors()))
	for _, e := range Executors() {
		names = append(names, string(e))
	}
	return strings.Join(names, ", ")
}

// ResolveExecutor applies the auto rule for a spec and validates explicit
// selections. Both virtual execution paths (simalg and the tune planner's
// refinement) route through here so "auto" means the same thing
// everywhere.
func ResolveExecutor(e Executor, alg Algorithm, overlap bool) (Executor, error) {
	switch e {
	case ExecutorGoroutine, ExecutorEvent:
		return e, nil
	case ExecutorAuto, "":
		switch alg {
		case SUMMA, HSUMMA, Multilevel:
			if !overlap {
				return ExecutorEvent, nil
			}
		}
		return ExecutorGoroutine, nil
	default:
		return "", fmt.Errorf("engine: unknown executor %q (valid: %s)", e, ExecutorNames())
	}
}

// Spec fully describes one distributed multiplication, independent of the
// transport it runs on.
type Spec struct {
	Algorithm Algorithm
	// Opts carries N, Grid, BlockSize, OuterBlockSize, Groups, Broadcast
	// and Segments (see core.Options).
	Opts core.Options
	// Levels configures Multilevel (outermost first); the inner block is
	// Opts.BlockSize.
	Levels []core.Level
}

// Run executes the specified algorithm on this rank's communicator and
// tiles. It is called SPMD-style: every rank of the communicator calls Run
// with the same Spec and its own tiles.
func Run(c comm.Comm, s Spec, aLoc, bLoc, cLoc *matrix.Dense) error {
	switch s.Algorithm {
	case SUMMA:
		return core.SUMMA(c, s.Opts, aLoc, bLoc, cLoc)
	case HSUMMA:
		return core.HSUMMA(c, s.Opts, aLoc, bLoc, cLoc)
	case Multilevel:
		return core.MultilevelHSUMMA(c, s.Opts, s.Levels, s.Opts.BlockSize, aLoc, bLoc, cLoc)
	case Cannon:
		return baseline.Cannon(c, s.Opts.Grid, s.Opts.N, aLoc, bLoc, cLoc)
	case Fox:
		return baseline.Fox(c, s.Opts.Grid, s.Opts.N, s.Opts.Broadcast, aLoc, bLoc, cLoc)
	case Auto:
		return fmt.Errorf("engine: algorithm %q must be resolved by the tune planner before Run", s.Algorithm)
	default:
		return fmt.Errorf("engine: unknown algorithm %q", s.Algorithm)
	}
}
